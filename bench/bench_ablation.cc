// Ablation studies for the design choices DESIGN.md calls out (not a paper
// figure; complements Figure 11):
//   A. Mo trees without edge-set pruning (GAM+Mo): Mo injection only pays
//      off as a *complement* to ESP, not on its own.
//   B. Queue strategy (single vs per-sat-subset) on skewed seed sets —
//      Section 4.9 (ii).
//   C. Adaptive algorithm choice for m=2 CTPs (ESP by Property 3) vs always
//      running MoLESP.
#include <cinttypes>

#include "bench_common.h"
#include "ctp/algorithm.h"
#include "gen/kg.h"
#include "gen/synthetic.h"

namespace eql {
namespace {

struct RunOut {
  double ms;
  uint64_t trees;
  uint64_t results;
  bool timed_out;
};

RunOut RunConfig(const Graph& g, const SeedSets& seeds, GamConfig config,
                 int64_t timeout_ms) {
  config.filters.timeout_ms = timeout_ms;
  GamSearch search(g, seeds, std::move(config));
  search.Run();
  return RunOut{search.stats().elapsed_ms, search.stats().trees_built,
                search.stats().results_found, search.stats().timed_out};
}

void SectionA(int64_t timeout) {
  std::printf("---- A: Mo trees with vs without edge-set pruning ----\n");
  TablePrinter table({"graph", "config", "ms", "provenances", "results"});
  auto add = [&](const char* name, const SyntheticDataset& d) {
    auto seeds = SeedSets::Of(d.graph, d.seed_sets);
    struct Cfg {
      const char* label;
      GamConfig config;
    };
    GamConfig gam_mo = GamConfig::Gam();
    gam_mo.mo_trees = true;
    for (const Cfg& c : {Cfg{"gam", GamConfig::Gam()}, Cfg{"gam+mo", gam_mo},
                         Cfg{"esp", GamConfig::Esp()},
                         Cfg{"moesp", GamConfig::MoEsp()},
                         Cfg{"molesp", GamConfig::MoLesp()}}) {
      RunOut r = RunConfig(d.graph, *seeds, c.config, timeout);
      table.AddRow({name, c.label, bench::MsOrTimeout(r.ms, r.timed_out),
                    StrFormat("%" PRIu64, r.trees),
                    StrFormat("%" PRIu64, r.results)});
    }
  };
  int scale_up = bench::Scale() == 0 ? 0 : 2;
  add("Comb(4,2,4,3)", MakeComb(4, 2, 2 + scale_up, 3));
  add("Star(8,4)", MakeStar(8, 2 + scale_up));
  table.Print();
  std::printf(
      "Mo's effect without ESP is graph-dependent (its extra seed-rooted\n"
      "trees can unlock earlier merges, as on Comb); with ESP it buys back\n"
      "the completeness ESP loses (esp finds 0 results on Comb).\n\n");
}

void SectionB(int64_t timeout) {
  std::printf("---- B: queue strategy on skewed seed sets (§4.9 ii) ----\n");
  KgParams p;
  p.num_nodes = bench::Scale() == 0 ? 2000 : 20000;
  p.num_edges = p.num_nodes * 4;
  p.seed = 31;
  auto g = MakeSyntheticKg(p);
  if (!g.ok()) return;
  TablePrinter table(
      {"small_set", "big_set", "strategy", "ms", "provenances", "results"});
  Rng rng(77);
  for (size_t big : {100u, 1000u, 5000u}) {
    if (big >= g->NumNodes() / 2) continue;
    std::vector<NodeId> small_set = {static_cast<NodeId>(rng.Below(g->NumNodes()))};
    std::vector<NodeId> big_set;
    while (big_set.size() < big) {
      big_set.push_back(static_cast<NodeId>(rng.Below(g->NumNodes())));
    }
    auto seeds = SeedSets::Of(*g, {small_set, big_set});
    if (!seeds.ok()) continue;
    for (auto [name, qs] :
         {std::pair{"single", QueueStrategy::kSingle},
          std::pair{"per_subset", QueueStrategy::kPerSatSubset}}) {
      GamConfig config = GamConfig::MoLesp();
      config.queue_strategy = qs;
      config.filters.max_edges = 4;
      // Skew shows up in time-to-first-results: full enumeration costs the
      // same either way, but the single queue drowns the small set's
      // frontier in big-set Grow entries before producing anything.
      config.filters.limit = 200;
      RunOut r = RunConfig(*g, *seeds, config, timeout);
      table.AddRow({"1", std::to_string(big), name,
                    bench::MsOrTimeout(r.ms, r.timed_out),
                    StrFormat("%" PRIu64, r.trees),
                    StrFormat("%" PRIu64, r.results)});
    }
  }
  table.Print();
  std::printf(
      "Per-subset queues keep the frontier near the small set (fewer\n"
      "provenances until the LIMIT is hit); exhaustive runs of the two\n"
      "strategies return identical result sets (asserted by tests).\n\n");
}

void SectionC(int64_t timeout) {
  std::printf("---- C: adaptive algorithm choice for m=2 (Property 3) ----\n");
  KgParams p;
  p.num_nodes = bench::Scale() == 0 ? 2000 : 20000;
  p.num_edges = p.num_nodes * 4;
  p.seed = 37;
  auto g = MakeSyntheticKg(p);
  if (!g.ok()) return;
  Rng rng(11);
  const int queries = bench::Scale() == 0 ? 5 : 12;
  auto workload = MakeCtpWorkload(*g, queries, 2, 2, &rng);
  double esp_total = 0, molesp_total = 0;
  uint64_t esp_results = 0, molesp_results = 0;
  for (const auto& ctp : workload) {
    auto seeds = SeedSets::Of(*g, ctp.seed_sets);
    if (!seeds.ok()) continue;
    GamConfig esp = GamConfig::Esp();
    esp.filters.max_edges = 3;
    GamConfig molesp = GamConfig::MoLesp();
    molesp.filters.max_edges = 3;
    RunOut re = RunConfig(*g, *seeds, esp, timeout);
    RunOut rm = RunConfig(*g, *seeds, molesp, timeout);
    esp_total += re.ms;
    molesp_total += rm.ms;
    esp_results += re.results;
    molesp_results += rm.results;
  }
  TablePrinter table({"algorithm", "total_ms", "results"});
  table.AddRow({"esp (adaptive pick)", bench::Ms(esp_total),
                StrFormat("%" PRIu64, esp_results)});
  table.AddRow({"molesp (default)", bench::Ms(molesp_total),
                StrFormat("%" PRIu64, molesp_results)});
  table.Print();
  std::printf(
      "ESP is complete for m=2 (Property 3) and cheaper; identical result\n"
      "counts confirm no answers are lost by the adaptive pick.\n");
}

void Run() {
  bench::Banner("Design-choice ablations (Mo/ESP interaction, §4.9 queues, "
                "adaptive m=2 pick)",
                "DESIGN.md ablation index (extends Figure 11)");
  const int64_t timeout = bench::TimeoutMs(300, 5000, 120000);
  SectionA(timeout);
  SectionB(timeout);
  SectionC(timeout);
}

}  // namespace
}  // namespace eql

int main() {
  eql::Run();
  return 0;
}
