// bench_api — the prepared/streaming API (eval/engine.h) vs the one-shot
// text path, on the synthetic KG.
//
// Two measurements:
//   * prepare-once/execute-many QPS vs parse-per-call on a parameterized
//     point-lookup workload (cheap CTPs, the high-traffic serving shape —
//     the front end is the per-call overhead Prepare amortizes: lexing,
//     parsing, validation, planning, score construction, LABEL resolution,
//     view cache probes);
//   * time-to-first-result under the streaming sink vs time-to-full-
//     materialization on a multi-result CONNECT workload (the anytime
//     character of Algorithm 1, surfaced through the API).
// Both paths must produce identical row counts (the equivalence suite pins
// byte-identity; the bench re-checks counts as a tripwire).
//
// Usage: bench_api [OUT.json]   (default BENCH_api.json)
// Honors EQL_BENCH_SCALE: 0 smoke (4k/16k KG), 1 default (20k/80k KG),
// 2 paper-scale (50k/200k), and EQL_BENCH_TIMEOUT_MS.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/engine.h"
#include "gen/kg.h"
#include "util/stopwatch.h"

namespace eql {
namespace {

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_api.json";
  bench::Banner("prepared queries + streaming cursor",
                "Section 3 (evaluation strategy, served at scale)");

  KgParams p;
  const int scale = bench::Scale();
  p.num_nodes = scale == 0 ? 4000u : scale == 1 ? 20000u : 50000u;
  p.num_edges = static_cast<uint64_t>(p.num_nodes) * 4;
  auto g = MakeSyntheticKg(p);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  std::printf("KG: %zu nodes, %zu edges\n", g->NumNodes(), g->NumEdges());
  EqlEngine engine(*g);

  // ---- QPS: a parameterized 2-member connection lookup, LABEL-filtered and
  // tightly bounded — the cheap-query regime where millions of users hit the
  // same template and the front end is a real fraction of the work.
  Rng rng(42);
  const int num_pairs = 64;
  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<WorkloadCtp> workload =
      MakeCtpWorkload(*g, num_pairs, /*m=*/2, /*set_size=*/1, &rng);
  for (const WorkloadCtp& w : workload) {
    pairs.emplace_back(g->NodeLabel(w.seed_sets[0][0]),
                       g->NodeLabel(w.seed_sets[1][0]));
  }
  const char* kTemplate =
      "SELECT ?w WHERE { CONNECT($a, $b -> ?w)"
      " LABEL {\"p0\", \"p1\", \"p2\"} MAX 2 TIMEOUT 5000 }";
  auto render = [](const std::string& a, const std::string& b) {
    return std::string(
               "SELECT ?w WHERE { CONNECT(\"") + a + "\", \"" + b +
           "\" -> ?w) LABEL {\"p0\", \"p1\", \"p2\"} MAX 2 TIMEOUT 5000 }";
  };

  auto prepared = engine.Prepare(kTemplate);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }

  const int iters = scale == 0 ? 400 : 2000;
  size_t rows_oneshot = 0, rows_prepared = 0;

  // Interleave the two loops' repetitions (min-of-reps) so host load drift
  // cannot masquerade as an API-level difference.
  const int reps = 5;
  double oneshot_ms = 0, prepared_ms = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch sw;
    rows_oneshot = 0;
    for (int i = 0; i < iters; ++i) {
      const auto& [a, b] = pairs[i % pairs.size()];
      auto r = engine.Run(render(a, b));
      if (r.ok()) rows_oneshot += r->table.NumRows();
    }
    const double one = sw.ElapsedMs();

    sw.Restart();
    rows_prepared = 0;
    for (int i = 0; i < iters; ++i) {
      const auto& [a, b] = pairs[i % pairs.size()];
      auto r = prepared->Execute(ParamMap().Set("a", a).Set("b", b));
      if (r.ok()) rows_prepared += r->table.NumRows();
    }
    const double prep = sw.ElapsedMs();
    if (rep == 0 || one < oneshot_ms) oneshot_ms = one;
    if (rep == 0 || prep < prepared_ms) prepared_ms = prep;
  }
  if (rows_oneshot != rows_prepared) {
    std::fprintf(stderr, "API MISMATCH: %zu oneshot rows vs %zu prepared\n",
                 rows_oneshot, rows_prepared);
    return 1;
  }
  const double qps_oneshot = iters / (oneshot_ms / 1000.0);
  const double qps_prepared = iters / (prepared_ms / 1000.0);
  std::printf(
      "QPS (%d iters, %d pairs): parse-per-call %8.0f q/s | "
      "prepare-once %8.0f q/s | %.2fx (%zu rows)\n",
      iters, num_pairs, qps_oneshot, qps_prepared, qps_prepared / qps_oneshot,
      rows_prepared);

  // ---- Streaming: a multi-result CONNECT whose full enumeration takes real
  // time; the first row is available long before the last.
  std::vector<WorkloadCtp> wide =
      MakeCtpWorkload(*g, 4, /*m=*/2, /*set_size=*/1, &rng);
  const int64_t timeout = bench::TimeoutMs(30000, 120000, 240000);
  double ttfr_ms = 0, ttfr_total_ms = 0, full_ms = 0;
  size_t stream_rows = 0, full_rows = 0;
  for (const WorkloadCtp& w : wide) {
    std::string query = "SELECT ?w WHERE { CONNECT(\"" +
                        g->NodeLabel(w.seed_sets[0][0]) + "\", \"" +
                        g->NodeLabel(w.seed_sets[1][0]) + "\" -> ?w) MAX 4" +
                        " TIMEOUT " + std::to_string(timeout) + " }";

    auto pq = engine.Prepare(query);
    if (!pq.ok()) continue;
    auto materialized = pq->Execute();
    if (!materialized.ok()) continue;
    full_ms += materialized->total_ms;
    full_rows += materialized->table.NumRows();

    CollectingSink sink;
    auto streamed = pq->Execute({}, sink);
    if (!streamed.ok()) continue;
    if (streamed->first_row_ms >= 0) ttfr_ms += streamed->first_row_ms;
    ttfr_total_ms += streamed->total_ms;
    stream_rows += streamed->rows_streamed;
  }
  if (stream_rows != full_rows) {
    std::fprintf(stderr, "STREAM MISMATCH: %zu streamed vs %zu materialized\n",
                 stream_rows, full_rows);
    return 1;
  }
  std::printf(
      "streaming: first row after %8.2f ms vs %8.2f ms full materialization "
      "(%.0fx earlier; %zu rows; stream total %.2f ms)\n",
      ttfr_ms, full_ms, full_ms / (ttfr_ms > 0 ? ttfr_ms : 1e-9), stream_rows,
      ttfr_total_ms);

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"prepared_api\",\n"
      "  \"kg\": {\"nodes\": %zu, \"edges\": %zu},\n"
      "  \"qps\": {\"iters\": %d, \"pairs\": %d, \"parse_per_call\": %.1f,\n"
      "          \"prepare_once\": %.1f, \"speedup\": %.3f, \"rows\": %zu},\n"
      "  \"streaming\": {\"first_result_ms\": %.3f, \"materialized_ms\": %.3f,\n"
      "                \"stream_total_ms\": %.3f, \"rows\": %zu}\n"
      "}\n",
      g->NumNodes(), g->NumEdges(), iters, num_pairs, qps_oneshot, qps_prepared,
      qps_prepared / qps_oneshot, rows_prepared, ttfr_ms, full_ms,
      ttfr_total_ms, stream_rows);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace eql

int main(int argc, char** argv) { return eql::Main(argc, argv); }
