// Shared harness for the CDF benchmarks (Figures 13 and 14, Section 5.5.1):
// runs the EQL engine (bidirectional and UNI MoLESP) plus the baseline
// capability classes on a generated CDF graph and returns one row per
// system.
#ifndef EQL_BENCH_BENCH_CDF_COMMON_H_
#define EQL_BENCH_BENCH_CDF_COMMON_H_

#include <cinttypes>
#include <string>
#include <vector>

#include "baselines/path_enum.h"
#include "baselines/reachability.h"
#include "bench_common.h"
#include "eval/engine.h"
#include "gen/cdf.h"

namespace eql {
namespace bench {

struct SystemRow {
  std::string system;
  double ms = 0;
  uint64_t results = 0;
  bool timed_out = false;
};

/// Runs every Figure 13/14 system on one CDF instance. `timeout_ms` applies
/// per system. The EQL rows carry the *query* answer counts; baseline rows
/// carry raw path/pair counts (their semantics differ — Section 2).
inline std::vector<SystemRow> RunCdfSystems(const CdfDataset& d,
                                            int64_t timeout_ms) {
  std::vector<SystemRow> rows;
  const Graph& g = d.graph;
  const int m = d.params.m;
  StrId link = g.dict().Lookup("link");
  std::vector<StrId> link_only = {link};

  auto run_eql = [&](const char* name, bool uni) {
    EngineOptions opts;
    opts.default_ctp_timeout_ms = timeout_ms;
    EqlEngine engine(g, opts);
    std::string query = CdfQueryText(m);
    if (uni) {
      size_t pos = query.find(")\n");  // append UNI to the CONNECT clause
      query.insert(pos + 1, " UNI");
    }
    auto r = engine.Run(query);
    SystemRow row;
    row.system = name;
    if (r.ok()) {
      row.ms = r->total_ms;
      row.results = r->table.NumRows();
      row.timed_out = !r->ctp_runs.empty() && r->ctp_runs[0].stats.timed_out;
    } else {
      row.timed_out = true;
    }
    rows.push_back(row);
  };
  run_eql("MoLESP(any,return)", false);
  run_eql("UNI-MoLESP(any,return)", true);

  const std::vector<NodeId>& sources = d.top_leaves;
  const std::vector<NodeId>& targets = d.bottom_g_leaves;

  {  // Virtuoso-like: unidirectional label-constrained, check-only.
    auto st = CheckReachability(g, sources, targets, /*directed=*/true,
                                link_only, timeout_ms);
    rows.push_back(SystemRow{"Virtuoso(label,check)", st.elapsed_ms,
                             st.reachable_pairs, st.timed_out});
  }
  {  // Virtuoso-SQL-like: unidirectional, any label, check-only.
    auto st = CheckReachability(g, sources, targets, /*directed=*/true,
                                std::nullopt, timeout_ms);
    rows.push_back(SystemRow{"Virtuoso(any,check)", st.elapsed_ms,
                             st.reachable_pairs, st.timed_out});
  }
  {  // JEDI-like: unidirectional labelled paths, returned.
    PathEnumOptions opts;
    opts.allowed_labels = link_only;
    opts.max_hops = static_cast<uint32_t>(d.params.link_len + 2);
    opts.timeout_ms = timeout_ms;
    std::vector<EnumeratedPath> paths;
    auto st = EnumerateDirectedPaths(g, sources, targets, opts, &paths);
    rows.push_back(
        SystemRow{"JEDI(label,return)", st.elapsed_ms, st.paths_found, st.timed_out});
  }
  {  // Postgres-like: recursive table, directed, any label, returned.
    PathEnumOptions opts;
    opts.max_hops = static_cast<uint32_t>(d.params.link_len + 2);
    opts.timeout_ms = timeout_ms;
    std::vector<EnumeratedPath> paths;
    auto st = RecursivePathTable(g, sources, targets, opts, &paths);
    rows.push_back(SystemRow{"Postgres(any,return)", st.elapsed_ms, st.paths_found,
                             st.timed_out});
  }
  {  // Neo4j-like: undirected simple paths, returned.
    PathEnumOptions opts;
    opts.max_hops = static_cast<uint32_t>(d.params.link_len + 6);
    opts.timeout_ms = timeout_ms;
    std::vector<EnumeratedPath> paths;
    auto st = EnumerateUndirectedPaths(g, sources, targets, opts, &paths);
    rows.push_back(SystemRow{"Neo4j(any,return)", st.elapsed_ms, st.paths_found,
                             st.timed_out});
  }
  return rows;
}

}  // namespace bench
}  // namespace eql

#endif  // EQL_BENCH_BENCH_CDF_COMMON_H_
