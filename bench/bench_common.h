// Shared scaffolding for the benchmark harnesses: scale knobs, formatting.
//
// Every bench binary regenerates one table/figure of the paper's evaluation
// (Section 5) and honors:
//   EQL_BENCH_SCALE       0 = smoke (seconds), 1 = default, 2 = paper-scale
//   EQL_BENCH_TIMEOUT_MS  overrides the per-point timeout
#ifndef EQL_BENCH_BENCH_COMMON_H_
#define EQL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace eql {
namespace bench {

inline int Scale() {
  const char* s = std::getenv("EQL_BENCH_SCALE");
  if (s == nullptr) return 1;
  int v = std::atoi(s);
  return v < 0 ? 0 : (v > 2 ? 2 : v);
}

inline int64_t TimeoutMs(int64_t smoke, int64_t dflt, int64_t paper) {
  const char* s = std::getenv("EQL_BENCH_TIMEOUT_MS");
  if (s != nullptr) return std::atoll(s);
  switch (Scale()) {
    case 0:
      return smoke;
    case 2:
      return paper;
    default:
      return dflt;
  }
}

/// "12.3" / "0.045" style milliseconds, or "TIMEOUT"/"-" markers.
inline std::string Ms(double ms) { return StrFormat("%.2f", ms); }

inline std::string MsOrTimeout(double ms, bool timed_out) {
  return timed_out ? "TIMEOUT" : Ms(ms);
}

inline void Banner(const char* what, const char* paper_ref) {
  std::printf("== %s ==\n", what);
  std::printf("reproduces: %s | scale=%d (EQL_BENCH_SCALE)\n\n", paper_ref, Scale());
}

}  // namespace bench
}  // namespace eql

#endif  // EQL_BENCH_BENCH_COMMON_H_
