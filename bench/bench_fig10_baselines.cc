// Figure 10 (Section 5.4.1): complete CTP evaluation baselines — BFT (plot
// label BFS_G), BFT-M, BFT-AM and GAM — on Line, Comb and Star graphs of
// increasing size. The paper's finding to reproduce: breadth-first variants
// are orders of magnitude slower (minimization + rediscovery waste) and time
// out on the larger Comb/Star instances, while GAM completes everywhere.
//
// Output: one table per topology; rows = (m or nA, sL); columns = per-
// algorithm milliseconds ("TIMEOUT" marks the paper's missing points; once
// an algorithm times out for a given m it is skipped for larger sL).
#include <cinttypes>
#include <functional>
#include <map>

#include "bench_common.h"
#include "ctp/algorithm.h"
#include "gen/synthetic.h"

namespace eql {
namespace {

constexpr AlgorithmKind kAlgos[] = {AlgorithmKind::kBft, AlgorithmKind::kBftM,
                                    AlgorithmKind::kBftAM, AlgorithmKind::kGam};

struct Point {
  double ms = 0;
  bool timed_out = false;
  uint64_t results = 0;
};

Point RunPoint(AlgorithmKind kind, const SyntheticDataset& d, int64_t timeout_ms) {
  auto seeds = SeedSets::Of(d.graph, d.seed_sets);
  CtpFilters filters;
  filters.timeout_ms = timeout_ms;
  auto algo = CreateCtpAlgorithm(kind, d.graph, *seeds, filters);
  algo->Run();
  return Point{algo->stats().elapsed_ms, algo->stats().timed_out,
               algo->stats().results_found};
}

void Sweep(const char* topology, const char* series_name,
           const std::vector<int>& series, const std::vector<int>& s_l_values,
           const std::function<SyntheticDataset(int, int)>& make,
           int64_t timeout_ms) {
  std::printf("---- CTP runtime on %s graphs (timeout %" PRId64 " ms) ----\n",
              topology, timeout_ms);
  std::vector<std::string> header = {series_name, "sL"};
  for (AlgorithmKind k : kAlgos) header.push_back(std::string(AlgorithmName(k)) + "_ms");
  header.push_back("results");
  TablePrinter table(header);

  std::map<std::pair<int, int>, bool> dead;  // (algo idx, series value)
  for (int sv : series) {
    for (int sl : s_l_values) {
      SyntheticDataset d = make(sv, sl);
      std::vector<std::string> row = {std::to_string(sv), std::to_string(sl)};
      uint64_t results = 0;
      for (size_t a = 0; a < std::size(kAlgos); ++a) {
        if (dead[{static_cast<int>(a), sv}]) {
          row.push_back("TIMEOUT");
          continue;
        }
        Point p = RunPoint(kAlgos[a], d, timeout_ms);
        row.push_back(bench::MsOrTimeout(p.ms, p.timed_out));
        if (p.timed_out) {
          dead[{static_cast<int>(a), sv}] = true;  // skip larger instances
        } else {
          results = std::max(results, p.results);
        }
      }
      row.push_back(StrFormat("%" PRIu64, results));
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf("\n");
}

void Run() {
  bench::Banner("Complete CTP evaluation baselines (BFS_G/BFS_M/BFS_AM vs GAM)",
                "Figure 10a/10b/10c");
  const int64_t timeout = bench::TimeoutMs(150, 500, 600000);
  std::vector<int> sl = bench::Scale() == 0 ? std::vector<int>{2, 4}
                        : bench::Scale() == 2
                            ? std::vector<int>{2, 3, 4, 5, 6, 7, 8, 9, 10}
                            : std::vector<int>{2, 4, 6, 8, 10};

  // Fig 10a: Line(m, nL), sL = nL + 1 (distance between seeds).
  Sweep("Line", "m", {3, 5, 10}, sl,
        [](int m, int s) { return MakeLine(m, s - 1); }, timeout);
  // Fig 10b: Comb(nA, nS=2, sL, dBA=3); m = 3 * nA.
  Sweep("Comb", "nA", {2, 4, 6}, sl,
        [](int na, int s) { return MakeComb(na, 2, s, 3); }, timeout);
  // Fig 10c: Star(m, sL).
  Sweep("Star", "m", {3, 5, 10}, sl,
        [](int m, int s) { return MakeStar(m, s); }, timeout);

  std::printf(
      "Expected shape (paper): BFS_M > BFS_G, BFS_AM slower still on Line;\n"
      "both BFS variants hit the timeout on larger Comb/Star instances while\n"
      "GAM completes in every cell.\n");
}

}  // namespace
}  // namespace eql

int main() {
  eql::Run();
  return 0;
}
