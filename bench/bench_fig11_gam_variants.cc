// Figure 11 (Section 5.4.2): GAM vs ESP vs MoESP vs LESP vs MoLESP on the
// Line/Comb/Star sweeps — runtime (Fig 11a-c) and number of provenances
// (Fig 11d-f). The paper's findings to reproduce:
//   * edge-set pruning cuts runtime (MoLESP 1.3x-15x faster than GAM),
//   * ESP and LESP find no results on Line/Comb (pruned away; "res=0"),
//   * MoESP and MoLESP build the same provenances on Line/Comb,
//   * on Star the MoESP-vs-MoLESP difference is small,
//   * runtimes closely track the number of built provenances.
#include <cinttypes>
#include <functional>

#include "bench_common.h"
#include "ctp/algorithm.h"
#include "gen/synthetic.h"

namespace eql {
namespace {

constexpr AlgorithmKind kAlgos[] = {AlgorithmKind::kGam, AlgorithmKind::kEsp,
                                    AlgorithmKind::kMoEsp, AlgorithmKind::kLesp,
                                    AlgorithmKind::kMoLesp};

void Sweep(const char* topology, const char* series_name,
           const std::vector<int>& series, const std::vector<int>& s_l_values,
           const std::function<SyntheticDataset(int, int)>& make,
           int64_t timeout_ms) {
  std::printf("---- GAM variants on %s graphs ----\n", topology);
  std::vector<std::string> header = {series_name, "sL"};
  for (AlgorithmKind k : kAlgos) {
    header.push_back(std::string(AlgorithmName(k)) + "_ms");
    header.push_back(std::string(AlgorithmName(k)) + "_prov");
    header.push_back(std::string(AlgorithmName(k)) + "_res");
  }
  TablePrinter table(header);
  for (int sv : series) {
    for (int sl : s_l_values) {
      SyntheticDataset d = make(sv, sl);
      auto seeds = SeedSets::Of(d.graph, d.seed_sets);
      std::vector<std::string> row = {std::to_string(sv), std::to_string(sl)};
      for (AlgorithmKind kind : kAlgos) {
        CtpFilters filters;
        filters.timeout_ms = timeout_ms;
        auto algo = CreateCtpAlgorithm(kind, d.graph, *seeds, filters);
        algo->Run();
        const SearchStats& s = algo->stats();
        row.push_back(bench::MsOrTimeout(s.elapsed_ms, s.timed_out));
        row.push_back(StrFormat("%" PRIu64, s.trees_built));
        row.push_back(StrFormat("%" PRIu64, s.results_found));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf("\n");
}

void Run() {
  bench::Banner("GAM pruning variants: runtime and provenance counts",
                "Figure 11a-11f");
  const int64_t timeout = bench::TimeoutMs(200, 2000, 600000);
  std::vector<int> sl = bench::Scale() == 0 ? std::vector<int>{2, 4}
                        : bench::Scale() == 2
                            ? std::vector<int>{2, 3, 4, 5, 6, 7, 8, 9, 10}
                            : std::vector<int>{2, 4, 6, 8, 10};

  Sweep("Line", "m", {3, 5, 10}, sl,
        [](int m, int s) { return MakeLine(m, s - 1); }, timeout);
  Sweep("Comb", "nA", {2, 4, 6}, sl,
        [](int na, int s) { return MakeComb(na, 2, s, 3); }, timeout);
  Sweep("Star", "m", {3, 5, 10}, sl,
        [](int m, int s) { return MakeStar(m, s); }, timeout);

  std::printf(
      "Expected shape (paper): *_prov ordering gam >= lesp >= esp and\n"
      "molesp >= moesp; esp/lesp res=0 on Line and Comb (edge-set pruning\n"
      "incompleteness) while moesp/molesp find the result; runtime tracks\n"
      "provenance counts.\n");
}

}  // namespace
}  // namespace eql

int main() {
  eql::Run();
  return 0;
}
