// Figure 12 (Section 5.4.3): GAM and MoLESP vs the QGSTP approximation on a
// DBPedia-shaped workload: 312 CTPs grouped by m = 2..6 (83/98/85/38/8),
// evaluated with UNI and LIMIT 1 to align with QGSTP's one-result contract.
//
// The paper's DBPedia subset (18M triples) is substituted by a seeded
// scale-free labeled graph of configurable size (see DESIGN.md §2); the
// shape to reproduce: MoLESP clearly faster than QGSTP across all m and
// scaling well with m, GAM competitive for small m but degrading (timing
// out at m=6 in the paper).
#include <cinttypes>

#include "baselines/qgstp.h"
#include "bench_common.h"
#include "ctp/algorithm.h"
#include "gen/kg.h"

namespace eql {
namespace {

struct Cell {
  double total_ms = 0;
  int timeouts = 0;
  int found = 0;
  int queries = 0;
  std::string Avg() const {
    if (queries == 0) return "-";
    return StrFormat("%.1f", total_ms / queries);
  }
};

void Run() {
  bench::Banner("UNI LIMIT-1 connection search vs QGSTP approximation",
                "Figure 12");
  KgParams kg;
  switch (bench::Scale()) {
    case 0:
      kg.num_nodes = 5000;
      kg.num_edges = 20000;
      break;
    case 2:
      kg.num_nodes = 1000000;
      kg.num_edges = 4500000;
      break;
    default:
      kg.num_nodes = 150000;
      kg.num_edges = 600000;
      break;
  }
  kg.seed = 17;
  auto graph = MakeSyntheticKg(kg);
  if (!graph.ok()) {
    std::fprintf(stderr, "KG generation failed: %s\n",
                 graph.status().ToString().c_str());
    std::exit(1);
  }
  const Graph& g = *graph;
  std::printf("graph: %zu nodes, %zu edges (DBPedia-shaped substitute)\n\n",
              g.NumNodes(), g.NumEdges());

  const int64_t timeout = bench::TimeoutMs(150, 1500, 200000);
  // Workload: the paper's per-m counts, scaled down for smoke/default runs.
  const int divisor = bench::Scale() == 2 ? 1 : (bench::Scale() == 1 ? 3 : 10);
  Rng rng(99);

  TablePrinter table({"m", "queries", "qgstp_avg_ms", "gam_avg_ms",
                      "molesp_avg_ms", "qgstp_found", "gam_found",
                      "molesp_found", "gam_timeouts", "molesp_timeouts"});
  for (int mi = 0; mi < 5; ++mi) {
    const int m = mi + 2;
    const int count = std::max(1, kDbpediaWorkloadCounts[mi] / divisor);
    // The paper reuses QGSTP's own benchmark queries, which have answers;
    // mirror that by keeping only UNI-feasible CTPs (QGSTP finds a tree).
    // Every kept query is therefore one both sides can solve.
    std::vector<WorkloadCtp> workload;
    int attempts = 0;
    Cell qgstp, gam, molesp;
    while (static_cast<int>(workload.size()) < count && attempts < count * 30) {
      ++attempts;
      auto candidate = MakeCtpWorkload(g, 1, m, /*set_size=*/2, &rng)[0];
      auto seeds = SeedSets::Of(g, candidate.seed_sets);
      if (!seeds.ok()) continue;
      // Cheap feasibility probe (any single root suffices); the measured
      // QGSTP run happens below with its full best-root contract.
      QgstpOptions probe;
      probe.unidirectional = true;
      probe.timeout_ms = timeout;
      probe.candidate_roots = 1;
      if (!QgstpApprox(g, *seeds, probe).found) continue;
      workload.push_back(candidate);
    }
    for (const WorkloadCtp& ctp : workload) {
      auto seeds = SeedSets::Of(g, ctp.seed_sets);
      if (!seeds.ok()) continue;

      QgstpOptions qopts;
      qopts.unidirectional = true;
      qopts.timeout_ms = timeout;
      QgstpResult qr = QgstpApprox(g, *seeds, qopts);
      qgstp.total_ms += qr.elapsed_ms;
      qgstp.found += qr.found ? 1 : 0;
      ++qgstp.queries;

      for (auto [kind, cell] :
           {std::pair{AlgorithmKind::kGam, &gam},
            std::pair{AlgorithmKind::kMoLesp, &molesp}}) {
        CtpFilters filters;
        filters.unidirectional = true;
        filters.limit = 1;
        filters.timeout_ms = timeout;
        auto algo = CreateCtpAlgorithm(kind, g, *seeds, filters, nullptr,
                                       QueueStrategy::kPerSatSubset);
        algo->Run();
        cell->total_ms += algo->stats().elapsed_ms;
        cell->timeouts += algo->stats().timed_out ? 1 : 0;
        cell->found += algo->results().empty() ? 0 : 1;
        ++cell->queries;
      }
    }
    table.AddRow({std::to_string(m), std::to_string(count), qgstp.Avg(),
                  gam.Avg(), molesp.Avg(), std::to_string(qgstp.found),
                  std::to_string(gam.found), std::to_string(molesp.found),
                  std::to_string(gam.timeouts), std::to_string(molesp.timeouts)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): MoLESP ~6-7x faster than QGSTP at every m and\n"
      "scaling well in m; GAM competitive for m<=5 but degrading/timing out as\n"
      "m grows. Found-counts differ only where a UNI witness does not exist\n"
      "(QGSTP and MoLESP agree on feasibility).\n");
}

}  // namespace
}  // namespace eql

int main() {
  eql::Run();
  return 0;
}
