// Figure 13 (Section 5.5.1): EQL evaluation on CDF graphs with m=2,
// SL in {3,6}, graph size swept via NT (NL = 2*NT links = query answers).
//
// Shape to reproduce: every system scales ~linearly in graph size;
// check-only Virtuoso variants are fastest, UNI-MoLESP within a small
// factor (~3x) of them while *returning* trees; Postgres >= 10x slower than
// MoLESP; JEDI only viable on the smallest graphs; Neo4j times out;
// bidirectional MoLESP is the only feasible any-direction engine.
#include "bench_cdf_common.h"

namespace eql {
namespace {

void Run() {
  bench::Banner("EQL on CDF graphs, m=2", "Figure 13");
  const int64_t timeout = bench::TimeoutMs(500, 8000, 900000);
  std::vector<int> nts = bench::Scale() == 0 ? std::vector<int>{100, 400}
                         : bench::Scale() == 2
                             ? std::vector<int>{1000, 10000, 40000, 100000}
                             : std::vector<int>{500, 2000, 8000};

  TablePrinter table(
      {"SL", "NT", "edges", "links", "system", "ms", "results", "status"});
  for (int sl : {3, 6}) {
    for (int nt : nts) {
      CdfParams p;
      p.m = 2;
      p.num_trees = nt;
      p.num_links = 2 * nt;
      p.link_len = sl;
      auto d = MakeCdf(p);
      if (!d.ok()) continue;
      for (const auto& row : bench::RunCdfSystems(*d, timeout)) {
        table.AddRow({std::to_string(sl), std::to_string(nt),
                      std::to_string(d->graph.NumEdges()),
                      std::to_string(p.num_links), row.system,
                      bench::MsOrTimeout(row.ms, row.timed_out),
                      std::to_string(row.results),
                      row.timed_out ? "TIMEOUT" : "ok"});
      }
    }
  }
  table.Print();
  std::printf(
      "\nMoLESP result counts equal the link count NL (one connecting tree per\n"
      "link); check-only systems report reachable pairs, path systems paths.\n");
}

}  // namespace
}  // namespace eql

int main() {
  eql::Run();
  return 0;
}
