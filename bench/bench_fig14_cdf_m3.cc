// Figure 14 (Section 5.5.1): EQL evaluation on CDF graphs with m=3 — the
// three-seed CTP (top leaf + sibling bottom leaf pair). Path systems cannot
// answer this directly; the paper stitches their pairwise paths, which needs
// deduplication and minimization (Section 2). This harness reports the same
// per-system series as Figure 13 plus (a) the bidirectional MoLESP pre-join
// result inflation (the paper observed ~7x over NL, filtered by the BGP
// join) and (b) a stitching demonstration on the smallest instance.
#include "baselines/stitching.h"
#include "bench_cdf_common.h"

namespace eql {
namespace {

void Run() {
  bench::Banner("EQL on CDF graphs, m=3", "Figure 14");
  const int64_t timeout = bench::TimeoutMs(500, 8000, 900000);
  std::vector<int> nts = bench::Scale() == 0 ? std::vector<int>{100, 400}
                         : bench::Scale() == 2
                             ? std::vector<int>{1000, 10000, 40000, 100000}
                             : std::vector<int>{500, 2000, 8000};

  TablePrinter table(
      {"SL", "NT", "edges", "links", "system", "ms", "results", "status"});
  double first_prejoin_ratio = -1;
  for (int sl : {3, 6}) {
    for (int nt : nts) {
      CdfParams p;
      p.m = 3;
      p.num_trees = nt;
      p.num_links = 2 * nt;
      p.link_len = sl;
      auto d = MakeCdf(p);
      if (!d.ok()) continue;
      for (const auto& row : bench::RunCdfSystems(*d, timeout)) {
        table.AddRow({std::to_string(sl), std::to_string(nt),
                      std::to_string(d->graph.NumEdges()),
                      std::to_string(p.num_links), row.system,
                      bench::MsOrTimeout(row.ms, row.timed_out),
                      std::to_string(row.results),
                      row.timed_out ? "TIMEOUT" : "ok"});
      }
      if (first_prejoin_ratio < 0) {
        // Pre-join inflation of the bidirectional CTP (Section 5.5.1).
        EngineOptions opts;
        opts.default_ctp_timeout_ms = timeout;
        EqlEngine engine(d->graph, opts);
        auto r = engine.Run(CdfQueryText(3));
        if (r.ok() && r->table.NumRows() > 0) {
          first_prejoin_ratio = static_cast<double>(r->ctp_runs[0].num_results) /
                                static_cast<double>(p.num_links);
        }
      }
    }
  }
  table.Print();
  if (first_prejoin_ratio > 0) {
    std::printf(
        "\nbidirectional MoLESP pre-join results / NL = %.2fx (paper: ~7x;\n"
        "extra trees connect bottom leaves without a common parent and are\n"
        "filtered by the BGP-CTP join).\n",
        first_prejoin_ratio);
  }

  // Path stitching demonstration (smallest instance): joined tuples vs
  // non-tree drops vs duplicates — why CTPs are computed directly.
  CdfParams p;
  p.m = 3;
  p.num_trees = bench::Scale() == 0 ? 20 : 60;
  p.num_links = p.num_trees;
  p.link_len = 3;
  auto d = MakeCdf(p);
  if (d.ok()) {
    PathEnumOptions opts;
    opts.max_hops = 5;
    opts.timeout_ms = timeout;
    std::vector<std::vector<EdgeId>> trees;
    auto st = StitchThreeWay(d->graph, d->top_leaves, d->bottom_g_leaves,
                             d->bottom_h_leaves, opts, &trees);
    std::printf(
        "\npath stitching on a %zu-edge CDF: %" PRIu64 " joined tuples -> %" PRIu64
        " trees (%" PRIu64 " non-tree joins dropped, %" PRIu64
        " duplicates dropped) in %.1f ms%s\n",
        d->graph.NumEdges(), st.joined_tuples, st.results, st.non_tree_dropped,
        st.duplicates_dropped, st.elapsed_ms, st.timed_out ? " [TIMEOUT]" : "");
  }
}

}  // namespace
}  // namespace eql

int main() {
  eql::Run();
  return 0;
}
