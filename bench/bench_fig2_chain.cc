// Figure 2 (Section 2): CTP result counts grow as 2^N on chain graphs with
// parallel edges — the motivation for CTP filters and timeouts. The harness
// sweeps N, reports the exact result count (must equal 2^N while the search
// completes) and shows the timeout kicking in once the space explodes.
#include <cinttypes>

#include "bench_common.h"
#include "ctp/algorithm.h"
#include "gen/synthetic.h"

namespace eql {
namespace {

void Run() {
  bench::Banner("Chain graphs: exponential CTP result spaces", "Figure 2 / Section 2");
  const int max_n = bench::Scale() == 0 ? 10 : (bench::Scale() == 2 ? 26 : 20);
  const int64_t timeout = bench::TimeoutMs(200, 2000, 60000);

  TablePrinter table({"N", "edges", "expected_2^N", "results", "ms", "status"});
  for (int n = 2; n <= max_n; n += 2) {
    auto d = MakeChain(n);
    auto seeds = SeedSets::Of(d.graph, d.seed_sets);
    CtpFilters filters;
    filters.timeout_ms = timeout;
    auto algo =
        CreateCtpAlgorithm(AlgorithmKind::kMoLesp, d.graph, *seeds, filters);
    algo->Run();
    const SearchStats& s = algo->stats();
    table.AddRow({std::to_string(n), std::to_string(d.graph.NumEdges()),
                  StrFormat("%" PRIu64, uint64_t{1} << n),
                  StrFormat("%" PRIu64, s.results_found), bench::Ms(s.elapsed_ms),
                  s.timed_out ? "TIMEOUT(partial)" : "complete"});
  }
  table.Print();
  std::printf(
      "\nWhile complete, results == 2^N exactly; after the timeout the search\n"
      "returns the partial result set, as the language's TIMEOUT filter mandates.\n");
}

}  // namespace
}  // namespace eql

int main() {
  eql::Run();
  return 0;
}
