// Microbenchmarks (google-benchmark) for the data structures on the CTP
// search's hot path: tree Grow/Merge construction, history dedup, incidence
// iteration, seed-signature ops, and single-pattern BGP scans. Not a paper
// figure; used to sanity-check that the building blocks stay O(small).
#include <benchmark/benchmark.h>

#include "ctp/gam.h"
#include "ctp/history.h"
#include "ctp/tree.h"
#include "gen/kg.h"
#include "gen/synthetic.h"
#include "query/ast.h"
#include "storage/bgp_eval.h"
#include "util/epoch.h"

namespace eql {
namespace {

const Graph& KgGraph() {
  static Graph* g = [] {
    KgParams p;
    p.num_nodes = 20000;
    p.num_edges = 80000;
    auto r = MakeSyntheticKg(p);
    return new Graph(std::move(r).value());
  }();
  return *g;
}

void BM_TreeGrowChain(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  auto d = MakeLine(2, len);
  auto seeds = SeedSets::Of(d.graph, d.seed_sets);
  // Membership is probed the way the engines do it: an epoch-stamped node
  // set maintained incrementally, O(1) per probe and per Grow.
  EpochSet nodes;
  nodes.Reserve(d.graph.NodeIdBound());
  for (auto _ : state) {
    TreeArena arena;
    TreeId t = arena.MakeInit(d.seed_sets[0][0], *seeds);
    NodeId cur = d.seed_sets[0][0];
    nodes.Clear();
    nodes.Insert(cur);
    for (int i = 0; i < len; ++i) {
      const IncidentEdge* next = nullptr;
      for (const IncidentEdge& ie : d.graph.Incident(cur)) {
        if (!nodes.Contains(ie.other)) {
          next = &ie;
          break;
        }
      }
      if (next == nullptr) break;
      t = arena.MakeGrow(t, next->edge, next->other, *seeds);
      nodes.Insert(next->other);
      cur = next->other;
    }
    benchmark::DoNotOptimize(arena.Get(t).edge_set_hash);
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_TreeGrowChain)->Arg(8)->Arg(32)->Arg(128);

void BM_TreeMerge(benchmark::State& state) {
  auto d = MakeStar(2, static_cast<int>(state.range(0)));
  auto seeds = SeedSets::Of(d.graph, d.seed_sets);
  TreeArena arena;
  // Two arms grown to the center.
  auto grow_arm = [&](NodeId seed) {
    TreeId t = arena.MakeInit(seed, *seeds);
    NodeId cur = seed;
    for (;;) {
      const IncidentEdge* next = nullptr;
      for (const IncidentEdge& ie : d.graph.Incident(cur)) {
        if (!arena.ContainsNode(d.graph, t, ie.other)) {
          next = &ie;
          break;
        }
      }
      if (next == nullptr) break;
      t = arena.MakeGrow(t, next->edge, next->other, *seeds);
      cur = next->other;
      if (d.graph.NodeLabel(cur) == "center") break;
    }
    return t;
  };
  TreeId a = grow_arm(d.seed_sets[0][0]);
  TreeId b = grow_arm(d.seed_sets[1][0]);
  for (auto _ : state) {
    TreeId m = arena.MakeMerge(a, b, *seeds);
    benchmark::DoNotOptimize(arena.Get(m).sat);
    arena.PopLast();
  }
}
BENCHMARK(BM_TreeMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_HistoryInsertLookup(benchmark::State& state) {
  auto d = MakeChain(16);
  auto seeds = SeedSets::Of(d.graph, d.seed_sets);
  for (auto _ : state) {
    state.PauseTiming();
    TreeArena arena;
    SearchHistory hist(&arena);
    TreeId t = arena.MakeInit(d.seed_sets[0][0], *seeds);
    hist.Insert(t);
    state.ResumeTiming();
    NodeId cur = d.seed_sets[0][0];
    for (int i = 0; i < 16; ++i) {
      for (const IncidentEdge& ie : d.graph.Incident(cur)) {
        if (arena.ContainsNode(d.graph, t, ie.other)) continue;
        TreeId nt = arena.MakeGrow(t, ie.edge, ie.other, *seeds);
        if (!hist.SeenEdgeSet(nt)) hist.Insert(nt);
        benchmark::DoNotOptimize(hist.NumEdgeSets());
        t = nt;
        cur = ie.other;
        break;
      }
    }
  }
}
BENCHMARK(BM_HistoryInsertLookup);

void BM_IncidenceScan(benchmark::State& state) {
  const Graph& g = KgGraph();
  uint64_t sum = 0;
  for (auto _ : state) {
    for (NodeId n = 0; n < g.NumNodes(); n += 97) {
      for (const IncidentEdge& ie : g.Incident(n)) sum += ie.edge;
    }
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_IncidenceScan);

void BM_EdgePatternScan(benchmark::State& state) {
  const Graph& g = KgGraph();
  EdgePattern ep;
  ep.source = Predicate{"s", {}};
  ep.edge = Predicate{"p", {{"label", CompareOp::kEq, "p1"}}};
  ep.target = Predicate{"t", {}};
  for (auto _ : state) {
    auto table = EvaluateEdgePattern(g, ep);
    benchmark::DoNotOptimize(table.NumRows());
  }
}
BENCHMARK(BM_EdgePatternScan);

void BM_MolespTwoSeedKg(benchmark::State& state) {
  const Graph& g = KgGraph();
  for (auto _ : state) {
    auto seeds = SeedSets::Of(g, {{10}, {20}});
    CtpFilters f;
    f.max_edges = 3;
    GamSearch search(g, *seeds, [&] {
      GamConfig c = GamConfig::MoLesp();
      c.filters = f;
      return c;
    }());
    search.Run();
    benchmark::DoNotOptimize(search.results().size());
  }
}
BENCHMARK(BM_MolespTwoSeedKg);

void BM_MolespFourSeedSubsetQueues(benchmark::State& state) {
  // Exercises the §4.9 per-sat-subset queues and the O(1) PickQueue index.
  // The tree budget bounds the walk deterministically: the bench measures
  // per-provenance cost, not the (huge) 4-seed search space.
  const Graph& g = KgGraph();
  for (auto _ : state) {
    auto seeds = SeedSets::Of(g, {{10}, {20}, {30}, {40}});
    CtpFilters f;
    f.max_edges = 3;
    f.max_trees = 100000;
    GamSearch search(g, *seeds, [&] {
      GamConfig c = GamConfig::MoLesp();
      c.filters = f;
      c.queue_strategy = QueueStrategy::kPerSatSubset;
      return c;
    }());
    search.Run();
    benchmark::DoNotOptimize(search.results().size());
  }
}
BENCHMARK(BM_MolespFourSeedSubsetQueues);

}  // namespace
}  // namespace eql

BENCHMARK_MAIN();
