// bench_parallel — threads-vs-speedup curve for the worker-pool CTP
// executor (ctp/parallel.h) against the sequential engine.
//
// Reproduces the shape of Section 6's claim ("the multi-threaded C++
// version sped GAM up by up to 100x") on the synthetic KG: a fixed CTP
// workload — one large seed set vs. a singleton, the classic STP shape
// whose work is dominated by the split set — is evaluated once sequentially
// and then on pools of 1/2/4/8 workers with one chunk per worker. Every
// configuration must produce the same number of results (the executor is
// exact). Two effects stack: chunks run concurrently across workers, and
// chunk exclusion cuts the merge combinatorics (merge attempts are
// quadratic in trees-per-root, and each chunk sees only its slice of the
// split set), so end-to-end speedup over the 1-chunk run shows up even on a
// single-core host — the JSON records "host_threads" so readers can tell
// how much of the curve is concurrency vs. combinatorics.
//
// Usage: bench_parallel [OUT.json]   (default BENCH_parallel.json)
// Honors EQL_BENCH_SCALE: 0 smoke (4k/16k KG), 1 default (20k/80k KG),
// 2 paper-scale (50k/200k), and EQL_BENCH_TIMEOUT_MS.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ctp/parallel.h"
#include "gen/kg.h"
#include "util/stopwatch.h"

namespace eql {
namespace {

struct Point {
  unsigned workers;
  double ms;
  size_t results;
};

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  bench::Banner("worker-pool CTP executor", "Section 6 (multi-threaded GAM)");

  KgParams p;
  const int scale = bench::Scale();
  p.num_nodes = scale == 0 ? 4000u : scale == 1 ? 20000u : 50000u;
  p.num_edges = static_cast<uint64_t>(p.num_nodes) * 4;
  auto g = MakeSyntheticKg(p);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  std::printf("KG: %zu nodes, %zu edges\n", g->NumNodes(), g->NumEdges());

  // Split-dominated workload: a 64-seed set vs. a singleton per CTP. (A
  // balanced 32/32 shape replicates the non-split side's exploration into
  // every chunk and chunks poorly; the largest-set-split heuristic needs a
  // dominant set to bite.)
  Rng rng(42);
  const int num_ctps = scale == 0 ? 2 : 4;
  const int split_set_size = 64;
  std::vector<WorkloadCtp> workload;
  for (int i = 0; i < num_ctps; ++i) {
    WorkloadCtp w;
    w.seed_sets.resize(2);
    while (w.seed_sets[0].size() < static_cast<size_t>(split_set_size)) {
      NodeId n = static_cast<NodeId>(rng.Below(g->NumNodes()));
      if (g->Degree(n) > 0) w.seed_sets[0].push_back(n);
    }
    w.seed_sets[1].push_back(static_cast<NodeId>(rng.Below(g->NumNodes())));
    workload.push_back(std::move(w));
  }
  CtpFilters filters;
  filters.max_edges = 3;
  filters.timeout_ms = bench::TimeoutMs(10000, 60000, 120000);

  // Sequential baseline: the plain MoLESP engine, one CTP after another.
  double sequential_ms = 0;
  size_t sequential_results = 0;
  {
    Stopwatch sw;
    for (const WorkloadCtp& w : workload) {
      auto seeds = SeedSets::Of(*g, w.seed_sets);
      if (!seeds.ok()) continue;
      auto algo = CreateCtpAlgorithm(AlgorithmKind::kMoLesp, *g, *seeds, filters);
      if (!algo->Run().ok()) continue;
      sequential_results += algo->results().size();
    }
    sequential_ms = sw.ElapsedMs();
  }
  std::printf("sequential: %s ms, %zu results\n\n", bench::Ms(sequential_ms).c_str(),
              sequential_results);

  std::vector<Point> points;
  std::printf("%8s %12s %9s %9s\n", "workers", "ms", "speedup", "results");
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    CtpExecutor pool(workers);
    ParallelCtpOptions opts;
    opts.num_threads = workers;  // one chunk per worker
    opts.executor = &pool;
    Stopwatch sw;
    size_t results = 0;
    for (const WorkloadCtp& w : workload) {
      auto seeds = SeedSets::Of(*g, w.seed_sets);
      if (!seeds.ok()) continue;
      auto out = pool.Evaluate(*g, *seeds, filters, opts);
      if (!out.ok()) continue;
      results += out->results.size();
    }
    const double ms = sw.ElapsedMs();
    points.push_back(Point{workers, ms, results});
    std::printf("%8u %12s %8.2fx %9zu\n", workers, bench::Ms(ms).c_str(),
                sequential_ms / ms, results);
    if (results != sequential_results) {
      std::fprintf(stderr, "RESULT MISMATCH: %zu vs sequential %zu\n", results,
                   sequential_results);
      return 1;
    }
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"parallel_executor\",\n"
               "  \"host_threads\": %u,\n"
               "  \"kg\": {\"nodes\": %zu, \"edges\": %zu},\n"
               "  \"workload\": {\"ctps\": %d, \"m\": 2, \"set_sizes\": [64, 1], "
               "\"max_edges\": 3},\n"
               "  \"sequential_ms\": %.2f,\n"
               "  \"sequential_results\": %zu,\n"
               "  \"points\": [\n",
               std::thread::hardware_concurrency(), g->NumNodes(), g->NumEdges(),
               num_ctps, sequential_ms, sequential_results);
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "    {\"workers\": %u, \"ms\": %.2f, \"speedup\": %.3f, "
                 "\"results\": %zu}%s\n",
                 points[i].workers, points[i].ms, sequential_ms / points[i].ms,
                 points[i].results, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace eql

int main(int argc, char** argv) { return eql::Main(argc, argv); }
