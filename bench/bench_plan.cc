// bench_plan — the cost-based plan layer (eval/plan.h) vs the fixed
// textual-order path, on workloads written in deliberately pessimal order.
//
// Three measurements, all row-identical across the toggle (re-checked here
// as a tripwire; byte-identity is pinned by tests/plan_equivalence_test.cc):
//   * pessimal ordering: an expensive CONNECT appears textually first and a
//     cheap zero-result CONNECT last. The planner runs the cheap stage
//     first, sees its empty table, and downgrades the expensive search to
//     validation-only — the fixed path pays for the full enumeration.
//   * in-query CSE: the same expensive table spec written twice; the
//     planner runs one search and shares it, the fixed path runs both.
//   * batch CSE: RunBatch over copies of the same query; later queries hit
//     the batch-scoped cache.
//
// Usage: bench_plan [OUT.json]   (default BENCH_plan.json)
// Honors EQL_BENCH_SCALE: 0 smoke, 1 default, 2 paper-scale.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/engine.h"
#include "graph/graph.h"
#include "util/stopwatch.h"

namespace eql {
namespace {

/// A layered DAG S -> L1 -> ... -> Lk -> T of width `w`: every layer is
/// fully connected to the next, so CONNECT("S", "T") with MAX = k+1 must
/// enumerate w^k minimal trees — deliberately expensive. Two extra
/// edge-free nodes ("lone0", "lone1") give the planner a provably-cheap,
/// provably-empty CONNECT to run first.
Graph MakePessimalGraph(int width, int layers) {
  Graph g;
  std::vector<NodeId> prev = {g.AddNode("S")};
  for (int l = 0; l < layers; ++l) {
    std::vector<NodeId> layer;
    for (int i = 0; i < width; ++i) {
      layer.push_back(g.AddNode("L" + std::to_string(l) + "_" +
                                std::to_string(i)));
    }
    for (NodeId a : prev) {
      for (NodeId b : layer) g.AddEdge(a, b, "e");
    }
    prev = std::move(layer);
  }
  NodeId t = g.AddNode("T");
  for (NodeId a : prev) g.AddEdge(a, t, "e");
  g.AddNode("lone0");
  g.AddNode("lone1");
  g.Finalize();
  return g;
}

struct Timing {
  double fixed_ms = 0;
  double planned_ms = 0;
  size_t fixed_rows = 0;
  size_t planned_rows = 0;
  double Speedup() const { return fixed_ms / (planned_ms > 0 ? planned_ms : 1e-9); }
};

/// Interleaved min-of-reps over Execute with the planner toggled per call,
/// so host load drift cannot masquerade as a planner win.
Timing Measure(const PreparedQuery& prepared, int iters, int reps) {
  Timing t;
  ExecOptions fixed;
  fixed.use_planner = false;
  ExecOptions planned;
  planned.use_planner = true;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch sw;
    t.fixed_rows = 0;
    for (int i = 0; i < iters; ++i) {
      auto r = prepared.Execute({}, fixed);
      if (r.ok()) t.fixed_rows += r->table.NumRows();
    }
    const double f = sw.ElapsedMs();
    sw.Restart();
    t.planned_rows = 0;
    for (int i = 0; i < iters; ++i) {
      auto r = prepared.Execute({}, planned);
      if (r.ok()) t.planned_rows += r->table.NumRows();
    }
    const double p = sw.ElapsedMs();
    if (rep == 0 || f < t.fixed_ms) t.fixed_ms = f;
    if (rep == 0 || p < t.planned_ms) t.planned_ms = p;
  }
  return t;
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_plan.json";
  bench::Banner("cost-based plan layer vs fixed textual order",
                "Section 3 (evaluation strategy; plan-layer extension)");

  const int scale = bench::Scale();
  const int width = scale == 0 ? 8 : scale == 1 ? 12 : 16;
  const int layers = 3;
  Graph g = MakePessimalGraph(width, layers);
  std::printf("layered DAG: %zu nodes, %zu edges (width %d, %d layers)\n",
              g.NumNodes(), g.NumEdges(), width, layers);
  EqlEngine engine(g);  // planner on by default; toggled per Execute

  const int iters = scale == 0 ? 3 : 5;
  const int reps = 5;
  const int max_edges = layers + 1;

  // ---- Pessimal ordering: expensive search first, empty cheap probe last.
  const std::string pessimal =
      "SELECT ?big ?none WHERE { "
      "CONNECT(\"S\", \"T\" -> ?big) MAX " + std::to_string(max_edges) + " "
      "CONNECT(\"lone0\", \"lone1\" -> ?none) MAX 1 }";
  auto pq = engine.Prepare(pessimal);
  if (!pq.ok()) {
    std::fprintf(stderr, "%s\n", pq.status().ToString().c_str());
    return 1;
  }
  const Timing order = Measure(*pq, iters, reps);
  if (order.fixed_rows != order.planned_rows) {
    std::fprintf(stderr, "PLAN MISMATCH (pessimal): %zu fixed vs %zu planned\n",
                 order.fixed_rows, order.planned_rows);
    return 1;
  }
  std::printf(
      "pessimal order: fixed %8.2f ms | planned %8.2f ms | %5.2fx "
      "(empty probe first, big search skipped; %zu rows)\n",
      order.fixed_ms, order.planned_ms, order.Speedup(), order.planned_rows);

  // ---- In-query CSE: the identical expensive spec twice.
  // TOP keeps the cross-product join bounded (32x32 rows) while the search
  // still has to enumerate every minimal tree — the cost being shared.
  const std::string dup =
      "SELECT ?t1 ?t2 WHERE { "
      "CONNECT(\"S\", \"T\" -> ?t1) MAX " + std::to_string(max_edges) +
      " SCORE edge_count TOP 32 "
      "CONNECT(\"S\", \"T\" -> ?t2) MAX " + std::to_string(max_edges) +
      " SCORE edge_count TOP 32 }";
  auto dq = engine.Prepare(dup);
  if (!dq.ok()) {
    std::fprintf(stderr, "%s\n", dq.status().ToString().c_str());
    return 1;
  }
  const Timing cse = Measure(*dq, /*iters=*/1, reps);
  if (cse.fixed_rows != cse.planned_rows) {
    std::fprintf(stderr, "PLAN MISMATCH (cse): %zu fixed vs %zu planned\n",
                 cse.fixed_rows, cse.planned_rows);
    return 1;
  }
  std::printf(
      "in-query CSE:   fixed %8.2f ms | planned %8.2f ms | %5.2fx "
      "(one search shared by both tables; %zu rows)\n",
      cse.fixed_ms, cse.planned_ms, cse.Speedup(), cse.planned_rows);

  // ---- Batch CSE: the same single-CTP query N times through RunBatch.
  const std::string single =
      "SELECT ?t WHERE { CONNECT(\"S\", \"T\" -> ?t) MAX " +
      std::to_string(max_edges) + " }";
  const int batch_n = 4;
  std::vector<std::string_view> batch(batch_n, single);
  double batch_fixed_ms = 0, batch_planned_ms = 0;
  size_t batch_rows[2] = {0, 0};
  EngineOptions off_opts;
  off_opts.use_planner = false;
  EqlEngine off_engine(g, off_opts);
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch sw;
    auto fixed_results = off_engine.RunBatch(batch);
    const double f = sw.ElapsedMs();
    sw.Restart();
    auto planned_results = engine.RunBatch(batch);
    const double p = sw.ElapsedMs();
    if (rep == 0 || f < batch_fixed_ms) batch_fixed_ms = f;
    if (rep == 0 || p < batch_planned_ms) batch_planned_ms = p;
    batch_rows[0] = batch_rows[1] = 0;
    for (const auto& r : fixed_results) {
      if (r.ok()) batch_rows[0] += r->table.NumRows();
    }
    for (const auto& r : planned_results) {
      if (r.ok()) batch_rows[1] += r->table.NumRows();
    }
  }
  if (batch_rows[0] != batch_rows[1]) {
    std::fprintf(stderr, "PLAN MISMATCH (batch): %zu fixed vs %zu planned\n",
                 batch_rows[0], batch_rows[1]);
    return 1;
  }
  std::printf(
      "batch CSE (%d): fixed %8.2f ms | planned %8.2f ms | %5.2fx "
      "(first search reused by the rest; %zu rows)\n",
      batch_n, batch_fixed_ms, batch_planned_ms,
      batch_fixed_ms / (batch_planned_ms > 0 ? batch_planned_ms : 1e-9),
      batch_rows[1]);

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"plan_layer\",\n"
      "  \"graph\": {\"nodes\": %zu, \"edges\": %zu, \"width\": %d, "
      "\"layers\": %d},\n"
      "  \"pessimal\": {\"fixed_ms\": %.3f, \"planned_ms\": %.3f, "
      "\"speedup\": %.3f, \"rows\": %zu},\n"
      "  \"cse\": {\"fixed_ms\": %.3f, \"planned_ms\": %.3f, "
      "\"speedup\": %.3f, \"rows\": %zu},\n"
      "  \"batch\": {\"queries\": %d, \"fixed_ms\": %.3f, "
      "\"planned_ms\": %.3f, \"speedup\": %.3f, \"rows\": %zu}\n"
      "}\n",
      g.NumNodes(), g.NumEdges(), width, layers, order.fixed_ms,
      order.planned_ms, order.Speedup(), order.planned_rows, cse.fixed_ms,
      cse.planned_ms, cse.Speedup(), cse.planned_rows, batch_n, batch_fixed_ms,
      batch_planned_ms,
      batch_fixed_ms / (batch_planned_ms > 0 ? batch_planned_ms : 1e-9),
      batch_rows[1]);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace eql

int main(int argc, char** argv) { return eql::Main(argc, argv); }
