// bench_server — open-loop load generator for the eqld daemon, the
// latency/throughput numbers behind the server subsystem (docs/server.md).
//
// Open-loop means arrivals are scheduled on a fixed clock, NOT gated on
// responses: request i is due at start + i/rate, and its latency is measured
// from that *scheduled* arrival to the last response byte — so queueing
// delay under overload shows up in the percentiles instead of silently
// throttling the offered rate (the coordinated-omission trap).
//
// Default is self-hosted: an in-process EqldServer on an ephemeral port over
// a seeded synthetic KG, so the binary is self-contained for CI. --port
// targets an external eqld instead (the CI smoke job starts a real daemon on
// a packed snapshot and points this at it; the workload assumes synthetic-KG
// node labels "n<i>", which eqld --synthetic and the smoke snapshot share).
//
// Pushed-back requests (429/503) are retried with jittered exponential
// backoff honoring the server's Retry-After hint (util/backoff.h) — the
// well-behaved-client half of the overload contract in docs/server.md.
// Retries and total backoff sleep are accounted separately in the output so
// an overloaded run is visible as such. --no-retry measures raw shed rate.
//
// Usage: bench_server [options] [OUT.json]     (default BENCH_server.json)
//   --host H          target host          (default 127.0.0.1)
//   --port P          target port; 0 = self-host in-process (default 0)
//   --rate QPS        offered arrival rate (default by scale)
//   --connections N   keep-alive client connections (default 8)
//   --duration-s N    measurement window   (default by scale)
//   --no-retry        report 429/503 as-is instead of backing off
//
// Honors EQL_BENCH_SCALE: 0 = 3s @ 100 QPS (smoke), 1 = 10s @ 200 QPS,
// 2 = 30s @ 400 QPS (the CI smoke job's configuration).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/kg.h"
#include "server/http.h"
#include "server/server.h"
#include "util/backoff.h"
#include "util/table_printer.h"

namespace eql {
namespace {

using Clock = std::chrono::steady_clock;

// Bounded per-request work: MAX 2 keeps the tree search small and max_rows
// caps the body, so one request is a realistic small query, not a bulk dump.
constexpr const char* kTarget = "/query?format=json&max_rows=10";
constexpr const char* kQuery =
    "SELECT ?w WHERE { CONNECT(\"n1\", \"n2\" -> ?w) MAX 2 }";

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = self-host
  double rate = 0;    ///< 0 = pick by scale
  int connections = 8;
  int duration_s = 0;  ///< 0 = pick by scale
  bool retry = true;   ///< back off and retry pushed-back (429/503) requests
  std::string out = "BENCH_server.json";
};

struct WorkerTally {
  std::vector<double> latencies_ms;
  uint64_t ok = 0;
  uint64_t status_4xx = 0;
  uint64_t status_5xx = 0;
  uint64_t transport_errors = 0;
  uint64_t retries = 0;         ///< retry attempts after a 429/503
  double backoff_ms = 0;        ///< total time slept backing off
  uint64_t retry_success = 0;   ///< requests that succeeded on a retry
};

/// One worker: pulls globally-scheduled arrivals, waits for their due time,
/// issues the request on its own keep-alive connection (reconnecting after
/// transport errors) and records latency-from-due-time.
void RunWorker(const Options& opt, uint16_t port, Clock::time_point start,
               double interval_s, uint64_t total, std::atomic<uint64_t>* next,
               uint64_t seed, WorkerTally* tally) {
  std::unique_ptr<HttpClientConnection> conn;
  // Short backoff ceiling: a bench must stay bounded even when the server
  // hints multi-second Retry-After values (the hint replaces the exponential
  // base; the cap and jitter still apply — util/backoff.h).
  BackoffPolicy policy;
  policy.initial_ms = 50;
  policy.max_ms = 2000;
  policy.max_attempts = 3;
  Backoff backoff(policy, seed);
  for (;;) {
    const uint64_t i = next->fetch_add(1, std::memory_order_relaxed);
    if (i >= total) return;
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(i * interval_s));
    std::this_thread::sleep_until(due);

    int attempt = 0;
    for (;;) {
      if (conn == nullptr) {
        auto c = HttpClientConnection::Connect(opt.host, port);
        if (!c.ok()) {
          ++tally->transport_errors;
          break;
        }
        conn = std::make_unique<HttpClientConnection>(std::move(*c));
      }
      auto r = conn->Request("POST", kTarget, kQuery);
      if (!r.ok()) {
        ++tally->transport_errors;
        conn.reset();  // stale keep-alive state; reconnect on the next arrival
        break;
      }
      // Pushed back: honor the server's Retry-After (jittered) and try again.
      if (opt.retry && (r->status == 429 || r->status == 503) &&
          backoff.ShouldRetry(attempt + 1)) {
        ++attempt;
        ++tally->retries;
        const int64_t delay_ms =
            backoff.NextDelayMs(attempt, RetryAfterSeconds(*r));
        tally->backoff_ms += static_cast<double>(delay_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        continue;
      }
      // Latency from the SCHEDULED arrival to the last byte of the attempt
      // that settled the request — backoff sleeps count, as they must in an
      // open-loop measurement.
      tally->latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - due)
              .count());
      if (r->status >= 500) {
        ++tally->status_5xx;
      } else if (r->status >= 400) {
        ++tally->status_4xx;
      } else {
        ++tally->ok;
        if (attempt > 0) ++tally->retry_success;
      }
      break;
    }
  }
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace
}  // namespace eql

int main(int argc, char** argv) {
  using namespace eql;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_server: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      opt.host = value();
    } else if (arg == "--port") {
      opt.port = static_cast<uint16_t>(std::atoi(value()));
    } else if (arg == "--rate") {
      opt.rate = std::atof(value());
    } else if (arg == "--connections") {
      opt.connections = std::atoi(value());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::atoi(value());
    } else if (arg == "--no-retry") {
      opt.retry = false;
    } else if (arg[0] != '-') {
      opt.out = arg;
    } else {
      std::fprintf(stderr, "bench_server: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  const int scale = bench::Scale();
  if (opt.duration_s == 0) opt.duration_s = scale == 0 ? 3 : scale == 1 ? 10 : 30;
  if (opt.rate == 0) opt.rate = scale == 0 ? 100 : scale == 1 ? 200 : 400;

  bench::Banner("eqld open-loop load (QPS / p50 / p99)",
                "server subsystem, docs/server.md");

  // Self-host unless pointed at an external daemon.
  std::unique_ptr<EqldServer> self_hosted;
  uint16_t port = opt.port;
  if (port == 0) {
    KgParams params;
    params.num_nodes = 10000;
    params.num_edges = 40000;
    auto g = MakeSyntheticKg(params);
    if (!g.ok()) {
      std::fprintf(stderr, "bench_server: %s\n", g.status().ToString().c_str());
      return 1;
    }
    ServerOptions server_options;
    self_hosted = std::make_unique<EqldServer>(server_options);
    self_hosted->SetGraph(std::move(g).value(), "synthetic(10000,40000)");
    Status st = self_hosted->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "bench_server: %s\n", st.ToString().c_str());
      return 1;
    }
    port = self_hosted->port();
    std::printf("self-hosted eqld on 127.0.0.1:%u\n", port);
  } else {
    std::printf("targeting %s:%u\n", opt.host.c_str(), port);
  }
  std::printf("offered %.0f QPS for %ds over %d connections\n\n", opt.rate,
              opt.duration_s, opt.connections);

  const uint64_t total = static_cast<uint64_t>(opt.rate * opt.duration_s);
  const double interval_s = 1.0 / opt.rate;
  std::atomic<uint64_t> next{0};
  std::vector<WorkerTally> tallies(opt.connections);
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(opt.connections);
  for (int w = 0; w < opt.connections; ++w) {
    workers.emplace_back(RunWorker, std::cref(opt), port, start, interval_s,
                         total, &next, static_cast<uint64_t>(w + 1),
                         &tallies[w]);
  }
  for (auto& w : workers) w.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerTally sum;
  for (const auto& t : tallies) {
    sum.ok += t.ok;
    sum.status_4xx += t.status_4xx;
    sum.status_5xx += t.status_5xx;
    sum.transport_errors += t.transport_errors;
    sum.retries += t.retries;
    sum.backoff_ms += t.backoff_ms;
    sum.retry_success += t.retry_success;
    sum.latencies_ms.insert(sum.latencies_ms.end(), t.latencies_ms.begin(),
                            t.latencies_ms.end());
  }
  std::sort(sum.latencies_ms.begin(), sum.latencies_ms.end());
  const double qps = sum.ok / elapsed_s;
  const double p50 = Percentile(sum.latencies_ms, 0.50);
  const double p99 = Percentile(sum.latencies_ms, 0.99);

  TablePrinter table({"metric", "value"});
  table.AddRow({"requests", std::to_string(total)});
  table.AddRow({"ok", std::to_string(sum.ok)});
  table.AddRow({"4xx", std::to_string(sum.status_4xx)});
  table.AddRow({"5xx", std::to_string(sum.status_5xx)});
  table.AddRow({"transport errors", std::to_string(sum.transport_errors)});
  table.AddRow({"retries", std::to_string(sum.retries)});
  table.AddRow({"retry successes", std::to_string(sum.retry_success)});
  table.AddRow({"backoff ms total", bench::Ms(sum.backoff_ms)});
  table.AddRow({"achieved QPS", bench::Ms(qps)});
  table.AddRow({"p50 ms", bench::Ms(p50)});
  table.AddRow({"p99 ms", bench::Ms(p99)});
  std::printf("%s", table.Render().c_str());

  std::FILE* out = std::fopen(opt.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_server: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\"bench\":\"server\",\"scale\":%d,"
               "\"offered_qps\":%.1f,\"duration_s\":%d,\"connections\":%d,"
               "\"requests\":%llu,\"ok\":%llu,\"status_4xx\":%llu,"
               "\"status_5xx\":%llu,\"transport_errors\":%llu,"
               "\"retries\":%llu,\"retry_success\":%llu,\"backoff_ms\":%.1f,"
               "\"qps\":%.2f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}\n",
               scale, opt.rate, opt.duration_s, opt.connections,
               static_cast<unsigned long long>(total),
               static_cast<unsigned long long>(sum.ok),
               static_cast<unsigned long long>(sum.status_4xx),
               static_cast<unsigned long long>(sum.status_5xx),
               static_cast<unsigned long long>(sum.transport_errors),
               static_cast<unsigned long long>(sum.retries),
               static_cast<unsigned long long>(sum.retry_success),
               sum.backoff_ms, qps, p50, p99);
  std::fclose(out);
  std::printf("\nwrote %s\n", opt.out.c_str());

  if (self_hosted != nullptr) self_hosted->Shutdown();
  // Zero successful requests means the run measured nothing — fail loudly so
  // CI can't mistake a dead server for a fast one.
  return sum.ok > 0 ? 0 : 1;
}
