// bench_snapshot — the storage-layer numbers behind the mmap snapshot
// design: zero-copy open time vs parsing the text graph, parallel bulk-load
// throughput and peak RSS, and end-to-end query latency served straight off
// the mapped file.
//
// Pipeline (all artifacts under a scratch dir in $TMPDIR):
//   1. generate a seeded scale-free KG and save it as TSV (gen/kg.h)
//   2. LoadGraphFile(tsv)          -> text_load_ms       (the baseline)
//   3. eql_pack pack (subprocess)  -> throughput, peak RSS of a *fresh*
//      process, so the packer's own memory behavior is measured, not this
//      harness's generator heap
//   4. OpenSnapshot(snap)          -> open_ms, min of 5  (the contender)
//   5. a CONNECT workload on both graphs -> latency + row-identity tripwire
//
// Acceptance numbers recorded for CI: open_speedup = text_load_ms/open_ms
// (>= 100 expected at scale >= 1) and rss_ratio = pack peak RSS / snapshot
// file size (< 2 expected: section streaming frees as it writes).
//
// Usage: bench_snapshot [OUT.json]   (default BENCH_snapshot.json)
// Honors EQL_BENCH_SCALE: 0 = 120k edges (smoke), 1 = 1M edges (default),
// 2 = 10M edges (paper scale). Runs at different scales ACCUMULATE in the
// output file ("runs" array keyed by scale), so one JSON can record both the
// 1M-edge open-speedup comparison and the 10M-edge end-to-end run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/engine.h"
#include "gen/kg.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace eql {
namespace {

/// Pulls the number following `"key":` out of a flat JSON object (the
/// eql_pack --json output); 0 when absent.
double JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::atof(json.c_str() + pos + needle.size());
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Extracts the raw text of each object in the `"runs": [...]` array of a
/// previous output file, brace-matched (run objects nest a "graph" object).
std::vector<std::string> ExistingRuns(const std::string& json) {
  std::vector<std::string> runs;
  size_t pos = json.find("\"runs\":");
  if (pos == std::string::npos) return runs;
  pos = json.find('[', pos);
  if (pos == std::string::npos) return runs;
  int depth = 0;
  size_t start = 0;
  for (size_t i = pos + 1; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') {
      if (depth++ == 0) start = i;
    } else if (c == '}') {
      if (--depth == 0) runs.push_back(json.substr(start, i - start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return runs;
}

struct QueryStats {
  int count = 0;
  double mean_ms = 0;
  double max_ms = 0;
  size_t rows = 0;
  bool rows_match = true;
};

/// Runs a small CONNECT workload (endpoints drawn by gen/kg.h's workload
/// generator) on both graphs; latencies are taken from the snapshot-backed
/// run, and row counts must agree query by query.
QueryStats RunWorkload(const Graph& text_graph, const Graph& snap_graph,
                       int count, int64_t timeout_ms) {
  QueryStats qs;
  Rng rng(17);
  auto ctps = MakeCtpWorkload(snap_graph, count, /*m=*/2, /*set_size=*/1, &rng);
  EngineOptions opts;
  opts.default_ctp_timeout_ms = timeout_ms;
  EqlEngine text_engine(text_graph, opts);
  EqlEngine snap_engine(snap_graph, opts);
  for (const WorkloadCtp& ctp : ctps) {
    const std::string q =
        "SELECT ?t WHERE { CONNECT(\"" +
        snap_graph.NodeLabel(ctp.seed_sets[0][0]) + "\", \"" +
        snap_graph.NodeLabel(ctp.seed_sets[1][0]) +
        "\" -> ?t) MAX 4 SCORE edge_count TOP 16 }";
    Stopwatch sw;
    auto snap_r = snap_engine.Run(q);
    const double ms = sw.ElapsedMs();
    auto text_r = text_engine.Run(q);
    if (!snap_r.ok() || !text_r.ok()) {
      qs.rows_match = false;
      continue;
    }
    ++qs.count;
    qs.mean_ms += ms;
    if (ms > qs.max_ms) qs.max_ms = ms;
    qs.rows += snap_r->table.NumRows();
    // Row identity only holds for complete runs: a timed-out search is cut
    // at a wall-clock point that differs between the two executions.
    if (snap_r->outcome == SearchOutcome::kOk &&
        text_r->outcome == SearchOutcome::kOk &&
        snap_r->table.NumRows() != text_r->table.NumRows()) {
      qs.rows_match = false;
    }
  }
  if (qs.count > 0) qs.mean_ms /= qs.count;
  return qs;
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_snapshot.json";
  bench::Banner("mmap snapshot open vs text load + bulk-load throughput",
                "Section 5 (real-scale datasets; storage-layer extension)");

  const int scale = bench::Scale();
  KgParams params;
  params.num_nodes = scale == 0 ? 30000 : scale == 1 ? 250000 : 2500000;
  params.num_edges = scale == 0 ? 120000 : scale == 1 ? 1000000 : 10000000;
  params.num_labels = 50;
  params.num_types = 20;
  params.seed = 7;

  const auto dir =
      std::filesystem::temp_directory_path() / "eql_bench_snapshot";
  std::filesystem::create_directories(dir);
  const std::string tsv = (dir / "graph.tsv").string();
  const std::string snap = (dir / "graph.snap").string();
  const std::string pack_json = (dir / "pack.json").string();

  // 1. Generate and save the input text graph.
  Stopwatch sw;
  {
    auto gen = MakeSyntheticKg(params);
    if (!gen.ok()) {
      std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
      return 1;
    }
    Status st = SaveGraphFile(*gen, tsv);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }  // generator graph freed here
  const double gen_ms = sw.ElapsedMs();
  const uint64_t text_bytes = std::filesystem::file_size(tsv);
  std::printf("generated %s: %.1f MB TSV (%llu edges) in %.0f ms\n",
              tsv.c_str(), text_bytes / 1e6,
              static_cast<unsigned long long>(params.num_edges), gen_ms);

  // 2. Baseline: full text parse + index build.
  sw.Restart();
  auto text_graph = LoadGraphFile(tsv);
  if (!text_graph.ok()) {
    std::fprintf(stderr, "%s\n", text_graph.status().ToString().c_str());
    return 1;
  }
  const double text_load_ms = sw.ElapsedMs();
  std::printf("text load:  %8.1f ms (%zu nodes, %zu edges)\n", text_load_ms,
              text_graph->NumNodes(), text_graph->NumEdges());

  // 3. Pack in a fresh process so peak RSS is the packer's own.
  std::string pack_bin =
      (std::filesystem::path(argv[0]).parent_path() / "eql_pack").string();
  if (!std::filesystem::exists(pack_bin)) pack_bin = "eql_pack";
  const std::string cmd = pack_bin + " pack " + tsv + " -o " + snap +
                          " --json > " + pack_json + " 2> /dev/null";
  sw.Restart();
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "pack failed: %s\n", cmd.c_str());
    return 1;
  }
  const double pack_wall_ms = sw.ElapsedMs();
  const std::string stats_json = ReadWholeFile(pack_json);
  const double pack_threads = JsonNumber(stats_json, "threads");
  const double pack_rss = JsonNumber(stats_json, "peak_rss_bytes");
  const uint64_t snap_bytes = std::filesystem::file_size(snap);
  const double rss_ratio = pack_rss / static_cast<double>(snap_bytes);
  std::printf(
      "bulk pack:  %8.1f ms x%d threads -> %.1f MB snapshot "
      "(peak RSS %.1f MB = %.2fx file size)\n",
      pack_wall_ms, static_cast<int>(pack_threads), snap_bytes / 1e6,
      pack_rss / 1e6, rss_ratio);

  // 4. Zero-copy open (min of 5: the first mmap may fault the header in).
  double open_ms = 0;
  Result<Graph> snap_graph = Status::Internal("unopened");
  for (int i = 0; i < 5; ++i) {
    sw.Restart();
    auto g = OpenSnapshot(snap);
    const double ms = sw.ElapsedMs();
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    snap_graph = std::move(g);
    if (i == 0 || ms < open_ms) open_ms = ms;
  }
  const double open_speedup = text_load_ms / (open_ms > 0 ? open_ms : 1e-9);
  std::printf("mmap open:  %8.3f ms -> %.0fx faster than the text load\n",
              open_ms, open_speedup);

  // 5. Query latency off the mapped file + row-identity tripwire.
  const int query_count = scale == 0 ? 8 : scale == 1 ? 8 : 5;
  const int64_t timeout_ms = bench::TimeoutMs(10000, 30000, 120000);
  const QueryStats qs =
      RunWorkload(*text_graph, *snap_graph, query_count, timeout_ms);
  std::printf(
      "queries:    %d CONNECT(m=2) runs off the snapshot: mean %.1f ms, "
      "max %.1f ms, %zu rows (%s)\n",
      qs.count, qs.mean_ms, qs.max_ms, qs.rows,
      qs.rows_match ? "rows match the text-loaded graph" : "ROW MISMATCH");
  if (!qs.rows_match) {
    std::fprintf(stderr, "snapshot and text graphs disagree; failing\n");
    return 1;
  }

  // One run object per scale; earlier runs at other scales are kept so a
  // scale-1 comparison and a scale-2 end-to-end record share one file.
  char run_buf[1024];
  std::snprintf(
      run_buf, sizeof run_buf,
      "    {\n"
      "      \"scale\": %d,\n"
      "      \"graph\": {\"nodes\": %zu, \"edges\": %zu, \"strings\": %zu},\n"
      "      \"text_bytes\": %llu,\n"
      "      \"snapshot_bytes\": %llu,\n"
      "      \"gen_ms\": %.1f,\n"
      "      \"text_load_ms\": %.3f,\n"
      "      \"open_ms\": %.3f,\n"
      "      \"open_speedup\": %.1f,\n"
      "      \"pack\": {\"wall_ms\": %.1f, \"threads\": %d, "
      "\"peak_rss_bytes\": %.0f, \"rss_ratio\": %.3f},\n"
      "      \"queries\": {\"count\": %d, \"mean_ms\": %.3f, "
      "\"max_ms\": %.3f, \"rows\": %zu, \"rows_match\": %s}\n"
      "    }",
      scale, snap_graph->NumNodes(), snap_graph->NumEdges(),
      snap_graph->dict().size(), static_cast<unsigned long long>(text_bytes),
      static_cast<unsigned long long>(snap_bytes), gen_ms, text_load_ms,
      open_ms, open_speedup, pack_wall_ms, static_cast<int>(pack_threads),
      pack_rss, rss_ratio, qs.count, qs.mean_ms, qs.max_ms, qs.rows,
      qs.rows_match ? "true" : "false");

  std::vector<std::string> runs = ExistingRuns(ReadWholeFile(out_path));
  runs.erase(std::remove_if(runs.begin(), runs.end(),
                            [scale](const std::string& r) {
                              return static_cast<int>(JsonNumber(r, "scale")) ==
                                     scale;
                            }),
             runs.end());
  runs.push_back(run_buf);
  std::sort(runs.begin(), runs.end(),
            [](const std::string& a, const std::string& b) {
              return JsonNumber(a, "scale") < JsonNumber(b, "scale");
            });

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"snapshot\",\n  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    // Preserved runs were captured from their '{', without leading indent.
    std::fprintf(f, "%s%s%s\n", runs[i][0] == '{' ? "    " : "",
                 runs[i].c_str(), i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu run%s)\n", out_path, runs.size(),
              runs.size() == 1 ? "" : "s");
  return 0;
}

}  // namespace
}  // namespace eql

int main(int argc, char** argv) { return eql::Main(argc, argv); }
