// Table 1 (Section 5.5.2): full EQL queries on a YAGO3-shaped graph —
// J1 (3 BGPs, 2 CTPs), J2 (2 BGPs, 1 CTP with a very large seed set), and
// J3 (1 CTP with an N seed set) — comparing the EQL engine (MoLESP inside)
// against the JEDI-like and Neo4j-like path baselines, plus an ablation of
// the Section 4.9 optimizations (single queue vs per-sat-subset queues).
//
// The YAGO3 subset (6M triples) is substituted by a seeded scale-free
// labeled graph (DESIGN.md §2). Shape to reproduce: the engine handles all
// three queries within seconds; without the §4.9 strategies, J2/J3 blow up
// (timeout at equal budget); path baselines return paths, not trees, and
// JEDI-like enumeration is competitive only when label-constrained.
#include <cinttypes>

#include "baselines/path_enum.h"
#include "bench_common.h"
#include "eval/engine.h"
#include "gen/kg.h"

namespace eql {
namespace {

struct QuerySpec {
  const char* name;
  std::string text;
};

void Run() {
  bench::Banner("EQL queries J1/J2/J3 on a YAGO3-shaped graph", "Table 1");
  KgParams kg;
  switch (bench::Scale()) {
    case 0:
      kg.num_nodes = 2000;
      kg.num_edges = 6000;
      break;
    case 2:
      kg.num_nodes = 600000;
      kg.num_edges = 2400000;
      break;
    default:
      kg.num_nodes = 30000;
      kg.num_edges = 120000;
      break;
  }
  kg.seed = 23;
  auto graph = MakeSyntheticKg(kg);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    std::exit(1);
  }
  const Graph& g = *graph;
  std::printf("graph: %zu nodes, %zu edges (YAGO3-shaped substitute)\n\n",
              g.NumNodes(), g.NumEdges());
  const int64_t timeout = bench::TimeoutMs(300, 5000, 300000);

  // p0/p1 are the most frequent labels (Zipf head), giving large BGP tables;
  // J1 uses mid-frequency labels so its two CTPs stay selective (the paper's
  // J1 finished in ~2 s).
  std::vector<QuerySpec> queries;
  queries.push_back(
      {"J1(3 BGPs, 2 CTPs)",
       "SELECT ?x ?y ?w1 ?w2 WHERE {\n"
       "  ?x \"p20\" ?y .\n"
       "  ?y \"p30\" ?z .\n"
       "  ?x \"p40\" ?u .\n"
       // LABEL keeps the 3-hop search out of the scale-free hubs (through
       // which everything connects to everything in <= 3 steps).
       "  CONNECT(?x, ?z -> ?w1) MAX 3 LABEL {\"p20\", \"p30\", \"p40\"}\n"
       "  CONNECT(?y, ?u -> ?w2) MAX 3 LABEL {\"p20\", \"p30\", \"p40\"}\n"
       "}"});
  queries.push_back(
      {"J2(2 BGPs, 1 CTP, large seed set)",
       "SELECT ?x ?z ?w WHERE {\n"
       "  ?x \"p0\" ?y .\n"
       "  ?z \"p1\" ?y .\n"
       "  CONNECT(?x, ?z -> ?w) MAX 3 LIMIT 5000\n"
       "}"});
  queries.push_back(
      {"J3(1 CTP, N seed set)",
       "SELECT ?w WHERE {\n"
       "  CONNECT(\"n42\", ?anything -> ?w) MAX 4 LIMIT 5000\n"
       "}"});

  TablePrinter table({"query", "system", "ms", "rows", "ctp_trees", "status"});
  for (const QuerySpec& q : queries) {
    for (bool use49 : {true, false}) {
      EngineOptions opts;
      opts.default_ctp_timeout_ms = timeout;
      opts.auto_queue_strategy = use49;
      opts.materialize_universal_sets = !use49;  // ablate §4.9 (i) too
      EqlEngine engine(g, opts);
      auto r = engine.Run(q.text);
      std::string system = use49 ? "EQL(MoLESP, §4.9 on)" : "EQL(MoLESP, §4.9 off)";
      if (!r.ok()) {
        table.AddRow({q.name, system, "-", "-", "-", r.status().ToString()});
        continue;
      }
      uint64_t trees = 0;
      bool timed_out = false;
      for (const auto& run : r->ctp_runs) {
        trees += run.stats.trees_built;
        timed_out |= run.stats.timed_out;
      }
      table.AddRow({q.name, system, bench::Ms(r->total_ms),
                    std::to_string(r->table.NumRows()),
                    StrFormat("%" PRIu64, trees),
                    timed_out ? "CTP TIMEOUT (partial)" : "ok"});
    }
  }

  // Path baselines on J2's seed shape: all p0-sources vs all p1-sources.
  {
    StrId p0 = g.dict().Lookup("p0");
    StrId p1 = g.dict().Lookup("p1");
    std::vector<NodeId> s1, s2;
    for (EdgeId e : g.EdgesWithLabel(p0)) s1.push_back(g.Source(e));
    for (EdgeId e : g.EdgesWithLabel(p1)) s2.push_back(g.Source(e));
    std::sort(s1.begin(), s1.end());
    s1.erase(std::unique(s1.begin(), s1.end()), s1.end());
    std::sort(s2.begin(), s2.end());
    s2.erase(std::unique(s2.begin(), s2.end()), s2.end());

    PathEnumOptions opts;
    opts.max_hops = 3;
    opts.timeout_ms = timeout;
    opts.max_paths = 100000;
    std::vector<EnumeratedPath> paths;
    auto jedi = EnumerateDirectedPaths(g, s1, s2, opts, &paths);
    table.AddRow({"J2(2 BGPs, 1 CTP, large seed set)", "JEDI-like(directed paths)",
                  bench::MsOrTimeout(jedi.elapsed_ms, jedi.timed_out),
                  StrFormat("%" PRIu64, jedi.paths_found), "-",
                  jedi.timed_out ? "TIMEOUT" : "ok (paths, not trees)"});
    paths.clear();
    auto neo = EnumerateUndirectedPaths(g, s1, s2, opts, &paths);
    table.AddRow({"J2(2 BGPs, 1 CTP, large seed set)", "Neo4j-like(undirected paths)",
                  bench::MsOrTimeout(neo.elapsed_ms, neo.timed_out),
                  StrFormat("%" PRIu64, neo.paths_found), "-",
                  neo.timed_out ? "TIMEOUT" : "ok (paths, not trees)"});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper's Table 1): the EQL engine answers J1-J3; the\n"
      "§4.9 strategies (subset queues + universal-set handling) are what make\n"
      "J2/J3 robust; path systems return (many) paths rather than trees, or\n"
      "time out. With §4.9 off, the N member of J3 is materialized as a real\n"
      "seed set: per Def 2.8 (ii) only the 1-node tree then qualifies — the\n"
      "paper's footnote on why universal sets need adjusted semantics — while\n"
      "the engine still wastes an Init tree per graph node.\n");
}

}  // namespace
}  // namespace eql

int main() {
  eql::Run();
  return 0;
}
