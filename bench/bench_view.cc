// bench_view — compiled CTP views (ctp/view.h) vs the PR 2 filter-in-the-
// loop path, on the synthetic KG.
//
// Three measurements per workload (a LABEL-filtered and a UNI CTP batch of
// end-to-end MoLESP searches):
//   * views OFF: every EnqueueGrows scans the full incidence CSR and runs a
//     LABEL binary search + UNI direction branch per incident edge;
//   * views ON (cold): the first CTP compiles the view, the rest of the
//     batch reuses it through the ViewCache — the realistic serving shape,
//     where many queries share one label vocabulary;
//   * the view compile cost itself, reported separately so readers can see
//     how many searches amortize it (one, in practice: compile is two
//     passes over the edge list).
// Both paths must produce identical result counts (the equivalence suite
// pins full byte-identity; the bench re-checks counts as a tripwire).
//
// Usage: bench_view [OUT.json]   (default BENCH_view.json)
// Honors EQL_BENCH_SCALE: 0 smoke (4k/16k KG), 1 default (20k/80k KG),
// 2 paper-scale (50k/200k), and EQL_BENCH_TIMEOUT_MS.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ctp/algorithm.h"
#include "ctp/view.h"
#include "gen/kg.h"
#include "util/stopwatch.h"

namespace eql {
namespace {

struct WorkloadResult {
  std::string name;
  double ms_off = 0;
  double ms_on = 0;
  double view_build_ms = 0;
  size_t view_entries = 0;
  size_t results = 0;
  uint64_t grow_attempts = 0;
};

/// Runs the CTP batch once, sequentially, over prebuilt seed sets, reusing
/// one SearchMemory across CTPs like a pool worker (the PR 2 serving
/// shape); with `use_views`, views come from `cache` exactly as the
/// engine's sequential path obtains them.
double RunBatch(const Graph& g, const std::vector<SeedSets>& seed_sets,
                const CtpFilters& filters, bool use_views, ViewCache* cache,
                SearchMemory* memory, size_t* results, uint64_t* grow_attempts) {
  *results = 0;
  *grow_attempts = 0;
  Stopwatch sw;
  std::shared_ptr<const CompiledCtpView> view;
  if (use_views) {
    view = cache->Get(g, filters.allowed_labels,
                      CompiledCtpView::DirectionFor(filters.unidirectional));
  }
  for (const SeedSets& seeds : seed_sets) {
    GamConfig config = GamConfig::MoLesp();
    config.filters = filters;
    config.view = view.get();
    GamSearch search(g, seeds, std::move(config), memory);
    if (!search.Run().ok()) continue;
    *results += search.results().size();
    *grow_attempts += search.stats().grow_attempts;
  }
  return sw.ElapsedMs();
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_view.json";
  bench::Banner("compiled CTP views", "Section 4.8 (filter pushdown, compiled)");

  KgParams p;
  const int scale = bench::Scale();
  p.num_nodes = scale == 0 ? 4000u : scale == 1 ? 20000u : 50000u;
  p.num_edges = static_cast<uint64_t>(p.num_nodes) * 4;
  auto g = MakeSyntheticKg(p);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  std::printf("KG: %zu nodes, %zu edges\n", g->NumNodes(), g->NumEdges());

  // The Zipf head of the label vocabulary: a realistic LABEL clause keeps
  // the frequent predicates (~a third of the edges under s=1), so the
  // filter is selective but the searches still find connections.
  std::vector<StrId> head_labels;
  for (const char* name : {"p0", "p1"}) {
    StrId id = g->dict().Lookup(name);
    if (id != kNoStrId) head_labels.push_back(id);
  }

  // Sized so every search runs to completion (timeouts would make the
  // off/on comparison explore different amounts of work); the equivalence
  // suite pins identity, the count check below is a tripwire.
  Rng rng(42);
  const int num_ctps = scale == 0 ? 8 : 12;
  const int reps = scale == 0 ? 3 : 7;
  std::vector<WorkloadCtp> workload =
      MakeCtpWorkload(*g, num_ctps, /*m=*/2, /*set_size=*/12, &rng);
  std::vector<SeedSets> seed_sets;
  for (const WorkloadCtp& w : workload) {
    auto seeds = SeedSets::Of(*g, w.seed_sets);
    if (seeds.ok()) seed_sets.push_back(std::move(seeds).value());
  }

  CtpFilters label_filters;
  label_filters.allowed_labels = head_labels;
  label_filters.NormalizeLabels();
  label_filters.max_edges = 3;
  label_filters.timeout_ms = bench::TimeoutMs(30000, 120000, 240000);

  CtpFilters uni_filters;
  uni_filters.unidirectional = true;
  uni_filters.max_edges = 3;
  uni_filters.timeout_ms = label_filters.timeout_ms;

  // UNI + LABEL: the backward-laid-out, label-specialized CSR replaces a
  // full incidence scan with direction branch + label search per edge by a
  // dense span of the few qualifying backward edges — the shape §4.8's
  // pushdown serves most.
  CtpFilters uni_label_filters = label_filters;
  uni_label_filters.unidirectional = true;
  uni_label_filters.max_edges = 4;

  std::vector<WorkloadResult> table;
  for (const auto& [name, filters] :
       std::initializer_list<std::pair<const char*, const CtpFilters*>>{
           {"label2", &label_filters},
           {"uni", &uni_filters},
           {"uni+label2", &uni_label_filters}}) {
    WorkloadResult r;
    r.name = name;

    // Compile cost measured alone; the timed on-batches then hit the warm
    // cache — the second and later CTPs of a cold batch would anyway.
    ViewCache cache;
    Stopwatch build_sw;
    auto view = cache.Get(*g, filters->allowed_labels,
                          CompiledCtpView::DirectionFor(filters->unidirectional));
    r.view_build_ms = build_sw.ElapsedMs();
    r.view_entries = view->entries_kept();

    // Interleave off/on repetitions and keep the minimum of each: this host
    // may be time-shared, and alternating decorrelates load drift from the
    // off/on comparison.
    SearchMemory memory;
    size_t results_off = 0, results_on = 0;
    uint64_t grow_on = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const double off = RunBatch(*g, seed_sets, *filters, /*use_views=*/false,
                                  nullptr, &memory, &results_off,
                                  &r.grow_attempts);
      const double on = RunBatch(*g, seed_sets, *filters, /*use_views=*/true,
                                 &cache, &memory, &results_on, &grow_on);
      if (rep == 0 || off < r.ms_off) r.ms_off = off;
      if (rep == 0 || on < r.ms_on) r.ms_on = on;
    }
    r.results = results_on;
    if (results_on != results_off || grow_on != r.grow_attempts) {
      std::fprintf(stderr,
                   "VIEW MISMATCH (%s): results %zu vs %zu, grows %llu vs %llu\n",
                   name, results_on, results_off,
                   static_cast<unsigned long long>(grow_on),
                   static_cast<unsigned long long>(r.grow_attempts));
      return 1;
    }
    std::printf(
        "%-8s off %10s ms | on %10s ms (build %6s ms, %zu entries) | "
        "%5.2fx | %zu results\n",
        r.name.c_str(), bench::Ms(r.ms_off).c_str(), bench::Ms(r.ms_on).c_str(),
        bench::Ms(r.view_build_ms).c_str(), r.view_entries, r.ms_off / r.ms_on,
        r.results);
    table.push_back(std::move(r));
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"compiled_ctp_views\",\n"
               "  \"kg\": {\"nodes\": %zu, \"edges\": %zu},\n"
               "  \"workload\": {\"ctps\": %d, \"m\": 2, \"set_size\": 8},\n"
               "  \"workloads\": [\n",
               g->NumNodes(), g->NumEdges(), num_ctps);
  for (size_t i = 0; i < table.size(); ++i) {
    const WorkloadResult& r = table[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ms_off\": %.2f, \"ms_on\": %.2f, "
                 "\"speedup\": %.3f, \"view_build_ms\": %.3f, "
                 "\"view_entries\": %zu, \"results\": %zu, "
                 "\"grow_attempts\": %llu}%s\n",
                 r.name.c_str(), r.ms_off, r.ms_on, r.ms_off / r.ms_on,
                 r.view_build_ms, r.view_entries, r.results,
                 static_cast<unsigned long long>(r.grow_attempts),
                 i + 1 < table.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace eql

int main(int argc, char** argv) { return eql::Main(argc, argv); }
