// chaos_soak — adversarial soak harness for the eqld overload-resilience
// layer (docs/server.md "Overload & degradation"). Self-hosts an in-process
// EqldServer with every defense armed at once (small governor pool, adaptive
// shedding, aggressive watchdog, tight slowloris deadline, fault injector)
// and drives it through a fixed sequence of seeded chaos phases:
//
//   idle         watchdog false-positive check (nothing may be cancelled)
//   overload     keep-alive storm far past the admission caps
//   slowloris    half-sent requests parked until the read deadline fires
//   disconnect   clients that vanish mid-stream, repeatedly
//   oversized    bodies over max_body_bytes, heads over max_head_bytes
//   deadlines    conflicting per-request timeout_ms against quota + watchdog
//   faults       seeded injection at admit / serializer-flush / net-write
//   hotswap      /snapshot/open racing a storm of full scans
//   pressure     many clients leasing a pool sized for few
//
// After EVERY phase the same invariants are re-checked, and a background
// prober hits /health continuously DURING every phase:
//   I1  /health answered 200 on every probe, even mid-chaos
//   I2  the canary query returns byte-identical results
//   I3  admission quiesced: in_flight == 0
//   I4  the governor quiesced: leased_bytes == 0 && active_leases == 0
//   I5  VmRSS growth over the whole soak stays under a fixed budget
//
// Any violation is printed and the process exits 1 — the CI chaos-smoke job
// is just this binary's exit code. Honors EQL_BENCH_SCALE for per-phase
// duration (0 ≈ 10 s total, 2 ≈ 90 s total). Fully deterministic inputs
// (seeded Rng, seeded fault triggers); scheduling is not, which is the point.
//
// Usage: chaos_soak [OUT.json]        (default CHAOS_soak.json)
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/kg.h"
#include "graph/snapshot.h"
#include "server/http.h"
#include "server/server.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace eql {
namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kCanaryTarget = "/query?format=json&max_rows=10";
constexpr const char* kCanaryQuery =
    "SELECT ?w WHERE { CONNECT(\"n1\", \"n2\" -> ?w) MAX 2 }";
constexpr const char* kScanTarget = "/query?format=tsv";
constexpr const char* kScanQuery = "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }";
// Multi-second tree search: the piece every deadline mechanism bites on.
constexpr const char* kBigQuery =
    "SELECT ?w WHERE { CONNECT(\"n1\", \"n2\" -> ?w) MAX 3 }";

long VmRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct PhaseStats {
  std::string name;
  uint64_t requests = 0;   ///< anything the phase pushed at the server
  uint64_t ok = 0;         ///< 200s
  uint64_t pushed_back = 0;  ///< 429/503 — expected under chaos
  uint64_t errors = 0;     ///< transport errors / drops — expected under chaos
  double seconds = 0;
  long rss_kb = 0;
  bool invariants_ok = false;
};

/// Continuously probes /health on its own connection-per-probe while a
/// phase runs; every probe must answer 200 no matter what the data plane is
/// going through (invariant I1 — control-plane bypass).
class HealthProber {
 public:
  explicit HealthProber(uint16_t port) : port_(port) {
    thread_ = std::thread([this] { Run(); });
  }
  ~HealthProber() { Stop(); }
  void Stop() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_relaxed);
      thread_.join();
    }
  }
  uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void Run() {
    while (!stop_.load(std::memory_order_relaxed)) {
      auto r = HttpFetch("127.0.0.1", port_, "GET", "/health");
      probes_.fetch_add(1, std::memory_order_relaxed);
      if (!r.ok() || r->status != 200) {
        failures_.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  uint16_t port_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> failures_{0};
  std::thread thread_;
};

struct Soak {
  EqldServer* server = nullptr;
  uint16_t port = 0;
  FaultInjector* fault = nullptr;
  std::string canary_expected;
  std::string snap_main, snap_alt;   ///< snapshot paths for the hotswap phase
  std::string scan_main, scan_alt;   ///< full-scan references per snapshot
  int phase_seconds = 1;
  std::vector<std::string> violations;

  void Violate(const std::string& phase, const std::string& what) {
    violations.push_back(phase + ": " + what);
    std::fprintf(stderr, "chaos_soak: INVARIANT VIOLATION [%s] %s\n",
                 phase.c_str(), what.c_str());
  }

  bool WaitFor(const std::function<bool()>& pred, int deadline_ms = 10000) {
    auto until = Clock::now() + std::chrono::milliseconds(deadline_ms);
    while (Clock::now() < until) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  /// I1..I4 after a phase (I1's during-phase half lives in HealthProber).
  bool CheckInvariants(const std::string& phase) {
    bool ok = true;
    // I3 + I4: everything admitted must have released its ticket and lease.
    if (!WaitFor([&] {
          auto st = server->GetStats();
          return st.admission.in_flight == 0 &&
                 st.governor.leased_bytes == 0 &&
                 st.governor.active_leases == 0;
        })) {
      auto st = server->GetStats();
      Violate(phase, "no quiesce: in_flight=" +
                         std::to_string(st.admission.in_flight) +
                         " leased_bytes=" +
                         std::to_string(st.governor.leased_bytes) +
                         " active_leases=" +
                         std::to_string(st.governor.active_leases));
      ok = false;
    }
    // I1 (post-phase half): the control plane answers.
    auto h = HttpFetch("127.0.0.1", port, "GET", "/health");
    if (!h.ok() || h->status != 200) {
      Violate(phase, "/health did not answer 200 after the phase");
      ok = false;
    }
    // I2: the canary still returns exactly the bytes it returned at start.
    auto c = HttpFetch("127.0.0.1", port, "POST", kCanaryTarget, kCanaryQuery);
    if (!c.ok() || c->status != 200) {
      Violate(phase, "canary query failed after the phase");
      ok = false;
    } else if (c->body != canary_expected) {
      Violate(phase, "canary response not byte-identical");
      ok = false;
    }
    return ok;
  }

  PhaseStats RunPhase(const std::string& name,
                      const std::function<void(PhaseStats*)>& body) {
    std::printf("phase %-11s ... ", name.c_str());
    std::fflush(stdout);
    PhaseStats ps;
    ps.name = name;
    const size_t violations_before = violations.size();
    const auto t0 = Clock::now();
    {
      HealthProber prober(port);
      body(&ps);
      prober.Stop();
      ps.requests += prober.probes();
      if (prober.failures() > 0) {
        Violate(name, std::to_string(prober.failures()) + "/" +
                          std::to_string(prober.probes()) +
                          " /health probes failed mid-phase");
      }
    }
    CheckInvariants(name);
    ps.invariants_ok = violations.size() == violations_before;
    ps.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    ps.rss_kb = VmRssKb();
    std::printf("%5.1fs  rss %6ld KB  ok %llu  pushed-back %llu  errors %llu\n",
                ps.seconds, ps.rss_kb, (unsigned long long)ps.ok,
                (unsigned long long)ps.pushed_back,
                (unsigned long long)ps.errors);
    return ps;
  }

  // ---- phase bodies --------------------------------------------------------

  /// Nothing happens; the aggressive watchdog must not fire (false-positive
  /// check: its deadline math may never cancel a query that doesn't exist,
  /// nor the canary/health traffic the prober keeps trickling in).
  void Idle(PhaseStats* ps) {
    const uint64_t cancelled_before = server->GetStats().watchdog.cancelled;
    std::this_thread::sleep_for(std::chrono::seconds(phase_seconds));
    const uint64_t cancelled_after = server->GetStats().watchdog.cancelled;
    if (cancelled_after != cancelled_before) {
      Violate("idle", "watchdog cancelled a query on an idle server");
    }
    ps->ok = 1;
  }

  /// Keep-alive storm far past max_concurrent: most requests shed or queue,
  /// every push-back must carry Retry-After, and nothing may wedge.
  void Overload(PhaseStats* ps) {
    constexpr int kThreads = 16;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> ok{0}, pushed{0}, errors{0}, missing_retry_after{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(42 + t);
        std::unique_ptr<HttpClientConnection> conn;
        while (!stop.load(std::memory_order_relaxed)) {
          if (conn == nullptr) {
            auto c = HttpClientConnection::Connect("127.0.0.1", port);
            if (!c.ok()) {
              ++errors;
              std::this_thread::sleep_for(std::chrono::milliseconds(5));
              continue;
            }
            conn = std::make_unique<HttpClientConnection>(std::move(*c));
          }
          const std::string client =
              "storm-" + std::to_string(rng.Below(8));
          const bool scan = rng.Below(7) == 0;
          auto r = conn->Request(
              "POST", scan ? "/query?format=tsv&max_rows=500" : kCanaryTarget,
              scan ? kScanQuery : kCanaryQuery, {"X-EQL-Client: " + client});
          if (!r.ok()) {
            ++errors;
            conn.reset();
          } else if (r->status == 200) {
            ++ok;
          } else if (r->status == 429 || r->status == 503) {
            ++pushed;
            if (RetryAfterSeconds(*r) < 1) ++missing_retry_after;
          } else {
            ++errors;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::seconds(phase_seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    ps->requests += ok + pushed + errors;
    ps->ok = ok;
    ps->pushed_back = pushed;
    ps->errors = errors;
    if (ok == 0) Violate("overload", "server served nothing under load");
    if (missing_retry_after > 0) {
      Violate("overload", std::to_string(missing_retry_after.load()) +
                              " push-backs without Retry-After");
    }
  }

  /// Half-sent requests parked on open sockets. The read deadline
  /// (http_limits.max_request_read_ms) must reclaim each connection slot;
  /// the server answers 408 or just closes — either is fine, wedging is not.
  void Slowloris(PhaseStats* ps) {
    const auto until = Clock::now() + std::chrono::seconds(phase_seconds);
    std::vector<int> fds;
    Rng rng(7);
    while (Clock::now() < until) {
      while (fds.size() < 12) {
        auto fd = TcpConnect("127.0.0.1", port);
        if (!fd.ok()) {
          ++ps->errors;
          break;
        }
        // A plausible prefix, cut mid-header, never finished.
        const char* partial = "POST /query HTTP/1.1\r\nHost: eqld\r\nX-Dr";
        const size_t n = 1 + rng.Below(std::strlen(partial));
        (void)::send(*fd, partial, n, MSG_NOSIGNAL);
        fds.push_back(*fd);
        ++ps->requests;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      // Reap sockets the server gave up on (408/close shows as readable EOF
      // or an error); keep the survivors parked.
      std::vector<int> alive;
      for (int fd : fds) {
        char buf[256];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
        if (n > 0) {
          ++ps->ok;  // answered (the 408 path)
          ::close(fd);
        } else if (n == 0) {
          ++ps->ok;  // closed on us — slot reclaimed
          ::close(fd);
        } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
          alive.push_back(fd);  // still parked; the deadline hasn't hit yet
        } else {
          ++ps->ok;
          ::close(fd);
        }
      }
      fds.swap(alive);
    }
    for (int fd : fds) ::close(fd);
    if (ps->ok == 0) {
      Violate("slowloris", "no parked request was ever reclaimed");
    }
  }

  /// Clients that request a full scan and vanish without reading. The write
  /// path must notice the dead peer, cancel the query, and release the
  /// ticket + lease every single time.
  void Disconnect(PhaseStats* ps) {
    const auto until = Clock::now() + std::chrono::seconds(phase_seconds);
    while (Clock::now() < until) {
      std::vector<int> fds;
      for (int i = 0; i < 8; ++i) {
        auto fd = TcpConnect("127.0.0.1", port);
        if (!fd.ok()) {
          ++ps->errors;
          continue;
        }
        int rcvbuf = 4096;  // keep the response from fitting in the buffers
        ::setsockopt(*fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
        std::string req = std::string("POST ") + kScanTarget +
                          " HTTP/1.1\r\nHost: eqld\r\nContent-Length: " +
                          std::to_string(std::strlen(kScanQuery)) + "\r\n\r\n" +
                          kScanQuery;
        if (::send(*fd, req.data(), req.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(req.size())) {
          ++ps->errors;
          ::close(*fd);
          continue;
        }
        fds.push_back(*fd);
        ++ps->requests;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      for (int fd : fds) {
        ::close(fd);  // vanish mid-stream
        ++ps->ok;
      }
    }
  }

  /// Requests over the protocol limits: bodies past max_body_bytes and heads
  /// past max_head_bytes. Each must be answered (413/431/400) or cleanly
  /// dropped — and must never reach the engine.
  void Oversized(PhaseStats* ps) {
    const std::string big_body(5 * 1024 * 1024, 'x');  // limit is 4 MiB
    const std::string big_header(80 * 1024, 'h');      // head limit is 64 KiB
    for (int i = 0; i < 10; ++i) {
      auto r = HttpFetch("127.0.0.1", port, "POST", "/query", big_body);
      ++ps->requests;
      // The server may answer 413 or slam the connection once the declared
      // length exceeds the limit; both reclaim the slot.
      if (r.ok() && r->status >= 400) {
        ++ps->ok;
      } else if (!r.ok()) {
        ++ps->ok;
      } else {
        Violate("oversized", "an over-limit body was answered 200");
      }
      auto h = HttpFetch("127.0.0.1", port, "POST", "/query", kCanaryQuery,
                         {"X-Huge: " + big_header});
      ++ps->requests;
      if (h.ok() && h->status >= 400) {
        ++ps->ok;
      } else if (!h.ok()) {
        ++ps->ok;
      } else {
        Violate("oversized", "an over-limit head was answered 200");
      }
    }
  }

  /// Conflicting deadlines: per-request timeout_ms far under and far over
  /// the admission quota, against a watchdog with its own hard cap. Every
  /// combination must settle as a well-formed response; the effective
  /// deadline is always the tightest one.
  void Deadlines(PhaseStats* ps) {
    constexpr int kThreads = 6;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> ok{0}, pushed{0}, errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(100 + t);
        while (!stop.load(std::memory_order_relaxed)) {
          std::string target;
          const char* query = kCanaryQuery;
          switch (rng.Below(3)) {
            case 0:  // absurdly tight: times out mid-search, still 200
              target = "/query?format=json&timeout_ms=1";
              query = kBigQuery;
              break;
            case 1:  // far over quota: must be clamped down, not honored
              target = "/query?format=json&timeout_ms=600000";
              query = kBigQuery;
              break;
            default:  // no opinion: quota + watchdog decide
              target = kCanaryTarget;
              break;
          }
          auto r = HttpFetch("127.0.0.1", port, "POST", target, query);
          if (!r.ok()) {
            ++errors;
          } else if (r->status == 200) {
            ++ok;
          } else if (r->status == 429 || r->status == 503) {
            ++pushed;
          } else {
            ++errors;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::seconds(phase_seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    ps->requests += ok + pushed + errors;
    ps->ok = ok;
    ps->pushed_back = pushed;
    ps->errors = errors;
    if (ok == 0) Violate("deadlines", "no deadline mix ever completed");
  }

  /// Seeded faults at the three server-side injection sites, round after
  /// round. A fired admit fault is a clean 503; a fired flush/net-write
  /// fault hard-truncates that one stream. Either way the next request must
  /// be served as if nothing happened.
  void Faults(PhaseStats* ps) {
    const int rounds = 4 * phase_seconds;
    for (int round = 0; round < rounds; ++round) {
      for (const char* site :
           {kFaultSiteAdmit, kFaultSiteFlush, kFaultSiteNetWrite}) {
        fault->ArmSeeded(site, 1000 + round, 8);
      }
      // Push traffic until every armed site fired (or give up after a
      // bounded number of requests — net-write only probes when a chunk is
      // actually written, so scans make it reachable).
      for (int i = 0; i < 200; ++i) {
        auto r = HttpFetch("127.0.0.1", port, "POST",
                           "/query?format=tsv&max_rows=200", kScanQuery);
        ++ps->requests;
        if (r.ok() && r->status == 200) {
          ++ps->ok;
        } else if (r.ok() && (r->status == 429 || r->status == 503)) {
          ++ps->pushed_back;  // the admit fault shape
        } else {
          ++ps->errors;  // the truncation shapes
        }
        if (fault->Fired(kFaultSiteAdmit) > 0 &&
            fault->Fired(kFaultSiteFlush) > 0 &&
            fault->Fired(kFaultSiteNetWrite) > 0) {
          break;
        }
      }
    }
    // Disarm everything: a leftover trigger firing in a later phase would
    // turn a seeded fault into a spurious invariant violation.
    for (const char* site :
         {kFaultSiteAdmit, kFaultSiteFlush, kFaultSiteNetWrite}) {
      fault->Arm(site, 0);
    }
    if (ps->ok == 0) Violate("faults", "nothing served between faults");
  }

  /// /snapshot/open racing a storm of full scans, flip-flopping between two
  /// snapshots. Every completed scan must be byte-identical to ONE of them
  /// (streams pin their graph context; truncation is allowed, mixing is
  /// not). Ends back on the main snapshot so the canary stays valid.
  void HotSwap(PhaseStats* ps) {
    constexpr int kThreads = 4;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> ok{0}, pushed{0}, errors{0}, mixed{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          auto r = HttpFetch("127.0.0.1", port, "POST", kScanTarget,
                             kScanQuery);
          if (!r.ok()) {
            ++errors;  // hard truncation on a swap edge: allowed
          } else if (r->status == 200) {
            if (r->body == scan_main || r->body == scan_alt) {
              ++ok;
            } else {
              ++mixed;
            }
          } else if (r->status == 429 || r->status == 503) {
            ++pushed;
          } else {
            ++errors;
          }
        }
      });
    }
    const auto until = Clock::now() + std::chrono::seconds(phase_seconds);
    bool on_alt = false;
    while (Clock::now() < until) {
      auto s = HttpFetch("127.0.0.1", port, "POST", "/snapshot/open",
                         on_alt ? snap_main : snap_alt);
      if (!s.ok() || s->status != 200) {
        Violate("hotswap", "/snapshot/open failed mid-storm");
        break;
      }
      on_alt = !on_alt;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    // Land back on main so the canary reference holds for later phases.
    auto back = HttpFetch("127.0.0.1", port, "POST", "/snapshot/open",
                          snap_main);
    if (!back.ok() || back->status != 200) {
      Violate("hotswap", "could not restore the main snapshot");
    }
    ps->requests += ok + pushed + errors + mixed;
    ps->ok = ok;
    ps->pushed_back = pushed;
    ps->errors = errors;
    if (mixed > 0) {
      Violate("hotswap", std::to_string(mixed.load()) +
                             " responses mixed rows from two graphs");
    }
    if (ok == 0) Violate("hotswap", "no scan completed during the swap storm");
  }

  /// Many distinct clients against a pool sized for few: grants shrink,
  /// then reject; pressure climbs; and the moment the storm stops the pool
  /// must read exactly empty again (the quiesce invariant does the assert).
  void Pressure(PhaseStats* ps) {
    constexpr int kThreads = 12;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> ok{0}, pushed{0}, errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const std::string client = "tenant-" + std::to_string(t);
        while (!stop.load(std::memory_order_relaxed)) {
          auto r = HttpFetch("127.0.0.1", port, "POST",
                             "/query?format=tsv&max_rows=1000", kScanQuery,
                             {"X-EQL-Client: " + client});
          if (!r.ok()) {
            ++errors;
          } else if (r->status == 200) {
            ++ok;
          } else if (r->status == 429 || r->status == 503) {
            ++pushed;
          } else {
            ++errors;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::seconds(phase_seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    ps->requests += ok + pushed + errors;
    ps->ok = ok;
    ps->pushed_back = pushed;
    ps->errors = errors;
    const auto st = server->GetStats();
    if (st.governor.granted == 0) {
      Violate("pressure", "the governor never granted a lease");
    }
    if (ok == 0) Violate("pressure", "nothing served under memory pressure");
  }
};

}  // namespace
}  // namespace eql

int main(int argc, char** argv) {
  using namespace eql;
  namespace fs = std::filesystem;
  std::string out_path = "CHAOS_soak.json";
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      out_path = argv[i];
    } else {
      std::fprintf(stderr, "chaos_soak: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  const int scale = bench::Scale();

  bench::Banner("eqld chaos soak (phases / invariants)",
                "server robustness, docs/server.md");

  // Every defense armed at once, sized so chaos actually trips them.
  FaultInjector injector;
  ServerOptions options;
  options.admission.max_concurrent = 8;
  options.admission.per_client_concurrent = 4;
  options.admission.query_timeout_ms = 5000;
  options.admission.memory_budget_bytes = 8ull << 20;
  options.admission.queue_delay_p95_ms = 250;      // adaptive shedding on
  options.governor.total_budget_bytes = 32ull << 20;  // pool for ~4 queries
  options.governor.max_client_fraction = 0.5;
  options.watchdog.poll_interval_ms = 50;
  options.watchdog.grace_ms = 100;
  options.watchdog.max_query_ms = 3000;
  options.watchdog.log_reports = false;
  options.http_limits.max_request_read_ms = 700;   // fast slowloris reclaim
  options.fault = &injector;

  Soak soak;
  soak.fault = &injector;
  soak.phase_seconds = scale == 0 ? 1 : scale == 1 ? 3 : 8;

  // Two snapshots for the hotswap phase; main doubles as the soak's graph.
  const std::string dir = fs::temp_directory_path().string();
  soak.snap_main = (fs::path(dir) / "chaos_soak_main.eqls").string();
  soak.snap_alt = (fs::path(dir) / "chaos_soak_alt.eqls").string();
  {
    KgParams p;
    p.num_nodes = 6000;
    p.num_edges = 24000;
    auto g = MakeSyntheticKg(p);
    if (!g.ok() || !WriteSnapshot(*g, soak.snap_main).ok()) {
      std::fprintf(stderr, "chaos_soak: cannot build the main snapshot\n");
      return 1;
    }
    p.num_nodes = 5000;
    p.num_edges = 15000;
    auto h = MakeSyntheticKg(p);
    if (!h.ok() || !WriteSnapshot(*h, soak.snap_alt).ok()) {
      std::fprintf(stderr, "chaos_soak: cannot build the alt snapshot\n");
      return 1;
    }
  }

  EqldServer server(options);
  if (!server.OpenSnapshotFile(soak.snap_main).ok()) {
    std::fprintf(stderr, "chaos_soak: cannot open the main snapshot\n");
    return 1;
  }
  if (!server.Start().ok()) {
    std::fprintf(stderr, "chaos_soak: cannot start the server\n");
    return 1;
  }
  soak.server = &server;
  soak.port = server.port();

  // References: the canary (I2, checked after every phase) and the two full
  // scans the hotswap phase matches completed streams against.
  {
    auto c = HttpFetch("127.0.0.1", soak.port, "POST", kCanaryTarget,
                       kCanaryQuery);
    if (!c.ok() || c->status != 200) {
      std::fprintf(stderr, "chaos_soak: canary warmup failed\n");
      return 1;
    }
    soak.canary_expected = c->body;
    auto sm = HttpFetch("127.0.0.1", soak.port, "POST", kScanTarget,
                        kScanQuery);
    auto swp = HttpFetch("127.0.0.1", soak.port, "POST", "/snapshot/open",
                         soak.snap_alt);
    auto sa = HttpFetch("127.0.0.1", soak.port, "POST", kScanTarget,
                        kScanQuery);
    auto back = HttpFetch("127.0.0.1", soak.port, "POST", "/snapshot/open",
                          soak.snap_main);
    if (!sm.ok() || !swp.ok() || !sa.ok() || !back.ok() ||
        back->status != 200) {
      std::fprintf(stderr, "chaos_soak: scan reference warmup failed\n");
      return 1;
    }
    soak.scan_main = sm->body;
    soak.scan_alt = sa->body;
  }

  const long rss_start_kb = VmRssKb();
  std::printf("port %u, %ds per phase, start rss %ld KB\n\n", soak.port,
              soak.phase_seconds, rss_start_kb);

  std::vector<PhaseStats> phases;
  phases.push_back(soak.RunPhase("idle", [&](PhaseStats* ps) { soak.Idle(ps); }));
  phases.push_back(
      soak.RunPhase("overload", [&](PhaseStats* ps) { soak.Overload(ps); }));
  phases.push_back(
      soak.RunPhase("slowloris", [&](PhaseStats* ps) { soak.Slowloris(ps); }));
  phases.push_back(soak.RunPhase(
      "disconnect", [&](PhaseStats* ps) { soak.Disconnect(ps); }));
  phases.push_back(
      soak.RunPhase("oversized", [&](PhaseStats* ps) { soak.Oversized(ps); }));
  phases.push_back(
      soak.RunPhase("deadlines", [&](PhaseStats* ps) { soak.Deadlines(ps); }));
  phases.push_back(
      soak.RunPhase("faults", [&](PhaseStats* ps) { soak.Faults(ps); }));
  phases.push_back(
      soak.RunPhase("hotswap", [&](PhaseStats* ps) { soak.HotSwap(ps); }));
  phases.push_back(
      soak.RunPhase("pressure", [&](PhaseStats* ps) { soak.Pressure(ps); }));

  const long rss_end_kb = VmRssKb();
  // I5: bounded memory. The budget is deliberately generous (allocator
  // high-water marks, prepared-cache fill) — it exists to catch leaks of
  // per-request state, which compound over thousands of chaos requests.
  const long rss_budget_kb = 256 * 1024;
  if (rss_start_kb > 0 && rss_end_kb > rss_start_kb + rss_budget_kb) {
    soak.Violate("rss", "VmRSS grew " +
                            std::to_string(rss_end_kb - rss_start_kb) +
                            " KB over the soak (budget " +
                            std::to_string(rss_budget_kb) + " KB)");
  }

  server.Shutdown();

  std::printf("\n");
  TablePrinter table({"phase", "requests", "ok", "pushed-back", "errors",
                      "rss KB", "invariants"});
  for (const auto& p : phases) {
    table.AddRow({p.name, std::to_string(p.requests), std::to_string(p.ok),
                  std::to_string(p.pushed_back), std::to_string(p.errors),
                  std::to_string(p.rss_kb), p.invariants_ok ? "ok" : "VIOLATED"});
  }
  std::printf("%s", table.Render().c_str());

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out != nullptr) {
    std::fprintf(out, "{\"bench\":\"chaos_soak\",\"scale\":%d,"
                      "\"rss_start_kb\":%ld,\"rss_end_kb\":%ld,"
                      "\"violations\":%zu,\"phases\":[",
                 scale, rss_start_kb, rss_end_kb, soak.violations.size());
    for (size_t i = 0; i < phases.size(); ++i) {
      const auto& p = phases[i];
      std::fprintf(out,
                   "%s{\"name\":\"%s\",\"requests\":%llu,\"ok\":%llu,"
                   "\"pushed_back\":%llu,\"errors\":%llu,\"seconds\":%.2f,"
                   "\"rss_kb\":%ld}",
                   i == 0 ? "" : ",", p.name.c_str(),
                   (unsigned long long)p.requests, (unsigned long long)p.ok,
                   (unsigned long long)p.pushed_back,
                   (unsigned long long)p.errors, p.seconds, p.rss_kb);
    }
    std::fprintf(out, "]}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (!soak.violations.empty()) {
    std::fprintf(stderr, "\nchaos_soak: %zu invariant violation(s):\n",
                 soak.violations.size());
    for (const auto& v : soak.violations) {
      std::fprintf(stderr, "  - %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("\nall invariants held across %zu phases\n", phases.size());
  return 0;
}
