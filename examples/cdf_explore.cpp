// CDF benchmark walkthrough: generate a Connected Dense Forest (Figure 9),
// run the m=2 and m=3 EQL benchmark queries, and compare the CTP evaluation
// algorithms on the same workload — a miniature of Figures 11/13/14.
//
//   $ ./build/examples/cdf_explore [NT] [NL]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "ctp/algorithm.h"
#include "eval/engine.h"
#include "gen/cdf.h"

int main(int argc, char** argv) {
  using namespace eql;
  CdfParams p;
  p.m = 2;
  p.num_trees = argc > 1 ? std::atoi(argv[1]) : 200;
  p.num_links = argc > 2 ? std::atoi(argv[2]) : 2 * p.num_trees;
  p.link_len = 3;

  auto d2 = MakeCdf(p);
  if (!d2.ok()) {
    std::fprintf(stderr, "%s\n", d2.status().ToString().c_str());
    return 1;
  }
  std::printf("CDF m=2: %zu nodes, %zu edges, %d links\n", d2->graph.NumNodes(),
              d2->graph.NumEdges(), p.num_links);

  EqlEngine engine2(d2->graph);
  auto r2 = engine2.Run(CdfQueryText(2));
  if (!r2.ok()) {
    std::fprintf(stderr, "%s\n", r2.status().ToString().c_str());
    return 1;
  }
  std::printf("m=2 query: %zu answers (expected %d) in %.1f ms "
              "(BGP %.1f | CTP %.1f | join %.1f)\n\n",
              r2->table.NumRows(), p.num_links, r2->total_ms, r2->bgp_ms,
              r2->ctp_ms, r2->join_ms);

  p.m = 3;
  auto d3 = MakeCdf(p);
  if (!d3.ok()) {
    std::fprintf(stderr, "%s\n", d3.status().ToString().c_str());
    return 1;
  }
  EqlEngine engine3(d3->graph);
  auto r3 = engine3.Run(CdfQueryText(3));
  if (!r3.ok()) {
    std::fprintf(stderr, "%s\n", r3.status().ToString().c_str());
    return 1;
  }
  std::printf("CDF m=3: %zu edges; query: %zu answers in %.1f ms; the CTP\n"
              "found %zu trees pre-join (bidirectional extras are filtered by\n"
              "the BGP-CTP join, Section 5.5.1)\n\n",
              d3->graph.NumEdges(), r3->table.NumRows(), r3->total_ms,
              r3->ctp_runs[0].num_results);

  // Algorithm comparison on the benchmark's CTP: seed sets are the
  // BGP-derived leaf sets (all c-targets / g-targets / h-targets). The dense
  // seed sets are what keep the search tractable — Grow2 stops any tree
  // passing through a second leaf of the same set (Def 2.8 (ii)).
  std::vector<std::vector<NodeId>> sets = {d3->top_leaves, d3->bottom_g_leaves,
                                           d3->bottom_h_leaves};
  auto seeds = SeedSets::Of(d3->graph, sets);
  if (!seeds.ok()) return 1;
  std::printf("one 3-seed CTP, per algorithm:\n");
  std::printf("  %-8s %10s %12s %9s\n", "algo", "ms", "provenances", "results");
  for (AlgorithmKind kind :
       {AlgorithmKind::kGam, AlgorithmKind::kEsp, AlgorithmKind::kMoEsp,
        AlgorithmKind::kLesp, AlgorithmKind::kMoLesp}) {
    CtpFilters filters;
    filters.timeout_ms = 10000;
    auto algo = CreateCtpAlgorithm(kind, d3->graph, *seeds, filters);
    algo->Run();
    std::printf("  %-8s %10.2f %12" PRIu64 " %9" PRIu64 "\n", AlgorithmName(kind),
                algo->stats().elapsed_ms, algo->stats().trees_built,
                algo->stats().results_found);
  }
  std::printf(
      "\nMoLESP keeps far fewer provenances than GAM at equal answers —\n"
      "Figure 11's effect in miniature.\n");
  return 0;
}
