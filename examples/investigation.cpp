// Investigative-journalism walkthrough on the paper's Figure 1 graph:
// the running query Q1, score functions re-ranking the same connections
// (requirement R2), the UNI / LABEL / MAX filters, and the prepared-query
// API serving a parameterized investigation (one plan, many suspects).
//
//   $ ./build/investigation
#include <cstdio>

#include "ctp/score.h"
#include "eval/engine.h"
#include "graph/graph.h"

namespace {

eql::Graph MakeFigure1() {
  using namespace eql;
  Graph g;
  auto node = [&](const char* label, const char* type) {
    NodeId n = g.AddNode(label);
    if (type != nullptr) g.AddType(n, type);
    return n;
  };
  NodeId org_b = node("OrgB", "company");
  NodeId bob = node("Bob", "entrepreneur");
  NodeId alice = node("Alice", "entrepreneur");
  NodeId carole = node("Carole", "entrepreneur");
  NodeId org_a = node("OrgA", "company");
  NodeId doug = node("Doug", "entrepreneur");
  NodeId org_c = node("OrgC", "company");
  NodeId france = node("France", "country");
  NodeId elon = node("Elon", "politician");
  NodeId usa = node("USA", "country");
  NodeId nlp = g.AddLiteralNode("National Liberal Party");
  NodeId falcon = node("Falcon", "politician");
  g.AddEdge(bob, org_b, "founded");
  g.AddEdge(alice, org_b, "investsIn");
  g.AddEdge(bob, alice, "parentOf");
  g.AddEdge(org_b, france, "locatedIn");
  g.AddEdge(bob, usa, "citizenOf");
  g.AddEdge(carole, usa, "citizenOf");
  g.AddEdge(carole, org_a, "founded");
  g.AddEdge(doug, org_a, "CEO");
  g.AddEdge(doug, org_c, "investsIn");
  g.AddEdge(carole, org_c, "founded");
  g.AddEdge(elon, doug, "parentOf");
  g.AddEdge(alice, france, "citizenOf");
  g.AddEdge(doug, france, "citizenOf");
  g.AddEdge(elon, france, "citizenOf");
  g.AddEdge(org_c, usa, "locatedIn");
  g.AddEdge(elon, nlp, "affiliation");
  g.AddEdge(org_b, nlp, "funds");
  g.AddEdge(falcon, nlp, "affiliation");
  g.AddEdge(falcon, usa, "investsIn");
  g.Finalize();
  return g;
}

void RunAndPrint(const eql::EqlEngine& engine, const eql::Graph& g,
                 const char* title, const char* query, size_t max_rows = 6) {
  std::printf("---- %s ----\n%s\n", title, query);
  auto r = engine.Run(query);
  if (!r.ok()) {
    std::printf("error: %s\n\n", r.status().ToString().c_str());
    return;
  }
  std::printf("%zu answer(s)%s:\n", r->table.NumRows(),
              r->table.NumRows() > max_rows ? " (showing first)" : "");
  for (size_t row = 0; row < r->table.NumRows() && row < max_rows; ++row) {
    std::printf("  %s\n", r->RowToString(g, row).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace eql;
  Graph g = MakeFigure1();
  EqlEngine engine(g);

  // The paper's Q1: connections between an American entrepreneur, a French
  // entrepreneur and a French politician.
  RunAndPrint(engine, g, "Q1 (Section 2)",
              "SELECT ?x ?y ?z ?w WHERE {\n"
              "  ?x \"citizenOf\" \"USA\" .\n"
              "  ?y \"citizenOf\" \"France\" .\n"
              "  ?z \"citizenOf\" \"France\" .\n"
              "  FILTER(type(?x) = \"entrepreneur\")\n"
              "  FILTER(type(?y) = \"entrepreneur\")\n"
              "  FILTER(type(?z) = \"politician\")\n"
              "  CONNECT(?x, ?y, ?z -> ?w)\n"
              "}");

  // R2: the same CTP under different score functions. Smallest-first favors
  // hub connections; the degree penalty surfaces the "quiet" routes
  // journalists actually want.
  RunAndPrint(engine, g, "Top-3 smallest connections Bob-Elon",
              "SELECT ?w WHERE {\n"
              "  CONNECT(\"Bob\", \"Elon\" -> ?w) SCORE edge_count TOP 3\n"
              "}");
  RunAndPrint(engine, g, "Top-3 hub-avoiding connections Bob-Elon",
              "SELECT ?w WHERE {\n"
              "  CONNECT(\"Bob\", \"Elon\" -> ?w) SCORE degree_penalty TOP 3\n"
              "}");

  // LABEL: only follow ownership-ish edges. Doug and Carole meet through
  // OrgA/OrgC board rooms, never through citizenship.
  RunAndPrint(engine, g, "Connections through ownership edges only",
              "SELECT ?w WHERE {\n"
              "  CONNECT(\"Doug\", \"Carole\" -> ?w)"
              " LABEL {\"founded\", \"investsIn\", \"CEO\"}\n"
              "}");

  // MAX: bound the connection size.
  RunAndPrint(engine, g, "Connections of at most 3 edges",
              "SELECT ?w WHERE {\n"
              "  CONNECT(\"Bob\", \"Carole\" -> ?w) MAX 3\n"
              "}");

  // UNI vs bidirectional (R3).
  RunAndPrint(engine, g, "UNI-only connections Elon-Doug",
              "SELECT ?w WHERE { CONNECT(\"Elon\", \"Doug\" -> ?w) UNI MAX 3 }");
  RunAndPrint(engine, g, "Bidirectional connections Elon-Doug (MAX 3)",
              "SELECT ?w WHERE { CONNECT(\"Elon\", \"Doug\" -> ?w) MAX 3 }");

  // Prepared + parameterized: one plan serves the whole suspect list — the
  // front end (parse/validate/plan, view pre-warm) ran once at Prepare.
  std::printf("---- Prepared: who connects $suspect to the NLP? ----\n");
  auto prepared = engine.Prepare(
      "SELECT ?w WHERE {\n"
      "  CONNECT($suspect, \"National Liberal Party\" -> ?w) MAX $hops\n"
      "}");
  if (!prepared.ok()) {
    std::printf("error: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  for (const char* suspect : {"Bob", "Carole", "Doug"}) {
    auto r = prepared->Execute(ParamMap().Set("suspect", suspect).Set("hops", 3));
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      continue;
    }
    std::printf("%s: %zu connection(s) within 3 hops\n", suspect,
                r->table.NumRows());
    for (size_t row = 0; row < r->table.NumRows() && row < 2; ++row) {
      std::printf("  %s\n", r->RowToString(g, row).c_str());
    }
  }

  // Streaming: print connections the moment the search finds them — the
  // anytime behavior of the paper's Algorithm 1, surfaced through the API.
  std::printf("\n---- Streaming: Bob-Elon connections as they are found ----\n");
  class PrintFirstRows : public ResultSink {
   public:
    explicit PrintFirstRows(const Graph& g) : g_(g) {}
    bool OnRow(StreamRow row) override {
      const ResultTreeInfo& t = row.trees[row.values[0]];
      std::printf("  found a %zu-edge connection (score %.1f)\n",
                  t.edges.size(), t.score);
      (void)g_;
      return ++count_ < 4;  // stop after 4: cancels the rest of the search
    }

   private:
    const Graph& g_;
    int count_ = 0;
  } sink(g);
  auto bob_elon =
      engine.Prepare("SELECT ?w WHERE { CONNECT(\"Bob\", \"Elon\" -> ?w) }");
  if (!bob_elon.ok()) return 1;
  auto streamed = bob_elon->Execute({}, sink);
  if (streamed.ok()) {
    std::printf("streamed %llu row(s), first after %.3f ms%s\n",
                static_cast<unsigned long long>(streamed->rows_streamed),
                streamed->first_row_ms,
                streamed->cancelled ? " (stopped early)" : "");
  }
  return 0;
}
