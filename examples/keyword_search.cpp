// Keyword-search-style usage: CTPs generalize keyword search in graphs
// (Section 1). Each "keyword" selects a *set* of matching nodes; the CTP
// returns minimal trees connecting one match per keyword, ranked by a score.
//
//   $ ./build/examples/keyword_search [num_nodes] [num_edges]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "ctp/algorithm.h"
#include "ctp/analysis.h"
#include "gen/kg.h"

int main(int argc, char** argv) {
  using namespace eql;
  KgParams p;
  p.num_nodes = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 5000;
  p.num_edges = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 20000;
  p.seed = 5;
  auto graph = MakeSyntheticKg(p);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Graph& g = *graph;
  std::printf("knowledge graph: %zu nodes, %zu edges\n", g.NumNodes(),
              g.NumEdges());

  // Three "keywords": all nodes of type T6, T7, T8 (each a seed set).
  std::vector<std::vector<NodeId>> sets;
  for (const char* type : {"T6", "T7", "T8"}) {
    StrId t = g.dict().Lookup(type);
    auto span = g.NodesWithType(t);
    sets.emplace_back(span.begin(), span.end());
    std::printf("keyword '%s': %zu matching nodes\n", type, sets.back().size());
  }
  auto seeds = SeedSets::Of(g, sets);
  if (!seeds.ok()) {
    std::fprintf(stderr, "%s\n", seeds.status().ToString().c_str());
    return 1;
  }

  // Top-10 connections under the hub-penalizing score, bounded to 3 edges
  // (keyword-search result spaces are huge; MAX + TIMEOUT keep the
  // exploration interactive — exactly what Section 2's filters are for).
  DegreePenaltyScore score;
  CtpFilters filters;
  filters.max_edges = 3;
  filters.score = &score;
  filters.top_k = 10;
  filters.timeout_ms = 5000;
  auto algo = CreateCtpAlgorithm(AlgorithmKind::kMoLesp, g, *seeds, filters);
  algo->Run();

  const SearchStats& s = algo->stats();
  std::printf("\nsearch: %" PRIu64 " provenances, %" PRIu64
              " distinct results, %.1f ms%s\n\n",
              s.trees_built, s.results_found, s.elapsed_ms,
              s.timed_out ? " [TIMEOUT]" : "");
  std::printf("top %zu connection trees (degree_penalty score):\n",
              algo->results().size());
  for (const CtpResult& r : algo->results().results()) {
    TreeShape shape = AnalyzeTree(g, *seeds, algo->arena(), r.tree);
    std::printf("  score=%7.2f edges=%zu pieces=%zu %s\n", r.score,
                algo->arena().Get(r.tree).NumEdges(), shape.pieces.size(),
                algo->arena().TreeToString(r.tree, g).c_str());
  }
  std::printf(
      "\nEvery result is minimal (each leaf is a keyword match) and connects\n"
      "exactly one node per keyword — Definition 2.8's guarantees.\n");
  return 0;
}
