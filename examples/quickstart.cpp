// Quickstart: build a small graph, prepare a parameterized EQL query with a
// CONNECT clause once, execute it for several bindings, and stream the
// connecting trees as the search finds them.
//
//   $ ./build/quickstart
//
// EQL extends conjunctive graph queries with Connecting Tree Patterns: the
// CONNECT(...) clause binds ?w to minimal trees linking its members,
// traversing edges in either direction. The prepared-query API compiles the
// front end once — repeated traffic only re-binds `$name` parameters.
#include <cstdio>

#include "eval/engine.h"
#include "graph/graph.h"

int main() {
  using namespace eql;

  // A toy payments graph. Note the mixed edge directions: "hasAccount" vs
  // "belongsTo" — connection search must not care (requirement R3).
  Graph g;
  NodeId shady = g.AddNode("MrShady");
  g.AddType(shady, "person");
  NodeId acct1 = g.AddNode("acct1");
  NodeId acct2 = g.AddNode("acct2");
  NodeId bank = g.AddNode("BankABC");
  g.AddType(bank, "bank");
  NodeId tax = g.AddNode("TaxOfficeDEF");
  g.AddType(tax, "authority");
  g.AddEdge(shady, acct1, "hasAccount");
  g.AddEdge(acct2, shady, "belongsTo");   // reversed on purpose
  g.AddEdge(acct1, bank, "heldAt");
  g.AddEdge(acct2, bank, "heldAt");
  g.AddEdge(bank, tax, "reportsTo");
  g.Finalize();

  EqlEngine engine(g);

  // Prepare once: parse/validate/plan happen here, not per call.
  const char* query =
      "SELECT ?w WHERE {\n"
      "  CONNECT($suspect, $institution, \"TaxOfficeDEF\" -> ?w)\n"
      "}";
  std::printf("prepared query:\n%s\n", query);
  auto prepared = engine.Prepare(query);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }

  // Execute many: bind fresh parameters against the cached plan.
  auto result = prepared->Execute(
      ParamMap().Set("suspect", "MrShady").Set("institution", "BankABC"));
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu connecting tree(s):\n", result->table.NumRows());
  for (size_t r = 0; r < result->table.NumRows(); ++r) {
    std::printf("  %s\n", result->RowToString(g, r).c_str());
  }
  std::printf(
      "\nBoth accounts appear even though their edges point in opposite\n"
      "directions; a path-only engine would miss the acct2 route.\n\n");

  // Streaming: rows arrive as the search produces trees — act on the first
  // connection without waiting for the full enumeration.
  CollectingSink sink;
  auto streamed = prepared->Execute(
      ParamMap().Set("suspect", "MrShady").Set("institution", "BankABC"), sink);
  if (!streamed.ok()) {
    std::fprintf(stderr, "stream failed: %s\n",
                 streamed.status().ToString().c_str());
    return 1;
  }
  std::printf("streamed %llu row(s); first row after %.3f ms (total %.3f ms)\n",
              static_cast<unsigned long long>(streamed->rows_streamed),
              streamed->first_row_ms, streamed->total_ms);
  return 0;
}
