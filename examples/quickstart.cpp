// Quickstart: build a small graph, run an EQL query with a CONNECT clause,
// print the connecting trees.
//
//   $ ./build/examples/quickstart
//
// EQL extends conjunctive graph queries with Connecting Tree Patterns: the
// CONNECT(...) clause binds ?w to minimal trees linking its members,
// traversing edges in either direction.
#include <cstdio>

#include "eval/engine.h"
#include "graph/graph.h"

int main() {
  using namespace eql;

  // A toy payments graph. Note the mixed edge directions: "hasAccount" vs
  // "belongsTo" — connection search must not care (requirement R3).
  Graph g;
  NodeId shady = g.AddNode("MrShady");
  g.AddType(shady, "person");
  NodeId acct1 = g.AddNode("acct1");
  NodeId acct2 = g.AddNode("acct2");
  NodeId bank = g.AddNode("BankABC");
  g.AddType(bank, "bank");
  NodeId tax = g.AddNode("TaxOfficeDEF");
  g.AddType(tax, "authority");
  g.AddEdge(shady, acct1, "hasAccount");
  g.AddEdge(acct2, shady, "belongsTo");   // reversed on purpose
  g.AddEdge(acct1, bank, "heldAt");
  g.AddEdge(acct2, bank, "heldAt");
  g.AddEdge(bank, tax, "reportsTo");
  g.Finalize();

  EqlEngine engine(g);
  const char* query =
      "SELECT ?w WHERE {\n"
      "  CONNECT(\"MrShady\", \"BankABC\", \"TaxOfficeDEF\" -> ?w)\n"
      "}";
  std::printf("query:\n%s\n", query);

  auto result = engine.Run(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu connecting tree(s):\n", result->table.NumRows());
  for (size_t r = 0; r < result->table.NumRows(); ++r) {
    std::printf("  %s\n", result->RowToString(g, r).c_str());
  }
  std::printf(
      "\nBoth accounts appear even though their edges point in opposite\n"
      "directions; a path-only engine would miss the acct2 route.\n");
  return 0;
}
