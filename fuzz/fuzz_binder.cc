// Fuzz target: parse -> validate -> bind $params. Queries that survive the
// front end get every placeholder bound (alternating int/string values), and
// once more with an empty map to walk the missing-parameter error path; both
// must return a Query or a Status, never crash.
#include <cstdint>
#include <string_view>
#include <utility>

#include "eval/params.h"
#include "query/parser.h"
#include "query/validator.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = eql::ParseQuery(text);
  if (!parsed.ok()) return 0;
  eql::Query q = std::move(parsed).value();
  if (!eql::ValidateQuery(&q).ok()) return 0;
  eql::ParamMap params;
  size_t i = 0;
  for (const std::string& name : q.param_names) {
    if (i++ % 2 == 0) {
      params.Set(name, static_cast<int64_t>(name.size() + 1));
    } else {
      params.Set(name, "L" + name);
    }
  }
  (void)eql::BindParams(q, params);
  if (!q.param_names.empty()) {
    (void)eql::BindParams(q, eql::ParamMap());  // strictness: must not bind
  }
  return 0;
}
