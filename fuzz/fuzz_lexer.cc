// Fuzz target: the EQL tokenizer must return Ok or a Status on every byte
// sequence — never crash, hang, or read out of bounds.
#include <cstdint>
#include <string_view>

#include "query/lexer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto tokens = eql::Tokenize(text);
  (void)tokens;
  return 0;
}
