// Fuzz target: ParseQuery must turn every byte sequence into a Query or a
// position-annotated Status — no asserts, UB, or unbounded recursion.
#include <cstdint>
#include <string_view>

#include "query/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto q = eql::ParseQuery(text);
  (void)q;
  return 0;
}
