// Fuzz target: the whole engine on arbitrary query text over a small fixed
// graph, with tight time and memory budgets so pathological-but-valid
// queries terminate quickly. Every input must produce a QueryResult or a
// Status — never a crash, leak, or hang.
#include <cstdint>
#include <string_view>
#include <utility>

#include "eval/engine.h"
#include "graph/graph_io.h"

namespace {

const eql::EqlEngine& FuzzEngine() {
  static const eql::EqlEngine* engine = [] {
    auto g = eql::ParseGraphText(
        "Bob\tfounded\tOrgB\n"
        "Alice\tinvestsIn\tOrgB\n"
        "Bob\tparentOf\tAlice\n"
        "OrgB\tlocatedIn\tFrance\n"
        "Bob\tcitizenOf\tUSA\n"
        "Carole\tcitizenOf\tUSA\n"
        "Carole\tfounded\tOrgA\n"
        "Doug\tCEO\tOrgA\n"
        "Doug\tinvestsIn\tOrgC\n"
        "Carole\tfounded\tOrgC\n"
        "Elon\tparentOf\tDoug\n"
        "Alice\tcitizenOf\tFrance\n"
        "Doug\tcitizenOf\tFrance\n"
        "Elon\tcitizenOf\tFrance\n"
        "OrgC\tlocatedIn\tUSA\n"
        "@type\tBob\tentrepreneur\n"
        "@type\tAlice\tentrepreneur\n"
        "@type\tOrgA\tcompany\n"
        "@type\tOrgB\tcompany\n");
    static eql::Graph graph = std::move(g).value();
    eql::EngineOptions opts;
    opts.default_ctp_timeout_ms = 100;
    opts.default_query_timeout_ms = 200;
    opts.default_memory_budget_bytes = 1 << 20;
    opts.universal_default_limit = 64;
    return new eql::EqlEngine(graph, opts);
  }();
  return *engine;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 4096) return 0;  // long inputs just slow the search down
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto r = FuzzEngine().Run(text);
  (void)r;
  return 0;
}
