// Fuzz target: the parse -> validate pipeline on arbitrary text. Inputs
// that parse exercise the semantic checks (role conflicts, tree-variable
// uniqueness, member bounds) on whatever shapes the fuzzer finds.
#include <cstdint>
#include <string_view>
#include <utility>

#include "query/parser.h"
#include "query/validator.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = eql::ParseQuery(text);
  if (!parsed.ok()) return 0;
  eql::Query q = std::move(parsed).value();
  (void)eql::ValidateQuery(&q);
  return 0;
}
