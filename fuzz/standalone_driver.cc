// Replay driver for the fuzz targets when libFuzzer is unavailable (the
// default GCC build; see CMakeLists.txt EQL_FUZZER_MODE). Feeds every file
// named on the command line through LLVMFuzzerTestOneInput once. Success is
// the process surviving: a crash/sanitizer abort kills it with a nonzero
// status, so `fuzz_parser tests/corpus/*` is the corpus regression check.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n(replays each file once)\n",
                 argv[0]);
    return 0;  // no inputs is a no-op, not an error: globs may be empty
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::fprintf(stderr, "ok: %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}
