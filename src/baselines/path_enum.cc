#include "baselines/path_enum.h"

#include <algorithm>
#include <unordered_set>

#include "util/stopwatch.h"

namespace eql {

namespace {

/// Shared DFS enumerator over a compiled view; a kForward view restricts
/// expansion to out-edges (directed mode), kBoth explores both directions.
class DfsEnumerator {
 public:
  DfsEnumerator(const Graph& g, const std::vector<NodeId>& targets,
                const PathEnumOptions& opts, const CompiledCtpView& view,
                std::vector<EnumeratedPath>* out)
      : g_(g), opts_(opts), view_(view), out_(out) {
    deadline_ = opts.timeout_ms >= 0 ? Deadline::AfterMs(opts.timeout_ms)
                                     : Deadline::Infinite();
    targets_.insert(targets.begin(), targets.end());
  }

  PathEnumStats Run(const std::vector<NodeId>& sources) {
    for (NodeId s : sources) {
      if (stop_) break;
      source_ = s;
      on_path_.clear();
      on_path_.insert(s);
      path_.clear();
      // A source that is itself a target yields the empty path, mirroring
      // Cypher's zero-length path semantics.
      if (targets_.count(s)) Report(s);
      Dfs(s, 0);
    }
    stats_.elapsed_ms = sw_.ElapsedMs();
    return stats_;
  }

 private:
  void Report(NodeId end) {
    EnumeratedPath p;
    p.edges = path_;
    p.source = source_;
    p.target = end;
    out_->push_back(std::move(p));
    if (++stats_.paths_found >= opts_.max_paths) stop_ = true;
  }

  void Dfs(NodeId n, uint32_t depth) {
    if (stop_ || depth >= opts_.max_hops) return;
    if ((++stats_.expansions & 127) == 0 && deadline_.Expired()) {
      stop_ = true;
      stats_.timed_out = true;
      return;
    }
    for (const IncidentEdge& ie : view_.Edges(n)) {
      if (stop_) return;
      if (on_path_.count(ie.other)) continue;  // simple paths only
      path_.push_back(ie.edge);
      on_path_.insert(ie.other);
      if (targets_.count(ie.other)) Report(ie.other);
      // Continue past targets: longer simple paths through a target's
      // neighborhood are still distinct answers (Cypher semantics).
      Dfs(ie.other, depth + 1);
      on_path_.erase(ie.other);
      path_.pop_back();
    }
  }

  const Graph& g_;
  const PathEnumOptions& opts_;
  const CompiledCtpView& view_;
  std::vector<EnumeratedPath>* out_;
  std::unordered_set<NodeId> targets_;
  std::unordered_set<NodeId> on_path_;
  std::vector<EdgeId> path_;
  NodeId source_ = kNoNode;
  PathEnumStats stats_;
  Deadline deadline_;
  Stopwatch sw_;
  bool stop_ = false;
};

}  // namespace

PathEnumStats EnumerateUndirectedPaths(const Graph& g,
                                       const std::vector<NodeId>& sources,
                                       const std::vector<NodeId>& targets,
                                       const PathEnumOptions& opts,
                                       std::vector<EnumeratedPath>* out) {
  std::optional<CompiledCtpView> local;
  const CompiledCtpView* view = ViewOrLocal(g, opts.view, opts.allowed_labels,
                                            ViewDirection::kBoth, &local);
  DfsEnumerator dfs(g, targets, opts, *view, out);
  return dfs.Run(sources);
}

PathEnumStats EnumerateDirectedPaths(const Graph& g,
                                     const std::vector<NodeId>& sources,
                                     const std::vector<NodeId>& targets,
                                     const PathEnumOptions& opts,
                                     std::vector<EnumeratedPath>* out) {
  std::optional<CompiledCtpView> local;
  const CompiledCtpView* view = ViewOrLocal(g, opts.view, opts.allowed_labels,
                                            ViewDirection::kForward, &local);
  DfsEnumerator dfs(g, targets, opts, *view, out);
  return dfs.Run(sources);
}

PathEnumStats RecursivePathTable(const Graph& g, const std::vector<NodeId>& sources,
                                 const std::vector<NodeId>& targets,
                                 const PathEnumOptions& opts,
                                 std::vector<EnumeratedPath>* out) {
  // Semi-naive WITH RECURSIVE shape: the "delta" relation holds all simple
  // directed paths of length L from any source; each round extends every
  // delta row with every matching edge; targets are filtered at the end.
  PathEnumStats stats;
  Stopwatch sw;
  Deadline deadline = opts.timeout_ms >= 0 ? Deadline::AfterMs(opts.timeout_ms)
                                           : Deadline::Infinite();
  std::optional<CompiledCtpView> local;
  const CompiledCtpView* view = ViewOrLocal(g, opts.view, opts.allowed_labels,
                                            ViewDirection::kForward, &local);
  std::unordered_set<NodeId> target_set(targets.begin(), targets.end());

  struct Row {
    NodeId start;
    NodeId end;
    std::vector<EdgeId> edges;
    std::vector<NodeId> visited;  // sorted, for the cycle check (path array)
  };
  std::vector<Row> delta;
  for (NodeId s : sources) {
    delta.push_back(Row{s, s, {}, {s}});
    ++stats.rows_materialized;
  }
  auto emit = [&](const Row& r) {
    if (!target_set.count(r.end)) return;
    out->push_back(EnumeratedPath{r.edges, r.start, r.end});
    ++stats.paths_found;
  };
  for (const Row& r : delta) emit(r);  // zero-length paths

  for (uint32_t level = 0; level < opts.max_hops && !delta.empty(); ++level) {
    std::vector<Row> next;
    for (const Row& r : delta) {
      if (stats.paths_found >= opts.max_paths) {
        stats.elapsed_ms = sw.ElapsedMs();
        return stats;
      }
      if ((++stats.expansions & 127) == 0 && deadline.Expired()) {
        stats.timed_out = true;
        stats.elapsed_ms = sw.ElapsedMs();
        return stats;
      }
      for (const IncidentEdge& ie : view->Edges(r.end)) {
        if (std::binary_search(r.visited.begin(), r.visited.end(), ie.other)) {
          continue;  // WHERE NOT node = ANY(path)
        }
        Row nr;
        nr.start = r.start;
        nr.end = ie.other;
        nr.edges = r.edges;
        nr.edges.push_back(ie.edge);
        nr.visited = r.visited;
        nr.visited.insert(
            std::upper_bound(nr.visited.begin(), nr.visited.end(), ie.other),
            ie.other);
        ++stats.rows_materialized;
        emit(nr);
        next.push_back(std::move(nr));
      }
    }
    delta = std::move(next);
  }
  stats.elapsed_ms = sw.ElapsedMs();
  return stats;
}

}  // namespace eql
