// Path-returning baseline engines (Sections 5.2 and 5.5).
//
// These reimplement the *capability classes* of the systems the paper
// compares against (the systems themselves are not available offline; see
// DESIGN.md §2):
//
//  * EnumerateUndirectedPaths — Cypher/Neo4j's `-[*]-`: all simple paths
//    between two node sets, both directions.
//  * EnumerateDirectedPaths   — JEDI: all unidirectional label-constrained
//    data paths, target-aware DFS.
//  * RecursivePathTable       — Postgres `WITH RECURSIVE`: level-synchronous
//    materialization of all directed paths from the sources, endpoint filter
//    applied at the end (the relational, non-target-aware evaluation shape).
//
// As Section 2 explains, path semantics differ from CTP semantics: paths may
// pass through several nodes of one seed set, and m>=3 needs stitching with
// deduplication/minimization (see stitching.h).
#ifndef EQL_BASELINES_PATH_ENUM_H_
#define EQL_BASELINES_PATH_ENUM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ctp/view.h"
#include "graph/graph.h"

namespace eql {

struct PathEnumOptions {
  uint32_t max_hops = 16;  ///< path length cap (recursive engines need one)
  int64_t timeout_ms = -1;
  uint64_t max_paths = UINT64_MAX;
  /// Allowed edge labels (sorted StrIds); nullopt = all. Models the label
  /// constraints SPARQL property paths / JEDI require. Compiled into an
  /// adjacency view (ctp/view.h) before enumeration, so the DFS/recursive
  /// loops never test labels per edge.
  std::optional<std::vector<StrId>> allowed_labels;
  /// Compiled view to traverse (not owned); must match `allowed_labels` and
  /// the engine's direction (kForward for the directed enumerators, kBoth
  /// for the undirected one). nullptr compiles one locally — an O(V+E)
  /// one-time cost when a LABEL set is present (free pass-through
  /// otherwise); callers issuing many filtered enumerations over one graph
  /// should pass a cached view to amortize it.
  const CompiledCtpView* view = nullptr;
};

struct PathEnumStats {
  uint64_t paths_found = 0;
  uint64_t expansions = 0;      ///< DFS/level extensions performed
  uint64_t rows_materialized = 0;  ///< RecursivePathTable only
  double elapsed_ms = 0;
  bool timed_out = false;
};

/// One path as the ordered edge list from a source to a target.
struct EnumeratedPath {
  std::vector<EdgeId> edges;
  NodeId source = kNoNode;
  NodeId target = kNoNode;
};

PathEnumStats EnumerateUndirectedPaths(const Graph& g,
                                       const std::vector<NodeId>& sources,
                                       const std::vector<NodeId>& targets,
                                       const PathEnumOptions& opts,
                                       std::vector<EnumeratedPath>* out);

PathEnumStats EnumerateDirectedPaths(const Graph& g,
                                     const std::vector<NodeId>& sources,
                                     const std::vector<NodeId>& targets,
                                     const PathEnumOptions& opts,
                                     std::vector<EnumeratedPath>* out);

PathEnumStats RecursivePathTable(const Graph& g, const std::vector<NodeId>& sources,
                                 const std::vector<NodeId>& targets,
                                 const PathEnumOptions& opts,
                                 std::vector<EnumeratedPath>* out);

}  // namespace eql

#endif  // EQL_BASELINES_PATH_ENUM_H_
