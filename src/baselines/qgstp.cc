#include "baselines/qgstp.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/stopwatch.h"

namespace eql {

namespace {

constexpr uint32_t kInf = UINT32_MAX;

/// Multi-source BFS from one seed group over a compiled adjacency view
/// (ctp/view.h). In unidirectional mode the view is backward-laid-out, so
/// only in-edges are followed (dist[n] is then the length of a directed
/// path n -> ... -> seed, i.e. from a candidate root towards the group);
/// with a LABEL filter the view holds only allowed edges.
void GroupBfs(const Graph& g, const CompiledCtpView& view,
              const std::vector<NodeId>& group, std::vector<uint32_t>* dist,
              std::vector<EdgeId>* parent, uint64_t* settled) {
  dist->assign(g.NumNodes(), kInf);
  parent->assign(g.NumNodes(), kNoEdge);
  std::deque<NodeId> frontier;
  for (NodeId s : group) {
    (*dist)[s] = 0;
    frontier.push_back(s);
  }
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop_front();
    ++*settled;
    for (const IncidentEdge& ie : view.Edges(n)) {
      if ((*dist)[ie.other] != kInf) continue;
      (*dist)[ie.other] = (*dist)[n] + 1;
      (*parent)[ie.other] = ie.edge;
      frontier.push_back(ie.other);
    }
  }
}

/// Walks parent pointers from `n` back to the group, collecting edges.
void CollectBackPath(const Graph& g, NodeId n, const std::vector<uint32_t>& dist,
                     const std::vector<EdgeId>& parent,
                     std::vector<EdgeId>* edges) {
  NodeId cur = n;
  while (dist[cur] != 0) {
    EdgeId e = parent[cur];
    edges->push_back(e);
    cur = g.Source(e) == cur ? g.Target(e) : g.Source(e);
  }
}

/// Removes non-seed leaves repeatedly (tree minimization, as in Def 2.8).
std::vector<EdgeId> StripNonSeedLeaves(const Graph& g, const SeedSets& seeds,
                                       std::vector<EdgeId> edges) {
  bool changed = true;
  while (changed && !edges.empty()) {
    changed = false;
    std::unordered_map<NodeId, int> deg;
    for (EdgeId e : edges) {
      ++deg[g.Source(e)];
      ++deg[g.Target(e)];
    }
    std::vector<EdgeId> kept;
    for (EdgeId e : edges) {
      NodeId s = g.Source(e), d = g.Target(e);
      bool drop = (deg[s] == 1 && seeds.Signature(s).Empty()) ||
                  (deg[d] == 1 && seeds.Signature(d).Empty());
      if (drop) {
        changed = true;
      } else {
        kept.push_back(e);
      }
    }
    edges.swap(kept);
  }
  return edges;
}

}  // namespace

QgstpResult QgstpApprox(const Graph& g, const SeedSets& seeds,
                        const QgstpOptions& opts) {
  QgstpResult out;
  Stopwatch sw;
  Deadline deadline = opts.timeout_ms >= 0 ? Deadline::AfterMs(opts.timeout_ms)
                                           : Deadline::Infinite();
  const int m = seeds.num_sets();

  // The traversal view: caller-provided (and cache-amortized) or compiled
  // here. With neither LABEL nor UNI this is a free pass-through.
  std::optional<CompiledCtpView> local_view;
  const CompiledCtpView* view =
      ViewOrLocal(g, opts.view, opts.allowed_labels,
                  CompiledCtpView::DirectionFor(opts.unidirectional), &local_view);

  // Phase 1: per-group shortest-path fields.
  std::vector<std::vector<uint32_t>> dist(m);
  std::vector<std::vector<EdgeId>> parent(m);
  for (int i = 0; i < m; ++i) {
    GroupBfs(g, *view, seeds.Set(i), &dist[i], &parent[i], &out.nodes_settled);
    if (deadline.Expired()) {
      out.elapsed_ms = sw.ElapsedMs();
      return out;
    }
  }

  // Phase 2: rank candidate roots by total group distance.
  std::vector<std::pair<uint64_t, NodeId>> candidates;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    uint64_t total = 0;
    bool feasible = true;
    for (int i = 0; i < m; ++i) {
      if (dist[i][n] == kInf) {
        feasible = false;
        break;
      }
      total += dist[i][n];
    }
    if (feasible) candidates.emplace_back(total, n);
  }
  if (candidates.empty()) {
    out.elapsed_ms = sw.ElapsedMs();
    return out;  // groups not connected
  }
  int keep = opts.candidate_roots <= 0
                 ? static_cast<int>(candidates.size())
                 : std::min<int>(opts.candidate_roots,
                                 static_cast<int>(candidates.size()));
  std::partial_sort(candidates.begin(), candidates.begin() + keep, candidates.end());

  // Phase 3: build + minimize a tree per candidate root, keep the smallest.
  size_t best_size = SIZE_MAX;
  for (int c = 0; c < keep && !deadline.Expired(); ++c) {
    NodeId root = candidates[c].second;
    std::vector<EdgeId> edges;
    for (int i = 0; i < m; ++i) CollectBackPath(g, root, dist[i], parent[i], &edges);
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    // Back-path unions from different groups may induce cycles; extract a
    // spanning tree of the union by BFS over its edges from the root.
    std::unordered_map<NodeId, std::vector<EdgeId>> adj;
    for (EdgeId e : edges) {
      adj[g.Source(e)].push_back(e);
      adj[g.Target(e)].push_back(e);
    }
    std::unordered_map<NodeId, bool> visited;
    std::vector<EdgeId> tree;
    std::deque<NodeId> frontier = {root};
    visited[root] = true;
    while (!frontier.empty()) {
      NodeId n = frontier.front();
      frontier.pop_front();
      for (EdgeId e : adj[n]) {
        NodeId other = g.Source(e) == n ? g.Target(e) : g.Source(e);
        if (visited[other]) continue;
        visited[other] = true;
        tree.push_back(e);
        frontier.push_back(other);
      }
    }
    tree = StripNonSeedLeaves(g, seeds, tree);
    if (tree.size() < best_size) {
      best_size = tree.size();
      std::sort(tree.begin(), tree.end());
      out.tree_edges = std::move(tree);
      out.root = root;
      out.found = true;
    }
  }
  out.elapsed_ms = sw.ElapsedMs();
  return out;
}

}  // namespace eql
