// QGSTP-style Group Steiner Tree approximation (Section 5.4.3, [39]).
//
// QGSTP is a polynomial-time algorithm that returns exactly *one*
// (approximately cost-minimal) group Steiner tree. The authors' code relies
// on their datasets and is unavailable offline; this reimplementation keeps
// the contract the comparison needs — one result, polynomial time, shortest-
// path based construction with local improvement:
//
//   1. multi-source BFS from every seed group (unit edge weights);
//   2. candidate roots ranked by the sum of group distances;
//   3. for the best K roots, union the back-paths to each group's nearest
//      seed, strip non-seed leaves, keep the smallest tree.
//
// With `unidirectional`, BFS follows edges backwards so the returned tree
// has a root with directed paths to every seed (matching UNI MoLESP in the
// Figure 12 experiment).
#ifndef EQL_BASELINES_QGSTP_H_
#define EQL_BASELINES_QGSTP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ctp/seed_sets.h"
#include "ctp/view.h"
#include "graph/graph.h"

namespace eql {

struct QgstpResult {
  bool found = false;
  std::vector<EdgeId> tree_edges;  ///< empty when !found or one-node tree
  NodeId root = kNoNode;
  double elapsed_ms = 0;
  uint64_t nodes_settled = 0;  ///< BFS work, for effort comparisons
};

struct QgstpOptions {
  bool unidirectional = false;
  int64_t timeout_ms = -1;
  /// How many candidate roots to build+minimize trees for, best-first by
  /// total group distance; <= 0 evaluates every feasible root. QGSTP's
  /// contract is returning the *best* cohesive tree, which requires scoring
  /// candidates across the graph — the exhaustive default reflects that
  /// cost profile; tests may narrow it.
  int candidate_roots = 0;
  /// Allowed edge labels (CtpFilters semantics: nullopt = all). Matches the
  /// LABEL filter of the CTP being compared against, so baseline-vs-CTP
  /// numbers measure algorithmic differences, not filtering overhead.
  std::optional<std::vector<StrId>> allowed_labels;
  /// Compiled adjacency view to traverse (ctp/view.h); must match
  /// `allowed_labels` and the direction implied by `unidirectional`
  /// (kBackward when set, kBoth otherwise). nullptr compiles one locally —
  /// an O(V+E) one-time cost when a LABEL set is present (free pass-through
  /// otherwise); pass a cached view to amortize across calls.
  const CompiledCtpView* view = nullptr;
};

/// Computes one approximate group Steiner tree over `seeds` (universal sets
/// are not supported — QGSTP has no such notion).
QgstpResult QgstpApprox(const Graph& g, const SeedSets& seeds,
                        const QgstpOptions& opts);

}  // namespace eql

#endif  // EQL_BASELINES_QGSTP_H_
