#include "baselines/reachability.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/stopwatch.h"

namespace eql {

ReachabilityStats CheckReachability(
    const Graph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, bool directed,
    const std::optional<std::vector<StrId>>& allowed_labels, int64_t timeout_ms,
    std::vector<std::pair<NodeId, NodeId>>* out) {
  ReachabilityStats stats;
  Stopwatch sw;
  Deadline deadline =
      timeout_ms >= 0 ? Deadline::AfterMs(timeout_ms) : Deadline::Infinite();
  auto label_ok = [&](StrId l) {
    if (!allowed_labels) return true;
    return std::binary_search(allowed_labels->begin(), allowed_labels->end(), l);
  };
  std::unordered_set<NodeId> target_set(targets.begin(), targets.end());
  std::vector<uint32_t> visited_mark(g.NumNodes(), 0);
  uint32_t epoch = 0;

  for (NodeId s : sources) {
    ++epoch;
    std::deque<NodeId> frontier = {s};
    visited_mark[s] = epoch;
    while (!frontier.empty()) {
      if ((++stats.nodes_visited & 255) == 0 && deadline.Expired()) {
        stats.timed_out = true;
        stats.elapsed_ms = sw.ElapsedMs();
        return stats;
      }
      NodeId n = frontier.front();
      frontier.pop_front();
      if (target_set.count(n)) {
        ++stats.reachable_pairs;
        if (out != nullptr) out->emplace_back(s, n);
      }
      auto edges = directed ? g.OutEdges(n) : g.Incident(n);
      for (const IncidentEdge& ie : edges) {
        if (!label_ok(g.EdgeLabelId(ie.edge))) continue;
        if (visited_mark[ie.other] == epoch) continue;
        visited_mark[ie.other] = epoch;
        frontier.push_back(ie.other);
      }
    }
    stats.pairs_checked += targets.size();
  }
  stats.elapsed_ms = sw.ElapsedMs();
  return stats;
}

}  // namespace eql
