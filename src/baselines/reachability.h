// Check-only reachability — the Virtuoso capability class (Section 5.5):
// SPARQL 1.1 property paths can *check* that some unidirectional,
// label-constrained path connects two nodes, but return neither the path
// nor bidirectional connections.
#ifndef EQL_BASELINES_REACHABILITY_H_
#define EQL_BASELINES_REACHABILITY_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace eql {

struct ReachabilityStats {
  uint64_t pairs_checked = 0;
  uint64_t reachable_pairs = 0;
  uint64_t nodes_visited = 0;
  double elapsed_ms = 0;
  bool timed_out = false;
};

/// For every source, BFS once (directed or undirected, label-constrained)
/// and record which targets are reachable. Reachable (source, target) pairs
/// are appended to *out if non-null.
ReachabilityStats CheckReachability(
    const Graph& g, const std::vector<NodeId>& sources,
    const std::vector<NodeId>& targets, bool directed,
    const std::optional<std::vector<StrId>>& allowed_labels, int64_t timeout_ms,
    std::vector<std::pair<NodeId, NodeId>>* out = nullptr);

}  // namespace eql

#endif  // EQL_BASELINES_REACHABILITY_H_
