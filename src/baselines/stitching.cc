#include "baselines/stitching.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"
#include "util/stopwatch.h"

namespace eql {

namespace {

/// Unions three edge lists; returns true iff the union forms a tree (i.e.
/// node count == edge count + 1; connectivity is implied since all paths
/// start at the same root).
bool UnionIsTree(const Graph& g, const std::vector<EdgeId>& a,
                 const std::vector<EdgeId>& b, const std::vector<EdgeId>& c,
                 std::vector<EdgeId>* out) {
  out->clear();
  out->insert(out->end(), a.begin(), a.end());
  out->insert(out->end(), b.begin(), b.end());
  out->insert(out->end(), c.begin(), c.end());
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  std::vector<NodeId> nodes;
  for (EdgeId e : *out) {
    nodes.push_back(g.Source(e));
    nodes.push_back(g.Target(e));
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes.size() == out->size() + 1;
}

}  // namespace

StitchStats StitchThreeWay(const Graph& g, const std::vector<NodeId>& s1,
                           const std::vector<NodeId>& s2,
                           const std::vector<NodeId>& s3,
                           const PathEnumOptions& opts,
                           std::vector<std::vector<EdgeId>>* results) {
  StitchStats stats;
  Stopwatch sw;
  Deadline deadline = opts.timeout_ms >= 0 ? Deadline::AfterMs(opts.timeout_ms)
                                           : Deadline::Infinite();
  std::unordered_map<uint64_t, std::vector<std::vector<EdgeId>>> seen;

  for (NodeId r = 0; r < g.NumNodes() && !stats.timed_out; ++r) {
    // Paths from the candidate root to each seed set (undirected, bounded).
    std::vector<EnumeratedPath> p1, p2, p3;
    PathEnumOptions per_root = opts;
    per_root.timeout_ms = -1;  // the global deadline governs
    stats.paths_enumerated +=
        EnumerateUndirectedPaths(g, {r}, s1, per_root, &p1).paths_found;
    stats.paths_enumerated +=
        EnumerateUndirectedPaths(g, {r}, s2, per_root, &p2).paths_found;
    stats.paths_enumerated +=
        EnumerateUndirectedPaths(g, {r}, s3, per_root, &p3).paths_found;
    if (p1.empty() || p2.empty() || p3.empty()) continue;

    // Three-way join: every path combination forms a candidate whose edge
    // union must (i) be a tree — overlapping paths may create cycles — and
    // (ii) not repeat a previously produced edge set ("for each tree of n
    // nodes, the three-way join produces n results, that need
    // deduplication", Section 2).
    std::vector<EdgeId> tree;
    for (const auto& pa : p1) {
      if (deadline.Expired()) {
        stats.timed_out = true;
        break;
      }
      for (const auto& pb : p2) {
        for (const auto& pc : p3) {
          ++stats.joined_tuples;
          if (!UnionIsTree(g, pa.edges, pb.edges, pc.edges, &tree)) {
            ++stats.non_tree_dropped;
            continue;
          }
          uint64_t h = HashIdVector(tree);
          auto& bucket = seen[h];
          bool dup = false;
          for (const auto& existing : bucket) {
            if (existing == tree) {
              dup = true;
              break;
            }
          }
          if (dup) {
            ++stats.duplicates_dropped;
            continue;
          }
          bucket.push_back(tree);
          ++stats.results;
          results->push_back(tree);
        }
      }
    }
  }
  stats.elapsed_ms = sw.ElapsedMs();
  return stats;
}

}  // namespace eql
