// Path stitching: computing 3-seed connections by joining root-to-seed paths
// (the approach Section 2 argues against).
//
// For every candidate root r, all simple paths r->s1, r->s2, r->s3 are
// three-way joined; joined tuples whose paths overlap are not trees and must
// be dropped, and each surviving tree of n nodes is produced n times (once
// per root) and must be deduplicated. The stats expose exactly this waste —
// the reason the paper computes CTP results directly.
#ifndef EQL_BASELINES_STITCHING_H_
#define EQL_BASELINES_STITCHING_H_

#include <cstdint>
#include <vector>

#include "baselines/path_enum.h"
#include "graph/graph.h"

namespace eql {

struct StitchStats {
  uint64_t paths_enumerated = 0;
  uint64_t joined_tuples = 0;      ///< all (p1, p2, p3) combinations formed
  uint64_t non_tree_dropped = 0;   ///< joins with overlapping paths
  uint64_t duplicates_dropped = 0; ///< same tree reached via another root
  uint64_t results = 0;
  double elapsed_ms = 0;
  bool timed_out = false;
};

/// Stitches three seed sets; distinct tree edge sets land in *results
/// (sorted edge-id vectors). Bounded by opts.max_hops per path and
/// opts.timeout_ms overall.
StitchStats StitchThreeWay(const Graph& g, const std::vector<NodeId>& s1,
                           const std::vector<NodeId>& s2,
                           const std::vector<NodeId>& s3,
                           const PathEnumOptions& opts,
                           std::vector<std::vector<EdgeId>>* results);

}  // namespace eql

#endif  // EQL_BASELINES_STITCHING_H_
