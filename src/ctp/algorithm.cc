#include "ctp/algorithm.h"

#include <algorithm>
#include <cctype>

namespace eql {

const char* AlgorithmName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kBft:
      return "bft";
    case AlgorithmKind::kBftM:
      return "bft_m";
    case AlgorithmKind::kBftAM:
      return "bft_am";
    case AlgorithmKind::kGam:
      return "gam";
    case AlgorithmKind::kEsp:
      return "esp";
    case AlgorithmKind::kMoEsp:
      return "moesp";
    case AlgorithmKind::kLesp:
      return "lesp";
    case AlgorithmKind::kMoLesp:
      return "molesp";
  }
  return "?";
}

std::optional<AlgorithmKind> ParseAlgorithmName(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (AlgorithmKind kind : kAllAlgorithms) {
    if (lower == AlgorithmName(kind)) return kind;
  }
  return std::nullopt;
}

bool IsGamFamily(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kBft:
    case AlgorithmKind::kBftM:
    case AlgorithmKind::kBftAM:
      return false;
    default:
      return true;
  }
}

GamConfig MakeGamConfig(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kGam:
      return GamConfig::Gam();
    case AlgorithmKind::kEsp:
      return GamConfig::Esp();
    case AlgorithmKind::kMoEsp:
      return GamConfig::MoEsp();
    case AlgorithmKind::kLesp:
      return GamConfig::Lesp();
    default:
      return GamConfig::MoLesp();
  }
}

namespace {

class GamAdapter : public CtpAlgorithm {
 public:
  GamAdapter(AlgorithmKind kind, const Graph& g, const SeedSets& seeds,
             GamConfig config)
      : kind_(kind), search_(g, seeds, std::move(config)) {}
  Status Run() override { return search_.Run(); }
  const CtpResultSet& results() const override { return search_.results(); }
  const SearchStats& stats() const override { return search_.stats(); }
  const TreeArena& arena() const override { return search_.arena(); }
  AlgorithmKind kind() const override { return kind_; }

 private:
  AlgorithmKind kind_;
  GamSearch search_;
};

class BftAdapter : public CtpAlgorithm {
 public:
  BftAdapter(AlgorithmKind kind, const Graph& g, const SeedSets& seeds,
             BftConfig config)
      : kind_(kind), search_(g, seeds, std::move(config)) {}
  Status Run() override { return search_.Run(); }
  const CtpResultSet& results() const override { return search_.results(); }
  const SearchStats& stats() const override { return search_.stats(); }
  const TreeArena& arena() const override { return search_.arena(); }
  AlgorithmKind kind() const override { return kind_; }

 private:
  AlgorithmKind kind_;
  BftSearch search_;
};

}  // namespace

std::unique_ptr<CtpAlgorithm> CreateCtpAlgorithm(AlgorithmKind kind, const Graph& g,
                                                 const SeedSets& seeds,
                                                 CtpFilters filters,
                                                 SearchOrder* order,
                                                 QueueStrategy queue_strategy,
                                                 const CtpAlgorithmTuning& tuning) {
  if (!IsGamFamily(kind)) {
    BftConfig config;
    config.filters = std::move(filters);
    config.view = tuning.view;
    config.cancel = tuning.cancel;
    config.progress = tuning.progress;
    config.on_result = tuning.on_result;
    config.fault = tuning.fault;
    config.merge_mode = kind == AlgorithmKind::kBft      ? BftMergeMode::kNone
                        : kind == AlgorithmKind::kBftM   ? BftMergeMode::kMergeOnce
                                                         : BftMergeMode::kAggressive;
    return std::make_unique<BftAdapter>(kind, g, seeds, std::move(config));
  }
  GamConfig config = MakeGamConfig(kind);
  config.filters = std::move(filters);
  config.order = order;
  config.queue_strategy = queue_strategy;
  config.view = tuning.view;
  config.incremental_scores = tuning.incremental_scores;
  config.bound_pruning = tuning.bound_pruning;
  config.cancel = tuning.cancel;
  config.progress = tuning.progress;
  config.on_result = tuning.on_result;
  config.fault = tuning.fault;
  return std::make_unique<GamAdapter>(kind, g, seeds, std::move(config));
}

}  // namespace eql
