// Uniform façade over the eight CTP evaluation algorithms of Section 4.
//
// Benches, tests and the query executor pick algorithms by AlgorithmKind (or
// by name, for CLI flags) and run them through one interface, so that e.g.
// Figure 10's BFT-vs-GAM sweep and Figure 11's GAM-variant sweep share a
// harness.
#ifndef EQL_CTP_ALGORITHM_H_
#define EQL_CTP_ALGORITHM_H_

#include <memory>
#include <optional>
#include <string>

#include "ctp/bft.h"
#include "ctp/gam.h"

namespace eql {

/// The algorithms studied in the paper, in presentation order.
enum class AlgorithmKind {
  kBft,     ///< §4.1 (plot label BFS_G)
  kBftM,    ///< §4.3 (BFS_M)
  kBftAM,   ///< §4.3 (BFS_AM)
  kGam,     ///< §4.2
  kEsp,     ///< §4.4
  kMoEsp,   ///< §4.5
  kLesp,    ///< §4.6
  kMoLesp,  ///< §4.7 — the paper's recommended algorithm
};

/// Stable lowercase name ("molesp", "bft_am", ...).
const char* AlgorithmName(AlgorithmKind kind);

/// Parses AlgorithmName output (case-insensitive); nullopt if unknown.
std::optional<AlgorithmKind> ParseAlgorithmName(const std::string& name);

/// All kinds, for sweeps.
inline constexpr AlgorithmKind kAllAlgorithms[] = {
    AlgorithmKind::kBft,  AlgorithmKind::kBftM, AlgorithmKind::kBftAM,
    AlgorithmKind::kGam,  AlgorithmKind::kEsp,  AlgorithmKind::kMoEsp,
    AlgorithmKind::kLesp, AlgorithmKind::kMoLesp};

/// True for the GAM family (root-directed growth; supports UNI/universal).
bool IsGamFamily(AlgorithmKind kind);

/// The GamConfig preset behind a GAM-family kind (callers that drive
/// GamSearch directly, e.g. the parallel executor's chunk workers). `kind`
/// must satisfy IsGamFamily.
GamConfig MakeGamConfig(AlgorithmKind kind);

/// A ready-to-run CTP evaluation; owns its arena, results and stats.
class CtpAlgorithm {
 public:
  virtual ~CtpAlgorithm() = default;
  virtual Status Run() = 0;
  virtual const CtpResultSet& results() const = 0;
  virtual const SearchStats& stats() const = 0;
  virtual const TreeArena& arena() const = 0;
  virtual AlgorithmKind kind() const = 0;
};

/// PR 3 execution knobs shared by the GAM and BFT adapters: the compiled
/// adjacency view (must match `filters`; ctp/view.h) and the incremental-
/// scoring / bound-pruning toggles (see GamConfig for their contracts).
struct CtpAlgorithmTuning {
  const CompiledCtpView* view = nullptr;  ///< not owned; must outlive the algo
  bool incremental_scores = true;
  bool bound_pruning = true;
  /// Cooperative cancellation and streaming emission, forwarded to the
  /// search config (GamConfig / BftConfig; see ctp/gam.h for the contracts).
  const std::atomic<bool>* cancel = nullptr;
  /// Progress counter forwarded to the search config (GamConfig::progress /
  /// BftConfig::progress); not owned, may be null.
  std::atomic<uint64_t>* progress = nullptr;
  ResultHook on_result;
  /// Deterministic fault injection, forwarded to the search config (see
  /// GamConfig::fault / BftConfig::fault); not owned, may be null.
  FaultInjector* fault = nullptr;
};

/// Builds an algorithm instance. `order` (optional, GAM family only) biases
/// exploration; `queue_strategy` selects Section 4.9's multi-queue handling.
/// The graph and seed sets must outlive the returned object.
std::unique_ptr<CtpAlgorithm> CreateCtpAlgorithm(
    AlgorithmKind kind, const Graph& g, const SeedSets& seeds, CtpFilters filters,
    SearchOrder* order = nullptr,
    QueueStrategy queue_strategy = QueueStrategy::kSingle,
    const CtpAlgorithmTuning& tuning = {});

}  // namespace eql

#endif  // EQL_CTP_ALGORITHM_H_
