#include "ctp/analysis.h"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace eql {

TreeShape AnalyzeTree(const Graph& g, const SeedSets& seeds,
                      const TreeArena& arena, TreeId id) {
  const std::vector<EdgeId> edges = arena.EdgeSet(id);
  TreeShape shape;
  if (edges.empty()) {
    shape.is_path = true;
    shape.property9_applies = true;
    return shape;
  }

  // Local adjacency over the tree's edges.
  std::unordered_map<NodeId, std::vector<EdgeId>> adj;
  for (EdgeId e : edges) {
    adj[g.Source(e)].push_back(e);
    adj[g.Target(e)].push_back(e);
  }

  shape.is_path = true;
  for (const auto& [n, es] : adj) {
    if (es.size() > 2) shape.is_path = false;
  }

  // theta(t): flood-fill over edges, never expanding *through* a seed node.
  // Every maximal component obtained this way is a simple edge set: its
  // leaves are seed cut-points or original tree leaves (seeds, by result
  // minimality), and its internal nodes are non-seeds.
  std::unordered_map<EdgeId, bool> visited;
  shape.property9_applies = true;
  for (EdgeId start : edges) {
    if (visited[start]) continue;
    std::vector<EdgeId> piece;
    std::vector<EdgeId> stack = {start};
    visited[start] = true;
    while (!stack.empty()) {
      EdgeId e = stack.back();
      stack.pop_back();
      piece.push_back(e);
      for (NodeId n : {g.Source(e), g.Target(e)}) {
        if (!seeds.Signature(n).Empty()) continue;  // cut at seeds
        for (EdgeId e2 : adj[n]) {
          if (!visited[e2]) {
            visited[e2] = true;
            stack.push_back(e2);
          }
        }
      }
    }
    std::sort(piece.begin(), piece.end());

    // Piece statistics: leaves and branching nodes within the piece.
    std::unordered_map<NodeId, int> deg;
    for (EdgeId e : piece) {
      ++deg[g.Source(e)];
      ++deg[g.Target(e)];
    }
    int leaves = 0;
    int branch_nodes = 0;
    bool branch_is_seed = false;
    for (const auto& [n, d] : deg) {
      if (d == 1) ++leaves;
      if (d >= 3) {
        ++branch_nodes;
        if (!seeds.Signature(n).Empty()) branch_is_seed = true;
      }
    }
    shape.max_piece_leaves = std::max(shape.max_piece_leaves, leaves);
    // Property 9 needs each piece to be a (u,n)-rooted merge: one non-seed
    // center from which seed-terminated legs radiate (u<=2 pieces are paths).
    if (branch_nodes > 1 || branch_is_seed) shape.property9_applies = false;

    shape.pieces.push_back(std::move(piece));
  }
  return shape;
}

Result<CtpBindingAnalysis> AnalyzeCtpBindings(
    const Query& q, const std::vector<std::vector<size_t>>& bgp_groups,
    bool allow_free_cycles) {
  CtpBindingAnalysis out;

  // First BGP group (in group order) whose patterns carry `var`; SIZE_MAX if
  // none. Mirrors the engine's first-match table scan: BGP tables precede
  // CTP tables in the stage list.
  auto bgp_group_of = [&](const std::string& var) -> size_t {
    for (size_t gi = 0; gi < bgp_groups.size(); ++gi) {
      for (size_t pi : bgp_groups[gi]) {
        const EdgePattern& ep = q.patterns[pi];
        if (ep.source.var == var || ep.edge.var == var || ep.target.var == var) {
          return gi;
        }
      }
    }
    return SIZE_MAX;
  };
  // First CTP before `before` whose table carries `var` (member columns plus
  // the tree column, exactly like BindingTable::HasColumn would report).
  auto earlier_ctp_of = [&](const std::string& var, size_t before) -> size_t {
    for (size_t j = 0; j < before; ++j) {
      if (q.ctps[j].tree_var == var) return j;
      for (const Predicate& pm : q.ctps[j].members) {
        if (pm.var == var) return j;
      }
    }
    return SIZE_MAX;
  };

  for (size_t i = 0; i < q.ctps.size(); ++i) {
    std::vector<CtpMemberSource> sources;
    std::vector<size_t> deps;
    for (const Predicate& m : q.ctps[i].members) {
      CtpMemberSource src;
      const size_t b = bgp_group_of(m.var);
      if (b != SIZE_MAX) {
        src.kind = CtpMemberSource::Kind::kBgpTable;
        src.source = b;
      } else if (const size_t j = earlier_ctp_of(m.var, i); j != SIZE_MAX) {
        src.kind = CtpMemberSource::Kind::kCtpTable;
        src.source = j;
        deps.push_back(j);
        out.dependent_ctps = true;
      } else if (!m.IsEmpty()) {
        src.kind = CtpMemberSource::Kind::kPredicate;
      } else {
        src.kind = CtpMemberSource::Kind::kUniversal;
      }
      sources.push_back(src);
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    out.member_sources.push_back(std::move(sources));
    out.ctp_deps.push_back(std::move(deps));
  }

  // Cyclic free-member rejection: CTPs chained only through mutually free
  // members leave the chain's first stage with every seed set universal —
  // the bindings reference each other in a cycle and nothing grounds them.
  if (!allow_free_cycles && q.ctps.size() > 1) {
    // A member occurrence is "free" when nothing grounds it locally: no
    // predicate conditions (a `$param` condition counts as grounding — it
    // becomes a literal at bind time) and no BGP binding.
    auto is_free = [&](const Predicate& m) {
      return m.IsEmpty() && bgp_group_of(m.var) == SIZE_MAX;
    };
    // Union-find over CTPs, united through vars free at both occurrences.
    std::vector<size_t> parent(q.ctps.size());
    for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    auto find = [&](size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (size_t i = 0; i < q.ctps.size(); ++i) {
      for (const Predicate& mi : q.ctps[i].members) {
        if (!is_free(mi)) continue;
        for (size_t j = i + 1; j < q.ctps.size(); ++j) {
          for (const Predicate& mj : q.ctps[j].members) {
            if (is_free(mj) && mj.var == mi.var) parent[find(i)] = find(j);
          }
        }
      }
    }
    std::vector<size_t> comp_size(q.ctps.size(), 0);
    for (size_t i = 0; i < q.ctps.size(); ++i) ++comp_size[find(i)];
    for (size_t i = 0; i < q.ctps.size(); ++i) {
      if (comp_size[find(i)] < 2) continue;
      bool all_universal = !out.member_sources[i].empty();
      for (const CtpMemberSource& s : out.member_sources[i]) {
        all_universal &= s.kind == CtpMemberSource::Kind::kUniversal;
      }
      if (!all_universal) continue;
      std::string vars, partners;
      for (const Predicate& m : q.ctps[i].members) {
        vars += (vars.empty() ? "?" : ", ?") + m.var;
      }
      for (size_t j = 0; j < q.ctps.size(); ++j) {
        if (j != i && find(j) == find(i)) {
          partners += (partners.empty() ? "?" : ", ?") + q.ctps[j].tree_var;
        }
      }
      return Status::InvalidArgument(
          "cyclic member dependency: CTP ?" + q.ctps[i].tree_var +
          " shares only free members (" + vars + ") with CTP " + partners +
          ", so no seed set of ?" + q.ctps[i].tree_var +
          " is grounded; break the cycle with a predicate, a BGP binding, or "
          "a $param on one shared member");
    }
  }
  return out;
}

}  // namespace eql
