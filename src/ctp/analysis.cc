#include "ctp/analysis.h"

#include <algorithm>
#include <unordered_map>

namespace eql {

TreeShape AnalyzeTree(const Graph& g, const SeedSets& seeds,
                      const TreeArena& arena, TreeId id) {
  const std::vector<EdgeId> edges = arena.EdgeSet(id);
  TreeShape shape;
  if (edges.empty()) {
    shape.is_path = true;
    shape.property9_applies = true;
    return shape;
  }

  // Local adjacency over the tree's edges.
  std::unordered_map<NodeId, std::vector<EdgeId>> adj;
  for (EdgeId e : edges) {
    adj[g.Source(e)].push_back(e);
    adj[g.Target(e)].push_back(e);
  }

  shape.is_path = true;
  for (const auto& [n, es] : adj) {
    if (es.size() > 2) shape.is_path = false;
  }

  // theta(t): flood-fill over edges, never expanding *through* a seed node.
  // Every maximal component obtained this way is a simple edge set: its
  // leaves are seed cut-points or original tree leaves (seeds, by result
  // minimality), and its internal nodes are non-seeds.
  std::unordered_map<EdgeId, bool> visited;
  shape.property9_applies = true;
  for (EdgeId start : edges) {
    if (visited[start]) continue;
    std::vector<EdgeId> piece;
    std::vector<EdgeId> stack = {start};
    visited[start] = true;
    while (!stack.empty()) {
      EdgeId e = stack.back();
      stack.pop_back();
      piece.push_back(e);
      for (NodeId n : {g.Source(e), g.Target(e)}) {
        if (!seeds.Signature(n).Empty()) continue;  // cut at seeds
        for (EdgeId e2 : adj[n]) {
          if (!visited[e2]) {
            visited[e2] = true;
            stack.push_back(e2);
          }
        }
      }
    }
    std::sort(piece.begin(), piece.end());

    // Piece statistics: leaves and branching nodes within the piece.
    std::unordered_map<NodeId, int> deg;
    for (EdgeId e : piece) {
      ++deg[g.Source(e)];
      ++deg[g.Target(e)];
    }
    int leaves = 0;
    int branch_nodes = 0;
    bool branch_is_seed = false;
    for (const auto& [n, d] : deg) {
      if (d == 1) ++leaves;
      if (d >= 3) {
        ++branch_nodes;
        if (!seeds.Signature(n).Empty()) branch_is_seed = true;
      }
    }
    shape.max_piece_leaves = std::max(shape.max_piece_leaves, leaves);
    // Property 9 needs each piece to be a (u,n)-rooted merge: one non-seed
    // center from which seed-terminated legs radiate (u<=2 pieces are paths).
    if (branch_nodes > 1 || branch_is_seed) shape.property9_applies = false;

    shape.pieces.push_back(std::move(piece));
  }
  return shape;
}

}  // namespace eql
