// Result-shape analysis: the notions the paper's completeness guarantees are
// stated in (Definitions 4.4-4.8), computed on concrete trees.
//
//  * Simple tree decomposition theta(t) (Def 4.6): the unique partition of a
//    result's edges into simple edge sets (pieces whose leaves are seeds and
//    whose internal nodes are not).
//  * p-simple pieces / p-piecewise-simple results (Defs 4.5, 4.7).
//  * (u,n)-rooted-merge shape (Def 4.8): a piece that is a "spider" with a
//    single (non-seed) branching node.
//
// These drive the property-test oracles: MoESP must find all 2ps results
// (Property 4) and all path results (Property 5); MoLESP all 3ps results
// (Property 7), everything for m <= 3 (Property 8), and every result whose
// pieces are rooted merges (Property 9).
//
// The second half is *stage* analysis: where each CTP member's seed set
// comes from under the engine's fixed evaluation order (Section 3 step B.1),
// which earlier stages a CTP therefore depends on, and the rejection of
// cyclic free-member references. The planner (eval/plan.h) consumes this to
// order stages; the engine consumes it to resolve bindings without rescanning
// tables.
#ifndef EQL_CTP_ANALYSIS_H_
#define EQL_CTP_ANALYSIS_H_

#include <cstddef>
#include <vector>

#include "ctp/seed_sets.h"
#include "ctp/tree.h"
#include "graph/graph.h"
#include "query/ast.h"
#include "util/status.h"

namespace eql {

/// Classification of one result tree.
struct TreeShape {
  /// theta(t): each piece is a sorted edge-id vector.
  std::vector<std::vector<EdgeId>> pieces;

  /// Maximum leaf count over pieces; the tree is p-piecewise simple exactly
  /// for p >= this value.
  int max_piece_leaves = 0;

  /// True if no tree node has more than two incident tree edges; path
  /// results are 2ps (Property 5's precondition).
  bool is_path = false;

  /// True if every piece has at most one branching (degree >= 3) node, and
  /// that node is not a seed — i.e., every piece is a (u,n)-rooted merge in
  /// the extended sense of Property 9 (paths count as u <= 2 merges).
  bool property9_applies = false;
};

/// Computes theta(t) and the shape flags. Tree `id` must have only seed
/// leaves (a CTP result); single-node trees yield an empty decomposition
/// with property9_applies = true.
TreeShape AnalyzeTree(const Graph& g, const SeedSets& seeds,
                      const TreeArena& arena, TreeId id);

/// True if the result is p-piecewise simple (Def 4.7).
inline bool IsPiecewiseSimple(const TreeShape& shape, int p) {
  return shape.max_piece_leaves <= p;
}

// ---------------------------------------------------------------------------
// CTP stage-dependency analysis (consumed by the planner, eval/plan.h).
// ---------------------------------------------------------------------------

/// Where one CTP member's seed set comes from under the fixed evaluation
/// order: the first binding table carrying the member variable — BGP tables
/// in group order, then earlier CTP tables in query order — else the
/// member's own predicate, else the universal set N (Section 4.9).
struct CtpMemberSource {
  enum class Kind {
    kBgpTable,   ///< distinct bindings of a BGP table (narrowed by the
                 ///< member's own predicate, if any)
    kCtpTable,   ///< distinct bindings of an earlier CTP's table
    kPredicate,  ///< NodesMatchingPredicate over the member's conditions
    kUniversal,  ///< unconstrained: the universal seed set
  };
  Kind kind = Kind::kUniversal;
  /// BGP group index (kBgpTable) or CTP query index (kCtpTable); SIZE_MAX
  /// for the table-free kinds.
  size_t source = SIZE_MAX;
};

/// Binding structure of a query's CTP stages. `member_sources[i][k]` is the
/// source of CTP i's k-th member; `ctp_deps[i]` lists the earlier CTPs whose
/// tables CTP i reads (sorted, unique). The engine must evaluate a CTP after
/// every stage in its dep list — any order satisfying that yields the same
/// seed sets, hence (searches being deterministic) the same CTP tables.
struct CtpBindingAnalysis {
  std::vector<std::vector<CtpMemberSource>> member_sources;
  std::vector<std::vector<size_t>> ctp_deps;
  /// Some CTP seeds from an earlier CTP's table (legacy serial-mode trigger).
  bool dependent_ctps = false;
};

/// Computes the binding analysis for a validated query. `bgp_groups` lists
/// the pattern indexes of each BGP group, in GroupIntoBgps order.
///
/// Rejects (InvalidArgument) cyclic `$`-free member dependencies: two or
/// more CTPs chained only through mutually free members (no predicate
/// conditions, no parameters, no BGP binding), leaving some CTP of the chain
/// with every seed set universal. The fixed-order engine used to surface
/// this as a confusing runtime "all seed sets are universal" error; it is a
/// query bug — the CTPs reference each other's bindings in a cycle — and is
/// now diagnosed as such at Prepare. A single all-free CTP keeps its
/// existing behavior (Section 4.9 universal handling / runtime error), and
/// `allow_free_cycles` preserves the materialize_universal_sets ablation,
/// under which such queries are executable.
Result<CtpBindingAnalysis> AnalyzeCtpBindings(
    const Query& q, const std::vector<std::vector<size_t>>& bgp_groups,
    bool allow_free_cycles = false);

}  // namespace eql

#endif  // EQL_CTP_ANALYSIS_H_
