// Result-shape analysis: the notions the paper's completeness guarantees are
// stated in (Definitions 4.4-4.8), computed on concrete trees.
//
//  * Simple tree decomposition theta(t) (Def 4.6): the unique partition of a
//    result's edges into simple edge sets (pieces whose leaves are seeds and
//    whose internal nodes are not).
//  * p-simple pieces / p-piecewise-simple results (Defs 4.5, 4.7).
//  * (u,n)-rooted-merge shape (Def 4.8): a piece that is a "spider" with a
//    single (non-seed) branching node.
//
// These drive the property-test oracles: MoESP must find all 2ps results
// (Property 4) and all path results (Property 5); MoLESP all 3ps results
// (Property 7), everything for m <= 3 (Property 8), and every result whose
// pieces are rooted merges (Property 9).
#ifndef EQL_CTP_ANALYSIS_H_
#define EQL_CTP_ANALYSIS_H_

#include <vector>

#include "ctp/seed_sets.h"
#include "ctp/tree.h"
#include "graph/graph.h"

namespace eql {

/// Classification of one result tree.
struct TreeShape {
  /// theta(t): each piece is a sorted edge-id vector.
  std::vector<std::vector<EdgeId>> pieces;

  /// Maximum leaf count over pieces; the tree is p-piecewise simple exactly
  /// for p >= this value.
  int max_piece_leaves = 0;

  /// True if no tree node has more than two incident tree edges; path
  /// results are 2ps (Property 5's precondition).
  bool is_path = false;

  /// True if every piece has at most one branching (degree >= 3) node, and
  /// that node is not a seed — i.e., every piece is a (u,n)-rooted merge in
  /// the extended sense of Property 9 (paths count as u <= 2 merges).
  bool property9_applies = false;
};

/// Computes theta(t) and the shape flags. Tree `id` must have only seed
/// leaves (a CTP result); single-node trees yield an empty decomposition
/// with property9_applies = true.
TreeShape AnalyzeTree(const Graph& g, const SeedSets& seeds,
                      const TreeArena& arena, TreeId id);

/// True if the result is p-piecewise simple (Def 4.7).
inline bool IsPiecewiseSimple(const TreeShape& shape, int p) {
  return shape.max_piece_leaves <= p;
}

}  // namespace eql

#endif  // EQL_CTP_ANALYSIS_H_
