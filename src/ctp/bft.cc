#include "ctp/bft.h"

#include <algorithm>

#include "ctp/view.h"

namespace eql {

BftSearch::BftSearch(const Graph& g, const SeedSets& seeds, BftConfig config)
    : g_(g),
      seeds_(seeds),
      config_(std::move(config)),
      history_(&arena_),
      results_(&g_, &seeds_, &arena_, &config_.filters) {
  config_.filters.NormalizeLabels();
  assert(config_.view == nullptr ||
         config_.view->Matches(g_, config_.filters.allowed_labels,
                               ViewDirection::kBoth));
  trees_with_node_.resize(g_.NodeIdBound());
  history_.ReserveEdgeScratch(g_.EdgeIdBound());
  grow_nodes_.Reserve(g_.NodeIdBound());
  min_degree_.Reserve(g_.NodeIdBound());
  if (config_.on_result) {
    assert(config_.filters.top_k <= 0 &&
           "streaming hook is incompatible with TOP-k truncation");
    // See GamSearch: never mis-stream under TOP-k in Release builds.
    if (config_.filters.top_k <= 0) results_.SetOnResult(config_.on_result);
  }
}

void BftSearch::RegisterNodes(TreeId id) {
  if (node_span_.size() <= id) node_span_.resize(id + 1, {0, 0});
  node_buf_.clear();
  arena_.ForEachNodeDup(g_, id, [&](NodeId n) { node_buf_.push_back(n); });
  std::sort(node_buf_.begin(), node_buf_.end());
  node_buf_.erase(std::unique(node_buf_.begin(), node_buf_.end()), node_buf_.end());
  node_span_[id] = {static_cast<uint32_t>(node_pool_.size()),
                    static_cast<uint32_t>(node_buf_.size())};
  node_pool_.insert(node_pool_.end(), node_buf_.begin(), node_buf_.end());
}

std::pair<int, NodeId> BftSearch::SharedNodes(TreeId a, TreeId b) const {
  const auto [ao, al] = node_span_[a];
  const auto [bo, bl] = node_span_[b];
  uint32_t i = 0, j = 0;
  int count = 0;
  NodeId first = kNoNode;
  while (i < al && j < bl) {
    NodeId na = node_pool_[ao + i], nb = node_pool_[bo + j];
    if (na < nb) {
      ++i;
    } else if (na > nb) {
      ++j;
    } else {
      if (count == 0) first = na;
      if (++count >= 2) return {count, first};
      ++i;
      ++j;
    }
  }
  return {count, first};
}

void BftSearch::CheckDeadline() {
  if (++ops_ < 128) return;
  ops_ = 0;
  // Liveness tick for the eqld watchdog (GamConfig::progress contract).
  if (config_.progress != nullptr) {
    config_.progress->fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.cancel != nullptr &&
      config_.cancel->load(std::memory_order_relaxed)) {
    stop_ = true;
    stats_.cancelled = true;
    return;
  }
  if (deadline_.Expired()) {
    stop_ = true;
    stats_.timed_out = true;
    return;
  }
  // Resource governor: same cadence and wind-down as the deadline (gam.cc).
  if (config_.filters.memory_budget_bytes != 0) {
    const uint64_t bytes = MemoryBytes();
    if (bytes > stats_.memory_bytes_peak) stats_.memory_bytes_peak = bytes;
    if (bytes > config_.filters.memory_budget_bytes) {
      stop_ = true;
      stats_.memory_budget_hit = true;
    }
  }
}

void BftSearch::MinimizeAndReport(TreeId id) {
  edge_buf_.clear();
  arena_.AppendEdges(id, &edge_buf_);
  // Strip edges not on a path between seeds: repeatedly drop edges whose
  // endpoint is a non-seed leaf (Section 4.1: "removing all edges that do
  // not lead to a seed"). Degrees are computed once into the epoch-versioned
  // counter and decremented as edges are dropped.
  ++stats_.minimizations;
  min_degree_.Clear();
  for (EdgeId e : edge_buf_) {
    min_degree_.Add(g_.Source(e), 1);
    min_degree_.Add(g_.Target(e), 1);
  }
  bool changed = true;
  while (changed && !edge_buf_.empty()) {
    changed = false;
    size_t kept = 0;
    for (size_t i = 0; i < edge_buf_.size(); ++i) {
      EdgeId e = edge_buf_[i];
      NodeId s = g_.Source(e), d = g_.Target(e);
      bool drop = (min_degree_.Get(s) == 1 && seeds_.Signature(s).Empty()) ||
                  (min_degree_.Get(d) == 1 && seeds_.Signature(d).Empty());
      if (drop) {
        changed = true;
        min_degree_.Add(s, -1);
        min_degree_.Add(d, -1);
      } else {
        edge_buf_[kept++] = e;
      }
    }
    edge_buf_.resize(kept);
  }
  NodeId anchor = edge_buf_.empty() ? arena_.Get(id).root : g_.Source(edge_buf_.front());
  TreeId mid = arena_.MakeAdHocInPlace(anchor, &edge_buf_, g_, seeds_);
  if (results_.Add(mid)) {
    ++stats_.results_found;
    if (stats_.results_found == 1) stats_.first_result_ms = run_sw_.ElapsedMs();
    if (results_.stop_requested()) {  // streaming sink said stop
      stop_ = true;
      stats_.cancelled = true;
    } else if (config_.fault != nullptr &&
               config_.fault->ShouldFail(kFaultSiteEmit)) {
      // Mid-stream fault: fires after the row is out (see gam.cc).
      stop_ = true;
      stats_.fault_injected = true;
    } else if (stats_.results_found >= config_.filters.limit) {
      stop_ = true;
      stats_.budget_exhausted = true;
    }
  } else {
    ++stats_.duplicate_results;
    arena_.PopLast();
  }
}

void BftSearch::Keep(TreeId id, std::vector<TreeId>* next_gen) {
  // Fault site "alloc": the point a kept tree's storage (node spans, merge
  // partner index) grows. The tree stays in the arena; the search winds
  // down like a timeout would.
  if (config_.fault != nullptr && config_.fault->ShouldFail(kFaultSiteAlloc)) {
    stop_ = true;
    stats_.fault_injected = true;
    return;
  }
  RegisterNodes(id);
  const auto [off, len] = node_span_[id];
  for (uint32_t i = 0; i < len; ++i) {
    std::vector<TreeId>& bucket = trees_with_node_[node_pool_[off + i]];
    const size_t before = bucket.capacity();
    bucket.push_back(id);
    index_bytes_ += (bucket.capacity() - before) * sizeof(TreeId);
  }
  next_gen->push_back(id);
}

void BftSearch::TryMerges(TreeId id, std::vector<TreeId>* next_gen,
                          bool allow_recurse) {
  // Worklist instead of recursion: BFT-AM can cascade deeply.
  std::vector<TreeId> work = {id};
  while (!work.empty() && !stop_) {
    TreeId cur = work.back();
    work.pop_back();
    // cur is always a kept tree, so its pool span is registered. Iterate by
    // index: Keep() below appends to pool and partner vectors; appended
    // partners are products that already attempted their merges.
    const auto [cur_off, cur_len] = node_span_[cur];
    for (uint32_t ni = 0; ni < cur_len && !stop_; ++ni) {
      const NodeId n = node_pool_[cur_off + ni];
      const size_t num_partners = trees_with_node_[n].size();
      for (size_t pi = 0; pi < num_partners; ++pi) {
        const TreeId pid = trees_with_node_[n][pi];
        CheckDeadline();
        if (stop_) break;
        if (pid == cur) continue;
        ++stats_.merge_attempts;
        const RootedTree a = arena_.Get(cur);
        const RootedTree b = arena_.Get(pid);
        if (a.NumEdges() + b.NumEdges() > config_.filters.max_edges) continue;
        // Merge exactly when they share one node, and only at that node's
        // iteration to avoid creating the same union repeatedly.
        auto [shared, first_shared] = SharedNodes(cur, pid);
        if (shared != 1 || first_shared != n) continue;
        // Merge2 analogue: at most one node per seed set in the union; the
        // shared node's own memberships are counted once, not twice.
        const Bitset64 shared_sig = seeds_.Signature(first_shared);
        if (a.sat.AndNot(shared_sig).Intersects(b.sat.AndNot(shared_sig))) continue;
        TreeId merged = arena_.MakeMerge(cur, pid, seeds_);
        if (history_.SeenEdgeSet(merged)) {
          ++stats_.trees_pruned;
          arena_.PopLast();
          continue;
        }
        history_.Insert(merged);
        ++stats_.trees_built;
        if (stats_.trees_built >= config_.filters.max_trees) {
          stop_ = true;
          stats_.budget_exhausted = true;
        }
        if (arena_.Get(merged).sat.Contains(seeds_.RequiredMask())) {
          MinimizeAndReport(merged);
        } else {
          Keep(merged, next_gen);
          if (allow_recurse) work.push_back(merged);
        }
        if (stop_) break;
      }
    }
  }
}

Status BftSearch::Run() {
  if (seeds_.HasUniversal()) {
    return Status::Unimplemented(
        "BFT does not support universal (N) seed sets; use a GAM variant");
  }
  if (config_.filters.unidirectional) {
    return Status::Unimplemented(
        "BFT trees are rootless; the UNI filter requires a GAM variant");
  }
  run_sw_.Restart();
  deadline_ = config_.filters.timeout_ms >= 0
                  ? Deadline::AfterMs(config_.filters.timeout_ms)
                  : Deadline::Infinite();

  std::vector<TreeId> gen;
  for (NodeId n : seeds_.AllSeeds()) {
    TreeId id = arena_.MakeInit(n, seeds_);
    history_.Insert(id);
    ++stats_.init_trees;
    ++stats_.trees_built;
    if (arena_.Get(id).sat.Contains(seeds_.RequiredMask())) {
      // A node seeding every set is a one-node result (Def 2.8).
      if (results_.Add(id)) {
        ++stats_.results_found;
        if (stats_.results_found == 1) {
          stats_.first_result_ms = run_sw_.ElapsedMs();
        }
        if (results_.stop_requested()) stop_ = true;
      }
    } else {
      Keep(id, &gen);
    }
    if (stop_) {
      // stop_ here is either the sink's early stop or an injected fault in
      // Keep; only the former is a cancellation.
      if (!stats_.fault_injected) stats_.cancelled = true;
      break;
    }
  }

  while (!gen.empty() && !stop_) {
    std::vector<TreeId> next;
    for (TreeId id : gen) {
      CheckDeadline();
      if (stop_) break;
      // Every generation tree is kept, so its sorted node set sits in the
      // pool; one stamping pass makes every Grow1 probe below O(1).
      const auto [id_off, id_len] = node_span_[id];
      grow_nodes_.Clear();
      for (uint32_t i = 0; i < id_len; ++i) grow_nodes_.Insert(node_pool_[id_off + i]);
      const RootedTree t = arena_.Get(id);
      const bool use_view = config_.view != nullptr;
      for (uint32_t ni = 0; ni < id_len && !stop_; ++ni) {
        const NodeId n = node_pool_[id_off + ni];
        // The compiled view's span holds only LABEL-qualified edges, in the
        // same ascending order the filtered incidence scan would visit.
        const std::span<const IncidentEdge> edges =
            use_view ? config_.view->Edges(n) : g_.Incident(n);
        for (const IncidentEdge& ie : edges) {
          CheckDeadline();
          if (stop_) break;
          if (!use_view &&
              !config_.filters.LabelAllowed(g_.EdgeLabelId(ie.edge))) {
            continue;
          }
          if (t.NumEdges() + 1 > config_.filters.max_edges) break;
          if (grow_nodes_.Contains(ie.other)) continue;                // Grow1
          if (seeds_.Signature(ie.other).Intersects(t.sat)) continue;  // Grow2
          ++stats_.grow_attempts;
          TreeId nid = arena_.MakeGrow(id, ie.edge, ie.other, seeds_);
          if (history_.SeenEdgeSet(nid)) {
            ++stats_.trees_pruned;
            arena_.PopLast();
            continue;
          }
          history_.Insert(nid);
          ++stats_.trees_built;
          if (stats_.trees_built >= config_.filters.max_trees) {
            stop_ = true;
            stats_.budget_exhausted = true;
          }
          if (arena_.Get(nid).sat.Contains(seeds_.RequiredMask())) {
            MinimizeAndReport(nid);
          } else {
            Keep(nid, &next);
            if (config_.merge_mode != BftMergeMode::kNone) {
              TryMerges(nid, &next,
                        config_.merge_mode == BftMergeMode::kAggressive);
            }
          }
          if (stop_) break;
        }
      }
    }
    gen = std::move(next);
  }

  if (!stats_.timed_out && !stats_.budget_exhausted && !stats_.cancelled &&
      !stats_.memory_budget_hit && !stats_.fault_injected) {
    stats_.complete = true;
  }
  results_.FinalizeTopK();
  stats_.elapsed_ms = run_sw_.ElapsedMs();
  return Status::Ok();
}

}  // namespace eql
