#include "ctp/bft.h"

#include <algorithm>

namespace eql {

namespace {

/// Returns the number of shared nodes (early exit at 2) and the first shared
/// node between two sorted node sets.
std::pair<int, NodeId> SharedNodes(const std::vector<NodeId>& a,
                                   const std::vector<NodeId>& b) {
  size_t i = 0, j = 0;
  int count = 0;
  NodeId first = kNoNode;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      if (count == 0) first = a[i];
      if (++count >= 2) return {count, first};
      ++i;
      ++j;
    }
  }
  return {count, first};
}

}  // namespace

BftSearch::BftSearch(const Graph& g, const SeedSets& seeds, BftConfig config)
    : g_(g),
      seeds_(seeds),
      config_(std::move(config)),
      history_(&arena_),
      results_(&g_, &seeds_, &arena_, &config_.filters) {
  config_.filters.NormalizeLabels();
}

void BftSearch::CheckDeadline() {
  if (++ops_ < 128) return;
  ops_ = 0;
  if (deadline_.Expired()) {
    stop_ = true;
    stats_.timed_out = true;
  }
}

void BftSearch::MinimizeAndReport(TreeId id) {
  const RootedTree& t = arena_.Get(id);
  std::vector<EdgeId> edges = t.edges;
  // Strip edges not on a path between seeds: repeatedly drop edges whose
  // endpoint is a non-seed leaf (Section 4.1: "removing all edges that do
  // not lead to a seed").
  ++stats_.minimizations;
  bool changed = true;
  while (changed && !edges.empty()) {
    changed = false;
    std::unordered_map<NodeId, int> deg;
    for (EdgeId e : edges) {
      ++deg[g_.Source(e)];
      ++deg[g_.Target(e)];
    }
    std::vector<EdgeId> kept;
    kept.reserve(edges.size());
    for (EdgeId e : edges) {
      NodeId s = g_.Source(e), d = g_.Target(e);
      bool drop = (deg[s] == 1 && seeds_.Signature(s).Empty()) ||
                  (deg[d] == 1 && seeds_.Signature(d).Empty());
      if (drop) {
        changed = true;
      } else {
        kept.push_back(e);
      }
    }
    edges.swap(kept);
  }
  NodeId anchor = edges.empty() ? t.root : g_.Source(edges.front());
  TreeId mid = arena_.MakeAdHoc(anchor, std::move(edges), g_, seeds_);
  if (results_.Add(mid)) {
    ++stats_.results_found;
    if (stats_.results_found >= config_.filters.limit) {
      stop_ = true;
      stats_.budget_exhausted = true;
    }
  } else {
    ++stats_.duplicate_results;
    arena_.PopLast();
  }
}

void BftSearch::Keep(TreeId id, std::vector<TreeId>* next_gen) {
  const RootedTree& t = arena_.Get(id);
  for (NodeId n : t.nodes) trees_with_node_[n].push_back(id);
  next_gen->push_back(id);
}

void BftSearch::TryMerges(TreeId id, std::vector<TreeId>* next_gen,
                          bool allow_recurse) {
  // Worklist instead of recursion: BFT-AM can cascade deeply.
  std::vector<TreeId> work = {id};
  while (!work.empty() && !stop_) {
    TreeId cur = work.back();
    work.pop_back();
    const std::vector<NodeId> nodes_copy = arena_.Get(cur).nodes;
    for (NodeId n : nodes_copy) {
      if (stop_) break;
      auto it = trees_with_node_.find(n);
      if (it == trees_with_node_.end()) continue;
      const std::vector<TreeId> partners = it->second;  // snapshot
      for (TreeId pid : partners) {
        CheckDeadline();
        if (stop_) break;
        if (pid == cur) continue;
        ++stats_.merge_attempts;
        const RootedTree& a = arena_.Get(cur);
        const RootedTree& b = arena_.Get(pid);
        if (a.NumEdges() + b.NumEdges() > config_.filters.max_edges) continue;
        auto [shared, first_shared] = SharedNodes(a.nodes, b.nodes);
        // Merge exactly when they share one node, and only at that node's
        // iteration to avoid creating the same union repeatedly.
        if (shared != 1 || first_shared != n) continue;
        // Merge2 analogue: at most one node per seed set in the union; the
        // shared node's own memberships are counted once, not twice.
        const Bitset64 shared_sig = seeds_.Signature(first_shared);
        if (a.sat.AndNot(shared_sig).Intersects(b.sat.AndNot(shared_sig))) continue;
        TreeId merged = arena_.MakeMerge(cur, pid, seeds_);
        const RootedTree& mt = arena_.Get(merged);
        if (history_.SeenEdgeSet(mt)) {
          ++stats_.trees_pruned;
          arena_.PopLast();
          continue;
        }
        history_.Insert(merged);
        ++stats_.trees_built;
        if (stats_.trees_built >= config_.filters.max_trees) {
          stop_ = true;
          stats_.budget_exhausted = true;
        }
        if (mt.sat.Contains(seeds_.RequiredMask())) {
          MinimizeAndReport(merged);
        } else {
          Keep(merged, next_gen);
          if (allow_recurse) work.push_back(merged);
        }
        if (stop_) break;
      }
    }
  }
}

Status BftSearch::Run() {
  if (seeds_.HasUniversal()) {
    return Status::Unimplemented(
        "BFT does not support universal (N) seed sets; use a GAM variant");
  }
  if (config_.filters.unidirectional) {
    return Status::Unimplemented(
        "BFT trees are rootless; the UNI filter requires a GAM variant");
  }
  Stopwatch sw;
  deadline_ = config_.filters.timeout_ms >= 0
                  ? Deadline::AfterMs(config_.filters.timeout_ms)
                  : Deadline::Infinite();

  std::vector<TreeId> gen;
  for (NodeId n : seeds_.AllSeeds()) {
    TreeId id = arena_.MakeInit(n, seeds_);
    history_.Insert(id);
    ++stats_.init_trees;
    ++stats_.trees_built;
    if (arena_.Get(id).sat.Contains(seeds_.RequiredMask())) {
      // A node seeding every set is a one-node result (Def 2.8).
      if (results_.Add(id)) ++stats_.results_found;
    } else {
      Keep(id, &gen);
    }
  }

  while (!gen.empty() && !stop_) {
    std::vector<TreeId> next;
    for (TreeId id : gen) {
      CheckDeadline();
      if (stop_) break;
      const std::vector<NodeId> nodes_copy = arena_.Get(id).nodes;
      for (NodeId n : nodes_copy) {
        if (stop_) break;
        for (const IncidentEdge& ie : g_.Incident(n)) {
          CheckDeadline();
          if (stop_) break;
          if (!config_.filters.LabelAllowed(g_.EdgeLabelId(ie.edge))) continue;
          const RootedTree& t = arena_.Get(id);
          if (t.NumEdges() + 1 > config_.filters.max_edges) break;
          if (t.ContainsNode(ie.other)) continue;                      // Grow1
          if (seeds_.Signature(ie.other).Intersects(t.sat)) continue;  // Grow2
          ++stats_.grow_attempts;
          TreeId nid = arena_.MakeGrow(id, ie.edge, ie.other, seeds_);
          const RootedTree& nt = arena_.Get(nid);
          if (history_.SeenEdgeSet(nt)) {
            ++stats_.trees_pruned;
            arena_.PopLast();
            continue;
          }
          history_.Insert(nid);
          ++stats_.trees_built;
          if (stats_.trees_built >= config_.filters.max_trees) {
            stop_ = true;
            stats_.budget_exhausted = true;
          }
          if (nt.sat.Contains(seeds_.RequiredMask())) {
            MinimizeAndReport(nid);
          } else {
            Keep(nid, &next);
            if (config_.merge_mode != BftMergeMode::kNone) {
              TryMerges(nid, &next,
                        config_.merge_mode == BftMergeMode::kAggressive);
            }
          }
          if (stop_) break;
        }
      }
    }
    gen = std::move(next);
  }

  if (!stats_.timed_out && !stats_.budget_exhausted) stats_.complete = true;
  results_.FinalizeTopK();
  stats_.elapsed_ms = sw.ElapsedMs();
  return Status::Ok();
}

}  // namespace eql
