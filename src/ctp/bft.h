// The breadth-first CTP evaluation baselines (Sections 4.1 and 4.3).
//
// BFT views a tree as a rootless set of edges and grows each tree of the
// current generation with every edge adjacent to *any* of its nodes (subject
// to Grow1/Grow2). Trees covering all seed sets are *minimized* — edges not
// leading to a seed are repeatedly stripped — before being reported, and the
// search memorizes every tree it ever built to avoid duplicate work.
//
// BFT-M additionally merges each freshly grown tree with all compatible
// partners (trees sharing exactly one node, with disjoint sat), and BFT-AM
// applies such merging aggressively (merge results merge again). The paper's
// Merge1 condition references roots, which rootless BFT trees lack; sharing
// exactly one node is the natural rootless reading (see DESIGN.md §6).
//
// These algorithms are complete but infeasible beyond small graphs (Fig. 10);
// they double as the ground-truth oracle for the property tests. Like
// GamSearch, all per-tree scratch (node membership, shared-node counting,
// minimization degrees) lives in flat epoch-versioned arrays.
#ifndef EQL_CTP_BFT_H_
#define EQL_CTP_BFT_H_

#include <atomic>
#include <vector>

#include "ctp/filters.h"
#include "ctp/history.h"
#include "ctp/result_set.h"
#include "ctp/seed_sets.h"
#include "ctp/stats.h"
#include "ctp/tree.h"
#include "graph/graph.h"
#include "util/epoch.h"
#include "util/fault.h"
#include "util/stopwatch.h"

namespace eql {

class CompiledCtpView;

/// Merge behavior of the BFT variants (§4.3).
enum class BftMergeMode {
  kNone,       ///< plain BFT
  kMergeOnce,  ///< BFT-M: merge grown trees once, not merge results
  kAggressive  ///< BFT-AM: aggressively merge (Step 2a + 2b)
};

struct BftConfig {
  BftMergeMode merge_mode = BftMergeMode::kNone;
  CtpFilters filters;
  /// Compiled adjacency view for the LABEL filter (ctp/view.h); not owned;
  /// direction must be kBoth (BFT rejects UNI). nullptr filters inline.
  /// (The incremental score accumulator is deliberately NOT used here: BFT
  /// scores only its minimized external trees, for which the accumulator
  /// would eagerly pay an O(|T| log |T|) node census per candidate —
  /// including duplicates — while the recompute path prices survivors only,
  /// after the result set's dedup.)
  const CompiledCtpView* view = nullptr;
  /// Cooperative cancellation and streaming emission, with the same
  /// contracts as GamConfig::cancel / GamConfig::on_result (ctp/gam.h).
  const std::atomic<bool>* cancel = nullptr;
  /// Progress telemetry, with the GamConfig::progress contract (ctp/gam.h):
  /// bumped at every deadline poll; not owned, may be null.
  std::atomic<uint64_t>* progress = nullptr;
  ResultHook on_result;
  /// Deterministic fault injection (util/fault.h); not owned, may be null.
  /// BFT probes kFaultSiteAlloc when a non-result tree is kept and
  /// kFaultSiteEmit per reported result, with GamConfig::fault semantics.
  FaultInjector* fault = nullptr;
};

/// One breadth-first CTP evaluation. Single-use, like GamSearch.
class BftSearch {
 public:
  BftSearch(const Graph& g, const SeedSets& seeds, BftConfig config);

  /// Runs to completion/timeout/limit; kUnimplemented for universal seed
  /// sets or the UNI filter (rootless trees have no directionality anchor).
  Status Run();

  const CtpResultSet& results() const { return results_; }
  const SearchStats& stats() const { return stats_; }
  const TreeArena& arena() const { return arena_; }

  /// Heap bytes of everything this search allocates (capacity-based; the
  /// merge-partner index growth is tracked in O(1) by Keep). This is what
  /// filters.memory_budget_bytes bounds, polled at the deadline sites.
  size_t MemoryBytes() const {
    return arena_.MemoryBytes() + history_.MemoryBytes() +
           trees_with_node_.capacity() * sizeof(std::vector<TreeId>) +
           index_bytes_ + node_pool_.capacity() * sizeof(NodeId) +
           node_span_.capacity() * sizeof(std::pair<uint32_t, uint32_t>) +
           grow_nodes_.MemoryBytes() + min_degree_.MemoryBytes() +
           edge_buf_.capacity() * sizeof(EdgeId) +
           node_buf_.capacity() * sizeof(NodeId) + results_.MemoryBytes();
  }

 private:
  /// Reports minimize(t) (Section 4.1) if its edge set is new.
  void MinimizeAndReport(TreeId id);

  /// Registers a kept non-result tree: node index + next generation.
  void Keep(TreeId id, std::vector<TreeId>* next_gen);

  /// Attempts all merges of `id`; appends kept products to *next_gen. With
  /// kAggressive, recurses on products.
  void TryMerges(TreeId id, std::vector<TreeId>* next_gen, bool allow_recurse);

  void CheckDeadline();

  const Graph& g_;
  const SeedSets& seeds_;
  BftConfig config_;
  TreeArena arena_;
  SearchHistory history_;
  /// Registers the sorted node set of a kept tree in the flat node pool.
  void RegisterNodes(TreeId id);
  /// Counts shared nodes of two registered trees (early exit at 2) and the
  /// first shared node, by two-pointer scan over their pool spans.
  std::pair<int, NodeId> SharedNodes(TreeId a, TreeId b) const;

  /// Trees containing each node (merge partner index). Flat per-NodeId.
  std::vector<std::vector<TreeId>> trees_with_node_;
  /// Sum of trees_with_node_ inner capacities, in bytes (see MemoryBytes).
  size_t index_bytes_ = 0;

  /// Sorted node sets of *kept* trees, packed in one flat pool. BFT scans a
  /// kept tree's nodes many times (growth frontier, merge partner checks);
  /// one packed span per tree keeps those scans contiguous and allocation-
  /// free instead of re-walking the provenance DAG each time.
  std::vector<NodeId> node_pool_;
  std::vector<std::pair<uint32_t, uint32_t>> node_span_;  ///< by TreeId: {offset, len}

  // Epoch-versioned per-tree scratch (no clearing between trees).
  EpochSet grow_nodes_;     ///< node set of the generation tree being grown
  EpochCounter min_degree_; ///< minimization degrees (built once, decremented)
  std::vector<EdgeId> edge_buf_;
  std::vector<NodeId> node_buf_;

  CtpResultSet results_;
  SearchStats stats_;
  Deadline deadline_;
  Stopwatch run_sw_;  ///< restarted by Run(); prices first_result_ms
  uint64_t ops_ = 0;
  bool stop_ = false;
};

}  // namespace eql

#endif  // EQL_CTP_BFT_H_
