#include "ctp/filters.h"

// CtpFilters is header-only plain data; this translation unit exists to give
// the target a home for future out-of-line filter logic.
