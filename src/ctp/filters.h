// CTP filters (Section 2 "CTP filters", Section 4.8 "pushing filters").
//
// Filters restrict the set-based CTP result and are *pushed into* the search:
//  * UNI      — only unidirectional trees (a root with directed paths to all
//               seeds); enforced as a Grow precondition (backward expansion).
//  * LABEL    — result edges must carry one of the given labels; enforced at
//               Grow-enqueue time.
//  * MAX n    — at most n edges; enforced on Grow and Merge.
//  * SCORE/TOP— score every result, optionally keep only the k best.
//  * TIMEOUT  — per-CTP wall-clock budget T.
// We additionally support LIMIT (stop after r results; used by the QGSTP
// comparison's LIMIT 1) and a tree budget, both practical necessities the
// paper motivates with the exponential chain example (Figure 2).
#ifndef EQL_CTP_FILTERS_H_
#define EQL_CTP_FILTERS_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "ctp/score.h"
#include "graph/graph.h"

namespace eql {

/// Canonical form of a LABEL set: sorted, deduplicated. The single
/// definition every consumer shares — CtpFilters::NormalizeLabels, the
/// compiled-view cache key and the view compatibility check (ctp/view.cc)
/// all agree because they all call this.
inline std::optional<std::vector<StrId>> NormalizeLabelSet(
    std::optional<std::vector<StrId>> labels) {
  if (labels) {
    std::sort(labels->begin(), labels->end());
    labels->erase(std::unique(labels->begin(), labels->end()), labels->end());
  }
  return labels;
}

/// The filters attached to one CTP. Plain data; the search engines read it.
struct CtpFilters {
  /// UNI: only trees with a root reaching every seed via directed paths.
  bool unidirectional = false;

  /// LABEL {l1..lk}: allowed edge labels (dictionary ids), sorted; nullopt
  /// means all labels are allowed.
  std::optional<std::vector<StrId>> allowed_labels;

  /// MAX n: maximum number of edges in a result tree.
  uint32_t max_edges = UINT32_MAX;

  /// TIMEOUT: per-CTP evaluation budget in milliseconds; <0 means none.
  int64_t timeout_ms = -1;

  /// SCORE sigma [TOP k]: not owned; nullptr means no scoring requested.
  const ScoreFunction* score = nullptr;
  /// TOP k; <=0 means keep all results. Requires `score`.
  int top_k = -1;

  /// LIMIT: stop the search after this many results (UINT64_MAX = all).
  uint64_t limit = UINT64_MAX;

  /// Safety budget on kept provenances (trees); the search stops cleanly
  /// when exhausted, like a timeout. UINT64_MAX = unbounded.
  uint64_t max_trees = UINT64_MAX;

  /// Resource-governor budget on the search's own heap storage (arena,
  /// history, scratch, queues, results — see GamSearch::MemoryBytes). The
  /// search polls its accounting at the same batched sites as the TIMEOUT
  /// deadline and, on exceeding the budget, finalizes what it has exactly
  /// like a timeout does (stats.memory_budget_hit, complete=false, partial
  /// results intact). 0 = unlimited; the accounting is then never read, so
  /// governed-off runs do byte-identical work to builds without a governor.
  uint64_t memory_budget_bytes = 0;

  /// Normalizes (sorts + dedups) the label set; call after filling
  /// allowed_labels. Duplicates would be harmless for LabelAllowed but make
  /// label-set comparisons (the compiled-view cache key, ctp/view.h) miss.
  void NormalizeLabels() { allowed_labels = NormalizeLabelSet(std::move(allowed_labels)); }

  /// True if edge label `l` passes the LABEL filter. The set must be
  /// normalized — binary_search silently misses on unsorted input.
  bool LabelAllowed(StrId l) const {
    if (!allowed_labels) return true;
    assert(std::is_sorted(allowed_labels->begin(), allowed_labels->end()));
    return std::binary_search(allowed_labels->begin(), allowed_labels->end(), l);
  }
};

}  // namespace eql

#endif  // EQL_CTP_FILTERS_H_
