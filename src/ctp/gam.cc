#include "ctp/gam.h"

#include <algorithm>

namespace eql {

GamSearch::GamSearch(const Graph& g, const SeedSets& seeds, GamConfig config)
    : g_(g),
      seeds_(seeds),
      config_(std::move(config)),
      order_(config_.order != nullptr ? config_.order : &default_order_),
      history_(&arena_),
      results_(&g_, &seeds_, &arena_, &config_.filters) {
  config_.filters.NormalizeLabels();
  if (config_.queue_strategy == QueueStrategy::kSingle) queues_.resize(1);
}

bool GamSearch::IsNew(const RootedTree& t, bool* lesp_spared) const {
  if (lesp_spared != nullptr) *lesp_spared = false;
  // Plain GAM: duplicate detection at the rooted-tree level only.
  if (!config_.edge_set_pruning) return !history_.SeenRooted(t);
  // Init trees all share the empty edge set; Def 4.3 prunes only non-empty
  // edge sets, so they are deduplicated at the rooted level.
  if (t.edges.empty()) return !history_.SeenRooted(t);
  // Mo trees are deliberately injected duplicates of their base's edge set
  // (§4.5); only identical re-rootings are redundant.
  if (t.kind == ProvKind::kMo) return !history_.SeenRooted(t);
  if (!history_.SeenEdgeSet(t)) return true;
  if (config_.lesp_spare) {
    // Alg. 4 lines 4-8: nodes already connected to >= 3 seed sets, with
    // enough graph edges for >= 3 rooted paths to meet, escape ESP.
    auto it = seed_sig_.find(t.root);
    if (it != seed_sig_.end() && it->second.Count() >= 3 && g_.Degree(t.root) >= 3) {
      if (!history_.SeenRooted(t)) {
        if (lesp_spared != nullptr) *lesp_spared = true;
        return true;
      }
    }
  }
  return false;
}

bool GamSearch::IsResult(const RootedTree& t) const {
  return t.sat.Contains(seeds_.RequiredMask());
}

void GamSearch::EmitResult(TreeId id) {
  if (!results_.Add(id)) {
    ++stats_.duplicate_results;
    return;
  }
  ++stats_.results_found;
  if (stats_.results_found >= config_.filters.limit) {
    stop_ = true;
    stats_.budget_exhausted = true;
  }
}

void GamSearch::UpdateSeedSignature(const RootedTree& t) {
  if (!t.is_rooted_path || t.path_seed == kNoNode) return;
  seed_sig_[t.root] |= seeds_.Signature(t.path_seed);
}

void GamSearch::CheckDeadline() {
  if (++ops_since_deadline_check_ < 128) return;
  ops_since_deadline_check_ = 0;
  if (deadline_.Expired()) {
    stop_ = true;
    stats_.timed_out = true;
  }
}

size_t GamSearch::QueueIndexFor(const RootedTree& t) {
  if (config_.queue_strategy == QueueStrategy::kSingle) return 0;
  auto [it, inserted] = queue_of_mask_.try_emplace(t.sat.bits(), queues_.size());
  if (inserted) queues_.emplace_back();
  return it->second;
}

size_t GamSearch::PickQueue() const {
  size_t best = SIZE_MAX;
  size_t best_size = SIZE_MAX;
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].empty()) continue;
    if (queues_[i].size() < best_size) {
      best = i;
      best_size = queues_[i].size();
    }
  }
  return best;
}

void GamSearch::EnqueueGrows(TreeId id) {
  const RootedTree& t = arena_.Get(id);
  if (t.NumEdges() + 1 > config_.filters.max_edges) return;  // MAX filter
  const size_t qi = QueueIndexFor(t);
  for (const IncidentEdge& ie : g_.Incident(t.root)) {
    // UNI: backward expansion — only traverse edges that *enter* the current
    // root, preserving "root reaches every tree node along directed edges".
    if (config_.filters.unidirectional && ie.forward) continue;
    if (!config_.filters.LabelAllowed(g_.EdgeLabelId(ie.edge))) continue;
    if (t.ContainsNode(ie.other)) continue;                          // Grow1
    if (seeds_.Signature(ie.other).Intersects(t.sat)) continue;      // Grow2
    queues_[qi].push(QueueEntry{order_->Priority(g_, seeds_, t, ie.edge),
                                order_->TieBreak(), seq_++, id, ie.edge, ie.other});
    ++stats_.queue_pushed;
  }
}

void GamSearch::ProcessNewTree(TreeId id) {
  const RootedTree& t = arena_.Get(id);
  history_.Insert(id);
  ++stats_.trees_built;
  if (stats_.trees_built >= config_.filters.max_trees) {
    stop_ = true;
    stats_.budget_exhausted = true;
  }

  if (IsResult(t)) {
    EmitResult(id);
    // Algorithm 2: results are reported and neither merged nor grown. With a
    // universal (N) seed set this would end the search after the trivial
    // connections, since *every* covering tree is a result; there the tree
    // keeps participating (each larger tree is a further result whose root
    // matches N), bounded by MAX/LIMIT/timeout as Section 4.9 implies.
    if (!seeds_.HasUniversal()) return;
    if (stop_) return;
  }

  // recordForMerging (Algorithm 3).
  trees_rooted_in_[t.root].push_back(id);
  pending_merge_.push_back(id);

  // Mo injection (§4.5): when this tree covers strictly more seed sets than
  // each of its children, add copies re-rooted at every seed node it spans.
  if (config_.mo_trees && !stop_) {
    bool seed_gain = false;
    switch (t.kind) {
      case ProvKind::kInit:
      case ProvKind::kMo:
      case ProvKind::kExternal:
        break;
      case ProvKind::kGrow:
        seed_gain = t.sat.Count() > arena_.Get(t.child1).sat.Count();
        break;
      case ProvKind::kMerge:
        seed_gain = t.sat.Count() > arena_.Get(t.child1).sat.Count() &&
                    t.sat.Count() > arena_.Get(t.child2).sat.Count();
        break;
    }
    if (seed_gain) {
      // t.nodes is copied because MakeMo may grow the arena while iterating.
      const std::vector<NodeId> nodes_copy = t.nodes;
      const NodeId base_root = t.root;
      for (NodeId n : nodes_copy) {
        if (n == base_root || seeds_.Signature(n).Empty()) continue;
        // Under UNI every kept tree must keep the "root reaches all nodes
        // along directed edges" invariant; re-rooting may break it.
        if (config_.filters.unidirectional &&
            !RootReachesAllDirected(g_, arena_.Get(id), n)) {
          continue;
        }
        TreeId mo_id = arena_.MakeMo(id, n);
        if (!history_.SeenRooted(arena_.Get(mo_id))) {
          history_.Insert(mo_id);
          ++stats_.trees_built;
          ++stats_.mo_trees;
          trees_rooted_in_[n].push_back(mo_id);
          pending_merge_.push_back(mo_id);
        } else {
          arena_.PopLast();
        }
      }
    }
  }

  // Grow is disabled on Mo-tainted trees (§4.5).
  if (!arena_.Get(id).mo_tainted && !stop_) EnqueueGrows(id);
}

void GamSearch::DrainMerges() {
  while (!pending_merge_.empty() && !stop_) {
    CheckDeadline();
    if (stop_) break;
    TreeId id = pending_merge_.back();
    pending_merge_.pop_back();
    const NodeId root = arena_.Get(id).root;
    // Merge2: the merged tree may contain at most one node per seed set. The
    // shared root's own memberships appear in both sats and must be excluded
    // from the disjointness test (the paper's Fig. 3 trace merges A-1-2-B
    // with B-3-C at the seed root B).
    const Bitset64 root_sig = seeds_.Signature(root);
    // Snapshot: partners appended during the loop get their own pending pass
    // (and would see `id` in trees_rooted_in_), so no pair is lost.
    const std::vector<TreeId> partners = trees_rooted_in_[root];
    for (TreeId pid : partners) {
      if (pid == id) continue;
      CheckDeadline();
      if (stop_) break;
      ++stats_.merge_attempts;
      const RootedTree& a = arena_.Get(id);
      const RootedTree& b = arena_.Get(pid);
      if (a.sat.AndNot(root_sig).Intersects(b.sat.AndNot(root_sig))) continue;
      if (a.NumEdges() + b.NumEdges() > config_.filters.max_edges) continue;
      if (a.edges.empty() || b.edges.empty()) continue;  // Init merges are no-ops
      if (!a.SharesOnlyRootWith(b, root)) continue;      // Merge1
      TreeId mid = arena_.MakeMerge(id, pid, seeds_);
      bool spared = false;
      if (IsNew(arena_.Get(mid), &spared)) {
        if (spared) ++stats_.lesp_spared;
        ProcessNewTree(mid);
      } else {
        ++stats_.trees_pruned;
        arena_.PopLast();
      }
    }
  }
  if (stop_) pending_merge_.clear();
}

Status GamSearch::Run() {
  Stopwatch sw;
  deadline_ = config_.filters.timeout_ms >= 0
                  ? Deadline::AfterMs(config_.filters.timeout_ms)
                  : Deadline::Infinite();

  // ss_n initialization (§4.6): seeds start with their own membership bits.
  for (NodeId n : seeds_.AllSeeds()) seed_sig_[n] = seeds_.Signature(n);

  // Init trees for every non-universal seed set (§4.9: universal sets are
  // never instantiated; exploration starts from the others).
  for (int i = 0; i < seeds_.num_sets() && !stop_; ++i) {
    if (seeds_.IsUniversal(i)) continue;
    for (NodeId n : seeds_.Set(i)) {
      TreeId id = arena_.MakeInit(n, seeds_);
      if (IsNew(arena_.Get(id), nullptr)) {
        ++stats_.init_trees;
        ProcessNewTree(id);
      } else {
        // The same node seeds several sets; one Init tree suffices (its sat
        // carries all its memberships).
        arena_.PopLast();
      }
      if (stop_) break;
    }
  }
  DrainMerges();

  while (!stop_) {
    CheckDeadline();
    if (stop_) break;
    size_t qi = PickQueue();
    if (qi == SIZE_MAX) break;  // search space exhausted
    QueueEntry e = queues_[qi].top();
    queues_[qi].pop();
    ++stats_.grow_attempts;
    TreeId nid = arena_.MakeGrow(e.tree, e.edge, e.new_root, seeds_);
    const RootedTree& t = arena_.Get(nid);
    // Alg. 1 line 10: ss maintenance happens for every Grow product, kept or
    // pruned.
    UpdateSeedSignature(t);
    bool spared = false;
    if (IsNew(t, &spared)) {
      if (spared) ++stats_.lesp_spared;
      ProcessNewTree(nid);
      DrainMerges();
    } else {
      ++stats_.trees_pruned;
      arena_.PopLast();
    }
  }

  if (!stats_.timed_out && !stats_.budget_exhausted) stats_.complete = true;
  results_.FinalizeTopK();
  stats_.elapsed_ms = sw.ElapsedMs();
  return Status::Ok();
}

}  // namespace eql
