#include "ctp/gam.h"

#include <algorithm>

#include "ctp/view.h"

namespace eql {

void SearchMemory::PrepareFor(const Graph& g) {
  arena.Clear();
  history.Clear();
  history.ReserveEdgeScratch(g.EdgeIdBound());
  trees_rooted_in.Reserve(g.NodeIdBound());
  trees_rooted_in.Clear();
  seed_sig.Reserve(g.NodeIdBound());
  seed_sig.Clear();
  grow_nodes.Reserve(g.NodeIdBound());
  merge_nodes.Reserve(g.NodeIdBound());
}

GamSearch::GamSearch(const Graph& g, const SeedSets& seeds, GamConfig config,
                     SearchMemory* memory)
    : g_(g),
      seeds_(seeds),
      config_(std::move(config)),
      order_(config_.order != nullptr ? config_.order : &default_order_),
      owned_memory_(memory == nullptr ? std::make_unique<SearchMemory>()
                                      : nullptr),
      mem_(memory != nullptr ? memory : owned_memory_.get()),
      arena_(mem_->arena),
      history_(mem_->history),
      trees_rooted_in_(mem_->trees_rooted_in),
      seed_sig_(mem_->seed_sig),
      grow_nodes_(mem_->grow_nodes),
      merge_nodes_(mem_->merge_nodes),
      results_(&g_, &seeds_, &arena_, &config_.filters) {
  config_.filters.NormalizeLabels();
  assert(config_.view == nullptr ||
         config_.view->Matches(
             g_, config_.filters.allowed_labels,
             CompiledCtpView::DirectionFor(config_.filters.unidirectional)));
  mem_->PrepareFor(g_);
  // Incremental decomposable scoring + TOP-k bound pruning (gam.h). The
  // accumulator attaches after PrepareFor — Clear() detaches the previous
  // search's. Pruning additionally needs an anti-monotone sigma, a k, and
  // no LIMIT or tree budget: a truncated search reports the first results
  // (LIMIT) or the first trees (max_trees) found, and pruning redirects
  // which those are — only an untruncated search provably keeps its TOP-k.
  const ScoreFunction* sigma = config_.filters.score;
  if (sigma != nullptr && sigma->IsEdgeAdditive() && config_.incremental_scores) {
    decomposed_score_ = sigma;
    arena_.SetScoreAccumulator(&g_, sigma);
    const int prune_k =
        config_.bound_prune_k > 0 ? config_.bound_prune_k : config_.filters.top_k;
    if (config_.bound_pruning && sigma->HasNonPositiveDeltas() && prune_k > 0 &&
        config_.filters.limit == UINT64_MAX &&
        config_.filters.max_trees == UINT64_MAX) {
      prune_active_ = true;
      results_.TrackKthBest(prune_k);
    }
  }
  if (config_.queue_strategy == QueueStrategy::kSingle) {
    queues_.resize(1);
  } else if (seeds_.num_sets() <= kDenseMaskBits) {
    queue_of_mask_dense_.assign(1ULL << seeds_.num_sets(), UINT32_MAX);
  }
  if (config_.on_result) {
    assert(config_.filters.top_k <= 0 &&
           "streaming hook is incompatible with TOP-k truncation");
    // Release builds must not mis-stream: FinalizeTopK reorders after the
    // fact, so under TOP-k the hook is dropped (results stay correct, rows
    // simply don't stream) rather than emitting rows the truncation will
    // disown.
    if (config_.filters.top_k <= 0) results_.SetOnResult(config_.on_result);
  }
}

/// True when chunking excludes node `n` from the search: `n` belongs to the
/// chunked seed set but not to this chunk (see GamConfig::chunk_set).
bool GamSearch::ChunkExcludes(NodeId n) const {
  return config_.chunk_set >= 0 && config_.chunk_nodes != nullptr &&
         seeds_.Signature(n).Test(config_.chunk_set) &&
         !std::binary_search(config_.chunk_nodes->begin(),
                             config_.chunk_nodes->end(), n);
}

bool GamSearch::IsNew(TreeId id, bool* lesp_spared) const {
  if (lesp_spared != nullptr) *lesp_spared = false;
  const RootedTree& t = arena_.Get(id);
  // Plain GAM: duplicate detection at the rooted-tree level only.
  if (!config_.edge_set_pruning) return !history_.SeenRooted(id);
  // Init trees all share the empty edge set; Def 4.3 prunes only non-empty
  // edge sets, so they are deduplicated at the rooted level.
  if (t.num_edges == 0) return !history_.SeenRooted(id);
  // Mo trees are deliberately injected duplicates of their base's edge set
  // (§4.5); only identical re-rootings are redundant.
  if (t.kind == ProvKind::kMo) return !history_.SeenRooted(id);
  if (!history_.SeenEdgeSet(id)) return true;
  if (config_.lesp_spare) {
    // Alg. 4 lines 4-8: nodes already connected to >= 3 seed sets, with
    // enough graph edges for >= 3 rooted paths to meet, escape ESP.
    if (seed_sig_.Get(t.root).Count() >= 3 && g_.Degree(t.root) >= 3) {
      if (!history_.SeenRooted(id)) {
        if (lesp_spared != nullptr) *lesp_spared = true;
        return true;
      }
    }
  }
  return false;
}

bool GamSearch::IsResult(const RootedTree& t) const {
  return t.sat.Contains(seeds_.RequiredMask());
}

void GamSearch::EmitResult(TreeId id) {
  if (!results_.Add(id)) {
    ++stats_.duplicate_results;
    return;
  }
  ++stats_.results_found;
  if (stats_.results_found == 1) stats_.first_result_ms = run_sw_.ElapsedMs();
  if (results_.stop_requested()) {  // streaming sink said stop
    stop_ = true;
    stats_.cancelled = true;
    return;
  }
  // Fault site "emit": fires *after* the result (and any streamed row) is
  // out — the mid-stream failure shape: arm with trigger n to fault right
  // after the n-th row reached the sink.
  if (config_.fault != nullptr && config_.fault->ShouldFail(kFaultSiteEmit)) {
    stop_ = true;
    stats_.fault_injected = true;
    return;
  }
  if (stats_.results_found >= config_.filters.limit) {
    stop_ = true;
    stats_.budget_exhausted = true;
  }
}

void GamSearch::UpdateSeedSignature(const RootedTree& t) {
  if (!t.is_rooted_path || t.path_seed == kNoNode) return;
  seed_sig_.Mut(t.root) |= seeds_.Signature(t.path_seed);
}

void GamSearch::CheckDeadline() {
  if (++ops_since_deadline_check_ < 128) return;
  ops_since_deadline_check_ = 0;
  // Liveness tick: a poll that keeps firing means the search is advancing,
  // even if slowly — the eqld watchdog reads it before cancelling.
  if (config_.progress != nullptr) {
    config_.progress->fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.cancel != nullptr &&
      config_.cancel->load(std::memory_order_relaxed)) {
    stop_ = true;
    stats_.cancelled = true;
    return;
  }
  if (deadline_.Expired()) {
    stop_ = true;
    stats_.timed_out = true;
    return;
  }
  // Resource governor: same batched cadence as the deadline, same graceful
  // wind-down — the caller still gets the finalized partial result.
  if (config_.filters.memory_budget_bytes != 0) {
    const uint64_t bytes = MemoryBytes();
    if (bytes > stats_.memory_bytes_peak) stats_.memory_bytes_peak = bytes;
    if (bytes > config_.filters.memory_budget_bytes) {
      stop_ = true;
      stats_.memory_budget_hit = true;
    }
  }
}

size_t GamSearch::QueueIndexFor(const RootedTree& t) {
  if (config_.queue_strategy == QueueStrategy::kSingle) return 0;
  const uint64_t mask = t.sat.bits();
  uint32_t* slot;
  if (!queue_of_mask_dense_.empty()) {
    slot = &queue_of_mask_dense_[mask];
  } else {
    slot = &queue_of_mask_sparse_.try_emplace(mask, UINT32_MAX).first->second;
  }
  if (*slot == UINT32_MAX) {
    *slot = static_cast<uint32_t>(queues_.size());
    queues_.emplace_back();
  }
  return *slot;
}

void GamSearch::NoteQueueSize(size_t qi) {
  if (config_.queue_strategy == QueueStrategy::kSingle) return;
  if (!queues_[qi].empty()) queue_size_heap_.emplace(queues_[qi].size(), qi);
}

size_t GamSearch::PickQueue() {
  if (config_.queue_strategy == QueueStrategy::kSingle) {
    return queues_[0].empty() ? SIZE_MAX : 0;
  }
  // Lazy deletion: NoteQueueSize records an exact entry at *every* size
  // change, so each nonempty queue always has one entry carrying its current
  // size. Stale entries are simply discarded (never re-pushed — a re-push
  // here would duplicate entries 1:1 with queue pushes and turn every size
  // change into an O(cohort) sweep). The first exact top is therefore the
  // global fewest-entries queue, at amortized O(log) per operation.
  while (!queue_size_heap_.empty()) {
    auto [sz, qi] = queue_size_heap_.top();
    if (queues_[qi].size() == sz) return static_cast<size_t>(qi);
    queue_size_heap_.pop();
  }
  return SIZE_MAX;
}

void GamSearch::EnqueueGrows(TreeId id) {
  const RootedTree& t = arena_.Get(id);
  if (t.NumEdges() + 1 > config_.filters.max_edges) return;  // MAX filter
  const size_t qi = QueueIndexFor(t);
  // One O(|T|) stamping pass makes every Grow1 membership probe O(1), and
  // edge-independent orders (all but RandomOrder) price the tree once
  // instead of once per incident edge.
  arena_.StampNodes(g_, id, &grow_nodes_);
  const bool shared_priority = order_->EdgeIndependent();
  double priority = 0;
  bool priority_computed = false;
  bool pushed_any = false;
  const NodeId root = t.root;
  // A compiled view serves the root's pre-qualified edges as one dense span
  // (backward-only under UNI) with no per-edge predicate work; the fallback
  // filters the full incidence list inline. Both yield the same entry
  // sequence, so the two paths do byte-identical search work.
  const bool use_view = config_.view != nullptr;
  const std::span<const IncidentEdge> edges =
      use_view ? config_.view->Edges(root) : g_.Incident(root);
  for (const IncidentEdge& ie : edges) {
    if (!use_view) {
      // UNI: backward expansion — only traverse edges that *enter* the
      // current root, preserving "root reaches every tree node along
      // directed edges".
      if (config_.filters.unidirectional && ie.forward) continue;
      if (!config_.filters.LabelAllowed(g_.EdgeLabelId(ie.edge))) continue;
    }
    // Chunked runs: members of the chunked set outside this chunk are not
    // part of this chunk's graph slice at all (see GamConfig::chunk_set).
    if (ChunkExcludes(ie.other)) continue;
    if (grow_nodes_.Contains(ie.other)) continue;                    // Grow1
    if (seeds_.Signature(ie.other).Intersects(t.sat)) continue;      // Grow2
    if (!shared_priority || !priority_computed) {
      priority = order_->Priority(g_, seeds_, arena_, id, ie.edge);
      priority_computed = true;
    }
    queues_[qi].push(QueueEntry{priority, order_->TieBreak(), seq_++, id,
                                ie.edge, ie.other});
    ++stats_.queue_pushed;
    ++queue_entries_;
    pushed_any = true;
  }
  // One exact heap entry after the burst keeps the PickQueue invariant;
  // per-push entries would all be stale except the last.
  if (pushed_any) NoteQueueSize(qi);
}

void GamSearch::ProcessNewTree(TreeId id) {
  // Fault site "alloc": the moment a tree is kept (arena + history growth).
  // Firing here models an allocation failure — the search winds down with
  // whatever it has, exactly like a timeout at this point would.
  if (config_.fault != nullptr && config_.fault->ShouldFail(kFaultSiteAlloc)) {
    stop_ = true;
    stats_.fault_injected = true;
    return;
  }
  // Copy the record: Mo injection below may grow the arena and invalidate
  // references (trees are O(64) bytes).
  const RootedTree t = arena_.Get(id);
  history_.Insert(id);
  ++stats_.trees_built;
  if (stats_.trees_built >= config_.filters.max_trees) {
    stop_ = true;
    stats_.budget_exhausted = true;
  }

  // TOP-k bound pruning: sigma never increases along Grow/Merge (gam.h), so
  // neither this tree's own score (score_acc + a non-positive root term)
  // nor any descendant's can beat the k-th best — drop it before result
  // emission, merge registration, Mo injection, and growth. It stays in the
  // history, so re-derivations are rejected cheaply. Rooted paths are
  // exempt here and at the grow-pop check: their grow chains maintain ss_n
  // (Alg. 1 l.10), and LESP's spare decisions — hence which results a
  // complete search finds — depend on every ss bit; keeping the path spine
  // un-pruned leaves the ss trajectory, and with it the explored
  // above-threshold space, untouched. (Their *merges* may still be pruned
  // in DrainMerges — merge products are never rooted paths and never feed
  // ss_n.)
  if (!t.is_rooted_path && ScorePrunable(t.score_acc)) {
    ++stats_.bound_pruned;
    return;
  }

  if (IsResult(t)) {
    EmitResult(id);
    // Algorithm 2: results are reported and neither merged nor grown. With a
    // universal (N) seed set this would end the search after the trivial
    // connections, since *every* covering tree is a result; there the tree
    // keeps participating (each larger tree is a further result whose root
    // matches N), bounded by MAX/LIMIT/timeout as Section 4.9 implies.
    if (!seeds_.HasUniversal()) return;
    if (stop_) return;
  }

  // recordForMerging (Algorithm 3). Append (not Mut().push_back) keeps the
  // bucket growth inside the governor's byte accounting.
  trees_rooted_in_.Append(t.root, id);
  pending_merge_.push_back(id);

  // Mo injection (§4.5): when this tree covers strictly more seed sets than
  // each of its children, add copies re-rooted at every seed node it spans.
  if (config_.mo_trees && !stop_) {
    bool seed_gain = false;
    switch (t.kind) {
      case ProvKind::kInit:
      case ProvKind::kMo:
      case ProvKind::kExternal:
        break;
      case ProvKind::kGrow:
        seed_gain = t.sat.Count() > arena_.Get(t.child1).sat.Count();
        break;
      case ProvKind::kMerge:
        seed_gain = t.sat.Count() > arena_.Get(t.child1).sat.Count() &&
                    t.sat.Count() > arena_.Get(t.child2).sat.Count();
        break;
    }
    if (seed_gain) {
      // Materialized once; MakeMo grows the arena while we iterate, and
      // under UNI the same edge list serves every candidate root below.
      const std::vector<NodeId> nodes = arena_.NodeSet(g_, id);
      std::vector<EdgeId> edges;
      if (config_.filters.unidirectional) {
        edges.reserve(t.num_edges);
        arena_.AppendEdges(id, &edges);
      }
      for (NodeId n : nodes) {
        if (n == t.root || seeds_.Signature(n).Empty()) continue;
        // Under UNI every kept tree must keep the "root reaches all nodes
        // along directed edges" invariant; re-rooting may break it.
        if (config_.filters.unidirectional &&
            !RootReachesAllDirected(g_, edges, t.NumNodes(), n)) {
          continue;
        }
        TreeId mo_id = arena_.MakeMo(id, n);
        if (!history_.SeenRooted(mo_id)) {
          history_.Insert(mo_id);
          ++stats_.trees_built;
          ++stats_.mo_trees;
          trees_rooted_in_.Append(n, mo_id);
          pending_merge_.push_back(mo_id);
        } else {
          arena_.PopLast();
        }
      }
    }
  }

  // Grow is disabled on Mo-tainted trees (§4.5).
  if (!t.mo_tainted && !stop_) EnqueueGrows(id);
}

void GamSearch::DrainMerges() {
  while (!pending_merge_.empty() && !stop_) {
    CheckDeadline();
    if (stop_) break;
    TreeId id = pending_merge_.back();
    pending_merge_.pop_back();
    const NodeId root = arena_.Get(id).root;
    // The k-th best may have improved since this subject was queued.
    if (ScorePrunable(arena_.Get(id).score_acc)) {
      ++stats_.bound_pruned;
      continue;
    }
    // Merge products score a.score_acc + b.score_acc - delta(root); hoist
    // the root's delta so the per-partner bound test is pure arithmetic.
    const double root_delta =
        prune_active_ ? decomposed_score_->NodeDelta(g_, root) : 0;
    // Merge2: the merged tree may contain at most one node per seed set. The
    // shared root's own memberships appear in both sats and must be excluded
    // from the disjointness test (the paper's Fig. 3 trace merges A-1-2-B
    // with B-3-C at the seed root B).
    const Bitset64 root_sig = seeds_.Signature(root);
    // One stamping pass for the merge subject; each partner's Merge1 test is
    // then a walk of the partner only.
    arena_.StampNodes(g_, id, &merge_nodes_);
    // Iterate by index up to the pre-loop size: partners appended during the
    // loop get their own pending pass (and would see `id` in
    // trees_rooted_in_), so no pair is lost. The vector may reallocate, so
    // re-index on every access.
    const size_t num_partners = trees_rooted_in_.Mut(root).size();
    for (size_t pi = 0; pi < num_partners; ++pi) {
      const TreeId pid = trees_rooted_in_.Mut(root)[pi];
      if (pid == id) continue;
      CheckDeadline();
      if (stop_) break;
      ++stats_.merge_attempts;
      // Copies: ProcessNewTree below grows the arena.
      const RootedTree a = arena_.Get(id);
      const RootedTree b = arena_.Get(pid);
      if (a.sat.AndNot(root_sig).Intersects(b.sat.AndNot(root_sig))) continue;
      if (a.NumEdges() + b.NumEdges() > config_.filters.max_edges) continue;
      if (a.num_edges == 0 || b.num_edges == 0) continue;  // Init merges are no-ops
      if (ScorePrunable(a.score_acc + b.score_acc - root_delta)) {
        ++stats_.bound_pruned;
        continue;
      }
      if (!arena_.SharesOnlyNode(g_, pid, merge_nodes_, root)) continue;  // Merge1
      TreeId mid = arena_.MakeMerge(id, pid, seeds_);
      bool spared = false;
      if (IsNew(mid, &spared)) {
        if (spared) ++stats_.lesp_spared;
        ProcessNewTree(mid);
      } else {
        ++stats_.trees_pruned;
        arena_.PopLast();
      }
    }
  }
  if (stop_) pending_merge_.clear();
}

Status GamSearch::Run() {
  run_sw_.Restart();
  deadline_ = config_.filters.timeout_ms >= 0
                  ? Deadline::AfterMs(config_.filters.timeout_ms)
                  : Deadline::Infinite();

  // ss_n initialization (§4.6): seeds start with their own membership bits.
  for (NodeId n : seeds_.AllSeeds()) seed_sig_.Mut(n) = seeds_.Signature(n);

  // Init trees for every non-universal seed set (§4.9: universal sets are
  // never instantiated; exploration starts from the others). Chunked runs
  // (GamConfig::chunk_set) instantiate only the chunk's slice of the chunked
  // set, and skip excluded nodes even when another set also contains them.
  for (int i = 0; i < seeds_.num_sets() && !stop_; ++i) {
    if (seeds_.IsUniversal(i)) continue;
    const std::vector<NodeId>& init_nodes =
        (i == config_.chunk_set && config_.chunk_nodes != nullptr)
            ? *config_.chunk_nodes
            : seeds_.Set(i);
    for (NodeId n : init_nodes) {
      if (i != config_.chunk_set && ChunkExcludes(n)) continue;
      TreeId id = arena_.MakeInit(n, seeds_);
      if (IsNew(id, nullptr)) {
        ++stats_.init_trees;
        ProcessNewTree(id);
      } else {
        // The same node seeds several sets; one Init tree suffices (its sat
        // carries all its memberships).
        arena_.PopLast();
      }
      if (stop_) break;
    }
  }
  DrainMerges();

  while (!stop_) {
    CheckDeadline();
    if (stop_) break;
    size_t qi = PickQueue();
    if (qi == SIZE_MAX) break;  // search space exhausted
    // Fault site "queue-pop": one probe per main-loop pop.
    if (config_.fault != nullptr &&
        config_.fault->ShouldFail(kFaultSiteQueuePop)) {
      stats_.fault_injected = true;
      break;
    }
    QueueEntry e = queues_[qi].top();
    queues_[qi].pop();
    --queue_entries_;
    NoteQueueSize(qi);
    // The k-th best may have improved since this opportunity was pushed;
    // every product of the base tree is bounded by its partial sum. Rooted-
    // path bases are exempt (their products can extend the ss-maintaining
    // path spine — see ProcessNewTree); other bases only yield
    // non-rooted-path products, whose ss update is a no-op.
    {
      const RootedTree& base = arena_.Get(e.tree);
      if (!base.is_rooted_path && ScorePrunable(base.score_acc)) {
        ++stats_.bound_pruned;
        continue;
      }
    }
    ++stats_.grow_attempts;
    TreeId nid = arena_.MakeGrow(e.tree, e.edge, e.new_root, seeds_);
    // Alg. 1 line 10: ss maintenance happens for every Grow product, kept or
    // pruned.
    UpdateSeedSignature(arena_.Get(nid));
    bool spared = false;
    if (IsNew(nid, &spared)) {
      if (spared) ++stats_.lesp_spared;
      ProcessNewTree(nid);
      DrainMerges();
    } else {
      ++stats_.trees_pruned;
      arena_.PopLast();
    }
  }

  if (!stats_.timed_out && !stats_.budget_exhausted && !stats_.cancelled &&
      !stats_.memory_budget_hit && !stats_.fault_injected) {
    stats_.complete = true;
  }
  results_.FinalizeTopK();
  stats_.elapsed_ms = run_sw_.ElapsedMs();
  return Status::Ok();
}

}  // namespace eql
