// The GAM family of CTP evaluation algorithms (Sections 4.2, 4.4-4.7).
//
// One engine implements five published algorithms as configuration deltas,
// mirroring how the paper layers them:
//
//   GAM     (§4.2)  grow-from-root + aggressive merge; duplicate detection at
//                   the *rooted tree* level ("GAM discards all but the first
//                   provenance built for a given rooted tree").
//   ESP     (§4.4)  + edge-set pruning: only the first provenance per edge
//                   set survives (Def 4.3). Fast but incomplete in general.
//   MoESP   (§4.5)  + Mo trees: whenever a Grow/Merge gains seeds, re-rooted
//                   copies at every seed node are injected; Grow is disabled
//                   on Mo-tainted trees. Complete for 2-piecewise-simple
//                   results (Property 4), hence for all path results.
//   LESP    (§4.6)  + limited pruning: per-node seed signatures ss_n; a tree
//                   rooted at n with popcount(ss_n) >= 3 and degree(n) >= 3
//                   escapes edge-set pruning (checked at rooted level
//                   instead, Alg. 4). Guarantees (u,n)-rooted merges.
//   MoLESP  (§4.7)  Mo trees + limited pruning; complete for m <= 3
//                   (Property 8) and for all results whose simple tree
//                   decomposition consists of rooted merges (Property 9).
//
// The engine also implements the Section 4.9 strategies for very large and
// universal (N) seed sets: per-sat-subset priority queues popped
// smallest-first, and suppression of Init trees for universal sets.
//
// Memory discipline: all per-tree scratch state lives in flat per-NodeId /
// per-EdgeId arrays with epoch versioning (util/epoch.h) — nothing is
// cleared or reallocated between trees — and trees themselves are O(1)
// parent-pointer records (ctp/tree.h), so the grow/dedup inner loop does no
// heap allocation.
#ifndef EQL_CTP_GAM_H_
#define EQL_CTP_GAM_H_

#include <atomic>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ctp/filters.h"
#include "ctp/history.h"
#include "ctp/result_set.h"
#include "ctp/search_order.h"
#include "ctp/seed_sets.h"
#include "ctp/stats.h"
#include "ctp/tree.h"
#include "graph/graph.h"
#include "util/epoch.h"
#include "util/fault.h"
#include "util/stopwatch.h"

namespace eql {

class CompiledCtpView;

/// How Grow opportunities are distributed over priority queues (§4.9).
enum class QueueStrategy {
  kSingle,        ///< one global queue (the default)
  kPerSatSubset,  ///< one queue per sat(t) mask; pop from the fewest-entries
                  ///< queue, focusing exploration near small seed sets
};

/// Configuration selecting a GAM-family algorithm and its environment.
struct GamConfig {
  bool edge_set_pruning = false;  ///< ESP (Def 4.3)
  bool mo_trees = false;          ///< MoESP (§4.5)
  bool lesp_spare = false;        ///< LESP's limited pruning (§4.6)
  QueueStrategy queue_strategy = QueueStrategy::kSingle;
  CtpFilters filters;
  /// Exploration order; not owned; nullptr selects SmallestFirstOrder.
  SearchOrder* order = nullptr;

  /// Seed-set chunking for the parallel executor (ctp/parallel.h). When
  /// `chunk_set >= 0`, Init trees for that seed set come only from
  /// `chunk_nodes` (sorted ascending), and the set's *other* members are
  /// excluded from the search entirely — Grow never enters them and Init
  /// skips them even when they also belong to another set. The run is then
  /// exactly the CTP with S_chunk_set := chunk_nodes evaluated on the graph
  /// minus the excluded nodes, so chunk result sets are disjoint slices of
  /// the full CTP's result set (each result contains exactly one S_chunk_set
  /// node, Def 2.8 (ii), and it lies in exactly one chunk).
  int chunk_set = -1;
  const std::vector<NodeId>* chunk_nodes = nullptr;  ///< not owned; sorted

  /// Compiled adjacency view for the filters' static predicates (ctp/view.h);
  /// not owned, must outlive the search. nullptr falls back to iterating
  /// Graph::Incident with per-edge LABEL/UNI checks. The view's direction
  /// must be kBackward when filters.unidirectional and kBoth otherwise, and
  /// its label set must equal filters.allowed_labels (asserted in debug).
  const CompiledCtpView* view = nullptr;

  /// Maintain a decomposable sigma (score.h) incrementally in the arena
  /// records; result emission then reads the score in O(1) instead of
  /// walking the tree. Bit-identical to the recomputing path by design.
  bool incremental_scores = true;

  /// Sound TOP-k bound pruning: with an anti-monotone decomposable sigma
  /// (HasNonPositiveDeltas), TOP k, and no LIMIT, once k results are held
  /// any tree whose partial score sum cannot beat the k-th best is neither
  /// grown, merged, nor reported — sigma never increases along Grow/Merge,
  /// so no descendant of such a tree can enter the final TOP-k window.
  /// Rooted-path trees stay exempt from the grow/registration prunes so
  /// the ss_n maintenance LESP's spare decisions read (§4.6) is unchanged
  /// (their merges may still be pruned: merge products are never rooted
  /// paths and never feed ss_n). Pruning disables itself under LIMIT or a
  /// max_trees budget — those truncate deterministically, and pruning
  /// would redirect which work fits; a TIMEOUT cutoff is best-effort
  /// either way. See the ROADMAP PR 3 note for the full soundness
  /// argument. Needs incremental_scores.
  bool bound_pruning = true;

  /// Cooperative cancellation (not owned; may be null). Polled at the same
  /// batched check sites as the TIMEOUT deadline, so a set flag stops the
  /// search within ~128 operations with stats.cancelled — this is how a
  /// streaming sink's early stop reaches every search of a query, including
  /// chunk workers on the pool (ctp/parallel.h threads one flag into every
  /// chunk's config alongside the shared deadline).
  const std::atomic<bool>* cancel = nullptr;

  /// Progress telemetry (not owned; may be null): incremented once per
  /// batched deadline-poll (i.e. every ~128 search operations). A counter
  /// that stops advancing while a query is past its deadline is the
  /// signature of a stuck search — the eqld watchdog samples it to tell
  /// "wedged" from "slow but advancing" before it cancels. Shared across
  /// chunk workers (fetch_add, relaxed); never read by the search itself.
  std::atomic<uint64_t>* progress = nullptr;

  /// Streaming emission hook, installed into the result set (result_set.h):
  /// called with each accepted result; returning false stops the search with
  /// stats.cancelled. Incompatible with TOP-k truncation (FinalizeTopK
  /// reorders after the fact) — with filters.top_k set the hook is ignored
  /// (debug builds assert), so rows are never streamed that the truncation
  /// would disown. The engine's streaming path leaves top_k unset.
  ResultHook on_result;

  /// Deterministic fault injection for the robustness suites (util/fault.h);
  /// not owned, may be null (the production configuration). When set, the
  /// search probes the canonical sites — kFaultSiteAlloc in ProcessNewTree,
  /// kFaultSiteQueuePop at each main-loop pop, kFaultSiteEmit per emitted
  /// result — and a firing probe winds the search down gracefully with
  /// stats.fault_injected, like a timeout.
  FaultInjector* fault = nullptr;

  /// k used by bound pruning; 0 = filters.top_k. The parallel executor
  /// clears filters.top_k on chunk configs (the TOP-k window is applied to
  /// the global union) but passes the user's k here so chunks keep pruning
  /// against their local k-th best, which is itself a lower bound on work
  /// the global window can accept.
  int bound_prune_k = 0;

  static GamConfig Gam() { return GamConfig{}; }
  static GamConfig Esp() {
    GamConfig c;
    c.edge_set_pruning = true;
    return c;
  }
  static GamConfig MoEsp() {
    GamConfig c = Esp();
    c.mo_trees = true;
    return c;
  }
  static GamConfig Lesp() {
    GamConfig c = Esp();
    c.lesp_spare = true;
    return c;
  }
  static GamConfig MoLesp() {
    GamConfig c = Esp();
    c.mo_trees = true;
    c.lesp_spare = true;
    return c;
  }
};

/// Long-lived search memory a GamSearch can borrow instead of allocating its
/// own: the tree arena, the history tables, and the flat per-node scratch
/// whose construction dominates short searches. A pool worker keeps one
/// SearchMemory for its lifetime and reuses it across chunks, CTPs, and
/// queries (ctp/parallel.h); PrepareFor() logically clears everything in
/// O(touched), not O(graph), via epoch versioning, and every buffer keeps
/// its grown capacity.
///
/// A SearchMemory may serve only one live GamSearch at a time.
struct SearchMemory {
  TreeArena arena;
  SearchHistory history{&arena};
  /// recordForMerging index: trees rooted at each node (flat per-NodeId).
  EpochBuckets trees_rooted_in;
  /// ss_n (§4.6), flat per-NodeId.
  EpochArray<Bitset64> seed_sig;
  // Epoch-versioned per-tree scratch (no clearing between trees).
  EpochSet grow_nodes;   ///< node set of the tree being grown (Grow1)
  EpochSet merge_nodes;  ///< node set of the merge subject (Merge1)

  /// Clears all state and sizes the flat buffers for `g`'s id bounds.
  void PrepareFor(const Graph& g);

  /// Heap bytes owned by the borrowed allocators (capacity-based, O(1)).
  /// Epoch-cleared structures keep their capacity, so a pooled worker's
  /// bytes reflect its high-water footprint — exactly what a budget should
  /// bound.
  size_t MemoryBytes() const {
    return arena.MemoryBytes() + history.MemoryBytes() +
           trees_rooted_in.MemoryBytes() + seed_sig.MemoryBytes() +
           grow_nodes.MemoryBytes() + merge_nodes.MemoryBytes();
  }
};

/// One CTP evaluation over one graph and seed-set collection. Single-use:
/// construct, Run() once, read results()/stats().
class GamSearch {
 public:
  /// `memory` (optional, not owned) is a reusable SearchMemory; it is
  /// Prepared here and must outlive the search. nullptr allocates a private
  /// one (the single-shot path).
  GamSearch(const Graph& g, const SeedSets& seeds, GamConfig config,
            SearchMemory* memory = nullptr);

  /// Executes the search to completion, timeout, LIMIT, or tree budget.
  /// Always returns OK; consult stats() for how the run ended.
  Status Run();

  const CtpResultSet& results() const { return results_; }
  const SearchStats& stats() const { return stats_; }
  const TreeArena& arena() const { return arena_; }
  const GamConfig& config() const { return config_; }

  /// ss_n after the run (exposed for tests of the LESP machinery).
  Bitset64 SeedSignatureOf(NodeId n) const { return seed_sig_.Get(n); }

  /// Heap bytes of everything this search allocates: the SearchMemory
  /// allocators plus the result set, the priority queues (size-based — the
  /// live entries; the underlying heap capacity is not observable) and the
  /// merge worklist. O(1); this is what filters.memory_budget_bytes bounds.
  size_t MemoryBytes() const {
    return mem_->MemoryBytes() + results_.MemoryBytes() +
           queue_entries_ * sizeof(QueueEntry) +
           pending_merge_.capacity() * sizeof(TreeId);
  }

 private:
  struct QueueEntry {
    double priority;
    uint64_t tie;
    uint64_t seq;
    TreeId tree;
    EdgeId edge;
    NodeId new_root;
  };
  struct EntryGreater {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };
  using PrioQ = std::priority_queue<QueueEntry, std::vector<QueueEntry>, EntryGreater>;

  /// Algorithm 4. Also classifies LESP spares (out-param may be null). `id`
  /// must be the most recent arena tree (the candidate under test).
  bool IsNew(TreeId id, bool* lesp_spared) const;

  /// Algorithm 2 after a positive isNew: history, result emission, merge
  /// registration, Mo injection, Grow enqueueing.
  void ProcessNewTree(TreeId id);

  /// Pushes all eligible (tree, edge) Grow opportunities of id's root.
  void EnqueueGrows(TreeId id);

  /// Algorithm 5 over the pending worklist (aggressive merging).
  void DrainMerges();

  /// Maintains ss_n when a new (n,s)-rooted path appears (§4.6; Alg. 1 l.10).
  void UpdateSeedSignature(const RootedTree& t);

  bool IsResult(const RootedTree& t) const;
  void EmitResult(TreeId id);
  void CheckDeadline();
  bool ChunkExcludes(NodeId n) const;

  /// True if bound pruning is active and no tree whose partial score sum is
  /// `bound` (an upper bound on every descendant's score) can still enter
  /// the TOP-k window. Strictly-below comparison: candidates that could tie
  /// the k-th best are kept, so the pruned search reports the same TOP-k
  /// under both the sequential (insertion-order) and the parallel
  /// (total-order) tie-breaks.
  bool ScorePrunable(double bound) const {
    return prune_active_ && bound < results_.KthBestScore();
  }

  size_t QueueIndexFor(const RootedTree& t);
  /// Index of the non-empty queue with fewest entries; SIZE_MAX if all
  /// empty. O(log) amortized via the lazy size heap, not a linear scan.
  size_t PickQueue();
  /// Records a size change of queue `qi` in the lazy size heap.
  void NoteQueueSize(size_t qi);

  const Graph& g_;
  const SeedSets& seeds_;
  GamConfig config_;
  SmallestFirstOrder default_order_;
  SearchOrder* order_;

  /// Borrowed or privately owned memory; the references below alias into it
  /// so the search body reads the same either way.
  std::unique_ptr<SearchMemory> owned_memory_;
  SearchMemory* mem_;
  TreeArena& arena_;
  SearchHistory& history_;
  EpochBuckets& trees_rooted_in_;
  EpochArray<Bitset64>& seed_sig_;
  std::vector<PrioQ> queues_;
  /// sat-mask -> queue index (§4.9). Dense-indexed by the mask's bits for
  /// small m (the common case); hash fallback beyond kDenseMaskBits sets.
  static constexpr int kDenseMaskBits = 16;
  std::vector<uint32_t> queue_of_mask_dense_;
  std::unordered_map<uint64_t, uint32_t> queue_of_mask_sparse_;
  /// Lazy min-heap of (queue size, queue index); stale entries are dropped
  /// on pop. Every nonempty queue always has one exact entry.
  std::priority_queue<std::pair<uint64_t, uint64_t>,
                      std::vector<std::pair<uint64_t, uint64_t>>,
                      std::greater<std::pair<uint64_t, uint64_t>>>
      queue_size_heap_;
  std::vector<TreeId> pending_merge_;

  EpochSet& grow_nodes_;   ///< node set of the tree being grown (Grow1)
  EpochSet& merge_nodes_;  ///< node set of the merge subject (Merge1)

  CtpResultSet results_;
  SearchStats stats_;
  Deadline deadline_;
  Stopwatch run_sw_;  ///< restarted by Run(); prices first_result_ms
  uint64_t seq_ = 0;
  uint64_t queue_entries_ = 0;  ///< live entries across queues_ (accounting)
  uint64_t ops_since_deadline_check_ = 0;
  bool stop_ = false;
  /// Set when the config + filters enable TOP-k bound pruning (ctor).
  bool prune_active_ = false;
  /// The decomposable sigma driving the arena accumulator; nullptr when
  /// incremental scoring is off or sigma is not decomposable.
  const ScoreFunction* decomposed_score_ = nullptr;
};

}  // namespace eql

#endif  // EQL_CTP_GAM_H_
