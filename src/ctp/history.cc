#include "ctp/history.h"

namespace eql {

size_t SearchHistory::FindSlot(const std::vector<Slot>& slots, uint64_t hash,
                               TreeId id, bool rooted) const {
  const size_t mask = slots.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  for (;;) {
    const Slot& s = slots[i];
    if (!Live(s)) return i;
    if (s.hash == hash &&
        (rooted ? SameRooted(s.id, id) : SameEdgeSet(s.id, id))) {
      return i;
    }
    i = (i + 1) & mask;
  }
}

void SearchHistory::GrowTable(std::vector<Slot>* slots) {
  std::vector<Slot> old = std::move(*slots);
  slots->assign(old.size() * 2, Slot{});
  const size_t mask = slots->size() - 1;
  for (const Slot& s : old) {
    if (!Live(s)) continue;
    size_t i = static_cast<size_t>(s.hash) & mask;
    while ((*slots)[i].id != kNoTree) i = (i + 1) & mask;
    (*slots)[i] = s;
  }
}

bool SearchHistory::SeenEdgeSet(TreeId id) const {
  const uint64_t h = arena_->Get(id).edge_set_hash;
  return Live(edge_slots_[FindSlot(edge_slots_, h, id, /*rooted=*/false)]);
}

bool SearchHistory::SeenRooted(TreeId id) const {
  const uint64_t h = RootedHash(arena_->Get(id));
  return Live(rooted_slots_[FindSlot(rooted_slots_, h, id, /*rooted=*/true)]);
}

void SearchHistory::Insert(TreeId id) {
  // Tables hold one representative per distinct key; later trees with the
  // same edge set (Mo re-rootings, LESP spares) leave the edge-level entry
  // untouched.
  if (edge_entries_ * 10 >= edge_slots_.size() * 7) GrowTable(&edge_slots_);
  if (rooted_entries_ * 10 >= rooted_slots_.size() * 7) GrowTable(&rooted_slots_);

  const uint64_t eh = arena_->Get(id).edge_set_hash;
  size_t ei = FindSlot(edge_slots_, eh, id, /*rooted=*/false);
  if (!Live(edge_slots_[ei])) {
    edge_slots_[ei] = Slot{eh, id, epoch_};
    ++edge_entries_;
    ++edge_sets_;
  }

  const uint64_t rh = RootedHash(arena_->Get(id));
  size_t ri = FindSlot(rooted_slots_, rh, id, /*rooted=*/true);
  if (!Live(rooted_slots_[ri])) {
    rooted_slots_[ri] = Slot{rh, id, epoch_};
    ++rooted_entries_;
  }
}

}  // namespace eql
