#include "ctp/history.h"

namespace eql {

bool SearchHistory::SeenEdgeSet(const RootedTree& t) const {
  auto it = by_edge_hash_.find(t.edge_set_hash);
  if (it == by_edge_hash_.end()) return false;
  for (TreeId id : it->second) {
    if (arena_->Get(id).edges == t.edges) return true;
  }
  return false;
}

bool SearchHistory::SeenRooted(const RootedTree& t) const {
  auto it = by_rooted_hash_.find(RootedHash(t));
  if (it == by_rooted_hash_.end()) return false;
  for (TreeId id : it->second) {
    const RootedTree& other = arena_->Get(id);
    if (other.root == t.root && other.edges == t.edges) return true;
  }
  return false;
}

void SearchHistory::Insert(TreeId id) {
  const RootedTree& t = arena_->Get(id);
  auto& edge_bucket = by_edge_hash_[t.edge_set_hash];
  bool fresh_edge_set = true;
  for (TreeId other : edge_bucket) {
    if (arena_->Get(other).edges == t.edges) {
      fresh_edge_set = false;
      break;
    }
  }
  if (fresh_edge_set) ++edge_sets_;
  edge_bucket.push_back(id);
  by_rooted_hash_[RootedHash(t)].push_back(id);
}

}  // namespace eql
