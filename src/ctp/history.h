// The search history Hist (Algorithms 1-4): duplicate detection at two
// granularities.
//
//  * Edge-set level: the key of ESP pruning (Def 4.3) — only the first
//    provenance for a given set of edges survives.
//  * Rooted level (root x edge set): plain GAM's dedup ("GAM discards all but
//    the first provenance built for a given rooted tree"), also used for Init
//    trees (whose edge sets are all empty), for Mo trees, and for trees
//    spared by LESP's limited pruning (Alg. 4 lines 4-8).
//
// Hash collisions are resolved by comparing the actual edge vectors stored in
// the arena, so dedup is exact.
#ifndef EQL_CTP_HISTORY_H_
#define EQL_CTP_HISTORY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ctp/tree.h"

namespace eql {

/// Exact duplicate detection for edge sets and rooted trees.
class SearchHistory {
 public:
  explicit SearchHistory(const TreeArena* arena) : arena_(arena) {}

  /// True if some kept tree already has exactly this edge set.
  bool SeenEdgeSet(const RootedTree& t) const;

  /// True if some kept tree already has this (root, edge set).
  bool SeenRooted(const RootedTree& t) const;

  /// Registers a kept tree in both indexes.
  void Insert(TreeId id);

  size_t NumEdgeSets() const { return edge_sets_; }

  void Clear() {
    by_edge_hash_.clear();
    by_rooted_hash_.clear();
    edge_sets_ = 0;
  }

 private:
  static uint64_t RootedHash(const RootedTree& t) {
    return HashCombine(t.edge_set_hash, t.root);
  }

  const TreeArena* arena_;
  // hash -> tree ids with that hash; vectors are almost always length 1.
  std::unordered_map<uint64_t, std::vector<TreeId>> by_edge_hash_;
  std::unordered_map<uint64_t, std::vector<TreeId>> by_rooted_hash_;
  size_t edge_sets_ = 0;
};

}  // namespace eql

#endif  // EQL_CTP_HISTORY_H_
