// The search history Hist (Algorithms 1-4): duplicate detection at two
// granularities.
//
//  * Edge-set level: the key of ESP pruning (Def 4.3) — only the first
//    provenance for a given set of edges survives.
//  * Rooted level (root x edge set): plain GAM's dedup ("GAM discards all but
//    the first provenance built for a given rooted tree"), also used for Init
//    trees (whose edge sets are all empty), for Mo trees, and for trees
//    spared by LESP's limited pruning (Alg. 4 lines 4-8).
//
// Storage is two open-addressing tables of (hash, representative TreeId)
// slots keyed by the trees' incremental edge-set hash — one cache line probe
// per lookup instead of an unordered_map bucket chase, and no per-tree edge
// vector to hash. On a 64-bit hash hit the actual edge sets are compared by
// an epoch-stamped provenance walk, so dedup stays exact.
#ifndef EQL_CTP_HISTORY_H_
#define EQL_CTP_HISTORY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ctp/tree.h"
#include "util/epoch.h"

namespace eql {

/// Exact duplicate detection for edge sets and rooted trees.
class SearchHistory {
 public:
  explicit SearchHistory(const TreeArena* arena) : arena_(arena) {
    edge_slots_.resize(kInitialCapacity);
    rooted_slots_.resize(kInitialCapacity);
  }

  /// True if some kept tree already has exactly this edge set. `id` must be
  /// in the arena (the engines check the tree they just built).
  bool SeenEdgeSet(TreeId id) const;

  /// True if some kept tree already has this (root, edge set).
  bool SeenRooted(TreeId id) const;

  /// Registers a kept tree in both indexes.
  void Insert(TreeId id);

  /// Pre-sizes the edge-stamp scratch used by exact set comparison
  /// (typically to Graph::EdgeIdBound()), avoiding growth during the search.
  void ReserveEdgeScratch(size_t edge_bound) { eq_scratch_.Reserve(edge_bound); }

  size_t NumEdgeSets() const { return edge_sets_; }

  /// Heap bytes owned (capacity-based): both slot tables plus the equality
  /// scratch. O(1); polled by the resource governor (ctp/gam.h).
  size_t MemoryBytes() const {
    return (edge_slots_.capacity() + rooted_slots_.capacity()) * sizeof(Slot) +
           eq_scratch_.MemoryBytes();
  }

  /// Empties both tables in O(1) by bumping the slot epoch, keeping their
  /// capacity: a pooled worker clearing between searches reuses the grown
  /// tables with no per-clear wipe (the wipe happens only on 32-bit epoch
  /// wrap-around).
  void Clear() {
    if (++epoch_ == 0) {  // wrapped: every stale slot would look live again
      std::fill(edge_slots_.begin(), edge_slots_.end(), Slot{});
      std::fill(rooted_slots_.begin(), rooted_slots_.end(), Slot{});
      epoch_ = 1;
    }
    edge_entries_ = rooted_entries_ = 0;
    edge_sets_ = 0;
  }

 private:
  static constexpr size_t kInitialCapacity = 1024;  // power of two

  /// Live only when `epoch` matches the table's current epoch — stale slots
  /// read as empty, which is probe-safe because staleness only ever flips at
  /// a Clear(), when the *whole* table goes stale at once (no mixed chains).
  /// The epoch field fills what was padding, so slots stay 16 bytes.
  struct Slot {
    uint64_t hash = 0;
    TreeId id = kNoTree;  ///< kNoTree marks a never-used slot
    uint32_t epoch = 0;
  };

  bool Live(const Slot& s) const { return s.id != kNoTree && s.epoch == epoch_; }

  static uint64_t RootedHash(const RootedTree& t) {
    return HashCombine(t.edge_set_hash, t.root);
  }

  /// True if the trees' edge sets are identical (hashes already matched).
  bool SameEdgeSet(TreeId a, TreeId b) const {
    return arena_->EdgeSetsEqual(a, b, &eq_scratch_);
  }
  bool SameRooted(TreeId a, TreeId b) const {
    return arena_->Get(a).root == arena_->Get(b).root && SameEdgeSet(a, b);
  }

  /// Finds `id`'s slot in `slots` (linear probing): the matching slot, or the
  /// first empty one. `rooted` selects the equality relation.
  size_t FindSlot(const std::vector<Slot>& slots, uint64_t hash, TreeId id,
                  bool rooted) const;

  void GrowTable(std::vector<Slot>* slots);

  const TreeArena* arena_;
  std::vector<Slot> edge_slots_;
  std::vector<Slot> rooted_slots_;
  size_t edge_entries_ = 0;
  size_t rooted_entries_ = 0;
  size_t edge_sets_ = 0;
  uint32_t epoch_ = 1;
  mutable EpochSet eq_scratch_;  ///< edge stamps for exact set comparison
};

}  // namespace eql

#endif  // EQL_CTP_HISTORY_H_
