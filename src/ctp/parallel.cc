#include "ctp/parallel.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "util/hash.h"

namespace eql {

namespace {

/// Result of one chunk worker, staged for the merge step.
struct ChunkOutput {
  Status status = Status::Ok();
  SearchStats stats;
  // Materialized results: edge set + root (the arena dies with the worker).
  std::vector<std::vector<EdgeId>> edge_sets;
  std::vector<NodeId> roots;
};

void RunChunk(const Graph* g, const SeedSets* full_seeds, size_t split_idx,
              std::vector<NodeId> chunk, const CtpFilters* filters,
              const ParallelCtpOptions* options, ChunkOutput* out) {
  // Rebuild the seed sets with S_split replaced by this chunk.
  std::vector<std::vector<NodeId>> sets;
  std::vector<bool> universal;
  for (int i = 0; i < full_seeds->num_sets(); ++i) {
    if (static_cast<size_t>(i) == split_idx) {
      sets.push_back(std::move(chunk));
      universal.push_back(false);
    } else {
      sets.push_back(full_seeds->Set(i));
      universal.push_back(full_seeds->IsUniversal(i));
    }
  }
  auto seeds = SeedSets::Make(*g, std::move(sets), std::move(universal));
  if (!seeds.ok()) {
    out->status = seeds.status();
    return;
  }
  CtpFilters chunk_filters = *filters;
  // TOP-k / LIMIT need the global result set; chunks run uncapped in count.
  chunk_filters.top_k = -1;
  chunk_filters.score = nullptr;
  chunk_filters.limit = UINT64_MAX;
  auto algo = CreateCtpAlgorithm(options->algorithm, *g, *seeds, chunk_filters,
                                 nullptr, options->queue_strategy);
  out->status = algo->Run();
  if (!out->status.ok()) return;
  out->stats = algo->stats();
  for (const CtpResult& r : algo->results().results()) {
    out->edge_sets.push_back(algo->arena().EdgeSet(r.tree));
    out->roots.push_back(algo->arena().Get(r.tree).root);
  }
}

}  // namespace

Result<ParallelCtpOutcome> EvaluateCtpParallel(const Graph& g,
                                               const SeedSets& seeds,
                                               const CtpFilters& filters,
                                               const ParallelCtpOptions& options) {
  if (!IsGamFamily(options.algorithm)) {
    return Status::InvalidArgument(
        "parallel evaluation needs a GAM-family algorithm");
  }
  // Split the largest non-universal seed set.
  size_t split_idx = SIZE_MAX;
  size_t split_size = 0;
  for (int i = 0; i < seeds.num_sets(); ++i) {
    if (seeds.IsUniversal(i)) continue;
    if (seeds.SetSize(i) > split_size) {
      split_size = seeds.SetSize(i);
      split_idx = static_cast<size_t>(i);
    }
  }
  if (split_idx == SIZE_MAX) {
    return Status::InvalidArgument("no splittable seed set");
  }

  unsigned threads = options.num_threads != 0
                         ? options.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(split_size));
  const std::vector<NodeId>& split_set = seeds.Set(static_cast<int>(split_idx));

  // Round-robin chunking keeps chunk workloads balanced even when the seed
  // set is sorted by graph region.
  std::vector<std::vector<NodeId>> chunks(threads);
  for (size_t i = 0; i < split_set.size(); ++i) {
    chunks[i % threads].push_back(split_set[i]);
  }

  std::vector<ChunkOutput> outputs(threads);
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back(RunChunk, &g, &seeds, split_idx, std::move(chunks[t]),
                           &filters, &options, &outputs[t]);
    }
    for (auto& w : workers) w.join();
  }

  ParallelCtpOutcome out;
  out.split_set = split_idx;
  out.threads_used = threads;

  // Merge: post-filter Def 2.8 (ii) violations, dedup across chunks, rebuild
  // result tuples against a fresh arena, then apply score/TOP-k/LIMIT.
  CtpFilters merged_filters = filters;  // keeps score/top_k for the set below
  CtpResultSet results(&g, &seeds, &out.arena, &merged_filters);
  for (ChunkOutput& chunk : outputs) {
    if (!chunk.status.ok()) return chunk.status;
    out.chunk_stats.push_back(chunk.stats);
    out.stats.init_trees += chunk.stats.init_trees;
    out.stats.grow_attempts += chunk.stats.grow_attempts;
    out.stats.merge_attempts += chunk.stats.merge_attempts;
    out.stats.trees_built += chunk.stats.trees_built;
    out.stats.mo_trees += chunk.stats.mo_trees;
    out.stats.trees_pruned += chunk.stats.trees_pruned;
    out.stats.queue_pushed += chunk.stats.queue_pushed;
    out.stats.timed_out |= chunk.stats.timed_out;
    out.stats.budget_exhausted |= chunk.stats.budget_exhausted;
    out.stats.elapsed_ms = std::max(out.stats.elapsed_ms, chunk.stats.elapsed_ms);
    for (size_t i = 0; i < chunk.edge_sets.size(); ++i) {
      TreeId id = out.arena.MakeAdHoc(chunk.roots[i],
                                      std::move(chunk.edge_sets[i]), g, seeds);
      // A chunk cannot see the rest of S_split: discard trees that contain a
      // second S_split node (they are not results of the full CTP).
      int split_nodes = 0;
      for (NodeId n : out.arena.NodeSet(g, id)) {
        if (seeds.Signature(n).Test(static_cast<int>(split_idx))) ++split_nodes;
      }
      if (split_nodes > 1) {
        ++out.postfiltered;
        out.arena.PopLast();
        continue;
      }
      if (!results.Add(id)) {
        ++out.stats.duplicate_results;
        out.arena.PopLast();
      }
    }
  }
  out.stats.complete = !out.stats.timed_out && !out.stats.budget_exhausted;

  results.FinalizeTopK();
  std::vector<CtpResult> final_results = results.results();
  if (filters.limit != UINT64_MAX &&
      final_results.size() > filters.limit) {
    final_results.resize(filters.limit);
  }
  out.stats.results_found = final_results.size();
  out.results = std::move(final_results);
  return out;
}

}  // namespace eql
