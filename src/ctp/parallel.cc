#include "ctp/parallel.h"

#include <algorithm>
#include <unordered_map>

#include "util/stopwatch.h"

namespace eql {

namespace {

/// One result staged by a chunk worker: everything the merge step needs,
/// extracted before the worker's arena is recycled. `edges` is sorted, so
/// cross-chunk equality on a hash collision is a plain vector compare.
struct ChunkResult {
  uint64_t hash = 0;  ///< incremental XOR edge-set hash (the dedup word)
  double score = 0;
  NodeId root = kNoNode;
  std::vector<EdgeId> edges;
  std::vector<NodeId> seed_of_set;
};

/// Output slot of one chunk task (written by exactly one worker).
struct ChunkOutput {
  Status status = Status::Ok();
  SearchStats stats;
  std::vector<ChunkResult> results;
};

/// Total order on results: score desc, then fewest edges, then edge-set
/// hash, then seed tuple, then the edge sets themselves. Independent of
/// thread scheduling and chunk order, so TOP-k/LIMIT tie-breaks are stable
/// run to run and across pool sizes.
bool ResultLess(const ChunkResult& a, const ChunkResult& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.edges.size() != b.edges.size()) return a.edges.size() < b.edges.size();
  if (a.hash != b.hash) return a.hash < b.hash;
  if (a.seed_of_set != b.seed_of_set) return a.seed_of_set < b.seed_of_set;
  return a.edges < b.edges;
}

}  // namespace

CtpExecutor::CtpExecutor(unsigned num_workers) {
  if (num_workers == 0) {
    num_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  num_workers = std::min(num_workers, 512u);  // header: thread-spawn guard
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CtpExecutor::~CtpExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

CtpExecutor& CtpExecutor::Default() {
  static CtpExecutor* pool = new CtpExecutor(0);  // leaked by design (header)
  return *pool;
}

void CtpExecutor::Submit(TaskGroup* group, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++group->pending_;
    queue_.push_back(Task{group, std::move(fn)});
  }
  work_cv_.notify_one();
}

void CtpExecutor::FinishTask(TaskGroup* group) {
  bool last;
  {
    std::lock_guard<std::mutex> lk(mu_);
    last = --group->pending_ == 0;
  }
  if (last) done_cv_.notify_all();
}

void CtpExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown with nothing left to run
    Task t = std::move(queue_.front());
    queue_.pop_front();
    lk.unlock();
    t.fn();
    FinishTask(t.group);
    lk.lock();
  }
}

void CtpExecutor::Wait(TaskGroup* group) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (group->pending_ == 0) return;
    // Help: run a queued task of this group inline rather than sleeping.
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Task& t) { return t.group == group; });
    if (it != queue_.end()) {
      Task t = std::move(*it);
      queue_.erase(it);
      lk.unlock();
      t.fn();
      FinishTask(group);
      lk.lock();
      continue;
    }
    // All remaining group tasks are running on workers; they signal done_cv_.
    done_cv_.wait(lk, [&] { return group->pending_ == 0; });
  }
}

std::unique_ptr<SearchMemory> CtpExecutor::AcquireMemory() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!free_memory_.empty()) {
      auto m = std::move(free_memory_.back());
      free_memory_.pop_back();
      return m;
    }
  }
  return std::make_unique<SearchMemory>();
}

void CtpExecutor::ReleaseMemory(std::unique_ptr<SearchMemory> m) {
  std::lock_guard<std::mutex> lk(mu_);
  // Retain at most one memory per worker plus a couple for helping caller
  // threads; an unbounded list would pin peak-search-sized arenas for the
  // life of the pool (Default() lives as long as the process).
  if (free_memory_.size() < workers_.size() + 2) {
    free_memory_.push_back(std::move(m));
  }
}

Result<ParallelCtpOutcome> CtpExecutor::Evaluate(
    const Graph& g, const SeedSets& seeds, const CtpFilters& filters,
    const ParallelCtpOptions& options) {
  Stopwatch sw;
  if (!IsGamFamily(options.algorithm)) {
    return Status::InvalidArgument(
        "parallel evaluation needs a GAM-family algorithm");
  }
  // Split the largest non-universal seed set.
  size_t split_idx = SIZE_MAX;
  size_t split_size = 0;
  for (int i = 0; i < seeds.num_sets(); ++i) {
    if (seeds.IsUniversal(i)) continue;
    if (seeds.SetSize(i) > split_size) {
      split_size = seeds.SetSize(i);
      split_idx = static_cast<size_t>(i);
    }
  }
  if (split_idx == SIZE_MAX) {
    return Status::InvalidArgument("no splittable seed set");
  }

  unsigned chunks =
      options.num_threads != 0 ? options.num_threads : num_workers();
  chunks = std::min<unsigned>(std::max(1u, chunks),
                              static_cast<unsigned>(split_size));
  const std::vector<NodeId>& split_set = seeds.Set(static_cast<int>(split_idx));

  // One shared absolute deadline for the whole CTP: chunks started late (more
  // chunks than workers) get the remaining budget, not a fresh one.
  const Deadline deadline = filters.timeout_ms >= 0
                                ? Deadline::AfterMs(filters.timeout_ms)
                                : Deadline::Infinite();

  // Round-robin chunking keeps chunk workloads balanced even when the seed
  // set is sorted by graph region; each chunk is then sorted so the chunk
  // exclusion probe in the search is a binary search.
  std::vector<std::vector<NodeId>> chunk_nodes(chunks);
  for (size_t i = 0; i < split_set.size(); ++i) {
    chunk_nodes[i % chunks].push_back(split_set[i]);
  }
  for (auto& c : chunk_nodes) std::sort(c.begin(), c.end());

  // Compile the CTP's static predicates once; every chunk shares the view
  // read-only. The cache makes this one lookup for repeated label sets
  // (query batches); pass-through views (no LABEL) cost nothing to make.
  std::shared_ptr<const CompiledCtpView> view;
  if (options.use_views && (filters.allowed_labels || filters.unidirectional)) {
    view = view_cache_.Get(g, filters.allowed_labels,
                           CompiledCtpView::DirectionFor(filters.unidirectional));
  }

  std::vector<ChunkOutput> outputs(chunks);
  TaskGroup group;
  for (unsigned c = 0; c < chunks; ++c) {
    Submit(&group, [this, &g, &seeds, &filters, &options, &deadline, &sw,
                    &chunk_nodes, &outputs, &view, c, chunks, split_idx] {
      ChunkOutput& out = outputs[c];
      // Chunks queued behind a smaller pool start late; remember the offset
      // so first_result_ms reports time since Evaluate() entry, not since
      // this chunk's own start.
      const double chunk_start_ms = sw.ElapsedMs();
      const int64_t remaining = deadline.RemainingMs();
      if (remaining == 0) {  // budget spent before this chunk even started
        out.stats.timed_out = true;
        return;
      }
      GamConfig config = MakeGamConfig(options.algorithm);
      config.queue_strategy = options.queue_strategy;
      config.filters = filters;
      config.filters.top_k = -1;  // TOP-k needs the global union
      config.view = view.get();
      config.incremental_scores = options.incremental_scores;
      config.bound_pruning = options.bound_pruning;
      config.cancel = options.cancel;
      config.progress = options.progress;
      config.fault = options.fault;
      // The per-query budget bounds the *sum* of chunk footprints: each
      // chunk gets an equal slice. Integer division may leave a remainder
      // unused — the budget is a ceiling, not a target.
      if (filters.memory_budget_bytes != 0) {
        config.filters.memory_budget_bytes =
            std::max<uint64_t>(1, filters.memory_budget_bytes / chunks);
      }
      // Chunks keep pruning against their local k-th best even though their
      // filters carry no TOP-k: a chunk's k results with score >= s all
      // reach the union, so a chunk candidate strictly below its local s can
      // never enter the global TOP-k window either.
      if (filters.score != nullptr && filters.top_k > 0) {
        config.bound_prune_k = filters.top_k;
      }
      if (filters.timeout_ms >= 0) config.filters.timeout_ms = remaining;
      // LIMIT push-down: without a score every chunk result survives to the
      // union (chunk results partition the full result set), so no chunk
      // needs more than `limit` of them. With a score the global TOP-k /
      // LIMIT pick from the full candidate set, so chunks run uncapped.
      if (filters.score != nullptr) config.filters.limit = UINT64_MAX;
      config.chunk_set = static_cast<int>(split_idx);
      config.chunk_nodes = &chunk_nodes[c];

      std::unique_ptr<SearchMemory> memory = AcquireMemory();
      {
        GamSearch search(g, seeds, std::move(config), memory.get());
        out.status = search.Run();
        if (out.status.ok()) {
          out.stats = search.stats();
          if (out.stats.first_result_ms >= 0) {
            out.stats.first_result_ms += chunk_start_ms;
          }
          out.results.reserve(search.results().size());
          for (const CtpResult& r : search.results().results()) {
            ChunkResult cr;
            const RootedTree& t = search.arena().Get(r.tree);
            cr.hash = t.edge_set_hash;
            cr.root = t.root;
            cr.score = r.score;
            cr.seed_of_set = r.seed_of_set;
            cr.edges = search.arena().EdgeSet(r.tree);
            out.results.push_back(std::move(cr));
          }
        }
      }
      ReleaseMemory(std::move(memory));
    });
  }
  Wait(&group);

  ParallelCtpOutcome out;
  out.split_set = split_idx;
  out.threads_used = chunks;
  out.used_view = view != nullptr;

  for (ChunkOutput& chunk : outputs) {
    if (!chunk.status.ok()) return chunk.status;
    out.chunk_stats.push_back(chunk.stats);
    out.stats.init_trees += chunk.stats.init_trees;
    out.stats.grow_attempts += chunk.stats.grow_attempts;
    out.stats.merge_attempts += chunk.stats.merge_attempts;
    out.stats.trees_built += chunk.stats.trees_built;
    out.stats.mo_trees += chunk.stats.mo_trees;
    out.stats.trees_pruned += chunk.stats.trees_pruned;
    out.stats.lesp_spared += chunk.stats.lesp_spared;
    out.stats.bound_pruned += chunk.stats.bound_pruned;
    out.stats.queue_pushed += chunk.stats.queue_pushed;
    out.stats.duplicate_results += chunk.stats.duplicate_results;
    out.stats.timed_out |= chunk.stats.timed_out;
    out.stats.budget_exhausted |= chunk.stats.budget_exhausted;
    out.stats.cancelled |= chunk.stats.cancelled;
    out.stats.memory_budget_hit |= chunk.stats.memory_budget_hit;
    out.stats.fault_injected |= chunk.stats.fault_injected;
    // Peaks sum: the chunks' footprints coexist (the per-query budget was
    // divided across them), so the aggregate peak is the total.
    out.stats.memory_bytes_peak += chunk.stats.memory_bytes_peak;
    // Earliest first-result across chunks, measured from Evaluate() entry
    // (chunk starts are offset above, so queued chunks report honestly).
    if (chunk.stats.first_result_ms >= 0 &&
        (out.stats.first_result_ms < 0 ||
         chunk.stats.first_result_ms < out.stats.first_result_ms)) {
      out.stats.first_result_ms = chunk.stats.first_result_ms;
    }
  }

  // Cross-chunk dedup on the one-word incremental hash, in chunk order.
  // Chunk result sets are disjoint by construction (header), so this is pure
  // insurance; exactness on a 64-bit collision costs one vector compare.
  std::vector<ChunkResult*> merged;
  std::unordered_map<uint64_t, std::vector<const ChunkResult*>> by_hash;
  for (ChunkOutput& chunk : outputs) {
    // Fault site "chunk-merge": one probe per chunk. A firing chunk's slice
    // is dropped from the union — the shape of a worker lost after its
    // search finished — and the run reports kFaultInjected; the surviving
    // chunks still form a well-formed (partial) result set.
    if (options.fault != nullptr &&
        options.fault->ShouldFail(kFaultSiteChunkMerge)) {
      out.stats.fault_injected = true;
      continue;
    }
    for (ChunkResult& r : chunk.results) {
      auto& bucket = by_hash[r.hash];
      bool dup = false;
      for (const ChunkResult* seen : bucket) {
        if (seen->edges == r.edges) {
          dup = true;
          break;
        }
      }
      if (dup) {
        ++out.stats.duplicate_results;
        continue;
      }
      bucket.push_back(&r);
      merged.push_back(&r);
    }
  }

  // Deterministic total order before TOP-k/LIMIT (header).
  std::sort(merged.begin(), merged.end(),
            [](const ChunkResult* a, const ChunkResult* b) {
              return ResultLess(*a, *b);
            });
  if (filters.score != nullptr && filters.top_k > 0 &&
      merged.size() > static_cast<size_t>(filters.top_k)) {
    merged.resize(static_cast<size_t>(filters.top_k));
  }
  if (filters.limit != UINT64_MAX && merged.size() > filters.limit) {
    merged.resize(filters.limit);
  }

  out.results.reserve(merged.size());
  for (ChunkResult* r : merged) {
    TreeId id = out.arena.MakeAdHocInPlace(r->root, &r->edges, g, seeds);
    out.results.push_back(CtpResult{id, std::move(r->seed_of_set), r->score});
  }
  out.stats.results_found = out.results.size();
  out.stats.complete = !out.stats.timed_out && !out.stats.budget_exhausted &&
                       !out.stats.cancelled && !out.stats.memory_budget_hit &&
                       !out.stats.fault_injected;
  out.stats.elapsed_ms = sw.ElapsedMs();
  return out;
}

Result<ParallelCtpOutcome> EvaluateCtpParallel(const Graph& g,
                                               const SeedSets& seeds,
                                               const CtpFilters& filters,
                                               const ParallelCtpOptions& options) {
  CtpExecutor& executor =
      options.executor != nullptr ? *options.executor : CtpExecutor::Default();
  return executor.Evaluate(g, seeds, filters, options);
}

}  // namespace eql
