// Multi-threaded CTP evaluation by seed-set splitting.
//
// Section 6 notes that the Java GAM algorithm was sped up by up to 100x in a
// multi-threaded C++ version. This module provides the coarse-grained
// parallelization that preserves the sequential algorithms' guarantees:
// the largest seed set S_i is split into k chunks, and k independent
// searches over (S_1, ..., chunk_j, ..., S_m) run on separate threads.
//
// Correctness argument: a CTP result contains exactly one S_i node, so every
// result of the full problem is a result of exactly the chunk containing its
// S_i node — provided we *post-filter* chunk results that contain another
// node of the full S_i (chunk runs cannot apply Grow2 against seeds they do
// not know; such trees violate Def 2.8 (ii) for the full CTP and are
// discarded here). Conversely, every surviving chunk result is a result of
// the full CTP. Hence the union after filtering equals the sequential result
// set, and per-chunk completeness guarantees (Properties 3-9) carry over.
//
// Restrictions: TOP-k and LIMIT need a global view and are applied after the
// union; the per-chunk searches run unbounded in count (MAX/LABEL/UNI/
// timeout push down chunk-locally).
#ifndef EQL_CTP_PARALLEL_H_
#define EQL_CTP_PARALLEL_H_

#include <memory>
#include <vector>

#include "ctp/algorithm.h"

namespace eql {

struct ParallelCtpOptions {
  /// Worker count; 0 = std::thread::hardware_concurrency() (capped at the
  /// split set's size).
  unsigned num_threads = 0;
  AlgorithmKind algorithm = AlgorithmKind::kMoLesp;
  QueueStrategy queue_strategy = QueueStrategy::kSingle;
};

/// Aggregated outcome of a parallel run. Result trees are materialized as
/// plain edge sets + per-set seed tuples (arena-independent).
struct ParallelCtpOutcome {
  std::vector<CtpResult> results;          ///< tree field indexes `arena`
  TreeArena arena;                         ///< holds the surviving trees
  SearchStats stats;                       ///< summed over chunks
  std::vector<SearchStats> chunk_stats;
  size_t split_set = 0;                    ///< which S_i was split
  unsigned threads_used = 1;
  uint64_t postfiltered = 0;  ///< chunk results violating Def 2.8 (ii)
};

/// Runs `filters` CTP over (g, seeds) with chunked parallelism. The graph
/// and seeds must outlive the call; `filters.score`/TOP-k/LIMIT are applied
/// globally after the union.
Result<ParallelCtpOutcome> EvaluateCtpParallel(const Graph& g,
                                               const SeedSets& seeds,
                                               const CtpFilters& filters,
                                               const ParallelCtpOptions& options);

}  // namespace eql

#endif  // EQL_CTP_PARALLEL_H_
