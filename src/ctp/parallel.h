// Worker-pool parallel CTP execution.
//
// Section 6 notes that the Java GAM algorithm was sped up by up to 100x in a
// multi-threaded C++ version. This module provides that scale-out as a
// persistent executor rather than one-shot thread spawns:
//
//  * CtpExecutor owns a fixed pool of worker threads and a shared work
//    queue. Chunk work items are queued and pulled ("stolen") by whichever
//    worker frees up first, so chunk counts and worker counts are
//    independent — a CTP can be split 8 ways on a 2-worker pool, or many
//    CTPs/queries can share one pool (EqlEngine::RunBatch).
//  * Every worker keeps one long-lived SearchMemory (ctp/gam.h): a tree
//    arena plus epoch-versioned flat scratch, logically cleared in
//    O(touched) between chunks. Repeated searches therefore do no per-query
//    allocation churn — the reuse the PR 1 arena refactor was built for.
//  * A thread that waits on a task group helps drain that group's queued
//    tasks, so nested dispatch (batch query -> CTP -> chunks) cannot
//    deadlock even on a single-worker pool.
//
// Chunking and correctness: the largest non-universal seed set S_i is split
// into k chunks; each chunk runs the *full* CTP but with Init trees of S_i
// restricted to the chunk and the remaining S_i members excluded from the
// search (GamConfig::chunk_set). Each chunk run is therefore exactly the CTP
// (S_1, ..., chunk_j, ..., S_m) on the graph minus the excluded nodes, so
// per-chunk completeness guarantees (Properties 3-9) carry over, every chunk
// result is a result of the full CTP, and a result's unique S_i node
// (Def 2.8 (ii)) places it in exactly one chunk — the chunk result sets
// partition the full result set with no post-filtering.
//
// Global filters: LIMIT pushes down per chunk when no score function is
// attached (each chunk result survives to the union, so no chunk needs more
// than LIMIT of them); TIMEOUT is one shared absolute deadline — a chunk
// starting late runs with the remaining budget only, so queued chunks cannot
// multiply the user's wall-clock budget. Results are deduplicated across
// chunks by the one-word incremental XOR edge-set hash (exact compare only
// on hash collision), then sorted by a total order — score desc, edge count,
// edge-set hash, seed tuple, edge set — before TOP-k/LIMIT, making the
// output independent of thread scheduling and, when nothing truncates the
// union, of the chunk count itself.
#ifndef EQL_CTP_PARALLEL_H_
#define EQL_CTP_PARALLEL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ctp/algorithm.h"
#include "ctp/view.h"

namespace eql {

class CtpExecutor;

struct ParallelCtpOptions {
  /// Number of seed-set chunks (the degree of parallelism); 0 = the
  /// executor's worker count. Capped at the split set's size. The chunk
  /// count — not the pool size — determines the result partition, so
  /// outputs are identical for a fixed num_threads on any pool.
  unsigned num_threads = 0;
  AlgorithmKind algorithm = AlgorithmKind::kMoLesp;
  QueueStrategy queue_strategy = QueueStrategy::kSingle;
  /// Pool to run on (not owned); nullptr = the process-wide default pool.
  CtpExecutor* executor = nullptr;
  /// Compile the CTP's LABEL/UNI predicates into an adjacency view once per
  /// CTP, cached in the executor and shared read-only by every chunk
  /// (ctp/view.h); repeated CTPs over the same label vocabulary — e.g. a
  /// query batch — reuse the cached view.
  bool use_views = true;
  /// Toggles forwarded to every chunk's GamConfig (ctp/gam.h).
  bool incremental_scores = true;
  bool bound_pruning = true;
  /// Cooperative cancellation flag threaded into every chunk's config (not
  /// owned; may be null). Setting it stops all chunks of this CTP within
  /// ~128 operations each — the lever a streaming sink's early stop and
  /// Cursor::Close pull to tear down pool work they no longer need.
  const std::atomic<bool>* cancel = nullptr;
  /// Progress counter threaded into every chunk's config (GamConfig::
  /// progress contract; chunks share it via atomic adds). Not owned.
  std::atomic<uint64_t>* progress = nullptr;
  /// Deterministic fault injection (util/fault.h; not owned, may be null).
  /// Shared by all chunks — in-search sites (alloc, queue-pop, emit) fire on
  /// whichever chunk reaches the armed probe, and the executor itself probes
  /// kFaultSiteChunkMerge once per chunk at the merge step: a firing chunk's
  /// results are dropped (its searched slice is lost, like a crashed worker)
  /// and the outcome reports kFaultInjected with the union of the surviving
  /// chunks — a well-formed partial result.
  FaultInjector* fault = nullptr;
};

/// Aggregated outcome of a parallel run. Result trees are materialized into
/// `arena` (chunk-worker arenas are recycled, not exposed).
struct ParallelCtpOutcome {
  std::vector<CtpResult> results;          ///< tree field indexes `arena`
  TreeArena arena;                         ///< holds the surviving trees
  SearchStats stats;                       ///< summed over chunks
  std::vector<SearchStats> chunk_stats;    ///< in chunk order
  size_t split_set = 0;                    ///< which S_i was split
  unsigned threads_used = 1;               ///< chunk count actually used
  bool used_view = false;                  ///< chunks ran on a compiled view
};

/// A persistent pool of search workers. Thread-safe: any thread may Submit,
/// Wait, or Evaluate concurrently; nested use (a task that itself Evaluates)
/// is supported via helping.
class CtpExecutor {
 public:
  /// Waitable handle for a batch of submitted tasks. Not reusable across
  /// executors; must outlive its tasks.
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class CtpExecutor;
    size_t pending_ = 0;  ///< guarded by the executor's mutex
  };

  /// 0 = std::thread::hardware_concurrency() (at least 1). Capped at 512
  /// workers so a bogus count cannot exhaust the process's thread limit.
  explicit CtpExecutor(unsigned num_workers = 0);
  /// Joins the workers. All Waits must have returned.
  ~CtpExecutor();

  CtpExecutor(const CtpExecutor&) = delete;
  CtpExecutor& operator=(const CtpExecutor&) = delete;

  unsigned num_workers() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs `filters` CTP over (g, seeds) with chunked parallelism on this
  /// pool. The graph and seeds must outlive the call; score/TOP-k/LIMIT are
  /// applied globally after the union (scores are computed chunk-locally, in
  /// parallel). `options.executor` is ignored — this pool runs the chunks.
  Result<ParallelCtpOutcome> Evaluate(const Graph& g, const SeedSets& seeds,
                                      const CtpFilters& filters,
                                      const ParallelCtpOptions& options);

  /// Enqueues an arbitrary task under `group`.
  void Submit(TaskGroup* group, std::function<void()> fn);

  /// Blocks until every task of `group` has finished. The calling thread
  /// helps: queued tasks of this group are executed inline, so waiting from
  /// inside a pool task (nested dispatch) always makes progress.
  void Wait(TaskGroup* group);

  /// The process-wide default pool (hardware concurrency), created on first
  /// use and intentionally leaked so worker threads never race static
  /// destruction.
  static CtpExecutor& Default();

  /// The executor's compiled-view cache (internally synchronized). Shared
  /// by every Evaluate call and by engines running on this pool, so a batch
  /// of queries over the same label vocabulary compiles each view once.
  ViewCache& view_cache() { return view_cache_; }

 private:
  struct Task {
    TaskGroup* group;
    std::function<void()> fn;
  };

  void WorkerLoop();
  void FinishTask(TaskGroup* group);  ///< decrement under lock, signal done

  /// Borrows a long-lived SearchMemory from the pool's free list (grown on
  /// demand — helping caller threads need one too).
  std::unique_ptr<SearchMemory> AcquireMemory();
  void ReleaseMemory(std::unique_ptr<SearchMemory> m);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty / shutdown
  std::condition_variable done_cv_;  ///< waiters: some group completed
  std::deque<Task> queue_;
  std::vector<std::unique_ptr<SearchMemory>> free_memory_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  ViewCache view_cache_;  ///< own mutex; never taken together with mu_
};

/// Convenience wrapper: Evaluate on `options.executor`, or on the default
/// pool when null.
Result<ParallelCtpOutcome> EvaluateCtpParallel(const Graph& g,
                                               const SeedSets& seeds,
                                               const CtpFilters& filters,
                                               const ParallelCtpOptions& options);

}  // namespace eql

#endif  // EQL_CTP_PARALLEL_H_
