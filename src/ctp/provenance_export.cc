#include "ctp/provenance_export.h"

#include <bit>
#include <unordered_set>

#include "util/string_util.h"

namespace eql {

namespace {

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string TreeToDot(const Graph& g, const SeedSets& seeds,
                      const TreeArena& arena, TreeId id,
                      const std::string& graph_name) {
  const NodeId root = arena.Get(id).root;
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=LR;\n  node [shape=ellipse];\n";
  for (NodeId n : arena.NodeSet(g, id)) {
    Bitset64 sig = seeds.Signature(n);
    std::string attrs;
    if (!sig.Empty()) {
      attrs = " [peripheries=2, style=filled, fillcolor=lightyellow, label=" +
              Quoted(g.NodeLabel(n) + StrFormat(" (S%d)",
                                                std::countr_zero(sig.bits()) + 1)) +
              "]";
    } else if (n == root) {
      attrs = " [style=filled, fillcolor=lightgrey]";
    }
    out += "  n" + std::to_string(n) + attrs + ";\n";
  }
  for (EdgeId e : arena.EdgeSet(id)) {
    out += "  n" + std::to_string(g.Source(e)) + " -> n" +
           std::to_string(g.Target(e)) + " [label=" + Quoted(g.EdgeLabel(e)) +
           "];\n";
  }
  out += "}\n";
  return out;
}

std::string ProvenanceToDot(const TreeArena& arena, TreeId id, const Graph& g,
                            const std::string& graph_name) {
  std::string out = "digraph " + graph_name + " {\n";
  out += "  node [shape=box, fontsize=10];\n";
  std::unordered_set<TreeId> visited;
  std::vector<TreeId> stack = {id};
  while (!stack.empty()) {
    TreeId cur = stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) continue;
    const RootedTree& t = arena.Get(cur);
    const char* kind = "?";
    switch (t.kind) {
      case ProvKind::kInit:
        kind = "Init";
        break;
      case ProvKind::kGrow:
        kind = "Grow";
        break;
      case ProvKind::kMerge:
        kind = "Merge";
        break;
      case ProvKind::kMo:
        kind = "Mo";
        break;
      case ProvKind::kExternal:
        kind = "External";
        break;
    }
    std::string label = StrFormat("%s #%u\\nroot=%s |edges|=%zu", kind, cur,
                                  g.NodeLabel(t.root).c_str(), t.NumEdges());
    if (t.kind == ProvKind::kGrow) {
      label += "\\n+" + g.EdgeToString(t.grow_edge);
    }
    out += "  t" + std::to_string(cur) + " [label=" + Quoted(label) + "];\n";
    if (t.child1 != kNoTree) {
      out += "  t" + std::to_string(t.child1) + " -> t" + std::to_string(cur) +
             ";\n";
      stack.push_back(t.child1);
    }
    if (t.child2 != kNoTree) {
      out += "  t" + std::to_string(t.child2) + " -> t" + std::to_string(cur) +
             ";\n";
      stack.push_back(t.child2);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace eql
