// Provenance and result export: Graphviz DOT renderings of result trees and
// of the Init/Grow/Merge/Mo derivation DAG (Definition 4.1).
//
// Investigative users need to *see* connections; developers debugging the
// search need to see how a tree was derived. Both are one `dot -Tsvg` away.
#ifndef EQL_CTP_PROVENANCE_EXPORT_H_
#define EQL_CTP_PROVENANCE_EXPORT_H_

#include <string>

#include "ctp/seed_sets.h"
#include "ctp/tree.h"
#include "graph/graph.h"

namespace eql {

/// DOT graph of one result tree: seed nodes doubled, edges labeled, original
/// edge directions preserved.
std::string TreeToDot(const Graph& g, const SeedSets& seeds,
                      const TreeArena& arena, TreeId id,
                      const std::string& graph_name = "ctp_result");

/// DOT graph of the provenance DAG that produced `id`: one box per
/// provenance step (Init/Grow/Merge/Mo), arrows from children to parents.
std::string ProvenanceToDot(const TreeArena& arena, TreeId id, const Graph& g,
                            const std::string& graph_name = "provenance");

}  // namespace eql

#endif  // EQL_CTP_PROVENANCE_EXPORT_H_
