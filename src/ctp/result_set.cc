#include "ctp/result_set.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/string_util.h"

namespace eql {

CtpResultSet::CtpResultSet(const Graph* g, const SeedSets* seeds,
                           const TreeArena* arena, const CtpFilters* filters)
    : g_(g), seeds_(seeds), arena_(arena), filters_(filters) {}

bool CtpResultSet::ContainsEdgeSet(TreeId id) const {
  auto it = by_edge_hash_.find(arena_->Get(id).edge_set_hash);
  if (it == by_edge_hash_.end()) return false;
  for (size_t idx : it->second) {
    if (arena_->EdgeSetsEqual(results_[idx].tree, id, &eq_scratch_)) return true;
  }
  return false;
}

bool CtpResultSet::Add(TreeId id) {
  if (ContainsEdgeSet(id)) return false;
  const RootedTree& t = arena_->Get(id);

  CtpResult r;
  r.tree = id;
  r.seed_of_set.assign(seeds_->num_sets(), kNoNode);
  // Duplicate node mentions are harmless here: re-assigning the same seed to
  // the same slot is idempotent, and Def 2.8 (ii) guarantees one node per set.
  arena_->ForEachNodeDup(*g_, id, [&](NodeId n) {
    Bitset64 sig = seeds_->Signature(n);
    if (sig.Empty()) return;
    for (int i = 0; i < seeds_->num_sets(); ++i) {
      if (sig.Test(i)) r.seed_of_set[i] = n;
    }
  });
  // Universal sets (Section 4.9): the root stands in as their match.
  for (int i = 0; i < seeds_->num_sets(); ++i) {
    if (seeds_->IsUniversal(i)) r.seed_of_set[i] = t.root;
  }
  if (filters_->score != nullptr) {
    // With a decomposable sigma attached to the arena the partial sum is
    // already in the record; only the root term remains (score.h). The two
    // paths agree bit-for-bit (quantized deltas), so toggling the
    // accumulator never changes scores.
    const ScoreFunction* acc = arena_->score_accumulator();
    r.score = acc != nullptr ? t.score_acc + acc->RootTerm(*g_, t.root)
                             : filters_->score->Score(*g_, *seeds_, *arena_, id);
  }
  if (track_k_ > 0) {
    if (static_cast<int>(kth_heap_.size()) < track_k_) {
      kth_heap_.push(r.score);
    } else if (r.score > kth_heap_.top()) {
      kth_heap_.pop();
      kth_heap_.push(r.score);
    }
  }
  std::vector<size_t>& chain = by_edge_hash_[t.edge_set_hash];
  const size_t chain_before = chain.capacity();
  chain.push_back(results_.size());
  pool_bytes_ += (chain.capacity() - chain_before) * sizeof(size_t) +
                 r.seed_of_set.capacity() * sizeof(NodeId);
  results_.push_back(std::move(r));
  if (on_result_ && !on_result_(*arena_, results_.back())) stop_requested_ = true;
  return true;
}

double CtpResultSet::KthBestScore() const {
  if (track_k_ <= 0 || static_cast<int>(kth_heap_.size()) < track_k_) {
    return -std::numeric_limits<double>::infinity();
  }
  return kth_heap_.top();
}

void CtpResultSet::FinalizeTopK() {
  if (filters_->score == nullptr || filters_->top_k <= 0) return;
  const size_t k =
      std::min(results_.size(), static_cast<size_t>(filters_->top_k));
  // O(n log k): partially sort an index vector under (score desc, insertion
  // index asc) — exactly the prefix a stable descending sort would yield, so
  // tie-break order is unchanged from the full-sort implementation.
  std::vector<uint32_t> idx(results_.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](uint32_t a, uint32_t b) {
                      if (results_[a].score != results_[b].score) {
                        return results_[a].score > results_[b].score;
                      }
                      return a < b;
                    });
  std::vector<CtpResult> kept;
  kept.reserve(k);
  for (size_t i = 0; i < k; ++i) kept.push_back(std::move(results_[idx[i]]));
  results_ = std::move(kept);
  // The hash index is stale after truncation; rebuild, and recompute the
  // byte tracking from scratch (cold path, O(n)).
  by_edge_hash_.clear();
  pool_bytes_ = 0;
  for (size_t i = 0; i < results_.size(); ++i) {
    by_edge_hash_[arena_->Get(results_[i].tree).edge_set_hash].push_back(i);
    pool_bytes_ += results_[i].seed_of_set.capacity() * sizeof(NodeId);
  }
  for (const auto& [hash, chain] : by_edge_hash_) {
    pool_bytes_ += chain.capacity() * sizeof(size_t);
  }
}

std::vector<std::vector<EdgeId>> CtpResultSet::EdgeSets() const {
  std::vector<std::vector<EdgeId>> out;
  out.reserve(results_.size());
  for (const auto& r : results_) out.push_back(arena_->EdgeSet(r.tree));
  return out;
}

}  // namespace eql
