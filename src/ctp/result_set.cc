#include "ctp/result_set.h"

#include <algorithm>

#include "util/string_util.h"

namespace eql {

CtpResultSet::CtpResultSet(const Graph* g, const SeedSets* seeds,
                           const TreeArena* arena, const CtpFilters* filters)
    : g_(g), seeds_(seeds), arena_(arena), filters_(filters) {}

bool CtpResultSet::ContainsEdgeSet(TreeId id) const {
  auto it = by_edge_hash_.find(arena_->Get(id).edge_set_hash);
  if (it == by_edge_hash_.end()) return false;
  for (size_t idx : it->second) {
    if (arena_->EdgeSetsEqual(results_[idx].tree, id, &eq_scratch_)) return true;
  }
  return false;
}

bool CtpResultSet::Add(TreeId id) {
  if (ContainsEdgeSet(id)) return false;
  const RootedTree& t = arena_->Get(id);

  CtpResult r;
  r.tree = id;
  r.seed_of_set.assign(seeds_->num_sets(), kNoNode);
  // Duplicate node mentions are harmless here: re-assigning the same seed to
  // the same slot is idempotent, and Def 2.8 (ii) guarantees one node per set.
  arena_->ForEachNodeDup(*g_, id, [&](NodeId n) {
    Bitset64 sig = seeds_->Signature(n);
    if (sig.Empty()) return;
    for (int i = 0; i < seeds_->num_sets(); ++i) {
      if (sig.Test(i)) r.seed_of_set[i] = n;
    }
  });
  // Universal sets (Section 4.9): the root stands in as their match.
  for (int i = 0; i < seeds_->num_sets(); ++i) {
    if (seeds_->IsUniversal(i)) r.seed_of_set[i] = t.root;
  }
  if (filters_->score != nullptr) {
    r.score = filters_->score->Score(*g_, *seeds_, *arena_, id);
  }
  by_edge_hash_[t.edge_set_hash].push_back(results_.size());
  results_.push_back(std::move(r));
  return true;
}

void CtpResultSet::FinalizeTopK() {
  if (filters_->score == nullptr || filters_->top_k <= 0) return;
  std::stable_sort(results_.begin(), results_.end(),
                   [](const CtpResult& a, const CtpResult& b) {
                     return a.score > b.score;
                   });
  if (results_.size() > static_cast<size_t>(filters_->top_k)) {
    results_.resize(static_cast<size_t>(filters_->top_k));
  }
  // The hash index is stale after truncation; rebuild.
  by_edge_hash_.clear();
  for (size_t i = 0; i < results_.size(); ++i) {
    by_edge_hash_[arena_->Get(results_[i].tree).edge_set_hash].push_back(i);
  }
}

std::vector<std::vector<EdgeId>> CtpResultSet::EdgeSets() const {
  std::vector<std::vector<EdgeId>> out;
  out.reserve(results_.size());
  for (const auto& r : results_) out.push_back(arena_->EdgeSet(r.tree));
  return out;
}

}  // namespace eql
