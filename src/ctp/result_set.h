// Accumulates CTP results: (s_1, ..., s_m, t) tuples (Definition 2.8),
// deduplicated by edge set, optionally scored and truncated to TOP k.
#ifndef EQL_CTP_RESULT_SET_H_
#define EQL_CTP_RESULT_SET_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ctp/filters.h"
#include "ctp/seed_sets.h"
#include "ctp/tree.h"
#include "util/epoch.h"

namespace eql {

/// One CTP result tuple. `seed_of_set[i]` is the tree node in S_i (kNoNode
/// for universal sets, which any tree node matches — Section 4.9).
struct CtpResult {
  TreeId tree = kNoTree;
  std::vector<NodeId> seed_of_set;
  double score = 0;
};

/// Streaming emission hook: called with each result the instant its edge set
/// is accepted (post-dedup, pre-TOP-k). Return false to request that the
/// producing search stop — the result itself is still kept, so an early-
/// stopped run holds exactly the prefix a full run would have produced.
/// Only meaningful when no TOP-k truncation is attached: FinalizeTopK
/// reorders, so hooked searches must be run without TOP k (the engine's
/// streaming path enforces this).
using ResultHook = std::function<bool(const TreeArena&, const CtpResult&)>;

/// Result accumulator with edge-set dedup and TOP-k maintenance.
///
/// Different provenances (or differently-rooted trees) of the same edge set
/// must produce one result: "the root is meaningless in a CTP result, which
/// is simply a set of edges" (§4.4).
class CtpResultSet {
 public:
  /// `filters` supplies score/top_k; may outlive nothing (copied fields).
  CtpResultSet(const Graph* g, const SeedSets* seeds, const TreeArena* arena,
               const CtpFilters* filters);

  /// Adds the tree if its edge set is new; returns true if added. The score
  /// is read from the arena's incremental accumulator when one is attached
  /// (TreeArena::SetScoreAccumulator), avoiding the O(|T|) recomputation.
  bool Add(TreeId id);

  /// Number of distinct results kept (after TOP-k truncation).
  size_t size() const { return results_.size(); }
  bool empty() const { return results_.empty(); }

  /// Results, in insertion order; with TOP k, call FinalizeTopK() first to
  /// sort by descending score and truncate.
  const std::vector<CtpResult>& results() const { return results_; }

  /// Applies TOP-k: keeps the k best by score (desc), ties broken by
  /// insertion order (the order a stable descending sort would produce).
  /// O(n log k) via a partial sort of k, not a full sort of n.
  void FinalizeTopK();

  /// Enables k-th-best tracking for the search's TOP-k bound pruning
  /// (ctp/gam.h). Must be called before the first Add; k > 0.
  void TrackKthBest(int k) { track_k_ = k; }

  /// The k-th best score among the results added so far, or -infinity while
  /// fewer than k are held (or tracking is off). A candidate whose score
  /// upper bound is strictly below this value can never enter the final
  /// TOP-k window.
  double KthBestScore() const;

  /// Installs the streaming emission hook (see ResultHook above). Must be
  /// set before the first Add.
  void SetOnResult(ResultHook hook) { on_result_ = std::move(hook); }

  /// True once the hook returned false; the search polls this after Add and
  /// winds down with stats.cancelled.
  bool stop_requested() const { return stop_requested_; }

  /// True if the edge set of tree `id` was already reported.
  bool ContainsEdgeSet(TreeId id) const;

  /// All result edge sets, each as a sorted EdgeId vector (for test oracles).
  std::vector<std::vector<EdgeId>> EdgeSets() const;

  /// Heap bytes held by the accumulated results: capacity-accurate for the
  /// flat storage (result vector, per-result seed vectors, hash-index
  /// vectors — their growth is tracked in O(1) by Add/FinalizeTopK) and a
  /// fixed per-entry estimate for the unordered_map node overhead. O(1);
  /// polled by the resource governor (ctp/gam.h).
  size_t MemoryBytes() const {
    // Estimated allocator cost of one unordered_map node: the key/value
    // pair, a next pointer, and a bucket slot.
    constexpr size_t kMapNodeEstimate =
        sizeof(std::pair<const uint64_t, std::vector<size_t>>) + 2 * sizeof(void*);
    return results_.capacity() * sizeof(CtpResult) + pool_bytes_ +
           by_edge_hash_.size() * kMapNodeEstimate + eq_scratch_.MemoryBytes();
  }

 private:
  const Graph* g_;
  const SeedSets* seeds_;
  const TreeArena* arena_;
  const CtpFilters* filters_;
  std::vector<CtpResult> results_;
  std::unordered_map<uint64_t, std::vector<size_t>> by_edge_hash_;
  /// Bytes in per-result seed vectors + hash-index vectors (see MemoryBytes).
  size_t pool_bytes_ = 0;
  mutable EpochSet eq_scratch_;
  /// Min-heap of the best track_k_ scores seen (top = the k-th best).
  std::priority_queue<double, std::vector<double>, std::greater<double>> kth_heap_;
  int track_k_ = 0;
  ResultHook on_result_;
  bool stop_requested_ = false;
};

}  // namespace eql

#endif  // EQL_CTP_RESULT_SET_H_
