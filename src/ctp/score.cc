#include "ctp/score.h"

#include <cmath>
#include <unordered_set>

namespace eql {

double DegreePenaltyScore::Score(const Graph& g, const SeedSets&,
                                 const TreeArena& arena, TreeId id) const {
  double penalty = 0;
  for (NodeId n : arena.NodeSet(g, id)) penalty += std::log2(1.0 + g.Degree(n));
  return -penalty;
}

double LabelDiversityScore::Score(const Graph& g, const SeedSets&,
                                  const TreeArena& arena, TreeId id) const {
  std::unordered_set<StrId> labels;
  arena.ForEachEdge(id, [&](EdgeId e) { labels.insert(g.EdgeLabelId(e)); });
  return static_cast<double>(labels.size());
}

double RootDegreeScore::Score(const Graph& g, const SeedSets&,
                              const TreeArena& arena, TreeId id) const {
  const RootedTree& t = arena.Get(id);
  return -static_cast<double>(t.NumEdges()) -
         lambda_ * std::log2(1.0 + g.Degree(t.root));
}

std::unique_ptr<ScoreFunction> CreateScoreFunction(const std::string& name) {
  if (name == "edge_count") return std::make_unique<EdgeCountScore>();
  if (name == "degree_penalty") return std::make_unique<DegreePenaltyScore>();
  if (name == "label_diversity") return std::make_unique<LabelDiversityScore>();
  if (name == "root_degree") return std::make_unique<RootDegreeScore>();
  return nullptr;
}

}  // namespace eql
