#include "ctp/score.h"

#include <cmath>
#include <unordered_set>

namespace eql {

double DegreePenaltyScore::Score(const Graph& g, const SeedSets&,
                                 const TreeArena& arena, TreeId id) const {
  // When the arena maintains this very sigma, the partial sum is the score
  // (RootTerm is identically 0) — Score() sits on the ScoreGuidedOrder hot
  // path, so don't re-walk what the records already hold.
  if (arena.score_accumulator() == this) return arena.Get(id).score_acc;
  // Quantized node deltas (score.h) make this sum equal to the incremental
  // accumulator bit-for-bit despite the different summation order; the edge
  // deltas are identically 0, so no provenance edge walk.
  double sum = 0;
  for (NodeId n : arena.NodeSet(g, id)) sum += NodeDelta(g, n);
  return sum;
}

double LabelDiversityScore::Score(const Graph& g, const SeedSets&,
                                  const TreeArena& arena, TreeId id) const {
  std::unordered_set<StrId> labels;
  arena.ForEachEdge(id, [&](EdgeId e) { labels.insert(g.EdgeLabelId(e)); });
  return static_cast<double>(labels.size());
}

double RootDegreeScore::Score(const Graph& g, const SeedSets&,
                              const TreeArena& arena, TreeId id) const {
  // Closed form, O(1): the edge-delta sum is exactly -|T| (see
  // EdgeCountScore), and the root term is added last in every path.
  const RootedTree& t = arena.Get(id);
  return -static_cast<double>(t.NumEdges()) + RootTerm(g, t.root);
}

std::unique_ptr<ScoreFunction> CreateScoreFunction(const std::string& name) {
  if (name == "edge_count") return std::make_unique<EdgeCountScore>();
  if (name == "degree_penalty") return std::make_unique<DegreePenaltyScore>();
  if (name == "label_diversity") return std::make_unique<LabelDiversityScore>();
  if (name == "root_degree") return std::make_unique<RootDegreeScore>();
  return nullptr;
}

}  // namespace eql
