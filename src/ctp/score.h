// Score functions sigma for ranking CTP results (requirement R2, SCORE/TOP k).
//
// The paper's central language decision is that connection search is
// *orthogonal* to scoring: any sigma may be attached to a CTP, results carry
// sigma(t), and TOP k keeps the k best. The search algorithms never rely on
// score properties for pruning; a score may merely bias the exploration
// order (see search_order.h), which is sound because MoLESP's completeness
// guarantees hold for every execution order (§4.8).
#ifndef EQL_CTP_SCORE_H_
#define EQL_CTP_SCORE_H_

#include <memory>
#include <string>

#include "ctp/seed_sets.h"
#include "ctp/tree.h"
#include "graph/graph.h"


namespace eql {

/// Assigns each tree a real score; higher is better (Section 2).
class ScoreFunction {
 public:
  virtual ~ScoreFunction() = default;
  virtual double Score(const Graph& g, const SeedSets& seeds,
                       const TreeArena& arena, TreeId id) const = 0;
  virtual std::string Name() const = 0;
};

/// sigma = -|edges|: smaller trees are better. The default, matching the
/// "smallest results first" exploration the paper uses in its experiments.
class EdgeCountScore : public ScoreFunction {
 public:
  double Score(const Graph&, const SeedSets&, const TreeArena& arena,
               TreeId id) const override {
    return -static_cast<double>(arena.Get(id).NumEdges());
  }
  std::string Name() const override { return "edge_count"; }
};

/// sigma = -sum(log2(1 + deg(n))): penalizes trees passing through hubs.
/// Mirrors the introduction's journalism example, where the smallest tree
/// (through the "country" hub) is not the interesting one.
class DegreePenaltyScore : public ScoreFunction {
 public:
  double Score(const Graph& g, const SeedSets&, const TreeArena& arena,
               TreeId id) const override;
  std::string Name() const override { return "degree_penalty"; }
};

/// sigma = number of distinct edge labels: favors semantically rich trees.
class LabelDiversityScore : public ScoreFunction {
 public:
  double Score(const Graph& g, const SeedSets&, const TreeArena& arena,
               TreeId id) const override;
  std::string Name() const override { return "label_diversity"; }
};

/// BANKS-style: sigma = -|edges| - lambda * log2(1 + deg(root)).
class RootDegreeScore : public ScoreFunction {
 public:
  explicit RootDegreeScore(double lambda = 1.0) : lambda_(lambda) {}
  double Score(const Graph& g, const SeedSets&, const TreeArena& arena,
               TreeId id) const override;
  std::string Name() const override { return "root_degree"; }

 private:
  double lambda_;
};

/// Looks up a score function by name ("edge_count", "degree_penalty",
/// "label_diversity", "root_degree"); nullptr for unknown names.
std::unique_ptr<ScoreFunction> CreateScoreFunction(const std::string& name);

}  // namespace eql

#endif  // EQL_CTP_SCORE_H_
