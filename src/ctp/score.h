// Score functions sigma for ranking CTP results (requirement R2, SCORE/TOP k).
//
// The paper's central language decision is that connection search is
// *orthogonal* to scoring: any sigma may be attached to a CTP, results carry
// sigma(t), and TOP k keeps the k best. The search algorithms never rely on
// score properties for correctness; a score may merely bias the exploration
// order (see search_order.h), which is sound because MoLESP's completeness
// guarantees hold for every execution order (§4.8).
//
// Decomposable sigmas: most practical scores decompose over the tree as
//
//   sigma(t) = sum_{n in nodes(t)} NodeDelta(n)
//            + sum_{e in edges(t)} EdgeDelta(e)
//            + RootTerm(root(t))
//
// (IsEdgeAdditive() opts in). The tree arena then maintains the node+edge
// partial sum *incrementally* in every RootedTree record, like the XOR
// edge-set hash: Init seeds NodeDelta(n), Grow adds one node and one edge
// delta, Merge adds the operand sums and un-counts the shared root — O(1)
// per constructor, no O(|T|) walk at result emission (ctp/tree.h). To make
// the incremental sum bit-identical to a from-scratch recomputation despite
// the different association order, irrational per-node terms are snapped to
// the 2^-20 grid by QuantizeDelta: sums of exact multiples of 2^-20 are
// associative in double up to ~2^33, far beyond any tree size here.
//
// When additionally every delta and the root term are <= 0
// (HasNonPositiveDeltas()), sigma is anti-monotone under Grow/Merge: any
// tree derived from t scores at most t's partial sum. That is the soundness
// condition the TOP-k bound pruning in GamSearch relies on (ctp/gam.h).
#ifndef EQL_CTP_SCORE_H_
#define EQL_CTP_SCORE_H_

#include <cmath>
#include <memory>
#include <string>

#include "ctp/seed_sets.h"
#include "ctp/tree.h"
#include "graph/graph.h"


namespace eql {

/// Snaps a score delta onto the 2^-20 grid so that sums of deltas are exact
/// in double regardless of summation order (see the header comment).
inline double QuantizeDelta(double v) { return std::round(v * 1048576.0) / 1048576.0; }

/// Assigns each tree a real score; higher is better (Section 2).
class ScoreFunction {
 public:
  virtual ~ScoreFunction() = default;
  virtual double Score(const Graph& g, const SeedSets& seeds,
                       const TreeArena& arena, TreeId id) const = 0;
  virtual std::string Name() const = 0;

  // ---- optional decomposable interface (header comment) ----

  /// True if sigma decomposes into per-node/per-edge deltas plus a root
  /// term, with Score() == the decomposed sum bit-for-bit. Enables the O(1)
  /// incremental accumulator in TreeArena.
  virtual bool IsEdgeAdditive() const { return false; }
  /// Contribution of node `n` to any tree containing it.
  virtual double NodeDelta(const Graph& g, NodeId n) const {
    (void)g, (void)n;
    return 0;
  }
  /// Contribution of edge `e` to any tree containing it.
  virtual double EdgeDelta(const Graph& g, EdgeId e) const {
    (void)g, (void)e;
    return 0;
  }
  /// Root-dependent term added once, outside the incremental sum.
  virtual double RootTerm(const Graph& g, NodeId root) const {
    (void)g, (void)root;
    return 0;
  }
  /// True if every NodeDelta/EdgeDelta/RootTerm is <= 0 for this graph —
  /// sigma then never increases along Grow/Merge, which makes TOP-k bound
  /// pruning sound (ctp/gam.h). Only meaningful when IsEdgeAdditive().
  virtual bool HasNonPositiveDeltas() const { return false; }
};

/// sigma = -|edges|: smaller trees are better. The default, matching the
/// "smallest results first" exploration the paper uses in its experiments.
class EdgeCountScore : public ScoreFunction {
 public:
  double Score(const Graph&, const SeedSets&, const TreeArena& arena,
               TreeId id) const override {
    // Closed form, O(1): a sum of |T| exact -1.0 terms is -|T| bit-for-bit,
    // so this matches the incremental accumulator. Score() sits on hot
    // paths (ScoreGuidedOrder prices every new tree) — don't walk the tree.
    return -static_cast<double>(arena.Get(id).NumEdges());
  }
  std::string Name() const override { return "edge_count"; }
  bool IsEdgeAdditive() const override { return true; }
  double EdgeDelta(const Graph&, EdgeId) const override { return -1.0; }
  bool HasNonPositiveDeltas() const override { return true; }
};

/// sigma = -sum(log2(1 + deg(n))): penalizes trees passing through hubs.
/// Mirrors the introduction's journalism example, where the smallest tree
/// (through the "country" hub) is not the interesting one. Node terms are
/// quantized (QuantizeDelta) so the incremental sum is order-independent.
class DegreePenaltyScore : public ScoreFunction {
 public:
  double Score(const Graph& g, const SeedSets&, const TreeArena& arena,
               TreeId id) const override;
  std::string Name() const override { return "degree_penalty"; }
  bool IsEdgeAdditive() const override { return true; }
  double NodeDelta(const Graph& g, NodeId n) const override {
    return -QuantizeDelta(std::log2(1.0 + g.Degree(n)));
  }
  bool HasNonPositiveDeltas() const override { return true; }
};

/// sigma = number of distinct edge labels: favors semantically rich trees.
/// Not decomposable (distinctness is a whole-tree property): results pay the
/// O(|T|) recomputation, and bound pruning never engages for it.
class LabelDiversityScore : public ScoreFunction {
 public:
  double Score(const Graph& g, const SeedSets&, const TreeArena& arena,
               TreeId id) const override;
  std::string Name() const override { return "label_diversity"; }
};

/// BANKS-style: sigma = -|edges| - lambda * log2(1 + deg(root)).
class RootDegreeScore : public ScoreFunction {
 public:
  explicit RootDegreeScore(double lambda = 1.0) : lambda_(lambda) {}
  double Score(const Graph& g, const SeedSets&, const TreeArena& arena,
               TreeId id) const override;
  std::string Name() const override { return "root_degree"; }
  bool IsEdgeAdditive() const override { return true; }
  double EdgeDelta(const Graph&, EdgeId) const override { return -1.0; }
  double RootTerm(const Graph& g, NodeId root) const override {
    return -(lambda_ * std::log2(1.0 + g.Degree(root)));
  }
  bool HasNonPositiveDeltas() const override { return lambda_ >= 0; }

 private:
  double lambda_;
};

/// Looks up a score function by name ("edge_count", "degree_penalty",
/// "label_diversity", "root_degree"); nullptr for unknown names.
std::unique_ptr<ScoreFunction> CreateScoreFunction(const std::string& name);

}  // namespace eql

#endif  // EQL_CTP_SCORE_H_
