#include "ctp/search_order.h"

// Search orders are header-only; translation unit kept for symmetry and for
// future orders that need out-of-line state.
