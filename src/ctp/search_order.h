// Exploration orders for the GAM-family priority queue (Sections 4.2, 4.8).
//
// "In this work, to remain compatible with any score function, we study
// search algorithms regardless of (orthogonally to) the search order." The
// queue priority is therefore a strategy object. The experiments' default is
// smallest-tree-first with deterministic FIFO tie-breaks; property tests use
// seeded random tie-breaks to exercise many execution orders (completeness
// guarantees must hold for all of them); a score-guided order demonstrates
// Section 4.8's "favor the early production of higher-score results".
#ifndef EQL_CTP_SEARCH_ORDER_H_
#define EQL_CTP_SEARCH_ORDER_H_

#include <memory>
#include <string>

#include "ctp/score.h"
#include "ctp/tree.h"
#include "util/rng.h"

namespace eql {

/// Computes the priority of a (tree, edge) Grow opportunity; smaller pops
/// first. `tie` breaks equal priorities (filled by the engine: sequence
/// number for FIFO). Implementations may randomize via OnPush.
class SearchOrder {
 public:
  virtual ~SearchOrder() = default;

  /// Priority of growing tree `id` with `e`; lower is explored earlier.
  virtual double Priority(const Graph& g, const SeedSets& seeds,
                          const TreeArena& arena, TreeId id, EdgeId e) = 0;

  /// Tie-break value; default 0 lets the engine's FIFO sequence decide.
  virtual uint64_t TieBreak() { return 0; }

  /// True if Priority ignores the candidate edge (and is deterministic per
  /// tree) — the engine then computes it once per tree instead of once per
  /// incident edge. Opt-in: the default is false so a new edge-sensitive
  /// order cannot silently inherit the caching contract.
  virtual bool EdgeIndependent() const { return false; }

  virtual std::string Name() const = 0;
};

/// Smallest resulting tree first; FIFO among equals (the paper's setting:
/// "our exploration order favors the smallest trees, and breaks ties
/// arbitrarily").
class SmallestFirstOrder : public SearchOrder {
 public:
  double Priority(const Graph&, const SeedSets&, const TreeArena& arena,
                  TreeId id, EdgeId) override {
    return static_cast<double>(arena.Get(id).NumEdges() + 1);
  }
  bool EdgeIndependent() const override { return true; }
  std::string Name() const override { return "smallest_first"; }
};

/// Smallest-first with seeded random tie-breaks: used by property tests to
/// sample many execution orders for the same input.
class RandomTieBreakOrder : public SearchOrder {
 public:
  explicit RandomTieBreakOrder(uint64_t seed) : rng_(seed) {}
  double Priority(const Graph&, const SeedSets&, const TreeArena& arena,
                  TreeId id, EdgeId) override {
    return static_cast<double>(arena.Get(id).NumEdges() + 1);
  }
  uint64_t TieBreak() override { return rng_.Next(); }
  bool EdgeIndependent() const override { return true; }
  std::string Name() const override { return "random_tie"; }

 private:
  Rng rng_;
};

/// Fully random priorities: an adversarial order sampler (still terminates;
/// exercises the order-independence of the completeness guarantees).
class RandomOrder : public SearchOrder {
 public:
  explicit RandomOrder(uint64_t seed) : rng_(seed) {}
  double Priority(const Graph&, const SeedSets&, const TreeArena&, TreeId,
                  EdgeId) override {
    return rng_.NextDouble();
  }
  std::string Name() const override { return "random"; }

 private:
  Rng rng_;
};

/// Score-guided: explores partial trees with higher sigma first (heuristic
/// early production of good results; §4.8). Sound with MoLESP because its
/// guarantees are order-independent.
class ScoreGuidedOrder : public SearchOrder {
 public:
  explicit ScoreGuidedOrder(const ScoreFunction* score) : score_(score) {}
  double Priority(const Graph& g, const SeedSets& seeds, const TreeArena& arena,
                  TreeId id, EdgeId) override {
    return -score_->Score(g, seeds, arena, id);
  }
  bool EdgeIndependent() const override { return true; }
  std::string Name() const override { return "score_guided:" + score_->Name(); }

 private:
  const ScoreFunction* score_;
};

}  // namespace eql

#endif  // EQL_CTP_SEARCH_ORDER_H_
