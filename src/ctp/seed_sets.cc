#include "ctp/seed_sets.h"

#include <algorithm>

#include "util/string_util.h"

namespace eql {

Result<SeedSets> SeedSets::Make(const Graph& g, std::vector<std::vector<NodeId>> sets,
                                std::vector<bool> universal) {
  if (sets.empty()) return Status::InvalidArgument("a CTP needs at least one seed set");
  if (sets.size() > 64) {
    return Status::InvalidArgument(
        StrFormat("at most 64 seed sets are supported, got %zu", sets.size()));
  }
  if (universal.empty()) universal.assign(sets.size(), false);
  if (universal.size() != sets.size()) {
    return Status::InvalidArgument("universal flags arity mismatch");
  }

  SeedSets out;
  out.universal_ = universal;
  out.full_mask_ = Bitset64::FullMask(static_cast<int>(sets.size()));
  out.signature_.assign(g.NumNodes(), Bitset64());
  for (size_t i = 0; i < sets.size(); ++i) {
    auto& s = sets[i];
    if (universal[i]) {
      s.clear();
      out.has_universal_ = true;
    } else {
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      if (s.empty()) {
        return Status::InvalidArgument(
            StrFormat("seed set %zu is empty (no node matched its predicate)", i));
      }
      for (NodeId n : s) {
        if (n >= g.NumNodes()) {
          return Status::OutOfRange(StrFormat("seed node %u out of range", n));
        }
        out.signature_[n].Set(static_cast<int>(i));
      }
      out.required_mask_.Set(static_cast<int>(i));
    }
    out.sets_.push_back(std::move(s));
  }
  if (out.required_mask_.Empty()) {
    return Status::InvalidArgument("all seed sets are universal; nothing to search");
  }
  for (NodeId n = 0; n < out.signature_.size(); ++n) {
    if (!out.signature_[n].Empty()) out.all_seeds_.push_back(n);
  }
  return out;
}

}  // namespace eql
