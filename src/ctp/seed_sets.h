// Seed sets S_1..S_m of a CTP (Definition 2.8) with per-node signatures.
//
// A node's *signature* is the bitset of seed sets it belongs to; sat(t) of a
// tree (Observation 1) is the union of its nodes' signatures. Universal sets
// (an S_i equal to N, all graph nodes — Section 4.9) are flagged rather than
// materialized: they contribute no signature bits and are excluded from the
// mask a result must cover, because any node of the tree matches them.
#ifndef EQL_CTP_SEED_SETS_H_
#define EQL_CTP_SEED_SETS_H_

#include <vector>

#include "graph/graph.h"
#include "util/bitset64.h"
#include "util/status.h"

namespace eql {

/// Immutable collection of m seed sets over one graph. m must be in [1, 64].
class SeedSets {
 public:
  /// Builds seed sets; `sets[i]` lists the nodes of S_i (ignored and allowed
  /// empty when `universal[i]`). Duplicate nodes inside one set are deduped.
  static Result<SeedSets> Make(const Graph& g, std::vector<std::vector<NodeId>> sets,
                               std::vector<bool> universal = {});

  /// Convenience for tests/examples: no universal sets.
  static Result<SeedSets> Of(const Graph& g, std::vector<std::vector<NodeId>> sets) {
    return Make(g, std::move(sets));
  }

  int num_sets() const { return static_cast<int>(sets_.size()); }

  /// Nodes of S_i; empty for universal sets.
  const std::vector<NodeId>& Set(int i) const { return sets_[i]; }

  bool IsUniversal(int i) const { return universal_[i]; }
  bool HasUniversal() const { return has_universal_; }

  /// Bitset of sets that node n seeds (universal sets contribute no bits).
  /// A dense per-NodeId array: the innermost Grow2 loop probes this per
  /// incident edge, so the lookup must be one indexed load, not a hash probe.
  Bitset64 Signature(NodeId n) const { return signature_[n]; }
  bool IsSeed(NodeId n) const { return !signature_[n].Empty(); }

  /// All m sets.
  Bitset64 FullMask() const { return full_mask_; }
  /// The sets a result tree must explicitly cover (non-universal ones).
  Bitset64 RequiredMask() const { return required_mask_; }

  /// All distinct seed nodes across non-universal sets.
  const std::vector<NodeId>& AllSeeds() const { return all_seeds_; }

  /// Total seed count of set i (0 for universal).
  size_t SetSize(int i) const { return sets_[i].size(); }

 private:
  SeedSets() = default;

  std::vector<std::vector<NodeId>> sets_;
  std::vector<bool> universal_;
  std::vector<Bitset64> signature_;  ///< dense, one slot per graph node
  std::vector<NodeId> all_seeds_;
  Bitset64 full_mask_;
  Bitset64 required_mask_;
  bool has_universal_ = false;
};

}  // namespace eql

#endif  // EQL_CTP_SEED_SETS_H_
