// Search instrumentation: the counters behind Figures 10-12 (runtimes and
// "number of provenances" series) and the tests' effort assertions.
#ifndef EQL_CTP_STATS_H_
#define EQL_CTP_STATS_H_

#include <cstdint>
#include <string>

namespace eql {

/// How a search (or a whole query) ended, in increasing severity. A partial
/// result is still well-formed under every non-kOk outcome — the search
/// finalizes what it has (TOP-k sort, dedup) before reporting; only
/// *coverage* is reduced. Severity drives aggregation: a query spanning
/// several searches reports the worst outcome among them.
enum class SearchOutcome : uint8_t {
  kOk = 0,            ///< ran to its natural end (incl. LIMIT/max_trees cutoffs)
  kTimeout = 1,       ///< TIMEOUT / query deadline expired
  kCancelled = 2,     ///< caller cancel flag or sink early-stop
  kMemoryBudget = 3,  ///< memory_budget_bytes exceeded
  kFaultInjected = 4, ///< a FaultInjector site fired (tests only)
};

inline const char* SearchOutcomeName(SearchOutcome o) {
  switch (o) {
    case SearchOutcome::kOk: return "ok";
    case SearchOutcome::kTimeout: return "timeout";
    case SearchOutcome::kCancelled: return "cancelled";
    case SearchOutcome::kMemoryBudget: return "memory_budget";
    case SearchOutcome::kFaultInjected: return "fault_injected";
  }
  return "unknown";
}

/// The worse (higher-severity) of two outcomes.
inline SearchOutcome CombineOutcomes(SearchOutcome a, SearchOutcome b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

/// Counters filled by one CTP search run. "Provenances" are *kept* trees
/// (those that pass isNew and enter the history), matching Fig. 11d-f.
struct SearchStats {
  uint64_t init_trees = 0;
  uint64_t grow_attempts = 0;    ///< (tree, edge) pairs popped
  uint64_t merge_attempts = 0;   ///< Merge partner pairs examined
  uint64_t trees_built = 0;      ///< provenances kept (Init+Grow+Merge+Mo)
  uint64_t mo_trees = 0;         ///< of which Mo re-rootings (§4.5)
  uint64_t trees_pruned = 0;     ///< provenances discarded by isNew
  uint64_t lesp_spared = 0;      ///< trees kept only thanks to LESP's provision
  uint64_t bound_pruned = 0;     ///< grows/merges skipped by TOP-k bound pruning
  uint64_t queue_pushed = 0;
  uint64_t results_found = 0;    ///< distinct result edge sets
  uint64_t duplicate_results = 0;
  uint64_t minimizations = 0;    ///< BFT-family result minimizations

  double elapsed_ms = 0;
  /// Wall-clock ms from search start to the first emitted result; < 0 when
  /// the search produced none. Drives the streaming API's time-to-first-
  /// result telemetry (eval/engine.h, CtpRunInfo).
  double first_result_ms = -1;
  bool timed_out = false;
  bool budget_exhausted = false;  ///< max_trees or limit reached
  bool cancelled = false;  ///< stopped by the caller (sink early-stop / cancel flag)
  bool memory_budget_hit = false;  ///< CtpFilters::memory_budget_bytes exceeded
  bool fault_injected = false;     ///< a FaultInjector site fired (tests only)
  bool complete = false;          ///< search space exhausted before any cutoff

  /// Peak of the search's own heap accounting observed at the budget polls
  /// (0 when no memory budget was set — the accounting only runs when
  /// someone will read it).
  uint64_t memory_bytes_peak = 0;

  /// Structured outcome: the worst condition that ended the run. LIMIT and
  /// max_trees cutoffs stay kOk (they are requested truncations; `complete`
  /// still reports false for them).
  SearchOutcome Outcome() const {
    if (fault_injected) return SearchOutcome::kFaultInjected;
    if (memory_budget_hit) return SearchOutcome::kMemoryBudget;
    if (cancelled) return SearchOutcome::kCancelled;
    if (timed_out) return SearchOutcome::kTimeout;
    return SearchOutcome::kOk;
  }

  std::string ToString() const {
    std::string s = "trees=" + std::to_string(trees_built) +
                    " (mo=" + std::to_string(mo_trees) +
                    ") pruned=" + std::to_string(trees_pruned) +
                    " results=" + std::to_string(results_found) +
                    " ms=" + std::to_string(elapsed_ms);
    if (timed_out) s += " TIMEOUT";
    if (budget_exhausted) s += " BUDGET";
    if (cancelled) s += " CANCELLED";
    if (memory_budget_hit) s += " MEMORY";
    if (fault_injected) s += " FAULT";
    if (complete) s += " complete";
    return s;
  }
};

}  // namespace eql

#endif  // EQL_CTP_STATS_H_
