// Search instrumentation: the counters behind Figures 10-12 (runtimes and
// "number of provenances" series) and the tests' effort assertions.
#ifndef EQL_CTP_STATS_H_
#define EQL_CTP_STATS_H_

#include <cstdint>
#include <string>

namespace eql {

/// Counters filled by one CTP search run. "Provenances" are *kept* trees
/// (those that pass isNew and enter the history), matching Fig. 11d-f.
struct SearchStats {
  uint64_t init_trees = 0;
  uint64_t grow_attempts = 0;    ///< (tree, edge) pairs popped
  uint64_t merge_attempts = 0;   ///< Merge partner pairs examined
  uint64_t trees_built = 0;      ///< provenances kept (Init+Grow+Merge+Mo)
  uint64_t mo_trees = 0;         ///< of which Mo re-rootings (§4.5)
  uint64_t trees_pruned = 0;     ///< provenances discarded by isNew
  uint64_t lesp_spared = 0;      ///< trees kept only thanks to LESP's provision
  uint64_t bound_pruned = 0;     ///< grows/merges skipped by TOP-k bound pruning
  uint64_t queue_pushed = 0;
  uint64_t results_found = 0;    ///< distinct result edge sets
  uint64_t duplicate_results = 0;
  uint64_t minimizations = 0;    ///< BFT-family result minimizations

  double elapsed_ms = 0;
  /// Wall-clock ms from search start to the first emitted result; < 0 when
  /// the search produced none. Drives the streaming API's time-to-first-
  /// result telemetry (eval/engine.h, CtpRunInfo).
  double first_result_ms = -1;
  bool timed_out = false;
  bool budget_exhausted = false;  ///< max_trees or limit reached
  bool cancelled = false;  ///< stopped by the caller (sink early-stop / cancel flag)
  bool complete = false;          ///< search space exhausted before any cutoff

  std::string ToString() const {
    std::string s = "trees=" + std::to_string(trees_built) +
                    " (mo=" + std::to_string(mo_trees) +
                    ") pruned=" + std::to_string(trees_pruned) +
                    " results=" + std::to_string(results_found) +
                    " ms=" + std::to_string(elapsed_ms);
    if (timed_out) s += " TIMEOUT";
    if (budget_exhausted) s += " BUDGET";
    if (cancelled) s += " CANCELLED";
    if (complete) s += " complete";
    return s;
  }
};

}  // namespace eql

#endif  // EQL_CTP_STATS_H_
