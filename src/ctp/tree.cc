#include "ctp/tree.h"

#include <algorithm>

#include "ctp/score.h"
#include "util/string_util.h"

namespace eql {

TreeId TreeArena::MakeInit(NodeId n, const SeedSets& seeds) {
  RootedTree t;
  t.root = n;
  t.sat = seeds.Signature(n);
  t.kind = ProvKind::kInit;
  t.is_rooted_path = true;  // the trivial (n, n)-rooted path
  t.path_seed = n;
  t.edge_set_hash = 0;  // empty set
  if (acc_score_ != nullptr) t.score_acc = acc_score_->NodeDelta(*acc_graph_, n);
  return Push(t);
}

TreeId TreeArena::MakeGrow(TreeId id, EdgeId e, NodeId new_root,
                           const SeedSets& seeds) {
  const RootedTree& t = trees_[id];
  RootedTree out;
  out.root = new_root;
  out.sat = t.sat | seeds.Signature(new_root);
  out.kind = ProvKind::kGrow;
  out.child1 = id;
  out.grow_edge = e;
  out.num_edges = t.num_edges + 1;
  out.edge_set_hash = t.edge_set_hash ^ HashSetElem(e);
  // Grow adds exactly node new_root and edge e; quantized deltas (score.h)
  // keep this sum exact in any association order.
  if (acc_score_ != nullptr) {
    out.score_acc = t.score_acc + acc_score_->NodeDelta(*acc_graph_, new_root) +
                    acc_score_->EdgeDelta(*acc_graph_, e);
  }
  out.mo_tainted = t.mo_tainted;
  // A Grow chain from Init(s) remains an (n, s)-rooted path as long as it
  // never touches another seed node (Def 4.4).
  out.is_rooted_path = t.is_rooted_path && seeds.Signature(new_root).Empty();
  out.path_seed = out.is_rooted_path ? t.path_seed : kNoNode;
  return Push(out);
}

TreeId TreeArena::MakeMerge(TreeId id1, TreeId id2, const SeedSets& seeds) {
  const RootedTree& t1 = trees_[id1];
  const RootedTree& t2 = trees_[id2];
  (void)seeds;
  RootedTree out;
  out.root = t1.root;
  out.sat = t1.sat | t2.sat;
  out.kind = ProvKind::kMerge;
  out.child1 = id1;
  out.child2 = id2;
  out.num_edges = t1.num_edges + t2.num_edges;
  // Merge1 guarantees edge-disjoint operands, so the set hash is the XOR.
  out.edge_set_hash = t1.edge_set_hash ^ t2.edge_set_hash;
  // Merge1 also guarantees the operands share exactly the root node, whose
  // delta both partial sums counted — subtract one copy.
  if (acc_score_ != nullptr) {
    out.score_acc = t1.score_acc + t2.score_acc -
                    acc_score_->NodeDelta(*acc_graph_, t1.root);
  }
  out.mo_tainted = t1.mo_tainted || t2.mo_tainted;
  return Push(out);
}

TreeId TreeArena::MakeMo(TreeId id, NodeId new_root) {
  const RootedTree& t = trees_[id];
  RootedTree out;
  out.root = new_root;
  out.sat = t.sat;
  out.kind = ProvKind::kMo;
  out.child1 = id;
  out.num_edges = t.num_edges;
  out.edge_set_hash = t.edge_set_hash;
  out.score_acc = t.score_acc;  // same nodes and edges, only the root moves
  out.mo_tainted = true;
  return Push(out);
}

TreeId TreeArena::MakeAdHocInPlace(NodeId root, std::vector<EdgeId>* edges, const Graph& g,
                            const SeedSets& seeds) {
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
  RootedTree out;
  out.root = root;
  out.kind = ProvKind::kExternal;
  out.ext_offset = static_cast<uint32_t>(ext_pool_.size());
  out.num_edges = static_cast<uint32_t>(edges->size());
  out.sat = seeds.Signature(root);
  for (EdgeId e : *edges) {
    out.edge_set_hash ^= HashSetElem(e);
    out.sat |= seeds.Signature(g.Source(e));
    out.sat |= seeds.Signature(g.Target(e));
  }
  if (acc_score_ != nullptr) {
    // External trees have no provenance to inherit a sum from; evaluate the
    // decomposition over the explicit parts (still exact: on-grid deltas).
    std::vector<NodeId> nodes;
    nodes.reserve(2 * edges->size() + 1);
    nodes.push_back(root);
    double sum = 0;
    for (EdgeId e : *edges) {
      sum += acc_score_->EdgeDelta(g, e);
      nodes.push_back(g.Source(e));
      nodes.push_back(g.Target(e));
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    for (NodeId n : nodes) sum += acc_score_->NodeDelta(g, n);
    out.score_acc = sum;
  }
  ext_pool_.insert(ext_pool_.end(), edges->begin(), edges->end());
  return Push(out);
}

std::vector<EdgeId> TreeArena::EdgeSet(TreeId id) const {
  std::vector<EdgeId> out;
  out.reserve(trees_[id].num_edges);
  ForEachEdge(id, [&](EdgeId e) { out.push_back(e); });
  std::sort(out.begin(), out.end());
  return out;
}

void TreeArena::AppendEdges(TreeId id, std::vector<EdgeId>* out) const {
  ForEachEdge(id, [&](EdgeId e) { out->push_back(e); });
}

std::vector<NodeId> TreeArena::NodeSet(const Graph& g, TreeId id) const {
  std::vector<NodeId> out;
  out.reserve(trees_[id].NumNodes());
  ForEachNodeDup(g, id, [&](NodeId n) { out.push_back(n); });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool TreeArena::ContainsNode(const Graph& g, TreeId id, NodeId n) const {
  TreeId cur = id;
  if (trees_[id].root == n) return true;
  while (cur != kNoTree) {
    const RootedTree& t = trees_[cur];
    switch (t.kind) {
      case ProvKind::kInit:
        return t.root == n;
      case ProvKind::kGrow:
        if (t.root == n || g.Source(t.grow_edge) == n || g.Target(t.grow_edge) == n) {
          return true;
        }
        cur = t.child1;
        break;
      case ProvKind::kMo:
        cur = t.child1;
        break;
      case ProvKind::kMerge:
        if (ContainsNode(g, t.child2, n)) return true;
        cur = t.child1;
        break;
      case ProvKind::kExternal:
        for (uint32_t i = 0; i < t.num_edges; ++i) {
          EdgeId e = ext_pool_[t.ext_offset + i];
          if (g.Source(e) == n || g.Target(e) == n) return true;
        }
        return t.root == n;
    }
  }
  return false;
}

bool TreeArena::SharesOnlyNode(const Graph& g, TreeId id,
                               const EpochSet& stamped_other, NodeId shared) const {
  // Walk this tree's nodes (duplicate mentions are fine: a repeated probe of
  // the same node gives the same verdict) and fail on any stamped node that
  // is not `shared`.
  if (trees_[id].root != shared && stamped_other.Contains(trees_[id].root)) {
    return false;
  }
  bool ok = true;
  ForEachEdge(id, [&](EdgeId e) {
    NodeId s = g.Source(e), d = g.Target(e);
    if (s != shared && stamped_other.Contains(s)) ok = false;
    if (d != shared && stamped_other.Contains(d)) ok = false;
  });
  return ok;
}

bool TreeArena::EdgeSetsEqual(TreeId a, TreeId b, EpochSet* scratch) const {
  const RootedTree& ta = trees_[a];
  const RootedTree& tb = trees_[b];
  if (ta.num_edges != tb.num_edges) return false;
  scratch->Clear();
  ForEachEdge(a, [&](EdgeId e) { scratch->Insert(e); });
  bool equal = true;
  // Edges within one tree are distinct, so membership of every edge of b in
  // a, plus equal cardinality, implies set equality.
  ForEachEdge(b, [&](EdgeId e) {
    if (!scratch->Contains(e)) equal = false;
  });
  return equal;
}

bool TreeArena::SharesOnlyRoot(const Graph& g, TreeId a, TreeId b,
                               NodeId shared_root) const {
  std::vector<NodeId> na = NodeSet(g, a);
  std::vector<NodeId> nb = NodeSet(g, b);
  size_t i = 0, j = 0;
  bool saw_root = false;
  while (i < na.size() && j < nb.size()) {
    if (na[i] < nb[j]) {
      ++i;
    } else if (na[i] > nb[j]) {
      ++j;
    } else {
      if (na[i] != shared_root) return false;
      saw_root = true;
      ++i;
      ++j;
    }
  }
  return saw_root;
}

std::string TreeArena::ProvenanceToString(TreeId id, const Graph& g) const {
  const RootedTree& t = trees_[id];
  switch (t.kind) {
    case ProvKind::kInit:
      return "Init(" + g.NodeLabel(t.root) + ")";
    case ProvKind::kGrow:
      return "Grow(" + ProvenanceToString(t.child1, g) + ",e" +
             std::to_string(t.grow_edge) + "->" + g.NodeLabel(t.root) + ")";
    case ProvKind::kMerge:
      return "Merge(" + ProvenanceToString(t.child1, g) + "," +
             ProvenanceToString(t.child2, g) + ")";
    case ProvKind::kMo:
      return "Mo(" + ProvenanceToString(t.child1, g) + "," + g.NodeLabel(t.root) +
             ")";
    case ProvKind::kExternal:
      return "External(" + g.NodeLabel(t.root) + ")";
  }
  return "?";
}

std::string TreeArena::TreeToString(TreeId id, const Graph& g) const {
  std::vector<EdgeId> edges = EdgeSet(id);
  std::string out = "root=" + g.NodeLabel(trees_[id].root) + " {";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) out += ", ";
    out += g.EdgeToString(edges[i]);
  }
  out += "}";
  return out;
}

bool RootReachesAllDirected(const Graph& g, const TreeArena& arena, TreeId id,
                            NodeId root) {
  const RootedTree& t = arena.Get(id);
  if (t.num_edges == 0) return true;
  std::vector<EdgeId> edges;
  edges.reserve(t.num_edges);
  arena.AppendEdges(id, &edges);
  return RootReachesAllDirected(g, edges, t.NumNodes(), root);
}

bool RootReachesAllDirected(const Graph& g, const std::vector<EdgeId>& edges,
                            size_t num_nodes, NodeId root) {
  if (edges.empty()) return true;
  // BFS over tree edges, respecting direction. Tree size is small, so a
  // simple frontier over the edge list suffices.
  std::vector<NodeId> frontier = {root};
  std::vector<NodeId> reached = {root};
  while (!frontier.empty()) {
    NodeId n = frontier.back();
    frontier.pop_back();
    for (EdgeId e : edges) {
      if (g.Source(e) != n) continue;
      NodeId to = g.Target(e);
      if (std::find(reached.begin(), reached.end(), to) == reached.end()) {
        reached.push_back(to);
        frontier.push_back(to);
      }
    }
  }
  return reached.size() == num_nodes;
}

Status VerifyTreeInvariants(const Graph& g, const SeedSets& seeds,
                            const TreeArena& arena, TreeId id,
                            bool require_minimal, bool allow_root_leaf) {
  const RootedTree& t = arena.Get(id);
  std::vector<EdgeId> edges = arena.EdgeSet(id);
  std::vector<NodeId> nodes = arena.NodeSet(g, id);
  if (nodes.empty()) return Status::Internal("tree has no nodes");
  if (std::adjacent_find(edges.begin(), edges.end()) != edges.end()) {
    return Status::Internal("edge multiset contains a duplicate");
  }
  if (edges.size() != t.num_edges) {
    return Status::Internal(StrFormat("num_edges=%u but %zu edges materialize",
                                      t.num_edges, edges.size()));
  }
  uint64_t hash = 0;
  for (EdgeId e : edges) hash ^= HashSetElem(e);
  if (hash != t.edge_set_hash) {
    return Status::Internal("incremental edge-set hash mismatch");
  }
  if (edges.size() + 1 != nodes.size()) {
    return Status::Internal(StrFormat("not a tree: %zu edges, %zu nodes",
                                      edges.size(), nodes.size()));
  }
  if (!std::binary_search(nodes.begin(), nodes.end(), t.root)) {
    return Status::Internal("root not in node set");
  }

  // Connectivity + degree census via union-find over the node set.
  std::vector<NodeId> parent(nodes.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<NodeId>(i);
  auto find = [&](NodeId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto index_of = [&](NodeId n) {
    return static_cast<NodeId>(
        std::lower_bound(nodes.begin(), nodes.end(), n) - nodes.begin());
  };
  std::vector<int> deg(nodes.size(), 0);
  for (EdgeId e : edges) {
    NodeId a = index_of(g.Source(e)), b = index_of(g.Target(e));
    if (a >= nodes.size() || b >= nodes.size() ||
        nodes[a] != g.Source(e) || nodes[b] != g.Target(e)) {
      return Status::Internal("edge endpoint outside node set");
    }
    ++deg[a];
    ++deg[b];
    NodeId ra = find(a), rb = find(b);
    if (ra == rb) return Status::Internal("edge set contains a cycle");
    parent[ra] = rb;
  }
  NodeId r0 = find(0);
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (find(static_cast<NodeId>(i)) != r0) return Status::Internal("tree disconnected");
  }

  // sat must equal the union of node signatures; one node per covered set.
  Bitset64 sat;
  Bitset64 overlap_check;
  for (NodeId n : nodes) {
    Bitset64 sig = seeds.Signature(n);
    if (sig.Intersects(overlap_check)) {
      return Status::Internal("two nodes from the same seed set (Def 2.8 (ii))");
    }
    overlap_check |= sig;
    sat |= sig;
  }
  if (!(sat == t.sat)) return Status::Internal("sat signature mismatch");

  if (require_minimal && nodes.size() > 1) {
    // (deg computed above; leaves are deg==1 nodes)
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (deg[i] != 1) continue;  // only leaves must be seeds (Observation 1)
      if (seeds.Signature(nodes[i]).Empty() &&
          !(allow_root_leaf && nodes[i] == t.root)) {
        return Status::Internal("non-seed leaf " + g.NodeLabel(nodes[i]) +
                                " (result not minimal)");
      }
    }
  }
  return Status::Ok();
}

}  // namespace eql
