#include "ctp/tree.h"

#include <algorithm>

#include "util/string_util.h"

namespace eql {

bool RootedTree::ContainsNode(NodeId n) const {
  return std::binary_search(nodes.begin(), nodes.end(), n);
}

bool RootedTree::ContainsEdge(EdgeId e) const {
  return std::binary_search(edges.begin(), edges.end(), e);
}

bool RootedTree::SharesOnlyRootWith(const RootedTree& other,
                                    NodeId shared_root) const {
  // Two-pointer sorted intersection; succeed iff it is exactly {shared_root}.
  size_t i = 0, j = 0;
  bool saw_root = false;
  while (i < nodes.size() && j < other.nodes.size()) {
    if (nodes[i] < other.nodes[j]) {
      ++i;
    } else if (nodes[i] > other.nodes[j]) {
      ++j;
    } else {
      if (nodes[i] != shared_root) return false;
      saw_root = true;
      ++i;
      ++j;
    }
  }
  return saw_root;
}

TreeId TreeArena::MakeInit(NodeId n, const SeedSets& seeds) {
  RootedTree t;
  t.root = n;
  t.sat = seeds.Signature(n);
  t.nodes = {n};
  t.kind = ProvKind::kInit;
  t.is_rooted_path = true;  // the trivial (n, n)-rooted path
  t.path_seed = n;
  t.edge_set_hash = HashIdVector(t.edges);
  return Push(std::move(t));
}

TreeId TreeArena::MakeGrow(TreeId id, EdgeId e, NodeId new_root,
                           const SeedSets& seeds) {
  const RootedTree& t = Get(id);
  RootedTree out;
  out.root = new_root;
  out.sat = t.sat | seeds.Signature(new_root);
  out.edges = t.edges;
  out.edges.insert(std::upper_bound(out.edges.begin(), out.edges.end(), e), e);
  out.nodes = t.nodes;
  out.nodes.insert(std::upper_bound(out.nodes.begin(), out.nodes.end(), new_root),
                   new_root);
  out.kind = ProvKind::kGrow;
  out.child1 = id;
  out.grow_edge = e;
  out.mo_tainted = t.mo_tainted;
  // A Grow chain from Init(s) remains an (n, s)-rooted path as long as it
  // never touches another seed node (Def 4.4).
  out.is_rooted_path = t.is_rooted_path && seeds.Signature(new_root).Empty();
  out.path_seed = out.is_rooted_path ? t.path_seed : kNoNode;
  out.edge_set_hash = HashIdVector(out.edges);
  return Push(std::move(out));
}

TreeId TreeArena::MakeMerge(TreeId id1, TreeId id2, const SeedSets& seeds) {
  const RootedTree& t1 = Get(id1);
  const RootedTree& t2 = Get(id2);
  (void)seeds;
  RootedTree out;
  out.root = t1.root;
  out.sat = t1.sat | t2.sat;
  out.edges.resize(t1.edges.size() + t2.edges.size());
  std::merge(t1.edges.begin(), t1.edges.end(), t2.edges.begin(), t2.edges.end(),
             out.edges.begin());
  out.nodes.reserve(t1.nodes.size() + t2.nodes.size() - 1);
  std::set_union(t1.nodes.begin(), t1.nodes.end(), t2.nodes.begin(), t2.nodes.end(),
                 std::back_inserter(out.nodes));
  out.kind = ProvKind::kMerge;
  out.child1 = id1;
  out.child2 = id2;
  out.mo_tainted = t1.mo_tainted || t2.mo_tainted;
  out.edge_set_hash = HashIdVector(out.edges);
  return Push(std::move(out));
}

TreeId TreeArena::MakeMo(TreeId id, NodeId new_root) {
  const RootedTree& t = Get(id);
  RootedTree out;
  out.root = new_root;
  out.sat = t.sat;
  out.edges = t.edges;
  out.nodes = t.nodes;
  out.kind = ProvKind::kMo;
  out.child1 = id;
  out.mo_tainted = true;
  out.edge_set_hash = t.edge_set_hash;
  return Push(std::move(out));
}

TreeId TreeArena::MakeAdHoc(NodeId root, std::vector<EdgeId> edges, const Graph& g,
                            const SeedSets& seeds) {
  RootedTree out;
  out.root = root;
  out.edges = std::move(edges);
  std::sort(out.edges.begin(), out.edges.end());
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()), out.edges.end());
  for (EdgeId e : out.edges) {
    out.nodes.push_back(g.Source(e));
    out.nodes.push_back(g.Target(e));
  }
  out.nodes.push_back(root);
  std::sort(out.nodes.begin(), out.nodes.end());
  out.nodes.erase(std::unique(out.nodes.begin(), out.nodes.end()), out.nodes.end());
  for (NodeId n : out.nodes) out.sat |= seeds.Signature(n);
  out.kind = ProvKind::kExternal;
  out.edge_set_hash = HashIdVector(out.edges);
  return Push(std::move(out));
}

std::string TreeArena::ProvenanceToString(TreeId id, const Graph& g) const {
  const RootedTree& t = Get(id);
  switch (t.kind) {
    case ProvKind::kInit:
      return "Init(" + g.NodeLabel(t.root) + ")";
    case ProvKind::kGrow:
      return "Grow(" + ProvenanceToString(t.child1, g) + ",e" +
             std::to_string(t.grow_edge) + "->" + g.NodeLabel(t.root) + ")";
    case ProvKind::kMerge:
      return "Merge(" + ProvenanceToString(t.child1, g) + "," +
             ProvenanceToString(t.child2, g) + ")";
    case ProvKind::kMo:
      return "Mo(" + ProvenanceToString(t.child1, g) + "," + g.NodeLabel(t.root) +
             ")";
    case ProvKind::kExternal:
      return "External(" + g.NodeLabel(t.root) + ")";
  }
  return "?";
}

std::string TreeArena::TreeToString(TreeId id, const Graph& g) const {
  const RootedTree& t = Get(id);
  std::string out = "root=" + g.NodeLabel(t.root) + " {";
  for (size_t i = 0; i < t.edges.size(); ++i) {
    if (i > 0) out += ", ";
    out += g.EdgeToString(t.edges[i]);
  }
  out += "}";
  return out;
}

bool RootReachesAllDirected(const Graph& g, const RootedTree& t, NodeId root) {
  if (t.nodes.size() <= 1) return true;
  // BFS over tree edges, respecting direction. Tree size is small, so a
  // simple frontier over the node set suffices.
  std::vector<NodeId> frontier = {root};
  std::vector<NodeId> reached = {root};
  while (!frontier.empty()) {
    NodeId n = frontier.back();
    frontier.pop_back();
    for (EdgeId e : t.edges) {
      if (g.Source(e) != n) continue;
      NodeId to = g.Target(e);
      if (std::find(reached.begin(), reached.end(), to) == reached.end()) {
        reached.push_back(to);
        frontier.push_back(to);
      }
    }
  }
  return reached.size() == t.nodes.size();
}

Status VerifyTreeInvariants(const Graph& g, const SeedSets& seeds,
                            const RootedTree& t, bool require_minimal,
                            bool allow_root_leaf) {
  if (t.nodes.empty()) return Status::Internal("tree has no nodes");
  if (!std::is_sorted(t.nodes.begin(), t.nodes.end()) ||
      std::adjacent_find(t.nodes.begin(), t.nodes.end()) != t.nodes.end()) {
    return Status::Internal("node set not sorted/unique");
  }
  if (!std::is_sorted(t.edges.begin(), t.edges.end()) ||
      std::adjacent_find(t.edges.begin(), t.edges.end()) != t.edges.end()) {
    return Status::Internal("edge set not sorted/unique");
  }
  if (t.edges.size() + 1 != t.nodes.size()) {
    return Status::Internal(StrFormat("not a tree: %zu edges, %zu nodes",
                                      t.edges.size(), t.nodes.size()));
  }
  if (!t.ContainsNode(t.root)) return Status::Internal("root not in node set");

  // Connectivity + degree census via union-find over the node set.
  std::vector<NodeId> parent(t.nodes.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<NodeId>(i);
  auto find = [&](NodeId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto index_of = [&](NodeId n) {
    return static_cast<NodeId>(
        std::lower_bound(t.nodes.begin(), t.nodes.end(), n) - t.nodes.begin());
  };
  std::vector<int> deg(t.nodes.size(), 0);
  for (EdgeId e : t.edges) {
    NodeId a = index_of(g.Source(e)), b = index_of(g.Target(e));
    if (a >= t.nodes.size() || b >= t.nodes.size() ||
        t.nodes[a] != g.Source(e) || t.nodes[b] != g.Target(e)) {
      return Status::Internal("edge endpoint outside node set");
    }
    ++deg[a];
    ++deg[b];
    NodeId ra = find(a), rb = find(b);
    if (ra == rb) return Status::Internal("edge set contains a cycle");
    parent[ra] = rb;
  }
  NodeId r0 = find(0);
  for (size_t i = 1; i < t.nodes.size(); ++i) {
    if (find(static_cast<NodeId>(i)) != r0) return Status::Internal("tree disconnected");
  }

  // sat must equal the union of node signatures; one node per covered set.
  Bitset64 sat;
  Bitset64 overlap_check;
  for (NodeId n : t.nodes) {
    Bitset64 sig = seeds.Signature(n);
    if (sig.Intersects(overlap_check)) {
      return Status::Internal("two nodes from the same seed set (Def 2.8 (ii))");
    }
    overlap_check |= sig;
    sat |= sig;
  }
  if (!(sat == t.sat)) return Status::Internal("sat signature mismatch");

  if (require_minimal && t.nodes.size() > 1) {
    // (deg computed above; leaves are deg==1 nodes)
    for (size_t i = 0; i < t.nodes.size(); ++i) {
      if (deg[i] != 1) continue;  // only leaves must be seeds (Observation 1)
      if (seeds.Signature(t.nodes[i]).Empty() &&
          !(allow_root_leaf && t.nodes[i] == t.root)) {
        return Status::Internal("non-seed leaf " + g.NodeLabel(t.nodes[i]) +
                                " (result not minimal)");
      }
    }
  }
  return Status::Ok();
}

}  // namespace eql
