// Rooted trees with provenance (Definitions 4.1, 4.2) and their arena.
//
// Trees are immutable once created and stored in a TreeArena; everything else
// (history, queues, result sets) refers to them by TreeId. A tree records:
//  * its sorted edge set (the value the CTP variable binds to, Def 2.8),
//  * its sorted node set (Grow1 and the Merge node-disjointness test),
//  * its root (GAM distinguishes a root; BFT trees carry a nominal root),
//  * sat(t), the signature of seed sets it covers (Observation 1),
//  * provenance: the Init/Grow/Merge/Mo formula that built it (Def 4.1, 4.5),
//  * whether the provenance contains Mo (Grow is disabled on those, §4.5),
//  * whether it is an (n, s)-rooted path (Def 4.4) and its seed endpoint,
//    maintained incrementally for LESP's seed-signature updates (§4.6).
#ifndef EQL_CTP_TREE_H_
#define EQL_CTP_TREE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ctp/seed_sets.h"
#include "graph/graph.h"
#include "util/bitset64.h"
#include "util/hash.h"

namespace eql {

using TreeId = uint32_t;
inline constexpr TreeId kNoTree = UINT32_MAX;

/// How a tree was produced (Def 4.1 plus MoESP's Mo, §4.5). kExternal marks
/// trees assembled outside the Grow/Merge calculus (BFT minimization results,
/// baseline outputs).
enum class ProvKind : uint8_t { kInit, kGrow, kMerge, kMo, kExternal };

/// An immutable rooted tree with provenance.
struct RootedTree {
  NodeId root = kNoNode;
  Bitset64 sat;
  std::vector<EdgeId> edges;  ///< sorted edge ids; the "edge set" (Def 4.2)
  std::vector<NodeId> nodes;  ///< sorted node ids

  ProvKind kind = ProvKind::kInit;
  TreeId child1 = kNoTree;  ///< Grow/Mo source, or Merge left operand
  TreeId child2 = kNoTree;  ///< Merge right operand
  EdgeId grow_edge = kNoEdge;

  /// True if any ancestor in the provenance is a Mo re-rooting; Grow is
  /// disabled on such trees (§4.5: "Grow is disabled on any tree whose
  /// provenance includes Mo").
  bool mo_tainted = false;

  /// True if this tree is an (root, path_seed)-rooted path (Def 4.4): a pure
  /// Grow chain from Init(path_seed) containing no other seed node.
  bool is_rooted_path = false;
  NodeId path_seed = kNoNode;

  uint64_t edge_set_hash = 0;  ///< HashIdVector(edges), cached

  size_t NumEdges() const { return edges.size(); }
  bool ContainsNode(NodeId n) const;
  bool ContainsEdge(EdgeId e) const;

  /// True if `other` shares exactly the node `root` with this tree — the
  /// Merge1 precondition (§4.2) given both are rooted at `root`.
  bool SharesOnlyRootWith(const RootedTree& other, NodeId shared_root) const;
};

/// Append-only store of all trees built during one search.
class TreeArena {
 public:
  const RootedTree& Get(TreeId id) const { return trees_[id]; }
  size_t size() const { return trees_.size(); }

  /// Builds Init(n) (Def 4.1 case 1).
  TreeId MakeInit(NodeId n, const SeedSets& seeds);

  /// Builds Grow(t, e) rooted at new_root (Def 4.1 case 2). The caller has
  /// already validated Grow1/Grow2.
  TreeId MakeGrow(TreeId t, EdgeId e, NodeId new_root, const SeedSets& seeds);

  /// Builds Merge(t1, t2) (Def 4.1 case 3); both must share only their root.
  TreeId MakeMerge(TreeId t1, TreeId t2, const SeedSets& seeds);

  /// Builds Mo(t, new_root): same edges/nodes, re-rooted at a seed (§4.5).
  TreeId MakeMo(TreeId t, NodeId new_root);

  /// Builds a tree from explicit parts (BFT minimization products, baseline
  /// outputs). `edges` need not be sorted; nodes and sat are derived.
  TreeId MakeAdHoc(NodeId root, std::vector<EdgeId> edges, const Graph& g,
                   const SeedSets& seeds);

  /// Removes the most recently created tree; only valid when nothing else
  /// references it (the engines pop provenances rejected by isNew).
  void PopLast() { trees_.pop_back(); }

  /// Renders the provenance formula, e.g. "Merge(Grow(Init(B),e3),Init(C))".
  std::string ProvenanceToString(TreeId id, const Graph& g) const;

  /// Renders the edge set as "{A-l->B, ...}" for messages and examples.
  std::string TreeToString(TreeId id, const Graph& g) const;

  /// Drops all trees (arena reuse between runs).
  void Clear() { trees_.clear(); }

 private:
  TreeId Push(RootedTree&& t) {
    trees_.push_back(std::move(t));
    return static_cast<TreeId>(trees_.size() - 1);
  }
  std::deque<RootedTree> trees_;  // deque: stable references across growth
};

/// Sanity-checks that `t`'s edge set forms a tree over its node set, that it
/// is minimal in the sense of Def 2.8 (every leaf is a seed; at most one node
/// per non-universal seed set; if `allow_root_leaf` the root may be a
/// non-seed leaf — used for universal seed sets), and that sat matches.
/// Returns an error describing the first violated invariant.
Status VerifyTreeInvariants(const Graph& g, const SeedSets& seeds,
                            const RootedTree& t, bool require_minimal,
                            bool allow_root_leaf = false);

/// True if `root` reaches every node of `t` following tree edges in their
/// stored direction — the UNI filter invariant (Section 2, UNI).
bool RootReachesAllDirected(const Graph& g, const RootedTree& t, NodeId root);

}  // namespace eql

#endif  // EQL_CTP_TREE_H_
