// Rooted trees with provenance (Definitions 4.1, 4.2) and their arena.
//
// Trees are immutable once created and stored in a TreeArena; everything else
// (history, queues, result sets) refers to them by TreeId.
//
// Representation: a tree is a *parent-pointer record*, not an owned edge
// vector. Grow stores only {base tree, added edge, new root}; Merge stores
// its two operands; Mo stores its base and the new root. The edge set of a
// tree is the disjoint union along its provenance DAG and materializes
// lazily (result emission, tests, export) by walking child pointers — so
// building a tree is an O(1) allocation-free append to a flat arena vector
// instead of an O(|T|) vector copy per Grow/Merge. Each record carries:
//  * its root (GAM distinguishes a root; BFT trees carry a nominal root),
//  * sat(t), the signature of seed sets it covers (Observation 1),
//  * the edge count (node count is always edge count + 1),
//  * an incremental edge-set hash (XOR of per-edge terms; see HashSetElem)
//    maintained in O(1) per constructor and used by the search history,
//  * when a decomposable score function is attached to the arena
//    (SetScoreAccumulator), the running node+edge delta sum of sigma —
//    maintained in O(1) per constructor exactly like the hash, so result
//    emission reads the score without an O(|T|) walk (ctp/score.h),
//  * provenance: the Init/Grow/Merge/Mo formula that built it (Def 4.1, 4.5),
//  * whether the provenance contains Mo (Grow is disabled on those, §4.5),
//  * whether it is an (n, s)-rooted path (Def 4.4) and its seed endpoint,
//    maintained incrementally for LESP's seed-signature updates (§4.6).
//
// Trees built outside the calculus (BFT minimization products, baseline
// outputs) store their edges in a flat pool inside the arena.
#ifndef EQL_CTP_TREE_H_
#define EQL_CTP_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ctp/seed_sets.h"
#include "graph/graph.h"
#include "util/bitset64.h"
#include "util/epoch.h"
#include "util/hash.h"

namespace eql {

class ScoreFunction;

using TreeId = uint32_t;
inline constexpr TreeId kNoTree = UINT32_MAX;

/// How a tree was produced (Def 4.1 plus MoESP's Mo, §4.5). kExternal marks
/// trees assembled outside the Grow/Merge calculus (BFT minimization results,
/// baseline outputs).
enum class ProvKind : uint8_t { kInit, kGrow, kMerge, kMo, kExternal };

/// An immutable rooted tree in parent-pointer form. Trivially copyable —
/// copy it out of the arena when holding it across arena growth.
struct RootedTree {
  NodeId root = kNoNode;
  Bitset64 sat;

  TreeId child1 = kNoTree;  ///< Grow/Mo base, or Merge left operand
  TreeId child2 = kNoTree;  ///< Merge right operand
  EdgeId grow_edge = kNoEdge;  ///< the edge a Grow added

  uint32_t num_edges = 0;   ///< |edge set|; the node count is num_edges + 1
  uint32_t ext_offset = 0;  ///< kExternal only: offset into the arena edge pool

  /// Incremental edge-set hash: XOR over HashSetElem(e) of the set (0 for
  /// Init trees, which all share the empty edge set).
  uint64_t edge_set_hash = 0;

  /// Incremental partial score: sum of NodeDelta over nodes plus EdgeDelta
  /// over edges of the attached decomposable sigma (ctp/score.h); the full
  /// score is score_acc + RootTerm(root). 0 when no accumulator is attached.
  double score_acc = 0;

  ProvKind kind = ProvKind::kInit;

  /// True if any ancestor in the provenance is a Mo re-rooting; Grow is
  /// disabled on such trees (§4.5: "Grow is disabled on any tree whose
  /// provenance includes Mo").
  bool mo_tainted = false;

  /// True if this tree is an (root, path_seed)-rooted path (Def 4.4): a pure
  /// Grow chain from Init(path_seed) containing no other seed node.
  bool is_rooted_path = false;
  NodeId path_seed = kNoNode;

  size_t NumEdges() const { return num_edges; }
  size_t NumNodes() const { return static_cast<size_t>(num_edges) + 1; }
};

/// Append-only store of all trees built during one search. The store is a
/// flat vector: Make* may invalidate references returned by Get(), so hold
/// trees by value (they are small) across arena growth.
class TreeArena {
 public:
  const RootedTree& Get(TreeId id) const { return trees_[id]; }
  size_t size() const { return trees_.size(); }

  /// Heap bytes owned (capacity-based), the unit the resource governor
  /// budgets against (ctp/gam.h). O(1).
  size_t MemoryBytes() const {
    return trees_.capacity() * sizeof(RootedTree) +
           ext_pool_.capacity() * sizeof(EdgeId);
  }

  /// Attaches a decomposable score function (score.h): every Make* from now
  /// on maintains RootedTree::score_acc incrementally. `score` must satisfy
  /// IsEdgeAdditive(); both pointers must outlive the attachment, which ends
  /// at the next Clear() or SetScoreAccumulator(nullptr, nullptr) — the
  /// engines re-attach per search.
  void SetScoreAccumulator(const Graph* g, const ScoreFunction* score) {
    assert((g == nullptr) == (score == nullptr));
    acc_graph_ = g;
    acc_score_ = score;
  }
  /// The attached score function; nullptr when score_acc is not maintained.
  const ScoreFunction* score_accumulator() const { return acc_score_; }

  /// Builds Init(n) (Def 4.1 case 1).
  TreeId MakeInit(NodeId n, const SeedSets& seeds);

  /// Builds Grow(t, e) rooted at new_root (Def 4.1 case 2). The caller has
  /// already validated Grow1/Grow2.
  TreeId MakeGrow(TreeId t, EdgeId e, NodeId new_root, const SeedSets& seeds);

  /// Builds Merge(t1, t2) (Def 4.1 case 3); both must share only their root.
  TreeId MakeMerge(TreeId t1, TreeId t2, const SeedSets& seeds);

  /// Builds Mo(t, new_root): same edges/nodes, re-rooted at a seed (§4.5).
  TreeId MakeMo(TreeId t, NodeId new_root);

  /// Builds a tree from explicit parts (BFT minimization products, baseline
  /// outputs). `edges` need not be sorted; duplicates are dropped and nodes
  /// and sat are derived.
  TreeId MakeAdHoc(NodeId root, std::vector<EdgeId> edges, const Graph& g,
                   const SeedSets& seeds) {
    return MakeAdHocInPlace(root, &edges, g, seeds);
  }

  /// In-place variant for callers with a reusable buffer: sorts/uniques
  /// `*edges` and copies it into the arena pool, with no intermediate
  /// allocation (BFT pays this once per minimization). A distinct name, not
  /// an overload: a braced `{}`/`{0}` argument would overload-resolve to a
  /// null vector pointer.
  TreeId MakeAdHocInPlace(NodeId root, std::vector<EdgeId>* edges, const Graph& g,
                          const SeedSets& seeds);

  /// Removes the most recently created tree; only valid when nothing else
  /// references it (the engines pop provenances rejected by isNew).
  void PopLast() {
    if (trees_.back().kind == ProvKind::kExternal) {
      ext_pool_.resize(trees_.back().ext_offset);
    }
    trees_.pop_back();
  }

  // ---- lazy materialization ------------------------------------------------

  /// Calls `fn(EdgeId)` exactly once per edge of the tree, in provenance
  /// order (not sorted). O(|T|) with no allocation for pure Grow chains;
  /// recursion depth is bounded by the number of Merge steps.
  template <typename Fn>
  void ForEachEdge(TreeId id, Fn&& fn) const {
    TreeId cur = id;
    while (cur != kNoTree) {
      const RootedTree& t = trees_[cur];
      switch (t.kind) {
        case ProvKind::kInit:
          return;
        case ProvKind::kGrow:
          fn(t.grow_edge);
          cur = t.child1;
          break;
        case ProvKind::kMo:
          cur = t.child1;
          break;
        case ProvKind::kMerge:
          ForEachEdge(t.child2, fn);
          cur = t.child1;
          break;
        case ProvKind::kExternal:
          for (uint32_t i = 0; i < t.num_edges; ++i) fn(ext_pool_[t.ext_offset + i]);
          return;
      }
    }
  }

  /// Calls `fn(NodeId)` for the root and both endpoints of every edge; a
  /// node with k incident tree edges is visited up to k (+1) times — callers
  /// dedup with an EpochSet or sort-unique when they need the set.
  template <typename Fn>
  void ForEachNodeDup(const Graph& g, TreeId id, Fn&& fn) const {
    fn(trees_[id].root);
    ForEachEdge(id, [&](EdgeId e) {
      fn(g.Source(e));
      fn(g.Target(e));
    });
  }

  /// The edge set, sorted ascending (the value the CTP variable binds to,
  /// Def 2.8). Materializes; use only off the hot path.
  std::vector<EdgeId> EdgeSet(TreeId id) const;

  /// The node set, sorted ascending. Materializes; off the hot path only.
  std::vector<NodeId> NodeSet(const Graph& g, TreeId id) const;

  /// Appends the edge set, unsorted, to `*out` (reusable-buffer variant).
  void AppendEdges(TreeId id, std::vector<EdgeId>* out) const;

  /// True if node `n` is in the tree. O(|T|) provenance walk with early
  /// exit; hot paths stamp the node set once instead (StampNodes).
  bool ContainsNode(const Graph& g, TreeId id, NodeId n) const;

  /// Clears `*set` and inserts every node of the tree. One O(|T|) walk; the
  /// engines' Grow1/Merge1 tests then run in O(1) per probe.
  void StampNodes(const Graph& g, TreeId id, EpochSet* set) const {
    set->Clear();
    ForEachNodeDup(g, id, [&](NodeId n) { set->Insert(n); });
  }

  /// True if the only node of tree `id` stamped in `stamped_other` is
  /// `shared` (Merge1 against a pre-stamped partner; `shared` must be a node
  /// of both trees).
  bool SharesOnlyNode(const Graph& g, TreeId id, const EpochSet& stamped_other,
                      NodeId shared) const;

  /// True iff both trees have exactly the same edge set. Exact (used to
  /// resolve hash collisions); `scratch` is clobbered.
  bool EdgeSetsEqual(TreeId a, TreeId b, EpochSet* scratch) const;

  /// Convenience Merge1 check for tests and cold paths: the trees share
  /// exactly the node `shared_root`.
  bool SharesOnlyRoot(const Graph& g, TreeId a, TreeId b, NodeId shared_root) const;

  /// Renders the provenance formula, e.g. "Merge(Grow(Init(B),e3),Init(C))".
  std::string ProvenanceToString(TreeId id, const Graph& g) const;

  /// Renders the edge set as "{A-l->B, ...}" for messages and examples.
  std::string TreeToString(TreeId id, const Graph& g) const;

  /// Drops all trees and detaches the score accumulator (arena reuse
  /// between runs; the accumulator's lifetime is one search).
  void Clear() {
    trees_.clear();
    ext_pool_.clear();
    acc_graph_ = nullptr;
    acc_score_ = nullptr;
  }

 private:
  TreeId Push(const RootedTree& t) {
    trees_.push_back(t);
    return static_cast<TreeId>(trees_.size() - 1);
  }

  std::vector<RootedTree> trees_;
  std::vector<EdgeId> ext_pool_;  ///< edge storage for kExternal trees
  const Graph* acc_graph_ = nullptr;
  const ScoreFunction* acc_score_ = nullptr;  ///< not owned; see setter
};

/// Sanity-checks that the tree's edge set forms a tree over its node set,
/// that it is minimal in the sense of Def 2.8 (every leaf is a seed; at most
/// one node per non-universal seed set; if `allow_root_leaf` the root may be
/// a non-seed leaf — used for universal seed sets), that sat matches, and
/// that the incremental edge-set hash matches a from-scratch recomputation.
/// Returns an error describing the first violated invariant.
Status VerifyTreeInvariants(const Graph& g, const SeedSets& seeds,
                            const TreeArena& arena, TreeId id,
                            bool require_minimal, bool allow_root_leaf = false);

/// True if `root` reaches every node of the tree following tree edges in
/// their stored direction — the UNI filter invariant (Section 2, UNI).
bool RootReachesAllDirected(const Graph& g, const TreeArena& arena, TreeId id,
                            NodeId root);

/// Same check over a pre-materialized edge list (`num_nodes` = edges + 1);
/// callers probing many candidate roots of one tree materialize once.
bool RootReachesAllDirected(const Graph& g, const std::vector<EdgeId>& edges,
                            size_t num_nodes, NodeId root);

}  // namespace eql

#endif  // EQL_CTP_TREE_H_
