#include "ctp/view.h"

#include <algorithm>

#include "ctp/filters.h"  // NormalizeLabelSet: the one canonical label form

namespace eql {

CompiledCtpView::CompiledCtpView(const Graph& g,
                                 std::optional<std::vector<StrId>> allowed_labels,
                                 ViewDirection direction)
    : g_(&g),
      graph_uid_(g.uid()),
      direction_(direction),
      materialized_(allowed_labels.has_value()),
      labels_(NormalizeLabelSet(std::move(allowed_labels))) {
  assert(g.finalized());
  if (!materialized_) return;  // pass-through: Edges() delegates to the graph

  const std::vector<StrId>& allowed = *labels_;
  auto label_ok = [&](EdgeId e) {
    return std::binary_search(allowed.begin(), allowed.end(), g.EdgeLabelId(e));
  };

  // Two passes over the edge list, exactly like Graph::Finalize: count, then
  // fill in ascending EdgeId order so every per-node span stays sorted the
  // way the graph CSRs are. Self-loop conventions mirror the source CSRs
  // (once in kBoth as a forward entry; as the dst entry in kBackward; as the
  // src entry in kForward), so a search sees the same entry sequence it
  // would after filtering the corresponding graph span.
  const size_t nn = g.NumNodes();
  const EdgeId ne = g.EdgeIdBound();
  std::vector<uint32_t> cnt(nn, 0);
  for (EdgeId e = 0; e < ne; ++e) {
    if (!label_ok(e)) continue;
    const NodeId s = g.Source(e), d = g.Target(e);
    switch (direction_) {
      case ViewDirection::kBoth:
        ++cnt[s];
        if (d != s) ++cnt[d];
        break;
      case ViewDirection::kBackward:
        ++cnt[d];
        break;
      case ViewDirection::kForward:
        ++cnt[s];
        break;
    }
  }
  offset_.assign(nn + 1, 0);
  for (size_t n = 0; n < nn; ++n) offset_[n + 1] = offset_[n] + cnt[n];
  list_.resize(offset_[nn]);
  std::vector<uint32_t> pos(offset_.begin(), offset_.end() - 1);
  for (EdgeId e = 0; e < ne; ++e) {
    if (!label_ok(e)) continue;
    const NodeId s = g.Source(e), d = g.Target(e);
    switch (direction_) {
      case ViewDirection::kBoth:
        list_[pos[s]++] = IncidentEdge{e, d, true};
        if (d != s) list_[pos[d]++] = IncidentEdge{e, s, false};
        break;
      case ViewDirection::kBackward:
        list_[pos[d]++] = IncidentEdge{e, s, false};
        break;
      case ViewDirection::kForward:
        list_[pos[s]++] = IncidentEdge{e, d, true};
        break;
    }
  }
}

bool CompiledCtpView::Matches(const Graph& g,
                              const std::optional<std::vector<StrId>>& labels,
                              ViewDirection direction) const {
  if (graph_uid_ != g.uid() || direction_ != direction) return false;
  if (labels_.has_value() != labels.has_value()) return false;
  if (!labels_) return true;
  return *labels_ == *NormalizeLabelSet(labels);
}

std::shared_ptr<const CompiledCtpView> ViewCache::Get(
    const Graph& g, const std::optional<std::vector<StrId>>& allowed_labels,
    ViewDirection direction) {
  if (!allowed_labels) {
    // Pass-through views delegate to the graph's CSRs; constructing one is
    // free and caching one would pin a Graph pointer (header).
    return std::make_shared<const CompiledCtpView>(g, std::nullopt, direction);
  }
  std::optional<std::vector<StrId>> key = NormalizeLabelSet(allowed_labels);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++tick_;
    if (Entry* e = FindEntryLocked(g.uid(), direction, *key)) {
      e->last_used = tick_;
      ++hits_;
      return e->view;
    }
  }
  // Compile outside the lock: the O(V+E) build must not serialize hits for
  // unrelated keys on a shared executor cache. Concurrent misses on the
  // same key may compile twice; the double-check below keeps one.
  auto view =
      std::make_shared<const CompiledCtpView>(g, std::move(key), direction);
  std::lock_guard<std::mutex> lk(mu_);
  ++misses_;
  if (Entry* e = FindEntryLocked(g.uid(), direction, *view->labels_)) {
    e->last_used = tick_;
    return e->view;  // another thread won the race; drop our copy
  }
  // A single view beyond the whole-cache storage cap is served uncached —
  // otherwise the eviction loop below would empty the cache and pin the
  // oversized view anyway.
  if (view->entries_kept() > kMaxTotalCsrEntries) return view;
  while (!entries_.empty() &&
         (entries_.size() >= kMaxEntries ||
          total_csr_entries_ + view->entries_kept() > kMaxTotalCsrEntries)) {
    auto oldest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
    total_csr_entries_ -= oldest->view->entries_kept();
    entries_.erase(oldest);
  }
  total_csr_entries_ += view->entries_kept();
  entries_.push_back(Entry{g.uid(), direction, *view->labels_, tick_, view});
  return view;
}

ViewCache::Entry* ViewCache::FindEntryLocked(uint64_t graph_uid,
                                             ViewDirection direction,
                                             const std::vector<StrId>& labels) {
  for (Entry& e : entries_) {
    if (e.graph_uid == graph_uid && e.direction == direction &&
        e.labels == labels) {
      return &e;
    }
  }
  return nullptr;
}

ViewCache::Stats ViewCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return Stats{hits_, misses_, entries_.size()};
}

void ViewCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
  total_csr_entries_ = 0;
}

}  // namespace eql
