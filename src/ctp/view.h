// Compiled CTP views (Section 4.8, taken to its logical end): the static
// predicates of a CTP — its LABEL set and its traversal direction — are
// compiled *once* into a filter-specialized adjacency CSR, so the search
// engines' innermost loops iterate a dense span of pre-qualified edges with
// zero per-edge predicate work. This is the filtered-projection trick of
// ranked keyword-search engines (BANKS-style systems, RAQ; see PAPERS.md):
// precompute query-specific adjacency before enumeration instead of
// re-filtering the full incidence list at every expansion.
//
//  * A CompiledCtpView holds, per node, the incident edges that pass the
//    LABEL filter, laid out for one traversal direction: kBoth mirrors
//    Graph::Incident (undirected connection search), kBackward mirrors
//    Graph::InEdges (the UNI filter's backward expansion), kForward mirrors
//    Graph::OutEdges (directed path baselines). Per-node lists keep the
//    graph CSR's ascending-EdgeId order, so a search on the view performs
//    byte-identical work to the filter-in-the-loop path — just without the
//    skipped entries and per-edge label/direction tests.
//  * With no LABEL set the view is a zero-copy pass-through onto the graph's
//    own CSRs (building it costs nothing; Edges() delegates).
//  * A ViewCache deduplicates views by (graph identity, direction,
//    normalized label set) behind a mutex and hands out shared_ptrs, so a
//    batch of queries over the same label vocabulary — or the chunks and
//    concurrent CTPs of one parallel run — compile the view once and share
//    it read-only (CtpExecutor and EqlEngine each keep one).
#ifndef EQL_CTP_VIEW_H_
#define EQL_CTP_VIEW_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace eql {

struct CtpFilters;

/// Which incident edges of a node the view exposes.
enum class ViewDirection : uint8_t {
  kBoth,      ///< all incident edges (Graph::Incident; undirected search)
  kBackward,  ///< edges entering the node (Graph::InEdges; UNI expansion)
  kForward,   ///< edges leaving the node (Graph::OutEdges; directed paths)
};

/// An immutable filter-specialized adjacency view over one finalized graph.
/// Thread-safe for concurrent reads; the graph must outlive the view.
class CompiledCtpView {
 public:
  /// Compiles the view. `allowed_labels` follows CtpFilters semantics:
  /// nullopt admits every label (pass-through mode); a set — including the
  /// empty set — materializes the filtered CSR. The labels need not be
  /// normalized; the view normalizes (sorts + dedups) its own copy.
  CompiledCtpView(const Graph& g, std::optional<std::vector<StrId>> allowed_labels,
                  ViewDirection direction);

  /// The pre-qualified incident edges of `n` for this view's direction, in
  /// ascending EdgeId order (the same order the graph CSRs yield).
  std::span<const IncidentEdge> Edges(NodeId n) const {
    if (!materialized_) {
      switch (direction_) {
        case ViewDirection::kBoth:
          return g_->Incident(n);
        case ViewDirection::kBackward:
          return g_->InEdges(n);
        case ViewDirection::kForward:
          return g_->OutEdges(n);
      }
    }
    return {list_.data() + offset_[n], offset_[n + 1] - offset_[n]};
  }

  ViewDirection direction() const { return direction_; }
  /// False in pass-through mode (no LABEL set: nothing to specialize).
  bool materialized() const { return materialized_; }
  /// Entries kept across all nodes (an edge contributes one entry per
  /// qualifying endpoint); 0 for pass-through views.
  size_t entries_kept() const { return list_.size(); }

  /// True if this view serves searches over `g` with `labels`/`direction` —
  /// the compatibility contract the engines assert in debug builds.
  bool Matches(const Graph& g, const std::optional<std::vector<StrId>>& labels,
               ViewDirection direction) const;

  /// The direction a GAM/BFT search with these filters needs.
  static ViewDirection DirectionFor(bool unidirectional) {
    return unidirectional ? ViewDirection::kBackward : ViewDirection::kBoth;
  }

 private:
  friend class ViewCache;

  const Graph* g_;
  uint64_t graph_uid_;
  ViewDirection direction_;
  bool materialized_;
  std::optional<std::vector<StrId>> labels_;  ///< normalized
  std::vector<uint32_t> offset_;
  std::vector<IncidentEdge> list_;
};

/// Borrow-or-compile: the caller-supplied view when given (compatibility
/// assert-checked in debug), else a locally compiled one placed in `*local`.
/// The dance every baseline that accepts an optional external view needs
/// (qgstp, path_enum); a pass-through compile costs nothing.
inline const CompiledCtpView* ViewOrLocal(
    const Graph& g, const CompiledCtpView* view,
    const std::optional<std::vector<StrId>>& allowed_labels, ViewDirection dir,
    std::optional<CompiledCtpView>* local) {
  if (view != nullptr) {
    assert(view->Matches(g, allowed_labels, dir));
    return view;
  }
  local->emplace(g, allowed_labels, dir);
  return &**local;
}

/// A small, internally-synchronized cache of compiled views. Pass-through
/// views (no LABEL set) are constructed on the fly and never stored — they
/// carry no state worth caching and would otherwise pin a dangling Graph
/// pointer past the graph's lifetime. Materialized views own their CSR and
/// never dereference the graph after construction, so a cached entry is safe
/// even if its graph has been destroyed (it can only be *returned* again for
/// a graph with the same identity).
class ViewCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
  };

  /// Returns the cached view for the key, compiling and inserting on miss.
  std::shared_ptr<const CompiledCtpView> Get(
      const Graph& g, const std::optional<std::vector<StrId>>& allowed_labels,
      ViewDirection direction);

  Stats stats() const;
  void Clear();

 private:
  struct Entry {
    uint64_t graph_uid;
    ViewDirection direction;
    std::vector<StrId> labels;  ///< normalized
    uint64_t last_used;
    std::shared_ptr<const CompiledCtpView> view;
  };

  /// The entry for the key, or nullptr. Caller holds mu_. The single
  /// definition of key equality for both sides of Get's double-check.
  Entry* FindEntryLocked(uint64_t graph_uid, ViewDirection direction,
                         const std::vector<StrId>& labels);

  /// Bounds on retained views, enforced by LRU eviction: a count cap (far
  /// above any realistic live label-vocabulary size) and a total-CSR-entry
  /// cap (~192 MB of IncidentEdge storage) so a long-lived executor that
  /// outlives many large graphs — whose uids can never hit again — cannot
  /// pin unbounded dead view storage.
  static constexpr size_t kMaxEntries = 128;
  static constexpr size_t kMaxTotalCsrEntries = 16u << 20;

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  size_t total_csr_entries_ = 0;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace eql

#endif  // EQL_CTP_VIEW_H_
