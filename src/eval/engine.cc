#include "eval/engine.h"

#include <algorithm>

#include "query/parser.h"
#include "query/validator.h"
#include "storage/bgp_eval.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace eql {

EqlEngine::EqlEngine(const Graph& g, EngineOptions options)
    : g_(g), options_(options) {}

Result<QueryResult> EqlEngine::Run(std::string_view query_text) const {
  auto parsed = ParseQuery(query_text);
  if (!parsed.ok()) return parsed.status();
  Query q = std::move(parsed).value();
  Status st = ValidateQuery(&q);
  if (!st.ok()) return st;
  return RunParsed(q);
}

namespace {

/// Builds engine-level CtpFilters from the query's filter spec + defaults.
Result<CtpFilters> CompileFilters(const Graph& g, const CtpFilterSpec& spec,
                                  const EngineOptions& opts,
                                  std::unique_ptr<ScoreFunction>* score_out) {
  CtpFilters f;
  f.unidirectional = spec.uni;
  if (spec.labels) {
    std::vector<StrId> ids;
    for (const std::string& l : *spec.labels) {
      StrId id = g.dict().Lookup(l);
      if (id != kNoStrId) ids.push_back(id);
      // Unknown labels simply cannot match any edge; they narrow the set.
    }
    f.allowed_labels = std::move(ids);
    f.NormalizeLabels();
  }
  if (spec.max_edges) f.max_edges = *spec.max_edges;
  f.timeout_ms = spec.timeout_ms ? *spec.timeout_ms : opts.default_ctp_timeout_ms;
  if (spec.limit) f.limit = *spec.limit;
  if (opts.default_max_trees > 0) f.max_trees = opts.default_max_trees;
  if (spec.score) {
    *score_out = CreateScoreFunction(*spec.score);
    if (*score_out == nullptr) {
      return Status::InvalidArgument("unknown score function '" + *spec.score +
                                     "' (try edge_count, degree_penalty, "
                                     "label_diversity, root_degree)");
    }
    f.score = score_out->get();
    if (spec.top_k) f.top_k = *spec.top_k;
  }
  return f;
}

}  // namespace

Result<QueryResult> EqlEngine::RunParsed(const Query& q) const {
  Stopwatch total_sw;
  QueryResult out;

  // ---- Step (A): evaluate every BGP into a binding table.
  Stopwatch sw;
  std::vector<BindingTable> tables;
  for (const auto& bgp : GroupIntoBgps(q.patterns)) {
    auto t = EvaluateBgp(g_, bgp);
    if (!t.ok()) return t.status();
    tables.push_back(std::move(t).value());
  }
  out.bgp_ms = sw.ElapsedMs();

  // ---- Step (B): evaluate every CTP against seed sets derived from (A).
  sw.Restart();
  for (const CtpPattern& ctp : q.ctps) {
    CtpRunInfo run;
    run.tree_var = ctp.tree_var;

    std::vector<std::vector<NodeId>> sets;
    std::vector<bool> universal;
    for (const Predicate& member : ctp.members) {
      const BindingTable* source_table = nullptr;
      for (const BindingTable& t : tables) {
        if (t.HasColumn(member.var)) {
          source_table = &t;
          break;
        }
      }
      if (source_table != nullptr) {
        // Bound by a BGP: seed set = distinct bindings, narrowed by the
        // member's own predicate if it has one (Section 3, step B.1).
        std::vector<NodeId> nodes = source_table->DistinctValues(member.var);
        if (!member.IsEmpty()) {
          std::erase_if(nodes, [&](NodeId n) {
            return !PredicateMatches(g_, member, n, true);
          });
        }
        sets.push_back(std::move(nodes));
        universal.push_back(false);
      } else if (!member.IsEmpty()) {
        sets.push_back(NodesMatchingPredicate(g_, member));
        universal.push_back(false);
      } else if (options_.materialize_universal_sets) {
        // Ablation path: instantiate N explicitly (an Init tree per graph
        // node) — the blowup Section 4.9 (i) exists to avoid.
        std::vector<NodeId> all(g_.NumNodes());
        for (NodeId n = 0; n < g_.NumNodes(); ++n) all[n] = n;
        sets.push_back(std::move(all));
        universal.push_back(false);
      } else {
        // Unconstrained member: the universal N seed set (Section 4.9).
        sets.push_back({});
        universal.push_back(true);
      }
    }
    for (size_t i = 0; i < sets.size(); ++i) {
      run.seed_set_sizes.push_back(universal[i] ? SIZE_MAX : sets[i].size());
    }

    auto seeds = SeedSets::Make(g_, std::move(sets), universal);
    if (!seeds.ok()) {
      return Status(seeds.status().code(),
                    "CTP ?" + ctp.tree_var + ": " + seeds.status().message());
    }

    std::unique_ptr<ScoreFunction> score;
    auto filters = CompileFilters(g_, ctp.filters, options_, &score);
    if (!filters.ok()) return filters.status();
    if (seeds->HasUniversal() && filters->limit == UINT64_MAX &&
        options_.universal_default_limit > 0) {
      filters->limit = options_.universal_default_limit;
    }

    // Section 4.9: universal sets or badly skewed sizes -> subset queues.
    QueueStrategy qs = QueueStrategy::kSingle;
    if (options_.auto_queue_strategy) {
      size_t min_size = SIZE_MAX, max_size = 0;
      for (int i = 0; i < seeds->num_sets(); ++i) {
        if (seeds->IsUniversal(i)) continue;
        min_size = std::min(min_size, seeds->SetSize(i));
        max_size = std::max(max_size, seeds->SetSize(i));
      }
      if (seeds->HasUniversal() ||
          (min_size > 0 && static_cast<double>(max_size) / min_size >=
                               options_.skew_threshold)) {
        qs = QueueStrategy::kPerSatSubset;
      }
    }
    run.used_subset_queues = qs == QueueStrategy::kPerSatSubset;

    // Adaptive choice (Property 3): two plain seed sets are fully served by
    // the cheaper ESP; anything else gets the configured default.
    AlgorithmKind kind = options_.algorithm;
    if (options_.adaptive_algorithm && seeds->num_sets() == 2 &&
        !seeds->HasUniversal() && !filters->unidirectional) {
      kind = AlgorithmKind::kEsp;
    }
    run.algorithm = kind;
    auto algo = CreateCtpAlgorithm(kind, g_, *seeds, std::move(filters).value(),
                                   nullptr, qs);
    Status st = algo->Run();
    if (!st.ok()) return st;
    run.stats = algo->stats();
    run.num_results = algo->results().size();

    // Materialize the CTP table: member vars + tree handle.
    std::vector<std::string> cols;
    std::vector<ColKind> kinds;
    for (const Predicate& m : ctp.members) {
      cols.push_back(m.var);
      kinds.push_back(ColKind::kNode);
    }
    cols.push_back(ctp.tree_var);
    kinds.push_back(ColKind::kTree);
    BindingTable ctp_table(std::move(cols), std::move(kinds));
    for (const CtpResult& r : algo->results().results()) {
      std::vector<uint32_t> row;
      row.reserve(ctp.members.size() + 1);
      for (NodeId n : r.seed_of_set) row.push_back(n);
      row.push_back(static_cast<uint32_t>(out.trees.size()));
      out.trees.push_back(ResultTreeInfo{algo->arena().EdgeSet(r.tree),
                                         algo->arena().Get(r.tree).root, r.score});
      ctp_table.AddRow(std::move(row));
    }
    tables.push_back(std::move(ctp_table));
    out.ctp_runs.push_back(std::move(run));
  }
  out.ctp_ms = sw.ElapsedMs();

  // ---- Step (C): natural-join everything and project the head.
  sw.Restart();
  BindingTable acc;
  if (!tables.empty()) {
    // Join tables that share columns first; cross products last.
    std::vector<bool> used(tables.size(), false);
    acc = std::move(tables[0]);
    used[0] = true;
    for (size_t step = 1; step < tables.size(); ++step) {
      int best = -1;
      for (size_t i = 0; i < tables.size(); ++i) {
        if (used[i]) continue;
        for (const auto& col : tables[i].columns()) {
          if (acc.HasColumn(col)) {
            best = static_cast<int>(i);
            break;
          }
        }
        if (best >= 0) break;
      }
      if (best < 0) {  // no shared columns anywhere: cross with the first unused
        for (size_t i = 0; i < tables.size() && best < 0; ++i) {
          if (!used[i]) best = static_cast<int>(i);
        }
      }
      acc = BindingTable::NaturalJoin(acc, tables[best]);
      used[best] = true;
    }
  }
  auto projected = acc.Project(q.head, /*distinct=*/false);
  if (!projected.ok()) return projected.status();
  out.table = std::move(projected).value();
  out.join_ms = sw.ElapsedMs();
  out.total_ms = total_sw.ElapsedMs();
  return out;
}

std::string QueryResult::RowToString(const Graph& g, size_t r) const {
  std::string out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += "  ";
    out += "?" + table.columns()[c] + "=";
    uint32_t v = table.At(r, c);
    switch (table.kind(c)) {
      case ColKind::kNode:
        out += g.NodeLabel(v);
        break;
      case ColKind::kEdge:
        out += "[" + g.EdgeToString(v) + "]";
        break;
      case ColKind::kTree: {
        const ResultTreeInfo& t = trees[v];
        out += "{";
        for (size_t i = 0; i < t.edges.size(); ++i) {
          if (i > 0) out += ", ";
          out += g.EdgeToString(t.edges[i]);
        }
        out += "}";
        break;
      }
    }
  }
  return out;
}

}  // namespace eql
