#include "eval/engine.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "eval/plan.h"
#include "eval/stats.h"
#include "query/parser.h"
#include "query/validator.h"
#include "storage/bgp_eval.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace eql {

// ---------------------------------------------------------------------------
// The compiled plan behind PreparedQuery: everything Execute can reuse across
// calls. Immutable after PlanQuery; shared by concurrent executions.
// ---------------------------------------------------------------------------

struct PreparedQuery::Plan {
  /// The validated query, possibly still carrying `$name` placeholders.
  Query query;
  /// Head columns + kinds of streamed rows (static: roles are structural).
  RowSchema schema;
  /// The lowered stage algebra: BGP groups, member seed sources, per-stage
  /// cost estimates, CSE marks and both execution orders (eval/plan.h).
  /// Structural, so valid for any `$`-bound copy of the query.
  PhysicalPlan physical;
  /// Graph statistics the estimates came from (shared process-wide cache,
  /// keyed by Graph::uid()); kept for EXPLAIN.
  std::shared_ptr<const GraphStats> stats;

  struct PlannedCtp {
    /// SCORE function, constructed (and its name validated) once; shared by
    /// concurrent executions — score functions are stateless.
    std::unique_ptr<ScoreFunction> score;
    /// LABEL ids resolved + normalized at Prepare when the label set is
    /// fully literal; nullopt when `$` params force per-call resolution.
    std::optional<std::vector<StrId>> static_labels;
    /// Pre-warmed compiled view for static LABEL/UNI predicates; holding the
    /// shared_ptr keeps it alive across cache LRU churn.
    std::shared_ptr<const CompiledCtpView> warmed_view;
  };
  std::vector<PlannedCtp> ctps;
};

// ---------------------------------------------------------------------------
// Per-call execution state.
// ---------------------------------------------------------------------------

/// Merged options + resolved executor + deadlines for one execution.
struct EqlEngine::ExecEnv {
  EngineOptions opts;
  std::optional<int> top_k_override;
  Deadline query_deadline;
  CtpExecutor* executor = nullptr;
  /// Set when a streaming sink stops the execution; checked by searches at
  /// their deadline sites (null in materialized mode — nothing sets it).
  std::atomic<bool>* cancel = nullptr;
  /// Caller-owned liveness counter (ExecOptions::progress; may be null),
  /// bumped by every search of this execution at its deadline-poll sites.
  std::atomic<uint64_t>* progress = nullptr;
  StreamState* stream = nullptr;
  /// Index of the CTP whose results stream row-by-row (the last one).
  size_t stream_ctp = SIZE_MAX;
  /// Per-query memory budget on the search-side allocators (bytes; 0 =
  /// unlimited). Every CTP checks the full budget — worker arenas are
  /// recycled between stages, not cumulative (see engine.h).
  uint64_t memory_budget = 0;
  /// Deterministic fault injection for this call (tests only; may be null).
  FaultInjector* fault = nullptr;
};

/// State of one streaming execution: the sink, the pre-joined context table,
/// and the emission counters.
struct EqlEngine::StreamState {
  ResultSink* sink = nullptr;
  const std::vector<std::string>* head = nullptr;
  /// Tree registry of the *earlier* (materialized) CTP stages; the streaming
  /// CTP's trees are passed alongside each emission instead.
  const std::vector<ResultTreeInfo>* earlier = nullptr;
  BindingTable pre;   ///< join of every table except the streaming CTP's
  bool has_pre = false;
  std::vector<std::string> ctp_cols;  ///< streaming CTP: member vars + tree var
  std::vector<ColKind> ctp_kinds;
  uint64_t rows = 0;
  double first_row_ms = -1;
  Stopwatch sw;  ///< started at ExecutePlan entry
  std::atomic<bool> cancel{false};
  /// The execution's effective cancel flag: &cancel, unless the caller
  /// supplied an external one (ExecOptions::cancel) — then that, so sink
  /// stops and caller cancellation share one lever.
  std::atomic<bool>* cancel_flag = &cancel;
  bool stopped = false;  ///< the sink returned false

  /// Emits every final row induced by one connecting tree of the streaming
  /// CTP: its one-row table joins against the pre-joined context and
  /// projects the head. Returns false once the sink requests a stop.
  bool EmitTreeRows(std::vector<uint32_t> member_row,
                    const ResultTreeInfo& tree);
};

bool EqlEngine::StreamState::EmitTreeRows(std::vector<uint32_t> member_row,
                                          const ResultTreeInfo& tree) {
  BindingTable one(ctp_cols, ctp_kinds);
  // The fresh tree gets the first index past the earlier-stage registry; the
  // per-row remap below resolves it.
  member_row.push_back(static_cast<uint32_t>(earlier->size()));
  one.AddRow(std::move(member_row));
  BindingTable joined =
      has_pre ? BindingTable::NaturalJoin(one, pre) : std::move(one);
  auto projected = joined.Project(*head, /*distinct=*/false);
  if (!projected.ok()) return false;  // head ⊆ columns: cannot happen
  const BindingTable& t = *projected;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    StreamRow row;
    row.values.reserve(t.NumColumns());
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      const uint32_t v = t.At(r, c);
      if (t.kind(c) == ColKind::kTree) {
        row.values.push_back(static_cast<uint32_t>(row.trees.size()));
        row.trees.push_back(v < earlier->size() ? (*earlier)[v] : tree);
      } else {
        row.values.push_back(v);
      }
    }
    ++rows;
    if (first_row_ms < 0) first_row_ms = sw.ElapsedMs();
    if (!sink->OnRow(std::move(row))) {
      stopped = true;
      cancel_flag->store(true, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

EqlEngine::EqlEngine(const Graph& g, EngineOptions options)
    : g_(g), options_(options) {
  if (options_.executor != nullptr) {
    executor_ = options_.executor;
  } else if (options_.num_threads > 1) {
    owned_executor_ = std::make_unique<CtpExecutor>(options_.num_threads);
    executor_ = owned_executor_.get();
  }
}

EqlEngine::~EqlEngine() = default;

namespace {

/// Builds engine-level CtpFilters from the (bound) filter spec, the merged
/// options and the plan's precompiled pieces. The whole-query deadline clamps
/// every CTP's budget to the *remaining* time, so a multi-CTP query cannot
/// run N x the user's budget.
Result<CtpFilters> CompileFilters(const Graph& g, const CtpFilterSpec& spec,
                                  const EngineOptions& opts,
                                  const PreparedQuery::Plan::PlannedCtp& pc,
                                  const std::optional<int>& top_k_override,
                                  const Deadline& query_deadline) {
  CtpFilters f;
  f.unidirectional = spec.uni;
  if (spec.labels) {
    if (pc.static_labels) {
      f.allowed_labels = *pc.static_labels;  // resolved + normalized at Prepare
    } else {
      std::vector<StrId> ids;
      for (const std::string& l : *spec.labels) {
        StrId id = g.dict().Lookup(l);
        if (id != kNoStrId) ids.push_back(id);
        // Unknown labels simply cannot match any edge; they narrow the set.
      }
      f.allowed_labels = std::move(ids);
      f.NormalizeLabels();
    }
  }
  if (spec.max_edges) f.max_edges = *spec.max_edges;
  f.timeout_ms = spec.timeout_ms ? *spec.timeout_ms : opts.default_ctp_timeout_ms;
  if (!query_deadline.IsInfinite()) {
    const int64_t remaining = query_deadline.RemainingMs();
    f.timeout_ms = f.timeout_ms < 0 ? remaining : std::min(f.timeout_ms, remaining);
  }
  if (spec.limit) f.limit = *spec.limit;
  if (opts.default_max_trees > 0) f.max_trees = opts.default_max_trees;
  if (pc.score != nullptr) {
    f.score = pc.score.get();
    if (spec.top_k) f.top_k = *spec.top_k;
    if (top_k_override && *top_k_override > 0) f.top_k = *top_k_override;
  }
  return f;
}

/// Step (C)'s join order: tables sharing columns first, cross products last.
/// Takes pointers so callers can pick a subset of the stage tables (the
/// streaming path joins everything except the final CTP's); the input order
/// is the stage-id order in both planner modes, which is what makes
/// planner-ON rows identical to planner-OFF. `consume` moves out of the
/// tables (the one-shot path); false copies the first table so the stage
/// tables stay usable (the streaming path still derives the final CTP's
/// seeds from them).
BindingTable GreedyJoin(std::vector<BindingTable*> tables, bool consume) {
  BindingTable acc;
  if (tables.empty()) return acc;
  std::vector<bool> used(tables.size(), false);
  acc = consume ? std::move(*tables[0]) : *tables[0];
  used[0] = true;
  for (size_t step = 1; step < tables.size(); ++step) {
    int best = -1;
    for (size_t i = 0; i < tables.size(); ++i) {
      if (used[i]) continue;
      for (const auto& col : tables[i]->columns()) {
        if (acc.HasColumn(col)) {
          best = static_cast<int>(i);
          break;
        }
      }
      if (best >= 0) break;
    }
    if (best < 0) {  // no shared columns anywhere: cross with the first unused
      for (size_t i = 0; i < tables.size() && best < 0; ++i) {
        if (!used[i]) best = static_cast<int>(i);
      }
    }
    acc = BindingTable::NaturalJoin(acc, *tables[best]);
    used[best] = true;
  }
  return acc;
}

}  // namespace

// ---------------------------------------------------------------------------
// Planning (the Prepare-time front end).
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const PreparedQuery::Plan>> EqlEngine::PlanQuery(
    Query q) const {
  auto plan = std::make_shared<PreparedQuery::Plan>();
  if (q.param_names.empty()) q.param_names = CollectParamNames(q);

  // Head schema: roles are structural, so kinds are known without executing.
  plan->schema.columns = q.head;
  for (const std::string& h : q.head) {
    ColKind kind = ColKind::kNode;
    for (const CtpPattern& ctp : q.ctps) {
      if (ctp.tree_var == h) kind = ColKind::kTree;
    }
    for (const EdgePattern& ep : q.patterns) {
      if (ep.edge.var == h) kind = ColKind::kEdge;
    }
    plan->schema.kinds.push_back(kind);
  }

  // Lower to the stage algebra: BGP groups, member seed sources (rejecting
  // cyclic free-member dependencies), cost estimates, CSE marks and both
  // execution orders. The materialize-universal ablation grounds every
  // member explicitly, so free-member cycles become executable under it.
  plan->stats = GraphStats::Get(g_);
  auto physical = BuildPhysicalPlan(q, g_, *plan->stats,
                                    options_.materialize_universal_sets);
  if (!physical.ok()) return physical.status();
  plan->physical = std::move(physical).value();

  // Per-CTP compilation: score construction (validating the name), literal
  // LABEL resolution, and compiled-view pre-warming.
  for (const CtpPattern& ctp : q.ctps) {
    PreparedQuery::Plan::PlannedCtp pc;
    const CtpFilterSpec& spec = ctp.filters;
    if (spec.score) {
      pc.score = CreateScoreFunction(*spec.score);
      if (pc.score == nullptr) {
        return Status::InvalidArgument("unknown score function '" + *spec.score +
                                       "' (try edge_count, degree_penalty, "
                                       "label_diversity, root_degree)");
      }
    }
    if (spec.labels && spec.label_params.empty()) {
      std::vector<StrId> ids;
      for (const std::string& l : *spec.labels) {
        StrId id = g_.dict().Lookup(l);
        if (id != kNoStrId) ids.push_back(id);
      }
      pc.static_labels = NormalizeLabelSet(std::move(ids));
    }
    // Pre-warm the compiled view for static predicates, mirroring the
    // execution-time condition so the Get there is a guaranteed cache hit.
    if (options_.use_compiled_views &&
        (pc.static_labels.has_value() || spec.uni) &&
        spec.label_params.empty() &&
        (IsGamFamily(options_.algorithm) || !spec.uni)) {
      ViewCache& cache =
          executor_ != nullptr ? executor_->view_cache() : view_cache_;
      pc.warmed_view = cache.Get(
          g_, pc.static_labels, CompiledCtpView::DirectionFor(spec.uni));
    }
    plan->ctps.push_back(std::move(pc));
  }

  plan->query = std::move(q);
  return std::shared_ptr<const PreparedQuery::Plan>(std::move(plan));
}

Result<PreparedQuery> EqlEngine::Prepare(std::string_view query_text) const {
  auto parsed = ParseQuery(query_text);
  if (!parsed.ok()) return parsed.status();
  Query q = std::move(parsed).value();
  Status st = ValidateQuery(&q);
  if (!st.ok()) return st;
  auto plan = PlanQuery(std::move(q));
  if (!plan.ok()) return plan.status();
  return PreparedQuery(this, std::move(plan).value());
}

Result<QueryResult> EqlEngine::Run(std::string_view query_text) const {
  return RunWithCse(query_text, nullptr);
}

Result<QueryResult> EqlEngine::RunParsed(const Query& q) const {
  auto plan = PlanQuery(q);
  if (!plan.ok()) return plan.status();
  const PreparedQuery::Plan& p = **plan;
  if (!p.query.param_names.empty()) {
    return Status::InvalidArgument(
        "query has unbound parameters ($" + p.query.param_names[0] +
        "); use Prepare + Execute(params)");
  }
  QueryResult out;
  Status st = ExecutePlan(p, p.query, ExecOptions{}, nullptr, nullptr, &out);
  if (!st.ok()) return st;
  return out;
}

// ---------------------------------------------------------------------------
// PreparedQuery surface.
// ---------------------------------------------------------------------------

const std::vector<std::string>& PreparedQuery::param_names() const {
  return plan_->query.param_names;
}
const Query& PreparedQuery::query() const { return plan_->query; }
const RowSchema& PreparedQuery::schema() const { return plan_->schema; }

namespace {

/// Binds `params` against the plan's query, returning the query to execute:
/// the plan's own (no binding needed) or `*storage`. One definition shared
/// by both Execute overloads so binding semantics cannot diverge.
Result<const Query*> BindForExecute(const PreparedQuery::Plan& plan,
                                    const ParamMap& params, Query* storage) {
  if (plan.query.param_names.empty() && params.empty()) return &plan.query;
  auto b = BindParams(plan.query, params);
  if (!b.ok()) return b.status();
  *storage = std::move(b).value();
  return storage;
}

}  // namespace

Result<QueryResult> PreparedQuery::Execute(const ParamMap& params,
                                           const ExecOptions& opts) const {
  Query bound_storage;
  auto bound = BindForExecute(*plan_, params, &bound_storage);
  if (!bound.ok()) return bound.status();
  QueryResult out;
  Status st = engine_->ExecutePlan(*plan_, **bound, opts, nullptr, nullptr, &out);
  if (!st.ok()) return st;
  return out;
}

Result<QueryResult> PreparedQuery::Execute(const ParamMap& params,
                                           ResultSink& sink,
                                           const ExecOptions& opts) const {
  Query bound_storage;
  auto bound = BindForExecute(*plan_, params, &bound_storage);
  if (!bound.ok()) return bound.status();
  QueryResult out;
  EqlEngine::StreamState stream;
  stream.sink = &sink;
  Status st = engine_->ExecutePlan(*plan_, **bound, opts, &stream, nullptr, &out);
  if (!st.ok()) return st;
  return out;
}

std::string PreparedQuery::Explain() const {
  return RenderExplain(plan_->physical, plan_->query, engine_->g_,
                       engine_->options_.use_planner);
}

std::string PreparedQuery::Explain(const QueryResult& result) const {
  return RenderExplain(plan_->physical, plan_->query, engine_->g_,
                       engine_->options_.use_planner, &result);
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

/// Staged output of one CTP evaluation: everything ExecutePlan needs to
/// stitch the CTP table into the query. Tree handles are still CTP-local —
/// row i pairs with trees[i], and the stitch step offsets them into
/// QueryResult::trees — so stages can be produced concurrently.
struct EqlEngine::CtpStage {
  CtpRunInfo run;
  std::vector<ResultTreeInfo> trees;
  std::vector<std::vector<uint32_t>> rows;  ///< member bindings, no tree col
};

/// RunBatch-scoped CSE store: complete, clean CTP results of self-grounded
/// table specs, keyed by CtpTableKey. Scoped to one batch on purpose — an
/// engine-lifetime cache would let a query's telemetry (trees built, peak
/// memory) depend on unrelated earlier traffic. First insert wins, so
/// concurrent batch queries racing on the same spec stay deterministic in
/// what later queries observe.
struct EqlEngine::BatchCseCache {
  struct Entry {
    std::vector<std::vector<uint32_t>> rows;
    std::vector<ResultTreeInfo> trees;
    CtpRunInfo run;
  };
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> entries;

  std::shared_ptr<const Entry> Find(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    return it == entries.end() ? nullptr : it->second;
  }
  void Insert(const std::string& key, std::shared_ptr<const Entry> entry) {
    std::lock_guard<std::mutex> lock(mu);
    entries.emplace(key, std::move(entry));  // first insert wins
  }
};

Status EqlEngine::EvalOneCtp(const CtpPattern& ctp, size_t ctp_index,
                             const PreparedQuery::Plan& plan, const ExecEnv& env,
                             const std::vector<BindingTable>& tables,
                             bool skip_search, CtpStage* stage) const {
  const EngineOptions& opts = env.opts;
  CtpRunInfo& run = stage->run;
  run.tree_var = ctp.tree_var;

  // Seed sources were resolved at plan time (ctp/analysis.h); the bound
  // query has the same variable structure, so the indexes hold.
  const std::vector<CtpMemberSource>& sources =
      plan.physical.binding.member_sources[ctp_index];

  std::vector<std::vector<NodeId>> sets;
  std::vector<bool> universal;
  for (size_t mi = 0; mi < ctp.members.size(); ++mi) {
    const Predicate& member = ctp.members[mi];
    const CtpMemberSource& src = sources[mi];
    const BindingTable* source_table = nullptr;
    if (src.kind == CtpMemberSource::Kind::kBgpTable) {
      source_table = &tables[src.source];
    } else if (src.kind == CtpMemberSource::Kind::kCtpTable) {
      source_table = &tables[plan.physical.CtpStageId(src.source)];
    }
    if (source_table != nullptr) {
      // Bound by a BGP: seed set = distinct bindings, narrowed by the
      // member's own predicate if it has one (Section 3, step B.1).
      std::vector<NodeId> nodes = source_table->DistinctValues(member.var);
      if (!member.IsEmpty()) {
        std::erase_if(nodes, [&](NodeId n) {
          return !PredicateMatches(g_, member, n, true);
        });
      }
      sets.push_back(std::move(nodes));
      universal.push_back(false);
    } else if (src.kind == CtpMemberSource::Kind::kPredicate) {
      sets.push_back(NodesMatchingPredicate(g_, member));
      universal.push_back(false);
    } else if (opts.materialize_universal_sets) {
      // Ablation path: instantiate N explicitly (an Init tree per graph
      // node) — the blowup Section 4.9 (i) exists to avoid.
      std::vector<NodeId> all(g_.NumNodes());
      for (NodeId n = 0; n < g_.NumNodes(); ++n) all[n] = n;
      sets.push_back(std::move(all));
      universal.push_back(false);
    } else {
      // Unconstrained member: the universal N seed set (Section 4.9).
      sets.push_back({});
      universal.push_back(true);
    }
  }
  for (size_t i = 0; i < sets.size(); ++i) {
    run.seed_set_sizes.push_back(universal[i] ? SIZE_MAX : sets[i].size());
  }

  auto seeds = SeedSets::Make(g_, std::move(sets), universal);
  if (!seeds.ok()) {
    return Status(seeds.status().code(),
                  "CTP ?" + ctp.tree_var + ": " + seeds.status().message());
  }

  auto filters = CompileFilters(g_, ctp.filters, opts, plan.ctps[ctp_index],
                                env.top_k_override, env.query_deadline);
  if (!filters.ok()) return filters.status();
  filters->memory_budget_bytes = env.memory_budget;
  if (seeds->HasUniversal() && filters->limit == UINT64_MAX &&
      opts.universal_default_limit > 0) {
    filters->limit = opts.universal_default_limit;
  }

  // Planner short-circuit: an upstream stage table is empty, so no row of
  // this stage can survive the final join. Everything up to here — seed
  // derivation, SeedSets validation, filter compilation — already ran, so
  // every deterministic error this stage would raise has been raised; only
  // the search itself is skipped. The one family of errors raised *inside*
  // a search is BFT's rejection of universal/UNI inputs, so those stages
  // fall through and fail fast exactly as a full run would.
  if (skip_search) {
    AlgorithmKind skip_kind = opts.algorithm;
    if (opts.adaptive_algorithm && seeds->num_sets() == 2 &&
        !seeds->HasUniversal() && !filters->unidirectional) {
      skip_kind = AlgorithmKind::kEsp;
    }
    const bool search_may_error =
        !IsGamFamily(skip_kind) &&
        (seeds->HasUniversal() || filters->unidirectional);
    if (!search_may_error) {
      run.skipped = true;
      run.algorithm = skip_kind;
      run.stats.complete = true;
      return Status::Ok();  // stage stays empty -> empty CTP table
    }
  }

  // Dead-label short-circuit: a LABEL clause whose names all miss the
  // dictionary admits no edge, so unless a single seed node alone satisfies
  // every required set (a zero-edge result), the CTP table is empty and the
  // search — Init trees, signatures, merge machinery — can be skipped.
  if (ctp.filters.labels && !ctp.filters.labels->empty() &&
      filters->allowed_labels && filters->allowed_labels->empty()) {
    bool zero_edge_possible = false;
    for (NodeId n : seeds->AllSeeds()) {
      if (seeds->Signature(n).Contains(seeds->RequiredMask())) {
        zero_edge_possible = true;
        break;
      }
    }
    if (!zero_edge_possible) {
      run.dead_labels = true;
      run.stats.complete = true;
      return Status::Ok();  // stage stays empty -> empty CTP table
    }
  }

  // Section 4.9: universal sets or badly skewed sizes -> subset queues.
  QueueStrategy qs = QueueStrategy::kSingle;
  if (opts.auto_queue_strategy) {
    size_t min_size = SIZE_MAX, max_size = 0;
    for (int i = 0; i < seeds->num_sets(); ++i) {
      if (seeds->IsUniversal(i)) continue;
      min_size = std::min(min_size, seeds->SetSize(i));
      max_size = std::max(max_size, seeds->SetSize(i));
    }
    if (seeds->HasUniversal() ||
        (min_size > 0 && static_cast<double>(max_size) / min_size >=
                             opts.skew_threshold)) {
      qs = QueueStrategy::kPerSatSubset;
    }
  }
  run.used_subset_queues = qs == QueueStrategy::kPerSatSubset;

  // Adaptive choice (Property 3): two plain seed sets are fully served by
  // the cheaper ESP; anything else gets the configured default.
  AlgorithmKind kind = opts.algorithm;
  if (opts.adaptive_algorithm && seeds->num_sets() == 2 &&
      !seeds->HasUniversal() && !filters->unidirectional) {
    kind = AlgorithmKind::kEsp;
  }
  run.algorithm = kind;

  // Worker-pool path: chunk the CTP across the pool (ctp/parallel.h) when
  // one is configured and some seed set is splittable.
  bool parallel = env.executor != nullptr && opts.num_threads > 1 &&
                  IsGamFamily(kind);
  if (parallel) {
    bool splittable = false;
    for (int i = 0; i < seeds->num_sets(); ++i) {
      if (!seeds->IsUniversal(i) && seeds->SetSize(i) > 0) {
        splittable = true;
        break;
      }
    }
    parallel = splittable;
  }
  if (parallel) {
    ParallelCtpOptions popts;
    popts.num_threads = opts.num_threads;
    popts.algorithm = kind;
    popts.queue_strategy = qs;
    popts.use_views = opts.use_compiled_views;
    popts.incremental_scores = opts.incremental_scores;
    popts.bound_pruning = opts.bound_pruning;
    popts.cancel = env.cancel;
    popts.progress = env.progress;
    popts.fault = env.fault;
    auto outcome = env.executor->Evaluate(g_, *seeds, *filters, popts);
    if (!outcome.ok()) return outcome.status();
    run.used_view = outcome->used_view;
    run.stats = outcome->stats;
    run.num_results = outcome->results.size();
    run.parallel_chunks = outcome->threads_used;
    for (const CtpResult& r : outcome->results) {
      std::vector<uint32_t> row;
      row.reserve(ctp.members.size());
      for (NodeId n : r.seed_of_set) row.push_back(n);
      stage->rows.push_back(std::move(row));
      stage->trees.push_back(ResultTreeInfo{
          outcome->arena.EdgeSet(r.tree), outcome->arena.Get(r.tree).root,
          r.score});
    }
    return Status::Ok();
  }

  // Sequential path: compile (or fetch) the filter view. BFT under UNI is
  // rejected downstream, so only GAM-family searches request the backward
  // layout. The cache is the executor's when a pool exists — RunBatch
  // queries then share compiled views — and engine-local otherwise; a plan
  // with static predicates skips the cache entirely (pre-warmed at Prepare).
  CtpAlgorithmTuning tuning;
  tuning.incremental_scores = opts.incremental_scores;
  tuning.bound_pruning = opts.bound_pruning;
  tuning.cancel = env.cancel;
  tuning.progress = env.progress;
  tuning.fault = env.fault;
  std::shared_ptr<const CompiledCtpView> view;
  if (opts.use_compiled_views &&
      (filters->allowed_labels.has_value() || filters->unidirectional) &&
      (IsGamFamily(kind) || !filters->unidirectional)) {
    const PreparedQuery::Plan::PlannedCtp& pc = plan.ctps[ctp_index];
    if (pc.warmed_view != nullptr && pc.static_labels == filters->allowed_labels) {
      view = pc.warmed_view;
    } else {
      ViewCache& cache =
          env.executor != nullptr ? env.executor->view_cache() : view_cache_;
      view = cache.Get(g_, filters->allowed_labels,
                       CompiledCtpView::DirectionFor(filters->unidirectional));
    }
    tuning.view = view.get();
    run.used_view = true;
  }

  // Row streaming: the final CTP of a streaming execution emits joined rows
  // straight from the search's result hook — unless TOP-k truncation means
  // no row is final until the search ends (then the stage materializes and
  // ExecutePlan emits afterwards).
  if (env.stream != nullptr && ctp_index == env.stream_ctp &&
      filters->top_k <= 0) {
    StreamState& st = *env.stream;
    tuning.on_result = [&st](const TreeArena& arena, const CtpResult& r) {
      std::vector<uint32_t> member_row;
      member_row.reserve(r.seed_of_set.size());
      for (NodeId n : r.seed_of_set) member_row.push_back(n);
      ResultTreeInfo tree{arena.EdgeSet(r.tree), arena.Get(r.tree).root,
                          r.score};
      return st.EmitTreeRows(std::move(member_row), tree);
    };
    run.streamed_rows = true;
  }

  auto algo = CreateCtpAlgorithm(kind, g_, *seeds, std::move(filters).value(),
                                 nullptr, qs, tuning);
  Status st = algo->Run();
  if (!st.ok()) return st;
  run.stats = algo->stats();
  run.num_results = algo->results().size();
  // Rows that already streamed through the hook are never read again —
  // materializing them here would grow memory with the full result set,
  // defeating the streaming contract.
  if (!run.streamed_rows) {
    for (const CtpResult& r : algo->results().results()) {
      std::vector<uint32_t> row;
      row.reserve(ctp.members.size());
      for (NodeId n : r.seed_of_set) row.push_back(n);
      stage->rows.push_back(std::move(row));
      stage->trees.push_back(ResultTreeInfo{algo->arena().EdgeSet(r.tree),
                                            algo->arena().Get(r.tree).root,
                                            r.score});
    }
  }
  return Status::Ok();
}

Status EqlEngine::ExecutePlan(const PreparedQuery::Plan& plan, const Query& q,
                              const ExecOptions& exec_opts, StreamState* stream,
                              BatchCseCache* batch_cse, QueryResult* out) const {
  Stopwatch total_sw;

  // ---- Merge the per-call overrides into this execution's environment.
  ExecEnv env;
  env.opts = options_;
  if (exec_opts.use_planner) env.opts.use_planner = *exec_opts.use_planner;
  if (exec_opts.ctp_timeout_ms) {
    env.opts.default_ctp_timeout_ms = *exec_opts.ctp_timeout_ms;
  }
  if (exec_opts.query_timeout_ms) {
    env.opts.default_query_timeout_ms = *exec_opts.query_timeout_ms;
  }
  if (exec_opts.num_threads) env.opts.num_threads = *exec_opts.num_threads;
  if (exec_opts.algorithm) env.opts.algorithm = *exec_opts.algorithm;
  if (exec_opts.adaptive_algorithm) {
    env.opts.adaptive_algorithm = *exec_opts.adaptive_algorithm;
  }
  if (exec_opts.use_compiled_views) {
    env.opts.use_compiled_views = *exec_opts.use_compiled_views;
  }
  if (exec_opts.incremental_scores) {
    env.opts.incremental_scores = *exec_opts.incremental_scores;
  }
  if (exec_opts.bound_pruning) env.opts.bound_pruning = *exec_opts.bound_pruning;
  env.top_k_override = exec_opts.top_k;
  env.memory_budget = exec_opts.memory_budget_bytes.value_or(
      env.opts.default_memory_budget_bytes);
  env.fault = exec_opts.fault;
  env.executor = executor_;
  if (exec_opts.num_threads) {
    if (*exec_opts.num_threads > 1) {
      // One long-lived engine serving heterogeneous traffic: a pool-less
      // engine borrows the process-wide pool for this call.
      if (env.executor == nullptr) env.executor = &CtpExecutor::Default();
    } else {
      env.executor = nullptr;  // forced sequential for this call
    }
  }
  env.query_deadline = env.opts.default_query_timeout_ms >= 0
                           ? Deadline::AfterMs(env.opts.default_query_timeout_ms)
                           : Deadline::Infinite();
  env.stream = stream;
  env.cancel = exec_opts.cancel;  // caller cancellation works in both modes
  env.progress = exec_opts.progress;
  if (stream != nullptr) {
    if (env.cancel == nullptr) env.cancel = &stream->cancel;
    stream->cancel_flag = env.cancel;
    env.stream_ctp = q.ctps.empty() ? SIZE_MAX : q.ctps.size() - 1;
    stream->head = &q.head;
    stream->earlier = &out->trees;
    stream->sink->OnSchema(plan.schema);
  }

  // Fault injection arms sites at fixed stage positions, so it forces the
  // fixed-order path (the planner would move/skip the sites tests aim at).
  const bool planner = env.opts.use_planner && env.fault == nullptr;

  // ---- Step (A): evaluate every BGP into a binding table. Tables live in a
  // stage-id-indexed vector (BGP groups first, then CTPs in query order):
  // both planner modes join them in that fixed order, which is what makes
  // the projected rows mode-independent.
  Stopwatch sw;
  const PhysicalPlan& pp = plan.physical;
  const size_t num_stages = pp.stages.size();
  std::vector<BindingTable> tables(num_stages);
  bool empty_stage = false;
  for (size_t gi = 0; gi < pp.num_bgps; ++gi) {
    std::vector<EdgePattern> bgp;
    bgp.reserve(pp.bgp_groups[gi].size());
    for (size_t pi : pp.bgp_groups[gi]) bgp.push_back(q.patterns[pi]);
    auto t = EvaluateBgp(g_, bgp);
    if (!t.ok()) return t.status();
    out->bgp_rows.push_back(t->NumRows());
    empty_stage |= t->NumRows() == 0;
    tables[gi] = std::move(t).value();
  }
  out->bgp_ms = sw.ElapsedMs();

  // ---- Step (B): evaluate every CTP against seed sets from its plan-time
  // sources. Fixed mode runs query order (or all-concurrent when
  // independent); planner mode runs the cost-ascending topological order in
  // dependency waves, skips searches once an upstream table is empty, and
  // shares identical table specs.
  sw.Restart();
  const bool dependent = pp.binding.dependent_ctps;
  std::vector<CtpStage> stages(q.ctps.size());
  std::vector<char> stitched(num_stages, 1);  // BGP stages stitched above
  for (size_t i = 0; i < q.ctps.size(); ++i) stitched[pp.CtpStageId(i)] = 0;

  // Stitches stage i's CTP table (member vars + tree handle) into its
  // stage-id slot, offsetting the stage-local tree indexes into the query's
  // registry. Run info stays in `stages` — telemetry is assembled in query
  // order after step (B) so both modes report identically-ordered ctp_runs.
  auto stitch = [&](size_t i) {
    CtpStage& stage = stages[i];
    const CtpPattern& ctp = q.ctps[i];
    const size_t sid = pp.CtpStageId(i);
    // Batch-scoped CSE: publish complete, clean results of shareable specs
    // before the rows move into the table.
    if (planner && batch_cse != nullptr && !pp.stages[sid].cse_key.empty() &&
        !stage.run.shared && !stage.run.skipped && !stage.run.streamed_rows &&
        stage.run.stats.complete &&
        stage.run.stats.Outcome() == SearchOutcome::kOk) {
      auto entry = std::make_shared<BatchCseCache::Entry>();
      entry->rows = stage.rows;
      entry->trees = stage.trees;
      entry->run = stage.run;
      batch_cse->Insert(pp.stages[sid].cse_key, std::move(entry));
    }
    std::vector<std::string> cols;
    std::vector<ColKind> kinds;
    for (const Predicate& m : ctp.members) {
      cols.push_back(m.var);
      kinds.push_back(ColKind::kNode);
    }
    cols.push_back(ctp.tree_var);
    kinds.push_back(ColKind::kTree);
    BindingTable ctp_table(std::move(cols), std::move(kinds));
    const uint32_t tree_offset = static_cast<uint32_t>(out->trees.size());
    // An in-query CSE canonical's rows/trees must survive the stitch: later
    // stages copy them instead of searching again.
    const bool keep = planner && pp.stages[sid].shared_by_later;
    for (size_t r = 0; r < stage.rows.size(); ++r) {
      std::vector<uint32_t> row =
          keep ? stage.rows[r] : std::move(stage.rows[r]);
      row.push_back(tree_offset + static_cast<uint32_t>(r));
      ctp_table.AddRow(std::move(row));
    }
    if (keep) {
      for (const ResultTreeInfo& t : stage.trees) out->trees.push_back(t);
    } else {
      for (ResultTreeInfo& t : stage.trees) out->trees.push_back(std::move(t));
    }
    empty_stage |= ctp_table.NumRows() == 0;
    tables[sid] = std::move(ctp_table);
    stitched[sid] = 1;
  };

  // CSE resolution for a planner-mode stage: copy the canonical stage's (or
  // a batch sibling's) rows/trees instead of searching. Only complete, clean
  // results are shared — a hit therefore implies the donor's identical
  // validation succeeded, so no error path is masked.
  auto try_share = [&](size_t sid) -> bool {
    const PlanStage& st = pp.stages[sid];
    const size_t ci = st.input;
    if (st.share_of != SIZE_MAX) {
      const CtpStage& src = stages[pp.stages[st.share_of].input];
      if (src.run.skipped || src.run.streamed_rows || !src.run.stats.complete ||
          src.run.stats.Outcome() != SearchOutcome::kOk) {
        return false;
      }
      CtpStage& dst = stages[ci];
      dst.run = src.run;
      dst.run.tree_var = q.ctps[ci].tree_var;
      dst.run.shared = true;
      dst.rows = src.rows;
      dst.trees = src.trees;
      return true;
    }
    if (batch_cse != nullptr && !st.cse_key.empty()) {
      if (auto entry = batch_cse->Find(st.cse_key)) {
        CtpStage& dst = stages[ci];
        dst.run = entry->run;
        dst.run.tree_var = q.ctps[ci].tree_var;
        dst.run.shared = true;
        dst.rows = entry->rows;
        dst.trees = entry->trees;
        return true;
      }
    }
    return false;
  };

  // Fixed-order path: runs and stitches the first `count` CTP stages —
  // concurrently on the pool when the stages are independent, serially
  // (tables threaded through) otherwise. Byte-identical to the engine
  // before the plan layer existed.
  auto run_stages_fixed = [&](size_t count) -> Status {
    if (!dependent && env.executor != nullptr && count > 1) {
      std::vector<Status> stage_status(count);
      CtpExecutor::TaskGroup group;
      for (size_t i = 0; i < count; ++i) {
        env.executor->Submit(
            &group, [this, &q, &plan, &env, &tables, &stages, &stage_status, i] {
              stage_status[i] = EvalOneCtp(q.ctps[i], i, plan, env, tables,
                                           /*skip_search=*/false, &stages[i]);
            });
      }
      env.executor->Wait(&group);
      for (size_t i = 0; i < count; ++i) {
        if (!stage_status[i].ok()) return stage_status[i];
        stitch(i);
      }
    } else {
      for (size_t i = 0; i < count; ++i) {
        Status st = EvalOneCtp(q.ctps[i], i, plan, env, tables,
                               /*skip_search=*/false, &stages[i]);
        if (!st.ok()) return st;
        stitch(i);  // before the next CTP: it may seed from this table
      }
    }
    return Status::Ok();
  };

  // Planner path: consumes a topological order of CTP stage ids. With a
  // pool, each wave is every not-yet-run stage whose dependencies are
  // stitched (independent chains overlap); without one, waves have size one
  // and execution follows the cost order exactly.
  auto run_stages_planned = [&](std::vector<size_t> remaining) -> Status {
    while (!remaining.empty()) {
      std::vector<size_t> wave, rest;
      for (size_t sid : remaining) {
        bool ready = true;
        for (size_t d : pp.stages[sid].deps) ready &= stitched[d] != 0;
        if (ready && (wave.empty() || env.executor != nullptr)) {
          wave.push_back(sid);
        } else {
          rest.push_back(sid);
        }
      }
      remaining = std::move(rest);
      const bool skip = empty_stage;  // one decision per wave: deterministic
      std::vector<size_t> searches;
      for (size_t sid : wave) {
        if (!try_share(sid)) searches.push_back(sid);
      }
      if (env.executor != nullptr && searches.size() > 1) {
        std::vector<Status> stage_status(searches.size());
        CtpExecutor::TaskGroup group;
        for (size_t k = 0; k < searches.size(); ++k) {
          const size_t ci = pp.stages[searches[k]].input;
          env.executor->Submit(&group, [this, &q, &plan, &env, &tables, &stages,
                                        &stage_status, ci, k, skip] {
            stage_status[k] = EvalOneCtp(q.ctps[ci], ci, plan, env, tables,
                                         skip, &stages[ci]);
          });
        }
        env.executor->Wait(&group);
        for (const Status& st : stage_status) {
          if (!st.ok()) return st;
        }
      } else {
        for (size_t sid : searches) {
          const size_t ci = pp.stages[sid].input;
          Status st =
              EvalOneCtp(q.ctps[ci], ci, plan, env, tables, skip, &stages[ci]);
          if (!st.ok()) return st;
        }
      }
      for (size_t sid : wave) stitch(pp.stages[sid].input);
    }
    return Status::Ok();
  };

  if (stream == nullptr) {
    if (planner) {
      EQL_RETURN_IF_ERROR(run_stages_planned(pp.ctp_exec_order));
    } else {
      EQL_RETURN_IF_ERROR(run_stages_fixed(q.ctps.size()));
    }
    out->ctp_ms = sw.ElapsedMs();
  } else if (!q.ctps.empty()) {
    // Streaming path: all CTPs but the last run exactly as above; the last
    // one emits rows against the pre-joined context as its search produces
    // trees. The streaming stage itself never shares or publishes CSE
    // results — its rows leave through the sink.
    const size_t last = q.ctps.size() - 1;
    const size_t last_sid = pp.CtpStageId(last);
    if (planner) {
      std::vector<size_t> order = pp.ctp_exec_order_streaming;
      order.pop_back();  // the final CTP streams below
      EQL_RETURN_IF_ERROR(run_stages_planned(std::move(order)));
    } else {
      EQL_RETURN_IF_ERROR(run_stages_fixed(last));
    }

    // Pre-join every table except the streaming CTP's (which does not exist
    // yet): each emitted tree then joins against this one context table.
    std::vector<BindingTable*> pre;
    pre.reserve(num_stages > 0 ? num_stages - 1 : 0);
    for (size_t sid = 0; sid < num_stages; ++sid) {
      if (sid != last_sid) pre.push_back(&tables[sid]);
    }
    stream->has_pre = !pre.empty();
    if (stream->has_pre) {
      stream->pre = GreedyJoin(std::move(pre), /*consume=*/false);
    }
    const CtpPattern& ctp = q.ctps[last];
    for (const Predicate& m : ctp.members) {
      stream->ctp_cols.push_back(m.var);
      stream->ctp_kinds.push_back(ColKind::kNode);
    }
    stream->ctp_cols.push_back(ctp.tree_var);
    stream->ctp_kinds.push_back(ColKind::kTree);

    Status st = EvalOneCtp(ctp, last, plan, env, tables,
                           /*skip_search=*/planner && empty_stage,
                           &stages[last]);
    if (!st.ok()) return st;
    // TOP-k / chunk-parallel stages materialize first; emit their final
    // result order now (still incremental relative to the join and any
    // downstream consumer, and a deterministic prefix under early stop).
    if (!stages[last].run.streamed_rows && !stream->stopped) {
      for (size_t r = 0; r < stages[last].rows.size(); ++r) {
        if (!stream->EmitTreeRows(std::move(stages[last].rows[r]),
                                  stages[last].trees[r])) {
          break;
        }
      }
    }
    out->ctp_ms = sw.ElapsedMs();
  } else {
    out->ctp_ms = sw.ElapsedMs();
  }

  // Telemetry in query order regardless of execution order, so callers (and
  // EXPLAIN's actuals) index ctp_runs by CTP position in the query text.
  for (CtpStage& stage : stages) out->ctp_runs.push_back(std::move(stage.run));

  // ---- Step (C): natural-join everything and project the head.
  sw.Restart();
  auto all_tables = [&] {
    std::vector<BindingTable*> all;
    all.reserve(num_stages);
    for (BindingTable& t : tables) all.push_back(&t);
    return all;
  };
  if (stream == nullptr) {
    BindingTable acc = GreedyJoin(all_tables(), /*consume=*/true);
    auto projected = acc.Project(q.head, /*distinct=*/false);
    if (!projected.ok()) return projected.status();
    out->table = std::move(projected).value();
  } else if (q.ctps.empty()) {
    // Pure-BGP streaming: the join is the result; emit its rows in order.
    BindingTable acc = GreedyJoin(all_tables(), /*consume=*/true);
    auto projected = acc.Project(q.head, /*distinct=*/false);
    if (!projected.ok()) return projected.status();
    const BindingTable& t = *projected;
    for (size_t r = 0; r < t.NumRows() && !stream->stopped; ++r) {
      StreamRow row;
      row.values = t.Row(r);
      ++stream->rows;
      if (stream->first_row_ms < 0) stream->first_row_ms = stream->sw.ElapsedMs();
      if (!stream->sink->OnRow(std::move(row))) stream->stopped = true;
    }
  }
  out->join_ms = sw.ElapsedMs();
  out->total_ms = total_sw.ElapsedMs();

  // Cancellation from any lever — sink early-stop, Cursor::Close, or a
  // caller-owned ExecOptions::cancel — must be visible in the result, or a
  // truncated partial answer masquerades as a complete one.
  out->cancelled = (stream != nullptr && stream->stopped) ||
                   (env.cancel != nullptr &&
                    env.cancel->load(std::memory_order_relaxed));
  for (const CtpRunInfo& run : out->ctp_runs) {
    out->cancelled |= run.stats.cancelled;
  }
  // Structured outcome: the worst cutoff across the query's CTP runs, plus
  // engine-level cancellation (a sink stop or ExecOptions::cancel can fire
  // after every search finished clean).
  out->outcome = SearchOutcome::kOk;
  for (const CtpRunInfo& run : out->ctp_runs) {
    out->outcome = CombineOutcomes(out->outcome, run.stats.Outcome());
  }
  if (out->cancelled) {
    out->outcome = CombineOutcomes(out->outcome, SearchOutcome::kCancelled);
  }

  if (stream != nullptr) {
    out->rows_streamed = stream->rows;
    out->first_row_ms = stream->first_row_ms;
    // Rows went to the sink; the materialized registry (used only to remap
    // earlier-stage tree columns during emission) is not part of the
    // streaming contract.
    out->trees.clear();
    out->table = BindingTable();
  }
  return Status::Ok();
}

/// One-shot run with an optional batch-scoped CSE store threaded through to
/// ExecutePlan. Binding semantics match PreparedQuery::Execute with no
/// params (a query with `$` placeholders errors identically).
Result<QueryResult> EqlEngine::RunWithCse(std::string_view query_text,
                                          BatchCseCache* batch_cse) const {
  auto prepared = Prepare(query_text);
  if (!prepared.ok()) return prepared.status();
  const PreparedQuery::Plan& plan = *prepared->plan_;
  Query bound_storage;
  auto bound = BindForExecute(plan, {}, &bound_storage);
  if (!bound.ok()) return bound.status();
  QueryResult out;
  Status st =
      ExecutePlan(plan, **bound, ExecOptions{}, nullptr, batch_cse, &out);
  if (!st.ok()) return st;
  return out;
}

std::vector<Result<QueryResult>> EqlEngine::RunBatch(
    std::span<const std::string_view> queries) const {
  // One CSE store per batch: queries repeating a self-grounded CTP table
  // spec (a common dashboard shape) search once and share the result.
  BatchCseCache batch_cse;
  BatchCseCache* cse = options_.use_planner ? &batch_cse : nullptr;
  std::vector<std::optional<Result<QueryResult>>> staged(queries.size());
  if (executor_ == nullptr || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      staged[i].emplace(RunWithCse(queries[i], cse));
    }
  } else {
    CtpExecutor::TaskGroup group;
    for (size_t i = 0; i < queries.size(); ++i) {
      executor_->Submit(&group, [this, &staged, &queries, cse, i] {
        staged[i].emplace(RunWithCse(queries[i], cse));
      });
    }
    executor_->Wait(&group);
  }
  std::vector<Result<QueryResult>> out;
  out.reserve(staged.size());
  for (auto& s : staged) out.push_back(std::move(*s));
  return out;
}

std::string QueryResult::RowToString(const Graph& g, size_t r) const {
  std::string out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += "  ";
    out += "?" + table.columns()[c] + "=";
    uint32_t v = table.At(r, c);
    switch (table.kind(c)) {
      case ColKind::kNode:
        out += g.NodeLabel(v);
        break;
      case ColKind::kEdge:
        out += "[" + g.EdgeToString(v) + "]";
        break;
      case ColKind::kTree: {
        const ResultTreeInfo& t = trees[v];
        out += "{";
        for (size_t i = 0; i < t.edges.size(); ++i) {
          if (i > 0) out += ", ";
          out += g.EdgeToString(t.edges[i]);
        }
        out += "}";
        break;
      }
    }
  }
  return out;
}

}  // namespace eql
