#include "eval/engine.h"

#include <algorithm>
#include <optional>

#include "query/parser.h"
#include "query/validator.h"
#include "storage/bgp_eval.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace eql {

EqlEngine::EqlEngine(const Graph& g, EngineOptions options)
    : g_(g), options_(options) {
  if (options_.executor != nullptr) {
    executor_ = options_.executor;
  } else if (options_.num_threads > 1) {
    owned_executor_ = std::make_unique<CtpExecutor>(options_.num_threads);
    executor_ = owned_executor_.get();
  }
}

Result<QueryResult> EqlEngine::Run(std::string_view query_text) const {
  auto parsed = ParseQuery(query_text);
  if (!parsed.ok()) return parsed.status();
  Query q = std::move(parsed).value();
  Status st = ValidateQuery(&q);
  if (!st.ok()) return st;
  return RunParsed(q);
}

namespace {

/// Builds engine-level CtpFilters from the query's filter spec + defaults.
Result<CtpFilters> CompileFilters(const Graph& g, const CtpFilterSpec& spec,
                                  const EngineOptions& opts,
                                  std::unique_ptr<ScoreFunction>* score_out) {
  CtpFilters f;
  f.unidirectional = spec.uni;
  if (spec.labels) {
    std::vector<StrId> ids;
    for (const std::string& l : *spec.labels) {
      StrId id = g.dict().Lookup(l);
      if (id != kNoStrId) ids.push_back(id);
      // Unknown labels simply cannot match any edge; they narrow the set.
    }
    f.allowed_labels = std::move(ids);
    f.NormalizeLabels();
  }
  if (spec.max_edges) f.max_edges = *spec.max_edges;
  f.timeout_ms = spec.timeout_ms ? *spec.timeout_ms : opts.default_ctp_timeout_ms;
  if (spec.limit) f.limit = *spec.limit;
  if (opts.default_max_trees > 0) f.max_trees = opts.default_max_trees;
  if (spec.score) {
    *score_out = CreateScoreFunction(*spec.score);
    if (*score_out == nullptr) {
      return Status::InvalidArgument("unknown score function '" + *spec.score +
                                     "' (try edge_count, degree_penalty, "
                                     "label_diversity, root_degree)");
    }
    f.score = score_out->get();
    if (spec.top_k) f.top_k = *spec.top_k;
  }
  return f;
}

}  // namespace

/// Staged output of one CTP evaluation: everything RunParsed needs to stitch
/// the CTP table into the query. Tree handles are still CTP-local — row i
/// pairs with trees[i], and the stitch step offsets them into
/// QueryResult::trees — so stages can be produced concurrently.
struct EqlEngine::CtpStage {
  CtpRunInfo run;
  std::vector<ResultTreeInfo> trees;
  std::vector<std::vector<uint32_t>> rows;  ///< member bindings, no tree col
};

Status EqlEngine::EvalOneCtp(const CtpPattern& ctp,
                             const std::vector<BindingTable>& tables,
                             CtpStage* stage) const {
  CtpRunInfo& run = stage->run;
  run.tree_var = ctp.tree_var;

  std::vector<std::vector<NodeId>> sets;
  std::vector<bool> universal;
  for (const Predicate& member : ctp.members) {
    const BindingTable* source_table = nullptr;
    for (const BindingTable& t : tables) {
      if (t.HasColumn(member.var)) {
        source_table = &t;
        break;
      }
    }
    if (source_table != nullptr) {
      // Bound by a BGP: seed set = distinct bindings, narrowed by the
      // member's own predicate if it has one (Section 3, step B.1).
      std::vector<NodeId> nodes = source_table->DistinctValues(member.var);
      if (!member.IsEmpty()) {
        std::erase_if(nodes, [&](NodeId n) {
          return !PredicateMatches(g_, member, n, true);
        });
      }
      sets.push_back(std::move(nodes));
      universal.push_back(false);
    } else if (!member.IsEmpty()) {
      sets.push_back(NodesMatchingPredicate(g_, member));
      universal.push_back(false);
    } else if (options_.materialize_universal_sets) {
      // Ablation path: instantiate N explicitly (an Init tree per graph
      // node) — the blowup Section 4.9 (i) exists to avoid.
      std::vector<NodeId> all(g_.NumNodes());
      for (NodeId n = 0; n < g_.NumNodes(); ++n) all[n] = n;
      sets.push_back(std::move(all));
      universal.push_back(false);
    } else {
      // Unconstrained member: the universal N seed set (Section 4.9).
      sets.push_back({});
      universal.push_back(true);
    }
  }
  for (size_t i = 0; i < sets.size(); ++i) {
    run.seed_set_sizes.push_back(universal[i] ? SIZE_MAX : sets[i].size());
  }

  auto seeds = SeedSets::Make(g_, std::move(sets), universal);
  if (!seeds.ok()) {
    return Status(seeds.status().code(),
                  "CTP ?" + ctp.tree_var + ": " + seeds.status().message());
  }

  std::unique_ptr<ScoreFunction> score;
  auto filters = CompileFilters(g_, ctp.filters, options_, &score);
  if (!filters.ok()) return filters.status();
  if (seeds->HasUniversal() && filters->limit == UINT64_MAX &&
      options_.universal_default_limit > 0) {
    filters->limit = options_.universal_default_limit;
  }

  // Dead-label short-circuit: a LABEL clause whose names all miss the
  // dictionary admits no edge, so unless a single seed node alone satisfies
  // every required set (a zero-edge result), the CTP table is empty and the
  // search — Init trees, signatures, merge machinery — can be skipped.
  if (ctp.filters.labels && !ctp.filters.labels->empty() &&
      filters->allowed_labels && filters->allowed_labels->empty()) {
    bool zero_edge_possible = false;
    for (NodeId n : seeds->AllSeeds()) {
      if (seeds->Signature(n).Contains(seeds->RequiredMask())) {
        zero_edge_possible = true;
        break;
      }
    }
    if (!zero_edge_possible) {
      run.dead_labels = true;
      run.stats.complete = true;
      return Status::Ok();  // stage stays empty -> empty CTP table
    }
  }

  // Section 4.9: universal sets or badly skewed sizes -> subset queues.
  QueueStrategy qs = QueueStrategy::kSingle;
  if (options_.auto_queue_strategy) {
    size_t min_size = SIZE_MAX, max_size = 0;
    for (int i = 0; i < seeds->num_sets(); ++i) {
      if (seeds->IsUniversal(i)) continue;
      min_size = std::min(min_size, seeds->SetSize(i));
      max_size = std::max(max_size, seeds->SetSize(i));
    }
    if (seeds->HasUniversal() ||
        (min_size > 0 && static_cast<double>(max_size) / min_size >=
                             options_.skew_threshold)) {
      qs = QueueStrategy::kPerSatSubset;
    }
  }
  run.used_subset_queues = qs == QueueStrategy::kPerSatSubset;

  // Adaptive choice (Property 3): two plain seed sets are fully served by
  // the cheaper ESP; anything else gets the configured default.
  AlgorithmKind kind = options_.algorithm;
  if (options_.adaptive_algorithm && seeds->num_sets() == 2 &&
      !seeds->HasUniversal() && !filters->unidirectional) {
    kind = AlgorithmKind::kEsp;
  }
  run.algorithm = kind;

  // Worker-pool path: chunk the CTP across the pool (ctp/parallel.h) when
  // one is configured and some seed set is splittable.
  bool parallel = executor_ != nullptr && options_.num_threads > 1 &&
                  IsGamFamily(kind);
  if (parallel) {
    bool splittable = false;
    for (int i = 0; i < seeds->num_sets(); ++i) {
      if (!seeds->IsUniversal(i) && seeds->SetSize(i) > 0) {
        splittable = true;
        break;
      }
    }
    parallel = splittable;
  }
  if (parallel) {
    ParallelCtpOptions popts;
    popts.num_threads = options_.num_threads;
    popts.algorithm = kind;
    popts.queue_strategy = qs;
    popts.use_views = options_.use_compiled_views;
    popts.incremental_scores = options_.incremental_scores;
    popts.bound_pruning = options_.bound_pruning;
    auto outcome = executor_->Evaluate(g_, *seeds, *filters, popts);
    if (!outcome.ok()) return outcome.status();
    run.used_view = outcome->used_view;
    run.stats = outcome->stats;
    run.num_results = outcome->results.size();
    run.parallel_chunks = outcome->threads_used;
    for (const CtpResult& r : outcome->results) {
      std::vector<uint32_t> row;
      row.reserve(ctp.members.size());
      for (NodeId n : r.seed_of_set) row.push_back(n);
      stage->rows.push_back(std::move(row));
      stage->trees.push_back(ResultTreeInfo{
          outcome->arena.EdgeSet(r.tree), outcome->arena.Get(r.tree).root,
          r.score});
    }
    return Status::Ok();
  }

  // Sequential path: compile (or fetch) the filter view. BFT under UNI is
  // rejected downstream, so only GAM-family searches request the backward
  // layout. The cache is the executor's when a pool exists — RunBatch
  // queries then share compiled views — and engine-local otherwise.
  CtpAlgorithmTuning tuning;
  tuning.incremental_scores = options_.incremental_scores;
  tuning.bound_pruning = options_.bound_pruning;
  std::shared_ptr<const CompiledCtpView> view;
  if (options_.use_compiled_views &&
      (filters->allowed_labels.has_value() || filters->unidirectional) &&
      (IsGamFamily(kind) || !filters->unidirectional)) {
    ViewCache& cache =
        executor_ != nullptr ? executor_->view_cache() : view_cache_;
    view = cache.Get(g_, filters->allowed_labels,
                     CompiledCtpView::DirectionFor(filters->unidirectional));
    tuning.view = view.get();
    run.used_view = true;
  }
  auto algo = CreateCtpAlgorithm(kind, g_, *seeds, std::move(filters).value(),
                                 nullptr, qs, tuning);
  Status st = algo->Run();
  if (!st.ok()) return st;
  run.stats = algo->stats();
  run.num_results = algo->results().size();
  for (const CtpResult& r : algo->results().results()) {
    std::vector<uint32_t> row;
    row.reserve(ctp.members.size());
    for (NodeId n : r.seed_of_set) row.push_back(n);
    stage->rows.push_back(std::move(row));
    stage->trees.push_back(ResultTreeInfo{algo->arena().EdgeSet(r.tree),
                                          algo->arena().Get(r.tree).root,
                                          r.score});
  }
  return Status::Ok();
}

Result<QueryResult> EqlEngine::RunParsed(const Query& q) const {
  Stopwatch total_sw;
  QueryResult out;

  // ---- Step (A): evaluate every BGP into a binding table.
  Stopwatch sw;
  std::vector<BindingTable> tables;
  for (const auto& bgp : GroupIntoBgps(q.patterns)) {
    auto t = EvaluateBgp(g_, bgp);
    if (!t.ok()) return t.status();
    tables.push_back(std::move(t).value());
  }
  out.bgp_ms = sw.ElapsedMs();

  // ---- Step (B): evaluate every CTP against seed sets derived from (A).
  sw.Restart();

  // A later CTP may seed a member from an earlier CTP's table (a variable
  // bound by no BGP but shared with an earlier CONNECT). Such dependent
  // CTPs must run serially in query order with the tables threaded through;
  // only independent CTPs may be dispatched concurrently onto the pool.
  bool dependent = false;
  for (size_t i = 1; i < q.ctps.size() && !dependent; ++i) {
    for (const Predicate& m : q.ctps[i].members) {
      bool in_bgp = false;
      for (const BindingTable& t : tables) in_bgp |= t.HasColumn(m.var);
      if (in_bgp) continue;
      for (size_t j = 0; j < i && !dependent; ++j) {
        if (q.ctps[j].tree_var == m.var) dependent = true;
        for (const Predicate& pm : q.ctps[j].members) {
          if (pm.var == m.var) dependent = true;
        }
      }
    }
  }

  std::vector<CtpStage> stages(q.ctps.size());
  // Appends stage i's CTP table (member vars + tree handle) to `tables` and
  // its trees/run info to `out`, offsetting the stage-local tree indexes.
  auto stitch = [&](size_t i) {
    CtpStage& stage = stages[i];
    const CtpPattern& ctp = q.ctps[i];
    std::vector<std::string> cols;
    std::vector<ColKind> kinds;
    for (const Predicate& m : ctp.members) {
      cols.push_back(m.var);
      kinds.push_back(ColKind::kNode);
    }
    cols.push_back(ctp.tree_var);
    kinds.push_back(ColKind::kTree);
    BindingTable ctp_table(std::move(cols), std::move(kinds));
    const uint32_t tree_offset = static_cast<uint32_t>(out.trees.size());
    for (size_t r = 0; r < stage.rows.size(); ++r) {
      std::vector<uint32_t> row = std::move(stage.rows[r]);
      row.push_back(tree_offset + static_cast<uint32_t>(r));
      ctp_table.AddRow(std::move(row));
    }
    for (ResultTreeInfo& t : stage.trees) out.trees.push_back(std::move(t));
    tables.push_back(std::move(ctp_table));
    out.ctp_runs.push_back(std::move(stage.run));
  };

  if (!dependent && executor_ != nullptr && q.ctps.size() > 1) {
    std::vector<Status> stage_status(q.ctps.size());
    CtpExecutor::TaskGroup group;
    for (size_t i = 0; i < q.ctps.size(); ++i) {
      executor_->Submit(&group, [this, &q, &tables, &stages, &stage_status, i] {
        stage_status[i] = EvalOneCtp(q.ctps[i], tables, &stages[i]);
      });
    }
    executor_->Wait(&group);
    for (size_t i = 0; i < q.ctps.size(); ++i) {
      if (!stage_status[i].ok()) return stage_status[i];
      stitch(i);
    }
  } else {
    for (size_t i = 0; i < q.ctps.size(); ++i) {
      Status st = EvalOneCtp(q.ctps[i], tables, &stages[i]);
      if (!st.ok()) return st;
      stitch(i);  // before the next CTP: it may seed from this table
    }
  }
  out.ctp_ms = sw.ElapsedMs();

  // ---- Step (C): natural-join everything and project the head.
  sw.Restart();
  BindingTable acc;
  if (!tables.empty()) {
    // Join tables that share columns first; cross products last.
    std::vector<bool> used(tables.size(), false);
    acc = std::move(tables[0]);
    used[0] = true;
    for (size_t step = 1; step < tables.size(); ++step) {
      int best = -1;
      for (size_t i = 0; i < tables.size(); ++i) {
        if (used[i]) continue;
        for (const auto& col : tables[i].columns()) {
          if (acc.HasColumn(col)) {
            best = static_cast<int>(i);
            break;
          }
        }
        if (best >= 0) break;
      }
      if (best < 0) {  // no shared columns anywhere: cross with the first unused
        for (size_t i = 0; i < tables.size() && best < 0; ++i) {
          if (!used[i]) best = static_cast<int>(i);
        }
      }
      acc = BindingTable::NaturalJoin(acc, tables[best]);
      used[best] = true;
    }
  }
  auto projected = acc.Project(q.head, /*distinct=*/false);
  if (!projected.ok()) return projected.status();
  out.table = std::move(projected).value();
  out.join_ms = sw.ElapsedMs();
  out.total_ms = total_sw.ElapsedMs();
  return out;
}

std::vector<Result<QueryResult>> EqlEngine::RunBatch(
    std::span<const std::string_view> queries) const {
  std::vector<std::optional<Result<QueryResult>>> staged(queries.size());
  if (executor_ == nullptr || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) staged[i].emplace(Run(queries[i]));
  } else {
    CtpExecutor::TaskGroup group;
    for (size_t i = 0; i < queries.size(); ++i) {
      executor_->Submit(&group, [this, &staged, &queries, i] {
        staged[i].emplace(Run(queries[i]));
      });
    }
    executor_->Wait(&group);
  }
  std::vector<Result<QueryResult>> out;
  out.reserve(staged.size());
  for (auto& s : staged) out.push_back(std::move(*s));
  return out;
}

std::string QueryResult::RowToString(const Graph& g, size_t r) const {
  std::string out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += "  ";
    out += "?" + table.columns()[c] + "=";
    uint32_t v = table.At(r, c);
    switch (table.kind(c)) {
      case ColKind::kNode:
        out += g.NodeLabel(v);
        break;
      case ColKind::kEdge:
        out += "[" + g.EdgeToString(v) + "]";
        break;
      case ColKind::kTree: {
        const ResultTreeInfo& t = trees[v];
        out += "{";
        for (size_t i = 0; i < t.edges.size(); ++i) {
          if (i > 0) out += ", ";
          out += g.EdgeToString(t.edges[i]);
        }
        out += "}";
        break;
      }
    }
  }
  return out;
}

}  // namespace eql
