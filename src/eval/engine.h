// The EQL engine: parses, validates, plans and executes extended queries —
// the full evaluation strategy of Section 3.
//
//   (A) evaluate every BGP b_i into a binding table B_i;
//   (B) for every CTP: derive seed sets from the B_i (or from node
//       predicates; unconstrained members become universal N sets), push the
//       CTP filters into the search, run the configured algorithm (MoLESP by
//       default), and materialize the (s_1..s_m, t) tuples as a table;
//   (C) natural-join all tables and project the head.
//
// Section 4.9 robustness: when a CTP has a universal set or badly skewed
// seed-set sizes, the engine switches the search to per-sat-subset queues
// automatically (EngineOptions::auto_queue_strategy).
//
// Public surface (this header + eval/sink.h + eval/params.h):
//
//   * One-shot: EqlEngine::Run(text) — parse, validate, plan, execute,
//     materialize.
//   * Prepared: EqlEngine::Prepare(text) compiles the front end ONCE —
//     parse, validation, the BGP/CTP stage graph, score-function and LABEL
//     resolution, pre-warmed compiled views — into a PreparedQuery whose
//     Execute(params) re-binds `$name` placeholders against the cached plan.
//   * Streaming: Execute(params, sink) pushes joined rows into a ResultSink
//     as the CTP search produces connecting trees; Cursor wraps that in a
//     pull interface. Early stop cancels the underlying searches, including
//     chunk workers on the pool.
//   * Per-call overrides: ExecOptions adjusts timeouts, TOP-k, chunking and
//     feature toggles per Execute, so one long-lived engine + pool serves
//     heterogeneous traffic.
//
// Failure semantics (the resource-governor / graceful-degradation contract):
//   * Resource exhaustion is an *outcome*, not an error. A query that hits a
//     TIMEOUT, the per-query memory budget, a cancel flag, or an injected
//     fault still returns Ok with a well-formed QueryResult; only Status-
//     level failures (parse/validate/bind errors, impossible plans) surface
//     as errors. QueryResult::outcome says which cutoff — if any — ended the
//     run (kOk | kTimeout | kCancelled | kMemoryBudget | kFaultInjected,
//     worst across the query's searches), and per-CTP detail sits in
//     ctp_runs[i].stats (Outcome(), complete, memory_bytes_peak).
//   * `stats.complete == false` means the search stopped before exhausting
//     its space: the result is a subset of the full answer. Which subset is
//     deterministic for cutoffs that do not depend on wall-clock (LIMIT,
//     max_trees: the first N in search order) and best-effort for those that
//     do (TIMEOUT, memory budget on differently-sized machines, cancel).
//   * Budgets: per-CTP TIMEOUT (query text), default_ctp_timeout_ms,
//     default_query_timeout_ms / ExecOptions::query_timeout_ms (one shared
//     absolute deadline clamping every CTP), LIMIT / max_trees (counted
//     truncations, outcome stays kOk), and memory_budget_bytes (per query;
//     divided equally among parallel chunks; enforced against the searches'
//     own byte accounting at the same ~128-op poll sites as the deadline).
//   * Ordering of partial results: a cut-off search finalizes exactly like a
//     complete one (dedup, TOP-k sort, deterministic parallel total order),
//     so partial output is always a *prefix* of some valid result order —
//     streaming executions in emission order, materialized TOP-k runs in
//     score order over the results found so far. Rows are never silently
//     dropped after they were emitted; a mid-stream cutoff just ends the
//     stream early and reports the outcome in the summary.
//
// Planning & EXPLAIN (the algebraic plan layer, eval/plan.h):
//   * Prepare lowers the validated query into a PhysicalPlan: one stage per
//     BGP group and per CTP, each CTP member's seed-set source (BGP table,
//     earlier CTP table, own predicate, or universal) resolved once, plus
//     per-stage cardinality/cost estimates from graph statistics
//     (eval/stats.h; cached per Graph::uid(), which is immutable after
//     Finalize — the invalidation rule is "new graph, new uid, new stats").
//   * COST-MODEL UNITS: estimated edge visits — seed counts times a
//     saturating branching series for CTP searches, index-scan sizes for
//     BGP scans. Deterministic (pure integer/IEEE arithmetic, no clocks),
//     so EXPLAIN output is stable across runs and machines.
//   * With EngineOptions::use_planner (default on; per-call override
//     ExecOptions::use_planner), independent CTP stages execute in
//     cost-ascending order instead of query order, stages that can no
//     longer contribute rows (an upstream stage produced an empty table)
//     skip their search — seed derivation and its error paths still run, so
//     diagnostics do not change — and CTPs with identical self-grounded
//     table specs share one search (also across RunBatch). Dependent stages
//     run as DAG waves on the pool instead of fully serially.
//   * The planner never changes WHERE a seed set comes from — CTP results
//     are defined relative to their full seed sets (Def 2.8), so binding
//     sources are pinned at plan time. Final-join input order is the fixed
//     stage order in both modes; consequently use_planner=false is
//     byte-identical to the pre-planner engine, and use_planner=true
//     returns the same projected rows (telemetry, tree-registry indexing
//     and which of several possible errors surfaces first may differ).
//     Deterministic fault injection (ExecOptions::fault) forces the fixed
//     order so armed sites fire where tests expect them.
//   * PreparedQuery::Explain() renders the plan tree with estimates;
//     Explain(result) adds per-stage actual cardinalities and outcomes.
//     eql_shell exposes both as `.explain` / `--explain` and `.stats`.
//
// Thread-safety and lifetime contract:
//   * EqlEngine is const and thread-safe after construction; it must outlive
//     every PreparedQuery and Cursor it hands out (handles keep a pointer to
//     the engine, not a copy).
//   * PreparedQuery is immutable; any number of threads may Execute the same
//     handle concurrently. Copies share the underlying plan. Parameters are
//     per-call: a ParamMap is read-only during execution and owned by the
//     caller.
//   * The Graph must outlive the engine (and hence every handle).
#ifndef EQL_EVAL_ENGINE_H_
#define EQL_EVAL_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ctp/algorithm.h"
#include "ctp/parallel.h"
#include "eval/params.h"
#include "eval/sink.h"
#include "graph/graph.h"
#include "query/ast.h"
#include "storage/binding_table.h"
#include "util/status.h"

namespace eql {

/// Engine-wide defaults; per-CTP filters in the query override them, and
/// per-call ExecOptions override both.
struct EngineOptions {
  AlgorithmKind algorithm = AlgorithmKind::kMoLesp;
  /// Pick the cheapest algorithm whose completeness guarantee covers the
  /// CTP: ESP for plain two-seed-set CTPs (complete by Property 3 and
  /// fastest, Fig. 11), `algorithm` otherwise. A first step towards the
  /// paper's "adaptive EQL optimization" future work (Section 6).
  bool adaptive_algorithm = false;
  int64_t default_ctp_timeout_ms = 60000;
  /// Whole-query wall-clock budget in milliseconds; < 0 = none. Every CTP's
  /// own TIMEOUT is additionally clamped to the *remaining* query budget, so
  /// a multi-CTP query can no longer run ~N x the per-CTP budget — the
  /// deadline is one shared absolute point in time, like the parallel
  /// executor's chunk deadline. CTPs that start after expiry report
  /// timed_out with empty tables; the query still returns its well-formed
  /// (possibly empty) result rather than an error.
  int64_t default_query_timeout_ms = -1;
  /// Safety cap on kept provenances per CTP (0 = unbounded).
  uint64_t default_max_trees = 0;
  /// Cap on emitted results per CTP when a universal (N) seed set makes the
  /// result space unbounded and the query gives no LIMIT.
  uint64_t universal_default_limit = 10000;
  /// Enable Section 4.9 handling (universal sets, per-subset queues).
  bool auto_queue_strategy = true;
  /// max/min seed-set size ratio that triggers per-subset queues.
  double skew_threshold = 64.0;
  /// Ablation switch: materialize universal (N) members as explicit all-node
  /// seed sets instead of applying Section 4.9 (i). Exists to demonstrate
  /// why the optimization matters (Table 1); never enable in production.
  bool materialize_universal_sets = false;
  /// Compile each CTP's LABEL/UNI predicates into a cached adjacency view
  /// (ctp/view.h): the search then iterates pre-qualified edges with zero
  /// per-edge predicate work, and queries sharing a label vocabulary share
  /// the compiled view (the cache lives in the executor when one is
  /// configured, in the engine otherwise).
  bool use_compiled_views = true;
  /// Maintain decomposable score functions incrementally in the tree arena
  /// (ctp/score.h): result scoring becomes O(1) instead of O(|tree|).
  bool incremental_scores = true;
  /// Sound TOP-k bound pruning for anti-monotone decomposable scores
  /// (ctp/gam.h): provably answer-preserving for every search that runs to
  /// completion (it disables itself under LIMIT/tree budgets, whose
  /// truncation is deterministic), so on by default. A search cut off by
  /// TIMEOUT reports whatever the deadline allowed — already best-effort
  /// and machine-dependent without pruning; pruning changes which prefix
  /// fits, typically for the better (low-bound subtrees are skipped first).
  bool bound_pruning = true;
  /// CTP parallelism: the number of seed-set chunks each CTP is split into
  /// and dispatched onto the worker pool (ctp/parallel.h). 0 or 1 =
  /// sequential, in-process evaluation. Parallel CTP results are emitted in
  /// the executor's deterministic total order, not search order.
  unsigned num_threads = 0;
  /// Pool to run on (not owned). nullptr with num_threads > 1 makes the
  /// engine build a private pool with num_threads workers; pass a shared
  /// pool to amortize workers (and their arenas) across engines.
  CtpExecutor* executor = nullptr;
  /// Default per-query memory budget (bytes; 0 = unlimited) on the search-
  /// side allocators — see CtpFilters::memory_budget_bytes and the "Failure
  /// semantics" section above. Each CTP of a query checks against the full
  /// budget (CTPs run against recycled arenas, not cumulatively); parallel
  /// chunks split it equally.
  uint64_t default_memory_budget_bytes = 0;
  /// Cost-based stage execution (see "Planning & EXPLAIN" above): reorder
  /// independent CTP stages cheapest-first, short-circuit stages that
  /// cannot contribute rows, share identical self-grounded CTP searches,
  /// and run dependent stages as DAG waves. false = the fixed query-order
  /// path, byte-identical to the pre-planner engine.
  bool use_planner = true;
};

/// Per-call overrides for one Execute/Run: every set field supersedes the
/// engine's EngineOptions (and, for top_k, the query's own TOP) for that
/// call only. Defaults leave everything untouched, so Execute(params) with a
/// default ExecOptions is byte-identical to the engine-options run.
struct ExecOptions {
  /// Whole-query deadline for this call (ms; < 0 = none). See
  /// EngineOptions::default_query_timeout_ms for the clamping semantics.
  std::optional<int64_t> query_timeout_ms;
  /// Default per-CTP TIMEOUT for CTPs that set none in the query text.
  std::optional<int64_t> ctp_timeout_ms;
  /// Overrides TOP k on every CTP that carries a SCORE (ignored otherwise —
  /// a score function is what makes "the k best" well-defined).
  std::optional<int> top_k;
  /// Per-CTP chunk count for this call. > 1 uses the engine's pool when it
  /// has one, else the process-wide default pool (CtpExecutor::Default());
  /// 0/1 forces sequential evaluation even on a pooled engine.
  std::optional<unsigned> num_threads;
  std::optional<AlgorithmKind> algorithm;
  std::optional<bool> adaptive_algorithm;
  std::optional<bool> use_compiled_views;
  std::optional<bool> incremental_scores;
  std::optional<bool> bound_pruning;
  /// Overrides EngineOptions::use_planner for this call.
  std::optional<bool> use_planner;
  /// Per-query memory budget for this call (bytes; 0 = unlimited).
  /// Overrides EngineOptions::default_memory_budget_bytes.
  std::optional<uint64_t> memory_budget_bytes;
  /// Caller-owned cancellation flag (not owned; may be null). Setting it
  /// stops the execution at the searches' deadline-check sites — including
  /// pool chunks — within ~128 operations, whether or not any row is in
  /// flight. Cursor::Close uses this to tear down a stream whose search is
  /// grinding on without producing rows.
  std::atomic<bool>* cancel = nullptr;
  /// Liveness telemetry (not owned; may be null): the execution's searches
  /// increment it at every batched deadline-poll site (~every 128 search
  /// operations, the same cadence as `cancel` observation), including pool
  /// chunks. A caller holding a deadline can sample it to distinguish a
  /// query that is advancing slowly from one that is wedged — the eqld
  /// stuck-query watchdog (src/server/watchdog.h) does exactly that before
  /// firing `cancel` on an overdue query. Never read by the engine.
  std::atomic<uint64_t>* progress = nullptr;
  /// Deterministic fault injection for this call (util/fault.h; not owned,
  /// may be null). Threaded into every search and the parallel merge step;
  /// see GamConfig::fault / ParallelCtpOptions::fault. Tests only.
  FaultInjector* fault = nullptr;
};

/// Per-CTP execution report.
struct CtpRunInfo {
  std::string tree_var;
  SearchStats stats;  ///< stats.first_result_ms = time to first tree (ms)
  size_t num_results = 0;
  bool used_subset_queues = false;
  AlgorithmKind algorithm = AlgorithmKind::kMoLesp;  ///< what actually ran
  std::vector<size_t> seed_set_sizes;  ///< SIZE_MAX marks a universal set
  unsigned parallel_chunks = 0;  ///< seed-set chunks used; 0 = sequential
  /// The search iterated a compiled filter view (ctp/view.h) instead of
  /// filtering the full incidence CSR per edge.
  bool used_view = false;
  /// The LABEL filter named only labels absent from the dictionary and no
  /// zero-edge result was possible: the search was short-circuited to an
  /// empty table (no edge can match a dead label set).
  bool dead_labels = false;
  /// Rows of this CTP reached the sink incrementally, straight from the
  /// search's emission hook (streaming executions only; false means the CTP
  /// materialized first — parallel chunking and TOP-k both require the full
  /// candidate set before any row is final).
  bool streamed_rows = false;
  /// The planner skipped this CTP's search because an upstream stage
  /// produced an empty table, so no row of this stage could survive the
  /// final join. Seed derivation and filter compilation still ran (their
  /// error paths are part of the query's semantics); stats reflect no
  /// search work.
  bool skipped = false;
  /// This CTP reused the rows/trees of an identical earlier CTP (common-
  /// sub-expression sharing, in-query or across RunBatch) instead of
  /// searching; stats are copied from the canonical run.
  bool shared = false;
};

/// The outcome of one query: a head-projected table plus the tree registry
/// that kTree columns index into, and execution telemetry. A streaming
/// execution (Execute with a sink) reports telemetry only: rows went to the
/// sink, so `table`/`trees` stay empty and rows_streamed/first_row_ms record
/// what the sink saw.
struct QueryResult {
  BindingTable table;
  std::vector<ResultTreeInfo> trees;
  std::vector<CtpRunInfo> ctp_runs;
  /// Row count of each BGP group's binding table, in group order (feeds the
  /// per-stage "actual" column of PreparedQuery::Explain).
  std::vector<uint64_t> bgp_rows;
  double bgp_ms = 0;
  double ctp_ms = 0;
  double join_ms = 0;
  double total_ms = 0;
  uint64_t rows_streamed = 0;   ///< rows delivered to the sink (streaming)
  double first_row_ms = -1;     ///< ms from Execute start to the first sink row
  /// The execution was stopped early — by the sink returning false, by
  /// Cursor::Close, or by a caller-owned ExecOptions::cancel flag. Partial
  /// results are never silently complete.
  bool cancelled = false;
  /// Structured outcome of the query: the worst SearchOutcome across its CTP
  /// runs (and kCancelled when `cancelled` is set). kOk does not imply the
  /// result is complete — LIMIT/max_trees truncations keep kOk; check
  /// ctp_runs[i].stats.complete for coverage. See "Failure semantics" above.
  SearchOutcome outcome = SearchOutcome::kOk;

  /// Renders row r as "var=value" pairs (labels for nodes, edge lists for
  /// trees).
  std::string RowToString(const Graph& g, size_t r) const;
};

class EqlEngine;

/// A query compiled once and executable many times: parsing, validation,
/// score-function construction, LABEL resolution, the dependent-CTP stage
/// analysis and compiled-view pre-warming all happened at Prepare time.
/// Execute re-binds `$name` parameters against the cached plan and runs.
///
/// Immutable and thread-safe: concurrent Execute calls on one handle are
/// fine (per-call state is local; the plan is read-only). Copies are cheap
/// and share the plan. The engine (and its graph) must outlive every handle.
class PreparedQuery {
 public:
  /// Materializing execution: byte-identical to EqlEngine::Run on the text
  /// with the parameter values written inline.
  Result<QueryResult> Execute(const ParamMap& params = {},
                              const ExecOptions& opts = {}) const;

  /// Streaming execution: rows are pushed into `sink` as the final CTP's
  /// search produces connecting trees (see eval/sink.h for the order
  /// contract). The returned QueryResult carries telemetry only. If the
  /// sink stops early, in-flight searches — including pool chunks — are
  /// cancelled via the shared-deadline check sites and the result is marked
  /// cancelled.
  Result<QueryResult> Execute(const ParamMap& params, ResultSink& sink,
                              const ExecOptions& opts = {}) const;

  /// EXPLAIN: renders the compiled plan tree — stages, seed sources,
  /// estimated cardinalities/costs (unit: edge visits) and the planned
  /// execution order. Deterministic text (no clocks); see "Planning &
  /// EXPLAIN" above.
  std::string Explain() const;
  /// EXPLAIN ANALYZE flavor: the same tree annotated per stage with actual
  /// cardinalities, algorithm, view use and outcome taken from `result`
  /// (which should come from executing this prepared query). Times are
  /// deliberately omitted to keep the text machine-independent.
  std::string Explain(const QueryResult& result) const;

  /// The `$name` placeholders Execute must bind, in first-appearance order.
  const std::vector<std::string>& param_names() const;
  /// The validated (unbound) query.
  const Query& query() const;
  /// Streamed-row schema (the head's columns and kinds).
  const RowSchema& schema() const;

  /// Opaque compiled plan (defined in engine.cc); exposed as a name only so
  /// the engine can hand plans around.
  struct Plan;

 private:
  friend class EqlEngine;
  PreparedQuery(const EqlEngine* engine, std::shared_ptr<const Plan> plan)
      : engine_(engine), plan_(std::move(plan)) {}

  const EqlEngine* engine_;
  std::shared_ptr<const Plan> plan_;
};

/// Pull-style wrapper over the streaming execution: the query runs on a
/// background thread into a bounded row buffer; Next() blocks for the next
/// row and the producer blocks when the buffer is full (backpressure).
/// Close() — or destruction — cancels the underlying searches and joins the
/// thread. Move-only; not thread-safe (one consumer).
class Cursor {
 public:
  Cursor(Cursor&&) noexcept;
  Cursor& operator=(Cursor&&) noexcept;
  ~Cursor();

  /// Blocks for the next row; false when the stream is exhausted, errored,
  /// or closed. After false, status()/summary() are final.
  bool Next(StreamRow* row);

  /// Row schema; blocks until the background execution published it.
  const RowSchema& schema();

  /// Stops the execution (cancelling in-flight searches) and joins the
  /// producer. Idempotent; implied by destruction.
  void Close();

  /// Final status of the execution; Ok while rows are still flowing.
  Status status() const;
  /// Telemetry of the finished execution; valid after Next returned false.
  const QueryResult& summary() const;

 private:
  friend class PreparedQuery;
  friend class EqlEngine;
  struct Impl;
  explicit Cursor(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Facade: construct once per graph, Run/Prepare queries repeatedly (const
/// and thread-safe: per-query state is local; the worker pool is internally
/// synchronized).
class EqlEngine {
 public:
  explicit EqlEngine(const Graph& g, EngineOptions options = {});
  ~EqlEngine();

  /// Compiles `query_text` into a reusable PreparedQuery (see its docs for
  /// the thread-safety/lifetime contract). The whole front end — lexing,
  /// parsing, validation, score construction, LABEL resolution, stage
  /// analysis, view pre-warming — runs here, once.
  Result<PreparedQuery> Prepare(std::string_view query_text) const;

  /// One-shot: parses + validates + executes. A thin wrapper over
  /// Prepare + Execute with a materializing result; parameterized queries
  /// are rejected here (there is nothing to bind `$name` against).
  Result<QueryResult> Run(std::string_view query_text) const;

  /// Executes an already-validated query. With a worker pool configured
  /// (EngineOptions::num_threads/executor), step (B) dispatches every CTP of
  /// the query onto the pool: the CTPs of one query run concurrently, and
  /// each GAM-family CTP is additionally chunk-parallel (ctp/parallel.h).
  Result<QueryResult> RunParsed(const Query& q) const;

  /// Executes many queries, amortizing the worker pool — and its per-worker
  /// arenas/scratch — across the batch: each query runs as one pool task
  /// (whose CTPs then fan out onto the same pool). Falls back to a serial
  /// loop when the engine has no pool. results[i] corresponds to queries[i].
  std::vector<Result<QueryResult>> RunBatch(
      std::span<const std::string_view> queries) const;

  /// Opens a pull-style cursor over a streaming execution of `prepared`
  /// (which must belong to this engine). Binding/validation errors surface
  /// through Cursor::status() after the first Next() returns false.
  Cursor OpenCursor(const PreparedQuery& prepared, const ParamMap& params = {},
                    const ExecOptions& opts = {}) const;

  const EngineOptions& options() const { return options_; }
  /// The pool CTPs run on; nullptr when evaluation is sequential.
  CtpExecutor* executor() const { return executor_; }

 private:
  friend class PreparedQuery;
  struct CtpStage;
  struct ExecEnv;
  struct StreamState;
  struct BatchCseCache;

  /// Builds the reusable plan behind Prepare/RunParsed.
  Result<std::shared_ptr<const PreparedQuery::Plan>> PlanQuery(Query q) const;

  /// Run with an optional batch-scoped CSE cache (RunBatch shares identical
  /// self-grounded CTP searches across its queries through one of these).
  Result<QueryResult> RunWithCse(std::string_view query_text,
                                 BatchCseCache* batch_cse) const;

  /// Runs a bound (parameter-free) query against its plan. `stream` null =
  /// materialize into out->table exactly as Run always has; non-null =
  /// stream rows into the sink and fill telemetry only. `batch_cse` may be
  /// null (no cross-query sharing).
  Status ExecutePlan(const PreparedQuery::Plan& plan, const Query& bound,
                     const ExecOptions& exec_opts, StreamState* stream,
                     BatchCseCache* batch_cse, QueryResult* out) const;

  /// Evaluates CTP `ctp_index` against the stage tables (indexed by stage
  /// id; only this CTP's plan-resolved source slots are read). With
  /// `skip_search` the stage runs in validation-only mode: seed derivation,
  /// filter compilation and their error paths execute, but the search —
  /// whose rows could not survive the final join — does not.
  Status EvalOneCtp(const CtpPattern& ctp, size_t ctp_index,
                    const PreparedQuery::Plan& plan, const ExecEnv& env,
                    const std::vector<BindingTable>& tables, bool skip_search,
                    CtpStage* stage) const;

  const Graph& g_;
  EngineOptions options_;
  std::unique_ptr<CtpExecutor> owned_executor_;
  CtpExecutor* executor_ = nullptr;
  /// Compiled-view cache for sequential evaluation without a pool; engines
  /// with a pool share the executor's cache instead. Internally
  /// synchronized, hence usable from the const Run methods.
  mutable ViewCache view_cache_;
};

}  // namespace eql

#endif  // EQL_EVAL_ENGINE_H_
