// The EQL engine: parses, validates, plans and executes extended queries —
// the full evaluation strategy of Section 3.
//
//   (A) evaluate every BGP b_i into a binding table B_i;
//   (B) for every CTP: derive seed sets from the B_i (or from node
//       predicates; unconstrained members become universal N sets), push the
//       CTP filters into the search, run the configured algorithm (MoLESP by
//       default), and materialize the (s_1..s_m, t) tuples as a table;
//   (C) natural-join all tables and project the head.
//
// Section 4.9 robustness: when a CTP has a universal set or badly skewed
// seed-set sizes, the engine switches the search to per-sat-subset queues
// automatically (EngineOptions::auto_queue_strategy).
#ifndef EQL_EVAL_ENGINE_H_
#define EQL_EVAL_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ctp/algorithm.h"
#include "graph/graph.h"
#include "query/ast.h"
#include "storage/binding_table.h"
#include "util/status.h"

namespace eql {

/// Engine-wide defaults; per-CTP filters in the query override them.
struct EngineOptions {
  AlgorithmKind algorithm = AlgorithmKind::kMoLesp;
  /// Pick the cheapest algorithm whose completeness guarantee covers the
  /// CTP: ESP for plain two-seed-set CTPs (complete by Property 3 and
  /// fastest, Fig. 11), `algorithm` otherwise. A first step towards the
  /// paper's "adaptive EQL optimization" future work (Section 6).
  bool adaptive_algorithm = false;
  int64_t default_ctp_timeout_ms = 60000;
  /// Safety cap on kept provenances per CTP (0 = unbounded).
  uint64_t default_max_trees = 0;
  /// Cap on emitted results per CTP when a universal (N) seed set makes the
  /// result space unbounded and the query gives no LIMIT.
  uint64_t universal_default_limit = 10000;
  /// Enable Section 4.9 handling (universal sets, per-subset queues).
  bool auto_queue_strategy = true;
  /// max/min seed-set size ratio that triggers per-subset queues.
  double skew_threshold = 64.0;
  /// Ablation switch: materialize universal (N) members as explicit all-node
  /// seed sets instead of applying Section 4.9 (i). Exists to demonstrate
  /// why the optimization matters (Table 1); never enable in production.
  bool materialize_universal_sets = false;
};

/// One materialized connecting tree in a query result.
struct ResultTreeInfo {
  std::vector<EdgeId> edges;
  NodeId root = kNoNode;
  double score = 0;
};

/// Per-CTP execution report.
struct CtpRunInfo {
  std::string tree_var;
  SearchStats stats;
  size_t num_results = 0;
  bool used_subset_queues = false;
  AlgorithmKind algorithm = AlgorithmKind::kMoLesp;  ///< what actually ran
  std::vector<size_t> seed_set_sizes;  ///< SIZE_MAX marks a universal set
};

/// The outcome of one query: a head-projected table plus the tree registry
/// that kTree columns index into, and execution telemetry.
struct QueryResult {
  BindingTable table;
  std::vector<ResultTreeInfo> trees;
  std::vector<CtpRunInfo> ctp_runs;
  double bgp_ms = 0;
  double ctp_ms = 0;
  double join_ms = 0;
  double total_ms = 0;

  /// Renders row r as "var=value" pairs (labels for nodes, edge lists for
  /// trees).
  std::string RowToString(const Graph& g, size_t r) const;
};

/// Facade: construct once per graph, Run queries repeatedly (const,
/// thread-compatible: no mutable state).
class EqlEngine {
 public:
  explicit EqlEngine(const Graph& g, EngineOptions options = {});

  /// Parses + validates + executes.
  Result<QueryResult> Run(std::string_view query_text) const;

  /// Executes an already-validated query.
  Result<QueryResult> RunParsed(const Query& q) const;

  const EngineOptions& options() const { return options_; }

 private:
  const Graph& g_;
  EngineOptions options_;
};

}  // namespace eql

#endif  // EQL_EVAL_ENGINE_H_
