// The EQL engine: parses, validates, plans and executes extended queries —
// the full evaluation strategy of Section 3.
//
//   (A) evaluate every BGP b_i into a binding table B_i;
//   (B) for every CTP: derive seed sets from the B_i (or from node
//       predicates; unconstrained members become universal N sets), push the
//       CTP filters into the search, run the configured algorithm (MoLESP by
//       default), and materialize the (s_1..s_m, t) tuples as a table;
//   (C) natural-join all tables and project the head.
//
// Section 4.9 robustness: when a CTP has a universal set or badly skewed
// seed-set sizes, the engine switches the search to per-sat-subset queues
// automatically (EngineOptions::auto_queue_strategy).
#ifndef EQL_EVAL_ENGINE_H_
#define EQL_EVAL_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ctp/algorithm.h"
#include "ctp/parallel.h"
#include "graph/graph.h"
#include "query/ast.h"
#include "storage/binding_table.h"
#include "util/status.h"

namespace eql {

/// Engine-wide defaults; per-CTP filters in the query override them.
struct EngineOptions {
  AlgorithmKind algorithm = AlgorithmKind::kMoLesp;
  /// Pick the cheapest algorithm whose completeness guarantee covers the
  /// CTP: ESP for plain two-seed-set CTPs (complete by Property 3 and
  /// fastest, Fig. 11), `algorithm` otherwise. A first step towards the
  /// paper's "adaptive EQL optimization" future work (Section 6).
  bool adaptive_algorithm = false;
  int64_t default_ctp_timeout_ms = 60000;
  /// Safety cap on kept provenances per CTP (0 = unbounded).
  uint64_t default_max_trees = 0;
  /// Cap on emitted results per CTP when a universal (N) seed set makes the
  /// result space unbounded and the query gives no LIMIT.
  uint64_t universal_default_limit = 10000;
  /// Enable Section 4.9 handling (universal sets, per-subset queues).
  bool auto_queue_strategy = true;
  /// max/min seed-set size ratio that triggers per-subset queues.
  double skew_threshold = 64.0;
  /// Ablation switch: materialize universal (N) members as explicit all-node
  /// seed sets instead of applying Section 4.9 (i). Exists to demonstrate
  /// why the optimization matters (Table 1); never enable in production.
  bool materialize_universal_sets = false;
  /// Compile each CTP's LABEL/UNI predicates into a cached adjacency view
  /// (ctp/view.h): the search then iterates pre-qualified edges with zero
  /// per-edge predicate work, and queries sharing a label vocabulary share
  /// the compiled view (the cache lives in the executor when one is
  /// configured, in the engine otherwise).
  bool use_compiled_views = true;
  /// Maintain decomposable score functions incrementally in the tree arena
  /// (ctp/score.h): result scoring becomes O(1) instead of O(|tree|).
  bool incremental_scores = true;
  /// Sound TOP-k bound pruning for anti-monotone decomposable scores
  /// (ctp/gam.h): provably answer-preserving for every search that runs to
  /// completion (it disables itself under LIMIT/tree budgets, whose
  /// truncation is deterministic), so on by default. A search cut off by
  /// TIMEOUT reports whatever the deadline allowed — already best-effort
  /// and machine-dependent without pruning; pruning changes which prefix
  /// fits, typically for the better (low-bound subtrees are skipped first).
  bool bound_pruning = true;
  /// CTP parallelism: the number of seed-set chunks each CTP is split into
  /// and dispatched onto the worker pool (ctp/parallel.h). 0 or 1 =
  /// sequential, in-process evaluation. Parallel CTP results are emitted in
  /// the executor's deterministic total order, not search order.
  unsigned num_threads = 0;
  /// Pool to run on (not owned). nullptr with num_threads > 1 makes the
  /// engine build a private pool with num_threads workers; pass a shared
  /// pool to amortize workers (and their arenas) across engines.
  CtpExecutor* executor = nullptr;
};

/// One materialized connecting tree in a query result.
struct ResultTreeInfo {
  std::vector<EdgeId> edges;
  NodeId root = kNoNode;
  double score = 0;
};

/// Per-CTP execution report.
struct CtpRunInfo {
  std::string tree_var;
  SearchStats stats;
  size_t num_results = 0;
  bool used_subset_queues = false;
  AlgorithmKind algorithm = AlgorithmKind::kMoLesp;  ///< what actually ran
  std::vector<size_t> seed_set_sizes;  ///< SIZE_MAX marks a universal set
  unsigned parallel_chunks = 0;  ///< seed-set chunks used; 0 = sequential
  /// The search iterated a compiled filter view (ctp/view.h) instead of
  /// filtering the full incidence CSR per edge.
  bool used_view = false;
  /// The LABEL filter named only labels absent from the dictionary and no
  /// zero-edge result was possible: the search was short-circuited to an
  /// empty table (no edge can match a dead label set).
  bool dead_labels = false;
};

/// The outcome of one query: a head-projected table plus the tree registry
/// that kTree columns index into, and execution telemetry.
struct QueryResult {
  BindingTable table;
  std::vector<ResultTreeInfo> trees;
  std::vector<CtpRunInfo> ctp_runs;
  double bgp_ms = 0;
  double ctp_ms = 0;
  double join_ms = 0;
  double total_ms = 0;

  /// Renders row r as "var=value" pairs (labels for nodes, edge lists for
  /// trees).
  std::string RowToString(const Graph& g, size_t r) const;
};

/// Facade: construct once per graph, Run queries repeatedly (const and
/// thread-safe: per-query state is local; the worker pool is internally
/// synchronized).
class EqlEngine {
 public:
  explicit EqlEngine(const Graph& g, EngineOptions options = {});

  /// Parses + validates + executes.
  Result<QueryResult> Run(std::string_view query_text) const;

  /// Executes an already-validated query. With a worker pool configured
  /// (EngineOptions::num_threads/executor), step (B) dispatches every CTP of
  /// the query onto the pool: the CTPs of one query run concurrently, and
  /// each GAM-family CTP is additionally chunk-parallel (ctp/parallel.h).
  Result<QueryResult> RunParsed(const Query& q) const;

  /// Executes many queries, amortizing the worker pool — and its per-worker
  /// arenas/scratch — across the batch: each query runs as one pool task
  /// (whose CTPs then fan out onto the same pool). Falls back to a serial
  /// loop when the engine has no pool. results[i] corresponds to queries[i].
  std::vector<Result<QueryResult>> RunBatch(
      std::span<const std::string_view> queries) const;

  const EngineOptions& options() const { return options_; }
  /// The pool CTPs run on; nullptr when evaluation is sequential.
  CtpExecutor* executor() const { return executor_; }

 private:
  struct CtpStage;
  Status EvalOneCtp(const CtpPattern& ctp,
                    const std::vector<BindingTable>& tables,
                    CtpStage* stage) const;

  const Graph& g_;
  EngineOptions options_;
  std::unique_ptr<CtpExecutor> owned_executor_;
  CtpExecutor* executor_ = nullptr;
  /// Compiled-view cache for sequential evaluation without a pool; engines
  /// with a pool share the executor's cache instead. Internally
  /// synchronized, hence usable from the const Run methods.
  mutable ViewCache view_cache_;
};

}  // namespace eql

#endif  // EQL_EVAL_ENGINE_H_
