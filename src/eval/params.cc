#include "eval/params.h"

#include <algorithm>
#include <charconv>
#include <climits>

#include "util/string_util.h"

namespace eql {

namespace {

/// Renders a bound value as the constant string the parser would have seen.
std::string AsString(const ParamValue& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  return std::to_string(std::get<int64_t>(v));
}

/// Integer view of a bound value; strings must parse exactly as integers
/// (full-string, no precision loss — a double round-trip would silently
/// corrupt values above 2^53).
Result<int64_t> AsInt(const std::string& name, const ParamValue& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return *i;
  const std::string& s = std::get<std::string>(v);
  int64_t value = 0;
  auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || end != s.data() + s.size()) {
    return Status::InvalidArgument("parameter $" + name +
                                   " must be an integer, got \"" + s + "\"");
  }
  return value;
}

class Binder {
 public:
  Binder(const ParamMap& params) : params_(params) {}

  Result<const ParamValue*> Lookup(const std::string& name) {
    const ParamValue* v = params_.Find(name);
    if (v == nullptr) {
      return Status::InvalidArgument("missing value for parameter $" + name);
    }
    used_.push_back(name);
    return v;
  }

  Status BindPredicate(Predicate* p) {
    for (Condition& c : p->conditions) {
      if (!c.is_param) continue;
      auto v = Lookup(c.constant);
      if (!v.ok()) return v.status();
      c.constant = AsString(**v);
      c.is_param = false;
    }
    return Status::Ok();
  }

  Result<int64_t> BindInt(const std::string& name, int64_t min_value,
                          int64_t max_value, const char* what) {
    auto v = Lookup(name);
    if (!v.ok()) return v.status();
    auto i = AsInt(name, **v);
    if (!i.ok()) return i.status();
    if (*i < min_value || *i > max_value) {
      return Status::InvalidArgument(StrFormat(
          "%s ($%s) must be in [%lld, %lld], got %lld", what, name.c_str(),
          static_cast<long long>(min_value), static_cast<long long>(max_value),
          static_cast<long long>(*i)));
    }
    return *i;
  }

  /// Every supplied parameter must have been consumed at least once.
  Status CheckAllUsed() const {
    for (const auto& [name, value] : params_.values()) {
      if (std::find(used_.begin(), used_.end(), name) == used_.end()) {
        return Status::InvalidArgument("parameter $" + name +
                                       " is not used by this query");
      }
    }
    return Status::Ok();
  }

 private:
  const ParamMap& params_;
  std::vector<std::string> used_;
};

}  // namespace

Result<Query> BindParams(const Query& q, const ParamMap& params) {
  Query out = q;
  Binder binder(params);
  for (EdgePattern& ep : out.patterns) {
    EQL_RETURN_IF_ERROR(binder.BindPredicate(&ep.source));
    EQL_RETURN_IF_ERROR(binder.BindPredicate(&ep.edge));
    EQL_RETURN_IF_ERROR(binder.BindPredicate(&ep.target));
  }
  for (CtpPattern& ctp : out.ctps) {
    for (Predicate& m : ctp.members) {
      EQL_RETURN_IF_ERROR(binder.BindPredicate(&m));
    }
    CtpFilterSpec& f = ctp.filters;
    for (const std::string& name : f.label_params) {
      auto v = binder.Lookup(name);
      if (!v.ok()) return v.status();
      if (!f.labels) f.labels.emplace();
      f.labels->push_back(AsString(**v));
    }
    f.label_params.clear();
    if (f.max_edges_param) {
      auto i = binder.BindInt(*f.max_edges_param, 1, UINT32_MAX, "MAX");
      if (!i.ok()) return i.status();
      f.max_edges = static_cast<uint32_t>(*i);
      f.max_edges_param.reset();
    }
    if (f.top_k_param) {
      auto i = binder.BindInt(*f.top_k_param, 1, INT_MAX, "TOP");
      if (!i.ok()) return i.status();
      f.top_k = static_cast<int>(*i);
      f.top_k_param.reset();
    }
    if (f.timeout_param) {
      auto i = binder.BindInt(*f.timeout_param, 0, INT64_MAX, "TIMEOUT");
      if (!i.ok()) return i.status();
      f.timeout_ms = *i;
      f.timeout_param.reset();
    }
    if (f.limit_param) {
      auto i = binder.BindInt(*f.limit_param, 1, INT64_MAX, "LIMIT");
      if (!i.ok()) return i.status();
      f.limit = static_cast<uint64_t>(*i);
      f.limit_param.reset();
    }
  }
  EQL_RETURN_IF_ERROR(binder.CheckAllUsed());
  out.param_names.clear();
  return out;
}

}  // namespace eql
