// Query parameters: the typed values bound to a prepared query's `$name`
// placeholders at execution time (see eval/engine.h, PreparedQuery).
//
// A parameter is either a string (node IRIs/labels in predicates, LABEL set
// members, FILTER constants) or an integer (MAX / TOP / TIMEOUT / LIMIT
// values). Binding is strict both ways: executing with a missing parameter
// and supplying a parameter the query does not mention are both errors —
// silent partial binding is how prepared-statement typos ship to production.
#ifndef EQL_EVAL_PARAMS_H_
#define EQL_EVAL_PARAMS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>

#include "query/ast.h"
#include "util/status.h"

namespace eql {

/// One bound parameter value.
using ParamValue = std::variant<std::string, int64_t>;

/// Name -> value map for one Execute call. Cheap to build per call; a
/// ParamMap is independent of any engine or prepared query and may be reused
/// across calls and threads (it is read-only during execution).
class ParamMap {
 public:
  ParamMap() = default;

  ParamMap& Set(std::string name, std::string value) {
    values_[std::move(name)] = std::move(value);
    return *this;
  }
  ParamMap& Set(std::string name, int64_t value) {
    values_[std::move(name)] = value;
    return *this;
  }
  ParamMap& Set(std::string name, int value) {
    return Set(std::move(name), static_cast<int64_t>(value));
  }

  bool Has(std::string_view name) const {
    return values_.find(name) != values_.end();
  }
  const ParamValue* Find(std::string_view name) const {
    auto it = values_.find(name);
    return it == values_.end() ? nullptr : &it->second;
  }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::map<std::string, ParamValue, std::less<>>& values() const {
    return values_;
  }

 private:
  /// Transparent comparator: Find/Has on the execute-many hot path take
  /// string_views without materializing a temporary key.
  std::map<std::string, ParamValue, std::less<>> values_;
};

/// Substitutes `params` into a validated query, producing a fully-literal
/// query equivalent to what the parser would have produced had the values
/// been written inline — so a bound execution is byte-identical to the
/// one-shot text path by construction. Fails with InvalidArgument when a
/// placeholder is missing from `params`, when `params` carries a name the
/// query does not mention, or when a value has the wrong type or range
/// (MAX/TOP/LIMIT must be positive integers; string values are accepted for
/// integer positions only if they parse exactly as integers).
Result<Query> BindParams(const Query& q, const ParamMap& params);

}  // namespace eql

#endif  // EQL_EVAL_PARAMS_H_
