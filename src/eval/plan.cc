#include "eval/plan.h"

#include <algorithm>
#include <map>
#include <utility>

#include "ctp/algorithm.h"
#include "eval/engine.h"
#include "storage/bgp_eval.h"
#include "util/string_util.h"

namespace eql {

namespace {

constexpr double kEstCap = 1e15;  // keeps products finite and printable

double Capped(double v) { return std::min(v, kEstCap); }

/// First '=' condition on `property` with a literal constant, else nullptr.
const std::string* EqLiteral(const Predicate& p, const char* property) {
  for (const Condition& c : p.conditions) {
    if (c.op == CompareOp::kEq && c.property == property && !c.is_param) {
      return &c.constant;
    }
  }
  return nullptr;
}

/// Geometric frontier series: sum_{d=1..depth} min(b^d, E) — the edges a
/// search is expected to visit expanding `depth` levels at branching factor
/// `b` before the frontier saturates the graph.
double ExpansionSeries(double b, uint64_t num_edges, uint32_t depth) {
  const double cap = static_cast<double>(num_edges);
  double sum = 0, frontier = 1;
  for (uint32_t d = 0; d < depth; ++d) {
    frontier = std::min(frontier * b, cap);
    sum += frontier;
    if (frontier >= cap) {  // saturated: every further level costs E
      sum += cap * static_cast<double>(depth - d - 1);
      break;
    }
  }
  return Capped(sum);
}

/// Fraction of nodes matching a label-equality literal (endpoint
/// selectivity), 1.0 when unconstrained.
double EndpointSelectivity(const Graph& g, const Predicate& p) {
  const std::string* lbl = EqLiteral(p, "label");
  if (lbl == nullptr || g.NumNodes() == 0) return 1.0;
  StrId id = g.dict().Lookup(*lbl);
  const double cnt = id == kNoStrId ? 0.0 : static_cast<double>(g.NodesWithLabel(id).size());
  return cnt / static_cast<double>(g.NumNodes());
}

void EstimateBgpStage(const Query& q, const Graph& g, const GraphStats& stats,
                      const std::vector<size_t>& group, PlanStage* stage) {
  double rows = 1;
  for (size_t pi : group) {
    const EdgePattern& ep = q.patterns[pi];
    const std::string* lbl = EqLiteral(ep.edge, "label");
    double scan = static_cast<double>(stats.num_edges());
    if (lbl != nullptr) {
      StrId id = g.dict().Lookup(*lbl);
      scan = id == kNoStrId ? 0.0 : static_cast<double>(stats.EdgeCountForLabel(id));
    }
    stage->est_cost = Capped(stage->est_cost + scan);
    rows = Capped(rows * scan * EndpointSelectivity(g, ep.source) *
                  EndpointSelectivity(g, ep.target));
  }
  // Fractional selectivities can push a live scan below one row; only a
  // provably-dead scan (an unknown label) estimates zero.
  if (rows > 0 && rows < 1) rows = 1;
  stage->est_rows = rows;
}

void EstimateCtpStage(const CtpPattern& ctp, const Graph& g,
                      const GraphStats& stats,
                      const std::vector<CtpMemberSource>& sources,
                      const std::vector<PlanStage>& stages, size_t num_bgps,
                      PlanStage* stage) {
  const double n = static_cast<double>(stats.num_nodes());
  double total_seeds = 0, rows = 1;
  bool any_universal = false;
  for (size_t k = 0; k < ctp.members.size(); ++k) {
    const Predicate& m = ctp.members[k];
    double est = n;
    switch (sources[k].kind) {
      case CtpMemberSource::Kind::kPredicate:
        est = static_cast<double>(EstimateSeedCount(g, m));
        break;
      case CtpMemberSource::Kind::kUniversal:
        any_universal = true;
        break;
      case CtpMemberSource::Kind::kBgpTable:
        est = std::min(stages[sources[k].source].est_rows, n);
        break;
      case CtpMemberSource::Kind::kCtpTable:
        est = std::min(stages[num_bgps + sources[k].source].est_rows, n);
        break;
    }
    // A table-bound member with its own predicate narrows further; charge
    // the tighter of the two.
    if (!m.IsEmpty() && sources[k].kind != CtpMemberSource::Kind::kPredicate) {
      est = std::min(est, static_cast<double>(EstimateSeedCount(g, m)));
    }
    stage->member_est.push_back(est);
    if (sources[k].kind != CtpMemberSource::Kind::kUniversal) total_seeds += est;
    rows = Capped(rows * std::max(est, 1.0));
  }
  // Branching factor: average incident degree thinned by the LABEL filter
  // (literal labels only; `$`-param labels are unknown at plan time and
  // conservatively not credited).
  double fraction = 1.0;
  if (ctp.filters.labels && ctp.filters.label_params.empty()) {
    std::vector<StrId> ids;
    for (const std::string& l : *ctp.filters.labels) {
      StrId id = g.dict().Lookup(l);
      if (id != kNoStrId) ids.push_back(id);
    }
    fraction = stats.LabelFraction(std::optional<std::vector<StrId>>(std::move(ids)));
  }
  const uint32_t depth =
      ctp.filters.max_edges ? std::min(*ctp.filters.max_edges, 8u) : 4u;
  stage->est_cost = Capped(
      total_seeds * ExpansionSeries(stats.AvgDegree() * fraction,
                                    stats.num_edges(), depth) +
      (any_universal ? static_cast<double>(stats.num_edges()) : 0.0) + 1.0);
  if (ctp.filters.limit) rows = std::min(rows, static_cast<double>(*ctp.filters.limit));
  stage->est_rows = rows;
}

std::string Est(double v) { return StrFormat("~%.0f", v); }

}  // namespace

Result<PhysicalPlan> BuildPhysicalPlan(const Query& q, const Graph& g,
                                       const GraphStats& stats,
                                       bool allow_free_cycles) {
  PhysicalPlan plan;
  plan.bgp_groups = GroupIntoBgpIndices(q.patterns);
  plan.num_bgps = plan.bgp_groups.size();
  auto binding = AnalyzeCtpBindings(q, plan.bgp_groups, allow_free_cycles);
  if (!binding.ok()) return binding.status();
  plan.binding = std::move(binding).value();

  for (size_t gi = 0; gi < plan.bgp_groups.size(); ++gi) {
    PlanStage stage;
    stage.kind = PlanStage::Kind::kBgp;
    stage.input = gi;
    EstimateBgpStage(q, g, stats, plan.bgp_groups[gi], &stage);
    plan.stages.push_back(std::move(stage));
  }
  std::map<std::string, size_t> first_by_key;
  for (size_t i = 0; i < q.ctps.size(); ++i) {
    PlanStage stage;
    stage.kind = PlanStage::Kind::kCtp;
    stage.input = i;
    const std::vector<CtpMemberSource>& sources = plan.binding.member_sources[i];
    for (const CtpMemberSource& s : sources) {
      if (s.kind == CtpMemberSource::Kind::kBgpTable) {
        stage.deps.push_back(s.source);
      } else if (s.kind == CtpMemberSource::Kind::kCtpTable) {
        stage.deps.push_back(plan.CtpStageId(s.source));
      }
    }
    std::sort(stage.deps.begin(), stage.deps.end());
    stage.deps.erase(std::unique(stage.deps.begin(), stage.deps.end()),
                     stage.deps.end());
    EstimateCtpStage(q.ctps[i], g, stats, sources, plan.stages, plan.num_bgps,
                     &stage);

    // CSE: self-grounded (predicate/universal members only — table-bound
    // seeds depend on runtime state) and TIMEOUT-free (a timeout's
    // truncation point is wall-clock-dependent, so two runs are not
    // interchangeable). LIMIT/MAX/TOP truncate deterministically and stay
    // eligible.
    bool self_grounded = true;
    for (const CtpMemberSource& s : sources) {
      self_grounded &= s.kind == CtpMemberSource::Kind::kPredicate ||
                       s.kind == CtpMemberSource::Kind::kUniversal;
    }
    if (self_grounded && !q.ctps[i].filters.timeout_ms &&
        !q.ctps[i].filters.timeout_param) {
      stage.cse_key = CtpTableKey(q.ctps[i]);
      const size_t sid = plan.CtpStageId(i);
      auto [it, inserted] = first_by_key.emplace(stage.cse_key, sid);
      if (!inserted) {
        stage.share_of = it->second;
        stage.deps.push_back(it->second);
        stage.est_cost = 1;  // a row/tree copy, not a search
        plan.stages[it->second].shared_by_later = true;
      }
    }
    plan.stages.push_back(std::move(stage));
  }

  // Planner order: repeatedly run the cheapest ready CTP stage (all deps
  // satisfied; BGP stages are always evaluated first, in step A). The
  // (est_cost, stage id) key makes the order total and deterministic.
  std::vector<char> done(plan.stages.size(), 0);
  for (size_t s = 0; s < plan.num_bgps; ++s) done[s] = 1;
  for (size_t picked = 0; picked < q.ctps.size(); ++picked) {
    size_t best = SIZE_MAX;
    for (size_t s = plan.num_bgps; s < plan.stages.size(); ++s) {
      if (done[s]) continue;
      bool ready = true;
      for (size_t d : plan.stages[s].deps) ready &= done[d] != 0;
      if (!ready) continue;
      if (best == SIZE_MAX ||
          plan.stages[s].est_cost < plan.stages[best].est_cost) {
        best = s;
      }
    }
    // Deps only point backwards (earlier query indexes), so a ready stage
    // always exists.
    plan.ctp_exec_order.push_back(best);
    done[best] = 1;
  }
  plan.ctp_exec_order_streaming = plan.ctp_exec_order;
  if (!q.ctps.empty()) {
    const size_t last = plan.CtpStageId(q.ctps.size() - 1);
    auto& order = plan.ctp_exec_order_streaming;
    order.erase(std::remove(order.begin(), order.end(), last), order.end());
    order.push_back(last);  // nothing depends on the final CTP: still topological
  }
  return plan;
}

std::string RenderExplain(const PhysicalPlan& plan, const Query& q,
                          const Graph& g, bool planner_on,
                          const QueryResult* actuals) {
  std::string out = StrFormat(
      "plan: planner=%s  cost-unit=edge-visits  graph: %zu nodes, %zu edges\n",
      planner_on ? "on" : "off", g.NumNodes(), g.NumEdges());
  out += "  project [";
  for (size_t i = 0; i < q.head.size(); ++i) {
    out += (i > 0 ? " ?" : "?") + q.head[i];
  }
  out += "]\n  join (stage-id order)\n";
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    const PlanStage& st = plan.stages[s];
    if (st.kind == PlanStage::Kind::kBgp) {
      out += StrFormat("    s%zu bgp#%zu  patterns=%zu  est_rows%s  est_cost%s\n",
                       s, st.input, plan.bgp_groups[st.input].size(),
                       Est(st.est_rows).c_str(), Est(st.est_cost).c_str());
      if (actuals != nullptr && st.input < actuals->bgp_rows.size()) {
        out += StrFormat("       actual: rows=%llu\n",
                         (unsigned long long)actuals->bgp_rows[st.input]);
      }
      continue;
    }
    const CtpPattern& ctp = q.ctps[st.input];
    out += StrFormat("    s%zu ctp ?%s", s, ctp.tree_var.c_str());
    if (st.share_of != SIZE_MAX) {
      out += StrFormat("  = s%zu (shared table spec)  est_cost~1\n", st.share_of);
    } else {
      out += "  seeds[";
      for (size_t k = 0; k < ctp.members.size(); ++k) {
        const CtpMemberSource& src = plan.binding.member_sources[st.input][k];
        if (k > 0) out += ", ";
        out += "?" + ctp.members[k].var;
        switch (src.kind) {
          case CtpMemberSource::Kind::kBgpTable:
            out += StrFormat("<-s%zu", src.source);
            break;
          case CtpMemberSource::Kind::kCtpTable:
            out += StrFormat("<-s%zu", plan.CtpStageId(src.source));
            break;
          case CtpMemberSource::Kind::kPredicate:
            out += ":pred";
            break;
          case CtpMemberSource::Kind::kUniversal:
            out += ":N";
            break;
        }
        if (src.kind != CtpMemberSource::Kind::kUniversal) {
          out += Est(st.member_est[k]);
        }
      }
      out += StrFormat("]  est_rows%s  est_cost%s", Est(st.est_rows).c_str(),
                       Est(st.est_cost).c_str());
      if (!st.deps.empty()) {
        out += "  deps[";
        for (size_t d = 0; d < st.deps.size(); ++d) {
          out += StrFormat(d > 0 ? " s%zu" : "s%zu", st.deps[d]);
        }
        out += "]";
      }
      out += "\n";
    }
    if (actuals != nullptr && st.input < actuals->ctp_runs.size()) {
      const CtpRunInfo& run = actuals->ctp_runs[st.input];
      out += "       actual: ";
      if (run.skipped) {
        out += "skipped (an upstream table is empty; no row can survive the join)\n";
      } else {
        out += StrFormat("rows=%zu  algo=%s  view=%s  outcome=%s", run.num_results,
                         AlgorithmName(run.algorithm), run.used_view ? "yes" : "no",
                         SearchOutcomeName(run.stats.Outcome()));
        if (run.shared) out += "  shared";
        if (run.dead_labels) out += "  dead-labels";
        if (run.streamed_rows) out += "  streamed";
        out += "\n";
      }
    }
  }
  if (!plan.ctp_exec_order.empty()) {
    out += "  ctp exec order" + std::string(planner_on ? "" : " (fixed)") + ": ";
    std::vector<size_t> order = plan.ctp_exec_order;
    if (!planner_on) {
      order.clear();
      for (size_t i = 0; i < q.ctps.size(); ++i) order.push_back(plan.CtpStageId(i));
    }
    for (size_t i = 0; i < order.size(); ++i) {
      out += StrFormat(i > 0 ? " -> s%zu" : "s%zu", order[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace eql
