// The algebraic plan layer between Prepare and execution.
//
// A PhysicalPlan lowers a validated query into explicit stages — one BGP
// scan node per variable-connected pattern group, one CTP search node per
// connecting tree pattern — wired by the binding analysis of
// ctp/analysis.h: each CTP member's seed-set source (BGP table, earlier CTP
// table, predicate, or universal) is resolved once, at plan time, instead of
// being rediscovered by scanning tables at execution time. On top of that
// structure the planner computes, from GraphStats (eval/stats.h):
//
//  * a cost estimate per stage (unit: ESTIMATED EDGE VISITS — the number of
//    edges a search/scan is expected to touch; seed counts x a branching
//    series for CTPs, index-scan sizes for BGPs),
//  * an execution order for the CTP stages: a topological order of the
//    dependency DAG that runs cheap/selective stages first (ties broken by
//    stage id, so the order is deterministic),
//  * common-sub-expression sharing: a CTP whose table spec (query/ast.h
//    CtpTableKey) matches an earlier self-grounded CTP is marked share_of
//    and reuses its rows/trees instead of searching again.
//
// What the planner may and may not change — the soundness contract:
// a CTP's result set is defined relative to its full seed SETS (minimality,
// Def 2.8, is seed-set-relative), so the planner NEVER re-derives seeds from
// different sources or pushes extra bindings into them; it only reorders
// stage *execution* (answer-preserving because sources are pinned and the
// searches are deterministic), short-circuits stages that cannot contribute
// rows (any empty stage table empties the final join), and shares
// byte-identical work. The final join consumes stage tables in stage-id
// order in both modes, so planner-ON produces the same projected rows as
// planner-OFF (the tree-registry indexing and per-stage telemetry may
// differ; rows do not). Timeout-carrying CTPs are excluded from sharing —
// their truncation point is wall-clock-dependent.
//
// EXPLAIN renders the plan tree with the estimates, and — given a
// QueryResult — the post-execution actuals (rows, trees, algorithm, view,
// outcome) aligned per stage. The rendering is deterministic: estimates use
// only integer/IEEE arithmetic on graph statistics (no clocks), which is
// what makes the golden tests in tests/explain_golden_test.cc possible.
//
// Internal header (not in the public allowlist); the public surface is
// EngineOptions::use_planner + PreparedQuery::Explain in eval/engine.h.
#ifndef EQL_EVAL_PLAN_H_
#define EQL_EVAL_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ctp/analysis.h"
#include "eval/stats.h"
#include "graph/graph.h"
#include "query/ast.h"
#include "util/status.h"

namespace eql {

struct QueryResult;  // eval/engine.h; Explain takes actuals from it

/// One node of the lowered plan: a BGP scan or a CTP search.
struct PlanStage {
  enum class Kind { kBgp, kCtp };
  Kind kind = Kind::kBgp;
  /// BGP group index (kind kBgp) or CTP query index (kind kCtp).
  size_t input = 0;

  /// Stage ids whose tables this stage reads for seed derivation (CTP only;
  /// BGP stage ids < num_bgps, CTP stage ids = num_bgps + query index). The
  /// planner's exec order is a topological order of this DAG, and a CSE
  /// follower additionally depends on its canonical stage.
  std::vector<size_t> deps;

  /// CSE: non-empty for self-grounded CTPs (every member seeded by its own
  /// predicate or universal, no TIMEOUT) — the canonical table-spec key.
  std::string cse_key;
  /// Stage id of the earlier CTP with the same key this stage reuses;
  /// SIZE_MAX when this stage does its own work.
  size_t share_of = SIZE_MAX;
  /// Some later stage shares this one: its rows/trees must outlive stitch.
  bool shared_by_later = false;

  /// Estimated seed-set size per member (CTP only); universal members are
  /// estimated as the full node count.
  std::vector<double> member_est;
  /// Estimated result-table rows (an upper-bound heuristic).
  double est_rows = 0;
  /// Estimated cost in edge visits (see the cost-model note above).
  double est_cost = 0;
};

/// The lowered, ordered plan. Stages are in stage-id order — BGP groups
/// first (group order), then CTPs (query order) — and stage ids are stable
/// across planner on/off: the fixed-order path is simply "execute in
/// stage-id order", which is how planner-OFF reproduces the legacy engine
/// byte-for-byte.
struct PhysicalPlan {
  size_t num_bgps = 0;
  /// Pattern indexes of each BGP group (GroupIntoBgps order); structural,
  /// so valid for any `$`-bound copy of the query.
  std::vector<std::vector<size_t>> bgp_groups;
  /// Member seed sources + CTP dependency lists (ctp/analysis.h).
  CtpBindingAnalysis binding;
  std::vector<PlanStage> stages;

  /// CTP stage ids in planner execution order (cost-ascending topological).
  std::vector<size_t> ctp_exec_order;
  /// Same, with the final CTP (query order) forced last: a streaming
  /// execution emits rows from that stage's search, so it must run after
  /// every table it joins against exists.
  std::vector<size_t> ctp_exec_order_streaming;

  size_t CtpStageId(size_t ctp_index) const { return num_bgps + ctp_index; }
};

/// Lowers a validated query over `g` into a PhysicalPlan: groups BGPs,
/// resolves member sources (rejecting cyclic free-member dependencies unless
/// `allow_free_cycles` — see AnalyzeCtpBindings), estimates costs from
/// `stats`, assigns CSE keys and computes both execution orders.
Result<PhysicalPlan> BuildPhysicalPlan(const Query& q, const Graph& g,
                                       const GraphStats& stats,
                                       bool allow_free_cycles = false);

/// Renders the plan tree as text: one line per stage with seed sources and
/// estimates, plus the exec order and CSE notes. With `actuals` (a
/// QueryResult of this query's execution), each stage line is annotated
/// with actual cardinalities and outcome — times are deliberately omitted
/// so the text stays machine-independent (the shell's `.stats` dump covers
/// timing). `planner_on` only changes the header and exec-order note.
std::string RenderExplain(const PhysicalPlan& plan, const Query& q,
                          const Graph& g, bool planner_on,
                          const QueryResult* actuals = nullptr);

}  // namespace eql

#endif  // EQL_EVAL_PLAN_H_
