// Cursor: the pull-style wrapper over PreparedQuery's streaming execution.
//
// The execution runs on a background thread pushing into a bounded row
// buffer; Next() pops. Backpressure falls out of the bound: a full buffer
// blocks the producing sink inside OnRow, which blocks the CTP search —
// no rows are computed that the consumer never asked for (beyond the buffer
// capacity). Close() flips the sink to stop-mode: the next OnRow returns
// false, the engine sets the shared cancel flag, and every in-flight search
// (including pool chunks) winds down at its next deadline check.
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "eval/engine.h"

namespace eql {

namespace {

/// Rows buffered between the producer thread and Next(). Small: each row is
/// already a joined, projected result; buffering more only delays the
/// backpressure signal.
constexpr size_t kCursorBufferRows = 64;

}  // namespace

struct Cursor::Impl {
  // -- producer-side sink bridging into the shared buffer.
  struct QueueSink : ResultSink {
    explicit QueueSink(Impl* impl) : impl(impl) {}
    void OnSchema(const RowSchema& schema) override {
      std::lock_guard<std::mutex> lk(impl->mu);
      impl->schema = schema;
      impl->schema_known = true;
      impl->cv_consumer.notify_all();
    }
    bool OnRow(StreamRow row) override {
      std::unique_lock<std::mutex> lk(impl->mu);
      impl->cv_producer.wait(lk, [this] {
        return impl->closed || impl->buffer.size() < kCursorBufferRows;
      });
      if (impl->closed) return false;
      impl->buffer.push_back(std::move(row));
      impl->cv_consumer.notify_one();
      return true;
    }
    Impl* impl;
  };

  void Start(const PreparedQuery prepared, ParamMap params, ExecOptions opts) {
    // Close() must stop the execution even while the search is grinding
    // without producing rows (no OnRow to return false from): wire a cancel
    // flag through ExecOptions — the searches poll it at their deadline
    // checks. A caller-supplied flag stays authoritative if present.
    cancel_target = opts.cancel != nullptr ? opts.cancel : &cancel;
    opts.cancel = cancel_target;
    thread = std::thread([this, prepared = std::move(prepared),
                          params = std::move(params),
                          opts = std::move(opts)]() mutable {
      QueueSink sink(this);
      auto result = prepared.Execute(params, sink, opts);
      std::lock_guard<std::mutex> lk(mu);
      if (result.ok()) {
        summary = std::move(result).value();
      } else {
        status = result.status();
      }
      done = true;
      schema_known = true;  // an errored run may never have published one
      cv_consumer.notify_all();
    });
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lk(mu);
      closed = true;
      if (cancel_target != nullptr) {
        cancel_target->store(true, std::memory_order_relaxed);
      }
      cv_producer.notify_all();
      cv_consumer.notify_all();
    }
    if (thread.joinable()) thread.join();
  }

  std::mutex mu;
  std::condition_variable cv_producer;
  std::condition_variable cv_consumer;
  std::deque<StreamRow> buffer;
  RowSchema schema;
  bool schema_known = false;
  bool closed = false;  ///< consumer closed; producer must stop
  bool done = false;    ///< producer finished (summary/status final)
  Status status = Status::Ok();
  QueryResult summary;
  std::atomic<bool> cancel{false};
  std::atomic<bool>* cancel_target = nullptr;  ///< flag Close() sets
  std::thread thread;
};

Cursor::Cursor(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Cursor::Cursor(Cursor&&) noexcept = default;

Cursor& Cursor::operator=(Cursor&& other) noexcept {
  if (this != &other) {
    // Shut down the current execution first: a defaulted move would destroy
    // an Impl whose producer thread is still joinable (std::terminate) and
    // still touching the Impl.
    if (impl_ != nullptr) impl_->Close();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Cursor::~Cursor() {
  if (impl_ != nullptr) impl_->Close();
}

bool Cursor::Next(StreamRow* row) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->cv_consumer.wait(
      lk, [this] { return !impl_->buffer.empty() || impl_->done || impl_->closed; });
  // A closed cursor is terminal even with rows still buffered: the consumer
  // abandoned the stream (documented contract).
  if (impl_->closed || impl_->buffer.empty()) return false;
  *row = std::move(impl_->buffer.front());
  impl_->buffer.pop_front();
  impl_->cv_producer.notify_one();
  return true;
}

const RowSchema& Cursor::schema() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->cv_consumer.wait(lk, [this] { return impl_->schema_known; });
  return impl_->schema;
}

void Cursor::Close() {
  if (impl_ != nullptr) impl_->Close();
}

Status Cursor::status() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->status;
}

const QueryResult& Cursor::summary() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->summary;
}

Cursor EqlEngine::OpenCursor(const PreparedQuery& prepared,
                             const ParamMap& params,
                             const ExecOptions& opts) const {
  auto impl = std::make_unique<Cursor::Impl>();
  impl->Start(prepared, params, opts);
  return Cursor(std::move(impl));
}

}  // namespace eql
