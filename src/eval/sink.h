// Streaming result delivery: the push-style sink a PreparedQuery's streaming
// execution emits joined result rows into (eval/engine.h).
//
// Row order contract: rows arrive grouped by connecting tree, in the order
// the final CTP's search *produces* trees — the anytime order of the paper's
// Algorithm 1 grow/merge loop, which is deterministic for a fixed query,
// graph and configuration. For CONNECT-only queries (no BGP, one CTP) this
// equals the materialized QueryResult row order byte for byte; when BGP
// bindings fan out over tree results, the materialized table interleaves by
// binding instead, so the two orders are permutations of the same multiset.
// An early-stopped stream always holds exactly a prefix of the full stream.
#ifndef EQL_EVAL_SINK_H_
#define EQL_EVAL_SINK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "storage/binding_table.h"

namespace eql {

/// One materialized connecting tree in a query result.
struct ResultTreeInfo {
  std::vector<EdgeId> edges;
  NodeId root = kNoNode;
  double score = 0;
};

/// Column layout of streamed rows: the query head, in order, with the value
/// kind of each column. Delivered once via ResultSink::OnSchema before any
/// row.
struct RowSchema {
  std::vector<std::string> columns;  ///< head variable names, without '?'
  std::vector<ColKind> kinds;
};

/// One streamed result row. `values` aligns with the schema: kNode/kEdge
/// cells hold NodeId/EdgeId; kTree cells index the row-local `trees` vector
/// (each streamed row is self-contained — the global tree registry of a
/// materialized QueryResult does not exist until the query finishes, which
/// is exactly what streaming avoids waiting for).
struct StreamRow {
  std::vector<uint32_t> values;
  std::vector<ResultTreeInfo> trees;
};

/// Receives streamed rows. Implementations need not be thread-safe: the
/// engine invokes one sink from one thread at a time, in emission order.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once, before any row.
  virtual void OnSchema(const RowSchema& schema) { (void)schema; }

  /// Called per result row, as soon as it is known. Return false to stop the
  /// execution: the engine cancels the underlying CTP searches — including
  /// chunk workers on a pool — and Execute returns with the work done so
  /// far reported as cancelled. Blocking inside OnRow is the backpressure
  /// mechanism: the producing search makes no progress until it returns.
  virtual bool OnRow(StreamRow row) = 0;
};

/// Sink adapter over a callable — the one-liner for tests and tools.
class CallbackSink : public ResultSink {
 public:
  explicit CallbackSink(std::function<bool(StreamRow)> fn) : fn_(std::move(fn)) {}
  bool OnRow(StreamRow row) override { return fn_(std::move(row)); }

 private:
  std::function<bool(StreamRow)> fn_;
};

/// Collects everything; `stop_after` > 0 requests a stop once that many rows
/// arrived (the early-stop test shape).
class CollectingSink : public ResultSink {
 public:
  explicit CollectingSink(size_t stop_after = 0) : stop_after_(stop_after) {}

  void OnSchema(const RowSchema& schema) override { schema_ = schema; }
  bool OnRow(StreamRow row) override {
    rows.push_back(std::move(row));
    return stop_after_ == 0 || rows.size() < stop_after_;
  }
  const RowSchema& schema() const { return schema_; }

  std::vector<StreamRow> rows;

 private:
  size_t stop_after_;
  RowSchema schema_;
};

}  // namespace eql

#endif  // EQL_EVAL_SINK_H_
