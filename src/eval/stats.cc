#include "eval/stats.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace eql {

std::shared_ptr<const GraphStats> GraphStats::Compute(const Graph& g) {
  auto stats = std::shared_ptr<GraphStats>(new GraphStats());
  stats->num_nodes_ = g.NumNodes();
  stats->num_edges_ = g.NumEdges();
  for (EdgeId e = 0; e < g.EdgeIdBound(); ++e) {
    ++stats->label_edges_[g.EdgeLabelId(e)];
  }
  for (NodeId n = 0; n < g.NodeIdBound(); ++n) {
    const uint64_t d = g.Degree(n);
    stats->max_degree_ = std::max(stats->max_degree_, d);
    size_t bucket = 0;
    for (uint64_t v = d + 1; v > 1; v >>= 1) ++bucket;
    ++stats->degree_histogram_[std::min(bucket, kDegreeBuckets - 1)];
  }
  return stats;
}

std::shared_ptr<const GraphStats> GraphStats::Get(const Graph& g) {
  if (g.uid() == 0) return Compute(g);  // unfinalized: nothing to key on
  struct Entry {
    uint64_t uid;
    std::shared_ptr<const GraphStats> stats;
  };
  static std::mutex mu;
  static std::vector<Entry> cache;  // MRU-first; tiny, so linear scan is fine
  constexpr size_t kMaxEntries = 8;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t i = 0; i < cache.size(); ++i) {
      if (cache[i].uid == g.uid()) {
        std::rotate(cache.begin(), cache.begin() + i, cache.begin() + i + 1);
        return cache.front().stats;
      }
    }
  }
  // Compute outside the lock: stats are pure functions of the immutable
  // graph, so a racing duplicate computation is wasteful but harmless.
  auto stats = Compute(g);
  std::lock_guard<std::mutex> lock(mu);
  for (const Entry& e : cache) {
    if (e.uid == g.uid()) return e.stats;
  }
  cache.insert(cache.begin(), Entry{g.uid(), stats});
  if (cache.size() > kMaxEntries) cache.resize(kMaxEntries);
  return stats;
}

double GraphStats::LabelFraction(
    const std::optional<std::vector<StrId>>& labels) const {
  if (!labels) return 1.0;
  if (num_edges_ == 0) return 0.0;
  uint64_t covered = 0;
  for (StrId l : *labels) covered += EdgeCountForLabel(l);
  covered = std::min(covered, num_edges_);  // dup labels cannot exceed E
  return static_cast<double>(covered) / static_cast<double>(num_edges_);
}

uint64_t EstimateSeedCount(const Graph& g, const Predicate& pred) {
  uint64_t est = g.NumNodes();
  for (const Condition& c : pred.conditions) {
    if (c.is_param) continue;  // unbound: no value to estimate against
    if (c.op == CompareOp::kEq && c.property == "label") {
      StrId id = g.dict().Lookup(c.constant);
      est = std::min(est,
                     static_cast<uint64_t>(id == kNoStrId ? 0 : g.NodesWithLabel(id).size()));
    } else if (c.op == CompareOp::kEq && c.property == "type") {
      StrId id = g.dict().Lookup(c.constant);
      est = std::min(est,
                     static_cast<uint64_t>(id == kNoStrId ? 0 : g.NodesWithType(id).size()));
    } else {
      est = std::max<uint64_t>(1, est / 4);
    }
  }
  return est;
}

}  // namespace eql
