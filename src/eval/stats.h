// Graph statistics feeding the planner's cost model (eval/plan.h).
//
// A GraphStats is an immutable per-graph summary — per-label edge counts, a
// log2 degree histogram, average degree — computed once per finalized graph
// and cached process-wide, keyed by Graph::uid(). The uid is minted by
// Graph::Finalize() and shared by copies (graph/graph.h), so the invalidation
// rule is structural: a graph's stats can never go stale because a finalized
// graph is immutable, and a *different* graph — even one reusing the same
// Graph object address — gets a different uid and therefore a fresh entry.
//
// Everything here is deterministic integer/IEEE arithmetic over the graph's
// indexes (no clocks, no randomness), so the estimates — and the EXPLAIN
// text rendered from them — are bit-stable across runs and machines.
#ifndef EQL_EVAL_STATS_H_
#define EQL_EVAL_STATS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "query/ast.h"

namespace eql {

class GraphStats {
 public:
  /// Number of log2 degree-histogram buckets: bucket b counts nodes with
  /// floor(log2(degree + 1)) == b, so bucket 0 is isolated nodes, bucket 1
  /// is degree 1-2, bucket 2 is degree 3-6, and so on.
  static constexpr size_t kDegreeBuckets = 32;

  /// Cached lookup: computes the stats on first sight of this graph's uid
  /// and serves the shared summary afterwards (a bounded process-wide LRU —
  /// see the invalidation rule above). Unfinalized graphs (uid 0) are
  /// computed fresh each call and never cached.
  static std::shared_ptr<const GraphStats> Get(const Graph& g);

  /// Uncached O(N + E) computation.
  static std::shared_ptr<const GraphStats> Compute(const Graph& g);

  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }
  uint64_t max_degree() const { return max_degree_; }

  /// Mean incident-edge count per node (each edge counts at both endpoints,
  /// matching Graph::Degree); 0 for an empty graph.
  double AvgDegree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(2 * num_edges_) / static_cast<double>(num_nodes_);
  }

  /// Edges carrying `label`; 0 for labels absent from this graph.
  uint64_t EdgeCountForLabel(StrId label) const {
    auto it = label_edges_.find(label);
    return it == label_edges_.end() ? 0 : it->second;
  }

  /// Fraction of edges passing a LABEL filter (nullopt = no filter = 1.0).
  double LabelFraction(const std::optional<std::vector<StrId>>& labels) const;

  const std::array<uint64_t, kDegreeBuckets>& DegreeHistogram() const {
    return degree_histogram_;
  }

 private:
  GraphStats() = default;

  uint64_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t max_degree_ = 0;
  std::unordered_map<StrId, uint64_t> label_edges_;
  std::array<uint64_t, kDegreeBuckets> degree_histogram_{};
};

/// Estimated size of the seed set a CTP member predicate induces, from the
/// label/type inverted indexes: '=' on label/type reads the exact index-span
/// size; every other condition is charged a fixed 1/4 selectivity (floored,
/// minimum 1). Deterministic; exact whenever NodesMatchingPredicate would
/// take a pure index path.
uint64_t EstimateSeedCount(const Graph& g, const Predicate& pred);

}  // namespace eql

#endif  // EQL_EVAL_STATS_H_
