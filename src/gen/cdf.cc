#include "gen/cdf.h"

#include "util/rng.h"
#include "util/string_util.h"

namespace eql {

namespace {

/// Builds one 3-level complete binary tree; labels lv1[0], lv1[1] on the
/// root's edges and lv2[0], lv2[1] below. Returns the 4 leaves in order
/// (c-target, d-target, c-target, d-target) via *leaves.
void AddForestTree(Graph* g, const std::string& prefix, const char* lv1_a,
                   const char* lv1_b, const char* lv2_a, const char* lv2_b,
                   std::vector<NodeId>* leaves) {
  NodeId root = g->AddNode(prefix + "r");
  NodeId c1 = g->AddNode(prefix + "i0");
  NodeId c2 = g->AddNode(prefix + "i1");
  g->AddEdge(root, c1, lv1_a);
  g->AddEdge(root, c2, lv1_b);
  int leaf_idx = 0;
  for (NodeId mid : {c1, c2}) {
    NodeId la = g->AddNode(prefix + "l" + std::to_string(leaf_idx++));
    NodeId lb = g->AddNode(prefix + "l" + std::to_string(leaf_idx++));
    g->AddEdge(mid, la, lv2_a);
    g->AddEdge(mid, lb, lv2_b);
    leaves->push_back(la);
    leaves->push_back(lb);
  }
}

}  // namespace

Result<CdfDataset> MakeCdf(const CdfParams& p) {
  if (p.m != 2 && p.m != 3) {
    return Status::InvalidArgument("CDF m must be 2 or 3");
  }
  if (p.num_trees < 1 || p.num_links < 0) {
    return Status::InvalidArgument("CDF needs num_trees >= 1, num_links >= 0");
  }
  if (p.link_len < 1 || (p.m == 3 && p.link_len < 3)) {
    return Status::InvalidArgument("CDF link_len too small (m=3 needs >= 3)");
  }

  CdfDataset out;
  out.params = p;
  Graph& g = out.graph;

  // Per-tree leaf layout from AddForestTree: [c,d,c,d] on top, [g,h,g,h]
  // at the bottom.
  std::vector<NodeId> eligible_top;     // 50% of c-targets: first per tree
  std::vector<NodeId> eligible_bottom;  // m=2: 50% of g-targets
  std::vector<std::pair<NodeId, NodeId>> eligible_pairs;  // m=3 sibling pairs
  for (int t = 0; t < p.num_trees; ++t) {
    std::vector<NodeId> leaves;
    AddForestTree(&g, StrFormat("t%d_", t), "a", "b", "c", "d", &leaves);
    out.top_leaves.push_back(leaves[0]);
    out.top_leaves.push_back(leaves[2]);
    eligible_top.push_back(leaves[0]);
  }
  for (int t = 0; t < p.num_trees; ++t) {
    std::vector<NodeId> leaves;
    AddForestTree(&g, StrFormat("b%d_", t), "e", "f", "g", "h", &leaves);
    out.bottom_g_leaves.push_back(leaves[0]);
    out.bottom_g_leaves.push_back(leaves[2]);
    out.bottom_h_leaves.push_back(leaves[1]);
    out.bottom_h_leaves.push_back(leaves[3]);
    eligible_bottom.push_back(leaves[0]);
    eligible_pairs.emplace_back(leaves[0], leaves[1]);
  }

  Rng rng(p.seed);
  for (int l = 0; l < p.num_links; ++l) {
    NodeId top = eligible_top[rng.Below(eligible_top.size())];
    const std::string prefix = StrFormat("k%d_", l);
    if (p.m == 2) {
      NodeId bottom = eligible_bottom[rng.Below(eligible_bottom.size())];
      NodeId prev = top;
      for (int h = 0; h < p.link_len; ++h) {
        NodeId next = (h == p.link_len - 1)
                          ? bottom
                          : g.AddNode(prefix + std::to_string(h));
        g.AddEdge(prev, next, "link");
        prev = next;
      }
    } else {
      auto [bl1, bl2] = eligible_pairs[rng.Below(eligible_pairs.size())];
      // Y shape: a stem of link_len-2 edges, then one edge to each sibling.
      NodeId prev = top;
      for (int h = 0; h < p.link_len - 2; ++h) {
        NodeId next = g.AddNode(prefix + std::to_string(h));
        g.AddEdge(prev, next, "link");
        prev = next;
      }
      g.AddEdge(prev, bl1, "link");
      g.AddEdge(prev, bl2, "link");
    }
  }

  g.Finalize();
  return out;
}

std::string CdfQueryText(int m) {
  if (m == 2) {
    return "SELECT ?tl ?bl ?l\n"
           "WHERE {\n"
           "  ?x \"c\" ?tl .\n"
           "  ?v \"g\" ?bl .\n"
           "  CONNECT(?tl, ?bl -> ?l)\n"
           "}\n";
  }
  return "SELECT ?tl ?bl1 ?bl2 ?l\n"
         "WHERE {\n"
         "  ?x \"c\" ?tl .\n"
         "  ?v \"g\" ?bl1 .\n"
         "  ?v \"h\" ?bl2 .\n"
         "  CONNECT(?tl, ?bl1, ?bl2 -> ?l)\n"
         "}\n";
}

}  // namespace eql
