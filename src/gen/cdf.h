// Connected Dense Forest (CDF) graphs — the paper's EQL benchmark data
// (Section 5.3, Figure 9).
//
// A CDF(m, NT, NL, SL) holds a top forest and a bottom forest of NT
// three-level complete binary trees each (7 nodes / 6 edges per tree; edge
// labels a,b / c,d on top, e,f / g,h at the bottom), plus NL "link"
// connections of SL triples each:
//   m=2: a chain from an eligible top leaf to an eligible bottom leaf;
//   m=3: a Y from an eligible top leaf to an eligible sibling leaf pair
//        (a "g"-target and its "h" sibling), so the 3-seed query has exactly
//        one answer per link.
// Eligibility follows the paper: only "c"-targets on top, 50% of them carry
// links; 50% of "g"-targets (m=2) / 50% of bottom leaves as sibling pairs
// (m=3). Links are uniformly distributed over eligible endpoints.
//
// Edge count is 12*NT + NL*SL, matching the paper's formula. The Y-link arm
// split (an SL-2 edge stem plus two 1-edge branches) is our reading of the
// paper's underspecified "Y-shaped connection"; see DESIGN.md §6.
#ifndef EQL_GEN_CDF_H_
#define EQL_GEN_CDF_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace eql {

struct CdfParams {
  int m = 2;          ///< 2 or 3 (number of CTP seed sets in the benchmark)
  int num_trees = 4;  ///< NT: trees per forest
  int num_links = 2;  ///< NL: number of link connections (= query answers)
  int link_len = 3;   ///< SL: triples per link (>= 1 for m=2, >= 3 for m=3)
  uint64_t seed = 42; ///< RNG seed for the uniform link placement
};

struct CdfDataset {
  Graph graph;
  CdfParams params;
  /// Eligible leaves actually usable by the EQL query's BGPs.
  std::vector<NodeId> top_leaves;      ///< all "c"-targets
  std::vector<NodeId> bottom_g_leaves; ///< all "g"-targets
  std::vector<NodeId> bottom_h_leaves; ///< all "h"-targets
};

/// Generates a CDF graph; fails on invalid parameters (m outside {2,3},
/// SL too small for the Y shape).
Result<CdfDataset> MakeCdf(const CdfParams& params);

/// The EQL query text the benchmark runs on a CDF graph with this m
/// (Section 5.3): two or three BGPs binding leaves plus one CTP.
std::string CdfQueryText(int m);

}  // namespace eql

#endif  // EQL_GEN_CDF_H_
