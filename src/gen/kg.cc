#include "gen/kg.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace eql {

namespace {

/// Precomputed Zipf sampler over {0..n-1}: P(k) proportional to 1/(k+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) : cumulative_(n) {
    double total = 0;
    for (int k = 0; k < n; ++k) {
      total += 1.0 / std::pow(k + 1, s);
      cumulative_[k] = total;
    }
    for (double& c : cumulative_) c /= total;
  }
  int Sample(Rng* rng) const {
    double u = rng->NextDouble();
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    if (it == cumulative_.end()) return static_cast<int>(cumulative_.size()) - 1;
    return static_cast<int>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

Result<Graph> MakeSyntheticKg(const KgParams& p) {
  if (p.num_nodes < 2) return Status::InvalidArgument("KG needs >= 2 nodes");
  if (p.num_edges < p.num_nodes) {
    return Status::InvalidArgument("KG needs num_edges >= num_nodes for connectivity");
  }
  Rng rng(p.seed);
  ZipfSampler label_dist(p.num_labels, p.label_zipf_s);
  ZipfSampler type_dist(p.num_types, p.label_zipf_s);

  Graph g;
  std::vector<std::string> labels;
  labels.reserve(p.num_labels);
  for (int k = 0; k < p.num_labels; ++k) labels.push_back("p" + std::to_string(k));

  for (uint32_t i = 0; i < p.num_nodes; ++i) {
    NodeId n = g.AddNode("n" + std::to_string(i));
    g.AddType(n, "T" + std::to_string(type_dist.Sample(&rng)));
  }

  // Endpoint pool for degree-proportional sampling: every time an edge is
  // added, both endpoints enter the pool (classic preferential attachment).
  std::vector<NodeId> pool;
  pool.reserve(2 * p.num_edges);
  auto add_edge = [&](NodeId a, NodeId b) {
    // Random orientation so directed baselines cannot rely on one direction.
    if (rng.Chance(0.5)) std::swap(a, b);
    g.AddEdge(a, b, labels[label_dist.Sample(&rng)]);
    pool.push_back(a);
    pool.push_back(b);
  };

  // Phase 1: attach node i to a degree-proportional earlier node; this keeps
  // the graph connected and seeds the heavy tail.
  add_edge(0, 1);
  for (NodeId i = 2; i < p.num_nodes; ++i) {
    NodeId target = pool[rng.Below(pool.size())];
    add_edge(i, target);
  }
  // Phase 2: densify with preferential endpoints until num_edges.
  while (g.NumEdges() < p.num_edges) {
    NodeId a = pool[rng.Below(pool.size())];
    NodeId b = pool[rng.Below(pool.size())];
    if (a == b) b = static_cast<NodeId>(rng.Below(p.num_nodes));
    if (a == b) continue;
    add_edge(a, b);
  }

  g.Finalize();
  return g;
}

std::vector<WorkloadCtp> MakeCtpWorkload(const Graph& g, int count, int m,
                                         int set_size, Rng* rng) {
  std::vector<WorkloadCtp> out;
  out.reserve(count);
  for (int q = 0; q < count; ++q) {
    WorkloadCtp ctp;
    std::vector<NodeId> used;
    for (int i = 0; i < m; ++i) {
      std::vector<NodeId> set;
      while (static_cast<int>(set.size()) < set_size) {
        NodeId n = static_cast<NodeId>(rng->Below(g.NumNodes()));
        if (g.Degree(n) == 0) continue;
        if (std::find(used.begin(), used.end(), n) != used.end()) continue;
        used.push_back(n);
        set.push_back(n);
      }
      ctp.seed_sets.push_back(std::move(set));
    }
    out.push_back(std::move(ctp));
  }
  return out;
}

}  // namespace eql
