// Synthetic knowledge-graph generator: the stand-in for the paper's YAGO3
// (6M triples) and DBPedia (18M triples) subsets (Sections 5.3-5.5), which
// are not redistributable here.
//
// The generator produces a seeded scale-free labeled multigraph via
// preferential attachment (heavy-tailed degrees, like real KGs), with
// Zipf-distributed edge labels and node types. The CTP workload generator
// reproduces the QGSTP evaluation's query-size distribution: 312 CTPs with
// 83/98/85/38/8 queries for m = 2..6 (Section 5.4.3).
#ifndef EQL_GEN_KG_H_
#define EQL_GEN_KG_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace eql {

struct KgParams {
  uint32_t num_nodes = 10000;
  uint64_t num_edges = 40000;  ///< must be >= num_nodes
  int num_labels = 50;         ///< edge label vocabulary ("p0".."pK")
  int num_types = 20;          ///< node type vocabulary ("T0".."TJ")
  double label_zipf_s = 1.0;   ///< skew of the label distribution
  uint64_t seed = 7;
};

/// Generates a connected scale-free labeled graph. Node i is labeled "n<i>";
/// every node gets one Zipf-drawn type.
Result<Graph> MakeSyntheticKg(const KgParams& params);

/// One workload CTP: m seed sets of `set_size` distinct random nodes each.
struct WorkloadCtp {
  std::vector<std::vector<NodeId>> seed_sets;
};

/// Draws `count` CTPs with `m` seed sets each over `g` (distinct nodes,
/// degree >= 1). Deterministic in `rng`.
std::vector<WorkloadCtp> MakeCtpWorkload(const Graph& g, int count, int m,
                                         int set_size, Rng* rng);

/// The per-m CTP counts of the paper's DBPedia workload: m=2..6 ->
/// {83, 98, 85, 38, 8} (312 total).
inline constexpr int kDbpediaWorkloadCounts[] = {83, 98, 85, 38, 8};

}  // namespace eql

#endif  // EQL_GEN_KG_H_
