#include "gen/synthetic.h"

#include <cassert>

namespace eql {

std::string SeedName(int i) {
  if (i < 26) return std::string(1, static_cast<char>('A' + i));
  return "S" + std::to_string(i);
}

namespace {

/// Connects `from` to `to` with a path of `edges` edges through fresh
/// intermediate nodes named "<prefix>0", "<prefix>1", ... Edge directions
/// alternate (even hop forward, odd hop backward) to force bidirectional
/// traversal; labels alternate "t"/"u".
void AddPath(Graph* g, NodeId from, NodeId to, int edges, const std::string& prefix) {
  assert(edges >= 1);
  NodeId prev = from;
  for (int h = 0; h < edges; ++h) {
    NodeId next =
        (h == edges - 1) ? to : g->AddNode(prefix + std::to_string(h));
    const char* label = (h % 2 == 0) ? "t" : "u";
    if (h % 2 == 0) {
      g->AddEdge(prev, next, label);
    } else {
      g->AddEdge(next, prev, label);
    }
    prev = next;
  }
}

}  // namespace

SyntheticDataset MakeLine(int m, int n_l) {
  assert(m >= 2 && n_l >= 0);
  SyntheticDataset out;
  std::vector<NodeId> seeds;
  for (int i = 0; i < m; ++i) {
    seeds.push_back(out.graph.AddNode(SeedName(i)));
    out.seed_sets.push_back({seeds.back()});
  }
  for (int i = 0; i + 1 < m; ++i) {
    if (n_l == 0) {
      out.graph.AddEdge(seeds[i], seeds[i + 1], "t");
    } else {
      AddPath(&out.graph, seeds[i], seeds[i + 1], n_l + 1,
              "l" + std::to_string(i) + "_");
    }
  }
  out.graph.Finalize();
  return out;
}

SyntheticDataset MakeComb(int n_a, int n_s, int s_l, int d_ba) {
  assert(n_a >= 1 && n_s >= 0 && s_l >= 1 && d_ba >= 1);
  SyntheticDataset out;
  Graph& g = out.graph;
  int seed_idx = 0;
  std::vector<NodeId> anchors;
  // Anchor seeds along the main line.
  for (int i = 0; i < n_a; ++i) {
    anchors.push_back(g.AddNode(SeedName(seed_idx++)));
    out.seed_sets.push_back({anchors.back()});
  }
  for (int i = 0; i + 1 < n_a; ++i) {
    AddPath(&g, anchors[i], anchors[i + 1], d_ba, "m" + std::to_string(i) + "_");
  }
  // Bristles: nS chained segments of sL edges, each ending in a new seed.
  for (int i = 0; i < n_a; ++i) {
    NodeId attach = anchors[i];
    for (int s = 0; s < n_s; ++s) {
      NodeId tip = g.AddNode(SeedName(seed_idx++));
      out.seed_sets.push_back({tip});
      AddPath(&g, attach, tip, s_l,
              "b" + std::to_string(i) + "_" + std::to_string(s) + "_");
      attach = tip;
    }
  }
  g.Finalize();
  return out;
}

SyntheticDataset MakeStar(int m, int s_l) {
  assert(m >= 1 && s_l >= 1);
  SyntheticDataset out;
  Graph& g = out.graph;
  NodeId center = g.AddNode("center");
  for (int i = 0; i < m; ++i) {
    NodeId seed = g.AddNode(SeedName(i));
    out.seed_sets.push_back({seed});
    AddPath(&g, center, seed, s_l, "arm" + std::to_string(i) + "_");
  }
  g.Finalize();
  return out;
}

SyntheticDataset MakeChain(int n) {
  assert(n >= 1);
  SyntheticDataset out;
  Graph& g = out.graph;
  std::vector<NodeId> nodes;
  for (int i = 0; i <= n; ++i) nodes.push_back(g.AddNode(std::to_string(i + 1)));
  for (int i = 0; i < n; ++i) {
    g.AddEdge(nodes[i], nodes[i + 1], "a");
    g.AddEdge(nodes[i], nodes[i + 1], "b");
  }
  out.seed_sets.push_back({nodes.front()});
  out.seed_sets.push_back({nodes.back()});
  g.Finalize();
  return out;
}

}  // namespace eql
