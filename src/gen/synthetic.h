// Parameterized synthetic graphs of the paper's CTP micro-benchmarks:
// the exponential Chain (Figure 2) and Line / Comb / Star (Figure 8,
// Section 5.3), each packaged with its singleton seed sets.
//
// Edge directions alternate deterministically along every generated path so
// that the bidirectional traversal requirement (R3) is actually exercised:
// no unidirectional engine can follow these connections end to end.
#ifndef EQL_GEN_SYNTHETIC_H_
#define EQL_GEN_SYNTHETIC_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace eql {

/// A generated graph plus the CTP seed sets its experiment uses.
struct SyntheticDataset {
  Graph graph;
  std::vector<std::vector<NodeId>> seed_sets;  ///< one singleton set per seed
};

/// Human-readable seed label: "A".."Z", then "S26", "S27", ...
std::string SeedName(int i);

/// Line(m, nL): m seeds in a row, consecutive seeds connected by a path with
/// nL intermediary nodes (sL = nL + 1 edges). The CTP result is the full
/// line; it is 2-piecewise simple.
SyntheticDataset MakeLine(int m, int n_l);

/// Comb(nA, nS, sL, dBA): a main line of nA anchor seeds, consecutive
/// anchors dBA edges apart; from each anchor hangs a bristle of nS chained
/// segments, each segment a path of sL edges ending in a new seed. The seed
/// count is m = nA * (nS + 1). The single result (the whole comb) is 2ps.
SyntheticDataset MakeComb(int n_a, int n_s, int s_l, int d_ba);

/// Star(m, sL): a central non-seed node with m arms of sL edges, each arm
/// ending in a seed. The single result is an (m, center)-rooted merge.
SyntheticDataset MakeStar(int m, int s_l);

/// Chain(N) (Figure 2): N+1 nodes in a row with two parallel edges (labels
/// "a" and "b") between consecutive nodes; the 2-seed CTP over the two ends
/// has exactly 2^N results.
SyntheticDataset MakeChain(int n);

}  // namespace eql

#endif  // EQL_GEN_SYNTHETIC_H_
