#include "graph/bulk_load.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/snapshot_format.h"
#include "util/string_util.h"

namespace eql {

using namespace snapshot_internal;  // NOLINT(build/namespaces)

namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Splits on '\t' keeping empty pieces (mirrors util Split); fills up to
/// `max_cols` pieces and returns the true column count.
size_t SplitCols(std::string_view line, std::string_view* cols,
                 size_t max_cols) {
  size_t n = 0;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    std::string_view piece =
        tab == std::string_view::npos
            ? line.substr(start)
            : line.substr(start, tab - start);
    if (n < max_cols) cols[n] = piece;
    ++n;
    if (tab == std::string_view::npos) break;
    start = tab + 1;
  }
  return n;
}

/// Per-chunk parse output. All string_views point into the input mapping.
/// `strings` and `node_strs` record *first-appearance order*, which is what
/// lets the sequential merge reproduce the sequential loader's id
/// assignment exactly (a string's global first appearance lies in the
/// earliest chunk that contains it, at that chunk's local first appearance).
struct ChunkResult {
  std::vector<std::string_view> strings;  // local string id -> text
  std::unordered_map<std::string_view, uint32_t> str_ids;
  std::vector<uint32_t> node_strs;  // local node id -> local string id
  std::unordered_map<uint32_t, uint32_t> node_ids;

  struct EdgeOp {
    uint32_t src, dst, label;  // local node, local node, local string
  };
  struct TypeOp {
    uint32_t node, type;  // local node, local string
  };
  std::vector<EdgeOp> edges;      // in line order
  std::vector<TypeOp> types;      // in line order
  std::vector<uint32_t> literals;  // local node ids to mark, in line order

  uint64_t num_lines = 0;
  bool has_error = false;
  uint64_t error_line = 0;  // local, 1-based
  std::string error_msg;

  uint32_t Intern(std::string_view s) {
    auto [it, inserted] =
        str_ids.try_emplace(s, static_cast<uint32_t>(strings.size()));
    if (inserted) strings.push_back(s);
    return it->second;
  }

  uint32_t InternNode(std::string_view label) {
    uint32_t lid = Intern(label);
    auto [it, inserted] =
        node_ids.try_emplace(lid, static_cast<uint32_t>(node_strs.size()));
    if (inserted) node_strs.push_back(lid);
    return it->second;
  }

  void Fail(uint64_t line, std::string msg) {
    has_error = true;
    error_line = line;
    error_msg = std::move(msg);
  }
};

/// One TSV line, replicating ParseGraphText's dispatch and intern order
/// (src, dst, label for edges) so ids come out identical.
bool ParseTsvLine(std::string_view line, ChunkResult* r, std::string* err) {
  std::string_view cols[3];
  const size_t n = SplitCols(line, cols, 3);
  if (n >= 2 && cols[0] == "@literal") {
    uint32_t node = r->InternNode(Trim(cols[1]));
    r->Intern("literal");
    r->Intern("true");
    r->literals.push_back(node);
    return true;
  }
  if (cols[0] == "@type") {
    if (n < 3) {
      *err = StrFormat(
          "@type needs <node> and <type> columns, got %zu columns", n);
      return false;
    }
    uint32_t node = r->InternNode(Trim(cols[1]));
    uint32_t type = r->Intern(Trim(cols[2]));
    r->types.push_back({node, type});
    return true;
  }
  if (n != 3) {
    *err = StrFormat("expected 3 tab-separated columns, got %zu", n);
    return false;
  }
  uint32_t src = r->InternNode(Trim(cols[0]));
  uint32_t dst = r->InternNode(Trim(cols[2]));
  uint32_t label = r->Intern(Trim(cols[1]));
  r->edges.push_back({src, dst, label});
  return true;
}

/// One N-Triples term starting at *pos; advances past it. Returns false on
/// malformed input. IRIs lose their angle brackets, literals keep their
/// lexical form verbatim (language/datatype suffixes are dropped).
bool ParseNtTerm(std::string_view line, size_t* pos, std::string_view* value,
                 bool* is_literal) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) ++*pos;
  if (*pos >= line.size()) return false;
  *is_literal = false;
  const char c = line[*pos];
  if (c == '<') {
    size_t close = line.find('>', *pos + 1);
    if (close == std::string_view::npos) return false;
    *value = line.substr(*pos + 1, close - *pos - 1);
    *pos = close + 1;
    return true;
  }
  if (c == '"') {
    size_t i = *pos + 1;
    while (i < line.size() && (line[i] != '"' || line[i - 1] == '\\')) ++i;
    if (i >= line.size()) return false;
    *value = line.substr(*pos + 1, i - *pos - 1);
    *is_literal = true;
    // Skip any @lang / ^^<datatype> suffix up to whitespace.
    ++i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    *pos = i;
    return true;
  }
  size_t end = *pos;
  while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
  *value = line.substr(*pos, end - *pos);
  *pos = end;
  return true;
}

bool ParseNtLine(std::string_view line, ChunkResult* r, std::string* err) {
  if (line.empty() || line.back() != '.') {
    *err = "N-Triples line does not end with '.'";
    return false;
  }
  line = Trim(line.substr(0, line.size() - 1));
  std::string_view subj, pred, obj;
  bool subj_lit = false, pred_lit = false, obj_lit = false;
  size_t pos = 0;
  if (!ParseNtTerm(line, &pos, &subj, &subj_lit) ||
      !ParseNtTerm(line, &pos, &pred, &pred_lit) ||
      !ParseNtTerm(line, &pos, &obj, &obj_lit) || subj_lit || pred_lit) {
    *err = "malformed N-Triples line (want: subject predicate object .)";
    return false;
  }
  if (pred == kRdfType && !obj_lit) {
    uint32_t node = r->InternNode(subj);
    uint32_t type = r->Intern(obj);
    r->types.push_back({node, type});
    return true;
  }
  uint32_t src = r->InternNode(subj);
  uint32_t dst = r->InternNode(obj);
  uint32_t label = r->Intern(pred);
  r->edges.push_back({src, dst, label});
  if (obj_lit) {
    r->Intern("literal");
    r->Intern("true");
    r->literals.push_back(dst);
  }
  return true;
}

void ParseChunk(std::string_view text, BulkLoadFormat format, ChunkResult* r) {
  size_t start = 0;
  uint64_t line_no = 0;
  std::string err;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(start, end - start));
    start = end + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    const bool ok = format == BulkLoadFormat::kNTriples
                        ? ParseNtLine(line, r, &err)
                        : ParseTsvLine(line, r, &err);
    if (!ok) {
      r->Fail(line_no, err);
      return;
    }
  }
  r->num_lines = line_no;
}

BulkLoadFormat DetectFormat(const std::string& path, BulkLoadFormat req) {
  if (req != BulkLoadFormat::kAuto) return req;
  auto ends_with = [&path](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           std::string_view(path).substr(path.size() - suffix.size()) == suffix;
  };
  if (ends_with(".nt") || ends_with(".ntriples")) return BulkLoadFormat::kNTriples;
  return BulkLoadFormat::kTsv;
}

}  // namespace

uint64_t CurrentPeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  uint64_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %lu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

Result<BulkLoadStats> PackGraphFile(const std::string& input_path,
                                    const std::string& output_path,
                                    const BulkLoadOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  auto seconds_since = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  Result<MmapFile> input = MmapFile::Open(input_path);
  if (!input.ok()) return input.status();
  input->AdviseSequential();
  const std::string_view text(input->data(), input->size());
  const BulkLoadFormat format = DetectFormat(input_path, options.format);

  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (text.size() < (1u << 20)) threads = 1;  // not worth fanning out

  // Newline-aligned chunk boundaries.
  std::vector<size_t> bounds{0};
  for (int i = 1; i < threads; ++i) {
    size_t target = text.size() * static_cast<size_t>(i) / threads;
    if (target <= bounds.back()) continue;
    size_t nl = text.find('\n', target);
    if (nl == std::string_view::npos) break;
    bounds.push_back(nl + 1);
  }
  bounds.push_back(text.size());

  const size_t num_chunks = bounds.size() - 1;
  std::vector<ChunkResult> chunks(num_chunks);
  {
    std::vector<std::thread> workers;
    workers.reserve(num_chunks);
    for (size_t c = 0; c < num_chunks; ++c) {
      workers.emplace_back([&, c] {
        ParseChunk(text.substr(bounds[c], bounds[c + 1] - bounds[c]), format,
                   &chunks[c]);
      });
    }
    for (auto& t : workers) t.join();
  }
  const auto t_parsed = Clock::now();

  uint64_t lines_before = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    if (chunks[c].has_error) {
      return Status::InvalidArgument(
          StrFormat("%s line %llu: %s", input_path.c_str(),
                    static_cast<unsigned long long>(lines_before +
                                                    chunks[c].error_line),
                    chunks[c].error_msg.c_str()));
    }
    lines_before += chunks[c].num_lines;
  }
  const uint64_t total_lines = lines_before;

  // ---- sequential merge: global ids in first-appearance order ----
  std::vector<std::string_view> by_id{std::string_view()};  // epsilon, id 0
  std::unordered_map<std::string_view, StrId> gstr{{std::string_view(), 0}};
  std::vector<StrId> node_label;
  std::vector<std::vector<StrId>> node_types;
  std::unordered_map<StrId, NodeId> node_by_str;
  std::vector<NodeId> edge_src, edge_dst;
  std::vector<StrId> edge_label;
  std::unordered_map<uint64_t, StrId> props;  // (node << 32 | key) -> value

  for (size_t c = 0; c < num_chunks; ++c) {
    ChunkResult& chunk = chunks[c];
    std::vector<StrId> remap_str(chunk.strings.size());
    for (size_t i = 0; i < chunk.strings.size(); ++i) {
      auto [it, inserted] =
          gstr.try_emplace(chunk.strings[i], static_cast<StrId>(by_id.size()));
      if (inserted) by_id.push_back(chunk.strings[i]);
      remap_str[i] = it->second;
    }
    std::vector<NodeId> remap_node(chunk.node_strs.size());
    for (size_t j = 0; j < chunk.node_strs.size(); ++j) {
      StrId gid = remap_str[chunk.node_strs[j]];
      auto [it, inserted] =
          node_by_str.try_emplace(gid, static_cast<NodeId>(node_label.size()));
      if (inserted) {
        node_label.push_back(gid);
        node_types.emplace_back();
      }
      remap_node[j] = it->second;
    }
    for (const auto& e : chunk.edges) {
      edge_src.push_back(remap_node[e.src]);
      edge_dst.push_back(remap_node[e.dst]);
      edge_label.push_back(remap_str[e.label]);
    }
    for (const auto& tp : chunk.types) {
      NodeId n = remap_node[tp.node];
      StrId t = remap_str[tp.type];
      auto& ts = node_types[n];
      if (std::find(ts.begin(), ts.end(), t) == ts.end()) ts.push_back(t);
    }
    if (!chunk.literals.empty()) {
      const StrId key = gstr.find(std::string_view("literal"))->second;
      const StrId val = gstr.find(std::string_view("true"))->second;
      for (uint32_t ln : chunk.literals) {
        props[(static_cast<uint64_t>(remap_node[ln]) << 32) | key] = val;
      }
    }
    chunk = ChunkResult{};  // free as we go
  }
  chunks.clear();
  const auto t_merged = Clock::now();

  const uint64_t nn = node_label.size();
  const uint64_t ne = edge_label.size();
  const uint64_t ns = by_id.size();

  // ---- section builds, streamed out one at a time ----
  SnapshotFileWriter w;
  EQL_RETURN_IF_ERROR(w.Create(output_path));

  MetaSection meta{};
  meta.num_nodes = nn;
  meta.num_edges = ne;
  meta.num_strings = ns;
  meta.dict_block_size = kDictBlockSize;
  EQL_RETURN_IF_ERROR(w.Append(SectionId::kMeta, &meta, sizeof(meta)));

  EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodeLabel, node_label));
  {
    std::vector<uint8_t> literal_flags(nn, 0);  // the TSV @literal quirk:
    // literal-ness is a property, IsLiteral() stays false (parity with
    // graph_io's ParseGraphText).
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodeLiteral, literal_flags));
  }
  EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kEdgeSrc, edge_src));
  EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kEdgeDst, edge_dst));
  EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kEdgeLabel, edge_label));

  {  // Types as CSR, then the type->nodes inverted index, then free both.
    std::vector<uint32_t> toff(nn + 1, 0);
    std::vector<StrId> tlist;
    for (NodeId n = 0; n < nn; ++n) {
      tlist.insert(tlist.end(), node_types[n].begin(), node_types[n].end());
      toff[n + 1] = static_cast<uint32_t>(tlist.size());
    }
    node_types.clear();
    node_types.shrink_to_fit();
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodeTypeOff, toff));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodeTypeList, tlist));
    KeyedCsr tn = BuildKeyedCsr(ns, [&](auto&& emit) {
      for (NodeId n = 0; n < nn; ++n) {
        for (uint32_t i = toff[n]; i < toff[n + 1]; ++i) emit(tlist[i], n);
      }
    });
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kTypeNodesOff, tn.off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kTypeNodesList, tn.list));
  }

  {  // Incidence CSR + degree: exactly Graph::Finalize()'s construction.
    std::vector<uint32_t> cnt(nn, 0);
    for (uint64_t e = 0; e < ne; ++e) {
      ++cnt[edge_src[e]];
      if (edge_dst[e] != edge_src[e]) ++cnt[edge_dst[e]];
    }
    std::vector<uint32_t> off(nn + 1, 0);
    for (uint64_t n = 0; n < nn; ++n) off[n + 1] = off[n] + cnt[n];
    std::vector<IncidentEdge> list(off[nn]);
    std::vector<uint32_t> pos(off.begin(), off.end() - 1);
    for (uint64_t e = 0; e < ne; ++e) {
      NodeId s = edge_src[e], d = edge_dst[e];
      list[pos[s]++] = IncidentEdge{static_cast<EdgeId>(e), d, true};
      if (d != s) list[pos[d]++] = IncidentEdge{static_cast<EdgeId>(e), s, false};
    }
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kDegree, cnt));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kIncOff, off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kIncList, list));
  }
  {  // Out CSR.
    std::vector<uint32_t> off(nn + 1, 0);
    for (uint64_t e = 0; e < ne; ++e) ++off[edge_src[e] + 1];
    for (uint64_t n = 0; n < nn; ++n) off[n + 1] += off[n];
    std::vector<IncidentEdge> list(off[nn]);
    std::vector<uint32_t> pos(off.begin(), off.end() - 1);
    for (uint64_t e = 0; e < ne; ++e) {
      list[pos[edge_src[e]]++] =
          IncidentEdge{static_cast<EdgeId>(e), edge_dst[e], true};
    }
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kOutOff, off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kOutList, list));
  }
  {  // In CSR.
    std::vector<uint32_t> off(nn + 1, 0);
    for (uint64_t e = 0; e < ne; ++e) ++off[edge_dst[e] + 1];
    for (uint64_t n = 0; n < nn; ++n) off[n + 1] += off[n];
    std::vector<IncidentEdge> list(off[nn]);
    std::vector<uint32_t> pos(off.begin(), off.end() - 1);
    for (uint64_t e = 0; e < ne; ++e) {
      list[pos[edge_dst[e]]++] =
          IncidentEdge{static_cast<EdgeId>(e), edge_src[e], false};
    }
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kInOff, off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kInList, list));
  }

  {  // Inverted label indexes.
    KeyedCsr ln = BuildKeyedCsr(ns, [&](auto&& emit) {
      for (uint64_t n = 0; n < nn; ++n) emit(node_label[n], static_cast<uint32_t>(n));
    });
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kLabelNodesOff, ln.off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kLabelNodesList, ln.list));
  }
  {
    KeyedCsr le = BuildKeyedCsr(ns, [&](auto&& emit) {
      for (uint64_t e = 0; e < ne; ++e) emit(edge_label[e], static_cast<uint32_t>(e));
    });
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kLabelEdgesOff, le.off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kLabelEdgesList, le.list));
  }

  {  // Properties, sorted by (owner, key).
    std::vector<std::pair<uint64_t, StrId>> pairs(props.begin(), props.end());
    std::sort(pairs.begin(), pairs.end());
    std::vector<uint64_t> keys;
    std::vector<StrId> vals;
    keys.reserve(pairs.size());
    vals.reserve(pairs.size());
    for (const auto& [k, v] : pairs) {
      keys.push_back(k);
      vals.push_back(v);
    }
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodePropKeys, keys));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodePropVals, vals));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kEdgePropKeys,
                                       std::vector<uint64_t>{}));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kEdgePropVals,
                                       std::vector<StrId>{}));
  }

  EQL_RETURN_IF_ERROR(AppendDictSections(&w, by_id, kDictBlockSize));
  const uint64_t out_bytes = w.bytes_written();
  EQL_RETURN_IF_ERROR(w.Finish());
  const auto t_written = Clock::now();

  BulkLoadStats stats;
  stats.input_bytes = text.size();
  stats.output_bytes = out_bytes;
  stats.num_lines = total_lines;
  stats.num_nodes = nn;
  stats.num_edges = ne;
  stats.num_strings = ns;
  stats.threads_used = static_cast<int>(num_chunks);
  stats.parse_seconds = seconds_since(t0, t_parsed);
  stats.merge_seconds = seconds_since(t_parsed, t_merged);
  stats.write_seconds = seconds_since(t_merged, t_written);
  return stats;
}

}  // namespace eql
