// Parallel bulk loader: text triples -> snapshot file, without ever holding
// an owned Graph in memory.
//
// PackGraphFile() mmaps the input, splits it into newline-aligned chunks,
// and parses the chunks on worker threads. Each worker records, per chunk,
// the first-appearance order of interned strings and node labels (as
// string_views into the input mapping — no string is ever copied) plus the
// edge/type/literal operations of its lines. A sequential merge then assigns
// global StrIds/NodeIds by walking the chunks in order, which reproduces the
// exact id assignment of the sequential ParseGraphText path; edge ids follow
// input line order. The result: output files are byte-identical across
// thread counts AND byte-identical to WriteSnapshot(ParseGraphText(input))
// for TSV inputs.
//
// Sections are built and written one at a time (the snapshot section table
// permits any append order) and freed immediately, so peak RSS stays well
// below the size of the graph being packed.
//
// Supported inputs: the repo's TSV triple format (graph/graph_io.h) and
// basic N-Triples (`<s> <p> <o> .`, rdf:type mapped to node types, literal
// objects marked like the TSV `@literal` directive).
#ifndef EQL_GRAPH_BULK_LOAD_H_
#define EQL_GRAPH_BULK_LOAD_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace eql {

enum class BulkLoadFormat {
  kAuto,      ///< by extension: .nt/.ntriples -> N-Triples, else TSV
  kTsv,       ///< graph_io.h triple format
  kNTriples,  ///< basic N-Triples
};

struct BulkLoadOptions {
  int num_threads = 0;  ///< parse threads; 0 = hardware concurrency
  BulkLoadFormat format = BulkLoadFormat::kAuto;
};

struct BulkLoadStats {
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t num_lines = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t num_strings = 0;
  int threads_used = 0;
  double parse_seconds = 0;  ///< parallel chunk scan
  double merge_seconds = 0;  ///< sequential id assignment
  double write_seconds = 0;  ///< section builds + file output
};

/// Packs `input_path` into a snapshot at `output_path`. Errors carry the
/// 1-based input line number and a reason.
Result<BulkLoadStats> PackGraphFile(const std::string& input_path,
                                    const std::string& output_path,
                                    const BulkLoadOptions& options = {});

/// This process's peak resident set (VmHWM) in bytes; 0 if unavailable.
/// Exposed here for the pack tooling's RSS accounting.
uint64_t CurrentPeakRssBytes();

}  // namespace eql

#endif  // EQL_GRAPH_BULK_LOAD_H_
