#include "graph/dictionary.h"

namespace eql {

Dictionary::Dictionary() {
  // Id 0 is the empty label epsilon, present in every label set (Def 2.1).
  strings_.emplace_back("");
  index_.emplace("", 0);
}

StrId Dictionary::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

StrId Dictionary::Lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? kNoStrId : it->second;
}

}  // namespace eql
