#include "graph/dictionary.h"

#include <cassert>

#include "graph/snapshot_format.h"

namespace eql {

using snapshot_internal::ReadVarint;

Dictionary::Dictionary() {
  // Id 0 is the empty label epsilon, present in every label set (Def 2.1).
  strings_.emplace_back("");
  index_.emplace("", 0);
}

Dictionary::~Dictionary() { DestroyCache(); }

void Dictionary::DestroyCache() {
  if (block_cache_ == nullptr) return;
  for (size_t b = 0; b < num_blocks_; ++b) {
    delete block_cache_[b].load(std::memory_order_relaxed);
  }
  block_cache_.reset();
}

void Dictionary::CopyFrom(const Dictionary& other) {
  strings_ = other.strings_;
  index_ = other.index_;
  snapshot_backed_ = other.snapshot_backed_;
  snap_ = other.snap_;
  snap_owner_ = other.snap_owner_;
  num_blocks_ = other.num_blocks_;
  // Copies share the mapping but start with a cold decode cache: the cached
  // blocks hold std::strings whose lifetime is tied to their owner.
  if (snapshot_backed_) {
    block_cache_ =
        std::make_unique<std::atomic<DecodedBlock*>[]>(num_blocks_);
    for (size_t b = 0; b < num_blocks_; ++b) {
      block_cache_[b].store(nullptr, std::memory_order_relaxed);
    }
  }
}

Dictionary::Dictionary(const Dictionary& other) { CopyFrom(other); }

Dictionary& Dictionary::operator=(const Dictionary& other) {
  if (this == &other) return *this;
  DestroyCache();
  CopyFrom(other);
  return *this;
}

Dictionary::Dictionary(Dictionary&& other) noexcept
    : strings_(std::move(other.strings_)),
      index_(std::move(other.index_)),
      snapshot_backed_(other.snapshot_backed_),
      snap_(other.snap_),
      snap_owner_(std::move(other.snap_owner_)),
      num_blocks_(other.num_blocks_),
      block_cache_(std::move(other.block_cache_)) {
  other.snapshot_backed_ = false;
  other.num_blocks_ = 0;
}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this == &other) return *this;
  DestroyCache();
  strings_ = std::move(other.strings_);
  index_ = std::move(other.index_);
  snapshot_backed_ = other.snapshot_backed_;
  snap_ = other.snap_;
  snap_owner_ = std::move(other.snap_owner_);
  num_blocks_ = other.num_blocks_;
  block_cache_ = std::move(other.block_cache_);
  other.snapshot_backed_ = false;
  other.num_blocks_ = 0;
  return *this;
}

StrId Dictionary::Intern(std::string_view s) {
  assert(!snapshot_backed_ && "snapshot dictionaries are immutable");
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

StrId Dictionary::Lookup(std::string_view s) const {
  if (snapshot_backed_) return SnapshotLookup(s);
  auto it = index_.find(s);
  return it == index_.end() ? kNoStrId : it->second;
}

void Dictionary::AttachSnapshot(const DictSnapshotView& view,
                                std::shared_ptr<const void> owner) {
  assert(view.block_size > 0 && view.num_strings > 0);
  DestroyCache();
  strings_.clear();
  index_.clear();
  snapshot_backed_ = true;
  snap_ = view;
  snap_owner_ = std::move(owner);
  num_blocks_ =
      static_cast<size_t>((view.num_strings + view.block_size - 1) /
                          view.block_size);
  block_cache_ = std::make_unique<std::atomic<DecodedBlock*>[]>(num_blocks_);
  for (size_t b = 0; b < num_blocks_; ++b) {
    block_cache_[b].store(nullptr, std::memory_order_relaxed);
  }
}

std::string_view Dictionary::BlockFirst(size_t b) const {
  const char* p = snap_.blob.data() + snap_.block_offsets[b];
  const char* end = snap_.blob.data() + snap_.blob.size();
  uint64_t len = ReadVarint(&p, end);
  if (static_cast<uint64_t>(end - p) < len) len = end - p;  // corrupt guard
  return std::string_view(p, static_cast<size_t>(len));
}

const Dictionary::DecodedBlock& Dictionary::DecodeBlock(size_t b) const {
  DecodedBlock* cached = block_cache_[b].load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;

  auto block = std::make_unique<DecodedBlock>();
  const size_t first_pos = b * snap_.block_size;
  const size_t count = std::min<size_t>(
      snap_.block_size, static_cast<size_t>(snap_.num_strings) - first_pos);
  block->strings.reserve(count);
  const char* p = snap_.blob.data() + snap_.block_offsets[b];
  const char* end = snap_.blob.data() + snap_.blob.size();
  for (size_t i = 0; i < count; ++i) {
    if (i == 0) {
      uint64_t len = ReadVarint(&p, end);
      if (static_cast<uint64_t>(end - p) < len) len = end - p;
      block->strings.emplace_back(p, static_cast<size_t>(len));
      p += len;
    } else {
      const std::string& prev = block->strings.back();
      uint64_t lcp = ReadVarint(&p, end);
      uint64_t suffix = ReadVarint(&p, end);
      if (lcp > prev.size()) lcp = prev.size();
      if (static_cast<uint64_t>(end - p) < suffix) suffix = end - p;
      std::string s;
      s.reserve(static_cast<size_t>(lcp + suffix));
      s.assign(prev, 0, static_cast<size_t>(lcp));
      s.append(p, static_cast<size_t>(suffix));
      block->strings.push_back(std::move(s));
      p += suffix;
    }
  }

  DecodedBlock* expected = nullptr;
  if (block_cache_[b].compare_exchange_strong(expected, block.get(),
                                              std::memory_order_release,
                                              std::memory_order_acquire)) {
    return *block.release();
  }
  // Another reader installed the block first; serve theirs.
  return *expected;
}

const std::string& Dictionary::SnapshotGet(StrId id) const {
  assert(id < snap_.num_strings);
  const uint32_t pos = snap_.id_to_pos[id];
  const size_t b = pos / snap_.block_size;
  const DecodedBlock& block = DecodeBlock(b);
  return block.strings[pos - b * snap_.block_size];
}

StrId Dictionary::SnapshotLookup(std::string_view s) const {
  // Binary search for the last block whose first string is <= s, over the
  // verbatim block leaders (no decode), then scan that one decoded block.
  size_t lo = 0, hi = num_blocks_;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (BlockFirst(mid) <= s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return kNoStrId;  // s sorts before every string
  const size_t b = lo - 1;
  const DecodedBlock& block = DecodeBlock(b);
  for (size_t i = 0; i < block.strings.size(); ++i) {
    if (block.strings[i] == s) {
      return snap_.pos_to_id[b * snap_.block_size + i];
    }
  }
  return kNoStrId;
}

}  // namespace eql
