// String dictionary: interns labels, types and property values as dense ids.
//
// All graph-side strings (node labels, edge labels, type names, property
// values) are dictionary-encoded so that the search algorithms and the BGP
// engine operate on 32-bit ids only.
#ifndef EQL_GRAPH_DICTIONARY_H_
#define EQL_GRAPH_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace eql {

/// Id of an interned string. Id 0 is always the empty label epsilon (Def 2.1).
using StrId = uint32_t;

/// Sentinel for "not interned".
inline constexpr StrId kNoStrId = UINT32_MAX;

/// Append-only interning dictionary with stable ids.
class Dictionary {
 public:
  Dictionary();

  /// Interns `s`, returning its id (existing or fresh).
  StrId Intern(std::string_view s);

  /// Returns the id of `s` or kNoStrId if never interned.
  StrId Lookup(std::string_view s) const;

  /// Returns the string for an id; id must be valid.
  const std::string& Get(StrId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  /// Id of the empty label (always 0).
  static constexpr StrId kEpsilon = 0;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StrId> index_;
};

}  // namespace eql

#endif  // EQL_GRAPH_DICTIONARY_H_
