// String dictionary: interns labels, types and property values as dense ids.
//
// All graph-side strings (node labels, edge labels, type names, property
// values) are dictionary-encoded so that the search algorithms and the BGP
// engine operate on 32-bit ids only.
//
// A Dictionary has two storage modes behind one API:
//
//  - **Owned** (the default): an append-only interning table backed by
//    std::string storage and a hash index. This is what graph construction
//    uses.
//  - **Snapshot-backed**: a read-only view over a front-coded block
//    dictionary inside an mmap'd graph snapshot (graph/snapshot.h). Strings
//    live in the file sorted lexicographically and compressed in blocks of
//    `block_size` (first string verbatim, the rest as shared-prefix length +
//    suffix); two permutation arrays map the stable StrIds the graph columns
//    reference to sorted positions and back. Get() decodes one block on
//    first touch into a lock-free per-block cache (an atomic pointer per
//    block, ~0.5 bytes/string), so repeated access is as cheap as the owned
//    mode while untouched regions of a multi-GB dictionary never leave the
//    page cache. Lookup() binary-searches the block-first strings (readable
//    in place, no decode) and then scans one decoded block.
//
// Snapshot mode is immutable: Intern() asserts. Both modes are safe for
// concurrent readers; copies of a snapshot-backed dictionary share the
// mapping but keep independent decode caches.
#ifndef EQL_GRAPH_DICTIONARY_H_
#define EQL_GRAPH_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace eql {

/// Id of an interned string. Id 0 is always the empty label epsilon (Def 2.1).
using StrId = uint32_t;

/// Sentinel for "not interned".
inline constexpr StrId kNoStrId = UINT32_MAX;

/// Borrowed view of a front-coded dictionary inside a graph snapshot. All
/// spans point into the mapped file; the Dictionary that attaches the view
/// keeps the mapping alive through a shared owner handle.
struct DictSnapshotView {
  uint64_t num_strings = 0;
  uint32_t block_size = 0;                    ///< strings per block
  std::span<const uint32_t> id_to_pos;        ///< StrId -> sorted position
  std::span<const uint32_t> pos_to_id;        ///< sorted position -> StrId
  std::span<const uint64_t> block_offsets;    ///< per block start in blob, +1 end
  std::span<const char> blob;                 ///< front-coded string bytes
};

/// Append-only interning dictionary with stable ids, or a read-only view of
/// a snapshot dictionary (see file comment).
class Dictionary {
 public:
  Dictionary();
  ~Dictionary();

  Dictionary(const Dictionary& other);
  Dictionary& operator=(const Dictionary& other);
  Dictionary(Dictionary&& other) noexcept;
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// Interns `s`, returning its id (existing or fresh). Owned mode only
  /// (asserts in snapshot mode: snapshots are immutable).
  StrId Intern(std::string_view s);

  /// Returns the id of `s` or kNoStrId if never interned.
  StrId Lookup(std::string_view s) const;

  /// Returns the string for an id; id must be valid. In snapshot mode this
  /// decodes the id's block on first access and serves the cached string
  /// afterwards; the reference stays valid for the dictionary's lifetime.
  const std::string& Get(StrId id) const {
    if (!snapshot_backed_) return strings_[id];
    return SnapshotGet(id);
  }

  size_t size() const {
    return snapshot_backed_ ? static_cast<size_t>(snap_.num_strings)
                            : strings_.size();
  }

  /// True when this dictionary reads from an mmap'd snapshot.
  bool snapshot_backed() const { return snapshot_backed_; }

  /// Switches to snapshot mode over `view`; `owner` keeps the mapping alive.
  /// Clears any owned contents. The view must contain the epsilon string ""
  /// (every snapshot written by graph/snapshot.h does).
  void AttachSnapshot(const DictSnapshotView& view,
                      std::shared_ptr<const void> owner);

  /// Id of the empty label (always 0).
  static constexpr StrId kEpsilon = 0;

 private:
  /// One lazily decoded block of the snapshot dictionary.
  struct DecodedBlock {
    std::vector<std::string> strings;  ///< block_size entries (last block fewer)
  };

  // Heterogeneous hashing so owned-mode Lookup/Intern never allocate a
  // temporary std::string for the probe.
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return static_cast<size_t>(HashString(s));
    }
  };

  const std::string& SnapshotGet(StrId id) const;
  StrId SnapshotLookup(std::string_view s) const;
  /// Decodes (and caches) block `b`; b < num_blocks_.
  const DecodedBlock& DecodeBlock(size_t b) const;
  /// The first (verbatim) string of block `b`, read in place from the blob.
  std::string_view BlockFirst(size_t b) const;
  void DestroyCache();
  void CopyFrom(const Dictionary& other);

  // Owned mode.
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StrId, TransparentHash, std::equal_to<>>
      index_;

  // Snapshot mode.
  bool snapshot_backed_ = false;
  DictSnapshotView snap_;
  std::shared_ptr<const void> snap_owner_;
  size_t num_blocks_ = 0;
  /// One atomic slot per block; decoded blocks are CAS-installed so
  /// concurrent readers stay lock-free (losers delete their duplicate).
  mutable std::unique_ptr<std::atomic<DecodedBlock*>[]> block_cache_;
};

}  // namespace eql

#endif  // EQL_GRAPH_DICTIONARY_H_
