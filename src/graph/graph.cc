#include "graph/graph.h"

#include <algorithm>
#include <atomic>

#include "util/hash.h"

namespace eql {

size_t Graph::PropKeyHash::operator()(const PropKey& k) const {
  return static_cast<size_t>(
      Mix64((static_cast<uint64_t>(k.owner) << 32) | k.key));
}

uint64_t Graph::MintUid() {
  static std::atomic<uint64_t> uid_counter{0};
  return ++uid_counter;
}

NodeId Graph::AddNode(std::string_view label) {
  assert(!finalized_ && !snap_);
  NodeId id = static_cast<NodeId>(node_label_.size());
  node_label_.push_back(dict_.Intern(label));
  node_literal_.push_back(0);
  node_types_.emplace_back();
  return id;
}

NodeId Graph::AddLiteralNode(std::string_view label) {
  NodeId id = AddNode(label);
  node_literal_[id] = 1;
  return id;
}

void Graph::AddType(NodeId n, std::string_view type) {
  assert(!finalized_ && !snap_ && n < NumNodes());
  StrId t = dict_.Intern(type);
  auto& types = node_types_[n];
  if (std::find(types.begin(), types.end(), t) == types.end()) types.push_back(t);
}

void Graph::SetNodeProperty(NodeId n, std::string_view key, std::string_view value) {
  assert(!snap_ && n < NumNodes());
  // Key before value, explicitly: intern order defines StrId numbering, and
  // the parallel bulk loader replays exactly this order to stay byte-
  // compatible (built-in assignment would sequence the RHS first).
  const StrId k = dict_.Intern(key);
  const StrId v = dict_.Intern(value);
  node_props_[PropKey{n, k}] = v;
}

EdgeId Graph::AddEdge(NodeId src, NodeId dst, std::string_view label) {
  assert(!finalized_ && !snap_ && src < NumNodes() && dst < NumNodes());
  EdgeId id = static_cast<EdgeId>(edge_label_.size());
  edge_src_.push_back(src);
  edge_dst_.push_back(dst);
  edge_label_.push_back(dict_.Intern(label));
  return id;
}

void Graph::SetEdgeProperty(EdgeId e, std::string_view key, std::string_view value) {
  assert(!snap_ && e < NumEdges());
  // Key before value; see SetNodeProperty.
  const StrId k = dict_.Intern(key);
  const StrId v = dict_.Intern(value);
  edge_props_[PropKey{e, k}] = v;
}

NodeId Graph::GetOrAddNode(std::string_view label) {
  StrId id = dict_.Lookup(label);
  if (id != kNoStrId) {
    auto it = builder_node_by_label_.find(id);
    if (it != builder_node_by_label_.end()) return it->second;
  }
  NodeId n = AddNode(label);
  builder_node_by_label_[node_label_[n]] = n;
  return n;
}

std::span<const StrId> Graph::NodeTypes(NodeId n) const {
  if (snap_) {
    const uint32_t b = snap_->node_type_off[n];
    return snap_->node_type_list.subspan(b, snap_->node_type_off[n + 1] - b);
  }
  const auto& t = node_types_[n];
  return {t.data(), t.size()};
}

bool Graph::HasType(NodeId n, StrId type) const {
  auto t = NodeTypes(n);
  return std::find(t.begin(), t.end(), type) != t.end();
}

namespace {

// Binary search in a sorted snapshot property-key array for (owner, key).
StrId SnapshotProp(std::span<const uint64_t> keys, std::span<const StrId> vals,
                   uint32_t owner, StrId key) {
  const uint64_t probe = (static_cast<uint64_t>(owner) << 32) | key;
  auto it = std::lower_bound(keys.begin(), keys.end(), probe);
  if (it == keys.end() || *it != probe) return kNoStrId;
  return vals[static_cast<size_t>(it - keys.begin())];
}

}  // namespace

StrId Graph::NodePropertyId(NodeId n, std::string_view key) const {
  StrId k = dict_.Lookup(key);
  if (k == kNoStrId) return kNoStrId;
  if (snap_) {
    return SnapshotProp(snap_->node_prop_keys, snap_->node_prop_vals, n, k);
  }
  auto it = node_props_.find(PropKey{n, k});
  return it == node_props_.end() ? kNoStrId : it->second;
}

StrId Graph::EdgePropertyId(EdgeId e, std::string_view key) const {
  StrId k = dict_.Lookup(key);
  if (k == kNoStrId) return kNoStrId;
  if (snap_) {
    return SnapshotProp(snap_->edge_prop_keys, snap_->edge_prop_vals, e, k);
  }
  auto it = edge_props_.find(PropKey{e, k});
  return it == edge_props_.end() ? kNoStrId : it->second;
}

namespace {

// Builds a CSR from per-node entry counts and a fill callback.
void BuildCsr(size_t num_nodes, const std::vector<uint32_t>& counts,
              std::vector<uint32_t>* offsets, std::vector<IncidentEdge>* list) {
  offsets->assign(num_nodes + 1, 0);
  for (size_t n = 0; n < num_nodes; ++n) (*offsets)[n + 1] = (*offsets)[n] + counts[n];
  list->resize((*offsets)[num_nodes]);
}

}  // namespace

void Graph::Finalize() {
  assert(!finalized_ && !snap_);
  const size_t nn = NumNodes();
  const size_t ne = NumEdges();

  // Undirected incidence (self-loops appear once), plus degree d_n.
  std::vector<uint32_t> cnt(nn, 0);
  for (size_t e = 0; e < ne; ++e) {
    ++cnt[edge_src_[e]];
    if (edge_dst_[e] != edge_src_[e]) ++cnt[edge_dst_[e]];
  }
  BuildCsr(nn, cnt, &inc_offset_, &inc_list_);
  {
    std::vector<uint32_t> pos(inc_offset_.begin(), inc_offset_.end() - 1);
    for (EdgeId e = 0; e < ne; ++e) {
      NodeId s = edge_src_[e], d = edge_dst_[e];
      inc_list_[pos[s]++] = IncidentEdge{e, d, true};
      if (d != s) inc_list_[pos[d]++] = IncidentEdge{e, s, false};
    }
  }
  degree_.assign(cnt.begin(), cnt.end());

  // Directed out/in adjacency.
  std::fill(cnt.begin(), cnt.end(), 0);
  for (size_t e = 0; e < ne; ++e) ++cnt[edge_src_[e]];
  BuildCsr(nn, cnt, &out_offset_, &out_list_);
  {
    std::vector<uint32_t> pos(out_offset_.begin(), out_offset_.end() - 1);
    for (EdgeId e = 0; e < ne; ++e) {
      out_list_[pos[edge_src_[e]]++] = IncidentEdge{e, edge_dst_[e], true};
    }
  }
  std::fill(cnt.begin(), cnt.end(), 0);
  for (size_t e = 0; e < ne; ++e) ++cnt[edge_dst_[e]];
  BuildCsr(nn, cnt, &in_offset_, &in_list_);
  {
    std::vector<uint32_t> pos(in_offset_.begin(), in_offset_.end() - 1);
    for (EdgeId e = 0; e < ne; ++e) {
      in_list_[pos[edge_dst_[e]]++] = IncidentEdge{e, edge_src_[e], false};
    }
  }

  // Inverted indexes.
  for (NodeId n = 0; n < nn; ++n) {
    nodes_by_label_[node_label_[n]].push_back(n);
    for (StrId t : node_types_[n]) nodes_by_type_[t].push_back(n);
  }
  for (EdgeId e = 0; e < ne; ++e) edges_by_label_[edge_label_[e]].push_back(e);

  uid_ = MintUid();
  finalized_ = true;
}

namespace {

inline std::span<const IncidentEdge> CsrRow(std::span<const uint32_t> off,
                                            std::span<const IncidentEdge> list,
                                            NodeId n) {
  const uint32_t b = off[n];
  return list.subspan(b, off[n + 1] - b);
}

}  // namespace

std::span<const IncidentEdge> Graph::Incident(NodeId n) const {
  assert(finalized_);
  if (snap_) return CsrRow(snap_->inc_off, snap_->inc_list, n);
  return {inc_list_.data() + inc_offset_[n], inc_offset_[n + 1] - inc_offset_[n]};
}

std::span<const IncidentEdge> Graph::OutEdges(NodeId n) const {
  assert(finalized_);
  if (snap_) return CsrRow(snap_->out_off, snap_->out_list, n);
  return {out_list_.data() + out_offset_[n], out_offset_[n + 1] - out_offset_[n]};
}

std::span<const IncidentEdge> Graph::InEdges(NodeId n) const {
  assert(finalized_);
  if (snap_) return CsrRow(snap_->in_off, snap_->in_list, n);
  return {in_list_.data() + in_offset_[n], in_offset_[n + 1] - in_offset_[n]};
}

namespace {
const std::vector<NodeId> kEmptyNodes;
const std::vector<EdgeId> kEmptyEdges;

// Snapshot inverted indexes are CSRs keyed densely by StrId; out-of-range
// ids (never interned) yield empty rows.
template <typename T>
std::span<const T> InvRow(std::span<const uint32_t> off, std::span<const T> list,
                          StrId key) {
  if (static_cast<size_t>(key) + 1 >= off.size()) return {};
  const uint32_t b = off[key];
  return list.subspan(b, off[key + 1] - b);
}
}  // namespace

std::span<const NodeId> Graph::NodesWithLabel(StrId label) const {
  assert(finalized_);
  if (snap_) return InvRow(snap_->label_nodes_off, snap_->label_nodes_list, label);
  auto it = nodes_by_label_.find(label);
  const auto& v = it == nodes_by_label_.end() ? kEmptyNodes : it->second;
  return {v.data(), v.size()};
}

std::span<const NodeId> Graph::NodesWithType(StrId type) const {
  assert(finalized_);
  if (snap_) return InvRow(snap_->type_nodes_off, snap_->type_nodes_list, type);
  auto it = nodes_by_type_.find(type);
  const auto& v = it == nodes_by_type_.end() ? kEmptyNodes : it->second;
  return {v.data(), v.size()};
}

std::span<const EdgeId> Graph::EdgesWithLabel(StrId label) const {
  assert(finalized_);
  if (snap_) return InvRow(snap_->label_edges_off, snap_->label_edges_list, label);
  auto it = edges_by_label_.find(label);
  const auto& v = it == edges_by_label_.end() ? kEmptyEdges : it->second;
  return {v.data(), v.size()};
}

NodeId Graph::FindNode(std::string_view label) const {
  StrId id = dict_.Lookup(label);
  if (id == kNoStrId) return kNoNode;
  if (!finalized_) {
    auto bit = builder_node_by_label_.find(id);
    return bit == builder_node_by_label_.end() ? kNoNode : bit->second;
  }
  auto nodes = NodesWithLabel(id);
  return nodes.empty() ? kNoNode : nodes.front();
}

std::string Graph::EdgeToString(EdgeId e) const {
  return NodeLabel(Source(e)) + " -" + EdgeLabel(e) + "-> " +
         NodeLabel(Target(e));
}

}  // namespace eql
