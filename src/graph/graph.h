// The graph data model of the paper (Definition 2.1) plus the access paths
// every other module needs.
//
// A Graph holds labeled nodes and labeled directed edges (an RDF-style
// multigraph; property-graph features map onto the same structures). Beyond
// labels, nodes carry types and arbitrary string properties (Section 2,
// "Node and edge properties").
//
// Connection search treats the graph as undirected (requirement R3), so
// Finalize() builds an *incidence* CSR listing, for every node, all adjacent
// edges in both directions, alongside directed out/in CSRs used by the
// unidirectional baselines and the UNI filter. Label/type inverted indexes
// support seed-set computation and BGP index scans.
//
// ## Storage & snapshots
//
// A finalized Graph has two storage modes behind the same accessor API:
//
//  - **Owned** (the default): every column, CSR and inverted index lives in
//    process-private std::vector / unordered_map storage, built by the
//    construction API + Finalize(). This is the only mutable mode.
//  - **Snapshot-backed**: all of the above are borrowed std::spans into a
//    single read-only mmap of a binary snapshot file (graph/snapshot.h).
//    Opening is zero-copy — no column is parsed, decoded or moved — so a
//    multi-GB graph becomes queryable in milliseconds and its pages are
//    shared across every process that maps the same file. The dictionary is
//    front-coded in the file and decoded lazily per block
//    (graph/dictionary.h).
//
// Every accessor branches on one pointer (`snap_`); the branch is perfectly
// predicted, and because the spans live behind that pointer rather than in
// the Graph object, Graph copies remain shallow-correct in both modes
// (copies share the mapping). Ids are preserved exactly by the snapshot
// writer, so NodeId/EdgeId/StrId-valued results are interchangeable between
// modes.
//
// On-disk layout, versioning and checksums are documented in
// graph/snapshot_format.h. Compatibility policy: a snapshot records a format
// version; readers reject any version they were not built for (no silent
// forward/backward reading). Re-pack with eql_pack after upgrading.
//
// Identity & invalidation: every finalized graph — built or opened — gets a
// process-unique uid() minted at Finalize()/open time. All engine caches
// (compiled CTP views in ctp/view.h, planner statistics in eval/stats.h) key
// on the uid, so opening a snapshot behaves exactly like building a fresh
// graph: new uid, cold caches, no cross-talk with other graphs.
#ifndef EQL_GRAPH_GRAPH_H_
#define EQL_GRAPH_GRAPH_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/dictionary.h"
#include "util/status.h"

namespace eql {

using NodeId = uint32_t;
using EdgeId = uint32_t;

inline constexpr NodeId kNoNode = UINT32_MAX;
inline constexpr EdgeId kNoEdge = UINT32_MAX;

/// One entry of a node's undirected incidence list.
///
/// The explicit zeroed tail padding makes the in-memory bytes deterministic,
/// so incidence CSRs can be written to snapshot files verbatim and two packs
/// of the same graph are byte-identical.
struct IncidentEdge {
  EdgeId edge;
  NodeId other;   ///< the endpoint that is not the indexed node
  bool forward;   ///< true if the edge leaves the indexed node (n == source)
  uint8_t pad_[3] = {0, 0, 0};
};
static_assert(sizeof(IncidentEdge) == 12);

/// Borrowed, read-only view of one graph inside a mapped snapshot file. All
/// spans point into the mapping; graph/snapshot.h materializes one of these
/// and hands it to the Graph via an owner handle that keeps the mapping
/// alive. Inverted indexes are CSRs keyed densely by StrId (empty rows for
/// strings that are not labels/types), properties are sorted
/// (owner << 32 | key) arrays probed by binary search.
struct GraphSnapshotView {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;

  std::span<const StrId> node_label;
  std::span<const uint8_t> node_literal;
  std::span<const uint32_t> node_type_off;   ///< num_nodes + 1
  std::span<const StrId> node_type_list;

  std::span<const NodeId> edge_src;
  std::span<const NodeId> edge_dst;
  std::span<const StrId> edge_label;

  std::span<const uint32_t> degree;
  std::span<const uint32_t> inc_off;         ///< num_nodes + 1
  std::span<const IncidentEdge> inc_list;
  std::span<const uint32_t> out_off;
  std::span<const IncidentEdge> out_list;
  std::span<const uint32_t> in_off;
  std::span<const IncidentEdge> in_list;

  std::span<const uint32_t> label_nodes_off;  ///< num_strings + 1
  std::span<const NodeId> label_nodes_list;
  std::span<const uint32_t> type_nodes_off;
  std::span<const NodeId> type_nodes_list;
  std::span<const uint32_t> label_edges_off;
  std::span<const EdgeId> label_edges_list;

  std::span<const uint64_t> node_prop_keys;  ///< (owner << 32 | key), sorted
  std::span<const StrId> node_prop_vals;
  std::span<const uint64_t> edge_prop_keys;
  std::span<const StrId> edge_prop_vals;
};

/// Labeled directed multigraph with types, properties and access-path indexes.
///
/// Usage: add nodes/edges, then call Finalize() exactly once; all index-based
/// accessors (Incident, OutEdges, ...) require a finalized graph. The builder
/// methods never fail for in-range arguments; they assert on misuse.
/// Alternatively, snapshot::OpenSnapshot (graph/snapshot.h) yields an
/// already-finalized snapshot-backed Graph; see "Storage & snapshots" above.
class Graph {
 public:
  Graph() = default;

  // ---- construction (owned mode only) ----

  /// Adds a node with the given label ("" for the empty label epsilon).
  NodeId AddNode(std::string_view label);

  /// Adds a node and marks it as a literal (cosmetic; mirrors RDF literals).
  NodeId AddLiteralNode(std::string_view label);

  /// Adds `type` to the node's type set.
  void AddType(NodeId n, std::string_view type);

  /// Sets a string property on a node (label and type have dedicated APIs).
  void SetNodeProperty(NodeId n, std::string_view key, std::string_view value);

  /// Adds a directed edge src --label--> dst.
  EdgeId AddEdge(NodeId src, NodeId dst, std::string_view label);

  /// Sets a string property on an edge.
  void SetEdgeProperty(EdgeId e, std::string_view key, std::string_view value);

  /// Returns the node with this exact label, adding it if absent. Convenience
  /// for generators and the triple loader; requires labels to be unique keys,
  /// which holds for all our datasets (labels act as RDF IRIs).
  NodeId GetOrAddNode(std::string_view label);

  /// Builds incidence/out/in CSRs and the label/type indexes. Must be called
  /// once, after which the graph is immutable.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Process-unique identity of this graph's finalized contents, minted by
  /// Finalize() or snapshot open (0 before). Copies share the uid — they
  /// carry identical, immutable data — so caches keyed on it (ctp/view.h,
  /// eval/stats.h) stay valid across copies and never confuse address-reused
  /// Graph objects.
  uint64_t uid() const { return uid_; }

  /// True when this graph reads from an mmap'd snapshot file.
  bool snapshot_backed() const { return snap_ != nullptr; }

  // ---- sizes ----

  size_t NumNodes() const {
    return snap_ ? static_cast<size_t>(snap_->num_nodes) : node_label_.size();
  }
  size_t NumEdges() const {
    return snap_ ? static_cast<size_t>(snap_->num_edges) : edge_label_.size();
  }

  /// Scratch-buffer sizing: one past the largest valid NodeId/EdgeId. The
  /// search engines size their flat epoch-versioned per-id arrays
  /// (util/epoch.h) with these.
  uint32_t NodeIdBound() const { return static_cast<uint32_t>(NumNodes()); }
  uint32_t EdgeIdBound() const { return static_cast<uint32_t>(NumEdges()); }

  // ---- node/edge attributes ----

  StrId NodeLabelId(NodeId n) const {
    return snap_ ? snap_->node_label[n] : node_label_[n];
  }
  const std::string& NodeLabel(NodeId n) const {
    return dict_.Get(NodeLabelId(n));
  }
  bool IsLiteral(NodeId n) const {
    return snap_ ? snap_->node_literal[n] != 0 : node_literal_[n] != 0;
  }
  std::span<const StrId> NodeTypes(NodeId n) const;
  bool HasType(NodeId n, StrId type) const;

  StrId EdgeLabelId(EdgeId e) const {
    return snap_ ? snap_->edge_label[e] : edge_label_[e];
  }
  const std::string& EdgeLabel(EdgeId e) const {
    return dict_.Get(EdgeLabelId(e));
  }
  NodeId Source(EdgeId e) const {
    return snap_ ? snap_->edge_src[e] : edge_src_[e];
  }
  NodeId Target(EdgeId e) const {
    return snap_ ? snap_->edge_dst[e] : edge_dst_[e];
  }

  /// Node/edge property lookup; returns kNoStrId when unset.
  StrId NodePropertyId(NodeId n, std::string_view key) const;
  StrId EdgePropertyId(EdgeId e, std::string_view key) const;

  // ---- access paths (require Finalize) ----

  /// All edges adjacent to n, both directions (the paper's default traversal).
  std::span<const IncidentEdge> Incident(NodeId n) const;

  /// Directed adjacency: edges leaving / entering n.
  std::span<const IncidentEdge> OutEdges(NodeId n) const;
  std::span<const IncidentEdge> InEdges(NodeId n) const;

  /// d_n: number of graph edges adjacent to n (precomputed; LESP, Alg. 4).
  uint32_t Degree(NodeId n) const {
    return snap_ ? snap_->degree[n] : degree_[n];
  }

  /// Inverted indexes. Missing label/type yields an empty span.
  std::span<const NodeId> NodesWithLabel(StrId label) const;
  std::span<const NodeId> NodesWithType(StrId type) const;
  std::span<const EdgeId> EdgesWithLabel(StrId label) const;

  /// Node lookup by exact label string; kNoNode if absent or ambiguous-free
  /// lookup fails (returns the first node with that label).
  NodeId FindNode(std::string_view label) const;

  // ---- dictionary ----

  const Dictionary& dict() const { return dict_; }
  Dictionary& mutable_dict() { return dict_; }

  /// Human-readable one-line description of an edge ("A -label-> B").
  std::string EdgeToString(EdgeId e) const;

 private:
  friend class SnapshotAccess;  // graph/snapshot.cc: reads/installs storage

  struct PropKey {
    uint32_t owner;
    StrId key;
    bool operator==(const PropKey&) const = default;
  };
  struct PropKeyHash {
    size_t operator()(const PropKey& k) const;
  };

  /// Mints the next process-unique graph uid (shared by Finalize and
  /// snapshot open).
  static uint64_t MintUid();

  Dictionary dict_;

  // Node columns.
  std::vector<StrId> node_label_;
  std::vector<uint8_t> node_literal_;
  std::vector<std::vector<StrId>> node_types_;  // usually 0-2 entries

  // Edge columns.
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<StrId> edge_label_;

  // Sparse properties.
  std::unordered_map<PropKey, StrId, PropKeyHash> node_props_;
  std::unordered_map<PropKey, StrId, PropKeyHash> edge_props_;

  // Label -> node map maintained during construction for GetOrAddNode.
  std::unordered_map<StrId, NodeId> builder_node_by_label_;

  // CSRs (built by Finalize).
  bool finalized_ = false;
  uint64_t uid_ = 0;
  std::vector<uint32_t> inc_offset_;
  std::vector<IncidentEdge> inc_list_;
  std::vector<uint32_t> out_offset_;
  std::vector<IncidentEdge> out_list_;
  std::vector<uint32_t> in_offset_;
  std::vector<IncidentEdge> in_list_;
  std::vector<uint32_t> degree_;

  // Inverted indexes.
  std::unordered_map<StrId, std::vector<NodeId>> nodes_by_label_;
  std::unordered_map<StrId, std::vector<NodeId>> nodes_by_type_;
  std::unordered_map<StrId, std::vector<EdgeId>> edges_by_label_;

  // Snapshot mode: when non-null, every accessor reads through this view
  // instead of the owned storage above. The view (and the mapping its spans
  // point into) is owned by snap_owner_, never by the Graph object itself,
  // which keeps default copy/move correct.
  const GraphSnapshotView* snap_ = nullptr;
  std::shared_ptr<const void> snap_owner_;
};

}  // namespace eql

#endif  // EQL_GRAPH_GRAPH_H_
