#include "graph/graph_io.h"

#include <fstream>

#include "graph/snapshot_format.h"
#include "util/string_util.h"

namespace eql {

namespace {

// Splits on '\t' keeping empty pieces (same semantics as util Split), but
// into borrowed views: parsing allocates nothing per line beyond what the
// graph itself interns. Fills up to `max_cols` pieces, returns the true
// column count.
size_t SplitCols(std::string_view line, std::string_view* cols,
                 size_t max_cols) {
  size_t n = 0;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    std::string_view piece = tab == std::string_view::npos
                                 ? line.substr(start)
                                 : line.substr(start, tab - start);
    if (n < max_cols) cols[n] = piece;
    ++n;
    if (tab == std::string_view::npos) break;
    start = tab + 1;
  }
  return n;
}

}  // namespace

Result<Graph> ParseGraphText(std::string_view text) {
  Graph g;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(start, end - start));
    start = end + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::string_view cols[3];
    const size_t n = SplitCols(line, cols, 3);
    if (n >= 2 && cols[0] == "@literal") {
      NodeId node = g.GetOrAddNode(Trim(cols[1]));
      // GetOrAddNode cannot mark literals after the fact; emulate by property.
      g.SetNodeProperty(node, "literal", "true");
      continue;
    }
    if (cols[0] == "@type") {
      if (n < 3) {
        return Status::InvalidArgument(StrFormat(
            "graph text line %zu: @type needs <node> and <type> columns, "
            "got %zu columns",
            line_no, n));
      }
      NodeId node = g.GetOrAddNode(Trim(cols[1]));
      g.AddType(node, Trim(cols[2]));
      continue;
    }
    if (n != 3) {
      return Status::InvalidArgument(
          StrFormat("graph text line %zu: expected 3 tab-separated columns, got %zu",
                    line_no, n));
    }
    NodeId s = g.GetOrAddNode(Trim(cols[0]));
    NodeId d = g.GetOrAddNode(Trim(cols[2]));
    g.AddEdge(s, d, Trim(cols[1]));
  }
  g.Finalize();
  return g;
}

Result<Graph> LoadGraphFile(const std::string& path) {
  // Map instead of streaming into a std::string: the parser works on views,
  // so the file bytes are read exactly once, straight from the page cache.
  Result<snapshot_internal::MmapFile> file =
      snapshot_internal::MmapFile::Open(path);
  if (!file.ok()) {
    return Status::NotFound("cannot open graph file: " + path + " (" +
                            file.status().message() + ")");
  }
  file->AdviseSequential();
  Result<Graph> g = ParseGraphText(std::string_view(file->data(), file->size()));
  if (!g.ok()) {
    return Status(g.status().code(), path + ": " + g.status().message());
  }
  return g;
}

std::string GraphToText(const Graph& g) {
  std::string out;
  out += "# eql graph: " + std::to_string(g.NumNodes()) + " nodes, " +
         std::to_string(g.NumEdges()) + " edges\n";
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    for (StrId t : g.NodeTypes(n)) {
      out += "@type\t" + g.NodeLabel(n) + "\t" + g.dict().Get(t) + "\n";
    }
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    out += g.NodeLabel(g.Source(e)) + "\t" + g.EdgeLabel(e) + "\t" +
           g.NodeLabel(g.Target(e)) + "\n";
  }
  return out;
}

Status SaveGraphFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open for writing: " + path);
  out << GraphToText(g);
  return Status::Ok();
}

}  // namespace eql
