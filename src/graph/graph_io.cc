#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace eql {

Result<Graph> ParseGraphText(std::string_view text) {
  Graph g;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(start, end - start));
    start = end + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> cols = Split(line, '\t');
    if (cols.size() >= 2 && cols[0] == "@literal") {
      NodeId n = g.GetOrAddNode(Trim(cols[1]));
      // GetOrAddNode cannot mark literals after the fact; emulate by property.
      g.SetNodeProperty(n, "literal", "true");
      continue;
    }
    if (cols.size() >= 3 && cols[0] == "@type") {
      NodeId n = g.GetOrAddNode(Trim(cols[1]));
      g.AddType(n, Trim(cols[2]));
      continue;
    }
    if (cols.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("graph text line %zu: expected 3 tab-separated columns, got %zu",
                    line_no, cols.size()));
    }
    NodeId s = g.GetOrAddNode(Trim(cols[0]));
    NodeId d = g.GetOrAddNode(Trim(cols[2]));
    g.AddEdge(s, d, Trim(cols[1]));
  }
  g.Finalize();
  return g;
}

Result<Graph> LoadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open graph file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ParseGraphText(buf.str());
}

std::string GraphToText(const Graph& g) {
  std::string out;
  out += "# eql graph: " + std::to_string(g.NumNodes()) + " nodes, " +
         std::to_string(g.NumEdges()) + " edges\n";
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    for (StrId t : g.NodeTypes(n)) {
      out += "@type\t" + g.NodeLabel(n) + "\t" + g.dict().Get(t) + "\n";
    }
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    out += g.NodeLabel(g.Source(e)) + "\t" + g.EdgeLabel(e) + "\t" +
           g.NodeLabel(g.Target(e)) + "\n";
  }
  return out;
}

Status SaveGraphFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open for writing: " + path);
  out << GraphToText(g);
  return Status::Ok();
}

}  // namespace eql
