// Text serialization for graphs: a tab-separated triple format.
//
// Line forms (tab-separated, '#' starts a comment line):
//   <src_label> \t <edge_label> \t <dst_label>      an edge (nodes auto-created)
//   @type \t <node_label> \t <type_name>            assigns a type to a node
//   @literal \t <node_label>                        marks a node as literal
//
// This mirrors the paper's PostgreSQL table graph(id, source, edgeLabel,
// target) closely enough to load the same shape of data.
#ifndef EQL_GRAPH_GRAPH_IO_H_
#define EQL_GRAPH_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "graph/graph.h"
#include "util/status.h"

namespace eql {

/// Parses triples from `text` into a fresh, finalized graph.
Result<Graph> ParseGraphText(std::string_view text);

/// Loads a graph from a triple file (see header comment for the format).
Result<Graph> LoadGraphFile(const std::string& path);

/// Serializes a graph to the triple format (inverse of ParseGraphText up to
/// node ordering). Node labels must be unique for lossless round-trips.
std::string GraphToText(const Graph& g);

/// Writes GraphToText(g) to `path`.
Status SaveGraphFile(const Graph& g, const std::string& path);

}  // namespace eql

#endif  // EQL_GRAPH_GRAPH_IO_H_
