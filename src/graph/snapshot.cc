#include "graph/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <numeric>
#include <utility>

#include "graph/snapshot_format.h"
#include "util/string_util.h"

namespace eql {

using namespace snapshot_internal;  // NOLINT(build/namespaces)

// ---------------------------------------------------------------------------
// POSIX plumbing: MmapFile and SnapshotFileWriter.
// ---------------------------------------------------------------------------

namespace snapshot_internal {

namespace {

Status PWriteAll(int fd, const void* data, size_t size, uint64_t offset) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::pwrite(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("pwrite failed: %s", std::strerror(errno)));
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

uint64_t AlignUp(uint64_t v) {
  return (v + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

}  // namespace

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
  data_ = std::exchange(other.data_, nullptr);
  size_ = std::exchange(other.size_, 0);
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(
        StrFormat("cannot open %s: %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Status::Internal(
        StrFormat("fstat %s: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return s;
  }
  MmapFile f;
  f.size_ = static_cast<size_t>(st.st_size);
  if (f.size_ > 0) {
    void* m = ::mmap(nullptr, f.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (m == MAP_FAILED) {
      Status s = Status::Internal(
          StrFormat("mmap %s: %s", path.c_str(), std::strerror(errno)));
      ::close(fd);
      return s;
    }
    f.data_ = static_cast<const char*>(m);
  }
  ::close(fd);
  return f;
}

void MmapFile::AdviseSequential() {
  if (data_ != nullptr) {
    ::madvise(const_cast<char*>(data_), size_, MADV_SEQUENTIAL);
  }
}

SnapshotFileWriter::~SnapshotFileWriter() {
  // Abandoned writer: the header was never written, so the file cannot be
  // mistaken for a valid snapshot (its magic bytes are zero).
  if (fd_ >= 0) ::close(fd_);
}

Status SnapshotFileWriter::Create(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::InvalidArgument(StrFormat("cannot create %s: %s",
                                             path.c_str(),
                                             std::strerror(errno)));
  }
  path_ = path;
  next_offset_ =
      AlignUp(sizeof(FileHeader) + kNumSections * sizeof(SectionEntry));
  return Status::Ok();
}

Status SnapshotFileWriter::Append(SectionId id, const void* data, size_t size) {
  if (fd_ < 0) return Status::Internal("snapshot writer is not open");
  for (const SectionEntry& e : entries_) {
    if (e.id == static_cast<uint32_t>(id)) {
      return Status::Internal(
          StrFormat("section %u appended twice", static_cast<uint32_t>(id)));
    }
  }
  SectionEntry e{};
  e.id = static_cast<uint32_t>(id);
  e.offset = next_offset_;
  e.size = size;
  e.checksum = ChecksumBytes(data, size);
  if (size > 0) EQL_RETURN_IF_ERROR(PWriteAll(fd_, data, size, next_offset_));
  entries_.push_back(e);
  next_offset_ = AlignUp(next_offset_ + size);
  return Status::Ok();
}

Status SnapshotFileWriter::Finish() {
  if (fd_ < 0) return Status::Internal("snapshot writer is not open");
  if (entries_.size() != kNumSections) {
    return Status::Internal(StrFormat("snapshot has %zu sections, wants %u",
                                      entries_.size(), kNumSections));
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const SectionEntry& a, const SectionEntry& b) {
              return a.id < b.id;
            });

  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kFormatVersion;
  h.num_sections = kNumSections;
  h.file_size = next_offset_;
  h.table_offset = sizeof(FileHeader);

  const size_t prefix = offsetof(FileHeader, header_checksum);
  const size_t table_bytes = entries_.size() * sizeof(SectionEntry);
  std::vector<char> buf(prefix + table_bytes);
  std::memcpy(buf.data(), &h, prefix);
  std::memcpy(buf.data() + prefix, entries_.data(), table_bytes);
  h.header_checksum = ChecksumBytes(buf.data(), buf.size());

  EQL_RETURN_IF_ERROR(
      PWriteAll(fd_, entries_.data(), table_bytes, h.table_offset));
  EQL_RETURN_IF_ERROR(PWriteAll(fd_, &h, sizeof(h), 0));
  if (::ftruncate(fd_, static_cast<off_t>(next_offset_)) != 0) {
    return Status::Internal(StrFormat("ftruncate %s: %s", path_.c_str(),
                                      std::strerror(errno)));
  }
  ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
  return Status::Ok();
}

Status AppendDictSections(SnapshotFileWriter* w,
                          std::span<const std::string_view> by_id,
                          uint32_t block_size) {
  const size_t n = by_id.size();
  std::vector<uint32_t> pos_to_id(n);
  std::iota(pos_to_id.begin(), pos_to_id.end(), 0u);
  std::sort(pos_to_id.begin(), pos_to_id.end(),
            [&](uint32_t a, uint32_t b) { return by_id[a] < by_id[b]; });
  std::vector<uint32_t> id_to_pos(n);
  for (size_t p = 0; p < n; ++p) id_to_pos[pos_to_id[p]] = static_cast<uint32_t>(p);

  std::vector<std::string_view> sorted(n);
  for (size_t p = 0; p < n; ++p) sorted[p] = by_id[pos_to_id[p]];
  std::vector<char> blob;
  std::vector<uint64_t> block_offsets;
  BuildFrontCodedBlob(sorted, block_size, &blob, &block_offsets);

  EQL_RETURN_IF_ERROR(w->AppendVector(SectionId::kDictIdToPos, id_to_pos));
  EQL_RETURN_IF_ERROR(w->AppendVector(SectionId::kDictPosToId, pos_to_id));
  EQL_RETURN_IF_ERROR(w->AppendVector(SectionId::kDictBlockOff, block_offsets));
  EQL_RETURN_IF_ERROR(w->AppendVector(SectionId::kDictBlob, blob));
  return Status::Ok();
}

}  // namespace snapshot_internal

// ---------------------------------------------------------------------------
// SnapshotAccess: the one place allowed to look inside Graph's storage.
// ---------------------------------------------------------------------------

namespace {

/// Everything a snapshot-backed Graph borrows, bundled with the mapping that
/// owns the bytes. Held alive by shared_ptr from the Graph and its
/// Dictionary; copies of the Graph share it.
struct SnapshotData {
  MmapFile file;
  GraphSnapshotView view;
  DictSnapshotView dict;
};

/// Sparse property table in snapshot form: sorted (owner << 32 | key) keys
/// plus parallel values.
struct PropPairs {
  std::vector<uint64_t> keys;
  std::vector<StrId> vals;
};

}  // namespace

class SnapshotAccess {
 public:
  static std::span<const StrId> NodeLabels(const Graph& g) {
    if (g.snap_) return g.snap_->node_label;
    return {g.node_label_.data(), g.node_label_.size()};
  }
  static std::span<const uint8_t> NodeLiterals(const Graph& g) {
    if (g.snap_) return g.snap_->node_literal;
    return {g.node_literal_.data(), g.node_literal_.size()};
  }
  static std::span<const NodeId> EdgeSrc(const Graph& g) {
    if (g.snap_) return g.snap_->edge_src;
    return {g.edge_src_.data(), g.edge_src_.size()};
  }
  static std::span<const NodeId> EdgeDst(const Graph& g) {
    if (g.snap_) return g.snap_->edge_dst;
    return {g.edge_dst_.data(), g.edge_dst_.size()};
  }
  static std::span<const StrId> EdgeLabels(const Graph& g) {
    if (g.snap_) return g.snap_->edge_label;
    return {g.edge_label_.data(), g.edge_label_.size()};
  }
  static std::span<const uint32_t> Degrees(const Graph& g) {
    if (g.snap_) return g.snap_->degree;
    return {g.degree_.data(), g.degree_.size()};
  }
  static std::span<const uint32_t> IncOff(const Graph& g) {
    if (g.snap_) return g.snap_->inc_off;
    return {g.inc_offset_.data(), g.inc_offset_.size()};
  }
  static std::span<const IncidentEdge> IncList(const Graph& g) {
    if (g.snap_) return g.snap_->inc_list;
    return {g.inc_list_.data(), g.inc_list_.size()};
  }
  static std::span<const uint32_t> OutOff(const Graph& g) {
    if (g.snap_) return g.snap_->out_off;
    return {g.out_offset_.data(), g.out_offset_.size()};
  }
  static std::span<const IncidentEdge> OutList(const Graph& g) {
    if (g.snap_) return g.snap_->out_list;
    return {g.out_list_.data(), g.out_list_.size()};
  }
  static std::span<const uint32_t> InOff(const Graph& g) {
    if (g.snap_) return g.snap_->in_off;
    return {g.in_offset_.data(), g.in_offset_.size()};
  }
  static std::span<const IncidentEdge> InList(const Graph& g) {
    if (g.snap_) return g.snap_->in_list;
    return {g.in_list_.data(), g.in_list_.size()};
  }

  static PropPairs NodeProps(const Graph& g) {
    if (g.snap_) return CopyProps(g.snap_->node_prop_keys, g.snap_->node_prop_vals);
    return SortProps(g.node_props_);
  }
  static PropPairs EdgeProps(const Graph& g) {
    if (g.snap_) return CopyProps(g.snap_->edge_prop_keys, g.snap_->edge_prop_vals);
    return SortProps(g.edge_props_);
  }

  /// Turns `g` into a finalized snapshot-backed graph reading `data`.
  static void Install(Graph* g, std::shared_ptr<SnapshotData> data) {
    g->snap_ = &data->view;
    g->dict_.AttachSnapshot(data->dict, data);
    g->snap_owner_ = std::move(data);
    g->finalized_ = true;
    g->uid_ = Graph::MintUid();
  }

 private:
  static PropPairs CopyProps(std::span<const uint64_t> keys,
                             std::span<const StrId> vals) {
    return PropPairs{{keys.begin(), keys.end()}, {vals.begin(), vals.end()}};
  }

  template <typename Map>
  static PropPairs SortProps(const Map& m) {
    std::vector<std::pair<uint64_t, StrId>> pairs;
    pairs.reserve(m.size());
    for (const auto& [k, v] : m) {
      pairs.emplace_back((static_cast<uint64_t>(k.owner) << 32) | k.key, v);
    }
    std::sort(pairs.begin(), pairs.end());
    PropPairs out;
    out.keys.reserve(pairs.size());
    out.vals.reserve(pairs.size());
    for (const auto& [k, v] : pairs) {
      out.keys.push_back(k);
      out.vals.push_back(v);
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

Status WriteSnapshot(const Graph& g, const std::string& path) {
  if (!g.finalized()) {
    return Status::InvalidArgument("WriteSnapshot: graph is not finalized");
  }
  const uint64_t nn = g.NumNodes();
  const uint64_t ne = g.NumEdges();
  const uint64_t ns = g.dict().size();

  SnapshotFileWriter w;
  EQL_RETURN_IF_ERROR(w.Create(path));

  MetaSection meta{};
  meta.num_nodes = nn;
  meta.num_edges = ne;
  meta.num_strings = ns;
  meta.dict_block_size = kDictBlockSize;
  EQL_RETURN_IF_ERROR(w.Append(SectionId::kMeta, &meta, sizeof(meta)));

  // Columns, degree and CSRs go out verbatim from whichever storage backs
  // the graph (scoped so temporaries die before the dictionary build).
  auto append_span = [&w](SectionId id, const auto& span) {
    return w.Append(id, span.data(), span.size_bytes());
  };
  // Section append order matches the bulk loader (graph/bulk_load.cc)
  // exactly: byte-identical files are a documented guarantee of the two
  // producers, and the file offset of every section depends on what was
  // appended before it.
  EQL_RETURN_IF_ERROR(append_span(SectionId::kNodeLabel, SnapshotAccess::NodeLabels(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kNodeLiteral, SnapshotAccess::NodeLiterals(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kEdgeSrc, SnapshotAccess::EdgeSrc(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kEdgeDst, SnapshotAccess::EdgeDst(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kEdgeLabel, SnapshotAccess::EdgeLabels(g)));

  {  // Node types as a CSR, plus the type -> nodes inverted index.
    std::vector<uint32_t> off(nn + 1, 0);
    std::vector<StrId> list;
    for (NodeId n = 0; n < nn; ++n) {
      auto t = g.NodeTypes(n);
      list.insert(list.end(), t.begin(), t.end());
      off[n + 1] = static_cast<uint32_t>(list.size());
    }
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodeTypeOff, off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodeTypeList, list));

    KeyedCsr tn = BuildKeyedCsr(ns, [&](auto&& emit) {
      for (NodeId n = 0; n < nn; ++n) {
        for (StrId t : g.NodeTypes(n)) emit(t, n);
      }
    });
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kTypeNodesOff, tn.off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kTypeNodesList, tn.list));
  }

  EQL_RETURN_IF_ERROR(append_span(SectionId::kDegree, SnapshotAccess::Degrees(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kIncOff, SnapshotAccess::IncOff(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kIncList, SnapshotAccess::IncList(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kOutOff, SnapshotAccess::OutOff(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kOutList, SnapshotAccess::OutList(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kInOff, SnapshotAccess::InOff(g)));
  EQL_RETURN_IF_ERROR(append_span(SectionId::kInList, SnapshotAccess::InList(g)));

  {  // Label inverted indexes, rebuilt densely from the columns (same entry
     // order as Finalize(): ascending node/edge id within each key).
    auto labels = SnapshotAccess::NodeLabels(g);
    KeyedCsr ln = BuildKeyedCsr(ns, [&](auto&& emit) {
      for (NodeId n = 0; n < nn; ++n) emit(labels[n], n);
    });
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kLabelNodesOff, ln.off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kLabelNodesList, ln.list));

    auto elabels = SnapshotAccess::EdgeLabels(g);
    KeyedCsr le = BuildKeyedCsr(ns, [&](auto&& emit) {
      for (EdgeId e = 0; e < ne; ++e) emit(elabels[e], e);
    });
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kLabelEdgesOff, le.off));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kLabelEdgesList, le.list));
  }

  {  // Sparse properties.
    PropPairs np = SnapshotAccess::NodeProps(g);
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodePropKeys, np.keys));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kNodePropVals, np.vals));
    PropPairs ep = SnapshotAccess::EdgeProps(g);
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kEdgePropKeys, ep.keys));
    EQL_RETURN_IF_ERROR(w.AppendVector(SectionId::kEdgePropVals, ep.vals));
  }

  {  // Dictionary.
    std::vector<std::string_view> by_id(ns);
    for (StrId i = 0; i < ns; ++i) by_id[i] = g.dict().Get(i);
    EQL_RETURN_IF_ERROR(AppendDictSections(&w, by_id, kDictBlockSize));
  }

  return w.Finish();
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

namespace {

struct TableInfo {
  FileHeader header;
  std::array<SectionEntry, kNumSections> sections;  // indexed by SectionId
};

Status ReadTable(const MmapFile& f, const std::string& path, TableInfo* out) {
  if (f.size() < sizeof(FileHeader)) {
    return Status::Corruption(
        StrFormat("%s: truncated: %zu bytes is smaller than the %zu-byte "
                  "snapshot header",
                  path.c_str(), f.size(), sizeof(FileHeader)));
  }
  FileHeader h;
  std::memcpy(&h, f.data(), sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(
        StrFormat("%s: not an EQL snapshot (bad magic)", path.c_str()));
  }
  if (h.version != kFormatVersion) {
    return Status::Corruption(StrFormat(
        "%s: snapshot format version %u is not supported (this build reads "
        "version %u); re-pack the graph with eql_pack",
        path.c_str(), h.version, kFormatVersion));
  }
  if (h.num_sections != kNumSections) {
    return Status::Corruption(
        StrFormat("%s: header names %u sections, this version has %u",
                  path.c_str(), h.num_sections, kNumSections));
  }
  if (h.file_size != f.size()) {
    return Status::Corruption(StrFormat(
        "%s: truncated: header records %llu bytes but the file has %zu",
        path.c_str(), static_cast<unsigned long long>(h.file_size), f.size()));
  }
  const uint64_t table_bytes = uint64_t{kNumSections} * sizeof(SectionEntry);
  if (h.table_offset > f.size() || table_bytes > f.size() - h.table_offset) {
    return Status::Corruption(
        StrFormat("%s: section table is out of bounds", path.c_str()));
  }

  const size_t prefix = offsetof(FileHeader, header_checksum);
  std::vector<char> buf(prefix + table_bytes);
  std::memcpy(buf.data(), f.data(), prefix);
  std::memcpy(buf.data() + prefix, f.data() + h.table_offset, table_bytes);
  if (ChecksumBytes(buf.data(), buf.size()) != h.header_checksum) {
    return Status::Corruption(StrFormat(
        "%s: header/table checksum mismatch — the file is corrupt",
        path.c_str()));
  }

  bool seen[kNumSections] = {};
  for (uint32_t i = 0; i < kNumSections; ++i) {
    SectionEntry e;
    std::memcpy(&e, f.data() + h.table_offset + i * sizeof(SectionEntry),
                sizeof(e));
    if (e.id >= kNumSections || seen[e.id]) {
      return Status::Corruption(
          StrFormat("%s: invalid or duplicate section id %u", path.c_str(),
                    e.id));
    }
    if (e.offset % kSectionAlign != 0 || e.offset > f.size() ||
        e.size > f.size() - e.offset) {
      return Status::Corruption(StrFormat(
          "%s: section %u is misaligned or out of bounds", path.c_str(), e.id));
    }
    seen[e.id] = true;
    out->sections[e.id] = e;
  }
  out->header = h;
  return Status::Ok();
}

const SectionEntry& Section(const TableInfo& t, SectionId id) {
  return t.sections[static_cast<uint32_t>(id)];
}

/// Maps one section as a typed span, insisting on the exact element count
/// (which the caller derives from the checksummed meta/offset data).
template <typename T>
Status SectionSpan(const MmapFile& f, const TableInfo& t, const std::string& path,
                   SectionId id, uint64_t count, std::span<const T>* out) {
  const SectionEntry& e = Section(t, id);
  if (e.size != count * sizeof(T)) {
    return Status::Corruption(StrFormat(
        "%s: section %u holds %llu bytes, expected %llu (%llu x %zu)",
        path.c_str(), e.id, static_cast<unsigned long long>(e.size),
        static_cast<unsigned long long>(count * sizeof(T)),
        static_cast<unsigned long long>(count), sizeof(T)));
  }
  *out = std::span<const T>(reinterpret_cast<const T*>(f.data() + e.offset),
                            static_cast<size_t>(count));
  return Status::Ok();
}

Status FillViews(const MmapFile& f, const TableInfo& t, const std::string& path,
                 SnapshotData* d) {
  std::span<const MetaSection> meta;
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kMeta, 1, &meta));
  const uint64_t nn = meta[0].num_nodes;
  const uint64_t ne = meta[0].num_edges;
  const uint64_t ns = meta[0].num_strings;
  const uint32_t bs = meta[0].dict_block_size;
  if (nn > UINT32_MAX || ne > UINT32_MAX || ns > UINT32_MAX) {
    return Status::Corruption(
        StrFormat("%s: node/edge/string counts exceed 32-bit ids",
                  path.c_str()));
  }
  if (ns == 0 || bs == 0) {
    return Status::Corruption(StrFormat(
        "%s: meta section has an empty dictionary (strings=%llu, block=%u)",
        path.c_str(), static_cast<unsigned long long>(ns), bs));
  }
  GraphSnapshotView& v = d->view;
  v.num_nodes = nn;
  v.num_edges = ne;

  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kNodeLabel, nn, &v.node_label));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kNodeLiteral, nn, &v.node_literal));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kNodeTypeOff, nn + 1, &v.node_type_off));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kNodeTypeList,
                                  v.node_type_off.back(), &v.node_type_list));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kEdgeSrc, ne, &v.edge_src));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kEdgeDst, ne, &v.edge_dst));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kEdgeLabel, ne, &v.edge_label));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kDegree, nn, &v.degree));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kIncOff, nn + 1, &v.inc_off));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kIncList,
                                  v.inc_off.back(), &v.inc_list));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kOutOff, nn + 1, &v.out_off));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kOutList,
                                  v.out_off.back(), &v.out_list));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kInOff, nn + 1, &v.in_off));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kInList,
                                  v.in_off.back(), &v.in_list));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kLabelNodesOff, ns + 1, &v.label_nodes_off));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kLabelNodesList,
                                  v.label_nodes_off.back(), &v.label_nodes_list));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kTypeNodesOff, ns + 1, &v.type_nodes_off));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kTypeNodesList,
                                  v.type_nodes_off.back(), &v.type_nodes_list));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kLabelEdgesOff, ns + 1, &v.label_edges_off));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kLabelEdgesList,
                                  v.label_edges_off.back(), &v.label_edges_list));

  const uint64_t npp =
      Section(t, SectionId::kNodePropKeys).size / sizeof(uint64_t);
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kNodePropKeys, npp, &v.node_prop_keys));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kNodePropVals, npp, &v.node_prop_vals));
  const uint64_t epp =
      Section(t, SectionId::kEdgePropKeys).size / sizeof(uint64_t);
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kEdgePropKeys, epp, &v.edge_prop_keys));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kEdgePropVals, epp, &v.edge_prop_vals));

  DictSnapshotView& dv = d->dict;
  dv.num_strings = ns;
  dv.block_size = bs;
  const uint64_t num_blocks = (ns + bs - 1) / bs;
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kDictIdToPos, ns, &dv.id_to_pos));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kDictPosToId, ns, &dv.pos_to_id));
  EQL_RETURN_IF_ERROR(SectionSpan(f, t, path, SectionId::kDictBlockOff,
                                  num_blocks + 1, &dv.block_offsets));
  const SectionEntry& blob = Section(t, SectionId::kDictBlob);
  dv.blob = std::span<const char>(f.data() + blob.offset,
                                  static_cast<size_t>(blob.size));
  if (dv.block_offsets.back() != blob.size) {
    return Status::Corruption(StrFormat(
        "%s: dictionary blob size disagrees with its offset table",
        path.c_str()));
  }
  return Status::Ok();
}

Status VerifyPayloads(const MmapFile& f, const TableInfo& t,
                      const std::string& path) {
  for (uint32_t i = 0; i < kNumSections; ++i) {
    const SectionEntry& e = t.sections[i];
    if (ChecksumBytes(f.data() + e.offset, static_cast<size_t>(e.size)) !=
        e.checksum) {
      return Status::Corruption(StrFormat(
          "%s: section %u checksum mismatch — the file is corrupt "
          "(re-pack with eql_pack)",
          path.c_str(), e.id));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Graph> OpenSnapshot(const std::string& path,
                           const SnapshotOpenOptions& options,
                           SnapshotInfo* info) {
  Result<MmapFile> file = MmapFile::Open(path);
  if (!file.ok()) return file.status();

  auto data = std::make_shared<SnapshotData>();
  data->file = std::move(file).value();

  TableInfo table;
  Status st = ReadTable(data->file, path, &table);
  if (!st.ok()) return st;
  if (options.verify_checksums) {
    st = VerifyPayloads(data->file, table, path);
    if (!st.ok()) return st;
  }
  st = FillViews(data->file, table, path, data.get());
  if (!st.ok()) return st;

  if (info != nullptr) {
    info->file_bytes = data->file.size();
    info->num_nodes = data->view.num_nodes;
    info->num_edges = data->view.num_edges;
    info->num_strings = data->dict.num_strings;
  }
  Graph g;
  SnapshotAccess::Install(&g, std::move(data));
  return g;
}

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  Result<MmapFile> file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  TableInfo table;
  Status st = ReadTable(*file, path, &table);
  if (!st.ok()) return st;
  std::span<const MetaSection> meta;
  st = SectionSpan(*file, table, path, SectionId::kMeta, 1, &meta);
  if (!st.ok()) return st;
  SnapshotInfo info;
  info.file_bytes = file->size();
  info.num_nodes = meta[0].num_nodes;
  info.num_edges = meta[0].num_edges;
  info.num_strings = meta[0].num_strings;
  return info;
}

}  // namespace eql
