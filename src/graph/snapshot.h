// Binary graph snapshots with zero-copy mmap open.
//
// WriteSnapshot() serializes a finalized Graph — columns, CSRs, inverted
// indexes, properties and a front-coded dictionary — into a single versioned,
// checksummed file (layout: graph/snapshot_format.h). OpenSnapshot() maps
// that file and returns a finalized Graph whose accessors read the mapping
// in place: no section is parsed, copied or decoded at open, so a multi-GB
// graph is queryable in milliseconds and its pages are shared by every
// process mapping the same file.
//
// Identity: the opened Graph gets a fresh process-unique uid(), so compiled
// CTP views and planner statistics behave exactly as for a newly built graph.
//
// Integrity: the header and section table (magic, version, sizes, offsets,
// per-section checksums) are always validated at open, which catches
// truncation and structural corruption cheaply. Payload checksums are only
// scanned when SnapshotOpenOptions::verify_checksums is set — that reads the
// whole file and costs the zero-copy advantage, so it is off by default.
//
// Snapshots produced by the parallel bulk loader (graph/bulk_load.h) and by
// WriteSnapshot() are interchangeable.
#ifndef EQL_GRAPH_SNAPSHOT_H_
#define EQL_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace eql {

struct SnapshotOpenOptions {
  /// Verify every section's checksum at open (full file scan). Off by
  /// default: the header/table checksum still catches structural damage.
  bool verify_checksums = false;
};

/// Cheap facts about a snapshot file, from the header + meta section only.
struct SnapshotInfo {
  uint64_t file_bytes = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t num_strings = 0;
};

/// Writes `g` (must be finalized) to `path` in snapshot format. Output is
/// deterministic: the same graph always produces byte-identical files.
Status WriteSnapshot(const Graph& g, const std::string& path);

/// Maps `path` and returns a finalized, snapshot-backed Graph. On success
/// and when `info` is non-null, fills it with the file's vitals.
Result<Graph> OpenSnapshot(const std::string& path,
                           const SnapshotOpenOptions& options = {},
                           SnapshotInfo* info = nullptr);

/// Reads only the header/table/meta of `path` (validating their checksums)
/// and returns the file's vitals. Useful for tooling that must not pay for
/// a full open.
Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

}  // namespace eql

#endif  // EQL_GRAPH_SNAPSHOT_H_
