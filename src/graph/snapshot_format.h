// Internal on-disk layout of binary graph snapshots. The public API is in
// graph/snapshot.h; this header is shared by the snapshot writer/reader
// (graph/snapshot.cc), the parallel bulk loader (graph/bulk_load.cc), the
// snapshot dictionary decoder (graph/dictionary.cc) and the corruption tests.
//
// File layout (all little-endian, the only byte order we target):
//
//   [FileHeader: 64 bytes]
//   [SectionEntry x kNumSections: the section table]
//   [payload sections, each 64-byte aligned, zero padding between]
//
// Every section carries its own checksum in the table entry; the header
// checksum covers the header prefix plus the whole table, so magic, version,
// sizes and offsets are always validated at open while the (possibly
// multi-GB) payload scan is optional. Alignment to 64 bytes keeps every
// span handed to the engine naturally aligned and cache-line friendly.
#ifndef EQL_GRAPH_SNAPSHOT_FORMAT_H_
#define EQL_GRAPH_SNAPSHOT_FORMAT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.h"
#include "util/status.h"

namespace eql {
namespace snapshot_internal {

inline constexpr char kMagic[8] = {'E', 'Q', 'L', 'S', 'N', 'A', 'P', '1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kSectionAlign = 64;

/// Payload sections. Every one must be present exactly once; order in the
/// file is unspecified (the table locates them).
enum class SectionId : uint32_t {
  kMeta = 0,
  kNodeLabel,       ///< StrId[num_nodes]
  kNodeLiteral,     ///< uint8[num_nodes]
  kNodeTypeOff,     ///< uint32[num_nodes + 1]
  kNodeTypeList,    ///< StrId[...]
  kEdgeSrc,         ///< NodeId[num_edges]
  kEdgeDst,         ///< NodeId[num_edges]
  kEdgeLabel,       ///< StrId[num_edges]
  kDegree,          ///< uint32[num_nodes]
  kIncOff,          ///< uint32[num_nodes + 1]
  kIncList,         ///< IncidentEdge[...]
  kOutOff,
  kOutList,
  kInOff,
  kInList,
  kLabelNodesOff,   ///< uint32[num_strings + 1] (CSR keyed by StrId)
  kLabelNodesList,  ///< NodeId[...]
  kTypeNodesOff,
  kTypeNodesList,
  kLabelEdgesOff,
  kLabelEdgesList,  ///< EdgeId[...]
  kNodePropKeys,    ///< uint64[(owner << 32 | key)], sorted
  kNodePropVals,    ///< StrId[...], parallel to the keys
  kEdgePropKeys,
  kEdgePropVals,
  kDictIdToPos,     ///< uint32[num_strings]
  kDictPosToId,     ///< uint32[num_strings]
  kDictBlockOff,    ///< uint64[num_blocks + 1], offsets into the blob
  kDictBlob,        ///< front-coded string bytes
  kSectionCount,
};

inline constexpr uint32_t kNumSections =
    static_cast<uint32_t>(SectionId::kSectionCount);

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t num_sections;
  uint64_t file_size;      ///< must equal the on-disk size (truncation check)
  uint64_t table_offset;   ///< byte offset of the section table
  uint64_t reserved[3];
  uint64_t header_checksum;  ///< over the header bytes before this field,
                             ///< then the whole section table
};
static_assert(sizeof(FileHeader) == 64, "header is one cache line");

struct SectionEntry {
  uint32_t id;
  uint32_t reserved;
  uint64_t offset;
  uint64_t size;
  uint64_t checksum;  ///< ChecksumBytes over the section payload
};
static_assert(sizeof(SectionEntry) == 32);

/// Fixed-size metadata payload of SectionId::kMeta.
struct MetaSection {
  uint64_t num_nodes;
  uint64_t num_edges;
  uint64_t num_strings;
  uint32_t dict_block_size;
  uint32_t reserved0;
  uint64_t reserved[4];
};
static_assert(sizeof(MetaSection) == 64);

/// 64-bit checksum over arbitrary bytes: splitmix-chained 8-byte words plus
/// a length-mixed tail. Not cryptographic; detects the random corruption and
/// truncation a storage layer produces. ~GB/s on one core.
inline uint64_t ChecksumBytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0x9ae16a3b2f90404fULL ^ Mix64(n);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = HashCombine(h, w);
  }
  if (i < n) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, n - i);
    h = HashCombine(h, w ^ (static_cast<uint64_t>(n - i) << 56));
  }
  return h;
}

// ---- varints (LEB128), used by the front-coded dictionary blob ------------

inline void AppendVarint(std::vector<char>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Reads a varint at *p, advancing it. Never reads past `end`; a truncated
/// varint yields the bits read so far (callers validate section sizes and
/// checksums before trusting the blob, so this is a belt-and-braces bound,
/// not an error channel).
inline uint64_t ReadVarint(const char** p, const char* end) {
  uint64_t v = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    unsigned char b = static_cast<unsigned char>(*(*p)++);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

/// Builds the front-coded blob over lexicographically sorted strings: block
/// leaders verbatim (varint length + bytes), followers as varint shared-
/// prefix length + varint suffix length + suffix bytes. `block_offsets` gets
/// one entry per block plus the final blob size.
inline void BuildFrontCodedBlob(std::span<const std::string_view> sorted,
                                uint32_t block_size, std::vector<char>* blob,
                                std::vector<uint64_t>* block_offsets) {
  blob->clear();
  block_offsets->clear();
  for (size_t i = 0; i < sorted.size(); ++i) {
    const std::string_view s = sorted[i];
    if (i % block_size == 0) {
      block_offsets->push_back(blob->size());
      AppendVarint(blob, s.size());
      blob->insert(blob->end(), s.begin(), s.end());
    } else {
      const std::string_view prev = sorted[i - 1];
      size_t lcp = 0;
      const size_t max = std::min(prev.size(), s.size());
      while (lcp < max && prev[lcp] == s[lcp]) ++lcp;
      AppendVarint(blob, lcp);
      AppendVarint(blob, s.size() - lcp);
      blob->insert(blob->end(), s.begin() + lcp, s.end());
    }
  }
  block_offsets->push_back(blob->size());
}

/// Dense CSR keyed by a 32-bit id (StrId in practice), built with a counting
/// sort so output is deterministic regardless of the source container.
/// `for_each_pair` is invoked twice with an emit(key, value) callable.
struct KeyedCsr {
  std::vector<uint32_t> off;   ///< num_keys + 1
  std::vector<uint32_t> list;  ///< values in key-major, emission-minor order
};

template <typename EmitFn>
KeyedCsr BuildKeyedCsr(size_t num_keys, const EmitFn& for_each_pair) {
  KeyedCsr csr;
  csr.off.assign(num_keys + 1, 0);
  for_each_pair([&](uint32_t key, uint32_t) { ++csr.off[key + 1]; });
  for (size_t k = 0; k < num_keys; ++k) csr.off[k + 1] += csr.off[k];
  csr.list.resize(csr.off[num_keys]);
  std::vector<uint32_t> pos(csr.off.begin(), csr.off.end() - 1);
  for_each_pair(
      [&](uint32_t key, uint32_t value) { csr.list[pos[key]++] = value; });
  return csr;
}

// ---- file access ----------------------------------------------------------

/// Read-only mmap of a whole file. Move-only; unmaps on destruction.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  static Result<MmapFile> Open(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }

  /// Hints the kernel that the mapping will be read front to back once
  /// (bulk-loader input files).
  void AdviseSequential();

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
};

/// Strings per front-coded dictionary block. 16 balances decode cost per
/// Get() miss against leader overhead (one verbatim string per block).
inline constexpr uint32_t kDictBlockSize = 16;

class SnapshotFileWriter;

/// Sorts `by_id` (the string for every StrId, id-indexed), front-codes the
/// blob and appends the four dictionary sections (kDictIdToPos, kDictPosToId,
/// kDictBlockOff, kDictBlob). Shared by the Graph snapshot writer and the
/// bulk loader so both produce identical dictionaries.
Status AppendDictSections(SnapshotFileWriter* w,
                          std::span<const std::string_view> by_id,
                          uint32_t block_size);

/// Streams sections into a snapshot file: payloads are appended 64-byte
/// aligned while per-section checksums accumulate, then Finish() writes the
/// section table and header (with the header checksum) back at offset 0.
/// Append order is free; every SectionId must be appended exactly once.
class SnapshotFileWriter {
 public:
  SnapshotFileWriter() = default;
  ~SnapshotFileWriter();
  SnapshotFileWriter(const SnapshotFileWriter&) = delete;
  SnapshotFileWriter& operator=(const SnapshotFileWriter&) = delete;

  Status Create(const std::string& path);
  Status Append(SectionId id, const void* data, size_t size);

  template <typename T>
  Status AppendVector(SectionId id, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Append(id, v.data(), v.size() * sizeof(T));
  }

  /// Writes table + header and closes. The writer is unusable afterwards.
  Status Finish();

  /// Total payload bytes appended so far (excluding header/table).
  uint64_t bytes_written() const { return next_offset_; }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t next_offset_ = 0;  ///< next aligned payload offset
  std::vector<SectionEntry> entries_;
};

}  // namespace snapshot_internal
}  // namespace eql

#endif  // EQL_GRAPH_SNAPSHOT_FORMAT_H_
