#include "query/ast.h"

#include <algorithm>

#include "util/string_util.h"

namespace eql {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kLike:
      return "~";
  }
  return "?";
}

namespace {

std::string PredicateToText(const Predicate& p) {
  if (p.conditions.size() == 1 && p.conditions[0].property == "label" &&
      p.conditions[0].op == CompareOp::kEq) {
    return "\"" + p.conditions[0].constant + "\"";
  }
  return "?" + p.var;
}

std::string FilterClauses(const Query& q) {
  std::string out;
  // Conditions not expressible as label shorthands become FILTER clauses.
  auto emit = [&](const Predicate& p) {
    if (p.conditions.size() == 1 && p.conditions[0].property == "label" &&
        p.conditions[0].op == CompareOp::kEq) {
      return;  // printed inline as a string term
    }
    for (const Condition& c : p.conditions) {
      out += "  FILTER(" + c.property + "(?" + p.var + ") " + CompareOpName(c.op) +
             " \"" + c.constant + "\")\n";
    }
  };
  for (const EdgePattern& ep : q.patterns) {
    emit(ep.source);
    emit(ep.edge);
    emit(ep.target);
  }
  for (const CtpPattern& ctp : q.ctps) {
    for (const Predicate& m : ctp.members) emit(m);
  }
  return out;
}

}  // namespace

std::string QueryToText(const Query& q) {
  std::string out = "SELECT";
  for (const auto& h : q.head) out += " ?" + h;
  out += "\nWHERE {\n";
  for (const EdgePattern& ep : q.patterns) {
    out += "  " + PredicateToText(ep.source) + " " + PredicateToText(ep.edge) + " " +
           PredicateToText(ep.target) + " .\n";
  }
  for (const CtpPattern& ctp : q.ctps) {
    out += "  CONNECT(";
    for (size_t i = 0; i < ctp.members.size(); ++i) {
      if (i > 0) out += ", ";
      out += PredicateToText(ctp.members[i]);
    }
    out += " -> ?" + ctp.tree_var + ")";
    const CtpFilterSpec& f = ctp.filters;
    if (f.uni) out += " UNI";
    if (f.labels) {
      out += " LABEL {";
      for (size_t i = 0; i < f.labels->size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + (*f.labels)[i] + "\"";
      }
      out += "}";
    }
    if (f.max_edges) out += StrFormat(" MAX %u", *f.max_edges);
    if (f.score) {
      out += " SCORE " + *f.score;
      if (f.top_k) out += StrFormat(" TOP %d", *f.top_k);
    }
    if (f.timeout_ms) out += StrFormat(" TIMEOUT %lld", (long long)*f.timeout_ms);
    if (f.limit) out += StrFormat(" LIMIT %llu", (unsigned long long)*f.limit);
    out += "\n";
  }
  out += FilterClauses(q);
  out += "}\n";
  return out;
}

namespace {

bool CompareValues(const std::string& lhs, CompareOp op, const std::string& rhs) {
  switch (op) {
    case CompareOp::kLike:
      return GlobMatch(rhs, lhs);
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kLt:
    case CompareOp::kLe: {
      double a = 0, b = 0;
      if (ParseDouble(lhs, &a) && ParseDouble(rhs, &b)) {
        return op == CompareOp::kLt ? a < b : a <= b;
      }
      return op == CompareOp::kLt ? lhs < rhs : lhs <= rhs;
    }
  }
  return false;
}

}  // namespace

bool ConditionMatches(const Graph& g, const Condition& cond, uint32_t id,
                      bool is_node) {
  if (cond.property == "label") {
    const std::string& label = is_node ? g.NodeLabel(id) : g.EdgeLabel(id);
    return CompareValues(label, cond.op, cond.constant);
  }
  if (cond.property == "type") {
    if (!is_node) return false;
    for (StrId t : g.NodeTypes(id)) {
      if (CompareValues(g.dict().Get(t), cond.op, cond.constant)) return true;
    }
    return false;
  }
  StrId v = is_node ? g.NodePropertyId(id, cond.property)
                    : g.EdgePropertyId(id, cond.property);
  if (v == kNoStrId) return false;
  return CompareValues(g.dict().Get(v), cond.op, cond.constant);
}

bool PredicateMatches(const Graph& g, const Predicate& pred, uint32_t id,
                      bool is_node) {
  for (const Condition& c : pred.conditions) {
    if (!ConditionMatches(g, c, id, is_node)) return false;
  }
  return true;
}

std::vector<NodeId> NodesMatchingPredicate(const Graph& g, const Predicate& pred) {
  // Index-backed paths: an equality on label or type narrows to one posting
  // list; remaining conditions filter it.
  for (const Condition& c : pred.conditions) {
    if (c.op != CompareOp::kEq) continue;
    std::span<const NodeId> candidates;
    if (c.property == "label") {
      StrId id = g.dict().Lookup(c.constant);
      if (id == kNoStrId) return {};
      candidates = g.NodesWithLabel(id);
    } else if (c.property == "type") {
      StrId id = g.dict().Lookup(c.constant);
      if (id == kNoStrId) return {};
      candidates = g.NodesWithType(id);
    } else {
      continue;
    }
    std::vector<NodeId> out;
    for (NodeId n : candidates) {
      if (PredicateMatches(g, pred, n, true)) out.push_back(n);
    }
    return out;
  }
  // Fallback: full scan.
  std::vector<NodeId> out;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (PredicateMatches(g, pred, n, true)) out.push_back(n);
  }
  return out;
}

}  // namespace eql
