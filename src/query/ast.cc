#include "query/ast.h"

#include <algorithm>

#include "util/string_util.h"

namespace eql {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kLike:
      return "~";
  }
  return "?";
}

namespace {

std::string PredicateToText(const Predicate& p) {
  if (p.conditions.size() == 1 && p.conditions[0].property == "label" &&
      p.conditions[0].op == CompareOp::kEq) {
    if (p.conditions[0].is_param) return "$" + p.conditions[0].constant;
    return "\"" + p.conditions[0].constant + "\"";
  }
  return "?" + p.var;
}

std::string FilterClauses(const Query& q) {
  std::string out;
  // Conditions not expressible as label shorthands become FILTER clauses.
  auto emit = [&](const Predicate& p) {
    if (p.conditions.size() == 1 && p.conditions[0].property == "label" &&
        p.conditions[0].op == CompareOp::kEq) {
      return;  // printed inline as a string term
    }
    for (const Condition& c : p.conditions) {
      const std::string rhs =
          c.is_param ? "$" + c.constant : "\"" + c.constant + "\"";
      out += "  FILTER(" + c.property + "(?" + p.var + ") " + CompareOpName(c.op) +
             " " + rhs + ")\n";
    }
  };
  for (const EdgePattern& ep : q.patterns) {
    emit(ep.source);
    emit(ep.edge);
    emit(ep.target);
  }
  for (const CtpPattern& ctp : q.ctps) {
    for (const Predicate& m : ctp.members) emit(m);
  }
  return out;
}

}  // namespace

std::string QueryToText(const Query& q) {
  std::string out = "SELECT";
  for (const auto& h : q.head) out += " ?" + h;
  out += "\nWHERE {\n";
  for (const EdgePattern& ep : q.patterns) {
    out += "  " + PredicateToText(ep.source) + " " + PredicateToText(ep.edge) + " " +
           PredicateToText(ep.target) + " .\n";
  }
  for (const CtpPattern& ctp : q.ctps) {
    out += "  CONNECT(";
    for (size_t i = 0; i < ctp.members.size(); ++i) {
      if (i > 0) out += ", ";
      out += PredicateToText(ctp.members[i]);
    }
    out += " -> ?" + ctp.tree_var + ")";
    const CtpFilterSpec& f = ctp.filters;
    if (f.uni) out += " UNI";
    if (f.labels || !f.label_params.empty()) {
      out += " LABEL {";
      size_t n = 0;
      if (f.labels) {
        for (const std::string& l : *f.labels) {
          if (n++ > 0) out += ", ";
          out += "\"" + l + "\"";
        }
      }
      for (const std::string& p : f.label_params) {
        if (n++ > 0) out += ", ";
        out += "$" + p;
      }
      out += "}";
    }
    if (f.max_edges) out += StrFormat(" MAX %u", *f.max_edges);
    if (f.max_edges_param) out += " MAX $" + *f.max_edges_param;
    if (f.score) {
      out += " SCORE " + *f.score;
      if (f.top_k) out += StrFormat(" TOP %d", *f.top_k);
      if (f.top_k_param) out += " TOP $" + *f.top_k_param;
    }
    if (f.timeout_ms) out += StrFormat(" TIMEOUT %lld", (long long)*f.timeout_ms);
    if (f.timeout_param) out += " TIMEOUT $" + *f.timeout_param;
    if (f.limit) out += StrFormat(" LIMIT %llu", (unsigned long long)*f.limit);
    if (f.limit_param) out += " LIMIT $" + *f.limit_param;
    out += "\n";
  }
  out += FilterClauses(q);
  out += "}\n";
  return out;
}

std::string CtpTableKey(const CtpPattern& ctp) {
  std::string key;
  for (const Predicate& m : ctp.members) {
    key += "|m:";
    std::vector<std::string> conds;
    for (const Condition& c : m.conditions) {
      conds.push_back(c.property + std::string(CompareOpName(c.op)) +
                      (c.is_param ? "$" : "") + c.constant);
    }
    std::sort(conds.begin(), conds.end());
    for (const std::string& c : conds) key += "[" + c + "]";
  }
  const CtpFilterSpec& f = ctp.filters;
  key += "|f:";
  if (f.uni) key += "uni;";
  if (f.labels) {
    std::vector<std::string> labels = *f.labels;
    std::sort(labels.begin(), labels.end());
    key += "labels{";
    for (const std::string& l : labels) key += l + ",";
    key += "};";
  }
  for (const std::string& p : f.label_params) key += "label$" + p + ";";
  if (f.max_edges) key += StrFormat("max=%u;", *f.max_edges);
  if (f.max_edges_param) key += "max$" + *f.max_edges_param + ";";
  if (f.timeout_ms) key += StrFormat("timeout=%lld;", (long long)*f.timeout_ms);
  if (f.timeout_param) key += "timeout$" + *f.timeout_param + ";";
  if (f.score) key += "score=" + *f.score + ";";
  if (f.top_k) key += StrFormat("top=%d;", *f.top_k);
  if (f.top_k_param) key += "top$" + *f.top_k_param + ";";
  if (f.limit) key += StrFormat("limit=%llu;", (unsigned long long)*f.limit);
  if (f.limit_param) key += "limit$" + *f.limit_param + ";";
  return key;
}

std::vector<std::string> CollectParamNames(const Query& q) {
  std::vector<std::string> out;
  auto add = [&](const std::string& name) {
    if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
  };
  auto from_pred = [&](const Predicate& p) {
    for (const Condition& c : p.conditions) {
      if (c.is_param) add(c.constant);
    }
  };
  for (const EdgePattern& ep : q.patterns) {
    from_pred(ep.source);
    from_pred(ep.edge);
    from_pred(ep.target);
  }
  for (const CtpPattern& ctp : q.ctps) {
    for (const Predicate& m : ctp.members) from_pred(m);
    const CtpFilterSpec& f = ctp.filters;
    for (const std::string& p : f.label_params) add(p);
    if (f.max_edges_param) add(*f.max_edges_param);
    if (f.top_k_param) add(*f.top_k_param);
    if (f.timeout_param) add(*f.timeout_param);
    if (f.limit_param) add(*f.limit_param);
  }
  return out;
}

namespace {

bool CompareValues(const std::string& lhs, CompareOp op, const std::string& rhs) {
  switch (op) {
    case CompareOp::kLike:
      return GlobMatch(rhs, lhs);
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kLt:
    case CompareOp::kLe: {
      double a = 0, b = 0;
      if (ParseDouble(lhs, &a) && ParseDouble(rhs, &b)) {
        return op == CompareOp::kLt ? a < b : a <= b;
      }
      return op == CompareOp::kLt ? lhs < rhs : lhs <= rhs;
    }
  }
  return false;
}

}  // namespace

bool ConditionMatches(const Graph& g, const Condition& cond, uint32_t id,
                      bool is_node) {
  if (cond.property == "label") {
    const std::string& label = is_node ? g.NodeLabel(id) : g.EdgeLabel(id);
    return CompareValues(label, cond.op, cond.constant);
  }
  if (cond.property == "type") {
    if (!is_node) return false;
    for (StrId t : g.NodeTypes(id)) {
      if (CompareValues(g.dict().Get(t), cond.op, cond.constant)) return true;
    }
    return false;
  }
  StrId v = is_node ? g.NodePropertyId(id, cond.property)
                    : g.EdgePropertyId(id, cond.property);
  if (v == kNoStrId) return false;
  return CompareValues(g.dict().Get(v), cond.op, cond.constant);
}

bool PredicateMatches(const Graph& g, const Predicate& pred, uint32_t id,
                      bool is_node) {
  for (const Condition& c : pred.conditions) {
    if (!ConditionMatches(g, c, id, is_node)) return false;
  }
  return true;
}

std::vector<NodeId> NodesMatchingPredicate(const Graph& g, const Predicate& pred) {
  // Index-backed paths: an equality on label or type narrows to one posting
  // list; remaining conditions filter it.
  for (const Condition& c : pred.conditions) {
    if (c.op != CompareOp::kEq) continue;
    std::span<const NodeId> candidates;
    if (c.property == "label") {
      StrId id = g.dict().Lookup(c.constant);
      if (id == kNoStrId) return {};
      candidates = g.NodesWithLabel(id);
    } else if (c.property == "type") {
      StrId id = g.dict().Lookup(c.constant);
      if (id == kNoStrId) return {};
      candidates = g.NodesWithType(id);
    } else {
      continue;
    }
    std::vector<NodeId> out;
    for (NodeId n : candidates) {
      if (PredicateMatches(g, pred, n, true)) out.push_back(n);
    }
    return out;
  }
  // Fallback: full scan.
  std::vector<NodeId> out;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (PredicateMatches(g, pred, n, true)) out.push_back(n);
  }
  return out;
}

}  // namespace eql
