// Abstract syntax of EQL — the Extended Query Language of Section 2.
//
// A query has a head (projected variables) and a body of edge patterns
// (grouped into BGPs by connectivity, Def 2.4) plus connecting tree patterns
// (CTPs, Def 2.5) with optional filters (Section 2, "CTP filters").
//
// Predicates follow Definition 2.2: conjunctions of conditions
// `p(v) op c` over a single variable, with p a property (label, type, or a
// named property), op in {=, <, <=, ~} and c a constant. The concrete syntax
// (see parser.h) is SPARQL-flavored:
//
//   SELECT ?x ?w
//   WHERE {
//     ?x "citizenOf" "USA" .
//     ?x "founded" ?o .
//     FILTER(type(?x) = "entrepreneur")
//     CONNECT(?x, ?y, ?z -> ?w) MAX 8 SCORE edge_count TOP 5 TIMEOUT 1000
//   }
//
// String terms inside triple/CONNECT positions are label-equality shorthands
// over fresh variables (the paper's "short syntax").
#ifndef EQL_QUERY_AST_H_
#define EQL_QUERY_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace eql {

/// Comparison operators Omega = {=, <, <=, ~} (Def 2.2).
enum class CompareOp { kEq, kLt, kLe, kLike };

const char* CompareOpName(CompareOp op);

/// One condition `property(v) op constant`. The constant may be a `$name`
/// parameter placeholder: `is_param` is then true and `constant` holds the
/// parameter *name*; binding (eval/params.h) substitutes the value before
/// evaluation. A query with unbound parameters cannot be evaluated.
struct Condition {
  std::string property;  ///< "label", "type", or a property key
  CompareOp op = CompareOp::kEq;
  std::string constant;
  bool is_param = false;  ///< `constant` is a parameter name, not a value
};

/// A predicate over one variable: a conjunction of conditions (possibly
/// empty, which any node/edge satisfies).
struct Predicate {
  std::string var;  ///< variable name without '?'; never empty after parsing
  std::vector<Condition> conditions;

  bool IsEmpty() const { return conditions.empty(); }
};

/// Edge pattern (p1, p2, p3): predicates over source, edge, target (Def 2.3).
struct EdgePattern {
  Predicate source;
  Predicate edge;
  Predicate target;
};

/// Filters attached to one CTP (Section 2). Every value position accepts a
/// `$name` placeholder: label params are appended to `labels` at bind time,
/// and a set `*_param` name supersedes the corresponding literal field until
/// binding fills it in (the parser never sets both).
struct CtpFilterSpec {
  bool uni = false;
  std::optional<std::vector<std::string>> labels;
  std::vector<std::string> label_params;  ///< $params inside LABEL {...}
  std::optional<uint32_t> max_edges;
  std::optional<int64_t> timeout_ms;
  std::optional<std::string> score;  ///< score function name
  std::optional<int> top_k;
  std::optional<uint64_t> limit;
  std::optional<std::string> max_edges_param;
  std::optional<std::string> timeout_param;
  std::optional<std::string> top_k_param;
  std::optional<std::string> limit_param;
};

/// Connecting tree pattern (g1, ..., gm, v_{m+1}) (Def 2.5).
struct CtpPattern {
  std::vector<Predicate> members;  ///< g1..gm; pairwise-distinct variables
  std::string tree_var;            ///< v_{m+1}, the underlined variable
  CtpFilterSpec filters;
};

/// A full EQL query (Defs 2.6 and 2.11).
struct Query {
  std::vector<std::string> head;
  std::vector<EdgePattern> patterns;  ///< all triple patterns of the body
  std::vector<CtpPattern> ctps;

  /// All variables appearing in triple patterns or CTP members (not tree
  /// vars); filled by the validator.
  std::vector<std::string> simple_vars;

  /// All `$name` parameter placeholders, in first-appearance order; filled
  /// by the validator. Non-empty means the query must be bound via
  /// EqlEngine::Prepare + Execute(params) — Run() rejects it.
  std::vector<std::string> param_names;
};

/// Collects the query's parameter names in first-appearance order (condition
/// constants first, then per-CTP LABEL/MAX/SCORE TOP/TIMEOUT/LIMIT values).
/// The validator caches this in Query::param_names.
std::vector<std::string> CollectParamNames(const Query& q);

/// Pretty-prints a query back to (normalized) EQL text.
std::string QueryToText(const Query& q);

/// Canonical serialization of everything that determines a CTP table's
/// *contents* — per-member conditions (sorted: conjunction order is
/// irrelevant) and the filter spec — but NOT the member/tree variable names,
/// which only name columns. Two CTPs with equal keys whose members are all
/// grounded by their own predicates (or universal) produce byte-identical
/// row/tree sets, which is what the planner's common-sub-expression sharing
/// (eval/plan.h) relies on. Eligibility (no table-bound members, no TIMEOUT,
/// bound params) is the planner's job; the key just serializes.
std::string CtpTableKey(const CtpPattern& ctp);

/// Evaluates one condition against a node (is_node) or an edge of g.
/// Comparisons are numeric when both sides parse as doubles, else
/// lexicographic; '~' uses glob matching (*, ?).
bool ConditionMatches(const Graph& g, const Condition& cond, uint32_t id,
                      bool is_node);

/// Evaluates a full predicate (conjunction) against a node or edge.
bool PredicateMatches(const Graph& g, const Predicate& pred, uint32_t id,
                      bool is_node);

/// All nodes of g satisfying `pred`, using the label/type inverted indexes
/// when the predicate pins them with '='; otherwise a filtered scan.
std::vector<NodeId> NodesMatchingPredicate(const Graph& g, const Predicate& pred);

}  // namespace eql

#endif  // EQL_QUERY_AST_H_
