#include "query/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace eql {

namespace {

const char* const kKeywords[] = {"SELECT", "WHERE", "CONNECT", "FILTER",
                                 "UNI",    "LABEL", "MAX",     "SCORE",
                                 "TOP",    "TIMEOUT", "LIMIT", "AND"};

bool IsKeyword(const std::string& upper) {
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  int line = 1, col = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (text[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      advance(1);
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') advance(1);
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = col;
    if (c == '?' || c == '$') {
      size_t j = i + 1;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      if (j == i + 1) {
        return Status::InvalidArgument(
            StrFormat("line %d:%d: '%c' must start a %s name", line, col, c,
                      c == '?' ? "variable" : "parameter"));
      }
      tok.kind = c == '?' ? TokenKind::kVariable : TokenKind::kParam;
      tok.text = std::string(text.substr(i + 1, j - i - 1));
      advance(j - i);
    } else if (c == '"') {
      std::string body;
      size_t j = i + 1;
      bool closed = false;
      while (j < text.size()) {
        if (text[j] == '\\' && j + 1 < text.size()) {
          body += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '"') {
          closed = true;
          break;
        }
        body += text[j];
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("line %d:%d: unterminated string literal", line, col));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(body);
      advance(j + 1 - i);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[j])) || text[j] == '.'))
        ++j;
      tok.kind = TokenKind::kNumber;
      tok.text = std::string(text.substr(i, j - i));
      advance(j - i);
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      std::string word(text.substr(i, j - i));
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper((unsigned char)ch));
      if (IsKeyword(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdent;
        tok.text = word;
      }
      advance(j - i);
    } else if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      tok.kind = TokenKind::kPunct;
      tok.text = "->";
      advance(2);
    } else if (c == '<' && i + 1 < text.size() && text[i + 1] == '=') {
      tok.kind = TokenKind::kPunct;
      tok.text = "<=";
      advance(2);
    } else if (c == '{' || c == '}' || c == '(' || c == ')' || c == ',' ||
               c == '.' || c == '=' || c == '<' || c == '~') {
      tok.kind = TokenKind::kPunct;
      tok.text = std::string(1, c);
      advance(1);
    } else {
      return Status::InvalidArgument(
          StrFormat("line %d:%d: unexpected character '%c'", line, col, c));
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = col;
  out.push_back(end);
  return out;
}

}  // namespace eql
