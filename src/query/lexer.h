// Tokenizer for EQL text (see ast.h for the grammar sketch).
#ifndef EQL_QUERY_LEXER_H_
#define EQL_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace eql {

enum class TokenKind {
  kKeyword,   ///< SELECT WHERE CONNECT FILTER UNI LABEL MAX SCORE TOP TIMEOUT
              ///< LIMIT AND (case-insensitive; normalized to upper case)
  kVariable,  ///< ?name (text holds "name")
  kParam,     ///< $name — a placeholder bound at execution time (text holds
              ///< "name"); see eval/params.h for the binding rules
  kString,    ///< "..." with \" and \\ escapes (text holds the unescaped body)
  kNumber,    ///< integer or decimal literal
  kIdent,     ///< bare identifier (score names, FILTER property names)
  kPunct,     ///< one of { } ( ) , . -> = < <= ~
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 1;
  int column = 1;

  bool Is(TokenKind k, std::string_view t) const { return kind == k && text == t; }
};

/// Tokenizes `text`; fails with a position-annotated message on bad input
/// (unterminated string, stray character).
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace eql

#endif  // EQL_QUERY_LEXER_H_
