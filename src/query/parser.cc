#include "query/parser.h"

#include <cctype>
#include <map>
#include <set>

#include "query/lexer.h"
#include "util/string_util.h"

namespace eql {

namespace {

// Local pseudo-macro: propagate Status from helpers that return Status.
#define EQL_RETURN_WRAP(expr)  \
  do {                         \
    Status _s = (expr);        \
    if (!_s.ok()) return _s;   \
  } while (false)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query q;
    EQL_RETURN_WRAP(ExpectKeyword("SELECT"));
    while (Peek().kind == TokenKind::kVariable) {
      q.head.push_back(Next().text);
    }
    if (q.head.empty()) return Error("SELECT needs at least one ?variable");
    EQL_RETURN_WRAP(ExpectKeyword("WHERE"));
    EQL_RETURN_WRAP(ExpectPunct("{"));
    while (!Peek().Is(TokenKind::kPunct, "}")) {
      if (Peek().kind == TokenKind::kEnd) return Error("missing closing '}'");
      if (Peek().Is(TokenKind::kKeyword, "CONNECT")) {
        Status s = ParseConnect(&q);
        if (!s.ok()) return s;
      } else if (Peek().Is(TokenKind::kKeyword, "FILTER")) {
        Status s = ParseFilter();
        if (!s.ok()) return s;
      } else {
        Status s = ParseTriple(&q);
        if (!s.ok()) return s;
      }
    }
    Next();  // '}'
    if (!Peek().Is(TokenKind::kEnd, "")) {
      if (Peek().kind != TokenKind::kEnd) return Error("trailing input after '}'");
    }
    ApplyFilterConditions(&q);
    for (const auto& [var, conds] : filter_conditions_) {
      if (!used_filter_vars_.count(var)) {
        return Status::InvalidArgument("FILTER references unknown variable ?" + var);
      }
    }
    return q;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::InvalidArgument(
        StrFormat("line %d:%d: %s", t.line, t.column, msg.c_str()));
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().Is(TokenKind::kKeyword, kw)) {
      return Error(StrFormat("expected %s", kw));
    }
    Next();
    return Status::Ok();
  }

  Status ExpectPunct(const char* p) {
    if (!Peek().Is(TokenKind::kPunct, p)) {
      return Error(StrFormat("expected '%s'", p));
    }
    Next();
    return Status::Ok();
  }

  /// term := ?var | "string" | $param; strings desugar to a fresh variable
  /// carrying a label-equality condition (the paper's short syntax), and a
  /// $param desugars the same way with the label value bound at execution
  /// time (eval/params.h).
  Result<Predicate> ParseTerm() {
    if (Peek().kind == TokenKind::kVariable) {
      Predicate p;
      p.var = Next().text;
      return p;
    }
    if (Peek().kind == TokenKind::kString || Peek().kind == TokenKind::kParam) {
      const bool is_param = Peek().kind == TokenKind::kParam;
      Predicate p;
      p.var = StrFormat("_%d", anon_counter_++);
      p.conditions.push_back(
          Condition{"label", CompareOp::kEq, Next().text, is_param});
      return p;
    }
    return Error("expected ?variable, \"string\" or $param");
  }

  Status ParseTriple(Query* q) {
    EdgePattern ep;
    auto s = ParseTerm();
    if (!s.ok()) return s.status();
    ep.source = std::move(s).value();
    auto e = ParseTerm();
    if (!e.ok()) return e.status();
    ep.edge = std::move(e).value();
    auto t = ParseTerm();
    if (!t.ok()) return t.status();
    ep.target = std::move(t).value();
    EQL_RETURN_WRAP(ExpectPunct("."));
    q->patterns.push_back(std::move(ep));
    return Status::Ok();
  }

  Result<int64_t> ParseInt(const char* what) {
    if (Peek().kind != TokenKind::kNumber) {
      return Error(StrFormat("expected an integer after %s", what));
    }
    double v = 0;
    // Range-check before the int64 cast: casting a double at or above 2^63
    // (e.g. a 20-digit literal) is undefined behavior, not just lossy.
    if (!ParseDouble(Peek().text, &v) || v < 0.0 ||
        v >= 9223372036854775808.0 || v != static_cast<double>(static_cast<int64_t>(v))) {
      return Error(StrFormat("%s must be an integer", what));
    }
    Next();
    return static_cast<int64_t>(v);
  }

  /// A filter-value position: either an integer literal (returned through
  /// `ParseInt`-equivalent checks via the caller) or a $param whose name is
  /// stored in `*param`. Returns nullopt in `value` when a param was taken.
  Result<std::optional<int64_t>> ParseIntOrParam(
      const char* what, std::optional<std::string>* param) {
    if (Peek().kind == TokenKind::kParam) {
      *param = Next().text;
      return std::optional<int64_t>();
    }
    auto v = ParseInt(what);
    if (!v.ok()) return v.status();
    return std::optional<int64_t>(*v);
  }

  Status ParseConnect(Query* q) {
    Next();  // CONNECT
    EQL_RETURN_WRAP(ExpectPunct("("));
    CtpPattern ctp;
    for (;;) {
      auto m = ParseTerm();
      if (!m.ok()) return m.status();
      ctp.members.push_back(std::move(m).value());
      if (Peek().Is(TokenKind::kPunct, ",")) {
        Next();
        continue;
      }
      break;
    }
    EQL_RETURN_WRAP(ExpectPunct("->"));
    if (Peek().kind != TokenKind::kVariable) {
      return Error("expected the tree ?variable after '->'");
    }
    ctp.tree_var = Next().text;
    EQL_RETURN_WRAP(ExpectPunct(")"));

    // Optional filters, in any order.
    for (;;) {
      if (Peek().Is(TokenKind::kKeyword, "UNI")) {
        Next();
        ctp.filters.uni = true;
      } else if (Peek().Is(TokenKind::kKeyword, "LABEL")) {
        Next();
        EQL_RETURN_WRAP(ExpectPunct("{"));
        std::vector<std::string> labels;
        for (;;) {
          if (Peek().kind == TokenKind::kParam) {
            ctp.filters.label_params.push_back(Next().text);
          } else if (Peek().kind == TokenKind::kString) {
            labels.push_back(Next().text);
          } else {
            return Error("LABEL expects \"label\" strings or $params");
          }
          if (Peek().Is(TokenKind::kPunct, ",")) {
            Next();
            continue;
          }
          break;
        }
        EQL_RETURN_WRAP(ExpectPunct("}"));
        ctp.filters.labels = std::move(labels);
      } else if (Peek().Is(TokenKind::kKeyword, "MAX")) {
        Next();
        auto v = ParseIntOrParam("MAX", &ctp.filters.max_edges_param);
        if (!v.ok()) return v.status();
        if (v->has_value()) {
          if (**v <= 0) return Error("MAX must be positive");
          if (**v > UINT32_MAX) return Error("MAX is too large");
          ctp.filters.max_edges = static_cast<uint32_t>(**v);
        }
      } else if (Peek().Is(TokenKind::kKeyword, "SCORE")) {
        Next();
        if (Peek().kind != TokenKind::kIdent) {
          return Error("SCORE expects a score function name");
        }
        ctp.filters.score = Next().text;
        if (Peek().Is(TokenKind::kKeyword, "TOP")) {
          Next();
          auto v = ParseIntOrParam("TOP", &ctp.filters.top_k_param);
          if (!v.ok()) return v.status();
          if (v->has_value()) {
            if (**v <= 0) return Error("TOP must be positive");
            if (**v > INT32_MAX) return Error("TOP is too large");
            ctp.filters.top_k = static_cast<int>(**v);
          }
        }
      } else if (Peek().Is(TokenKind::kKeyword, "TIMEOUT")) {
        Next();
        auto v = ParseIntOrParam("TIMEOUT", &ctp.filters.timeout_param);
        if (!v.ok()) return v.status();
        if (v->has_value()) ctp.filters.timeout_ms = **v;
      } else if (Peek().Is(TokenKind::kKeyword, "LIMIT")) {
        Next();
        auto v = ParseIntOrParam("LIMIT", &ctp.filters.limit_param);
        if (!v.ok()) return v.status();
        if (v->has_value()) {
          if (**v <= 0) return Error("LIMIT must be positive");
          ctp.filters.limit = static_cast<uint64_t>(**v);
        }
      } else {
        break;
      }
    }
    q->ctps.push_back(std::move(ctp));
    return Status::Ok();
  }

  Status ParseFilter() {
    Next();  // FILTER
    EQL_RETURN_WRAP(ExpectPunct("("));
    for (;;) {
      // Property names may collide with keywords ("label", "max", ...);
      // keyword tokens are accepted here and lowered back to identifiers.
      // Plain identifiers keep their case (user property keys).
      if (Peek().kind != TokenKind::kIdent && Peek().kind != TokenKind::kKeyword) {
        return Error("FILTER expects property(?var) op constant");
      }
      Condition cond;
      const bool was_keyword = Peek().kind == TokenKind::kKeyword;
      cond.property = Next().text;
      if (was_keyword) {
        for (char& c : cond.property) {
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
      }
      EQL_RETURN_WRAP(ExpectPunct("("));
      if (Peek().kind != TokenKind::kVariable) {
        return Error("FILTER property expects a ?variable argument");
      }
      std::string var = Next().text;
      EQL_RETURN_WRAP(ExpectPunct(")"));
      if (Peek().Is(TokenKind::kPunct, "=")) {
        cond.op = CompareOp::kEq;
      } else if (Peek().Is(TokenKind::kPunct, "<")) {
        cond.op = CompareOp::kLt;
      } else if (Peek().Is(TokenKind::kPunct, "<=")) {
        cond.op = CompareOp::kLe;
      } else if (Peek().Is(TokenKind::kPunct, "~")) {
        cond.op = CompareOp::kLike;
      } else {
        return Error("expected one of = < <= ~");
      }
      Next();
      if (Peek().kind == TokenKind::kString || Peek().kind == TokenKind::kNumber ||
          Peek().kind == TokenKind::kIdent) {
        cond.constant = Next().text;
      } else if (Peek().kind == TokenKind::kParam) {
        cond.constant = Next().text;
        cond.is_param = true;
      } else {
        return Error("expected a constant or $param after the comparison operator");
      }
      filter_conditions_[var].push_back(std::move(cond));
      if (Peek().Is(TokenKind::kKeyword, "AND")) {
        Next();
        continue;
      }
      break;
    }
    return ExpectPunct(")");
  }

  /// Appends FILTER conditions to every predicate carrying their variable.
  void ApplyFilterConditions(Query* q) {
    auto apply = [&](Predicate* p) {
      auto it = filter_conditions_.find(p->var);
      if (it == filter_conditions_.end()) return;
      used_filter_vars_.insert(p->var);
      for (const Condition& c : it->second) p->conditions.push_back(c);
    };
    for (EdgePattern& ep : q->patterns) {
      apply(&ep.source);
      apply(&ep.edge);
      apply(&ep.target);
    }
    for (CtpPattern& ctp : q->ctps) {
      for (Predicate& m : ctp.members) apply(&m);
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
  std::map<std::string, std::vector<Condition>> filter_conditions_;
  std::set<std::string> used_filter_vars_;
};

#undef EQL_RETURN_WRAP

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace eql
