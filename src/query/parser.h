// Recursive-descent parser for EQL text.
//
// Grammar (keywords case-insensitive; '#' comments):
//
//   query     := SELECT var+ WHERE '{' clause* '}'
//   clause    := triple | connect | filter
//   triple    := term term term '.'
//   term      := ?var | "string"           (strings are label shorthands)
//   connect   := CONNECT '(' member (',' member)* '->' ?var ')' ctpfilter*
//   member    := ?var | "string"
//   ctpfilter := UNI
//              | LABEL '{' "l1" (',' "l2")* '}'
//              | MAX <int>
//              | SCORE <ident> [TOP <int>]
//              | TIMEOUT <int-ms>
//              | LIMIT <int>
//   filter    := FILTER '(' cond (AND cond)* ')'
//   cond      := <ident> '(' ?var ')' op constant      op in {=, <, <=, ~}
//
// FILTER conditions attach to every occurrence of their variable, forming
// the conjunction predicates of Definition 2.2.
#ifndef EQL_QUERY_PARSER_H_
#define EQL_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"
#include "util/status.h"

namespace eql {

/// Parses EQL text into a Query. The result is syntactically sound but not
/// yet validated (see validator.h).
Result<Query> ParseQuery(std::string_view text);

}  // namespace eql

#endif  // EQL_QUERY_PARSER_H_
