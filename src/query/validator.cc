#include "query/validator.h"

#include <map>
#include <set>

namespace eql {

namespace {

enum class VarRole { kNode, kEdge, kTree };

const char* RoleName(VarRole r) {
  switch (r) {
    case VarRole::kNode:
      return "node";
    case VarRole::kEdge:
      return "edge";
    case VarRole::kTree:
      return "tree";
  }
  return "?";
}

}  // namespace

Status ValidateQuery(Query* q) {
  if (q->patterns.empty() && q->ctps.empty()) {
    return Status::InvalidArgument("query body must contain a BGP or a CTP");
  }

  std::map<std::string, VarRole> roles;
  std::map<std::string, int> occurrences;
  auto record = [&](const std::string& var, VarRole role) -> Status {
    ++occurrences[var];
    auto [it, inserted] = roles.emplace(var, role);
    if (!inserted && it->second != role) {
      return Status::InvalidArgument("variable ?" + var + " used both as " +
                                     RoleName(it->second) + " and as " +
                                     RoleName(role));
    }
    return Status::Ok();
  };

  for (const EdgePattern& ep : q->patterns) {
    EQL_RETURN_IF_ERROR(record(ep.source.var, VarRole::kNode));
    EQL_RETURN_IF_ERROR(record(ep.edge.var, VarRole::kEdge));
    EQL_RETURN_IF_ERROR(record(ep.target.var, VarRole::kNode));
  }
  for (const CtpPattern& ctp : q->ctps) {
    if (ctp.members.empty()) {
      return Status::InvalidArgument("CONNECT needs at least one member");
    }
    if (ctp.members.size() > 64) {
      return Status::InvalidArgument("CONNECT supports at most 64 members");
    }
    std::set<std::string> member_vars;
    for (const Predicate& m : ctp.members) {
      if (!member_vars.insert(m.var).second) {
        return Status::InvalidArgument("CONNECT member variables must be distinct; ?" +
                                       m.var + " repeats (Def 2.5)");
      }
      EQL_RETURN_IF_ERROR(record(m.var, VarRole::kNode));
    }
    if (ctp.filters.top_k && !ctp.filters.score) {
      return Status::InvalidArgument("TOP requires SCORE on the same CONNECT");
    }
  }
  // Tree variables last: they must not collide with anything else.
  for (const CtpPattern& ctp : q->ctps) {
    EQL_RETURN_IF_ERROR(record(ctp.tree_var, VarRole::kTree));
    if (occurrences[ctp.tree_var] != 1) {
      return Status::InvalidArgument("tree variable ?" + ctp.tree_var +
                                     " must occur exactly once in the query body "
                                     "(Def 2.6)");
    }
  }

  for (const std::string& h : q->head) {
    if (!roles.count(h)) {
      return Status::InvalidArgument("head variable ?" + h +
                                     " does not occur in the body");
    }
  }

  q->simple_vars.clear();
  for (const auto& [var, role] : roles) {
    if (role != VarRole::kTree) q->simple_vars.push_back(var);
  }
  q->param_names = CollectParamNames(*q);
  return Status::Ok();
}

}  // namespace eql
