// Semantic validation of parsed EQL queries (Definitions 2.5 and 2.6).
//
// Checks, with positionless but variable-specific messages:
//  * every head variable occurs in the body (as a simple or tree variable);
//  * each CTP's tree variable occurs exactly once in the whole body;
//  * CTP member variables are pairwise distinct within their CTP;
//  * no variable is used both in node positions (source/target/CTP member)
//    and edge positions;
//  * CTPs have between 1 and 64 members (the engine's signature width);
//  * TOP k is only given together with SCORE.
// On success fills Query::simple_vars (every non-tree body variable).
#ifndef EQL_QUERY_VALIDATOR_H_
#define EQL_QUERY_VALIDATOR_H_

#include "query/ast.h"
#include "util/status.h"

namespace eql {

/// Validates `q` in place (filling q->simple_vars).
Status ValidateQuery(Query* q);

}  // namespace eql

#endif  // EQL_QUERY_VALIDATOR_H_
