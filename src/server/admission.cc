#include "server/admission.h"

#include <algorithm>

namespace eql {

const char* RequestClassName(RequestClass cls) {
  switch (cls) {
    case RequestClass::kAdhoc:
      return "adhoc";
    case RequestClass::kPrepare:
      return "prepare";
    case RequestClass::kPrepared:
      return "prepared";
  }
  return "unknown";
}

AdmissionTicket::AdmissionTicket(AdmissionTicket&& other) noexcept
    : controller_(other.controller_),
      client_(std::move(other.client_)),
      peer_(std::move(other.peer_)) {
  other.controller_ = nullptr;
}

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    if (controller_ != nullptr) controller_->Release(client_, peer_);
    controller_ = other.controller_;
    client_ = std::move(other.client_);
    peer_ = std::move(other.peer_);
    other.controller_ = nullptr;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() {
  if (controller_ != nullptr) controller_->Release(client_, peer_);
}

AdmissionController::AdmissionController(Options options, FaultInjector* fault)
    : options_(options), fault_(fault) {}

Result<AdmissionTicket> AdmissionController::Admit(const std::string& client,
                                                   const std::string& peer,
                                                   RequestClass cls) {
  if (fault_ != nullptr && fault_->ShouldFail(kFaultSiteAdmit)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_global_;
    return Status::Unavailable("injected admission fault");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_concurrent > 0 && in_flight_ >= options_.max_concurrent) {
    ++rejected_global_;
    return Status::Unavailable(
        "server at capacity (" + std::to_string(in_flight_) +
        " queries in flight); retry later");
  }
  // Adaptive shed: below the caps but above the queue-delay bound, refuse
  // the cheapest classes first (see header comment for the ladder).
  if (options_.queue_delay_p95_ms > 0) {
    const int64_t p95 = QueueDelayP95Locked();
    if (p95 > options_.queue_delay_p95_ms) {
      const double overload = static_cast<double>(p95) /
                              static_cast<double>(options_.queue_delay_p95_ms);
      const bool shed = overload > 4.0 ||
                        (overload > 2.0 && cls != RequestClass::kPrepared) ||
                        cls == RequestClass::kAdhoc;
      if (shed) {
        ++shed_by_class_[static_cast<int>(cls)];
        return Status::Unavailable(
            "shedding load (" + std::string(RequestClassName(cls)) +
            " request; queue delay p95 " + std::to_string(p95) + "ms over " +
            std::to_string(options_.queue_delay_p95_ms) +
            "ms bound); retry later");
      }
    }
  }
  // The peer gate is checked before the client gate: it is the enforced
  // one (the client key embeds a client-supplied header; the peer address
  // cannot be forged over an established connection).
  if (!peer.empty() && options_.per_peer_concurrent > 0) {
    auto it = per_peer_.find(peer);
    if (it != per_peer_.end() && it->second >= options_.per_peer_concurrent) {
      ++rejected_client_;
      return Status::ResourceExhausted(
          "peer '" + peer + "' is over its concurrency quota (" +
          std::to_string(options_.per_peer_concurrent) + ")");
    }
  }
  if (options_.per_client_concurrent > 0) {
    auto it = per_client_.find(client);
    if (it != per_client_.end() &&
        it->second >= options_.per_client_concurrent) {
      ++rejected_client_;
      return Status::ResourceExhausted(
          "client '" + client + "' is over its concurrency quota (" +
          std::to_string(options_.per_client_concurrent) + ")");
    }
  }
  ++in_flight_;
  ++per_client_[client];
  if (!peer.empty()) ++per_peer_[peer];
  ++admitted_;
  return AdmissionTicket(this, client, peer);
}

void AdmissionController::Release(const std::string& client,
                                  const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  auto it = per_client_.find(client);
  if (it != per_client_.end() && --it->second == 0) per_client_.erase(it);
  if (!peer.empty()) {
    auto pit = per_peer_.find(peer);
    if (pit != per_peer_.end() && --pit->second == 0) per_peer_.erase(pit);
  }
}

void AdmissionController::RecordQueueDelay(double delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (delay_window_.size() < kDelayWindow) {
    delay_window_.push_back(delay_ms);
  } else {
    delay_window_[delay_next_] = delay_ms;
  }
  delay_next_ = (delay_next_ + 1) % kDelayWindow;
}

int64_t AdmissionController::QueueDelayP95Locked() const {
  if (delay_window_.size() < kMinShedSamples) return 0;
  // O(n) selection over <=128 samples: cheap enough to compute per admit.
  std::vector<double> sorted = delay_window_;
  const size_t idx = (sorted.size() * 95) / 100;
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return static_cast<int64_t>(sorted[idx]);
}

int AdmissionController::RetryAfterLocked() const {
  if (options_.queue_delay_p95_ms <= 0) return 1;
  const int64_t p95 = QueueDelayP95Locked();
  if (p95 <= options_.queue_delay_p95_ms) return 1;
  const int64_t ratio = p95 / options_.queue_delay_p95_ms;
  return static_cast<int>(std::clamp<int64_t>(ratio, 1, 30));
}

int AdmissionController::RetryAfterSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RetryAfterLocked();
}

AdmissionController::Stats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.admitted = admitted_;
  s.rejected_global = rejected_global_;
  s.rejected_client = rejected_client_;
  s.in_flight = in_flight_;
  s.shed_adhoc = shed_by_class_[0];
  s.shed_prepare = shed_by_class_[1];
  s.shed_prepared = shed_by_class_[2];
  s.queue_delay_p95_ms = QueueDelayP95Locked();
  s.retry_after_s = RetryAfterLocked();
  return s;
}

}  // namespace eql
