#include "server/admission.h"

namespace eql {

AdmissionTicket::AdmissionTicket(AdmissionTicket&& other) noexcept
    : controller_(other.controller_),
      client_(std::move(other.client_)),
      peer_(std::move(other.peer_)) {
  other.controller_ = nullptr;
}

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    if (controller_ != nullptr) controller_->Release(client_, peer_);
    controller_ = other.controller_;
    client_ = std::move(other.client_);
    peer_ = std::move(other.peer_);
    other.controller_ = nullptr;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() {
  if (controller_ != nullptr) controller_->Release(client_, peer_);
}

AdmissionController::AdmissionController(Options options, FaultInjector* fault)
    : options_(options), fault_(fault) {}

Result<AdmissionTicket> AdmissionController::Admit(const std::string& client,
                                                   const std::string& peer) {
  if (fault_ != nullptr && fault_->ShouldFail(kFaultSiteAdmit)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_global_;
    return Status::Unavailable("injected admission fault");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_concurrent > 0 && in_flight_ >= options_.max_concurrent) {
    ++rejected_global_;
    return Status::Unavailable(
        "server at capacity (" + std::to_string(in_flight_) +
        " queries in flight); retry later");
  }
  // The peer gate is checked before the client gate: it is the enforced
  // one (the client key embeds a client-supplied header; the peer address
  // cannot be forged over an established connection).
  if (!peer.empty() && options_.per_peer_concurrent > 0) {
    auto it = per_peer_.find(peer);
    if (it != per_peer_.end() && it->second >= options_.per_peer_concurrent) {
      ++rejected_client_;
      return Status::ResourceExhausted(
          "peer '" + peer + "' is over its concurrency quota (" +
          std::to_string(options_.per_peer_concurrent) + ")");
    }
  }
  if (options_.per_client_concurrent > 0) {
    auto it = per_client_.find(client);
    if (it != per_client_.end() &&
        it->second >= options_.per_client_concurrent) {
      ++rejected_client_;
      return Status::ResourceExhausted(
          "client '" + client + "' is over its concurrency quota (" +
          std::to_string(options_.per_client_concurrent) + ")");
    }
  }
  ++in_flight_;
  ++per_client_[client];
  if (!peer.empty()) ++per_peer_[peer];
  ++admitted_;
  return AdmissionTicket(this, client, peer);
}

void AdmissionController::Release(const std::string& client,
                                  const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  auto it = per_client_.find(client);
  if (it != per_client_.end() && --it->second == 0) per_client_.erase(it);
  if (!peer.empty()) {
    auto pit = per_peer_.find(peer);
    if (pit != per_peer_.end() && --pit->second == 0) per_peer_.erase(pit);
  }
}

AdmissionController::Stats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.admitted = admitted_;
  s.rejected_global = rejected_global_;
  s.rejected_client = rejected_client_;
  s.in_flight = in_flight_;
  return s;
}

}  // namespace eql
