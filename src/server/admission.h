// Admission control for the eqld daemon: decides, before any query work,
// whether a request may run — and under what resource envelope.
//
// Three independent gates, mapped onto the two new status codes (and
// through HttpStatusForCode onto HTTP):
//
//   * a GLOBAL concurrency cap — the server is saturated, nobody gets in:
//     kUnavailable -> 503. Protects the worker pool and memory headroom.
//   * a PER-CLIENT concurrency cap — one client is hogging, only that
//     client is pushed back: kResourceExhausted -> 429. The client key is
//     whatever string the server derives per request (peer IP refined by
//     the X-EQL-Client header). Because the header is client-supplied, this
//     gate is COOPERATIVE: a client that varies its header mints fresh
//     keys and escapes it. Use it to separate well-behaved tools sharing
//     one address, not as an anti-abuse boundary.
//   * a PER-PEER concurrency cap — keyed on the peer address alone, which
//     a client cannot forge over an established TCP connection, so header
//     games cannot bypass it: kResourceExhausted -> 429. This is the
//     enforced anti-hog gate (off by default; see Options).
//
// ADAPTIVE SHEDDING (queue-delay-aware, off unless queue_delay_p95_ms is
// set): fixed caps alone cannot protect the process — a handful of
// admitted-but-expensive queries can pin every worker while in_flight still
// reads "healthy". The controller therefore also watches the p95 of
// admit-to-first-byte latency (the server records one sample per streamed
// query) over a sliding window. When the p95 exceeds the bound, it sheds
// below the caps, cheapest-to-refuse class first:
//
//   overload 1x..2x   shed kAdhoc    (uncompiled one-shots: the client lost
//                                     nothing but the retry; no sunk state)
//   overload 2x..4x   also kPrepare  (compilation is deferrable work)
//   overload > 4x     also kPrepared (last resort: even cached executions)
//
// Every shed answer is kUnavailable -> 503, and RetryAfterSeconds() scales
// with the measured overload so the server's `Retry-After` header tells
// clients how long to actually stay away — paired with jittered client
// backoff (util/backoff.h) this converts a retry storm into goodput.
//
// Admission hands out an RAII Ticket; its destruction releases every
// counter, so each exit path — success, serialization failure, disconnect —
// releases exactly once.
//
// The controller also carries the per-query resource envelope that admitted
// requests execute under (ExecOptions::query_timeout_ms /
// memory_budget_bytes): admission is the single place where server-wide
// quota policy turns into engine budgets.
//
// kFaultSiteAdmit (test-only injector) is probed on every Admit; a firing
// probe rejects as kUnavailable, exercising the shed-load path on demand.
#ifndef EQL_SERVER_ADMISSION_H_
#define EQL_SERVER_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/fault.h"
#include "util/status.h"

namespace eql {

class AdmissionController;

/// What a request costs the system — and the client — to refuse. Orders the
/// adaptive shed sequence: lower values are refused first.
enum class RequestClass {
  kAdhoc = 0,    ///< /query one-shot; no sunk state, cheapest to refuse
  kPrepare = 1,  ///< /prepare; compilation is deferrable
  kPrepared = 2, ///< /execute on a handle; the sunk compile makes it precious
};

/// Stable lowercase name ("adhoc", "prepare", "prepared").
const char* RequestClassName(RequestClass cls);

/// RAII admission slot: releases its global + per-client counters when
/// destroyed. Move-only; a moved-from ticket releases nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept;
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  ~AdmissionTicket();

  bool valid() const { return controller_ != nullptr; }

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller, std::string client,
                  std::string peer)
      : controller_(controller),
        client_(std::move(client)),
        peer_(std::move(peer)) {}

  AdmissionController* controller_ = nullptr;
  std::string client_;
  std::string peer_;
};

class AdmissionController {
 public:
  struct Options {
    /// Server-wide concurrent-query cap (0 = unlimited).
    uint32_t max_concurrent = 64;
    /// Per-client concurrent-query cap (0 = unlimited). Cooperative — the
    /// client key embeds the client-supplied X-EQL-Client header.
    uint32_t per_client_concurrent = 8;
    /// Per-peer (network address) concurrent-query cap (0 = unlimited).
    /// Enforced — keyed on the peer alone, immune to header variation.
    uint32_t per_peer_concurrent = 0;
    /// Engine budgets every admitted query runs under (the quota ->
    /// ExecOptions mapping); <= 0 / 0 = unlimited.
    int64_t query_timeout_ms = 30000;
    uint64_t memory_budget_bytes = 0;
    /// Adaptive shedding bound: when the sliding-window p95 of
    /// admit-to-first-byte latency exceeds this many ms, shed below the
    /// caps, cheapest class first (see header comment). 0 = fixed caps
    /// only — byte-identical admission behavior to the pre-shedding server.
    int64_t queue_delay_p95_ms = 0;
  };

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected_global = 0;   ///< 503s issued
    uint64_t rejected_client = 0;   ///< 429s issued (per-client or per-peer)
    uint32_t in_flight = 0;
    /// Adaptive sheds by refused class (all 503s, included in neither count
    /// above so the fixed-cap counters stay comparable across versions).
    uint64_t shed_adhoc = 0;
    uint64_t shed_prepare = 0;
    uint64_t shed_prepared = 0;
    /// Current sliding-window p95 of admit-to-first-byte latency (ms; 0
    /// until the window has enough samples).
    int64_t queue_delay_p95_ms = 0;
    /// The Retry-After currently suggested to shed clients (seconds).
    int retry_after_s = 1;
  };

  explicit AdmissionController(Options options, FaultInjector* fault = nullptr);

  /// Tries to admit one query for `client` arriving from `peer` (empty peer
  /// skips the per-peer gate — unit tests and non-network callers). `cls`
  /// feeds the adaptive shed order; it has no effect while the measured
  /// queue delay is under the bound (or the bound is 0).
  ///   ok                  — run it; keep the ticket alive for the duration.
  ///   kUnavailable        — server at capacity, shed by overload, or an
  ///                         injected admit fault.
  ///   kResourceExhausted  — this client or peer is over its own cap.
  Result<AdmissionTicket> Admit(const std::string& client,
                                const std::string& peer = std::string(),
                                RequestClass cls = RequestClass::kAdhoc);

  /// One admit-to-first-byte latency sample (ms), recorded by the server
  /// when a streamed response puts its first byte on the wire. Feeds the
  /// sliding window behind adaptive shedding and RetryAfterSeconds.
  void RecordQueueDelay(double delay_ms);

  /// The `Retry-After` value (seconds) the server should attach to 429/503
  /// responses right now: 1 when healthy, scaling with measured overload
  /// (p95 / bound, capped at 30) so a deeper queue keeps clients away
  /// longer. Deterministic given the recorded samples.
  int RetryAfterSeconds() const;

  const Options& options() const { return options_; }
  Stats GetStats() const;

 private:
  friend class AdmissionTicket;
  void Release(const std::string& client, const std::string& peer);
  /// Current p95 over the sample window; 0 until kMinShedSamples. mu_ held.
  int64_t QueueDelayP95Locked() const;
  int RetryAfterLocked() const;

  static constexpr size_t kDelayWindow = 128;
  static constexpr size_t kMinShedSamples = 16;

  Options options_;
  FaultInjector* fault_;  ///< not owned; may be null
  mutable std::mutex mu_;
  uint32_t in_flight_ = 0;
  std::unordered_map<std::string, uint32_t> per_client_;
  std::unordered_map<std::string, uint32_t> per_peer_;
  uint64_t admitted_ = 0;
  uint64_t rejected_global_ = 0;
  uint64_t rejected_client_ = 0;
  uint64_t shed_by_class_[3] = {0, 0, 0};
  /// Ring buffer of recent admit-to-first-byte delays (ms).
  std::vector<double> delay_window_;
  size_t delay_next_ = 0;
};

}  // namespace eql

#endif  // EQL_SERVER_ADMISSION_H_
