// Admission control for the eqld daemon: decides, before any query work,
// whether a request may run — and under what resource envelope.
//
// Three independent gates, mapped onto the two new status codes (and
// through HttpStatusForCode onto HTTP):
//
//   * a GLOBAL concurrency cap — the server is saturated, nobody gets in:
//     kUnavailable -> 503. Protects the worker pool and memory headroom.
//   * a PER-CLIENT concurrency cap — one client is hogging, only that
//     client is pushed back: kResourceExhausted -> 429. The client key is
//     whatever string the server derives per request (peer IP refined by
//     the X-EQL-Client header). Because the header is client-supplied, this
//     gate is COOPERATIVE: a client that varies its header mints fresh
//     keys and escapes it. Use it to separate well-behaved tools sharing
//     one address, not as an anti-abuse boundary.
//   * a PER-PEER concurrency cap — keyed on the peer address alone, which
//     a client cannot forge over an established TCP connection, so header
//     games cannot bypass it: kResourceExhausted -> 429. This is the
//     enforced anti-hog gate (off by default; see Options).
//
// Admission hands out an RAII Ticket; its destruction releases every
// counter, so each exit path — success, serialization failure, disconnect —
// releases exactly once.
//
// The controller also carries the per-query resource envelope that admitted
// requests execute under (ExecOptions::query_timeout_ms /
// memory_budget_bytes): admission is the single place where server-wide
// quota policy turns into engine budgets.
//
// kFaultSiteAdmit (test-only injector) is probed on every Admit; a firing
// probe rejects as kUnavailable, exercising the shed-load path on demand.
#ifndef EQL_SERVER_ADMISSION_H_
#define EQL_SERVER_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/fault.h"
#include "util/status.h"

namespace eql {

class AdmissionController;

/// RAII admission slot: releases its global + per-client counters when
/// destroyed. Move-only; a moved-from ticket releases nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept;
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  ~AdmissionTicket();

  bool valid() const { return controller_ != nullptr; }

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller, std::string client,
                  std::string peer)
      : controller_(controller),
        client_(std::move(client)),
        peer_(std::move(peer)) {}

  AdmissionController* controller_ = nullptr;
  std::string client_;
  std::string peer_;
};

class AdmissionController {
 public:
  struct Options {
    /// Server-wide concurrent-query cap (0 = unlimited).
    uint32_t max_concurrent = 64;
    /// Per-client concurrent-query cap (0 = unlimited). Cooperative — the
    /// client key embeds the client-supplied X-EQL-Client header.
    uint32_t per_client_concurrent = 8;
    /// Per-peer (network address) concurrent-query cap (0 = unlimited).
    /// Enforced — keyed on the peer alone, immune to header variation.
    uint32_t per_peer_concurrent = 0;
    /// Engine budgets every admitted query runs under (the quota ->
    /// ExecOptions mapping); <= 0 / 0 = unlimited.
    int64_t query_timeout_ms = 30000;
    uint64_t memory_budget_bytes = 0;
  };

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected_global = 0;   ///< 503s issued
    uint64_t rejected_client = 0;   ///< 429s issued (per-client or per-peer)
    uint32_t in_flight = 0;
  };

  explicit AdmissionController(Options options, FaultInjector* fault = nullptr);

  /// Tries to admit one query for `client` arriving from `peer` (empty peer
  /// skips the per-peer gate — unit tests and non-network callers).
  ///   ok                  — run it; keep the ticket alive for the duration.
  ///   kUnavailable        — server at capacity (or injected admit fault).
  ///   kResourceExhausted  — this client or peer is over its own cap.
  Result<AdmissionTicket> Admit(const std::string& client,
                                const std::string& peer = std::string());

  const Options& options() const { return options_; }
  Stats GetStats() const;

 private:
  friend class AdmissionTicket;
  void Release(const std::string& client, const std::string& peer);

  Options options_;
  FaultInjector* fault_;  ///< not owned; may be null
  mutable std::mutex mu_;
  uint32_t in_flight_ = 0;
  std::unordered_map<std::string, uint32_t> per_client_;
  std::unordered_map<std::string, uint32_t> per_peer_;
  uint64_t admitted_ = 0;
  uint64_t rejected_global_ = 0;
  uint64_t rejected_client_ = 0;
};

}  // namespace eql

#endif  // EQL_SERVER_ADMISSION_H_
