#include "server/cache.h"

namespace eql {

PreparedCache::PreparedCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Result<std::shared_ptr<const PreparedQuery>> PreparedCache::GetOrPrepare(
    const EqlEngine& engine, std::string_view query_text) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(query_text);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // keys stay in place
      return it->second->prepared;
    }
    ++misses_;
  }

  // Compile outside the lock; a racing miss for the same text compiles too,
  // and whichever insert lands second adopts the first one's entry.
  auto prepared = engine.Prepare(query_text);
  if (!prepared.ok()) return prepared.status();
  auto handle =
      std::make_shared<const PreparedQuery>(std::move(prepared).value());

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(query_text);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->prepared;
  }
  lru_.push_front(Entry{std::string(query_text), std::move(handle)});
  index_.emplace(std::string_view(lru_.front().text), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(std::string_view(lru_.back().text));
    lru_.pop_back();
    ++evictions_;
  }
  return lru_.front().prepared;
}

void PreparedCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

PreparedCache::Stats PreparedCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace eql
