// Process-wide prepared-statement cache for the eqld daemon.
//
// Keyed by the exact query text: two clients sending the same bytes share
// one compiled plan, so the parse/validate/plan front end runs once per
// distinct query instead of once per request. Entries are
// shared_ptr<const PreparedQuery> — eviction under a concurrent Execute is
// safe because the executing request holds its own reference; the evicted
// entry dies when the last in-flight use drops it. (PreparedQuery itself is
// immutable and concurrently executable, see eval/engine.h.)
//
// Eviction is plain LRU over a doubly-linked list + hash map, bounded by
// entry count: plans are small relative to the graph, and query texts — the
// keys — dominate the footprint, so a count bound is an effective byte
// bound. Telemetry (hits/misses/evictions) feeds /stats.
//
// Thread-safe. Prepare runs OUTSIDE the cache lock (compilation can be
// milliseconds); two racing misses for the same text both compile and the
// loser adopts the winner's entry, so a handle for one text is still shared
// once the race settles.
#ifndef EQL_SERVER_CACHE_H_
#define EQL_SERVER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "eval/engine.h"
#include "util/status.h"

namespace eql {

class PreparedCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;      ///< includes failed Prepares (never cached)
    uint64_t evictions = 0;
    size_t size = 0;          ///< entries currently cached
    size_t capacity = 0;
  };

  /// `capacity` = max cached entries (>= 1).
  explicit PreparedCache(size_t capacity);

  /// Returns the cached handle for `query_text`, compiling and inserting it
  /// on a miss. A failed Prepare propagates its Status and caches nothing
  /// (bad queries stay cheap to reject but are not worth a slot).
  Result<std::shared_ptr<const PreparedQuery>> GetOrPrepare(
      const EqlEngine& engine, std::string_view query_text);

  /// Drops every entry (used when the graph behind the engine is swapped;
  /// in-flight handles stay valid until released).
  void Clear();

  Stats GetStats() const;

 private:
  struct Entry {
    std::string text;  ///< owning copy of the key (list node = LRU position)
    std::shared_ptr<const PreparedQuery> prepared;
  };
  using LruList = std::list<Entry>;

  mutable std::mutex mu_;
  size_t capacity_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string_view, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace eql

#endif  // EQL_SERVER_CACHE_H_
