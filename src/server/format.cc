#include "server/format.h"

#include <cassert>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace eql {

namespace {

/// Scores print with %.17g: enough digits to round-trip a double exactly, so
/// cached vs fresh executions of the same query serialize byte-identically.
std::string ScoreToString(double score) { return StrFormat("%.17g", score); }

/// One connecting-tree cell in the text formats: "{A -l-> B, C -m-> D}" —
/// the edge rendering eql_shell has always used.
std::string TreeCellText(const Graph& g, const ResultTreeInfo& t) {
  std::string out = "{";
  for (size_t i = 0; i < t.edges.size(); ++i) {
    if (i > 0) out += ", ";
    out += g.EdgeToString(t.edges[i]);
  }
  out += "}";
  return out;
}

/// TSV cell escape: the separator, newlines and the escape char itself.
std::string TsvEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

void AppendJsonEdge(const Graph& g, EdgeId e, std::string* out) {
  *out += "{\"source\":\"";
  AppendJsonEscaped(g.NodeLabel(g.Source(e)), out);
  *out += "\",\"label\":\"";
  AppendJsonEscaped(g.EdgeLabel(e), out);
  *out += "\",\"target\":\"";
  AppendJsonEscaped(g.NodeLabel(g.Target(e)), out);
  *out += "\"}";
}

}  // namespace

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

std::optional<ResultFormat> ParseResultFormat(std::string_view name) {
  if (name == "json") return ResultFormat::kJson;
  if (name == "tsv") return ResultFormat::kTsv;
  if (name == "table") return ResultFormat::kTable;
  return std::nullopt;
}

const char* ResultFormatName(ResultFormat f) {
  switch (f) {
    case ResultFormat::kJson: return "json";
    case ResultFormat::kTsv: return "tsv";
    case ResultFormat::kTable: return "table";
  }
  return "unknown";
}

const char* ResultFormatContentType(ResultFormat f) {
  switch (f) {
    case ResultFormat::kJson: return "application/json";
    case ResultFormat::kTsv: return "text/tab-separated-values";
    case ResultFormat::kTable: return "text/plain";
  }
  return "application/octet-stream";
}

SerializingSink::SerializingSink(const Graph& g, ResultFormat format,
                                 ByteSink& out, uint64_t max_rows,
                                 FaultInjector* fault)
    : g_(g), format_(format), out_(out), max_rows_(max_rows), fault_(fault) {}

bool SerializingSink::WriteOut(std::string_view bytes) {
  if (failed_) return false;
  if (fault_ != nullptr && fault_->ShouldFail(kFaultSiteFlush)) {
    failed_ = true;
    return false;
  }
  if (!out_.Write(bytes)) failed_ = true;
  return !failed_;
}

void SerializingSink::OnSchema(const RowSchema& schema) {
  schema_ = schema;
  switch (format_) {
    case ResultFormat::kJson: {
      scratch_ = "{\"head\":{\"vars\":[";
      for (size_t c = 0; c < schema_.columns.size(); ++c) {
        if (c > 0) scratch_ += ',';
        scratch_ += '"';
        AppendJsonEscaped(schema_.columns[c], &scratch_);
        scratch_ += '"';
      }
      scratch_ += "]},\"results\":{\"bindings\":[";
      WriteOut(scratch_);
      break;
    }
    case ResultFormat::kTsv: {
      scratch_.clear();
      for (size_t c = 0; c < schema_.columns.size(); ++c) {
        if (c > 0) scratch_ += '\t';
        scratch_ += '?';
        scratch_ += TsvEscape(schema_.columns[c]);
      }
      scratch_ += '\n';
      WriteOut(scratch_);
      break;
    }
    case ResultFormat::kTable:
      break;  // the table renders whole at Finish
  }
  head_written_ = true;
}

void SerializingSink::RenderCell(const StreamRow& row, size_t c,
                                 std::string* cell) const {
  cell->clear();
  const uint32_t v = row.values[c];
  switch (schema_.kinds[c]) {
    case ColKind::kNode:
      *cell = g_.NodeLabel(v);
      break;
    case ColKind::kEdge:
      *cell = g_.EdgeToString(v);
      break;
    case ColKind::kTree:
      *cell = TreeCellText(g_, row.trees[v]);
      break;
  }
}

bool SerializingSink::OnRow(StreamRow row) {
  assert(head_written_ && "engine delivers OnSchema before any row");
  ++rows_seen_;
  if (failed_) return false;
  if (max_rows_ > 0 && rows_written_ >= max_rows_) return true;  // count only
  switch (format_) {
    case ResultFormat::kJson: {
      scratch_ = rows_written_ == 0 ? "\n{" : ",\n{";
      for (size_t c = 0; c < row.values.size(); ++c) {
        if (c > 0) scratch_ += ',';
        scratch_ += '"';
        AppendJsonEscaped(schema_.columns[c], &scratch_);
        scratch_ += "\":";
        const uint32_t v = row.values[c];
        switch (schema_.kinds[c]) {
          case ColKind::kNode:
            scratch_ += g_.IsLiteral(v) ? "{\"type\":\"literal\",\"value\":\""
                                        : "{\"type\":\"node\",\"value\":\"";
            AppendJsonEscaped(g_.NodeLabel(v), &scratch_);
            scratch_ += "\"}";
            break;
          case ColKind::kEdge:
            scratch_ += "{\"type\":\"edge\",";
            {
              std::string edge;
              AppendJsonEdge(g_, v, &edge);
              // Reuse the edge object's fields: strip its braces.
              scratch_.append(edge, 1, edge.size() - 2);
            }
            scratch_ += '}';
            break;
          case ColKind::kTree: {
            const ResultTreeInfo& t = row.trees[v];
            scratch_ += "{\"type\":\"tree\",\"root\":\"";
            AppendJsonEscaped(g_.NodeLabel(t.root), &scratch_);
            scratch_ += "\",\"score\":" + ScoreToString(t.score) +
                        ",\"edges\":[";
            for (size_t i = 0; i < t.edges.size(); ++i) {
              if (i > 0) scratch_ += ',';
              AppendJsonEdge(g_, t.edges[i], &scratch_);
            }
            scratch_ += "]}";
            break;
          }
        }
      }
      scratch_ += '}';
      if (!WriteOut(scratch_)) return false;
      break;
    }
    case ResultFormat::kTsv: {
      scratch_.clear();
      std::string cell;
      for (size_t c = 0; c < row.values.size(); ++c) {
        if (c > 0) scratch_ += '\t';
        RenderCell(row, c, &cell);
        scratch_ += TsvEscape(cell);
      }
      scratch_ += '\n';
      if (!WriteOut(scratch_)) return false;
      break;
    }
    case ResultFormat::kTable: {
      std::vector<std::string> cells(row.values.size());
      for (size_t c = 0; c < row.values.size(); ++c) {
        RenderCell(row, c, &cells[c]);
      }
      table_rows_.push_back(std::move(cells));
      break;
    }
  }
  ++rows_written_;
  return true;
}

bool SerializingSink::Finish(const FinishInfo& info) {
  assert(!finished_ && "Finish is called exactly once");
  finished_ = true;
  const uint64_t suppressed = info.more_rows + (rows_seen_ - rows_written_);
  switch (format_) {
    case ResultFormat::kJson: {
      if (!head_written_) OnSchema(RowSchema{});  // error-path safety net
      scratch_ = rows_written_ > 0 ? "\n]}" : "]}";
      scratch_ += ",\"rows\":" + std::to_string(rows_seen_ + info.more_rows);
      if (suppressed > 0) {
        scratch_ += ",\"truncated_rows\":" + std::to_string(suppressed);
      }
      scratch_ += ",\"outcome\":\"";
      scratch_ += SearchOutcomeName(info.outcome);
      scratch_ += "\"}\n";
      WriteOut(scratch_);
      break;
    }
    case ResultFormat::kTsv: {
      if (!head_written_) OnSchema(RowSchema{});
      scratch_.clear();
      if (suppressed > 0) {
        scratch_ += "# ... (" + std::to_string(suppressed) + " more rows)\n";
      }
      if (info.outcome != SearchOutcome::kOk) {
        scratch_ += StrFormat("# outcome: %s (partial results)\n",
                              SearchOutcomeName(info.outcome));
      }
      if (!scratch_.empty()) WriteOut(scratch_);
      break;
    }
    case ResultFormat::kTable: {
      std::vector<std::string> header;
      header.reserve(schema_.columns.size());
      for (const auto& col : schema_.columns) header.push_back("?" + col);
      TablePrinter printer(std::move(header));
      for (auto& row : table_rows_) printer.AddRow(std::move(row));
      table_rows_.clear();
      scratch_ = printer.Render();
      if (suppressed > 0) {
        scratch_ += "... (" + std::to_string(suppressed) + " more rows)\n";
      }
      if (info.outcome != SearchOutcome::kOk) {
        scratch_ += StrFormat("outcome: %s (partial results)\n",
                              SearchOutcomeName(info.outcome));
      }
      WriteOut(scratch_);
      break;
    }
  }
  return !failed_;
}

bool SerializeResult(const Graph& g, const QueryResult& result,
                     ResultFormat format, ByteSink& out, uint64_t max_rows,
                     FaultInjector* fault) {
  SerializingSink sink(g, format, out, max_rows, fault);
  RowSchema schema;
  schema.columns = result.table.columns();
  schema.kinds.reserve(result.table.NumColumns());
  for (size_t c = 0; c < result.table.NumColumns(); ++c) {
    schema.kinds.push_back(result.table.kind(c));
  }
  sink.OnSchema(schema);
  for (size_t r = 0; r < result.table.NumRows(); ++r) {
    StreamRow row;
    row.values = result.table.Row(r);
    // kTree cells index the result's global tree registry; streamed rows are
    // self-contained, so re-home each referenced tree into the row.
    for (size_t c = 0; c < row.values.size(); ++c) {
      if (schema.kinds[c] == ColKind::kTree) {
        row.trees.push_back(result.trees[row.values[c]]);
        row.values[c] = static_cast<uint32_t>(row.trees.size() - 1);
      }
    }
    if (!sink.OnRow(std::move(row))) break;
  }
  return sink.Finish(FinishInfo{result.outcome, 0});
}

}  // namespace eql
