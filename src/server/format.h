// Result serialization: the wire formats shared by the eqld daemon and
// eql_shell (--format). Three formats over one cell-rendering core:
//
//   * kJson  — SPARQL-results-style JSON: {"head":{"vars":[...]},"results":
//              {"bindings":[{var:{"type":...,"value":...},...},...]},
//              "rows":N,"outcome":"ok"}. Nodes render as type "node" (or
//              "literal"), edges as {"type":"edge","source","label",
//              "target"}, connecting trees as {"type":"tree","root","score",
//              "edges":[...]}. Emitted incrementally, one binding per row.
//   * kTsv   — a header line of ?vars, then one escaped (\t \n \\) cell per
//              column. Emitted incrementally.
//   * kTable — the aligned human table of util/table_printer. Rendering
//              needs every column width, so rows BUFFER until Finish — use
//              json/tsv when memory-proportional-to-result matters.
//
// Determinism contract: serialization is a pure function of the rows, the
// schema and the finish info — no clocks, no pointers, no locale. That is
// what lets tests pin byte-identity between an HTTP chunked body, an
// in-process Cursor drained through the same serializer, and a cached vs
// freshly-prepared execution.
//
// All output flows through a ByteSink whose Write may fail (a closed socket,
// a full pipe, an armed kFaultSiteFlush). A failed write makes the
// serializer report failure from OnRow — cancelling a streaming execution —
// and everything already written is a well-formed prefix: whole rows only,
// never a torn cell (each row is staged in one buffer and written with one
// call).
#ifndef EQL_SERVER_FORMAT_H_
#define EQL_SERVER_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ctp/stats.h"
#include "eval/engine.h"
#include "eval/sink.h"
#include "graph/graph.h"
#include "util/fault.h"

namespace eql {

enum class ResultFormat : uint8_t { kJson, kTsv, kTable };

/// Parses "json" | "tsv" | "table"; nullopt otherwise.
std::optional<ResultFormat> ParseResultFormat(std::string_view name);
const char* ResultFormatName(ResultFormat f);
/// The Content-Type eqld serves the format under.
const char* ResultFormatContentType(ResultFormat f);

/// Byte output the serializers write into. Write returns false on failure;
/// after a failure the sink stays failed (writers stop on first false).
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual bool Write(std::string_view bytes) = 0;
};

/// Appends into a std::string; never fails.
class StringByteSink : public ByteSink {
 public:
  bool Write(std::string_view bytes) override {
    out.append(bytes);
    return true;
  }
  std::string out;
};

/// fwrite to a FILE* (stdout for the shell); fails when fwrite does.
class FileByteSink : public ByteSink {
 public:
  explicit FileByteSink(std::FILE* f) : f_(f) {}
  bool Write(std::string_view bytes) override {
    return std::fwrite(bytes.data(), 1, bytes.size(), f_) == bytes.size();
  }

 private:
  std::FILE* f_;
};

/// What Finish appends after the last row. Deliberately free of timings and
/// machine-dependent numbers so output stays byte-deterministic; `more_rows`
/// reports rows the caller truncated away (eql_shell --max-rows).
struct FinishInfo {
  SearchOutcome outcome = SearchOutcome::kOk;
  uint64_t more_rows = 0;
};

/// A ResultSink that serializes every row into `out` as it arrives (json and
/// tsv incrementally; table buffers, see the file comment). Call Finish
/// exactly once after the execution to complete the document. `max_rows`
/// > 0 serializes only the first max_rows rows but keeps counting — the
/// stream is NOT stopped (pass the count of suppressed rows to FinishInfo to
/// report the truncation); 0 = serialize everything.
///
/// `fault` (test-only, may be null) probes kFaultSiteFlush before every
/// ByteSink write; a firing probe behaves exactly like the sink failing.
class SerializingSink : public ResultSink {
 public:
  SerializingSink(const Graph& g, ResultFormat format, ByteSink& out,
                  uint64_t max_rows = 0, FaultInjector* fault = nullptr);

  void OnSchema(const RowSchema& schema) override;
  /// Serializes the row; false once a write failed (stopping the execution).
  bool OnRow(StreamRow row) override;

  /// Completes the document (closing brackets / table render / truncation
  /// note). Returns false when any write — now or earlier — failed.
  bool Finish(const FinishInfo& info);

  uint64_t rows_seen() const { return rows_seen_; }
  bool write_failed() const { return failed_; }

 private:
  bool WriteOut(std::string_view bytes);
  /// Renders row cell c into `cell` (the format's text form of the value).
  void RenderCell(const StreamRow& row, size_t c, std::string* cell) const;

  const Graph& g_;
  ResultFormat format_;
  ByteSink& out_;
  uint64_t max_rows_;
  FaultInjector* fault_;
  RowSchema schema_;
  bool head_written_ = false;
  bool failed_ = false;
  bool finished_ = false;
  uint64_t rows_seen_ = 0;
  uint64_t rows_written_ = 0;
  std::vector<std::vector<std::string>> table_rows_;  ///< kTable buffer
  std::string scratch_;
};

/// Serializes a materialized QueryResult table (kTree cells index
/// result.trees). For CONNECT-only queries this is byte-identical to
/// streaming the same execution through a SerializingSink — both paths share
/// the row-rendering core and the engine pins the row orders equal. The
/// outcome in FinishInfo-position is taken from `result`; `max_rows` as
/// above. Returns false when a write failed.
bool SerializeResult(const Graph& g, const QueryResult& result,
                     ResultFormat format, ByteSink& out, uint64_t max_rows = 0,
                     FaultInjector* fault = nullptr);

/// Appends the JSON string escape of `s` (quotes not included).
void AppendJsonEscaped(std::string_view s, std::string* out);

}  // namespace eql

#endif  // EQL_SERVER_FORMAT_H_
