#include "server/governor.h"

#include <algorithm>

namespace eql {

const char* PressureLevelName(PressureLevel level) {
  switch (level) {
    case PressureLevel::kNominal:
      return "nominal";
    case PressureLevel::kElevated:
      return "elevated";
    case PressureLevel::kCritical:
      return "critical";
  }
  return "unknown";
}

MemoryLease::MemoryLease(MemoryLease&& other) noexcept
    : governor_(other.governor_),
      client_(std::move(other.client_)),
      bytes_(other.bytes_) {
  other.governor_ = nullptr;
  other.bytes_ = 0;
}

MemoryLease& MemoryLease::operator=(MemoryLease&& other) noexcept {
  if (this != &other) {
    if (governor_ != nullptr) governor_->Release(client_, bytes_);
    governor_ = other.governor_;
    client_ = std::move(other.client_);
    bytes_ = other.bytes_;
    other.governor_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

MemoryLease::~MemoryLease() {
  if (governor_ != nullptr) governor_->Release(client_, bytes_);
}

ResourceGovernor::ResourceGovernor(Options options) : options_(options) {}

PressureLevel ResourceGovernor::PressureLocked() const {
  if (options_.total_budget_bytes == 0) return PressureLevel::kNominal;
  const double frac = static_cast<double>(leased_) /
                      static_cast<double>(options_.total_budget_bytes);
  if (frac >= options_.critical_fraction) return PressureLevel::kCritical;
  if (frac >= options_.elevated_fraction) return PressureLevel::kElevated;
  return PressureLevel::kNominal;
}

PressureLevel ResourceGovernor::pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return PressureLocked();
}

ResourceGovernor::Quota ResourceGovernor::EffectiveQuota(
    int64_t base_timeout_ms, uint64_t base_budget_bytes) const {
  Quota q;
  q.query_timeout_ms = base_timeout_ms;
  q.memory_budget_bytes = base_budget_bytes;
  if (!enabled()) return q;
  // An unlimited per-query budget is incompatible with a bounded pool: the
  // governor substitutes its default lease size.
  if (q.memory_budget_bytes == 0) q.memory_budget_bytes = options_.default_lease_bytes;
  int shift = 0;
  switch (pressure()) {
    case PressureLevel::kNominal:
      shift = 0;
      break;
    case PressureLevel::kElevated:
      shift = 1;  // halve
      break;
    case PressureLevel::kCritical:
      shift = 2;  // quarter
      break;
  }
  if (shift > 0) {
    if (q.query_timeout_ms > 0) {
      q.query_timeout_ms = std::max<int64_t>(q.query_timeout_ms >> shift, 100);
    }
    q.memory_budget_bytes =
        std::max<uint64_t>(q.memory_budget_bytes >> shift, options_.min_lease_bytes);
  }
  return q;
}

Result<MemoryLease> ResourceGovernor::Acquire(const std::string& client,
                                              uint64_t want_bytes) {
  if (!enabled()) {
    // Pass-through: the caller's budget flows to the engine unchanged and
    // nothing is accounted — governed-off behavior is byte-identical to a
    // governor-less build.
    return MemoryLease(nullptr, std::string(), want_bytes);
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t total = options_.total_budget_bytes;
  const uint64_t headroom = total > leased_ ? total - leased_ : 0;
  if (headroom < options_.min_lease_bytes) {
    ++rejected_pool_;
    return Status::Unavailable(
        "memory pool exhausted (" + std::to_string(leased_) + " of " +
        std::to_string(total) + " bytes leased); retry later");
  }
  const auto client_share =
      static_cast<uint64_t>(options_.max_client_fraction *
                            static_cast<double>(total));
  const uint64_t client_held = per_client_.count(client) != 0
                                   ? per_client_.at(client)
                                   : 0;
  const uint64_t client_room =
      client_share > client_held ? client_share - client_held : 0;
  if (client_room < options_.min_lease_bytes) {
    ++rejected_client_;
    return Status::ResourceExhausted(
        "client '" + client + "' holds " + std::to_string(client_held) +
        " bytes of a " + std::to_string(client_share) +
        "-byte aggregate share; release running queries or retry later");
  }
  uint64_t grant = want_bytes == 0 ? options_.default_lease_bytes : want_bytes;
  grant = std::min({grant, headroom, client_room});
  if (grant < want_bytes || (want_bytes == 0 && grant < options_.default_lease_bytes)) {
    ++tightened_;
  }
  leased_ += grant;
  per_client_[client] += grant;
  ++active_leases_;
  ++granted_;
  return MemoryLease(this, client, grant);
}

void ResourceGovernor::Release(const std::string& client, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  leased_ = leased_ > bytes ? leased_ - bytes : 0;
  --active_leases_;
  auto it = per_client_.find(client);
  if (it != per_client_.end()) {
    it->second = it->second > bytes ? it->second - bytes : 0;
    if (it->second == 0) per_client_.erase(it);
  }
}

ResourceGovernor::Stats ResourceGovernor::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.total_budget_bytes = options_.total_budget_bytes;
  s.leased_bytes = leased_;
  s.active_leases = active_leases_;
  s.clients_with_leases = static_cast<uint32_t>(per_client_.size());
  s.granted = granted_;
  s.tightened = tightened_;
  s.rejected_pool = rejected_pool_;
  s.rejected_client = rejected_client_;
  s.pressure = PressureLocked();
  return s;
}

}  // namespace eql
