// Process-wide resource governor for the eqld daemon.
//
// Fixed concurrency caps (server/admission.h) bound HOW MANY queries run,
// but connection-search evaluation is expensive and hard to bound a priori:
// a handful of admitted-but-heavy queries can exhaust process memory while
// every cap still reports healthy. The governor closes that gap by making
// memory a first-class admitted resource:
//
//   * one GLOBAL byte budget for all query execution in the process;
//   * every admitted query takes an RAII MemoryLease from it, and the lease
//     is what becomes the engine's per-query budget
//     (ExecOptions::memory_budget_bytes) — so the sum of what running
//     queries may allocate can never exceed the pool;
//   * leases are accounted PER CLIENT in aggregate, so one client cannot
//     hold the whole pool even when each of its queries is individually
//     modest (the ROADMAP item-1 "per-client memory accounting" gap);
//   * the fraction of the pool currently leased defines a PRESSURE LEVEL
//     (nominal / elevated / critical). Under pressure the governor
//     progressively TIGHTENS the default budgets handed to new admits —
//     smaller memory leases, shorter timeouts — instead of failing
//     cliff-style: degradation is gradual and every admitted query still
//     completes with a well-formed (possibly partial) result, because a
//     budget hit is an engine *outcome*, not an error (eval/engine.h
//     "Failure semantics").
//
// Rejection still exists as the last step: when even the minimum lease
// cannot be granted the caller gets kUnavailable (pool exhausted — anyone
// would be refused) or kResourceExhausted (this client's aggregate share is
// spent — others would still be served), mapping onto 503/429 like
// admission's own gates.
//
// GOVERNED-OFF INVARIANT: with total_budget_bytes == 0 (the default) every
// Acquire succeeds with a pass-through lease, EffectiveQuota returns its
// inputs untouched, and pressure is permanently nominal — byte-identical
// server behavior to a build without a governor.
//
// Thread-safe; one instance per server.
#ifndef EQL_SERVER_GOVERNOR_H_
#define EQL_SERVER_GOVERNOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace eql {

/// How much of the global pool is leased out right now.
enum class PressureLevel {
  kNominal = 0,   ///< plenty of headroom; default budgets apply
  kElevated = 1,  ///< pool half-committed; new admits get tightened budgets
  kCritical = 2,  ///< pool nearly spent; new admits get minimum budgets
};

/// Stable lowercase name ("nominal", "elevated", "critical") for /stats.
const char* PressureLevelName(PressureLevel level);

class ResourceGovernor;

/// RAII slice of the global memory pool backing one query's engine budget.
/// Releasing (destruction) returns the bytes to the pool and the client's
/// aggregate. Move-only; a moved-from / default lease releases nothing.
class MemoryLease {
 public:
  MemoryLease() = default;
  MemoryLease(MemoryLease&& other) noexcept;
  MemoryLease& operator=(MemoryLease&& other) noexcept;
  ~MemoryLease();

  /// The engine budget this lease grants (0 on a pass-through lease from a
  /// disabled governor whose caller had no base budget = unlimited).
  uint64_t bytes() const { return bytes_; }

 private:
  friend class ResourceGovernor;
  MemoryLease(ResourceGovernor* governor, std::string client, uint64_t bytes)
      : governor_(governor), client_(std::move(client)), bytes_(bytes) {}

  ResourceGovernor* governor_ = nullptr;  ///< null = inert (disabled/moved)
  std::string client_;
  uint64_t bytes_ = 0;
};

class ResourceGovernor {
 public:
  struct Options {
    /// Global byte budget for all concurrently-executing queries.
    /// 0 = governor disabled (pass-through, see header comment).
    uint64_t total_budget_bytes = 0;
    /// Lease granted to a query whose quota requests no specific budget
    /// (before pressure tightening / headroom clamping).
    uint64_t default_lease_bytes = 64ull << 20;
    /// Largest fraction of the pool one client may hold in aggregate.
    double max_client_fraction = 0.5;
    /// Leased-fraction thresholds for the pressure levels.
    double elevated_fraction = 0.5;
    double critical_fraction = 0.8;
    /// Smallest useful lease: below this the governor rejects rather than
    /// admitting a query that would hit its budget before doing any work.
    uint64_t min_lease_bytes = 1ull << 20;
  };

  /// Pressure-shaped per-query budgets for one admit.
  struct Quota {
    int64_t query_timeout_ms = 0;     ///< <= 0 = none
    uint64_t memory_budget_bytes = 0; ///< 0 = unlimited (disabled governor)
  };

  struct Stats {
    uint64_t total_budget_bytes = 0;
    uint64_t leased_bytes = 0;
    uint32_t active_leases = 0;
    uint32_t clients_with_leases = 0;
    uint64_t granted = 0;    ///< leases handed out since start
    uint64_t tightened = 0;  ///< grants shaped below request by pressure/headroom
    uint64_t rejected_pool = 0;    ///< kUnavailable (pool exhausted)
    uint64_t rejected_client = 0;  ///< kResourceExhausted (client share spent)
    PressureLevel pressure = PressureLevel::kNominal;
  };

  explicit ResourceGovernor(Options options);

  bool enabled() const { return options_.total_budget_bytes > 0; }

  /// Shapes the base per-query quota by current pressure: elevated halves
  /// the timeout and memory budget of NEW admits, critical quarters them
  /// (already-running queries keep what they leased). With the governor
  /// disabled the inputs come back untouched. A base memory budget of 0
  /// (unlimited) becomes default_lease_bytes under an enabled governor —
  /// unlimited per-query allocation is exactly what a global pool exists to
  /// prevent.
  Quota EffectiveQuota(int64_t base_timeout_ms,
                       uint64_t base_budget_bytes) const;

  /// Leases `want_bytes` (a Quota::memory_budget_bytes; 0 on a disabled
  /// governor = pass-through) for `client`, clamped down to the pool
  /// headroom and the client's remaining aggregate share. Grants smaller
  /// leases under pressure rather than refusing (cliff-free degradation);
  /// refuses only below min_lease_bytes:
  ///   kUnavailable       — the pool is exhausted; nobody would be served.
  ///   kResourceExhausted — this client's aggregate share is spent.
  Result<MemoryLease> Acquire(const std::string& client, uint64_t want_bytes);

  PressureLevel pressure() const;
  const Options& options() const { return options_; }
  Stats GetStats() const;

 private:
  friend class MemoryLease;
  void Release(const std::string& client, uint64_t bytes);
  PressureLevel PressureLocked() const;

  Options options_;
  mutable std::mutex mu_;
  uint64_t leased_ = 0;
  std::unordered_map<std::string, uint64_t> per_client_;
  uint32_t active_leases_ = 0;
  uint64_t granted_ = 0;
  uint64_t tightened_ = 0;
  uint64_t rejected_pool_ = 0;
  uint64_t rejected_client_ = 0;
};

}  // namespace eql

#endif  // EQL_SERVER_GOVERNOR_H_
