#include "server/http.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace eql {

namespace {

std::string LowerCase(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// recv() more bytes into *buffer. Returns the count read, 0 on orderly EOF,
/// -1 on error, -2 on poll timeout (no data within timeout_ms).
int ReadMore(int fd, std::string* buffer, int timeout_ms) {
  struct pollfd pfd = {fd, POLLIN, 0};
  int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr == 0) return -2;
  if (pr < 0) return errno == EINTR ? -2 : -1;
  char tmp[16 * 1024];
  ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
  if (n < 0) return (errno == EAGAIN || errno == EINTR) ? -2 : -1;
  if (n == 0) return 0;
  buffer->append(tmp, static_cast<size_t>(n));
  return static_cast<int>(n);
}

bool SendAll(int fd, std::string_view bytes,
             const std::atomic<bool>* stop = nullptr) {
  size_t off = 0;
  while (off < bytes.size()) {
    // With a stop flag the send must stay interruptible: MSG_DONTWAIT so a
    // full socket buffer returns EAGAIN instead of parking the thread in
    // the kernel, then poll with a bounded interval and re-check the flag.
    // A peer that stopped reading can otherwise pin this thread in ::send
    // indefinitely and hang the server's shutdown join.
    const int flags = MSG_NOSIGNAL | (stop != nullptr ? MSG_DONTWAIT : 0);
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (stop != nullptr && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (stop->load(std::memory_order_relaxed)) return false;
        pollfd pfd = {fd, POLLOUT, 0};
        (void)::poll(&pfd, 1, 100);
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string PeerIp(int fd) {
  sockaddr_storage addr;
  socklen_t len = sizeof addr;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "unknown";
  }
  char buf[INET6_ADDRSTRLEN] = {0};
  if (addr.ss_family == AF_INET) {
    auto* in = reinterpret_cast<sockaddr_in*>(&addr);
    ::inet_ntop(AF_INET, &in->sin_addr, buf, sizeof buf);
  } else if (addr.ss_family == AF_INET6) {
    auto* in6 = reinterpret_cast<sockaddr_in6*>(&addr);
    ::inet_ntop(AF_INET6, &in6->sin6_addr, buf, sizeof buf);
  }
  return buf[0] != '\0' ? buf : "unknown";
}

/// Parses the query-string part of a target (already past '?').
void ParseQueryString(std::string_view qs,
                      std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = 0;
  while (pos <= qs.size()) {
    size_t amp = qs.find('&', pos);
    if (amp == std::string_view::npos) amp = qs.size();
    std::string_view pair = qs.substr(pos, amp - pos);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out->emplace_back(UrlDecode(pair), "");
      } else {
        out->emplace_back(UrlDecode(pair.substr(0, eq)),
                          UrlDecode(pair.substr(eq + 1)));
      }
    }
    pos = amp + 1;
  }
}

/// Parses "<hex>\r\n" chunk-size lines (chunk extensions after ';' ignored).
bool ParseChunkSize(std::string_view line, size_t* out) {
  size_t semi = line.find(';');
  if (semi != std::string_view::npos) line = line.substr(0, semi);
  if (line.empty()) return false;
  size_t value = 0;
  for (char c : line) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    if (value > (SIZE_MAX >> 4)) return false;
    value = (value << 4) | static_cast<size_t>(d);
  }
  *out = value;
  return true;
}

}  // namespace

const std::string* HttpRequest::QueryParam(std::string_view key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string* HttpRequest::Header(std::string_view lowercase_name) const {
  auto it = headers.find(std::string(lowercase_name));
  return it == headers.end() ? nullptr : &it->second;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && std::isxdigit((unsigned char)s[i + 1]) &&
               std::isxdigit((unsigned char)s[i + 2])) {
      auto hex = [](char c) {
        return c <= '9' ? c - '0' : (std::tolower((unsigned char)c) - 'a' + 10);
      };
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

int RetryAfterSeconds(const HttpResponse& response) {
  auto it = response.headers.find("retry-after");
  if (it == response.headers.end() || it->second.empty()) return -1;
  int seconds = 0;
  for (char c : it->second) {
    if (c < '0' || c > '9') return -1;  // HTTP-date form: not emitted by eqld
    seconds = seconds * 10 + (c - '0');
    if (seconds > 86400) return 86400;
  }
  return seconds;
}

HttpConnection::HttpConnection(int fd) : fd_(fd), peer_ip_(PeerIp(fd)) {}

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

Status HttpConnection::ReadRequest(HttpRequest* out, const HttpLimits& limits,
                                   const std::atomic<bool>* stop,
                                   int poll_interval_ms) {
  const auto stopping = [stop] {
    return stop != nullptr && stop->load(std::memory_order_relaxed);
  };
  // The read deadline arms once the first byte of this request is buffered:
  // an idle keep-alive connection may park indefinitely (only `stop` ends
  // it), but a request that has started must complete within the budget —
  // a half-sent head or body must not hold a connection slot forever.
  std::chrono::steady_clock::time_point deadline{};
  const auto arm_deadline = [&] {
    if (deadline == std::chrono::steady_clock::time_point{} &&
        !buffer_.empty() && limits.max_request_read_ms > 0) {
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(limits.max_request_read_ms);
    }
  };
  const auto expired = [&] {
    return deadline != std::chrono::steady_clock::time_point{} &&
           std::chrono::steady_clock::now() >= deadline;
  };
  arm_deadline();  // pipelined bytes from the previous read count as a start

  // ---- head: request line + headers, terminated by CRLFCRLF ----
  size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (buffer_.size() > limits.max_head_bytes) {
      return Status::OutOfRange("request head exceeds " +
                                std::to_string(limits.max_head_bytes) + " bytes");
    }
    if (stopping()) {
      return Status::Unavailable(buffer_.empty()
                                     ? "server shutting down"
                                     : "server shutting down mid-request");
    }
    if (expired()) {
      return Status::Timeout(
          "request head not received within " +
          std::to_string(limits.max_request_read_ms) + " ms");
    }
    int n = ReadMore(fd_, &buffer_, poll_interval_ms);
    if (n == 0) {
      return buffer_.empty()
                 ? Status::Unavailable("connection closed")
                 : Status::InvalidArgument("connection closed mid-request");
    }
    if (n == -1) return Status::InvalidArgument("recv failed");
    if (n > 0) arm_deadline();
    // n == -2: poll interval elapsed; loop re-checks stop and the deadline.
  }
  std::string_view head(buffer_.data(), head_end);

  // Request line: METHOD SP target SP HTTP/x.y
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  std::string_view line = head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  out->method = std::string(line.substr(0, sp1));
  out->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1") {
    return Status::Unimplemented("only HTTP/1.1 is served");
  }

  // Headers.
  out->headers.clear();
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view h = head.substr(pos, eol - pos);
    size_t colon = h.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed header line");
    }
    std::string name = LowerCase(h.substr(0, colon));
    std::string value(Trim(h.substr(colon + 1)));
    auto it = out->headers.find(name);
    if (it == out->headers.end()) {
      out->headers.emplace(std::move(name), std::move(value));
    } else if (name == "content-length" && it->second != value) {
      // Conflicting repeated Content-Length is a request-smuggling vector
      // behind a proxy (RFC 9112 §6.3): reject, never last-win.
      return Status::InvalidArgument("conflicting content-length headers");
    } else {
      it->second = std::move(value);  // other repeats keep last-wins
    }
    pos = eol + 2;
  }
  buffer_.erase(0, head_end + 4);

  // Target -> path + decoded query params.
  out->query.clear();
  size_t qmark = out->target.find('?');
  if (qmark == std::string::npos) {
    out->path = UrlDecode(out->target);
  } else {
    out->path = UrlDecode(std::string_view(out->target).substr(0, qmark));
    ParseQueryString(std::string_view(out->target).substr(qmark + 1),
                     &out->query);
  }

  // Body: Content-Length only.
  out->body.clear();
  if (const std::string* te = out->Header("transfer-encoding"); te != nullptr) {
    return Status::Unimplemented("chunked request bodies are not supported");
  }
  if (const std::string* cl = out->Header("content-length"); cl != nullptr) {
    char* end = nullptr;
    unsigned long long want = std::strtoull(cl->c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad content-length");
    }
    if (want > limits.max_body_bytes) {
      return Status::OutOfRange("request body exceeds " +
                                std::to_string(limits.max_body_bytes) + " bytes");
    }
    while (buffer_.size() < want) {
      if (stopping()) {
        return Status::Unavailable("server shutting down mid-request");
      }
      if (expired()) {
        return Status::Timeout(
            "request body not received within " +
            std::to_string(limits.max_request_read_ms) + " ms");
      }
      int n = ReadMore(fd_, &buffer_, poll_interval_ms);
      if (n == 0) return Status::InvalidArgument("connection closed mid-body");
      if (n == -1) return Status::InvalidArgument("recv failed");
      // n == -2: poll interval elapsed; re-check stop and the deadline.
    }
    out->body = buffer_.substr(0, want);
    buffer_.erase(0, want);
  }
  return Status::Ok();
}

bool HttpConnection::WriteAll(std::string_view bytes) {
  return SendAll(fd_, bytes, stop_);
}

bool HttpConnection::WriteResponse(int status, std::string_view content_type,
                                   std::string_view body,
                                   const std::vector<std::string>& extra_headers,
                                   bool keep_alive) {
  std::string head = StrFormat("HTTP/1.1 %d %s\r\n", status,
                               HttpReasonPhrase(status));
  head += "Content-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& h : extra_headers) {
    head += h;
    head += "\r\n";
  }
  head += "\r\n";
  return WriteAll(head) && WriteAll(body);
}

bool HttpConnection::BeginChunked(int status, std::string_view content_type,
                                  const std::vector<std::string>& extra_headers,
                                  bool keep_alive) {
  std::string head = StrFormat("HTTP/1.1 %d %s\r\n", status,
                               HttpReasonPhrase(status));
  head += "Content-Type: ";
  head += content_type;
  head += "\r\nTransfer-Encoding: chunked\r\n";
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& h : extra_headers) {
    head += h;
    head += "\r\n";
  }
  head += "\r\n";
  return WriteAll(head);
}

bool HttpConnection::WriteChunk(std::string_view bytes) {
  if (bytes.empty()) return true;
  std::string frame = StrFormat("%zx\r\n", bytes.size());
  frame.append(bytes);
  frame += "\r\n";
  return WriteAll(frame);
}

bool HttpConnection::EndChunked() { return WriteAll("0\r\n\r\n"); }

// ---- client ----------------------------------------------------------------

Result<int> TcpConnect(const std::string& host, uint16_t port) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::Unavailable("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return Status::Unavailable("connect " + host + ":" + std::to_string(port) +
                               " failed");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Status ReadHttpResponse(int fd, std::string* buffer, HttpResponse* out,
                        int idle_timeout_ms) {
  // Head.
  size_t head_end;
  while ((head_end = buffer->find("\r\n\r\n")) == std::string::npos) {
    int n = ReadMore(fd, buffer, idle_timeout_ms);
    if (n == 0) return Status::Unavailable("connection closed before response");
    if (n < 0) return Status::Unavailable("read failed waiting for response");
  }
  std::string_view head(buffer->data(), head_end);
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  std::string_view line = head.substr(0, line_end);
  if (line.size() < 12 || line.substr(0, 5) != "HTTP/") {
    return Status::InvalidArgument("malformed status line");
  }
  out->status = std::atoi(std::string(line.substr(9, 3)).c_str());
  out->headers.clear();
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view h = head.substr(pos, eol - pos);
    size_t colon = h.find(':');
    if (colon != std::string_view::npos) {
      out->headers[LowerCase(h.substr(0, colon))] =
          std::string(Trim(h.substr(colon + 1)));
    }
    pos = eol + 2;
  }
  buffer->erase(0, head_end + 4);

  out->body.clear();
  auto te = out->headers.find("transfer-encoding");
  if (te != out->headers.end() && LowerCase(te->second) == "chunked") {
    for (;;) {
      size_t eol;
      while ((eol = buffer->find("\r\n")) == std::string::npos) {
        int n = ReadMore(fd, buffer, idle_timeout_ms);
        if (n <= 0) return Status::Unavailable("truncated chunked body");
      }
      size_t chunk = 0;
      if (!ParseChunkSize(std::string_view(*buffer).substr(0, eol), &chunk)) {
        return Status::InvalidArgument("bad chunk size");
      }
      buffer->erase(0, eol + 2);
      while (buffer->size() < chunk + 2) {
        int n = ReadMore(fd, buffer, idle_timeout_ms);
        if (n <= 0) return Status::Unavailable("truncated chunk");
      }
      out->body.append(*buffer, 0, chunk);
      buffer->erase(0, chunk + 2);  // data + trailing CRLF
      if (chunk == 0) break;
    }
    return Status::Ok();
  }
  auto cl = out->headers.find("content-length");
  if (cl != out->headers.end()) {
    size_t want = static_cast<size_t>(std::strtoull(cl->second.c_str(), nullptr, 10));
    while (buffer->size() < want) {
      int n = ReadMore(fd, buffer, idle_timeout_ms);
      if (n <= 0) return Status::Unavailable("truncated body");
    }
    out->body = buffer->substr(0, want);
    buffer->erase(0, want);
    return Status::Ok();
  }
  // Neither length nor chunking: read to EOF (Connection: close responses).
  for (;;) {
    int n = ReadMore(fd, buffer, idle_timeout_ms);
    if (n == 0) break;
    if (n < 0) return Status::Unavailable("read failed");
  }
  out->body = std::move(*buffer);
  buffer->clear();
  return Status::Ok();
}

namespace {

std::string BuildRequest(const std::string& method, const std::string& target,
                         const std::string& body,
                         const std::vector<std::string>& headers,
                         bool keep_alive) {
  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: eqld\r\n";
  req += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  if (!body.empty() || method == "POST") {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  for (const auto& h : headers) {
    req += h;
    req += "\r\n";
  }
  req += "\r\n";
  req += body;
  return req;
}

}  // namespace

Result<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               const std::vector<std::string>& headers) {
  auto fd = TcpConnect(host, port);
  if (!fd.ok()) return fd.status();
  std::string req = BuildRequest(method, target, body, headers,
                                 /*keep_alive=*/false);
  if (!SendAll(*fd, req)) {
    ::close(*fd);
    return Status::Unavailable("send failed");
  }
  HttpResponse resp;
  std::string buffer;
  Status st = ReadHttpResponse(*fd, &buffer, &resp);
  ::close(*fd);
  if (!st.ok()) return st;
  return resp;
}

Result<HttpClientConnection> HttpClientConnection::Connect(
    const std::string& host, uint16_t port) {
  auto fd = TcpConnect(host, port);
  if (!fd.ok()) return fd.status();
  return HttpClientConnection(*fd);
}

HttpClientConnection::HttpClientConnection(HttpClientConnection&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

HttpClientConnection& HttpClientConnection::operator=(
    HttpClientConnection&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

HttpClientConnection::~HttpClientConnection() {
  if (fd_ >= 0) ::close(fd_);
}

Result<HttpResponse> HttpClientConnection::Request(
    const std::string& method, const std::string& target,
    const std::string& body, const std::vector<std::string>& headers) {
  if (fd_ < 0) return Status::Unavailable("connection is closed");
  std::string req = BuildRequest(method, target, body, headers,
                                 /*keep_alive=*/true);
  if (!SendAll(fd_, req)) return Status::Unavailable("send failed");
  HttpResponse resp;
  EQL_RETURN_IF_ERROR(ReadHttpResponse(fd_, &buffer_, &resp));
  return resp;
}

}  // namespace eql
