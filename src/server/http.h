// Minimal HTTP/1.1 plumbing for the eqld daemon: server-side request
// parsing, response writing (fixed-length and chunked), and a small blocking
// client used by the tests and the load generator.
//
// Scope, deliberately: HTTP/1.1 only (other versions get 505), GET/POST,
// Content-Length request bodies (no request chunking), response chunking for
// streamed results, keep-alive with Connection: close honored. No TLS, no
// compression, no HTTP/2 — see docs/server.md for what remains open.
//
// All socket writes use MSG_NOSIGNAL: a peer that disappeared turns into a
// failed write (EPIPE), never a SIGPIPE — the failed write is precisely the
// signal the server uses to cancel the query behind a dead connection.
#ifndef EQL_SERVER_HTTP_H_
#define EQL_SERVER_HTTP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace eql {

/// One parsed request. Header names are lowercased; query-string keys and
/// values are percent-decoded ('+' decodes to space).
struct HttpRequest {
  std::string method;  ///< "GET" / "POST"
  std::string target;  ///< raw request target, e.g. "/query?format=json"
  std::string path;    ///< target up to '?', percent-decoded
  std::vector<std::pair<std::string, std::string>> query;  ///< in order
  std::map<std::string, std::string> headers;
  std::string body;

  /// First query-string value for `key`, or nullptr.
  const std::string* QueryParam(std::string_view key) const;
  const std::string* Header(std::string_view lowercase_name) const;
};

/// Hard limits the parser enforces (408 / 413 / 431-style rejections).
struct HttpLimits {
  size_t max_head_bytes = 64 * 1024;       ///< request line + headers
  size_t max_body_bytes = 4 * 1024 * 1024;
  /// Overall deadline for receiving one request, armed when its first byte
  /// is buffered (an idle keep-alive connection may park indefinitely). A
  /// request that stalls past it — partial head or partial body, the
  /// slowloris shape — gets kTimeout (the server answers 408 and closes,
  /// releasing the connection slot). 0 disables the deadline.
  int max_request_read_ms = 30000;
};

/// Buffered reader over a connected socket. ReadRequest blocks until a full
/// request arrives, `stop` is observed (re-checked every `poll_interval_ms`
/// — the shutdown-drain path, honored whether the connection is idle or
/// mid-request), or the request stalls past HttpLimits::max_request_read_ms.
/// Implemented with poll + recv; one reader per connection thread.
class HttpConnection {
 public:
  /// Takes ownership of `fd` (closed by the destructor).
  explicit HttpConnection(int fd);
  ~HttpConnection();
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Parses the next request off the connection.
  ///   kOk               — *out is filled.
  ///   kUnavailable      — clean EOF before any request byte, or `stop`
  ///                       observed (idle or mid-request): the connection
  ///                       is done.
  ///   kTimeout          — a started request stalled past
  ///                       limits.max_request_read_ms (408 and close).
  ///   kInvalidArgument  — malformed request (caller answers 400 and closes).
  ///   kOutOfRange       — a limit was exceeded (431/413 and close).
  ///   kUnimplemented    — unsupported transfer-encoding / HTTP version.
  Status ReadRequest(HttpRequest* out, const HttpLimits& limits,
                     const std::atomic<bool>* stop = nullptr,
                     int poll_interval_ms = 200);

  /// Writes a complete fixed-length response. Returns false on write error.
  bool WriteResponse(int status, std::string_view content_type,
                     std::string_view body,
                     const std::vector<std::string>& extra_headers = {},
                     bool keep_alive = true);

  /// Starts a chunked response (headers + "Transfer-Encoding: chunked").
  bool BeginChunked(int status, std::string_view content_type,
                    const std::vector<std::string>& extra_headers = {},
                    bool keep_alive = true);
  /// One chunk; empty `bytes` is skipped (an empty chunk would end the body).
  bool WriteChunk(std::string_view bytes);
  /// Terminal 0-chunk.
  bool EndChunked();

  /// Raw send helper (MSG_NOSIGNAL, full-write loop).
  bool WriteAll(std::string_view bytes);

  /// Makes every subsequent write shutdown-aware: a send blocked on a peer
  /// that stopped reading re-checks `stop` every poll interval and fails
  /// the write once it is set. Without this a single non-reading client
  /// pins its connection thread in ::send and hangs Shutdown's join — the
  /// write-side twin of ReadRequest's `stop` parameter. The abort surfaces
  /// as an ordinary write failure, so mid-stream it triggers the hard-
  /// truncation contract (connection dropped, no terminal chunk).
  void set_stop(const std::atomic<bool>* stop) { stop_ = stop; }

  int fd() const { return fd_; }
  /// Peer address as "ip" (no port — the per-client admission key).
  const std::string& peer_ip() const { return peer_ip_; }

 private:
  int fd_;
  std::string peer_ip_;
  std::string buffer_;  ///< bytes read past the previous request
  const std::atomic<bool>* stop_ = nullptr;  ///< write-abort flag; not owned
};

/// Standard reason phrase for a status code ("OK", "Too Many Requests", ...).
const char* HttpReasonPhrase(int status);

/// Percent-decodes `s` ('+' becomes space); invalid escapes pass through.
std::string UrlDecode(std::string_view s);

// ---- client (tests, bench_server) -----------------------------------------

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lowercased names
  std::string body;                            ///< chunked already decoded
};

/// Parses the response's `Retry-After` header (delta-seconds form only — the
/// only form eqld emits). Returns the value in seconds, or -1 when absent or
/// unparseable; clients feed it to Backoff::NextDelayMs as the server hint.
int RetryAfterSeconds(const HttpResponse& response);

/// Blocking TCP connect to host:port; returns the fd or a Status error.
Result<int> TcpConnect(const std::string& host, uint16_t port);

/// One blocking request over a fresh connection (Connection: close).
Result<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body = "",
                               const std::vector<std::string>& headers = {});

/// Client-side keep-alive session over one connection: Request() may be
/// called repeatedly. Used by the load generator to measure per-request
/// latency without per-request connect cost.
class HttpClientConnection {
 public:
  static Result<HttpClientConnection> Connect(const std::string& host,
                                              uint16_t port);
  HttpClientConnection(HttpClientConnection&& other) noexcept;
  HttpClientConnection& operator=(HttpClientConnection&& other) noexcept;
  ~HttpClientConnection();

  Result<HttpResponse> Request(const std::string& method,
                               const std::string& target,
                               const std::string& body = "",
                               const std::vector<std::string>& headers = {});

  int fd() const { return fd_; }

 private:
  explicit HttpClientConnection(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string buffer_;
};

/// Reads one full HTTP response (headers + Content-Length or chunked body)
/// from `fd`, consuming from/refilling `buffer`. Exposed for tests that
/// drive connections half-manually (disconnect-mid-stream).
/// `idle_timeout_ms` bounds each wait for the next byte — a server that goes
/// silent longer than that yields kUnavailable rather than a hang. Tests
/// that drain large streams under heavy instrumentation (TSan multiplies
/// the engine's inter-chunk compute gaps) pass a larger value.
Status ReadHttpResponse(int fd, std::string* buffer, HttpResponse* out,
                        int idle_timeout_ms = 10000);

}  // namespace eql

#endif  // EQL_SERVER_HTTP_H_
