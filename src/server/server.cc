#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "eval/params.h"
#include "server/format.h"
#include "util/string_util.h"

namespace eql {

namespace {

std::string ErrorBody(const Status& st) {
  std::string b = "{\"error\":{\"code\":\"";
  b += StatusCodeName(st.code());
  b += "\",\"message\":\"";
  AppendJsonEscaped(st.message(), &b);
  b += "\"}}\n";
  return b;
}

/// ByteSink that frames serializer output as HTTP chunks. Headers go out
/// lazily on the first byte, so a query that fails before producing output
/// can still get a proper error status line. kFaultSiteNetWrite (test-only)
/// makes a write fail as if the peer vanished.
class ChunkSink : public ByteSink {
 public:
  ChunkSink(HttpConnection& conn, const char* content_type,
            FaultInjector* fault,
            std::function<void()> on_first_byte = nullptr)
      : conn_(conn),
        content_type_(content_type),
        fault_(fault),
        on_first_byte_(std::move(on_first_byte)) {}

  bool Write(std::string_view bytes) override {
    if (failed_) return false;
    if (fault_ != nullptr && fault_->ShouldFail(kFaultSiteNetWrite)) {
      failed_ = true;
      return false;
    }
    if (!begun_) {
      if (!conn_.BeginChunked(200, content_type_)) {
        failed_ = true;
        return false;
      }
      begun_ = true;
      if (on_first_byte_) on_first_byte_();
    }
    if (!conn_.WriteChunk(bytes)) {
      failed_ = true;
      return false;
    }
    return true;
  }

  bool begun() const { return begun_; }
  bool failed() const { return failed_; }

 private:
  HttpConnection& conn_;
  const char* content_type_;
  FaultInjector* fault_;
  std::function<void()> on_first_byte_;  ///< queue-delay sample hook
  bool begun_ = false;
  bool failed_ = false;
};

/// Extracts `$name=value` query-string pairs into a ParamMap (values bind as
/// strings; the engine's BindParams accepts exact integer strings for
/// integer positions).
ParamMap ParamsFromQueryString(const HttpRequest& req) {
  ParamMap params;
  for (const auto& [k, v] : req.query) {
    if (!k.empty() && k[0] == '$') params.Set(k.substr(1), v);
  }
  return params;
}

}  // namespace

EqldServer::EqldServer(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.admission, options_.fault),
      governor_(options_.governor),
      watchdog_(options_.watchdog) {}

EqldServer::~EqldServer() { Shutdown(); }

void EqldServer::InstallContext(std::shared_ptr<GraphContext> ctx) {
  std::lock_guard<std::mutex> lock(ctx_mu_);
  ctx_ = std::move(ctx);
}

std::shared_ptr<EqldServer::GraphContext> EqldServer::CurrentContext() const {
  std::lock_guard<std::mutex> lock(ctx_mu_);
  return ctx_;
}

void EqldServer::SetGraph(Graph g, std::string source_desc) {
  auto ctx = std::make_shared<GraphContext>(std::move(g),
                                            options_.prepared_cache_capacity);
  ctx->engine = std::make_unique<EqlEngine>(ctx->graph, options_.engine);
  ctx->info.num_nodes = ctx->graph.NumNodes();
  ctx->info.num_edges = ctx->graph.NumEdges();
  ctx->source = std::move(source_desc);
  InstallContext(std::move(ctx));
}

Status EqldServer::OpenSnapshotFile(const std::string& path) {
  SnapshotInfo info;
  auto g = OpenSnapshot(path, {}, &info);
  if (!g.ok()) return g.status();
  auto ctx = std::make_shared<GraphContext>(std::move(g).value(),
                                            options_.prepared_cache_capacity);
  ctx->engine = std::make_unique<EqlEngine>(ctx->graph, options_.engine);
  ctx->info = info;
  ctx->source = path;
  InstallContext(std::move(ctx));
  return Status::Ok();
}

Status EqldServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return Status::Unavailable("bind " + options_.bind_address + ":" +
                               std::to_string(options_.port) + ": " +
                               std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Internal(std::string("listen(): ") + std::strerror(errno));
  }
  sockaddr_in bound = {};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  watchdog_.Start();
  acceptor_ = std::thread(&EqldServer::AcceptLoop, this);
  return Status::Ok();
}

void EqldServer::Shutdown() {
  stop_.store(true);  // connection readers observe it within one poll interval
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [&] { return connections_active_ == 0; });
  }
  watchdog_.Stop();  // after the drain: no execution can outlive its sampler
}

void EqldServer::AcceptLoop() {
  while (!stop_.load()) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, options_.shutdown_poll_ms);
    if (pr <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    bool admit;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      admit = connections_active_ < options_.max_connections;
      if (admit) {
        ++connections_active_;
        ++connections_accepted_;
      } else {
        ++connections_rejected_;
      }
    }
    if (!admit) {
      HttpConnection conn(fd);  // closes fd
      conn.set_stop(&stop_);   // never lets a dead peer stall the acceptor
      conn.WriteResponse(
          503, "application/json",
          ErrorBody(Status::Unavailable("connection limit reached")),
          {"Retry-After: " + std::to_string(admission_.RetryAfterSeconds())},
          /*keep_alive=*/false);
      continue;
    }
    std::thread(&EqldServer::ServeConnection, this, fd).detach();
  }
}

void EqldServer::ServeConnection(int fd) {
  {
    HttpConnection conn(fd);
    // Writes must also observe shutdown: a peer that stops reading while a
    // stream is mid-body would otherwise pin this thread in ::send and hang
    // Shutdown's join (the write-side twin of ReadRequest's stop handling).
    conn.set_stop(&stop_);
    bool keep = true;
    while (keep && !stop_.load()) {
      HttpRequest req;
      Status st = conn.ReadRequest(&req, options_.http_limits, &stop_,
                                   options_.shutdown_poll_ms);
      if (st.code() == StatusCode::kUnavailable) break;  // EOF / stopping
      if (!st.ok()) {
        int http = 400;
        if (st.code() == StatusCode::kTimeout) {
          http = 408;  // the request stalled past max_request_read_ms
        } else if (st.code() == StatusCode::kUnimplemented) {
          http = st.message().find("HTTP/1.1") != std::string::npos ? 505 : 501;
        } else if (st.code() == StatusCode::kOutOfRange) {
          http = st.message().find("body") != std::string::npos ? 413 : 431;
        }
        conn.WriteResponse(http, "application/json", ErrorBody(st), {},
                           /*keep_alive=*/false);
        break;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      keep = HandleRequest(conn, req);
    }
  }  // conn closed here, before the thread signs off
  std::lock_guard<std::mutex> lock(conn_mu_);
  --connections_active_;
  conn_cv_.notify_all();
}

bool EqldServer::HandleRequest(HttpConnection& conn, const HttpRequest& req) {
  struct Route {
    const char* path;
    const char* method;
    bool (EqldServer::*handler)(HttpConnection&, const HttpRequest&);
  };
  static constexpr Route kRoutes[] = {
      {"/health", "GET", &EqldServer::HandleHealth},
      {"/stats", "GET", &EqldServer::HandleStats},
      {"/query", "POST", &EqldServer::HandleQuery},
      {"/prepare", "POST", &EqldServer::HandlePrepare},
      {"/execute", "POST", &EqldServer::HandleExecute},
      {"/snapshot/stats", "GET", &EqldServer::HandleSnapshotStats},
      {"/snapshot/open", "POST", &EqldServer::HandleSnapshotOpen},
  };
  for (const Route& r : kRoutes) {
    if (req.path != r.path) continue;
    if (req.method != r.method) {
      return conn.WriteResponse(
          405, "application/json",
          ErrorBody(Status::InvalidArgument(std::string("use ") + r.method)),
          {std::string("Allow: ") + r.method});
    }
    return (this->*r.handler)(conn, req);
  }
  return conn.WriteResponse(
      404, "application/json",
      ErrorBody(Status::NotFound("no such endpoint: " + req.path)));
}

bool EqldServer::WriteError(HttpConnection& conn, const Status& status) {
  const int http = HttpStatusForCode(status.code());
  std::vector<std::string> extra;
  if (http == 429 || http == 503) {
    // Every pushed-back client learns how long to actually stay away; the
    // value scales with measured overload (admission.h).
    extra.push_back("Retry-After: " +
                    std::to_string(admission_.RetryAfterSeconds()));
  }
  return conn.WriteResponse(http, "application/json", ErrorBody(status),
                            extra);
}

bool EqldServer::HandleHealth(HttpConnection& conn, const HttpRequest&) {
  if (CurrentContext() == nullptr) {
    return conn.WriteResponse(503, "text/plain", "no graph loaded\n");
  }
  return conn.WriteResponse(200, "text/plain", "ok\n");
}

bool EqldServer::HandleStats(HttpConnection& conn, const HttpRequest&) {
  ServerStats s = GetStats();
  auto ctx = CurrentContext();
  std::string b = "{\"server\":{";
  b += "\"connections_accepted\":" + std::to_string(s.connections_accepted);
  b += ",\"connections_rejected\":" + std::to_string(s.connections_rejected);
  b += ",\"connections_active\":" + std::to_string(s.connections_active);
  b += ",\"requests\":" + std::to_string(s.requests);
  b += ",\"queries_ok\":" + std::to_string(s.queries_ok);
  b += ",\"queries_failed\":" + std::to_string(s.queries_failed);
  b += ",\"queries_cancelled\":" + std::to_string(s.queries_cancelled);
  b += ",\"rows_streamed\":" + std::to_string(s.rows_streamed);
  b += ",\"queries_watchdog_cancelled\":" + std::to_string(s.watchdog.cancelled);
  b += "},\"admission\":{";
  b += "\"admitted\":" + std::to_string(s.admission.admitted);
  b += ",\"rejected_global\":" + std::to_string(s.admission.rejected_global);
  b += ",\"rejected_client\":" + std::to_string(s.admission.rejected_client);
  b += ",\"in_flight\":" + std::to_string(s.admission.in_flight);
  b += ",\"shed_adhoc\":" + std::to_string(s.admission.shed_adhoc);
  b += ",\"shed_prepare\":" + std::to_string(s.admission.shed_prepare);
  b += ",\"shed_prepared\":" + std::to_string(s.admission.shed_prepared);
  b += ",\"queue_delay_p95_ms\":" + std::to_string(s.admission.queue_delay_p95_ms);
  b += ",\"retry_after_s\":" + std::to_string(s.admission.retry_after_s);
  b += "},\"governor\":{";
  b += "\"enabled\":" + std::string(s.governor.total_budget_bytes > 0 ? "true" : "false");
  b += ",\"total_budget_bytes\":" + std::to_string(s.governor.total_budget_bytes);
  b += ",\"leased_bytes\":" + std::to_string(s.governor.leased_bytes);
  b += ",\"active_leases\":" + std::to_string(s.governor.active_leases);
  b += ",\"clients_with_leases\":" + std::to_string(s.governor.clients_with_leases);
  b += ",\"granted\":" + std::to_string(s.governor.granted);
  b += ",\"tightened\":" + std::to_string(s.governor.tightened);
  b += ",\"rejected_pool\":" + std::to_string(s.governor.rejected_pool);
  b += ",\"rejected_client\":" + std::to_string(s.governor.rejected_client);
  b += ",\"pressure\":\"" + std::string(PressureLevelName(s.governor.pressure));
  b += "\"},\"watchdog\":{";
  b += "\"cancelled\":" + std::to_string(s.watchdog.cancelled);
  b += ",\"samples\":" + std::to_string(s.watchdog.samples);
  b += ",\"in_flight\":" + std::to_string(s.watchdog.in_flight);
  b += "},\"cache\":{";
  b += "\"hits\":" + std::to_string(s.cache.hits);
  b += ",\"misses\":" + std::to_string(s.cache.misses);
  b += ",\"evictions\":" + std::to_string(s.cache.evictions);
  b += ",\"size\":" + std::to_string(s.cache.size);
  b += ",\"capacity\":" + std::to_string(s.cache.capacity);
  b += "},\"graph\":{";
  if (ctx == nullptr) {
    b += "\"loaded\":false";
  } else {
    b += "\"loaded\":true,\"source\":\"";
    AppendJsonEscaped(ctx->source, &b);
    b += "\",\"nodes\":" + std::to_string(ctx->graph.NumNodes());
    b += ",\"edges\":" + std::to_string(ctx->graph.NumEdges());
  }
  b += "}}\n";
  return conn.WriteResponse(200, "application/json", b);
}

std::string EqldServer::ClientKey(HttpConnection& conn,
                                  const HttpRequest& req) {
  std::string client = conn.peer_ip();
  if (const std::string* hdr = req.Header("x-eql-client"); hdr != nullptr) {
    client += '|';
    client += *hdr;
  }
  return client;
}

Result<AdmissionTicket> EqldServer::AdmitRequest(HttpConnection& conn,
                                                 const HttpRequest& req,
                                                 RequestClass cls) {
  return admission_.Admit(ClientKey(conn, req), conn.peer_ip(), cls);
}

bool EqldServer::HandleQuery(HttpConnection& conn, const HttpRequest& req) {
  auto ctx = CurrentContext();
  if (ctx == nullptr) {
    return WriteError(conn, Status::Unavailable("no graph loaded"));
  }
  if (Trim(req.body).empty()) {
    return WriteError(conn, Status::InvalidArgument("empty query body"));
  }
  // Admission strictly precedes parse/plan/compile: a shed client gets its
  // 429/503 without burning compile CPU or inserting into the shared cache.
  auto ticket = AdmitRequest(conn, req, RequestClass::kAdhoc);
  if (!ticket.ok()) return WriteError(conn, ticket.status());
  const auto admitted_at = std::chrono::steady_clock::now();
  auto prepared = ctx->cache.GetOrPrepare(*ctx->engine, req.body);
  if (!prepared.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return WriteError(conn, prepared.status());
  }
  return StreamQuery(conn, req, ctx, *prepared, ParamsFromQueryString(req),
                     std::move(*ticket), admitted_at);
}

bool EqldServer::HandlePrepare(HttpConnection& conn, const HttpRequest& req) {
  auto ctx = CurrentContext();
  if (ctx == nullptr) {
    return WriteError(conn, Status::Unavailable("no graph loaded"));
  }
  const std::string* name = req.QueryParam("name");
  if (name == nullptr || name->empty()) {
    return WriteError(conn,
                      Status::InvalidArgument("missing ?name= for the handle"));
  }
  if (Trim(req.body).empty()) {
    return WriteError(conn, Status::InvalidArgument("empty query body"));
  }
  // Compilation runs under an admission ticket too: /prepare is exactly the
  // expensive phase admission exists to gate, and an unadmitted prepare
  // could evict hot plans from the shared LRU.
  auto ticket = AdmitRequest(conn, req, RequestClass::kPrepare);
  if (!ticket.ok()) return WriteError(conn, ticket.status());
  auto prepared = ctx->cache.GetOrPrepare(*ctx->engine, req.body);
  if (!prepared.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return WriteError(conn, prepared.status());
  }
  {
    std::lock_guard<std::mutex> lock(ctx->handles_mu);
    ctx->handles[*name] = *prepared;
  }
  std::string b = "{\"name\":\"";
  AppendJsonEscaped(*name, &b);
  b += "\",\"params\":[";
  const auto& names = (*prepared)->param_names();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) b += ',';
    b += '"';
    AppendJsonEscaped(names[i], &b);
    b += '"';
  }
  b += "]}\n";
  return conn.WriteResponse(200, "application/json", b);
}

bool EqldServer::HandleExecute(HttpConnection& conn, const HttpRequest& req) {
  auto ctx = CurrentContext();
  if (ctx == nullptr) {
    return WriteError(conn, Status::Unavailable("no graph loaded"));
  }
  const std::string* name = req.QueryParam("name");
  if (name == nullptr || name->empty()) {
    return WriteError(conn,
                      Status::InvalidArgument("missing ?name= of the handle"));
  }
  auto ticket = AdmitRequest(conn, req, RequestClass::kPrepared);
  if (!ticket.ok()) return WriteError(conn, ticket.status());
  const auto admitted_at = std::chrono::steady_clock::now();
  std::shared_ptr<const PreparedQuery> prepared;
  {
    std::lock_guard<std::mutex> lock(ctx->handles_mu);
    auto it = ctx->handles.find(*name);
    if (it != ctx->handles.end()) prepared = it->second;
  }
  if (prepared == nullptr) {
    return WriteError(conn,
                      Status::NotFound("no prepared handle '" + *name + "'"));
  }
  return StreamQuery(conn, req, ctx, prepared, ParamsFromQueryString(req),
                     std::move(*ticket), admitted_at);
}

bool EqldServer::HandleSnapshotStats(HttpConnection& conn, const HttpRequest&) {
  auto ctx = CurrentContext();
  if (ctx == nullptr) {
    return WriteError(conn, Status::Unavailable("no graph loaded"));
  }
  std::string b = "{\"source\":\"";
  AppendJsonEscaped(ctx->source, &b);
  b += "\",\"nodes\":" + std::to_string(ctx->graph.NumNodes());
  b += ",\"edges\":" + std::to_string(ctx->graph.NumEdges());
  if (ctx->info.file_bytes > 0) {
    b += ",\"file_bytes\":" + std::to_string(ctx->info.file_bytes);
    b += ",\"strings\":" + std::to_string(ctx->info.num_strings);
  }
  b += "}\n";
  return conn.WriteResponse(200, "application/json", b);
}

bool EqldServer::HandleSnapshotOpen(HttpConnection& conn,
                                    const HttpRequest& req) {
  std::string path(Trim(req.body));
  if (path.empty()) {
    return WriteError(conn,
                      Status::InvalidArgument("body must be a snapshot path"));
  }
  Status st = OpenSnapshotFile(path);
  if (!st.ok()) return WriteError(conn, st);
  return HandleSnapshotStats(conn, req);
}

bool EqldServer::StreamQuery(
    HttpConnection& conn, const HttpRequest& req,
    const std::shared_ptr<GraphContext>& ctx,
    const std::shared_ptr<const PreparedQuery>& prepared,
    const ParamMap& params, AdmissionTicket ticket,
    std::chrono::steady_clock::time_point admitted_at) {
  (void)ticket;  // held for the whole stream; released on return

  ResultFormat format = ResultFormat::kJson;
  if (const std::string* f = req.QueryParam("format")) {
    auto parsed = ParseResultFormat(*f);
    if (!parsed.has_value()) {
      return WriteError(conn, Status::InvalidArgument(
                                  "unknown format '" + *f +
                                  "' (expected json, tsv or table)"));
    }
    format = *parsed;
  }
  uint64_t max_rows = 0;
  if (const std::string* m = req.QueryParam("max_rows")) {
    char* end = nullptr;
    max_rows = std::strtoull(m->c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return WriteError(conn, Status::InvalidArgument("bad max_rows"));
    }
  }

  // Quota -> engine budgets. A client may only tighten its timeout; the
  // admission quota is the ceiling, then the governor shapes the result by
  // current memory pressure (new admits degrade gradually — server/governor.h).
  ExecOptions opts;
  const AdmissionController::Options& quota = admission_.options();
  int64_t timeout_ms = quota.query_timeout_ms;
  if (const std::string* t = req.QueryParam("timeout_ms")) {
    char* end = nullptr;
    int64_t want = std::strtoll(t->c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || want <= 0) {
      return WriteError(conn, Status::InvalidArgument("bad timeout_ms"));
    }
    timeout_ms = timeout_ms > 0 ? std::min(want, timeout_ms) : want;
  }
  const ResourceGovernor::Quota shaped =
      governor_.EffectiveQuota(timeout_ms, quota.memory_budget_bytes);
  timeout_ms = shaped.query_timeout_ms;

  // The engine budget is what the governor actually leases (possibly clamped
  // below the shaped ask by pool headroom / the client's aggregate share),
  // so the sum across running queries can never exceed the pool.
  const std::string client = ClientKey(conn, req);
  auto lease = governor_.Acquire(client, shaped.memory_budget_bytes);
  if (!lease.ok()) return WriteError(conn, lease.status());
  if (timeout_ms > 0) opts.query_timeout_ms = timeout_ms;
  if (lease->bytes() > 0) opts.memory_budget_bytes = lease->bytes();

  // Watchdog registration for the execution span: the cancel flag is the
  // same lever a disconnecting client pulls; progress is bumped by the
  // searches at their deadline-poll sites.
  std::atomic<bool> wd_cancel{false};
  std::atomic<uint64_t> progress{0};
  opts.cancel = &wd_cancel;
  opts.progress = &progress;
  const auto exec_start = std::chrono::steady_clock::now();
  QueryWatchdog::QueryInfo winfo;
  winfo.endpoint = req.path;
  winfo.client = client;
  winfo.start = exec_start;
  winfo.deadline = timeout_ms > 0
                       ? exec_start + std::chrono::milliseconds(timeout_ms)
                       : QueryWatchdog::Clock::time_point::max();
  winfo.cancel = &wd_cancel;
  winfo.progress = &progress;
  const uint64_t wd_token = watchdog_.Register(winfo);

  ChunkSink chunk(conn, ResultFormatContentType(format), options_.fault,
                  [this, admitted_at] {
                    admission_.RecordQueueDelay(
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - admitted_at)
                            .count());
                  });
  SerializingSink sink(ctx->graph, format, chunk, max_rows, options_.fault);
  auto result = prepared->Execute(params, sink, opts);
  watchdog_.Unregister(wd_token);
  if (!result.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    // Headers already on the wire mean the response cannot be repaired;
    // drop the connection so the client sees a hard truncation, not a
    // silently complete body.
    if (chunk.begun()) return false;
    return WriteError(conn, result.status());
  }

  rows_streamed_.fetch_add(result->rows_streamed, std::memory_order_relaxed);
  if (result->cancelled) {
    queries_cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else {
    queries_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  // An incomplete document (a serializer write failed even if the socket is
  // healthy) must never be sealed with a terminal chunk: drop the connection
  // so the client sees a hard truncation, not a complete-looking body.
  if (!sink.Finish(FinishInfo{result->outcome, 0})) return false;
  if (chunk.failed()) return false;  // peer vanished mid-stream
  if (!chunk.begun()) {
    // Nothing was serialized at all (can only happen if a format writes no
    // head and no rows); still answer with a complete empty body.
    return conn.WriteResponse(200, ResultFormatContentType(format), "");
  }
  return conn.EndChunked();
}

ServerStats EqldServer::GetStats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    s.connections_accepted = connections_accepted_;
    s.connections_rejected = connections_rejected_;
    s.connections_active = connections_active_;
  }
  s.requests = requests_.load(std::memory_order_relaxed);
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  s.queries_cancelled = queries_cancelled_.load(std::memory_order_relaxed);
  s.rows_streamed = rows_streamed_.load(std::memory_order_relaxed);
  s.admission = admission_.GetStats();
  s.governor = governor_.GetStats();
  s.watchdog = watchdog_.GetStats();
  auto ctx = CurrentContext();
  if (ctx != nullptr) s.cache = ctx->cache.GetStats();
  return s;
}

}  // namespace eql
