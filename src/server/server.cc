#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "eval/params.h"
#include "server/format.h"
#include "util/string_util.h"

namespace eql {

namespace {

std::string ErrorBody(const Status& st) {
  std::string b = "{\"error\":{\"code\":\"";
  b += StatusCodeName(st.code());
  b += "\",\"message\":\"";
  AppendJsonEscaped(st.message(), &b);
  b += "\"}}\n";
  return b;
}

/// ByteSink that frames serializer output as HTTP chunks. Headers go out
/// lazily on the first byte, so a query that fails before producing output
/// can still get a proper error status line. kFaultSiteNetWrite (test-only)
/// makes a write fail as if the peer vanished.
class ChunkSink : public ByteSink {
 public:
  ChunkSink(HttpConnection& conn, const char* content_type,
            FaultInjector* fault)
      : conn_(conn), content_type_(content_type), fault_(fault) {}

  bool Write(std::string_view bytes) override {
    if (failed_) return false;
    if (fault_ != nullptr && fault_->ShouldFail(kFaultSiteNetWrite)) {
      failed_ = true;
      return false;
    }
    if (!begun_) {
      if (!conn_.BeginChunked(200, content_type_)) {
        failed_ = true;
        return false;
      }
      begun_ = true;
    }
    if (!conn_.WriteChunk(bytes)) {
      failed_ = true;
      return false;
    }
    return true;
  }

  bool begun() const { return begun_; }
  bool failed() const { return failed_; }

 private:
  HttpConnection& conn_;
  const char* content_type_;
  FaultInjector* fault_;
  bool begun_ = false;
  bool failed_ = false;
};

/// Extracts `$name=value` query-string pairs into a ParamMap (values bind as
/// strings; the engine's BindParams accepts exact integer strings for
/// integer positions).
ParamMap ParamsFromQueryString(const HttpRequest& req) {
  ParamMap params;
  for (const auto& [k, v] : req.query) {
    if (!k.empty() && k[0] == '$') params.Set(k.substr(1), v);
  }
  return params;
}

}  // namespace

EqldServer::EqldServer(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.admission, options_.fault) {}

EqldServer::~EqldServer() { Shutdown(); }

void EqldServer::InstallContext(std::shared_ptr<GraphContext> ctx) {
  std::lock_guard<std::mutex> lock(ctx_mu_);
  ctx_ = std::move(ctx);
}

std::shared_ptr<EqldServer::GraphContext> EqldServer::CurrentContext() const {
  std::lock_guard<std::mutex> lock(ctx_mu_);
  return ctx_;
}

void EqldServer::SetGraph(Graph g, std::string source_desc) {
  auto ctx = std::make_shared<GraphContext>(std::move(g),
                                            options_.prepared_cache_capacity);
  ctx->engine = std::make_unique<EqlEngine>(ctx->graph, options_.engine);
  ctx->info.num_nodes = ctx->graph.NumNodes();
  ctx->info.num_edges = ctx->graph.NumEdges();
  ctx->source = std::move(source_desc);
  InstallContext(std::move(ctx));
}

Status EqldServer::OpenSnapshotFile(const std::string& path) {
  SnapshotInfo info;
  auto g = OpenSnapshot(path, {}, &info);
  if (!g.ok()) return g.status();
  auto ctx = std::make_shared<GraphContext>(std::move(g).value(),
                                            options_.prepared_cache_capacity);
  ctx->engine = std::make_unique<EqlEngine>(ctx->graph, options_.engine);
  ctx->info = info;
  ctx->source = path;
  InstallContext(std::move(ctx));
  return Status::Ok();
}

Status EqldServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return Status::Unavailable("bind " + options_.bind_address + ":" +
                               std::to_string(options_.port) + ": " +
                               std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Internal(std::string("listen(): ") + std::strerror(errno));
  }
  sockaddr_in bound = {};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread(&EqldServer::AcceptLoop, this);
  return Status::Ok();
}

void EqldServer::Shutdown() {
  stop_.store(true);  // connection readers observe it within one poll interval
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [&] { return connections_active_ == 0; });
}

void EqldServer::AcceptLoop() {
  while (!stop_.load()) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, options_.shutdown_poll_ms);
    if (pr <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    bool admit;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      admit = connections_active_ < options_.max_connections;
      if (admit) {
        ++connections_active_;
        ++connections_accepted_;
      } else {
        ++connections_rejected_;
      }
    }
    if (!admit) {
      HttpConnection conn(fd);  // closes fd
      conn.WriteResponse(
          503, "application/json",
          ErrorBody(Status::Unavailable("connection limit reached")), {},
          /*keep_alive=*/false);
      continue;
    }
    std::thread(&EqldServer::ServeConnection, this, fd).detach();
  }
}

void EqldServer::ServeConnection(int fd) {
  {
    HttpConnection conn(fd);
    bool keep = true;
    while (keep && !stop_.load()) {
      HttpRequest req;
      Status st = conn.ReadRequest(&req, options_.http_limits, &stop_,
                                   options_.shutdown_poll_ms);
      if (st.code() == StatusCode::kUnavailable) break;  // EOF / stopping
      if (!st.ok()) {
        int http = 400;
        if (st.code() == StatusCode::kTimeout) {
          http = 408;  // the request stalled past max_request_read_ms
        } else if (st.code() == StatusCode::kUnimplemented) {
          http = st.message().find("HTTP/1.1") != std::string::npos ? 505 : 501;
        } else if (st.code() == StatusCode::kOutOfRange) {
          http = st.message().find("body") != std::string::npos ? 413 : 431;
        }
        conn.WriteResponse(http, "application/json", ErrorBody(st), {},
                           /*keep_alive=*/false);
        break;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      keep = HandleRequest(conn, req);
    }
  }  // conn closed here, before the thread signs off
  std::lock_guard<std::mutex> lock(conn_mu_);
  --connections_active_;
  conn_cv_.notify_all();
}

bool EqldServer::HandleRequest(HttpConnection& conn, const HttpRequest& req) {
  struct Route {
    const char* path;
    const char* method;
    bool (EqldServer::*handler)(HttpConnection&, const HttpRequest&);
  };
  static constexpr Route kRoutes[] = {
      {"/health", "GET", &EqldServer::HandleHealth},
      {"/stats", "GET", &EqldServer::HandleStats},
      {"/query", "POST", &EqldServer::HandleQuery},
      {"/prepare", "POST", &EqldServer::HandlePrepare},
      {"/execute", "POST", &EqldServer::HandleExecute},
      {"/snapshot/stats", "GET", &EqldServer::HandleSnapshotStats},
      {"/snapshot/open", "POST", &EqldServer::HandleSnapshotOpen},
  };
  for (const Route& r : kRoutes) {
    if (req.path != r.path) continue;
    if (req.method != r.method) {
      return conn.WriteResponse(
          405, "application/json",
          ErrorBody(Status::InvalidArgument(std::string("use ") + r.method)),
          {std::string("Allow: ") + r.method});
    }
    return (this->*r.handler)(conn, req);
  }
  return conn.WriteResponse(
      404, "application/json",
      ErrorBody(Status::NotFound("no such endpoint: " + req.path)));
}

bool EqldServer::WriteError(HttpConnection& conn, const Status& status) {
  return conn.WriteResponse(HttpStatusForCode(status.code()),
                            "application/json", ErrorBody(status));
}

bool EqldServer::HandleHealth(HttpConnection& conn, const HttpRequest&) {
  if (CurrentContext() == nullptr) {
    return conn.WriteResponse(503, "text/plain", "no graph loaded\n");
  }
  return conn.WriteResponse(200, "text/plain", "ok\n");
}

bool EqldServer::HandleStats(HttpConnection& conn, const HttpRequest&) {
  ServerStats s = GetStats();
  auto ctx = CurrentContext();
  std::string b = "{\"server\":{";
  b += "\"connections_accepted\":" + std::to_string(s.connections_accepted);
  b += ",\"connections_rejected\":" + std::to_string(s.connections_rejected);
  b += ",\"connections_active\":" + std::to_string(s.connections_active);
  b += ",\"requests\":" + std::to_string(s.requests);
  b += ",\"queries_ok\":" + std::to_string(s.queries_ok);
  b += ",\"queries_failed\":" + std::to_string(s.queries_failed);
  b += ",\"queries_cancelled\":" + std::to_string(s.queries_cancelled);
  b += ",\"rows_streamed\":" + std::to_string(s.rows_streamed);
  b += "},\"admission\":{";
  b += "\"admitted\":" + std::to_string(s.admission.admitted);
  b += ",\"rejected_global\":" + std::to_string(s.admission.rejected_global);
  b += ",\"rejected_client\":" + std::to_string(s.admission.rejected_client);
  b += ",\"in_flight\":" + std::to_string(s.admission.in_flight);
  b += "},\"cache\":{";
  b += "\"hits\":" + std::to_string(s.cache.hits);
  b += ",\"misses\":" + std::to_string(s.cache.misses);
  b += ",\"evictions\":" + std::to_string(s.cache.evictions);
  b += ",\"size\":" + std::to_string(s.cache.size);
  b += ",\"capacity\":" + std::to_string(s.cache.capacity);
  b += "},\"graph\":{";
  if (ctx == nullptr) {
    b += "\"loaded\":false";
  } else {
    b += "\"loaded\":true,\"source\":\"";
    AppendJsonEscaped(ctx->source, &b);
    b += "\",\"nodes\":" + std::to_string(ctx->graph.NumNodes());
    b += ",\"edges\":" + std::to_string(ctx->graph.NumEdges());
  }
  b += "}}\n";
  return conn.WriteResponse(200, "application/json", b);
}

Result<AdmissionTicket> EqldServer::AdmitRequest(HttpConnection& conn,
                                                 const HttpRequest& req) {
  std::string client = conn.peer_ip();
  if (const std::string* hdr = req.Header("x-eql-client"); hdr != nullptr) {
    client += '|';
    client += *hdr;
  }
  return admission_.Admit(client, conn.peer_ip());
}

bool EqldServer::HandleQuery(HttpConnection& conn, const HttpRequest& req) {
  auto ctx = CurrentContext();
  if (ctx == nullptr) {
    return WriteError(conn, Status::Unavailable("no graph loaded"));
  }
  if (Trim(req.body).empty()) {
    return WriteError(conn, Status::InvalidArgument("empty query body"));
  }
  // Admission strictly precedes parse/plan/compile: a shed client gets its
  // 429/503 without burning compile CPU or inserting into the shared cache.
  auto ticket = AdmitRequest(conn, req);
  if (!ticket.ok()) return WriteError(conn, ticket.status());
  auto prepared = ctx->cache.GetOrPrepare(*ctx->engine, req.body);
  if (!prepared.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return WriteError(conn, prepared.status());
  }
  return StreamQuery(conn, req, ctx, *prepared, ParamsFromQueryString(req),
                     std::move(*ticket));
}

bool EqldServer::HandlePrepare(HttpConnection& conn, const HttpRequest& req) {
  auto ctx = CurrentContext();
  if (ctx == nullptr) {
    return WriteError(conn, Status::Unavailable("no graph loaded"));
  }
  const std::string* name = req.QueryParam("name");
  if (name == nullptr || name->empty()) {
    return WriteError(conn,
                      Status::InvalidArgument("missing ?name= for the handle"));
  }
  if (Trim(req.body).empty()) {
    return WriteError(conn, Status::InvalidArgument("empty query body"));
  }
  // Compilation runs under an admission ticket too: /prepare is exactly the
  // expensive phase admission exists to gate, and an unadmitted prepare
  // could evict hot plans from the shared LRU.
  auto ticket = AdmitRequest(conn, req);
  if (!ticket.ok()) return WriteError(conn, ticket.status());
  auto prepared = ctx->cache.GetOrPrepare(*ctx->engine, req.body);
  if (!prepared.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return WriteError(conn, prepared.status());
  }
  {
    std::lock_guard<std::mutex> lock(ctx->handles_mu);
    ctx->handles[*name] = *prepared;
  }
  std::string b = "{\"name\":\"";
  AppendJsonEscaped(*name, &b);
  b += "\",\"params\":[";
  const auto& names = (*prepared)->param_names();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) b += ',';
    b += '"';
    AppendJsonEscaped(names[i], &b);
    b += '"';
  }
  b += "]}\n";
  return conn.WriteResponse(200, "application/json", b);
}

bool EqldServer::HandleExecute(HttpConnection& conn, const HttpRequest& req) {
  auto ctx = CurrentContext();
  if (ctx == nullptr) {
    return WriteError(conn, Status::Unavailable("no graph loaded"));
  }
  const std::string* name = req.QueryParam("name");
  if (name == nullptr || name->empty()) {
    return WriteError(conn,
                      Status::InvalidArgument("missing ?name= of the handle"));
  }
  auto ticket = AdmitRequest(conn, req);
  if (!ticket.ok()) return WriteError(conn, ticket.status());
  std::shared_ptr<const PreparedQuery> prepared;
  {
    std::lock_guard<std::mutex> lock(ctx->handles_mu);
    auto it = ctx->handles.find(*name);
    if (it != ctx->handles.end()) prepared = it->second;
  }
  if (prepared == nullptr) {
    return WriteError(conn,
                      Status::NotFound("no prepared handle '" + *name + "'"));
  }
  return StreamQuery(conn, req, ctx, prepared, ParamsFromQueryString(req),
                     std::move(*ticket));
}

bool EqldServer::HandleSnapshotStats(HttpConnection& conn, const HttpRequest&) {
  auto ctx = CurrentContext();
  if (ctx == nullptr) {
    return WriteError(conn, Status::Unavailable("no graph loaded"));
  }
  std::string b = "{\"source\":\"";
  AppendJsonEscaped(ctx->source, &b);
  b += "\",\"nodes\":" + std::to_string(ctx->graph.NumNodes());
  b += ",\"edges\":" + std::to_string(ctx->graph.NumEdges());
  if (ctx->info.file_bytes > 0) {
    b += ",\"file_bytes\":" + std::to_string(ctx->info.file_bytes);
    b += ",\"strings\":" + std::to_string(ctx->info.num_strings);
  }
  b += "}\n";
  return conn.WriteResponse(200, "application/json", b);
}

bool EqldServer::HandleSnapshotOpen(HttpConnection& conn,
                                    const HttpRequest& req) {
  std::string path(Trim(req.body));
  if (path.empty()) {
    return WriteError(conn,
                      Status::InvalidArgument("body must be a snapshot path"));
  }
  Status st = OpenSnapshotFile(path);
  if (!st.ok()) return WriteError(conn, st);
  return HandleSnapshotStats(conn, req);
}

bool EqldServer::StreamQuery(
    HttpConnection& conn, const HttpRequest& req,
    const std::shared_ptr<GraphContext>& ctx,
    const std::shared_ptr<const PreparedQuery>& prepared,
    const ParamMap& params, AdmissionTicket ticket) {
  (void)ticket;  // held for the whole stream; released on return

  ResultFormat format = ResultFormat::kJson;
  if (const std::string* f = req.QueryParam("format")) {
    auto parsed = ParseResultFormat(*f);
    if (!parsed.has_value()) {
      return WriteError(conn, Status::InvalidArgument(
                                  "unknown format '" + *f +
                                  "' (expected json, tsv or table)"));
    }
    format = *parsed;
  }
  uint64_t max_rows = 0;
  if (const std::string* m = req.QueryParam("max_rows")) {
    char* end = nullptr;
    max_rows = std::strtoull(m->c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return WriteError(conn, Status::InvalidArgument("bad max_rows"));
    }
  }

  // Quota -> engine budgets. A client may only tighten its timeout; the
  // admission quota is the ceiling.
  ExecOptions opts;
  const AdmissionController::Options& quota = admission_.options();
  int64_t timeout_ms = quota.query_timeout_ms;
  if (const std::string* t = req.QueryParam("timeout_ms")) {
    char* end = nullptr;
    int64_t want = std::strtoll(t->c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || want <= 0) {
      return WriteError(conn, Status::InvalidArgument("bad timeout_ms"));
    }
    timeout_ms = timeout_ms > 0 ? std::min(want, timeout_ms) : want;
  }
  if (timeout_ms > 0) opts.query_timeout_ms = timeout_ms;
  if (quota.memory_budget_bytes > 0) {
    opts.memory_budget_bytes = quota.memory_budget_bytes;
  }

  ChunkSink chunk(conn, ResultFormatContentType(format), options_.fault);
  SerializingSink sink(ctx->graph, format, chunk, max_rows, options_.fault);
  auto result = prepared->Execute(params, sink, opts);
  if (!result.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    // Headers already on the wire mean the response cannot be repaired;
    // drop the connection so the client sees a hard truncation, not a
    // silently complete body.
    if (chunk.begun()) return false;
    return WriteError(conn, result.status());
  }

  rows_streamed_.fetch_add(result->rows_streamed, std::memory_order_relaxed);
  if (result->cancelled) {
    queries_cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else {
    queries_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  // An incomplete document (a serializer write failed even if the socket is
  // healthy) must never be sealed with a terminal chunk: drop the connection
  // so the client sees a hard truncation, not a complete-looking body.
  if (!sink.Finish(FinishInfo{result->outcome, 0})) return false;
  if (chunk.failed()) return false;  // peer vanished mid-stream
  if (!chunk.begun()) {
    // Nothing was serialized at all (can only happen if a format writes no
    // head and no rows); still answer with a complete empty body.
    return conn.WriteResponse(200, ResultFormatContentType(format), "");
  }
  return conn.EndChunked();
}

ServerStats EqldServer::GetStats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    s.connections_accepted = connections_accepted_;
    s.connections_rejected = connections_rejected_;
    s.connections_active = connections_active_;
  }
  s.requests = requests_.load(std::memory_order_relaxed);
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  s.queries_cancelled = queries_cancelled_.load(std::memory_order_relaxed);
  s.rows_streamed = rows_streamed_.load(std::memory_order_relaxed);
  s.admission = admission_.GetStats();
  auto ctx = CurrentContext();
  if (ctx != nullptr) s.cache = ctx->cache.GetStats();
  return s;
}

}  // namespace eql
