// The eqld daemon core: a long-running server exposing the engine's
// Prepare/Execute/streaming API over HTTP/1.1.
//
// Layering (one request, top to bottom):
//
//   HttpConnection (server/http.h)      parse request, write response
//     -> AdmissionController            admit or shed (429 / 503 + Retry-After)
//     -> ResourceGovernor               lease engine memory from the global
//                                       pool; pressure shapes new budgets
//     -> QueryWatchdog                  registered for the execution span;
//                                       cancels overdue queries
//     -> GraphContext                   graph + engine + prepared cache
//     -> PreparedCache / named handles  compile once, execute many
//     -> PreparedQuery::Execute(sink)   stream rows as the search emits
//     -> SerializingSink -> chunk sink  wire format, HTTP chunked framing
//
// Endpoints (details + curl examples in docs/server.md):
//
//   GET  /health              liveness ("ok" once a graph is loaded)
//   GET  /stats               JSON server/admission/cache/graph counters
//   POST /query               body = EQL text; streamed chunked response
//   POST /prepare?name=N      body = EQL text; compile + register handle
//   POST /execute?name=N      run a handle; $param values in query string
//   GET  /snapshot/stats      vitals of the loaded graph
//   POST /snapshot/open       body = snapshot path; hot-swap the graph
//
// Threading model: one acceptor thread + one detached thread per
// connection, bounded by ServerOptions::max_connections (excess connections
// get an immediate 503 and close). Shutdown() stops the acceptor, lets
// in-flight requests finish (ReadRequest polls the stop flag whether the
// connection is idle or mid-request, so parked keep-alive connections AND
// half-sent requests exit within one poll interval) and blocks until the
// last connection thread is gone. A request that stalls mid-read without a
// shutdown (the slowloris shape) is bounded independently by
// HttpLimits::max_request_read_ms: the server answers 408 and closes.
//
// Cancellation: every streamed row travels conn-ward through a chunk sink
// whose failed write (EPIPE after the peer vanished, or an armed
// kFaultSiteNetWrite) makes SerializingSink::OnRow return false — the
// engine then cancels the in-flight searches (QueryResult::cancelled,
// SearchStats observable via /stats' queries_cancelled counter).
//
// Graph hot-swap: requests resolve one shared_ptr<GraphContext> at entry
// and keep it for their whole lifetime; /snapshot/open builds a fresh
// context and swaps the pointer. In-flight queries finish against the old
// graph; prepared handles and cache entries are per-context, so a swap
// invalidates names (documented in docs/server.md).
#ifndef EQL_SERVER_SERVER_H_
#define EQL_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "eval/engine.h"
#include "graph/snapshot.h"
#include "server/admission.h"
#include "server/cache.h"
#include "server/governor.h"
#include "server/http.h"
#include "server/watchdog.h"
#include "util/fault.h"
#include "util/status.h"

namespace eql {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; the bound port is port() after Start
  uint32_t max_connections = 128;
  AdmissionController::Options admission;
  /// Process-wide memory pool + pressure shaping. Defaults disabled: a
  /// governed-off server behaves byte-identically to one without a governor.
  ResourceGovernor::Options governor;
  /// Stuck-query watchdog (sampler starts with the server; defaults never
  /// fire before the engine's own deadline enforcement).
  QueryWatchdog::Options watchdog;
  size_t prepared_cache_capacity = 128;
  HttpLimits http_limits;
  /// How often parked connection readers re-check the stop flag (the upper
  /// bound Shutdown waits on idle keep-alive connections).
  int shutdown_poll_ms = 100;
  EngineOptions engine;
  /// Test-only injector for kFaultSiteAdmit / kFaultSiteFlush /
  /// kFaultSiteNetWrite (not owned, may be null).
  FaultInjector* fault = nullptr;
};

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< over max_connections (503 + close)
  uint32_t connections_active = 0;
  uint64_t requests = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;      ///< Status-level errors (4xx/5xx bodies)
  uint64_t queries_cancelled = 0;   ///< ended by disconnect / write failure
  uint64_t rows_streamed = 0;
  AdmissionController::Stats admission;
  ResourceGovernor::Stats governor;
  QueryWatchdog::Stats watchdog;
  PreparedCache::Stats cache;
};

class EqldServer {
 public:
  explicit EqldServer(ServerOptions options);
  ~EqldServer();  ///< implies Shutdown()
  EqldServer(const EqldServer&) = delete;
  EqldServer& operator=(const EqldServer&) = delete;

  /// Installs an in-memory graph (must be finalized) as the serving context.
  /// Callable before Start or while serving (hot-swap).
  void SetGraph(Graph g, std::string source_desc);

  /// Opens a snapshot file and installs it as the serving context.
  Status OpenSnapshotFile(const std::string& path);

  /// Binds, listens and spawns the acceptor. A server may start without a
  /// graph; query endpoints answer 503 until one is installed.
  Status Start();

  /// Stops accepting, drains in-flight requests, joins every connection.
  /// Idempotent; implied by destruction.
  void Shutdown();

  /// The actually-bound port (after Start; resolves port 0).
  uint16_t port() const { return port_; }

  ServerStats GetStats() const;

 private:
  /// Everything a request needs from "the graph": swapped atomically as one
  /// unit so engine/cache/handles can never mix generations.
  struct GraphContext {
    GraphContext(Graph g, size_t cache_capacity)
        : graph(std::move(g)), cache(cache_capacity) {}
    Graph graph;
    PreparedCache cache;
    std::unique_ptr<EqlEngine> engine;  ///< built after `graph` is in place
    std::mutex handles_mu;
    std::unordered_map<std::string, std::shared_ptr<const PreparedQuery>>
        handles;
    SnapshotInfo info;
    std::string source;
  };

  void InstallContext(std::shared_ptr<GraphContext> ctx);
  std::shared_ptr<GraphContext> CurrentContext() const;

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one parsed request; false = close the connection.
  bool HandleRequest(HttpConnection& conn, const HttpRequest& req);

  bool HandleHealth(HttpConnection& conn, const HttpRequest& req);
  bool HandleStats(HttpConnection& conn, const HttpRequest& req);
  bool HandleQuery(HttpConnection& conn, const HttpRequest& req);
  bool HandlePrepare(HttpConnection& conn, const HttpRequest& req);
  bool HandleExecute(HttpConnection& conn, const HttpRequest& req);
  bool HandleSnapshotStats(HttpConnection& conn, const HttpRequest& req);
  bool HandleSnapshotOpen(HttpConnection& conn, const HttpRequest& req);

  /// This request's admission client key: peer IP as the enforced base,
  /// X-EQL-Client refining it into a cooperative sub-key. Also the
  /// governor's per-client aggregate key and the watchdog report label.
  static std::string ClientKey(HttpConnection& conn, const HttpRequest& req);

  /// Asks the controller for a ticket under this request's keys and shed
  /// class. Handlers call this BEFORE any plan work so shed clients burn no
  /// compile CPU and cannot thrash the prepared cache.
  Result<AdmissionTicket> AdmitRequest(HttpConnection& conn,
                                       const HttpRequest& req,
                                       RequestClass cls);

  /// Executes and streams one already-admitted query (shared by /query and
  /// /execute). `prepared` resolved and `ticket` acquired by the caller
  /// (`admitted_at` = when); the ticket is released after the last response
  /// byte is written. Leases engine memory from the governor, registers the
  /// execution span with the watchdog, and records the admit-to-first-byte
  /// delay that drives adaptive shedding.
  bool StreamQuery(HttpConnection& conn, const HttpRequest& req,
                   const std::shared_ptr<GraphContext>& ctx,
                   const std::shared_ptr<const PreparedQuery>& prepared,
                   const ParamMap& params, AdmissionTicket ticket,
                   std::chrono::steady_clock::time_point admitted_at);

  /// Writes a JSON error body with the shared status -> HTTP mapping.
  /// 429/503 answers carry `Retry-After` scaled by measured overload.
  bool WriteError(HttpConnection& conn, const Status& status);

  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};  ///< read by parked connection readers

  AdmissionController admission_;
  ResourceGovernor governor_;
  QueryWatchdog watchdog_;

  mutable std::mutex ctx_mu_;
  std::shared_ptr<GraphContext> ctx_;  ///< null until a graph is installed

  mutable std::mutex conn_mu_;
  std::condition_variable conn_cv_;  ///< signalled when a connection ends
  uint32_t connections_active_ = 0;
  uint64_t connections_accepted_ = 0;
  uint64_t connections_rejected_ = 0;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> queries_cancelled_{0};
  std::atomic<uint64_t> rows_streamed_{0};
};

}  // namespace eql

#endif  // EQL_SERVER_SERVER_H_
