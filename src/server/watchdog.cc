#include "server/watchdog.h"

#include <cinttypes>
#include <cstdio>

namespace eql {

QueryWatchdog::QueryWatchdog(Options options) : options_(options) {}

QueryWatchdog::~QueryWatchdog() { Stop(); }

void QueryWatchdog::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  sampler_ = std::thread(&QueryWatchdog::Run, this);
}

void QueryWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

uint64_t QueryWatchdog::Register(QueryInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_token_++;
  Entry e;
  e.info = std::move(info);
  if (e.info.progress != nullptr) {
    e.last_progress = e.info.progress->load(std::memory_order_relaxed);
  }
  inflight_.emplace(token, std::move(e));
  return token;
}

bool QueryWatchdog::Unregister(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(token);
  if (it == inflight_.end()) return false;
  const bool fired = it->second.fired;
  inflight_.erase(it);
  return fired;
}

void QueryWatchdog::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                 [&] { return stop_; });
    if (stop_) break;
    Sample(Clock::now());  // mu_ held
  }
}

void QueryWatchdog::Sample(Clock::time_point now) {
  ++samples_;
  // The engine gets a full poll interval past the deadline to enforce it
  // cooperatively before the watchdog steps in — zero false positives on a
  // healthy server is part of the contract (see header).
  const auto slack = std::chrono::milliseconds(options_.poll_interval_ms +
                                               options_.grace_ms);
  for (auto& [token, e] : inflight_) {
    if (e.fired) continue;
    Clock::time_point effective = e.info.deadline;
    if (options_.max_query_ms > 0) {
      const auto cap = e.info.start + std::chrono::milliseconds(options_.max_query_ms);
      if (cap < effective) effective = cap;
    }
    if (effective == Clock::time_point::max() || now <= effective + slack) {
      // Not overdue: refresh the liveness sample and move on.
      if (e.info.progress != nullptr) {
        e.last_progress = e.info.progress->load(std::memory_order_relaxed);
      }
      continue;
    }
    // Overdue past the engine's own enforcement window: fire the cancel.
    const uint64_t progress_now =
        e.info.progress != nullptr
            ? e.info.progress->load(std::memory_order_relaxed)
            : 0;
    const bool advancing = e.info.progress != nullptr &&
                           progress_now != e.last_progress;
    if (e.info.cancel != nullptr) {
      e.info.cancel->store(true, std::memory_order_relaxed);
    }
    e.fired = true;
    ++cancelled_;
    if (options_.log_reports) {
      const auto overdue_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                  now - effective)
                                  .count();
      const auto age_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              now - e.info.start)
                              .count();
      std::fprintf(stderr,
                   "eqld: watchdog cancelled query token=%" PRIu64
                   " endpoint=%s client=%s age_ms=%lld overdue_ms=%lld"
                   " progress_ticks=%" PRIu64 " advancing=%s\n",
                   token, e.info.endpoint.c_str(), e.info.client.c_str(),
                   static_cast<long long>(age_ms),
                   static_cast<long long>(overdue_ms), progress_now,
                   advancing ? "yes" : "no");
    }
  }
}

QueryWatchdog::Stats QueryWatchdog::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.cancelled = cancelled_;
  s.samples = samples_;
  s.in_flight = static_cast<uint32_t>(inflight_.size());
  return s;
}

}  // namespace eql
