// Stuck-query watchdog for the eqld daemon.
//
// The engine enforces deadlines cooperatively: searches poll their deadline
// every ~128 operations and wind down cleanly. That covers the overwhelming
// majority of queries — but "never misses a deadline" must hold even when
// the cooperative machinery doesn't: time spent outside poll sites (joins,
// serialization against a slow peer), a future bug that skips a poll, or a
// query admitted with no engine deadline at all. The watchdog turns the
// deadline claim into an ENFORCED runtime invariant:
//
//   * every in-flight query is registered with its start time, deadline,
//     cancel flag (ExecOptions::cancel) and liveness counter
//     (ExecOptions::progress, bumped by the searches at their deadline-poll
//     sites);
//   * a sampler thread wakes every poll_interval_ms and, for a query past
//     its deadline by more than the poll interval (plus grace_ms), fires
//     the cancel flag — the same lever a disconnecting client pulls, so the
//     query unwinds through the existing cancellation path with a
//     well-formed partial result;
//   * each fired cancel is counted (queries_watchdog_cancelled in /stats)
//     and logged as one structured stderr line that includes whether the
//     progress counter was still advancing — "stuck" and "slow but alive"
//     are different bugs;
//   * max_query_ms (off by default) additionally bounds EVERY query's
//     wall-clock, deadline or not — the backstop for quotas configured with
//     --timeout-ms 0.
//
// False-positive discipline: the watchdog only ever fires STRICTLY after
// deadline + poll interval + grace, i.e. after the engine had a full extra
// poll interval to enforce the deadline itself. A healthy server therefore
// shows queries_watchdog_cancelled == 0 (the chaos suite asserts this on
// idle and under clean load).
//
// Thread-safe. Register/Unregister are O(1) amortized; the sampler holds
// the lock only while scanning the (small, = in-flight queries) table.
#ifndef EQL_SERVER_WATCHDOG_H_
#define EQL_SERVER_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace eql {

class QueryWatchdog {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Sampler wake interval. Also the slack added on top of a query's
    /// deadline before the watchdog may fire (the engine gets at least one
    /// full interval to enforce its own deadline first).
    int poll_interval_ms = 100;
    /// Extra slack beyond the poll interval.
    int grace_ms = 100;
    /// Hard wall-clock cap applied to every query independently of its
    /// engine deadline; 0 = off. The backstop for unlimited quotas.
    int64_t max_query_ms = 0;
    /// Emit one structured stderr line per fired cancel.
    bool log_reports = true;
  };

  /// One in-flight query as the watchdog sees it.
  struct QueryInfo {
    std::string endpoint;  ///< "/query", "/execute", ...
    std::string client;    ///< admission client key (for the report)
    Clock::time_point start;
    /// Engine deadline; Clock::time_point::max() = no deadline.
    Clock::time_point deadline;
    /// Fired to cancel the query (not owned; must outlive the registration).
    std::atomic<bool>* cancel = nullptr;
    /// Liveness counter (ExecOptions::progress; not owned, may be null).
    const std::atomic<uint64_t>* progress = nullptr;
  };

  struct Stats {
    uint64_t cancelled = 0;  ///< queries_watchdog_cancelled
    uint64_t samples = 0;    ///< sampler sweeps completed
    uint32_t in_flight = 0;  ///< currently registered queries
  };

  explicit QueryWatchdog(Options options);
  ~QueryWatchdog();  ///< implies Stop()
  QueryWatchdog(const QueryWatchdog&) = delete;
  QueryWatchdog& operator=(const QueryWatchdog&) = delete;

  /// Spawns the sampler thread. Idempotent.
  void Start();
  /// Joins the sampler. Idempotent; registered queries stay registered (a
  /// drain can still Unregister after Stop).
  void Stop();

  /// Registers one in-flight query; returns the token for Unregister.
  /// `info.cancel` and `info.progress` must stay valid until Unregister.
  uint64_t Register(QueryInfo info);

  /// Removes a registration. Returns true when the watchdog had cancelled
  /// this query (the caller's result will report cancelled).
  bool Unregister(uint64_t token);

  Stats GetStats() const;

 private:
  struct Entry {
    QueryInfo info;
    uint64_t last_progress = 0;  ///< progress value at the previous sample
    bool fired = false;
  };

  void Run();
  void Sample(Clock::time_point now);

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< wakes the sampler early on Stop
  bool running_ = false;
  bool stop_ = false;
  std::thread sampler_;
  uint64_t next_token_ = 1;
  std::unordered_map<uint64_t, Entry> inflight_;
  uint64_t cancelled_ = 0;
  uint64_t samples_ = 0;
};

}  // namespace eql

#endif  // EQL_SERVER_WATCHDOG_H_
