#include "storage/bgp_eval.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace eql {

std::vector<std::vector<size_t>> GroupIntoBgpIndices(
    const std::vector<EdgePattern>& patterns) {
  // Union-find over pattern indexes, united through shared variables.
  std::vector<size_t> parent(patterns.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::map<std::string, size_t> first_use;
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (const Predicate* p :
         {&patterns[i].source, &patterns[i].edge, &patterns[i].target}) {
      auto [it, inserted] = first_use.emplace(p->var, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  std::map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < patterns.size(); ++i) groups[find(i)].push_back(i);
  std::vector<std::vector<size_t>> out;
  for (auto& [root, group] : groups) out.push_back(std::move(group));
  return out;
}

std::vector<std::vector<EdgePattern>> GroupIntoBgps(
    const std::vector<EdgePattern>& patterns) {
  std::vector<std::vector<EdgePattern>> out;
  for (const std::vector<size_t>& group : GroupIntoBgpIndices(patterns)) {
    std::vector<EdgePattern> bgp;
    for (size_t i : group) bgp.push_back(patterns[i]);
    out.push_back(std::move(bgp));
  }
  return out;
}

namespace {

/// Returns the constant of an equality condition on `property`, or nullptr.
const std::string* EqConstant(const Predicate& p, const char* property) {
  for (const Condition& c : p.conditions) {
    if (c.op == CompareOp::kEq && c.property == property) return &c.constant;
  }
  return nullptr;
}

}  // namespace

BindingTable EvaluateEdgePattern(const Graph& g, const EdgePattern& ep) {
  BindingTable out({ep.source.var, ep.edge.var, ep.target.var},
                   {ColKind::kNode, ColKind::kEdge, ColKind::kNode});
  auto emit_if_match = [&](EdgeId e) {
    NodeId s = g.Source(e), d = g.Target(e);
    if (!PredicateMatches(g, ep.edge, e, false)) return;
    if (!PredicateMatches(g, ep.source, s, true)) return;
    if (!PredicateMatches(g, ep.target, d, true)) return;
    out.AddRow({s, e, d});
  };

  // Access path 1: edge label pinned -> edge-label index.
  if (const std::string* label = EqConstant(ep.edge, "label")) {
    StrId id = g.dict().Lookup(*label);
    if (id == kNoStrId) return out;
    for (EdgeId e : g.EdgesWithLabel(id)) emit_if_match(e);
    return out;
  }
  // Access path 2/3: source or target pinned by label/type -> directed
  // adjacency of the matching nodes.
  auto pinned_nodes = [&](const Predicate& p) -> std::optional<std::vector<NodeId>> {
    if (EqConstant(p, "label") != nullptr || EqConstant(p, "type") != nullptr) {
      return NodesMatchingPredicate(g, p);
    }
    return std::nullopt;
  };
  if (auto sources = pinned_nodes(ep.source)) {
    for (NodeId n : *sources) {
      for (const IncidentEdge& ie : g.OutEdges(n)) emit_if_match(ie.edge);
    }
    return out;
  }
  if (auto targets = pinned_nodes(ep.target)) {
    for (NodeId n : *targets) {
      for (const IncidentEdge& ie : g.InEdges(n)) emit_if_match(ie.edge);
    }
    return out;
  }
  // Fallback: full edge scan.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) emit_if_match(e);
  return out;
}

Result<BindingTable> EvaluateBgp(const Graph& g,
                                 const std::vector<EdgePattern>& bgp) {
  if (bgp.empty()) return Status::InvalidArgument("empty BGP");
  std::vector<BindingTable> tables;
  tables.reserve(bgp.size());
  for (const EdgePattern& ep : bgp) tables.push_back(EvaluateEdgePattern(g, ep));

  // Greedy left-deep join: start from the smallest table, repeatedly join
  // the smallest table sharing a column (the BGP is connected, so one
  // always exists).
  std::vector<bool> used(tables.size(), false);
  size_t start = 0;
  for (size_t i = 1; i < tables.size(); ++i) {
    if (tables[i].NumRows() < tables[start].NumRows()) start = i;
  }
  BindingTable acc = std::move(tables[start]);
  used[start] = true;
  for (size_t step = 1; step < tables.size(); ++step) {
    int best = -1;
    for (size_t i = 0; i < tables.size(); ++i) {
      if (used[i]) continue;
      bool shares = false;
      for (const auto& col : tables[i].columns()) {
        if (acc.HasColumn(col)) {
          shares = true;
          break;
        }
      }
      if (!shares) continue;
      if (best < 0 || tables[i].NumRows() < tables[best].NumRows()) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      return Status::Internal("BGP not connected despite grouping");
    }
    acc = BindingTable::NaturalJoin(acc, tables[best]);
    used[best] = true;
  }
  return acc;
}

}  // namespace eql
