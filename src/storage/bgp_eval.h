// Conjunctive BGP evaluation — step (A) of the evaluation strategy
// (Section 3). This is the stand-in for the paper's PostgreSQL substrate:
// index scans over the graph's inverted indexes feed a greedy left-deep
// hash-join of the edge patterns.
#ifndef EQL_STORAGE_BGP_EVAL_H_
#define EQL_STORAGE_BGP_EVAL_H_

#include <vector>

#include "graph/graph.h"
#include "query/ast.h"
#include "storage/binding_table.h"
#include "util/status.h"

namespace eql {

/// Groups triple patterns into maximal variable-connected components — the
/// query's BGPs b_1..b_k in the sense of Definition 2.4.
std::vector<std::vector<EdgePattern>> GroupIntoBgps(
    const std::vector<EdgePattern>& patterns);

/// Same grouping, but as pattern *indexes* into the input. Grouping depends
/// only on variable names, never on constants, so indexes computed at
/// Prepare time remain valid for the `$`-bound copy of the query — the
/// planner (eval/plan.h) stores these and rebuilds each group's patterns
/// from the bound AST per execution.
std::vector<std::vector<size_t>> GroupIntoBgpIndices(
    const std::vector<EdgePattern>& patterns);

/// Evaluates one edge pattern to a [source, edge, target] binding table,
/// choosing the cheapest access path (edge-label index, node-label/type
/// index + directed adjacency, or full edge scan).
BindingTable EvaluateEdgePattern(const Graph& g, const EdgePattern& pattern);

/// Evaluates a connected BGP: per-pattern tables joined greedily, smallest
/// first, always joining on at least one shared variable.
Result<BindingTable> EvaluateBgp(const Graph& g,
                                 const std::vector<EdgePattern>& bgp);

}  // namespace eql

#endif  // EQL_STORAGE_BGP_EVAL_H_
