#include "storage/binding_table.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"

namespace eql {

BindingTable::BindingTable(std::vector<std::string> columns,
                           std::vector<ColKind> kinds)
    : columns_(std::move(columns)), kinds_(std::move(kinds)) {
  assert(columns_.size() == kinds_.size());
}

int BindingTable::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void BindingTable::AddRow(std::vector<uint32_t> row) {
  assert(row.size() == columns_.size());
  rows_.push_back(std::move(row));
}

BindingTable BindingTable::NaturalJoin(const BindingTable& a, const BindingTable& b) {
  // Shared columns define the join key.
  std::vector<std::pair<int, int>> shared;  // (a index, b index)
  std::vector<int> b_extra;
  for (size_t j = 0; j < b.columns_.size(); ++j) {
    int i = a.ColumnIndex(b.columns_[j]);
    if (i >= 0) {
      shared.emplace_back(i, static_cast<int>(j));
    } else {
      b_extra.push_back(static_cast<int>(j));
    }
  }

  std::vector<std::string> out_cols = a.columns_;
  std::vector<ColKind> out_kinds = a.kinds_;
  for (int j : b_extra) {
    out_cols.push_back(b.columns_[j]);
    out_kinds.push_back(b.kinds_[j]);
  }
  BindingTable out(std::move(out_cols), std::move(out_kinds));

  if (shared.empty()) {
    // Cross product.
    for (const auto& ra : a.rows_) {
      for (const auto& rb : b.rows_) {
        std::vector<uint32_t> row = ra;
        for (int j : b_extra) row.push_back(rb[j]);
        out.AddRow(std::move(row));
      }
    }
    return out;
  }

  // Build on b, probe with a (joins here are small; no size-based swap).
  auto key_of = [&](const std::vector<uint32_t>& row, bool is_a) {
    uint64_t h = 0x9ae16a3b2f90404fULL;
    for (const auto& [ia, ib] : shared) h = HashCombine(h, row[is_a ? ia : ib]);
    return h;
  };
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  for (size_t r = 0; r < b.rows_.size(); ++r) {
    index[key_of(b.rows_[r], false)].push_back(r);
  }
  for (const auto& ra : a.rows_) {
    auto it = index.find(key_of(ra, true));
    if (it == index.end()) continue;
    for (size_t rbi : it->second) {
      const auto& rb = b.rows_[rbi];
      bool match = true;
      for (const auto& [ia, ib] : shared) {
        if (ra[ia] != rb[ib]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<uint32_t> row = ra;
      for (int j : b_extra) row.push_back(rb[j]);
      out.AddRow(std::move(row));
    }
  }
  return out;
}

Result<BindingTable> BindingTable::Project(const std::vector<std::string>& cols,
                                           bool distinct) const {
  std::vector<int> idx;
  std::vector<ColKind> kinds;
  for (const auto& c : cols) {
    int i = ColumnIndex(c);
    if (i < 0) return Status::NotFound("projection column ?" + c + " missing");
    idx.push_back(i);
    kinds.push_back(kinds_[i]);
  }
  BindingTable out(cols, std::move(kinds));
  std::unordered_set<uint64_t> seen;
  std::vector<std::vector<uint32_t>> seen_rows;  // collision-exact dedup
  for (const auto& row : rows_) {
    std::vector<uint32_t> proj;
    proj.reserve(idx.size());
    for (int i : idx) proj.push_back(row[i]);
    if (distinct) {
      uint64_t h = HashIdSpan(proj.data(), proj.size());
      if (!seen.insert(h).second) {
        bool dup = false;
        for (const auto& sr : seen_rows) {
          if (sr == proj) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
      }
      seen_rows.push_back(proj);
    }
    out.AddRow(std::move(proj));
  }
  return out;
}

std::vector<uint32_t> BindingTable::DistinctValues(std::string_view col) const {
  int i = ColumnIndex(col);
  if (i < 0) return {};
  std::vector<uint32_t> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[i]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string BindingTable::DebugString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += "\t";
    out += "?" + columns_[c];
  }
  out += "\n";
  for (size_t r = 0; r < rows_.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += "\t";
      out += std::to_string(rows_[r][c]);
    }
    out += "\n";
  }
  if (rows_.size() > max_rows) out += "... (" + std::to_string(rows_.size()) + " rows)\n";
  return out;
}

}  // namespace eql
