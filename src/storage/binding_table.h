// Binding tables: the relational workhorse of the evaluation strategy
// (Section 3). BGP embeddings are materialized into tables (step A), CTP
// results become tables (step B), and the query result is a projection over
// their natural join (step C).
//
// Columns are named by variable and typed (node / edge / tree handle);
// NaturalJoin hash-joins on all shared column names, degrading to a cross
// product when none are shared — exactly Definition 2.10's ⋈.
#ifndef EQL_STORAGE_BINDING_TABLE_H_
#define EQL_STORAGE_BINDING_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace eql {

/// What a column's uint32 values denote.
enum class ColKind : uint8_t { kNode, kEdge, kTree };

/// A named-column table of uint32 bindings (row-major).
class BindingTable {
 public:
  BindingTable() = default;
  BindingTable(std::vector<std::string> columns, std::vector<ColKind> kinds);

  size_t NumRows() const { return rows_.size(); }
  size_t NumColumns() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  ColKind kind(size_t c) const { return kinds_[c]; }

  /// Index of a column name, or -1.
  int ColumnIndex(std::string_view name) const;
  bool HasColumn(std::string_view name) const { return ColumnIndex(name) >= 0; }

  /// Appends a row; arity must match.
  void AddRow(std::vector<uint32_t> row);

  const std::vector<uint32_t>& Row(size_t r) const { return rows_[r]; }
  uint32_t At(size_t r, size_t c) const { return rows_[r][c]; }

  /// Natural join on all shared column names (cross product if none).
  static BindingTable NaturalJoin(const BindingTable& a, const BindingTable& b);

  /// Projection onto `cols` (all must exist); optionally deduplicated.
  Result<BindingTable> Project(const std::vector<std::string>& cols,
                               bool distinct) const;

  /// Sorted distinct values of one column; empty if the column is missing.
  std::vector<uint32_t> DistinctValues(std::string_view col) const;

  std::string DebugString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> columns_;
  std::vector<ColKind> kinds_;
  std::vector<std::vector<uint32_t>> rows_;
};

}  // namespace eql

#endif  // EQL_STORAGE_BINDING_TABLE_H_
