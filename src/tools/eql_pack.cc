// eql_pack: pack text graphs into mmap snapshots, generate synthetic
// inputs, and inspect/verify snapshot files.
//
//   eql_pack pack <input> -o <out> [--threads N] [--format tsv|nt] [--json]
//   eql_pack gen -o <out.tsv> [--nodes N] [--edges E] [--seed S]
//                [--labels L] [--types T]
//   eql_pack info <file>
//   eql_pack verify <file>
//
// `pack` runs the parallel bulk loader (graph/bulk_load.h); its output is
// deterministic (byte-identical across thread counts). `gen` writes the
// seeded scale-free generator's graph as TSV so the pack path is exercised
// end to end. `verify` re-reads every section checksum.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "gen/kg.h"
#include "graph/bulk_load.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitError = 2;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  eql_pack pack <input> -o <out> [--threads N] [--format tsv|nt] "
      "[--json]\n"
      "  eql_pack gen -o <out.tsv> [--nodes N] [--edges E] [--seed S] "
      "[--labels L] [--types T]\n"
      "  eql_pack info <file>\n"
      "  eql_pack verify <file>\n");
  return kExitUsage;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int RunPack(int argc, char** argv) {
  std::string input, output;
  eql::BulkLoadOptions options;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      options.num_threads = std::atoi(argv[++i]);
    } else if (arg == "--format" && i + 1 < argc) {
      std::string f = argv[++i];
      if (f == "tsv") {
        options.format = eql::BulkLoadFormat::kTsv;
      } else if (f == "nt") {
        options.format = eql::BulkLoadFormat::kNTriples;
      } else {
        std::fprintf(stderr, "unknown --format %s (want tsv|nt)\n", f.c_str());
        return kExitUsage;
      }
    } else if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && arg[0] != '-' && input.empty()) {
      input = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (input.empty() || output.empty()) return Usage();

  eql::Result<eql::BulkLoadStats> r =
      eql::PackGraphFile(input, output, options);
  if (!r.ok()) {
    std::fprintf(stderr, "eql_pack: %s\n", r.status().ToString().c_str());
    return kExitError;
  }
  const eql::BulkLoadStats& s = *r;
  const double total = s.parse_seconds + s.merge_seconds + s.write_seconds;
  const uint64_t rss = eql::CurrentPeakRssBytes();
  std::fprintf(stderr,
               "packed %s -> %s\n"
               "  input      %.1f MB, %llu lines\n"
               "  graph      %llu nodes, %llu edges, %llu strings\n"
               "  output     %.1f MB\n"
               "  time       %.2fs (parse %.2fs x%d threads, merge %.2fs, "
               "write %.2fs)\n"
               "  throughput %.1f MB/s, %.0f edges/s\n"
               "  peak rss   %.1f MB\n",
               input.c_str(), output.c_str(), s.input_bytes / 1e6,
               (unsigned long long)s.num_lines, (unsigned long long)s.num_nodes,
               (unsigned long long)s.num_edges,
               (unsigned long long)s.num_strings, s.output_bytes / 1e6, total,
               s.parse_seconds, s.threads_used, s.merge_seconds,
               s.write_seconds, total > 0 ? s.input_bytes / 1e6 / total : 0.0,
               total > 0 ? s.num_edges / total : 0.0, rss / 1e6);
  if (json) {
    std::printf(
        "{\"input_bytes\": %llu, \"output_bytes\": %llu, \"num_lines\": %llu, "
        "\"num_nodes\": %llu, \"num_edges\": %llu, \"num_strings\": %llu, "
        "\"threads\": %d, \"parse_seconds\": %.6f, \"merge_seconds\": %.6f, "
        "\"write_seconds\": %.6f, \"peak_rss_bytes\": %llu}\n",
        (unsigned long long)s.input_bytes, (unsigned long long)s.output_bytes,
        (unsigned long long)s.num_lines, (unsigned long long)s.num_nodes,
        (unsigned long long)s.num_edges, (unsigned long long)s.num_strings,
        s.threads_used, s.parse_seconds, s.merge_seconds, s.write_seconds,
        (unsigned long long)rss);
  }
  return kExitOk;
}

int RunGen(int argc, char** argv) {
  std::string output;
  eql::KgParams params;
  params.num_nodes = 100000;
  params.num_edges = 400000;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--nodes" && i + 1 < argc) {
      params.num_nodes = static_cast<uint32_t>(std::atoll(argv[++i]));
    } else if (arg == "--edges" && i + 1 < argc) {
      params.num_edges = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      params.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--labels" && i + 1 < argc) {
      params.num_labels = std::atoi(argv[++i]);
    } else if (arg == "--types" && i + 1 < argc) {
      params.num_types = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (output.empty()) return Usage();

  auto start = std::chrono::steady_clock::now();
  eql::Result<eql::Graph> g = eql::MakeSyntheticKg(params);
  if (!g.ok()) {
    std::fprintf(stderr, "eql_pack: %s\n", g.status().ToString().c_str());
    return kExitError;
  }
  eql::Status st = eql::SaveGraphFile(*g, output);
  if (!st.ok()) {
    std::fprintf(stderr, "eql_pack: %s\n", st.ToString().c_str());
    return kExitError;
  }
  std::fprintf(stderr,
               "generated %s: %zu nodes, %zu edges (seed %llu) in %.1fms\n",
               output.c_str(), g->NumNodes(), g->NumEdges(),
               (unsigned long long)params.seed, MsSince(start));
  return kExitOk;
}

int RunInfo(const std::string& path) {
  eql::Result<eql::SnapshotInfo> info = eql::ReadSnapshotInfo(path);
  if (!info.ok()) {
    std::fprintf(stderr, "eql_pack: %s\n", info.status().ToString().c_str());
    return kExitError;
  }
  std::printf(
      "%s: %llu bytes, %llu nodes, %llu edges, %llu strings\n", path.c_str(),
      (unsigned long long)info->file_bytes, (unsigned long long)info->num_nodes,
      (unsigned long long)info->num_edges,
      (unsigned long long)info->num_strings);
  return kExitOk;
}

int RunVerify(const std::string& path) {
  auto start = std::chrono::steady_clock::now();
  eql::SnapshotOpenOptions options;
  options.verify_checksums = true;
  eql::Result<eql::Graph> g = eql::OpenSnapshot(path, options);
  if (!g.ok()) {
    std::fprintf(stderr, "eql_pack: %s\n", g.status().ToString().c_str());
    return kExitError;
  }
  std::printf("%s: ok (%zu nodes, %zu edges; verified in %.1fms)\n",
              path.c_str(), g->NumNodes(), g->NumEdges(), MsSince(start));
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "pack") return RunPack(argc - 2, argv + 2);
  if (cmd == "gen") return RunGen(argc - 2, argv + 2);
  if (cmd == "info" && argc == 3) return RunInfo(argv[2]);
  if (cmd == "verify" && argc == 3) return RunVerify(argv[2]);
  return Usage();
}
