// eql_shell — run EQL queries against a triple file from the command line.
//
// Usage:
//   eql_shell GRAPH.tsv [options] [-q QUERY]...
//   eql_shell --snapshot GRAPH.snap [options] [-q QUERY]...
//   eql_shell GRAPH.tsv < queries.eql        (queries separated by ';')
//
// Options:
//   -q QUERY          run this query (repeatable); otherwise read stdin
//   --snapshot FILE   serve queries from an mmap'd binary snapshot
//                     (graph/snapshot.h; produce one with eql_pack) instead
//                     of parsing a triple file
//   --algorithm NAME  bft|bft_m|bft_am|gam|esp|moesp|lesp|molesp (default molesp)
//   --adaptive        pick ESP automatically for plain m=2 CTPs (Property 3)
//   --parallel N      evaluate CTPs on a worker pool, split N ways (0 = off)
//   --timeout MS      default per-CTP timeout (default 60000)
//   --query-timeout MS whole-query wall-clock budget (default: none)
//   --memory-budget BYTES
//                     per-query search-memory budget (default: none); a run
//                     that hits it keeps its partial results and exits 5
//   --stream          stream rows as the search produces them (prints the
//                     time to first row); materialized output otherwise
//   --format NAME     result format: table (default, aligned columns), tsv,
//                     or json (SPARQL-results-style). Shares the eqld
//                     daemon's serializers (src/server/format.h), so shell
//                     output is byte-identical to the server's for the same
//                     rows. Result documents go to stdout; timing and
//                     telemetry lines go to stderr, so piped output stays
//                     machine-parseable.
//   --max-rows N      print at most N result rows per query (default 20)
//   --stats           print per-CTP search statistics
//   --explain         print the query plan (with post-execution actuals)
//                     after each query
//   --no-planner      disable cost-based stage ordering / skipping / CSE;
//                     stages run in fixed query order (results are identical
//                     either way — see "Planning & EXPLAIN" in eval/engine.h)
//   --no-views        disable compiled LABEL/UNI adjacency views (ctp/view.h)
//   --no-bound-pruning disable TOP-k score bound pruning (ctp/gam.h)
//   --demo            load the paper's Figure 1 graph instead of a file
//
// Interactive / piped mode additionally understands dot-commands on their
// own line:
//   .parallel N       switch CTP parallelism to N chunks (0 = sequential)
//   .views on|off     toggle compiled filter views
//   .planner on|off   toggle the cost-based planner
//   .explain on|off   toggle the per-query plan printout
//   .stats on|off     toggle the per-CTP statistics dump (rows, trees,
//                     time, view/skip/share flags, outcome)
//   .stats            (no argument) print the session status: graph source,
//                     snapshot open-time and mapped bytes, engine options
//   .open FILE        switch to serving queries from snapshot FILE
//                     (mmap zero-copy; drops prepared queries)
//   .stream on|off    toggle streaming row delivery
//   .batch FILE       run the ';'-separated queries in FILE as one batch
//                     through EqlEngine::RunBatch (amortizes the pool)
//   .prepare NAME QUERY;
//                     compile QUERY (which may use $param placeholders) once
//                     under NAME — the query text runs to the next ';', so
//                     it may span lines
//   .bind NAME $k=v [$k2=v2 ...]
//                     set NAME's parameters (strings may be "quoted";
//                     integers bind as integers)
//   .run NAME         execute the prepared query with its bound parameters
//
// Exit codes (the highest-numbered category encountered wins when several
// statements run): 0 = all queries ran to completion; 1 = the graph failed
// to load; 2 = bad command line; 3 = a query failed to parse/validate/
// prepare; 4 = a query failed during execution; 5 = a query ended on a
// resource cutoff (TIMEOUT, query deadline, memory budget, cancellation) —
// its partial results were printed, but coverage was reduced. Status-level
// failures map to categories through ShellExitCodeForCode (util/status.h) —
// the same single mapping the eqld daemon uses for HTTP codes.
//
// The graph file format is the tab-separated triple format of
// src/graph/graph_io.h ("src<TAB>label<TAB>dst", plus @type/@literal lines).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.h"

#include "eval/engine.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "server/format.h"
#include "util/string_util.h"

namespace eql {
namespace {

Graph MakeDemoGraph() {
  const char* triples =
      "Bob\tfounded\tOrgB\n"
      "Alice\tinvestsIn\tOrgB\n"
      "Bob\tparentOf\tAlice\n"
      "OrgB\tlocatedIn\tFrance\n"
      "Bob\tcitizenOf\tUSA\n"
      "Carole\tcitizenOf\tUSA\n"
      "Carole\tfounded\tOrgA\n"
      "Doug\tCEO\tOrgA\n"
      "Doug\tinvestsIn\tOrgC\n"
      "Carole\tfounded\tOrgC\n"
      "Elon\tparentOf\tDoug\n"
      "Alice\tcitizenOf\tFrance\n"
      "Doug\tcitizenOf\tFrance\n"
      "Elon\tcitizenOf\tFrance\n"
      "OrgC\tlocatedIn\tUSA\n"
      "Elon\taffiliation\tNLP\n"
      "OrgB\tfunds\tNLP\n"
      "Falcon\taffiliation\tNLP\n"
      "Falcon\tinvestsIn\tUSA\n"
      "@type\tBob\tentrepreneur\n"
      "@type\tAlice\tentrepreneur\n"
      "@type\tCarole\tentrepreneur\n"
      "@type\tDoug\tentrepreneur\n"
      "@type\tElon\tpolitician\n"
      "@type\tFalcon\tpolitician\n"
      "@type\tOrgA\tcompany\n"
      "@type\tOrgB\tcompany\n"
      "@type\tOrgC\tcompany\n"
      "@type\tUSA\tcountry\n"
      "@type\tFrance\tcountry\n";
  auto g = ParseGraphText(triples);
  return std::move(g).value();
}

// Exit-code categories (see the file comment). Several statements may run
// in one invocation; the highest-numbered category encountered is returned.
constexpr int kExitOk = 0;
constexpr int kExitGraphLoad = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParse = 3;
constexpr int kExitExec = 4;
constexpr int kExitResource = 5;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s GRAPH.tsv|--snapshot FILE|--demo [--algorithm NAME] "
               "[--adaptive]\n"
               "       [--parallel N] [--timeout MS] [--query-timeout MS]\n"
               "       [--memory-budget BYTES] [--stream] [--format table|tsv|json]\n"
               "       [--max-rows N] [--stats]\n"
               "       [--explain] [--no-planner] [--no-views] [--no-bound-pruning]\n"
               "       [-q QUERY]...\n",
               argv0);
  return kExitUsage;
}

/// Maps a finished execution to an exit-code category: a resource cutoff
/// (timeout, memory budget, cancellation) is not an error — results were
/// printed, with the serializer's own "(partial results)" note — but it must
/// not exit 0 either, or scripts treat a truncated answer as a complete one.
int OutcomeExitCode(const QueryResult& r) {
  return r.outcome == SearchOutcome::kOk ? kExitOk : kExitResource;
}

struct ShellArgs {
  std::string graph_path;
  std::string snapshot_path;
  bool demo = false;
  bool stats = false;
  bool explain = false;
  bool stream = false;
  size_t max_rows = 20;
  ResultFormat format = ResultFormat::kTable;
  EngineOptions options;
  std::vector<std::string> queries;
};

bool ParseArgs(int argc, char** argv, ShellArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--demo") {
      args->demo = true;
    } else if (a == "--stats") {
      args->stats = true;
    } else if (a == "--explain") {
      args->explain = true;
    } else if (a == "--no-planner") {
      args->options.use_planner = false;
    } else if (a == "--no-views") {
      args->options.use_compiled_views = false;
    } else if (a == "--no-bound-pruning") {
      args->options.bound_pruning = false;
    } else if (a == "--adaptive") {
      args->options.adaptive_algorithm = true;
    } else if (a == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return false;
      auto kind = ParseAlgorithmName(v);
      if (!kind) {
        std::fprintf(stderr, "unknown algorithm '%s'\n", v);
        return false;
      }
      args->options.algorithm = *kind;
    } else if (a == "--parallel") {
      const char* v = next();
      if (v == nullptr) return false;
      long n = std::atol(v);
      if (n < 0 || n > 256) {
        std::fprintf(stderr, "--parallel must be in [0, 256]\n");
        return false;
      }
      args->options.num_threads = static_cast<unsigned>(n);
    } else if (a == "--timeout") {
      const char* v = next();
      if (v == nullptr) return false;
      args->options.default_ctp_timeout_ms = std::atoll(v);
    } else if (a == "--query-timeout") {
      const char* v = next();
      if (v == nullptr) return false;
      args->options.default_query_timeout_ms = std::atoll(v);
    } else if (a == "--memory-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      long long bytes = std::atoll(v);
      if (bytes <= 0) {
        std::fprintf(stderr, "--memory-budget must be a positive byte count\n");
        return false;
      }
      args->options.default_memory_budget_bytes = static_cast<size_t>(bytes);
    } else if (a == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return false;
      args->snapshot_path = v;
    } else if (a == "--stream") {
      args->stream = true;
    } else if (a == "--format") {
      const char* v = next();
      if (v == nullptr) return false;
      auto format = ParseResultFormat(v);
      if (!format.has_value()) {
        std::fprintf(stderr,
                     "unknown format '%s' (expected table, tsv or json)\n", v);
        return false;
      }
      args->format = *format;
    } else if (a == "--max-rows") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_rows = static_cast<size_t>(std::atoll(v));
    } else if (a == "-q") {
      const char* v = next();
      if (v == nullptr) return false;
      args->queries.push_back(v);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return false;
    } else if (args->graph_path.empty()) {
      args->graph_path = a;
    } else {
      return false;
    }
  }
  if (!args->snapshot_path.empty() && !args->graph_path.empty()) {
    std::fprintf(stderr, "give either GRAPH.tsv or --snapshot FILE, not both\n");
    return false;
  }
  return args->demo || !args->graph_path.empty() ||
         !args->snapshot_path.empty();
}

/// How the current graph came to be; the bare `.stats` command reports it.
struct GraphSource {
  std::string path;  ///< empty for the demo graph
  bool snapshot = false;
  double open_ms = 0;
  uint64_t mapped_bytes = 0;
};

/// Serializes a materialized result to stdout in the session's --format,
/// via the same serializers the eqld daemon streams over HTTP.
void PrintResult(const Graph& g, const ShellArgs& args, const QueryResult& r) {
  FileByteSink out(stdout);
  SerializeResult(g, r, args.format, out, args.max_rows);
  std::fflush(stdout);
}

void PrintCtpStats(const QueryResult& r) {
  for (const auto& run : r.ctp_runs) {
    std::string mode;
    if (run.used_subset_queues) mode += ", subset-queues";
    if (run.parallel_chunks > 0) {
      mode += ", " + std::to_string(run.parallel_chunks) + " chunks";
    }
    if (run.used_view) mode += ", view";
    if (run.dead_labels) mode += ", dead-labels";
    if (run.skipped) mode += ", skipped";
    if (run.shared) mode += ", shared";
    if (run.streamed_rows) mode += ", streamed";
    std::fprintf(stderr, "  [?%s via %s%s] rows=%zu outcome=%s %s\n",
                 run.tree_var.c_str(), AlgorithmName(run.algorithm),
                 mode.c_str(), run.num_results,
                 SearchOutcomeName(run.stats.Outcome()),
                 run.stats.ToString().c_str());
  }
}

/// Streaming execution of one prepared query: rows serialize to stdout as
/// they arrive, in the session's --format (table buffers until the end —
/// its column widths need every row; pick tsv/json for true streaming).
int StreamPrepared(const EqlEngine& engine, const Graph& g,
                   const ShellArgs& args, const PreparedQuery& prepared,
                   const ParamMap& params) {
  (void)engine;
  /// fwrite + flush per write, so rows appear as the search emits them.
  class FlushingSink : public ByteSink {
   public:
    bool Write(std::string_view bytes) override {
      if (std::fwrite(bytes.data(), 1, bytes.size(), stdout) != bytes.size()) {
        return false;
      }
      return std::fflush(stdout) == 0;
    }
  } out;
  SerializingSink sink(g, args.format, out, args.max_rows);
  auto r = prepared.Execute(params, sink);
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    return ShellExitCodeForCode(r.status().code());
  }
  sink.Finish(FinishInfo{r->outcome, 0});
  std::fflush(stdout);
  std::fprintf(stderr,
               "%llu row(s) streamed in %.1f ms (first row after %.1f ms)\n",
               static_cast<unsigned long long>(r->rows_streamed), r->total_ms,
               r->first_row_ms);
  if (args.explain) std::fprintf(stderr, "%s", prepared.Explain(*r).c_str());
  if (args.stats) PrintCtpStats(*r);
  return OutcomeExitCode(*r);
}

int RunPrepared(const EqlEngine& engine, const Graph& g, const ShellArgs& args,
                const PreparedQuery& prepared, const ParamMap& params) {
  if (args.stream) {
    return StreamPrepared(engine, g, args, prepared, params);
  }
  auto r = prepared.Execute(params);
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    return ShellExitCodeForCode(r.status().code());
  }
  std::fprintf(stderr, "%zu row(s) in %.1f ms (BGP %.1f | CTP %.1f | join %.1f)\n",
               r->table.NumRows(), r->total_ms, r->bgp_ms, r->ctp_ms,
               r->join_ms);
  PrintResult(g, args, *r);
  if (args.explain) std::fprintf(stderr, "%s", prepared.Explain(*r).c_str());
  if (args.stats) PrintCtpStats(*r);
  return OutcomeExitCode(*r);
}

int RunQuery(const EqlEngine& engine, const Graph& g, const ShellArgs& args,
             const std::string& query) {
  auto prepared = engine.Prepare(query);
  if (!prepared.ok()) {
    std::fprintf(stderr, "error: %s\n", prepared.status().ToString().c_str());
    return ShellExitCodeForCode(prepared.status().code());
  }
  if (!prepared->param_names().empty()) {
    std::fprintf(
        stderr,
        "query has unbound $parameters; use .prepare NAME / .bind / .run\n");
    return kExitParse;
  }
  return RunPrepared(engine, g, args, *prepared, ParamMap());
}

/// Parses ".bind"-style `$k=v` assignments; values may be "quoted" (with
/// spaces) and bare integers bind as integers. Returns false on bad syntax.
bool ParseBindArgs(const std::string& text, ParamMap* params) {
  size_t i = 0;
  auto skip_ws = [&] { while (i < text.size() && std::isspace((unsigned char)text[i])) ++i; };
  for (skip_ws(); i < text.size(); skip_ws()) {
    if (text[i] == '$') ++i;  // optional $ prefix on the name
    size_t name_start = i;
    while (i < text.size() && (std::isalnum((unsigned char)text[i]) || text[i] == '_')) ++i;
    if (i == name_start || i >= text.size() || text[i] != '=') return false;
    std::string name = text.substr(name_start, i - name_start);
    ++i;  // '='
    std::string value;
    bool quoted = false;
    if (i < text.size() && text[i] == '"') {
      quoted = true;
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) ++i;
        value += text[i++];
      }
      if (i >= text.size()) return false;  // unterminated
      ++i;
    } else {
      while (i < text.size() && !std::isspace((unsigned char)text[i])) value += text[i++];
    }
    bool is_int = !quoted && !value.empty();
    for (size_t k = (value[0] == '-' ? 1 : 0); is_int && k < value.size(); ++k) {
      is_int = std::isdigit((unsigned char)value[k]);
    }
    if (is_int && !(value.size() == 1 && value[0] == '-')) {
      params->Set(std::move(name), static_cast<int64_t>(std::atoll(value.c_str())));
    } else {
      params->Set(std::move(name), std::move(value));
    }
  }
  return true;
}

/// Splits `text` into ';'-separated, trimmed, non-empty queries.
std::vector<std::string> SplitQueries(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    std::string q(Trim(std::string_view(text).substr(pos, semi - pos)));
    if (!q.empty()) out.push_back(std::move(q));
    pos = semi + 1;
  }
  return out;
}

int RunBatchFile(const EqlEngine& engine, const Graph& g, const ShellArgs& args,
                 const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return kExitExec;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::vector<std::string> queries = SplitQueries(ss.str());
  if (queries.empty()) {
    std::printf("no queries in '%s'\n", path.c_str());
    return kExitOk;
  }
  std::vector<std::string_view> views(queries.begin(), queries.end());
  Stopwatch sw;
  auto results = engine.RunBatch(views);
  double total_ms = sw.ElapsedMs();
  int code = kExitOk;
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(stderr, "\n> %s\n", queries[i].c_str());
    if (!results[i].ok()) {
      std::fprintf(stderr, "error: %s\n", results[i].status().ToString().c_str());
      code = std::max(code, ShellExitCodeForCode(results[i].status().code()));
      continue;
    }
    const QueryResult& r = *results[i];
    std::fprintf(stderr, "%zu row(s) in %.1f ms\n", r.table.NumRows(),
                 r.total_ms);
    PrintResult(g, args, r);
    code = std::max(code, OutcomeExitCode(r));
  }
  std::fprintf(stderr, "\nbatch: %zu queries in %.1f ms (pool: %s)\n", queries.size(),
              total_ms, engine.executor() != nullptr ? "yes" : "no");
  return code;
}

int Main(int argc, char** argv) {
  ShellArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  Graph graph;
  GraphSource source;
  if (args.demo) {
    graph = MakeDemoGraph();
    std::fprintf(stderr, "loaded demo graph (paper Figure 1): %zu nodes, %zu edges\n",
                graph.NumNodes(), graph.NumEdges());
  } else if (!args.snapshot_path.empty()) {
    Stopwatch sw;
    SnapshotInfo info;
    auto opened = OpenSnapshot(args.snapshot_path, {}, &info);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return kExitGraphLoad;
    }
    const double open_ms = sw.ElapsedMs();
    graph = std::move(opened).value();
    source = GraphSource{args.snapshot_path, true, open_ms, info.file_bytes};
    std::fprintf(
        stderr,
        "opened snapshot %s: %zu nodes, %zu edges (%.2f MB mapped in "
        "%.2f ms)\n",
        args.snapshot_path.c_str(), graph.NumNodes(), graph.NumEdges(),
        info.file_bytes / 1e6, open_ms);
  } else {
    auto loaded = LoadGraphFile(args.graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return kExitGraphLoad;
    }
    graph = std::move(loaded).value();
    source = GraphSource{args.graph_path, false, 0, 0};
    std::fprintf(stderr, "loaded %s: %zu nodes, %zu edges\n", args.graph_path.c_str(),
                graph.NumNodes(), graph.NumEdges());
  }
  auto engine = std::make_unique<EqlEngine>(graph, args.options);

  int exit_code = kExitOk;
  if (!args.queries.empty()) {
    for (const std::string& q : args.queries) {
      std::fprintf(stderr, "\n> %s\n", q.c_str());
      exit_code = std::max(exit_code, RunQuery(*engine, graph, args, q));
    }
    return exit_code;
  }

  // Interactive / piped mode: statements separated by ';', dot-commands on
  // their own line.
  std::fprintf(
      stderr,
      "enter queries terminated by ';' (.parallel N | .views on|off | "
      ".planner on|off | .explain on|off | .stats [on|off] | .open FILE | "
      ".stream on|off | .batch FILE | .prepare NAME Q; | .bind NAME $k=v | "
      ".run NAME | Ctrl-D)\n");
  std::string buffer, line;
  // Prepared-query registry: handles borrow the engine, so rebuilding the
  // engine (.parallel / .views) invalidates and clears them.
  std::map<std::string, PreparedQuery> prepared_queries;
  std::map<std::string, ParamMap> bound_params;
  std::string pending_prepare;  ///< name awaiting its ';'-terminated text
  auto rebuild_engine = [&] {
    engine = std::make_unique<EqlEngine>(graph, args.options);
    if (!prepared_queries.empty()) {
      std::printf("(dropped %zu prepared quer%s: engine options changed)\n",
                  prepared_queries.size(),
                  prepared_queries.size() == 1 ? "y" : "ies");
      prepared_queries.clear();
    }
  };
  // Drains every complete ';'-terminated statement out of the buffer: a
  // pending .prepare claims the statement, anything else runs as a query.
  auto drain_buffer = [&] {
    size_t semi;
    while ((semi = buffer.find(';')) != std::string::npos) {
      std::string q(Trim(std::string_view(buffer).substr(0, semi)));
      buffer.erase(0, semi + 1);
      if (q.empty() && pending_prepare.empty()) continue;
      if (!pending_prepare.empty()) {
        auto prepared = engine->Prepare(q);
        if (!prepared.ok()) {
          std::fprintf(stderr, "error: %s\n", prepared.status().ToString().c_str());
          exit_code = std::max(exit_code, kExitParse);
        } else {
          std::string params_note;
          if (!prepared->param_names().empty()) {
            params_note = " (parameters:";
            for (const auto& p : prepared->param_names()) params_note += " $" + p;
            params_note += ")";
          }
          prepared_queries.insert_or_assign(pending_prepare,
                                            std::move(prepared).value());
          std::printf("prepared '%s'%s\n", pending_prepare.c_str(),
                      params_note.c_str());
        }
        pending_prepare.clear();
        continue;
      }
      exit_code = std::max(exit_code, RunQuery(*engine, graph, args, q));
    }
  };
  while (std::getline(std::cin, line)) {
    std::string trimmed(Trim(line));
    // Dot-commands are ".word ..." — a lone '.' is query text (the triple
    // terminator may sit on its own line). While a .prepare is collecting
    // its query text, everything flows into the buffer.
    if (pending_prepare.empty() && trimmed.size() >= 2 && trimmed[0] == '.' &&
        std::isalpha(static_cast<unsigned char>(trimmed[1]))) {
      std::istringstream cmd(trimmed);
      std::string name, arg;
      cmd >> name >> arg;
      if (name == ".parallel") {
        long n = std::atol(arg.c_str());
        if (n < 0 || n > 256) {
          std::printf(".parallel expects a chunk count in [0, 256]\n");
          continue;
        }
        args.options.num_threads = static_cast<unsigned>(n);
        rebuild_engine();
        if (args.options.num_threads > 1) {
          std::printf("parallel: %u chunks on a %u-worker pool\n",
                      args.options.num_threads, args.options.num_threads);
        } else {
          std::printf("parallel: off (sequential CTP evaluation)\n");
        }
      } else if (name == ".views") {
        if (arg != "on" && arg != "off") {
          std::printf(".views expects 'on' or 'off'\n");
          continue;
        }
        args.options.use_compiled_views = arg == "on";
        rebuild_engine();
        std::printf("compiled filter views: %s\n", arg.c_str());
      } else if (name == ".planner") {
        if (arg != "on" && arg != "off") {
          std::printf(".planner expects 'on' or 'off'\n");
          continue;
        }
        args.options.use_planner = arg == "on";
        rebuild_engine();
        std::printf("cost-based planner: %s\n", arg.c_str());
      } else if (name == ".explain") {
        if (arg != "on" && arg != "off") {
          std::printf(".explain expects 'on' or 'off'\n");
          continue;
        }
        args.explain = arg == "on";
        std::printf("plan printout: %s\n", arg.c_str());
      } else if (name == ".stats") {
        if (arg.empty()) {
          // Bare `.stats`: session status, including how the graph is stored.
          if (source.path.empty()) {
            std::printf("graph: demo (paper Figure 1), %zu nodes, %zu edges\n",
                        graph.NumNodes(), graph.NumEdges());
          } else {
            std::printf("graph: %s (%s), %zu nodes, %zu edges\n",
                        source.path.c_str(),
                        source.snapshot ? "mmap snapshot" : "parsed text",
                        graph.NumNodes(), graph.NumEdges());
          }
          if (source.snapshot) {
            std::printf("snapshot: %.2f MB mapped, opened in %.2f ms\n",
                        source.mapped_bytes / 1e6, source.open_ms);
          }
          std::printf(
              "options: parallel=%u views=%s planner=%s explain=%s "
              "ctp-stats=%s stream=%s\n",
              args.options.num_threads,
              args.options.use_compiled_views ? "on" : "off",
              args.options.use_planner ? "on" : "off",
              args.explain ? "on" : "off", args.stats ? "on" : "off",
              args.stream ? "on" : "off");
          continue;
        }
        if (arg != "on" && arg != "off") {
          std::printf(".stats expects 'on', 'off', or no argument\n");
          continue;
        }
        args.stats = arg == "on";
        std::printf("per-CTP statistics: %s\n", arg.c_str());
      } else if (name == ".open") {
        if (arg.empty()) {
          std::printf(".open needs a snapshot file\n");
          continue;
        }
        Stopwatch sw;
        SnapshotInfo info;
        auto opened = OpenSnapshot(arg, {}, &info);
        if (!opened.ok()) {
          std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
          exit_code = std::max(exit_code, kExitGraphLoad);
          continue;
        }
        const double open_ms = sw.ElapsedMs();
        // The engine borrows the graph; retire it before swapping the
        // storage out from under it.
        engine.reset();
        graph = std::move(opened).value();
        source = GraphSource{arg, true, open_ms, info.file_bytes};
        rebuild_engine();
        std::printf(
            "opened snapshot %s: %zu nodes, %zu edges (%.2f MB mapped in "
            "%.2f ms)\n",
            arg.c_str(), graph.NumNodes(), graph.NumEdges(),
            info.file_bytes / 1e6, open_ms);
      } else if (name == ".stream") {
        if (arg != "on" && arg != "off") {
          std::printf(".stream expects 'on' or 'off'\n");
          continue;
        }
        args.stream = arg == "on";
        std::printf("streaming row delivery: %s\n", arg.c_str());
      } else if (name == ".batch") {
        if (arg.empty()) {
          std::printf(".batch needs a file name\n");
        } else {
          exit_code = std::max(exit_code, RunBatchFile(*engine, graph, args, arg));
        }
      } else if (name == ".prepare") {
        if (arg.empty()) {
          std::printf(".prepare needs a name: .prepare NAME SELECT ... ;\n");
          continue;
        }
        if (!Trim(buffer).empty()) {
          // Leftover unterminated input would silently prepend itself to
          // the prepared statement; drop it loudly instead.
          std::printf("(discarding unterminated input before .prepare)\n");
          buffer.clear();
        }
        pending_prepare = arg;
        // The rest of the line starts the query text; it runs to ';'.
        std::string rest;
        std::getline(cmd, rest);
        buffer += rest;
        buffer += '\n';
        drain_buffer();  // a one-line .prepare completes immediately
      } else if (name == ".bind") {
        if (arg.empty() || !prepared_queries.count(arg)) {
          std::printf(".bind: no prepared query named '%s'\n", arg.c_str());
          continue;
        }
        std::string rest;
        std::getline(cmd, rest);
        ParamMap params;
        if (!ParseBindArgs(rest, &params)) {
          std::printf(".bind expects $name=value pairs (strings quoted)\n");
          continue;
        }
        bound_params[arg] = std::move(params);
        std::printf("bound %zu parameter(s) for '%s'\n",
                    bound_params[arg].size(), arg.c_str());
      } else if (name == ".run") {
        auto it = prepared_queries.find(arg);
        if (it == prepared_queries.end()) {
          std::printf(".run: no prepared query named '%s'\n", arg.c_str());
          continue;
        }
        auto pit = bound_params.find(arg);
        exit_code = std::max(
            exit_code,
            RunPrepared(*engine, graph, args, it->second,
                        pit != bound_params.end() ? pit->second : ParamMap()));
      } else {
        std::printf(
            "unknown command '%s' (try .parallel N, .views on|off, "
            ".planner on|off, .explain on|off, .stats [on|off], "
            ".open FILE, .stream on|off, .batch FILE, .prepare, .bind "
            "or .run)\n",
            name.c_str());
      }
      continue;
    }
    buffer += line;
    buffer += '\n';
    drain_buffer();
  }
  return exit_code;
}

}  // namespace
}  // namespace eql

int main(int argc, char** argv) { return eql::Main(argc, argv); }
