// eql_shell — run EQL queries against a triple file from the command line.
//
// Usage:
//   eql_shell GRAPH.tsv [options] [-q QUERY]...
//   eql_shell GRAPH.tsv < queries.eql        (queries separated by ';')
//
// Options:
//   -q QUERY          run this query (repeatable); otherwise read stdin
//   --algorithm NAME  bft|bft_m|bft_am|gam|esp|moesp|lesp|molesp (default molesp)
//   --adaptive        pick ESP automatically for plain m=2 CTPs (Property 3)
//   --parallel N      evaluate CTPs on a worker pool, split N ways (0 = off)
//   --timeout MS      default per-CTP timeout (default 60000)
//   --max-rows N      print at most N result rows per query (default 20)
//   --stats           print per-CTP search statistics
//   --no-views        disable compiled LABEL/UNI adjacency views (ctp/view.h)
//   --no-bound-pruning disable TOP-k score bound pruning (ctp/gam.h)
//   --demo            load the paper's Figure 1 graph instead of a file
//
// Interactive / piped mode additionally understands dot-commands on their
// own line:
//   .parallel N       switch CTP parallelism to N chunks (0 = sequential)
//   .views on|off     toggle compiled filter views
//   .batch FILE       run the ';'-separated queries in FILE as one batch
//                     through EqlEngine::RunBatch (amortizes the pool)
//
// The graph file format is the tab-separated triple format of
// src/graph/graph_io.h ("src<TAB>label<TAB>dst", plus @type/@literal lines).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.h"

#include "eval/engine.h"
#include "graph/graph_io.h"
#include "util/string_util.h"

namespace eql {
namespace {

Graph MakeDemoGraph() {
  const char* triples =
      "Bob\tfounded\tOrgB\n"
      "Alice\tinvestsIn\tOrgB\n"
      "Bob\tparentOf\tAlice\n"
      "OrgB\tlocatedIn\tFrance\n"
      "Bob\tcitizenOf\tUSA\n"
      "Carole\tcitizenOf\tUSA\n"
      "Carole\tfounded\tOrgA\n"
      "Doug\tCEO\tOrgA\n"
      "Doug\tinvestsIn\tOrgC\n"
      "Carole\tfounded\tOrgC\n"
      "Elon\tparentOf\tDoug\n"
      "Alice\tcitizenOf\tFrance\n"
      "Doug\tcitizenOf\tFrance\n"
      "Elon\tcitizenOf\tFrance\n"
      "OrgC\tlocatedIn\tUSA\n"
      "Elon\taffiliation\tNLP\n"
      "OrgB\tfunds\tNLP\n"
      "Falcon\taffiliation\tNLP\n"
      "Falcon\tinvestsIn\tUSA\n"
      "@type\tBob\tentrepreneur\n"
      "@type\tAlice\tentrepreneur\n"
      "@type\tCarole\tentrepreneur\n"
      "@type\tDoug\tentrepreneur\n"
      "@type\tElon\tpolitician\n"
      "@type\tFalcon\tpolitician\n"
      "@type\tOrgA\tcompany\n"
      "@type\tOrgB\tcompany\n"
      "@type\tOrgC\tcompany\n"
      "@type\tUSA\tcountry\n"
      "@type\tFrance\tcountry\n";
  auto g = ParseGraphText(triples);
  return std::move(g).value();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s GRAPH.tsv|--demo [--algorithm NAME] [--adaptive]\n"
               "       [--parallel N] [--timeout MS] [--max-rows N] [--stats]\n"
               "       [--no-views] [--no-bound-pruning] [-q QUERY]...\n",
               argv0);
  return 2;
}

struct ShellArgs {
  std::string graph_path;
  bool demo = false;
  bool stats = false;
  size_t max_rows = 20;
  EngineOptions options;
  std::vector<std::string> queries;
};

bool ParseArgs(int argc, char** argv, ShellArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--demo") {
      args->demo = true;
    } else if (a == "--stats") {
      args->stats = true;
    } else if (a == "--no-views") {
      args->options.use_compiled_views = false;
    } else if (a == "--no-bound-pruning") {
      args->options.bound_pruning = false;
    } else if (a == "--adaptive") {
      args->options.adaptive_algorithm = true;
    } else if (a == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return false;
      auto kind = ParseAlgorithmName(v);
      if (!kind) {
        std::fprintf(stderr, "unknown algorithm '%s'\n", v);
        return false;
      }
      args->options.algorithm = *kind;
    } else if (a == "--parallel") {
      const char* v = next();
      if (v == nullptr) return false;
      long n = std::atol(v);
      if (n < 0 || n > 256) {
        std::fprintf(stderr, "--parallel must be in [0, 256]\n");
        return false;
      }
      args->options.num_threads = static_cast<unsigned>(n);
    } else if (a == "--timeout") {
      const char* v = next();
      if (v == nullptr) return false;
      args->options.default_ctp_timeout_ms = std::atoll(v);
    } else if (a == "--max-rows") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_rows = static_cast<size_t>(std::atoll(v));
    } else if (a == "-q") {
      const char* v = next();
      if (v == nullptr) return false;
      args->queries.push_back(v);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return false;
    } else if (args->graph_path.empty()) {
      args->graph_path = a;
    } else {
      return false;
    }
  }
  return args->demo || !args->graph_path.empty();
}

void PrintRows(const Graph& g, const ShellArgs& args, const QueryResult& r) {
  for (size_t row = 0; row < r.table.NumRows() && row < args.max_rows; ++row) {
    std::printf("  %s\n", r.RowToString(g, row).c_str());
  }
  if (r.table.NumRows() > args.max_rows) {
    std::printf("  ... (%zu more)\n", r.table.NumRows() - args.max_rows);
  }
}

void RunQuery(const EqlEngine& engine, const Graph& g, const ShellArgs& args,
              const std::string& query) {
  auto r = engine.Run(query);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf("%zu row(s) in %.1f ms (BGP %.1f | CTP %.1f | join %.1f)\n",
              r->table.NumRows(), r->total_ms, r->bgp_ms, r->ctp_ms, r->join_ms);
  PrintRows(g, args, *r);
  if (args.stats) {
    for (const auto& run : r->ctp_runs) {
      std::string mode;
      if (run.used_subset_queues) mode += ", subset-queues";
      if (run.parallel_chunks > 0) {
        mode += ", " + std::to_string(run.parallel_chunks) + " chunks";
      }
      if (run.used_view) mode += ", view";
      if (run.dead_labels) mode += ", dead-labels";
      std::printf("  [?%s via %s%s] %s\n", run.tree_var.c_str(),
                  AlgorithmName(run.algorithm), mode.c_str(),
                  run.stats.ToString().c_str());
    }
  }
}

/// Splits `text` into ';'-separated, trimmed, non-empty queries.
std::vector<std::string> SplitQueries(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    std::string q(Trim(std::string_view(text).substr(pos, semi - pos)));
    if (!q.empty()) out.push_back(std::move(q));
    pos = semi + 1;
  }
  return out;
}

void RunBatchFile(const EqlEngine& engine, const Graph& g, const ShellArgs& args,
                  const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::printf("error: cannot open '%s'\n", path.c_str());
    return;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::vector<std::string> queries = SplitQueries(ss.str());
  if (queries.empty()) {
    std::printf("no queries in '%s'\n", path.c_str());
    return;
  }
  std::vector<std::string_view> views(queries.begin(), queries.end());
  Stopwatch sw;
  auto results = engine.RunBatch(views);
  double total_ms = sw.ElapsedMs();
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("\n> %s\n", queries[i].c_str());
    if (!results[i].ok()) {
      std::printf("error: %s\n", results[i].status().ToString().c_str());
      continue;
    }
    const QueryResult& r = *results[i];
    std::printf("%zu row(s) in %.1f ms\n", r.table.NumRows(), r.total_ms);
    PrintRows(g, args, r);
  }
  std::printf("\nbatch: %zu queries in %.1f ms (pool: %s)\n", queries.size(),
              total_ms, engine.executor() != nullptr ? "yes" : "no");
}

int Main(int argc, char** argv) {
  ShellArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  Graph graph;
  if (args.demo) {
    graph = MakeDemoGraph();
    std::printf("loaded demo graph (paper Figure 1): %zu nodes, %zu edges\n",
                graph.NumNodes(), graph.NumEdges());
  } else {
    auto loaded = LoadGraphFile(args.graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
    std::printf("loaded %s: %zu nodes, %zu edges\n", args.graph_path.c_str(),
                graph.NumNodes(), graph.NumEdges());
  }
  auto engine = std::make_unique<EqlEngine>(graph, args.options);

  if (!args.queries.empty()) {
    for (const std::string& q : args.queries) {
      std::printf("\n> %s\n", q.c_str());
      RunQuery(*engine, graph, args, q);
    }
    return 0;
  }

  // Interactive / piped mode: statements separated by ';', dot-commands on
  // their own line.
  std::printf(
      "enter queries terminated by ';' (.parallel N | .views on|off | "
      ".batch FILE | Ctrl-D)\n");
  std::string buffer, line;
  while (std::getline(std::cin, line)) {
    std::string trimmed(Trim(line));
    // Dot-commands are ".word ..." — a lone '.' is query text (the triple
    // terminator may sit on its own line).
    if (trimmed.size() >= 2 && trimmed[0] == '.' &&
        std::isalpha(static_cast<unsigned char>(trimmed[1]))) {
      std::istringstream cmd(trimmed);
      std::string name, arg;
      cmd >> name >> arg;
      if (name == ".parallel") {
        long n = std::atol(arg.c_str());
        if (n < 0 || n > 256) {
          std::printf(".parallel expects a chunk count in [0, 256]\n");
          continue;
        }
        args.options.num_threads = static_cast<unsigned>(n);
        engine = std::make_unique<EqlEngine>(graph, args.options);
        if (args.options.num_threads > 1) {
          std::printf("parallel: %u chunks on a %u-worker pool\n",
                      args.options.num_threads, args.options.num_threads);
        } else {
          std::printf("parallel: off (sequential CTP evaluation)\n");
        }
      } else if (name == ".views") {
        if (arg != "on" && arg != "off") {
          std::printf(".views expects 'on' or 'off'\n");
          continue;
        }
        args.options.use_compiled_views = arg == "on";
        engine = std::make_unique<EqlEngine>(graph, args.options);
        std::printf("compiled filter views: %s\n", arg.c_str());
      } else if (name == ".batch") {
        if (arg.empty()) {
          std::printf(".batch needs a file name\n");
        } else {
          RunBatchFile(*engine, graph, args, arg);
        }
      } else {
        std::printf(
            "unknown command '%s' (try .parallel N, .views on|off or "
            ".batch FILE)\n",
            name.c_str());
      }
      continue;
    }
    buffer += line;
    buffer += '\n';
    size_t semi;
    while ((semi = buffer.find(';')) != std::string::npos) {
      std::string q(Trim(std::string_view(buffer).substr(0, semi)));
      buffer.erase(0, semi + 1);
      if (q.empty()) continue;
      RunQuery(*engine, graph, args, q);
    }
  }
  return 0;
}

}  // namespace
}  // namespace eql

int main(int argc, char** argv) { return eql::Main(argc, argv); }
