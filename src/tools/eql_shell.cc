// eql_shell — run EQL queries against a triple file from the command line.
//
// Usage:
//   eql_shell GRAPH.tsv [options] [-q QUERY]...
//   eql_shell GRAPH.tsv < queries.eql        (queries separated by ';')
//
// Options:
//   -q QUERY          run this query (repeatable); otherwise read stdin
//   --algorithm NAME  bft|bft_m|bft_am|gam|esp|moesp|lesp|molesp (default molesp)
//   --adaptive        pick ESP automatically for plain m=2 CTPs (Property 3)
//   --timeout MS      default per-CTP timeout (default 60000)
//   --max-rows N      print at most N result rows per query (default 20)
//   --stats           print per-CTP search statistics
//   --demo            load the paper's Figure 1 graph instead of a file
//
// The graph file format is the tab-separated triple format of
// src/graph/graph_io.h ("src<TAB>label<TAB>dst", plus @type/@literal lines).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/engine.h"
#include "graph/graph_io.h"
#include "util/string_util.h"

namespace eql {
namespace {

Graph MakeDemoGraph() {
  const char* triples =
      "Bob\tfounded\tOrgB\n"
      "Alice\tinvestsIn\tOrgB\n"
      "Bob\tparentOf\tAlice\n"
      "OrgB\tlocatedIn\tFrance\n"
      "Bob\tcitizenOf\tUSA\n"
      "Carole\tcitizenOf\tUSA\n"
      "Carole\tfounded\tOrgA\n"
      "Doug\tCEO\tOrgA\n"
      "Doug\tinvestsIn\tOrgC\n"
      "Carole\tfounded\tOrgC\n"
      "Elon\tparentOf\tDoug\n"
      "Alice\tcitizenOf\tFrance\n"
      "Doug\tcitizenOf\tFrance\n"
      "Elon\tcitizenOf\tFrance\n"
      "OrgC\tlocatedIn\tUSA\n"
      "Elon\taffiliation\tNLP\n"
      "OrgB\tfunds\tNLP\n"
      "Falcon\taffiliation\tNLP\n"
      "Falcon\tinvestsIn\tUSA\n"
      "@type\tBob\tentrepreneur\n"
      "@type\tAlice\tentrepreneur\n"
      "@type\tCarole\tentrepreneur\n"
      "@type\tDoug\tentrepreneur\n"
      "@type\tElon\tpolitician\n"
      "@type\tFalcon\tpolitician\n"
      "@type\tOrgA\tcompany\n"
      "@type\tOrgB\tcompany\n"
      "@type\tOrgC\tcompany\n"
      "@type\tUSA\tcountry\n"
      "@type\tFrance\tcountry\n";
  auto g = ParseGraphText(triples);
  return std::move(g).value();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s GRAPH.tsv|--demo [--algorithm NAME] [--adaptive]\n"
               "       [--timeout MS] [--max-rows N] [--stats] [-q QUERY]...\n",
               argv0);
  return 2;
}

struct ShellArgs {
  std::string graph_path;
  bool demo = false;
  bool stats = false;
  size_t max_rows = 20;
  EngineOptions options;
  std::vector<std::string> queries;
};

bool ParseArgs(int argc, char** argv, ShellArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--demo") {
      args->demo = true;
    } else if (a == "--stats") {
      args->stats = true;
    } else if (a == "--adaptive") {
      args->options.adaptive_algorithm = true;
    } else if (a == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return false;
      auto kind = ParseAlgorithmName(v);
      if (!kind) {
        std::fprintf(stderr, "unknown algorithm '%s'\n", v);
        return false;
      }
      args->options.algorithm = *kind;
    } else if (a == "--timeout") {
      const char* v = next();
      if (v == nullptr) return false;
      args->options.default_ctp_timeout_ms = std::atoll(v);
    } else if (a == "--max-rows") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_rows = static_cast<size_t>(std::atoll(v));
    } else if (a == "-q") {
      const char* v = next();
      if (v == nullptr) return false;
      args->queries.push_back(v);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return false;
    } else if (args->graph_path.empty()) {
      args->graph_path = a;
    } else {
      return false;
    }
  }
  return args->demo || !args->graph_path.empty();
}

void RunQuery(const EqlEngine& engine, const Graph& g, const ShellArgs& args,
              const std::string& query) {
  auto r = engine.Run(query);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf("%zu row(s) in %.1f ms (BGP %.1f | CTP %.1f | join %.1f)\n",
              r->table.NumRows(), r->total_ms, r->bgp_ms, r->ctp_ms, r->join_ms);
  for (size_t row = 0; row < r->table.NumRows() && row < args.max_rows; ++row) {
    std::printf("  %s\n", r->RowToString(g, row).c_str());
  }
  if (r->table.NumRows() > args.max_rows) {
    std::printf("  ... (%zu more)\n", r->table.NumRows() - args.max_rows);
  }
  if (args.stats) {
    for (const auto& run : r->ctp_runs) {
      std::printf("  [?%s via %s%s] %s\n", run.tree_var.c_str(),
                  AlgorithmName(run.algorithm),
                  run.used_subset_queues ? ", subset-queues" : "",
                  run.stats.ToString().c_str());
    }
  }
}

int Main(int argc, char** argv) {
  ShellArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  Graph graph;
  if (args.demo) {
    graph = MakeDemoGraph();
    std::printf("loaded demo graph (paper Figure 1): %zu nodes, %zu edges\n",
                graph.NumNodes(), graph.NumEdges());
  } else {
    auto loaded = LoadGraphFile(args.graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
    std::printf("loaded %s: %zu nodes, %zu edges\n", args.graph_path.c_str(),
                graph.NumNodes(), graph.NumEdges());
  }
  EqlEngine engine(graph, args.options);

  if (!args.queries.empty()) {
    for (const std::string& q : args.queries) {
      std::printf("\n> %s\n", q.c_str());
      RunQuery(engine, graph, args, q);
    }
    return 0;
  }

  // Interactive / piped mode: statements separated by ';'.
  std::printf("enter queries terminated by ';' (Ctrl-D to quit)\n");
  std::string buffer, line;
  while (std::getline(std::cin, line)) {
    buffer += line;
    buffer += '\n';
    size_t semi;
    while ((semi = buffer.find(';')) != std::string::npos) {
      std::string q(Trim(std::string_view(buffer).substr(0, semi)));
      buffer.erase(0, semi + 1);
      if (q.empty()) continue;
      RunQuery(engine, graph, args, q);
    }
  }
  return 0;
}

}  // namespace
}  // namespace eql

int main(int argc, char** argv) { return eql::Main(argc, argv); }
