// eqld — the EQL network query daemon.
//
// Serves a graph (snapshot file or built-in synthetic KG) over HTTP/1.1:
// ad-hoc queries, prepared handles, streamed chunked results, admission
// control. Protocol and endpoint reference: docs/server.md.
//
//   eqld --snapshot kg.eqls --port 8322
//   eqld --synthetic --nodes 20000 --edges 80000 --port 0   # ephemeral port
//
// Runs until SIGTERM/SIGINT, then drains: in-flight queries finish, idle
// connections close, exit 0.
//
// Exit codes (stable — supervisors branch on them; see docs/server.md):
//   0  clean shutdown (drained after SIGTERM/SIGINT)
//   2  usage error (bad flag / missing graph source)
//   3  graph load failure (snapshot unreadable/corrupt, synthetic failed)
//   4  network failure (bind/listen: address in use, bad address, ...)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "gen/kg.h"
#include "server/server.h"
#include "util/status.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: eqld (--snapshot PATH | --synthetic) [options]\n"
               "\n"
               "graph source:\n"
               "  --snapshot PATH       mmap-open a snapshot (eql_pack output)\n"
               "  --synthetic           generate the built-in synthetic KG\n"
               "  --nodes N             synthetic node count   (default 10000)\n"
               "  --edges N             synthetic edge count   (default 40000)\n"
               "\n"
               "network:\n"
               "  --bind ADDR           listen address         (default 127.0.0.1)\n"
               "  --port N              listen port; 0 = ephemeral (default 8322)\n"
               "  --max-connections N   concurrent connections (default 128)\n"
               "\n"
               "admission / quotas:\n"
               "  --max-concurrent N    server-wide concurrent queries (default 64)\n"
               "  --per-client N        per-client concurrent queries  (default 8)\n"
               "                        (cooperative: keyed on peer IP + the\n"
               "                        client-supplied X-EQL-Client header)\n"
               "  --per-peer N          per-IP concurrent queries, enforced\n"
               "                        regardless of header; 0 = off (default 0)\n"
               "  --timeout-ms N        per-query deadline, 0 = none   (default 30000)\n"
               "  --memory-budget-mb N  per-query memory cap, 0 = none (default 0)\n"
               "\n"
               "overload resilience (docs/server.md \"Overload & degradation\"):\n"
               "  --max-memory-mb N     process-wide query-memory pool; per-query\n"
               "                        budgets are leased from it and tighten\n"
               "                        under pressure; 0 = off     (default 0)\n"
               "  --shed-p95-ms N       shed load when admit-to-first-byte p95\n"
               "                        exceeds N ms; 0 = off       (default 0)\n"
               "  --max-query-ms N      watchdog hard wall-clock cap per query,\n"
               "                        even with --timeout-ms 0; 0 = off\n"
               "                        (default 0)\n"
               "\n"
               "engine:\n"
               "  --threads N           CTP search chunks per query    (default 0)\n"
               "  --cache-capacity N    prepared-statement LRU entries (default 128)\n");
}

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' && *s != '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  bool synthetic = false;
  uint64_t nodes = 10000, edges = 40000;
  eql::ServerOptions options;
  options.port = 8322;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](uint64_t* out) {
      if (i + 1 >= argc || !ParseUint(argv[++i], out)) {
        std::fprintf(stderr, "eqld: %s needs a numeric value\n", arg.c_str());
        std::exit(2);
      }
    };
    uint64_t v = 0;
    if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg == "--synthetic") {
      synthetic = true;
    } else if (arg == "--nodes") {
      next(&nodes);
    } else if (arg == "--edges") {
      next(&edges);
    } else if (arg == "--bind" && i + 1 < argc) {
      options.bind_address = argv[++i];
    } else if (arg == "--port") {
      next(&v);
      options.port = static_cast<uint16_t>(v);
    } else if (arg == "--max-connections") {
      next(&v);
      options.max_connections = static_cast<uint32_t>(v);
    } else if (arg == "--max-concurrent") {
      next(&v);
      options.admission.max_concurrent = static_cast<uint32_t>(v);
    } else if (arg == "--per-client") {
      next(&v);
      options.admission.per_client_concurrent = static_cast<uint32_t>(v);
    } else if (arg == "--per-peer") {
      next(&v);
      options.admission.per_peer_concurrent = static_cast<uint32_t>(v);
    } else if (arg == "--timeout-ms") {
      next(&v);
      options.admission.query_timeout_ms = static_cast<int64_t>(v);
    } else if (arg == "--memory-budget-mb") {
      next(&v);
      options.admission.memory_budget_bytes = v * 1024 * 1024;
    } else if (arg == "--max-memory-mb") {
      next(&v);
      options.governor.total_budget_bytes = v * 1024 * 1024;
    } else if (arg == "--shed-p95-ms") {
      next(&v);
      options.admission.queue_delay_p95_ms = static_cast<int64_t>(v);
    } else if (arg == "--max-query-ms") {
      next(&v);
      options.watchdog.max_query_ms = static_cast<int64_t>(v);
    } else if (arg == "--threads") {
      next(&v);
      options.engine.num_threads = static_cast<unsigned>(v);
    } else if (arg == "--cache-capacity") {
      next(&v);
      options.prepared_cache_capacity = static_cast<size_t>(v);
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "eqld: unknown argument '%s'\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }
  if (snapshot_path.empty() && !synthetic) {
    std::fprintf(stderr, "eqld: need --snapshot PATH or --synthetic\n");
    Usage(stderr);
    return 2;
  }

  eql::EqldServer server(options);
  if (!snapshot_path.empty()) {
    eql::Status st = server.OpenSnapshotFile(snapshot_path);
    if (!st.ok()) {
      std::fprintf(stderr,
                   "eqld: fatal: cannot serve snapshot '%s': %s\n"
                   "eqld: check the path exists, is readable, and was "
                   "written by eql_pack\n",
                   snapshot_path.c_str(), st.ToString().c_str());
      return 3;
    }
  } else {
    eql::KgParams params;
    params.num_nodes = static_cast<uint32_t>(nodes);
    params.num_edges = edges;
    auto g = eql::MakeSyntheticKg(params);
    if (!g.ok()) {
      std::fprintf(stderr, "eqld: fatal: synthetic graph generation: %s\n",
                   g.status().ToString().c_str());
      return 3;
    }
    server.SetGraph(std::move(g).value(),
                    "synthetic(" + std::to_string(nodes) + "," +
                        std::to_string(edges) + ")");
  }

  eql::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr,
                 "eqld: fatal: cannot listen on %s:%u: %s\n"
                 "eqld: check the address is local and the port is free "
                 "(port 0 picks an ephemeral one)\n",
                 options.bind_address.c_str(), options.port,
                 st.ToString().c_str());
    return 4;
  }

  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // The smoke harness waits for this line to know the port is live.
  std::printf("eqld listening on %s:%u\n", options.bind_address.c_str(),
              server.port());
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("eqld: draining\n");
  std::fflush(stdout);
  server.Shutdown();
  std::printf("eqld: stopped\n");
  return 0;
}
