// Jittered exponential backoff for clients retrying shed requests.
//
// The eqld daemon answers overload with 429/503 plus a `Retry-After` hint
// (server/admission.h). A client that retries immediately — or a fleet of
// clients that all retry after exactly the hinted delay — turns one
// overload episode into a synchronized retry storm that re-creates the
// overload on schedule. The fix is the classic pair:
//
//   * EXPONENTIAL growth: attempt k waits ~initial * multiplier^(k-1),
//     capped at max_ms, so persistent overload sheds traffic harder the
//     longer it lasts;
//   * JITTER: the actual delay is drawn uniformly from
//     [delay * (1 - jitter), delay], so retries desynchronize even when
//     every client received the same Retry-After value.
//
// A server hint REPLACES the exponential base for that attempt (the server
// knows its own queue better than the client's guess) but still gets
// jittered, and is still capped at max_ms so a hostile or confused hint
// cannot park a client forever.
//
// Deterministic: all randomness comes from the seeded Rng (util/rng.h), so
// bench runs and tests reproduce byte-for-byte from their seeds.
#ifndef EQL_UTIL_BACKOFF_H_
#define EQL_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace eql {

struct BackoffPolicy {
  int64_t initial_ms = 100;  ///< delay base for the first retry
  double multiplier = 2.0;   ///< growth per attempt
  int64_t max_ms = 10000;    ///< hard cap on any single delay
  /// Fraction of the computed delay that is randomized: the drawn delay is
  /// uniform in [delay * (1 - jitter), delay]. 0 = fully deterministic.
  double jitter = 0.5;
  /// Retries after the initial attempt; ShouldRetry(attempt) is true for
  /// attempt in [1, max_attempts].
  int max_attempts = 5;
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {}, uint64_t seed = 1)
      : policy_(policy), rng_(seed) {}

  bool ShouldRetry(int attempt) const {
    return attempt >= 1 && attempt <= policy_.max_attempts;
  }

  /// Delay in ms before retry `attempt` (1-based). `server_hint_s` >= 0 is
  /// a server-provided Retry-After in seconds; it replaces the exponential
  /// base but is jittered and capped like any other delay.
  int64_t NextDelayMs(int attempt, int server_hint_s = -1) {
    double base;
    if (server_hint_s >= 0) {
      base = static_cast<double>(server_hint_s) * 1000.0;
      if (base < static_cast<double>(policy_.initial_ms)) {
        base = static_cast<double>(policy_.initial_ms);
      }
    } else {
      base = static_cast<double>(policy_.initial_ms);
      for (int i = 1; i < attempt; ++i) base *= policy_.multiplier;
    }
    base = std::min(base, static_cast<double>(policy_.max_ms));
    const double lo = base * (1.0 - policy_.jitter);
    const double drawn = lo + (base - lo) * rng_.NextDouble();
    const auto ms = static_cast<int64_t>(drawn);
    return std::max<int64_t>(ms, 0);
  }

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
};

}  // namespace eql

#endif  // EQL_UTIL_BACKOFF_H_
