// Seed-set signatures: up to 64 seed sets per CTP, one bit per set.
//
// Used for sat(t) (Observation 1), the Merge2 disjointness test, and LESP's
// per-node seed signatures ss_n (Section 4.6 of the paper).
#ifndef EQL_UTIL_BITSET64_H_
#define EQL_UTIL_BITSET64_H_

#include <bit>
#include <cassert>
#include <cstdint>

namespace eql {

/// A set over {0..63} with constant-time union/intersection/popcount.
class Bitset64 {
 public:
  constexpr Bitset64() : bits_(0) {}
  constexpr explicit Bitset64(uint64_t bits) : bits_(bits) {}

  /// A signature with bits [0, n) set; n must be <= 64.
  static constexpr Bitset64 FullMask(int n) {
    assert(n >= 0 && n <= 64);
    if (n == 64) return Bitset64(~0ULL);
    return Bitset64((1ULL << n) - 1);
  }
  static constexpr Bitset64 Single(int i) {
    assert(i >= 0 && i < 64);
    return Bitset64(1ULL << i);
  }

  constexpr bool Test(int i) const { return (bits_ >> i) & 1ULL; }
  constexpr void Set(int i) { bits_ |= (1ULL << i); }
  constexpr void Reset(int i) { bits_ &= ~(1ULL << i); }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr int Count() const { return std::popcount(bits_); }
  constexpr uint64_t bits() const { return bits_; }

  constexpr bool Intersects(Bitset64 o) const { return (bits_ & o.bits_) != 0; }
  constexpr bool Contains(Bitset64 o) const { return (bits_ & o.bits_) == o.bits_; }

  constexpr Bitset64 operator|(Bitset64 o) const { return Bitset64(bits_ | o.bits_); }
  constexpr Bitset64 operator&(Bitset64 o) const { return Bitset64(bits_ & o.bits_); }
  /// Bits in this set but not in `o`.
  constexpr Bitset64 AndNot(Bitset64 o) const { return Bitset64(bits_ & ~o.bits_); }
  constexpr Bitset64& operator|=(Bitset64 o) {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr bool operator==(const Bitset64&) const = default;

 private:
  uint64_t bits_;
};

}  // namespace eql

#endif  // EQL_UTIL_BITSET64_H_
