// Epoch-versioned flat scratch buffers for dense uint32 id spaces.
//
// The CTP hot loops (Grow1 membership, Merge1 overlap, BFT minimization
// degrees, history equality probes) need per-NodeId / per-EdgeId scratch
// state that is conceptually reset between trees. Allocating or clearing a
// hash map per tree dominates the cost on small trees, so these structures
// keep one lazily-grown flat array per id space and "clear" in O(1) by
// bumping an epoch counter: a slot is live only if its stamp equals the
// current epoch. Epoch wrap-around (after 2^32 clears) falls back to one
// real O(n) wipe.
#ifndef EQL_UTIL_EPOCH_H_
#define EQL_UTIL_EPOCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace eql {

/// A set over dense uint32 ids with O(1) insert/lookup and O(1) clear.
class EpochSet {
 public:
  /// Pre-sizes the stamp array (optional; Insert grows on demand).
  void Reserve(size_t n) {
    if (stamp_.size() < n) stamp_.resize(n, 0);
  }

  /// Empties the set in O(1).
  void Clear() {
    if (++epoch_ == 0) {  // wrapped: every stale stamp would look live
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Inserts `id`; returns true if it was not yet in the set.
  bool Insert(uint32_t id) {
    if (id >= stamp_.size()) stamp_.resize(std::max<size_t>(id + 1, stamp_.size() * 2), 0);
    if (stamp_[id] == epoch_) return false;
    stamp_[id] = epoch_;
    return true;
  }

  bool Contains(uint32_t id) const {
    return id < stamp_.size() && stamp_[id] == epoch_;
  }

  /// Heap bytes owned (capacity-based; the resource governor's unit).
  size_t MemoryBytes() const { return stamp_.capacity() * sizeof(uint32_t); }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;
};

/// A value array over dense uint32 ids with O(1) clear: a slot reads as a
/// default-constructed T after Clear() until written again through Mut().
/// Used for per-node state that must survive across searches without an
/// O(graph) wipe per run (e.g. the LESP seed signatures ss_n).
template <typename T>
class EpochArray {
 public:
  void Reserve(size_t n) {
    if (stamp_.size() < n) {
      stamp_.resize(n, 0);
      slot_.resize(n);
    }
  }

  void Clear() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  /// The slot's value, or T{} if it was not written since the last Clear().
  T Get(uint32_t id) const {
    return (id < stamp_.size() && stamp_[id] == epoch_) ? slot_[id] : T{};
  }

  /// Mutable access; resets the slot to T{} first if it is stale.
  T& Mut(uint32_t id) {
    if (id >= stamp_.size()) {
      size_t n = std::max<size_t>(id + 1, stamp_.size() * 2);
      stamp_.resize(n, 0);
      slot_.resize(n);
    }
    if (stamp_[id] != epoch_) {
      slot_[id] = T{};
      stamp_[id] = epoch_;
    }
    return slot_[id];
  }

  /// Heap bytes owned (capacity-based; the resource governor's unit).
  size_t MemoryBytes() const {
    return slot_.capacity() * sizeof(T) + stamp_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<T> slot_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;
};

/// Per-id growable uint32 lists with O(1) logical clear: a bucket is lazily
/// emptied on first access after Clear(), and the inner vectors keep their
/// capacity, so steady-state reuse (the worker pool's recordForMerging index)
/// allocates nothing.
class EpochBuckets {
 public:
  void Reserve(size_t n) {
    if (stamp_.size() < n) {
      stamp_.resize(n, 0);
      buckets_.resize(n);
    }
  }

  void Clear() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  /// The bucket for `id`, emptied first if it predates the last Clear().
  std::vector<uint32_t>& Mut(uint32_t id) {
    if (id >= stamp_.size()) {
      size_t n = std::max<size_t>(id + 1, stamp_.size() * 2);
      stamp_.resize(n, 0);
      buckets_.resize(n);
    }
    if (stamp_[id] != epoch_) {
      buckets_[id].clear();
      stamp_[id] = epoch_;
    }
    return buckets_[id];
  }

  /// Appends through this accessor instead of Mut(id).push_back so the
  /// inner-vector growth stays accounted — direct pushes on Mut()'s
  /// reference would escape the byte tracking below.
  void Append(uint32_t id, uint32_t v) {
    std::vector<uint32_t>& b = Mut(id);
    const size_t before = b.capacity();
    b.push_back(v);
    pool_bytes_ += (b.capacity() - before) * sizeof(uint32_t);
  }

  /// Heap bytes owned: the two flat arrays (capacity-based) plus the
  /// accumulated inner-bucket capacities (tracked in O(1) by Append, so this
  /// is O(1) and safe to poll from a search hot loop).
  size_t MemoryBytes() const {
    return stamp_.capacity() * sizeof(uint32_t) +
           buckets_.capacity() * sizeof(std::vector<uint32_t>) + pool_bytes_;
  }

 private:
  std::vector<std::vector<uint32_t>> buckets_;
  std::vector<uint32_t> stamp_;
  size_t pool_bytes_ = 0;  ///< sum of inner capacities (bytes); never shrinks
  uint32_t epoch_ = 1;
};

/// A counter array over dense uint32 ids with O(1) clear; reads of slots not
/// touched since the last Clear() return 0.
class EpochCounter {
 public:
  void Reserve(size_t n) {
    if (stamp_.size() < n) {
      stamp_.resize(n, 0);
      count_.resize(n, 0);
    }
  }

  void Clear() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  int32_t Get(uint32_t id) const {
    return (id < stamp_.size() && stamp_[id] == epoch_) ? count_[id] : 0;
  }

  /// Adds `delta` to the slot and returns the new value.
  int32_t Add(uint32_t id, int32_t delta) {
    if (id >= stamp_.size()) {
      size_t n = std::max<size_t>(id + 1, stamp_.size() * 2);
      stamp_.resize(n, 0);
      count_.resize(n, 0);
    }
    if (stamp_[id] != epoch_) {
      stamp_[id] = epoch_;
      count_[id] = 0;
    }
    return count_[id] += delta;
  }

  /// Heap bytes owned (capacity-based; the resource governor's unit).
  size_t MemoryBytes() const {
    return stamp_.capacity() * sizeof(uint32_t) + count_.capacity() * sizeof(int32_t);
  }

 private:
  std::vector<uint32_t> stamp_;
  std::vector<int32_t> count_;
  uint32_t epoch_ = 1;
};

}  // namespace eql

#endif  // EQL_UTIL_EPOCH_H_
