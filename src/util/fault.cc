#include "util/fault.h"

#include "util/hash.h"

namespace eql {

void FaultInjector::Arm(std::string site, uint64_t trigger) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[std::move(site)].trigger = trigger;
}

void FaultInjector::ArmSeeded(std::string site, uint64_t seed, uint64_t range) {
  if (range == 0) range = 1;
  uint64_t h = seed;
  for (char c : site) h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  Arm(std::move(site), 1 + h % range);
}

bool FaultInjector::ShouldFail(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) {
    // Count probes of unarmed sites too: tests arm "probe N" after a dry run
    // that told them how many probes a site sees.
    sites_[std::string(site)].probes = 1;
    return false;
  }
  Site& s = it->second;
  ++s.probes;
  if (s.trigger != 0 && s.probes == s.trigger) {
    ++s.fired;
    return true;
  }
  return false;
}

uint64_t FaultInjector::Probes(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.probes;
}

uint64_t FaultInjector::Fired(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.fired;
}

}  // namespace eql
