// Deterministic fault injection for the robustness test suites.
//
// A FaultInjector is armed per *site label* with a 1-based trigger count:
// the search-side code probes `ShouldFail(site)` at well-defined points
// (allocation, queue pop, chunk merge) and the probe returns true exactly
// once, on the armed trigger'th call for that site. Everything is counted,
// so a test can also assert *how often* a site was reached. Unarmed sites
// never fire and cost one mutex acquisition per probe — acceptable because
// the engines only probe when an injector is attached at all (the pointer
// is nullptr in production configurations, making the probe a branch on a
// constant-false condition).
//
// Probes are thread-safe: parallel chunk workers share one injector, so the
// trigger'th probe fires on exactly one worker regardless of interleaving
// (which worker is scheduling-dependent; the *count* of fires is not).
#ifndef EQL_UTIL_FAULT_H_
#define EQL_UTIL_FAULT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace eql {

/// Canonical site labels used by the engines. Tests may arm any label; these
/// are the ones the search code probes.
inline constexpr const char* kFaultSiteAlloc = "alloc";            ///< tree kept into the arena (GAM + BFT)
inline constexpr const char* kFaultSiteQueuePop = "queue-pop";     ///< GAM main-loop pop
inline constexpr const char* kFaultSiteChunkMerge = "chunk-merge"; ///< parallel per-chunk result merge
inline constexpr const char* kFaultSiteEmit = "emit";              ///< per emitted result (mid-stream faults)
inline constexpr const char* kFaultSiteAdmit = "admit";            ///< eqld admission decision (server/admission.h)
inline constexpr const char* kFaultSiteFlush = "serializer-flush"; ///< result-serializer byte flush (server/format.h)
inline constexpr const char* kFaultSiteNetWrite = "net-write";     ///< HTTP chunk write, as if the peer vanished (server/server.cc)

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `site` to fire exactly once, on the `trigger`-th probe (1-based).
  /// Re-arming an already-armed site resets its trigger but keeps its probe
  /// count; a trigger of 0 disarms.
  void Arm(std::string site, uint64_t trigger = 1);

  /// Seeded arming: derives the trigger deterministically from (seed, site)
  /// as 1 + H(seed, site) mod `range`. The same seed always picks the same
  /// probe, so a failing fuzz/differential run reproduces from its printed
  /// seed alone.
  void ArmSeeded(std::string site, uint64_t seed, uint64_t range);

  /// Probes `site`: bumps its counter and returns true exactly when the
  /// armed trigger is reached. Thread-safe; unarmed sites never fire.
  bool ShouldFail(std::string_view site);

  /// Number of times `site` was probed so far.
  uint64_t Probes(std::string_view site) const;

  /// Number of times `site` actually fired (0 or 1 per arming).
  uint64_t Fired(std::string_view site) const;

 private:
  struct Site {
    uint64_t trigger = 0;  ///< 0 = disarmed
    uint64_t probes = 0;
    uint64_t fired = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
};

}  // namespace eql

#endif  // EQL_UTIL_FAULT_H_
