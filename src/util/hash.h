// Hash primitives shared by the search history, join tables and dictionaries.
#ifndef EQL_UTIL_HASH_H_
#define EQL_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace eql {

/// 64-bit finalizer (splitmix64); good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combiner (boost-style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash of a sorted id sequence; the canonical key of an edge set.
inline uint64_t HashIdSpan(const uint32_t* data, size_t n) {
  uint64_t h = 0x51ab2e4c9d3f8b71ULL ^ (n * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

inline uint64_t HashIdVector(const std::vector<uint32_t>& v) {
  return HashIdSpan(v.data(), v.size());
}

/// Per-element term of the *incremental* edge-set hash: the hash of a set is
/// the XOR of its elements' terms (0 for the empty set), so Grow updates it
/// in O(1) and Merge of disjoint sets in O(1) (XOR of the operand hashes).
/// Terms are avalanched so XOR composes well; exactness is restored by the
/// history's collision check.
inline uint64_t HashSetElem(uint32_t id) {
  return Mix64(static_cast<uint64_t>(id) + 0x6a09e667f3bcc909ULL);
}

/// FNV-1a for strings (dictionary keys).
inline uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace eql

#endif  // EQL_UTIL_HASH_H_
