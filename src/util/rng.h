// Deterministic pseudo-random generator for synthetic data and property tests.
//
// Benches and tests must be reproducible across runs and platforms, so the
// generators take explicit seeds and use this xoshiro256** implementation
// rather than std::mt19937 (whose distributions are not portable).
#ifndef EQL_UTIL_RNG_H_
#define EQL_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

#include "util/hash.h"

namespace eql {

/// xoshiro256** 1.0; seeded via splitmix64 so any 64-bit seed works.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t x = seed;
    for (auto& s : state_) s = Mix64(x++);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0. Uses rejection to avoid bias.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli(p).
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace eql

#endif  // EQL_UTIL_RNG_H_
