#include "util/status.h"

namespace eql {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kCorruption:
      return "corruption";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace eql
