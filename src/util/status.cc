#include "util/status.h"

namespace eql {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kTimeout:
      return 504;
    case StatusCode::kInternal:
    case StatusCode::kCorruption:
      return 500;
  }
  return 500;
}

int ShellExitCodeForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kCorruption:
      return 1;  // the shell's "data failed to load" category
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
      return 3;  // rejected before any search ran
    case StatusCode::kInternal:
    case StatusCode::kUnavailable:
      return 4;  // failed while executing
    case StatusCode::kTimeout:
    case StatusCode::kResourceExhausted:
      return 5;  // partial results: a resource cutoff reduced coverage
  }
  return 4;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace eql
