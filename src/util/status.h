// Status / Result: exception-free error propagation for the whole library.
//
// Library code never throws (Google style / RocksDB practice); fallible
// operations return Status or Result<T>. Both are cheap to move and carry a
// code plus a human-readable message (with position info for parse errors).
#ifndef EQL_UTIL_STATUS_H_
#define EQL_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace eql {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< bad user input (query text, generator parameters)
  kNotFound,          ///< missing label/node/variable
  kOutOfRange,        ///< index/limit violations
  kUnimplemented,     ///< feature combination not supported
  kInternal,          ///< invariant violation (a bug if ever seen)
  kTimeout,           ///< a budgeted operation hit its deadline
  kCorruption,        ///< on-disk data failed validation (snapshots, io)
  kUnavailable,       ///< service not ready / at capacity; retry later
  kResourceExhausted, ///< a caller quota is spent (admission, per-client caps)
};

/// Returns a stable lowercase name for a status code ("ok", "timeout", ...).
const char* StatusCodeName(StatusCode code);

/// The single status -> HTTP response code mapping shared by the eqld
/// endpoints (and anything else speaking HTTP): kOk -> 200, caller mistakes
/// -> 4xx (400 invalid/out-of-range, 404 not-found, 429 resource-exhausted),
/// server conditions -> 5xx (500 internal/corruption, 501 unimplemented,
/// 503 unavailable, 504 timeout).
int HttpStatusForCode(StatusCode code);

/// The single status -> shell exit-code mapping (eql_shell's documented
/// categories): 0 = ok, 1 = data failed to load (kCorruption), 3 = the query
/// was rejected before running (invalid / not-found / out-of-range /
/// unimplemented), 4 = it failed during execution (internal / unavailable),
/// 5 = a resource cutoff (timeout / resource-exhausted) reduced coverage.
int ShellExitCodeForCode(StatusCode code);

/// Result of a fallible operation with no payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. Minimal StatusOr<T> stand-in (no Abseil offline).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) { // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace eql

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define EQL_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::eql::Status _eql_status = (expr);       \
    if (!_eql_status.ok()) return _eql_status; \
  } while (false)

#endif  // EQL_UTIL_STATUS_H_
