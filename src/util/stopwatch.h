// Wall-clock timing and deadlines for CTP timeouts (Section 2 / 4.8).
#ifndef EQL_UTIL_STOPWATCH_H_
#define EQL_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace eql {

/// Monotonic stopwatch; Restart() resets, ElapsedMs/Us read without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in time after which budgeted work must stop. The default-built
/// deadline is infinite. Checking is cheap enough for inner loops, but the
/// search engines batch checks every few hundred operations anyway.
class Deadline {
 public:
  /// Infinite deadline (never expires).
  Deadline() : expires_(Clock::time_point::max()) {}

  static Deadline AfterMs(int64_t ms) {
    Deadline d;
    if (ms >= 0) d.expires_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }
  static Deadline Infinite() { return Deadline(); }

  bool Expired() const {
    return expires_ != Clock::time_point::max() && Clock::now() >= expires_;
  }
  bool IsInfinite() const { return expires_ == Clock::time_point::max(); }

  /// Milliseconds until expiry, clamped at 0; INT64_MAX when infinite. Lets
  /// work items started late against a shared deadline (the parallel
  /// executor's chunks) run with the *remaining* budget only.
  int64_t RemainingMs() const {
    if (IsInfinite()) return std::numeric_limits<int64_t>::max();
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    expires_ - Clock::now())
                    .count();
    return left < 0 ? 0 : left;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point expires_;
};

}  // namespace eql

#endif  // EQL_UTIL_STOPWATCH_H_
