#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace eql {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with backtracking on the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace eql
