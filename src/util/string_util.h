// Small string helpers used by the lexer, dictionary and bench harnesses.
#ifndef EQL_UTIL_STRING_UTIL_H_
#define EQL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace eql {

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `text` matches `pattern` where '*' matches any run (including
/// empty) and '?' matches exactly one character. This is the semantics of the
/// paper's '~' (LIKE-style) predicate operator (Definition 2.2).
bool GlobMatch(std::string_view pattern, std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// True if `s` parses fully as a finite double; stores it in *out.
bool ParseDouble(std::string_view s, double* out);

}  // namespace eql

#endif  // EQL_UTIL_STRING_UTIL_H_
